package dyntc

import (
	"dyntc/internal/engine"
	"dyntc/internal/obs"
	"dyntc/internal/query"
)

// This file is the public face of internal/obs: the metrics registry,
// instrument bundles and wave tracing that servers (cmd/dyntcd) and
// benchmarks (cmd/dyntc-bench) attach through BatchOptions. Everything
// here is optional — a nil registry/bundle costs the engine one boolean
// check per flush.

// MetricsRegistry is a process-wide metrics registry: lock-cheap atomic
// counters, gauges and fixed-bucket histograms, rendered in Prometheus
// text exposition format by WriteTo. Dependency-free.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EngineMetrics is the engine-layer instrument bundle: wave flush
// latency, coalesce wait and per-stage PRAM sub-batch histograms. One
// bundle is shared by every engine of a process (per-tree label
// cardinality would not scale to a big forest); pass it through
// BatchOptions.Metrics.
type EngineMetrics = engine.Obs

// NewEngineMetrics registers the engine histogram families on r and
// returns the bundle to pass as BatchOptions.Metrics.
func NewEngineMetrics(r *MetricsRegistry) *EngineMetrics { return engine.NewObs(r) }

// WaveTraceRecord is one sampled (or slow) wave's lifecycle breakdown:
// request count, coalesce wait and per-stage nanoseconds. Records land
// in a WaveTraceRing and in the BatchOptions.SlowWave callback.
type WaveTraceRecord = obs.WaveTrace

// WaveTraceRing is a fixed-capacity ring of sampled WaveTraceRecords,
// shared by every engine it is attached to (BatchOptions.Trace).
// cmd/dyntcd dumps it at GET /v1/trace.
type WaveTraceRing = obs.TraceRing

// NewWaveTraceRing creates a trace ring retaining the last capacity
// records (a default capacity when <= 0).
func NewWaveTraceRing(capacity int) *WaveTraceRing { return obs.NewTraceRing(capacity) }

// SpanID is a 64-bit trace or span identifier, rendered as 16 hex
// digits in JSON and in the X-Dyntc-Trace header.
type SpanID = obs.SpanID

// TraceContext is the propagated half of a distributed trace: the trace
// ID plus the parent span ID. The zero value means "untraced" and costs
// nothing to carry. Servers derive it from the X-Dyntc-Trace header
// (ParseTraceHeader) and pass it to Engine.Traced.
type TraceContext = obs.SpanContext

// SpanRecord is one finished span of a distributed wave-lifecycle trace.
type SpanRecord = obs.Span

// SpanLog is the span exporter: a bounded ring (served at GET /v1/spans)
// plus an optional append-only JSONL file, shared by every engine and
// log it is attached to (BatchOptions.Spans, WaveLog metrics).
type SpanLog = obs.SpanLog

// NewSpanLog creates a span log retaining capacity spans (a default when
// <= 0). proc labels the recording process ("leader", "follower") in
// merged traces; a non-empty path mirrors spans to a JSONL file.
func NewSpanLog(capacity int, proc, path string) (*SpanLog, error) {
	return obs.NewSpanLog(capacity, proc, path)
}

// NewSpanLogRotating is NewSpanLog with size-based rotation of the JSONL
// mirror: when the current file would exceed maxBytes the log rotates it
// to path.1 (shifting older generations up) and keeps at most keep
// rotated files. maxBytes <= 0 disables rotation.
func NewSpanLogRotating(capacity int, proc, path string, maxBytes int64, keep int) (*SpanLog, error) {
	return obs.NewSpanLogRotating(capacity, proc, path, maxBytes, keep)
}

// EventJournal is the lifecycle event journal: a bounded in-memory ring
// of structured events (promotions, epoch adoptions, degraded-mode
// transitions, WAL recovery, shed bursts, batch-cap shifts, anomalies)
// plus an optional JSONL sink. Shared by every layer of a process and
// served at GET /v1/events; per-type counts export as dyntc_events_total.
type EventJournal = obs.Journal

// Event is one journal entry: a monotonic sequence number, wall-clock
// nanoseconds, a dotted type from the event taxonomy, the recording
// process, an optional tree id and free-form fields.
type Event = obs.Event

// NewEventJournal creates a journal retaining capacity events (a default
// when <= 0). proc labels the recording process; a non-empty path mirrors
// events to a JSONL file.
func NewEventJournal(capacity int, proc, path string) (*EventJournal, error) {
	return obs.NewJournal(capacity, proc, path)
}

// TraceBoost is the flight recorder's sampling override: a single atomic
// deadline that, while in the future, makes every flush span-sampled and
// trace-sampled regardless of cadence. Trigger extends it; it decays by
// doing nothing. The inactive check is one atomic load.
type TraceBoost = obs.TraceBoost

// AnomalyConfig tunes the anomaly detectors: EWMA gate, robust
// (median+MAD) confirmation, warmup, absolute floor, per-signal cooldown
// and the boost window applied on a trip.
type AnomalyConfig = obs.AnomalyConfig

// AnomalyRecorder is the anomaly-triggered flight recorder: streaming
// latency detectors per signal that, on a confirmed outlier, journal an
// anomaly event carrying a runtime snapshot and boost trace sampling for
// a bounded window.
type AnomalyRecorder = obs.Recorder

// NewAnomalyRecorder builds a recorder journaling trips to j and arming
// boost b. Zero-value cfg fields take defaults.
func NewAnomalyRecorder(cfg AnomalyConfig, j *EventJournal, b *TraceBoost) *AnomalyRecorder {
	return obs.NewRecorder(cfg, j, b)
}

// TopK is a space-saving (Metwally) top-k sketch: fixed memory, every
// key whose true count exceeds total/k is guaranteed present, and each
// reported count brackets the truth within its Err. Used for per-tree
// hot-spot attribution, served at GET /v1/hot.
type TopK = obs.TopK

// TopKItem is one sketch entry: key, estimated count, and the maximum
// overestimate Err (truth is within [Count-Err, Count]).
type TopKItem = obs.TopKItem

// NewTopK creates a sketch tracking the k heaviest keys (a default
// when <= 0).
func NewTopK(k int) *TopK { return obs.NewTopK(k) }

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() SpanID { return obs.NewTraceID() }

// NewSpanID returns a fresh process-unique span ID.
func NewSpanID() SpanID { return obs.NewSpanID() }

// WaveSpanID is the deterministic span ID of the wave sealed as
// (epoch, seq): leader and follower compute it independently, which is
// what stitches one trace across the process boundary.
func WaveSpanID(epoch, seq uint64) SpanID { return obs.WaveSpanID(epoch, seq) }

// ParseTraceHeader parses an X-Dyntc-Trace header value
// ("<trace>-<span>" or a bare trace ID, 16 hex digits each); malformed
// values degrade to the zero (untraced) context.
func ParseTraceHeader(v string) TraceContext { return obs.ParseTraceHeader(v) }

// FormatTraceHeader renders a TraceContext for the X-Dyntc-Trace header.
func FormatTraceHeader(sc TraceContext) string { return obs.FormatTraceHeader(sc) }

// RegisterGoRuntime registers Go runtime health families on r: goroutine
// count, heap bytes, GC cycle count, a GC pause histogram, and a
// dyntc_build_info gauge carrying version and Go toolchain labels.
func RegisterGoRuntime(r *MetricsRegistry) { obs.RegisterGoRuntime(r) }

// QueryMetrics is the cross-tree query engine's instrument bundle:
// query count, scatter width and join latency. Attach it to a Forest
// with SetQueryMetrics.
type QueryMetrics = query.Metrics

// NewQueryMetrics registers the query families on r.
func NewQueryMetrics(r *MetricsRegistry) *QueryMetrics { return query.NewMetrics(r) }

// SetQueryMetrics attaches (nil detaches) the query instrument bundle
// to the forest's cross-tree query planner. Swappable at runtime.
func (f *Forest) SetQueryMetrics(m *QueryMetrics) { f.planner.SetMetrics(m) }

// RegisterEngineStats registers the engine counter and gauge families
// (requests by kind, flushes, waves, errors, queue depth, applied
// sequence, adaptive batch cap, windowed flush percentiles) on r as
// scrape-time functions over stats — typically a cached Forest.Stats
// snapshot, so one scrape pays one aggregation. Histogram families come
// from NewEngineMetrics; the two compose into the full engine scrape.
func RegisterEngineStats(r *MetricsRegistry, stats func() EngineStats) {
	engine.RegisterStatsFuncs(r, stats)
}

package dyntc

import (
	"dyntc/internal/engine"
	"dyntc/internal/obs"
	"dyntc/internal/query"
)

// This file is the public face of internal/obs: the metrics registry,
// instrument bundles and wave tracing that servers (cmd/dyntcd) and
// benchmarks (cmd/dyntc-bench) attach through BatchOptions. Everything
// here is optional — a nil registry/bundle costs the engine one boolean
// check per flush.

// MetricsRegistry is a process-wide metrics registry: lock-cheap atomic
// counters, gauges and fixed-bucket histograms, rendered in Prometheus
// text exposition format by WriteTo. Dependency-free.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EngineMetrics is the engine-layer instrument bundle: wave flush
// latency, coalesce wait and per-stage PRAM sub-batch histograms. One
// bundle is shared by every engine of a process (per-tree label
// cardinality would not scale to a big forest); pass it through
// BatchOptions.Metrics.
type EngineMetrics = engine.Obs

// NewEngineMetrics registers the engine histogram families on r and
// returns the bundle to pass as BatchOptions.Metrics.
func NewEngineMetrics(r *MetricsRegistry) *EngineMetrics { return engine.NewObs(r) }

// WaveTraceRecord is one sampled (or slow) wave's lifecycle breakdown:
// request count, coalesce wait and per-stage nanoseconds. Records land
// in a WaveTraceRing and in the BatchOptions.SlowWave callback.
type WaveTraceRecord = obs.WaveTrace

// WaveTraceRing is a fixed-capacity ring of sampled WaveTraceRecords,
// shared by every engine it is attached to (BatchOptions.Trace).
// cmd/dyntcd dumps it at GET /v1/trace.
type WaveTraceRing = obs.TraceRing

// NewWaveTraceRing creates a trace ring retaining the last capacity
// records (a default capacity when <= 0).
func NewWaveTraceRing(capacity int) *WaveTraceRing { return obs.NewTraceRing(capacity) }

// SpanID is a 64-bit trace or span identifier, rendered as 16 hex
// digits in JSON and in the X-Dyntc-Trace header.
type SpanID = obs.SpanID

// TraceContext is the propagated half of a distributed trace: the trace
// ID plus the parent span ID. The zero value means "untraced" and costs
// nothing to carry. Servers derive it from the X-Dyntc-Trace header
// (ParseTraceHeader) and pass it to Engine.Traced.
type TraceContext = obs.SpanContext

// SpanRecord is one finished span of a distributed wave-lifecycle trace.
type SpanRecord = obs.Span

// SpanLog is the span exporter: a bounded ring (served at GET /v1/spans)
// plus an optional append-only JSONL file, shared by every engine and
// log it is attached to (BatchOptions.Spans, WaveLog metrics).
type SpanLog = obs.SpanLog

// NewSpanLog creates a span log retaining capacity spans (a default when
// <= 0). proc labels the recording process ("leader", "follower") in
// merged traces; a non-empty path mirrors spans to a JSONL file.
func NewSpanLog(capacity int, proc, path string) (*SpanLog, error) {
	return obs.NewSpanLog(capacity, proc, path)
}

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() SpanID { return obs.NewTraceID() }

// NewSpanID returns a fresh process-unique span ID.
func NewSpanID() SpanID { return obs.NewSpanID() }

// WaveSpanID is the deterministic span ID of the wave sealed as
// (epoch, seq): leader and follower compute it independently, which is
// what stitches one trace across the process boundary.
func WaveSpanID(epoch, seq uint64) SpanID { return obs.WaveSpanID(epoch, seq) }

// ParseTraceHeader parses an X-Dyntc-Trace header value
// ("<trace>-<span>" or a bare trace ID, 16 hex digits each); malformed
// values degrade to the zero (untraced) context.
func ParseTraceHeader(v string) TraceContext { return obs.ParseTraceHeader(v) }

// FormatTraceHeader renders a TraceContext for the X-Dyntc-Trace header.
func FormatTraceHeader(sc TraceContext) string { return obs.FormatTraceHeader(sc) }

// RegisterGoRuntime registers Go runtime health families on r: goroutine
// count, heap bytes, GC cycle count, a GC pause histogram, and a
// dyntc_build_info gauge carrying version and Go toolchain labels.
func RegisterGoRuntime(r *MetricsRegistry) { obs.RegisterGoRuntime(r) }

// QueryMetrics is the cross-tree query engine's instrument bundle:
// query count, scatter width and join latency. Attach it to a Forest
// with SetQueryMetrics.
type QueryMetrics = query.Metrics

// NewQueryMetrics registers the query families on r.
func NewQueryMetrics(r *MetricsRegistry) *QueryMetrics { return query.NewMetrics(r) }

// SetQueryMetrics attaches (nil detaches) the query instrument bundle
// to the forest's cross-tree query planner. Swappable at runtime.
func (f *Forest) SetQueryMetrics(m *QueryMetrics) { f.planner.SetMetrics(m) }

// RegisterEngineStats registers the engine counter and gauge families
// (requests by kind, flushes, waves, errors, queue depth, applied
// sequence, adaptive batch cap, windowed flush percentiles) on r as
// scrape-time functions over stats — typically a cached Forest.Stats
// snapshot, so one scrape pays one aggregation. Histogram families come
// from NewEngineMetrics; the two compose into the full engine scrape.
func RegisterEngineStats(r *MetricsRegistry, stats func() EngineStats) {
	engine.RegisterStatsFuncs(r, stats)
}

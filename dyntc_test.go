package dyntc

import (
	"testing"

	"dyntc/internal/prng"
)

func TestQuickstartFlow(t *testing.T) {
	ring := ModRing(1_000_000_007)
	e := NewExpr(ring, 1, WithSeed(42))
	l, r := e.Grow(e.Tree().Root, OpAdd(ring), 3, 4)
	if e.Root() != 7 {
		t.Fatalf("3+4 = %d", e.Root())
	}
	e.SetLeaf(l, 10)
	if e.Root() != 14 {
		t.Fatalf("10+4 = %d", e.Root())
	}
	ll, _ := e.Grow(l, OpMul(ring), 6, 7)
	if e.Root() != 46 {
		t.Fatalf("6*7+4 = %d", e.Root())
	}
	if e.Value(l) != 42 {
		t.Fatalf("6*7 = %d", e.Value(l))
	}
	e.SetLeaves([]*Node{ll, r}, []int64{2, 100})
	if e.Root() != 114 {
		t.Fatalf("2*7+100 = %d", e.Root())
	}
	e.Collapse(l, 5)
	if e.Root() != 105 {
		t.Fatalf("5+100 = %d", e.Root())
	}
}

func TestExprWithTourProperties(t *testing.T) {
	ring := ModRing(97)
	e := NewExpr(ring, 1, WithSeed(7), WithTour())
	root := e.Tree().Root
	l, r := e.Grow(root, OpAdd(ring), 2, 3)
	ll, lr := e.Grow(l, OpMul(ring), 4, 5)
	if e.Preorder(root) != 1 || e.Preorder(l) != 2 || e.Preorder(ll) != 3 {
		t.Fatal("preorder numbers wrong")
	}
	if e.Ancestors(lr) != 2 || e.Ancestors(root) != 0 {
		t.Fatal("ancestor counts wrong")
	}
	if e.SubtreeSize(root) != 5 || e.SubtreeSize(l) != 3 {
		t.Fatal("subtree sizes wrong")
	}
	if e.LCA(ll, r) != root || e.LCA(ll, lr) != l {
		t.Fatal("LCA wrong")
	}
	if !e.IsAncestor(l, lr) || e.IsAncestor(r, lr) {
		t.Fatal("IsAncestor wrong")
	}
	tour := e.EulerTour()
	if len(tour) != 10 || tour[0].Node != root || !tour[0].Enter {
		t.Fatal("euler tour wrong")
	}
}

func TestTourPanicsWithoutOption(t *testing.T) {
	e := NewExpr(ModRing(97), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Preorder(e.Tree().Root)
}

func TestGrowCollapseSoakWithTour(t *testing.T) {
	ring := ModRing(1_000_000_007)
	e := NewExpr(ring, 5, WithSeed(11), WithTour())
	src := prng.New(13)
	for step := 0; step < 80; step++ {
		leaves := e.Tree().Leaves()
		switch src.Intn(3) {
		case 0, 1:
			leaf := leaves[src.Intn(len(leaves))]
			e.Grow(leaf, OpAdd(ring), src.Int63(), src.Int63())
		default:
			var cand *Node
			for _, n := range e.Tree().Nodes {
				if n != nil && !n.IsLeaf() && n.Left.IsLeaf() && n.Right.IsLeaf() {
					cand = n
					break
				}
			}
			if cand != nil && e.Tree().LeafCount() > 1 {
				e.Collapse(cand, src.Int63())
			}
		}
		if got, want := e.Root(), e.Tree().Eval(); got != want {
			t.Fatalf("step %d: root %d want %d", step, got, want)
		}
		// Tour stays consistent.
		n := e.Tree().Nodes[src.Intn(len(e.Tree().Nodes))]
		if n != nil {
			_ = e.Preorder(n)
		}
	}
}

func TestSemiringConstructors(t *testing.T) {
	for _, r := range []Ring{ModRing(97), MinPlus(), MaxPlus(), BoolRing()} {
		e := NewExpr(r, r.One(), WithSeed(3))
		e.Grow(e.Tree().Root, OpAdd(r), r.One(), r.Zero())
		if got, want := e.Root(), e.Tree().Eval(); got != want {
			t.Fatalf("%s: %d want %d", r.Name(), got, want)
		}
	}
}

func TestNewListFacade(t *testing.T) {
	l := NewList(1, SumMonoid(), []int64{1, 2, 3, 4})
	if l.Total() != 10 {
		t.Fatalf("total %d", l.Total())
	}
	e := l.At(2)
	if l.PrefixAt(e) != 6 {
		t.Fatalf("prefix %d", l.PrefixAt(e))
	}
	l.Insert(nil, e, []int64{100})
	if l.Total() != 110 {
		t.Fatalf("total %d", l.Total())
	}
}

func TestStatsAndMetricsExposed(t *testing.T) {
	ring := ModRing(97)
	e := NewExpr(ring, 1, WithSeed(5))
	l, _ := e.Grow(e.Tree().Root, OpAdd(ring), 1, 2)
	e.SetLeaf(l, 9)
	if e.Stats().WoundRecords < 1 {
		t.Fatal("no wound recorded")
	}
	if e.PRAM().Work == 0 {
		t.Fatal("no PRAM work metered")
	}
}

func TestWithWorkers(t *testing.T) {
	ring := ModRing(1_000_000_007)
	e := NewExpr(ring, 1, WithSeed(9), WithWorkers(4))
	src := prng.New(3)
	for i := 0; i < 50; i++ {
		leaves := e.Tree().Leaves()
		e.Grow(leaves[src.Intn(len(leaves))], OpMul(ring), src.Int63(), src.Int63())
	}
	if got, want := e.Root(), e.Tree().Eval(); got != want {
		t.Fatalf("root %d want %d", got, want)
	}
}

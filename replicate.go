package dyntc

import (
	"errors"
	"fmt"
	"sync"

	"dyntc/internal/core"
	"dyntc/internal/euler"
	"dyntc/internal/query"
	"dyntc/internal/replog"
)

// This file is the durability and replication face of the package
// (internal/replog): tree snapshots, the executed-wave change log, and
// deterministic replay into followers.
//
// The engine's executed waves are conflict-free, ordered batches — a
// ready-made change log. A snapshot captures the whole tree (structure +
// labels + PRNG seed + applied-wave sequence number) in a versioned,
// byte-deterministic codec; a follower restores the snapshot and applies
// the waves after it in order, verifying the recorded grow IDs and the
// post-wave root value at every step. Replay is exact: a restored tree
// re-assigns the same dense node IDs the leader did, so follower and
// leader states are structurally identical, not just value-equal.

// Wave is one executed mutating wave: the unit of the change log.
type Wave = replog.Wave

// WaveOp is one mutating request of a Wave, addressed by dense node ID.
type WaveOp = replog.Op

// WaveLog is a bounded in-memory ring of recent waves with an optional
// append-only file mirror (see NewWaveLog).
type WaveLog = replog.Log

// ErrWaveGap reports a wave applied out of order (sequence skipped).
var ErrWaveGap = errors.New("dyntc: wave sequence gap")

// ErrDiverged reports a replayed wave whose verification failed: the
// follower's state no longer matches the leader's log.
var ErrDiverged = errors.New("dyntc: replica diverged from wave log")

// ErrStaleEpoch reports a wave stamped with an epoch below the
// receiver's: a late write from a demoted leader, rejected by the fence.
var ErrStaleEpoch = replog.ErrStaleEpoch

// ErrPromoted reports an operation on a Follower that has been promoted
// to leader: its replica state was handed to the new leadership term and
// must not keep replaying the old leader's waves.
var ErrPromoted = errors.New("dyntc: follower has been promoted")

// NewWaveLog creates a wave change-log retaining up to capacity waves in
// memory (a default when <= 0); a non-empty path mirrors every append to
// an append-only JSONL file. Attach it to an engine with
// Engine.SetWaveTap(log.Append-wrapper) or BatchOptions.WaveTap.
func NewWaveLog(capacity int, path string) (*WaveLog, error) {
	return replog.NewLog(capacity, path)
}

// ReadWaveLog replays an append-only wave file written by a WaveLog.
func ReadWaveLog(path string) ([]Wave, error) { return replog.ReadWAL(path) }

// RecoverWaveLog reads a wave file, truncating a torn or corrupt tail —
// the record a crash cut mid-append, and everything after it — down to
// the last valid wave. It returns the surviving waves and how many bytes
// were dropped; the truncation is durable, so a subsequent ReadWaveLog
// accepts the file. Use it on the startup path where ReadWaveLog's
// strict refusal would turn one torn record into an unbootable store.
func RecoverWaveLog(path string) ([]Wave, int64, error) { return replog.RecoverWAL(path) }

// Snapshot serializes the expression — structure, labels, PRNG seed,
// whether the tour is maintained — together with the applied-wave
// sequence number seq the state reflects, into the versioned codec of
// internal/replog. The encoding is byte-deterministic: equal states
// produce identical bytes.
//
// Snapshot requires the single-writer right to the Expr: call it directly
// only when no Engine serves the Expr; behind an Engine, use
// Engine.Snapshot, which runs it inside a barrier.
func (e *Expr) Snapshot(seq uint64) ([]byte, error) {
	snap, err := replog.Capture(e.t, e.seed, e.tour != nil, seq, e.Epoch())
	if err != nil {
		return nil, err
	}
	return snap.Encode()
}

// Epoch returns the leadership term the Expr's waves are stamped with
// (1 for a fresh tree; restored trees carry their snapshot's epoch).
func (e *Expr) Epoch() uint64 {
	if e.epoch == 0 {
		return 1
	}
	return e.epoch
}

// AdoptEpoch advances the Expr's epoch (it never goes backwards). Like
// Snapshot, it requires the single-writer right: call it directly only
// when no Engine serves the Expr, or inside an engine barrier. Normal
// code never needs it — epochs move via Promote and replayed waves —
// but startup recovery replaying a WAL that spans a failover does.
func (e *Expr) AdoptEpoch(epoch uint64) {
	if epoch > e.Epoch() {
		e.epoch = epoch
	}
}

// RestoreExpr rebuilds an Expr from a snapshot and returns it with the
// snapshot's applied-wave sequence number. The seed and tour setting come
// from the snapshot (WithSeed / WithTour options are overridden — a
// replica must contract deterministically like its leader); WithWorkers /
// WithGrain / WithPool apply normally, so follower replay rides the same
// shared scheduler as leader waves.
func RestoreExpr(data []byte, opts ...Option) (*Expr, uint64, error) {
	snap, err := replog.Decode(data)
	if err != nil {
		return nil, 0, err
	}
	t, err := snap.Tree()
	if err != nil {
		return nil, 0, err
	}
	o := options{}
	for _, f := range opts {
		f(&o)
	}
	m := o.newMachine()
	e := &Expr{
		t:     t,
		con:   core.New(t, snap.Seed, m),
		mach:  m,
		seed:  snap.Seed,
		epoch: snap.EpochOrDefault(),
	}
	if snap.Tour {
		e.tour = euler.New(t, snap.Seed^0x9E3779B97F4A7C15)
	}
	return e, snap.Seq, nil
}

// ApplyWave replays one logged wave onto the Expr: the wave's ops execute
// through the same batch entry points the leader used, in the same order.
// Every step is verified — checksum, target liveness and kind, the node
// IDs assigned by grows, and the post-wave root value — so divergence is
// detected at the wave that introduces it, not at the end of the log.
//
// ApplyWave does not check sequence contiguity (the Expr does not track a
// sequence number); use a Follower for tracked, in-order catch-up.
func (e *Expr) ApplyWave(w Wave) error {
	if !w.Verify() {
		return fmt.Errorf("%w: wave %d checksum mismatch", ErrDiverged, w.Seq)
	}
	node := func(id int) (*Node, error) {
		if id < 0 || id >= len(e.t.Nodes) || e.t.Nodes[id] == nil {
			return nil, fmt.Errorf("%w: wave %d targets dead node %d", ErrDiverged, w.Seq, id)
		}
		return e.t.Nodes[id], nil
	}

	// Group by kind, preserving recorded order (which is execution order:
	// grows, collapses, set-leaves, set-ops).
	var growIdx []int
	var grows []GrowOp
	var collapses []CollapseOp
	var setLeafNodes []*Node
	var setLeafVals []int64
	var setOpNodes []*Node
	var setOpOps []Op

	for i := range w.Ops {
		op := &w.Ops[i]
		n, err := node(op.Node)
		if err != nil {
			return err
		}
		switch op.Kind {
		case replog.OpGrow:
			if !n.IsLeaf() {
				return fmt.Errorf("%w: wave %d grow targets internal node %d", ErrDiverged, w.Seq, op.Node)
			}
			growIdx = append(growIdx, i)
			grows = append(grows, GrowOp{Leaf: n, Op: Op{A: op.A, B: op.B, C: op.C}, LeftVal: op.Left, RightVal: op.Right})
		case replog.OpCollapse:
			if n.IsLeaf() || !n.Left.IsLeaf() || !n.Right.IsLeaf() {
				return fmt.Errorf("%w: wave %d collapse target %d not collapsible", ErrDiverged, w.Seq, op.Node)
			}
			collapses = append(collapses, CollapseOp{Node: n, NewValue: op.Value})
		case replog.OpSetLeaf:
			if !n.IsLeaf() {
				return fmt.Errorf("%w: wave %d set-leaf targets internal node %d", ErrDiverged, w.Seq, op.Node)
			}
			setLeafNodes = append(setLeafNodes, n)
			setLeafVals = append(setLeafVals, op.Value)
		case replog.OpSetOp:
			if n.IsLeaf() {
				return fmt.Errorf("%w: wave %d set-op targets leaf %d", ErrDiverged, w.Seq, op.Node)
			}
			setOpNodes = append(setOpNodes, n)
			setOpOps = append(setOpOps, Op{A: op.A, B: op.B, C: op.C})
		default:
			return fmt.Errorf("%w: wave %d has unknown op kind %d", ErrDiverged, w.Seq, op.Kind)
		}
	}

	if len(grows) > 0 {
		pairs := e.GrowBatch(grows)
		for j, i := range growIdx {
			op := &w.Ops[i]
			if pairs[j][0].ID != op.LeftID || pairs[j][1].ID != op.RightID {
				return fmt.Errorf("%w: wave %d grow at node %d assigned IDs (%d,%d), log says (%d,%d)",
					ErrDiverged, w.Seq, op.Node, pairs[j][0].ID, pairs[j][1].ID, op.LeftID, op.RightID)
			}
		}
	}
	if len(collapses) > 0 {
		e.CollapseBatch(collapses)
	}
	if len(setLeafNodes) > 0 {
		e.SetLeaves(setLeafNodes, setLeafVals)
	}
	if len(setOpNodes) > 0 {
		e.SetOps(setOpNodes, setOpOps)
	}
	if root := e.Root(); root != w.Root {
		return fmt.Errorf("%w: after wave %d root is %d, log says %d", ErrDiverged, w.Seq, root, w.Root)
	}
	// A verified wave from a newer leadership term moves the replica into
	// that term (epoch fencing rejects the reverse direction; see
	// Follower.Apply). Contiguity checks are the Follower's job.
	e.AdoptEpoch(w.EpochOrDefault())
	return nil
}

// Follower is a replica of a served expression tree: it bootstraps from a
// leader snapshot and applies shipped waves in order, tracking the applied
// sequence number. All methods are safe for concurrent use (reads and
// applies serialize on one mutex — a follower is a read replica, not a
// second writer).
type Follower struct {
	mu       sync.Mutex
	e        *Expr
	seq      uint64
	promoted bool
}

// NewFollower bootstraps a replica from a leader snapshot. Options pass
// through to RestoreExpr (WithWorkers / WithGrain; seed and tour come from
// the snapshot).
func NewFollower(snapshot []byte, opts ...Option) (*Follower, error) {
	e, seq, err := RestoreExpr(snapshot, opts...)
	if err != nil {
		return nil, err
	}
	return &Follower{e: e, seq: seq}, nil
}

// Apply replays one wave. Waves at or before the follower's sequence are
// skipped (idempotent re-delivery); a skipped-ahead sequence is ErrWaveGap
// — fetch the missing range or re-bootstrap from a snapshot. A wave
// stamped with an epoch below the follower's is ErrStaleEpoch — the
// fence against a demoted leader's late writes; a higher epoch is
// adopted. A promoted follower refuses all further waves (ErrPromoted).
func (f *Follower) Apply(w Wave) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return ErrPromoted
	}
	if w.Seq <= f.seq {
		return nil
	}
	if ep := w.EpochOrDefault(); ep < f.e.Epoch() {
		return fmt.Errorf("%w: follower at epoch %d, wave %d carries epoch %d",
			ErrStaleEpoch, f.e.Epoch(), w.Seq, ep)
	}
	if w.Seq != f.seq+1 {
		return fmt.Errorf("%w: at %d, got wave %d", ErrWaveGap, f.seq, w.Seq)
	}
	if err := f.e.ApplyWave(w); err != nil {
		return err
	}
	f.seq = w.Seq
	return nil
}

// ApplyAll replays a batch of waves in order (Since output ships here).
func (f *Follower) ApplyAll(ws []Wave) error {
	for i := range ws {
		if err := f.Apply(ws[i]); err != nil {
			return err
		}
	}
	return nil
}

// Seq returns the applied-wave sequence number.
func (f *Follower) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Epoch returns the leadership term the replica currently trusts.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e.Epoch()
}

// Root returns the replica's root value.
func (f *Follower) Root() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e.Root()
}

// ValueID returns the value of the subexpression rooted at node id.
func (f *Follower) ValueID(id int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id < 0 || id >= len(f.e.t.Nodes) || f.e.t.Nodes[id] == nil {
		return 0, fmt.Errorf("dyntc: follower has no live node %d", id)
	}
	return f.e.Value(f.e.t.Nodes[id]), nil
}

// ReadQuery executes one cross-tree per-tree read against the replica,
// returning the value together with the replica's applied-wave sequence —
// both taken under one lock, so the sequence names exactly the state that
// answered. This is the follower side of the query engine's Reader
// contract: read replicas serve the same POST /v1/query surface the
// leader does (read offload).
func (f *Follower) ReadQuery(r QueryRead) (value int64, seq uint64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	node := func(id int) (*Node, error) {
		if id < 0 || id >= len(f.e.t.Nodes) || f.e.t.Nodes[id] == nil {
			return nil, fmt.Errorf("dyntc: follower has no live node %d", id)
		}
		return f.e.t.Nodes[id], nil
	}
	switch r.Kind {
	case query.ReadRoot:
		return f.e.Root(), f.seq, nil
	case query.ReadValue:
		n, err := node(r.Node)
		if err != nil {
			return 0, 0, err
		}
		return f.e.Value(n), f.seq, nil
	case query.ReadSubtree:
		if !f.e.HasTour() {
			return 0, 0, query.ErrNoTour
		}
		n, err := node(r.Node)
		if err != nil {
			return 0, 0, err
		}
		return int64(f.e.SubtreeSize(n)), f.seq, nil
	}
	return 0, 0, fmt.Errorf("%w: unknown read kind %d", query.ErrBadSpec, r.Kind)
}

// Query runs fn with exclusive access to the replica's Expr. fn must
// treat the Expr as read-only: mutating a follower outside Apply breaks
// replay determinism.
func (f *Follower) Query(fn func(*Expr)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f.e)
}

// Snapshot re-serializes the replica at its current sequence — a follower
// can seed further followers (fan-out) or persist its own checkpoint.
func (f *Follower) Snapshot() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e.Snapshot(f.seq)
}

// Promote ends the follower's replica life and begins a new leadership
// term: the epoch advances by one and the state is re-serialized as a
// snapshot of the new term, which the caller restores into a serving
// Engine (Forest.Restore / RestoreExpr) to take writes. Every wave the
// new leader seals carries the bumped epoch, so the per-wave
// verification every replica already performs doubles as the fence: any
// late wave from the demoted leader arrives with the old epoch and is
// rejected (ErrStaleEpoch) by logs and followers that have seen the new
// term.
//
// Promote is the point of no return for this Follower — further Apply
// calls fail with ErrPromoted. The caller is responsible for promoting
// only a caught-up follower (compare Seq against the last leader
// sequence it can observe): waves the old leader acknowledged past the
// promotion point are lost, exactly as in any asynchronous-replication
// failover.
func (f *Follower) Promote() (snapshot []byte, seq, epoch uint64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, 0, 0, ErrPromoted
	}
	// Capture the raw prior epoch so the error path restores it exactly:
	// a decrement would bypass AdoptEpoch's never-backwards invariant and
	// the zero-maps-to-one convention.
	prev := f.e.epoch
	f.e.AdoptEpoch(f.e.Epoch() + 1)
	data, err := f.e.Snapshot(f.seq)
	if err != nil {
		// Leave the follower usable: nothing observed the new epoch.
		f.e.epoch = prev
		return nil, 0, 0, err
	}
	f.promoted = true
	return data, f.seq, f.e.Epoch(), nil
}

// PreparePromote serializes the replica's state re-stamped with the next
// leadership term (epoch+1) without committing anything: the replica's
// own epoch is untouched and Apply keeps working, so a caller promoting
// many trees can restore every prepared snapshot first and only then
// commit each follower with MarkPromoted — a failure part-way leaves all
// replicas live and a retry can succeed (all-or-nothing promotion).
func (f *Follower) PreparePromote() (snapshot []byte, seq, epoch uint64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, 0, 0, ErrPromoted
	}
	prev := f.e.epoch
	next := f.e.Epoch() + 1
	f.e.AdoptEpoch(next)
	data, err := f.e.Snapshot(f.seq)
	f.e.epoch = prev
	if err != nil {
		return nil, 0, 0, err
	}
	return data, f.seq, next, nil
}

// MarkPromoted commits a prepared promotion: further Apply calls fail
// with ErrPromoted. Idempotent. See PreparePromote.
func (f *Follower) MarkPromoted() {
	f.mu.Lock()
	f.promoted = true
	f.mu.Unlock()
}

// Promote turns a caught-up Follower into the seed of a new leadership
// term at epoch+1. See Follower.Promote.
func Promote(f *Follower) (snapshot []byte, seq, epoch uint64, err error) {
	return f.Promote()
}

package dyntc

// This file is the cross-tree query face of the package (internal/query):
// one Forest.Query call scatters a per-tree read over any subset of the
// forest, rides each tree's coalescing engine (reads join in-flight
// waves — no global barrier), and gathers the partial results into one
// combined answer with the applied-wave sequence every tree answered at.
//
//	res, err := forest.Query(dyntc.ForestQuery{
//		Select:  dyntc.QueryRange(1, 10_000),
//		Read:    dyntc.ReadRoot(),
//		Combine: dyntc.CombineSum(),
//	})
//	// res.Combined, res.Trees, res.Detail[i].Seq ...
//
// cmd/dyntcd surfaces the same engine as POST /v1/query, on leaders and
// on read-replica followers (read offload).

import "dyntc/internal/query"

// ForestQuery is one cross-tree query: which trees to read (Select),
// what to read on each (Read), and how to join the answers (Combine).
// Zero-value Select means every tree; zero-value Combine sums. Set
// Detail for the per-tree breakdown (value, applied-wave sequence,
// error) — off by default so huge aggregates allocate no per-tree
// results.
type ForestQuery = query.Spec

// QuerySelector names the trees a ForestQuery scatters over.
type QuerySelector = query.Selector

// QueryRead is the per-tree read of a ForestQuery.
type QueryRead = query.Read

// QueryCombiner joins per-tree values into the forest-wide answer.
type QueryCombiner = query.Combiner

// QueryResult is a completed cross-tree query: the combined value, how
// many trees answered, and per-tree detail (value + applied-wave
// sequence + error), in scatter order.
type QueryResult = query.Result

// TreeQueryResult is one tree's contribution to a QueryResult.
type TreeQueryResult = query.TreeResult

// Per-tree query errors (returned in TreeQueryResult.Err).
var (
	// ErrQueryNoTree reports a selected tree id the forest does not serve.
	ErrQueryNoTree = query.ErrNoTree
	// ErrQueryNoTour reports a subtree-size read on a tree built without
	// WithTour.
	ErrQueryNoTour = query.ErrNoTour
)

// QueryAll selects every served tree.
func QueryAll() QuerySelector { return query.All() }

// QueryIDs selects exactly the given trees; ids the forest does not serve
// produce per-tree ErrQueryNoTree results.
func QueryIDs(ids ...TreeID) QuerySelector { return query.IDs(ids...) }

// QueryRange selects served trees with from <= id <= to (inclusive).
func QueryRange(from, to TreeID) QuerySelector { return query.Range(from, to) }

// ReadRoot reads each selected tree's root value.
func ReadRoot() QueryRead { return query.Root() }

// ReadValue reads the value of the subexpression at dense node id node.
func ReadValue(node int) QueryRead { return query.Value(node) }

// ReadSubtreeSize reads the subtree node count at dense node id node
// (every selected tree must maintain its tour — see WithTour).
func ReadSubtreeSize(node int) QueryRead { return query.SubtreeSize(node) }

// CombineSum combines per-tree values by plain int64 addition.
func CombineSum() QueryCombiner { return query.Sum() }

// CombineMin combines by minimum.
func CombineMin() QueryCombiner { return query.Min() }

// CombineMax combines by maximum.
func CombineMax() QueryCombiner { return query.Max() }

// CombineCount counts the trees that answered (read values ignored).
func CombineCount() QueryCombiner { return query.Count() }

// CombineRingAdd folds per-tree values with r.Add starting from r.Zero().
func CombineRingAdd(r Ring) QueryCombiner { return query.RingAdd(r) }

// CombineRingMul folds per-tree values with r.Mul starting from r.One().
func CombineRingMul(r Ring) QueryCombiner { return query.RingMul(r) }

// Query runs one cross-tree query over the forest: the per-tree reads
// scatter across the forest's persistent query pool and join each
// engine's in-flight coalescing window, so a 10k-tree aggregate is one
// call, not 10k round-trips, and mutation traffic keeps flowing while
// the query is in flight. Each per-tree result reports the applied-wave
// sequence the read observed — exactly which version of that tree
// answered. Safe for concurrent use with every other Forest method.
func (f *Forest) Query(q ForestQuery) (QueryResult, error) {
	return f.planner.Run(query.ForestReader{F: f.inner}, q)
}

package dyntc

// Integration tests exercising several modules together: the public facade
// with tour maintenance, the series-parallel application on top of the
// contraction core, and cross-checks between independently maintained
// structures over the same tree.

import (
	"testing"

	"dyntc/internal/prng"
	"dyntc/internal/seqdyn"
	"dyntc/internal/spgraph"
)

// TestExprVsSeqdynLockstep drives the facade and the sequential baseline
// through an identical random workload and compares every answer.
func TestExprVsSeqdynLockstep(t *testing.T) {
	ring := ModRing(1_000_000_007)
	e := NewExpr(ring, 7, WithSeed(21))
	p := seqdyn.NewPathEval(e.Tree())
	src := prng.New(23)

	for step := 0; step < 150; step++ {
		leaves := e.Tree().Leaves()
		switch src.Intn(3) {
		case 0:
			leaf := leaves[src.Intn(len(leaves))]
			op := OpAdd(ring)
			if src.Intn(2) == 1 {
				op = OpMul(ring)
			}
			e.Grow(leaf, op, src.Int63(), src.Int63())
			p.Rebuild() // baseline re-syncs after structural changes
		case 1:
			leaf := leaves[src.Intn(len(leaves))]
			v := src.Int63()
			e.SetLeaf(leaf, v)
			p.SetValue(leaf, v)
		default:
			var q *Node
			for q == nil {
				cand := e.Tree().Nodes[src.Intn(len(e.Tree().Nodes))]
				if cand != nil {
					q = cand
				}
			}
			if e.Value(q) != p.Value(q) {
				t.Fatalf("step %d: query disagreement at node %d", step, q.ID)
			}
		}
		if e.Root() != p.Root() {
			t.Fatalf("step %d: root %d vs baseline %d", step, e.Root(), p.Root())
		}
	}
}

// TestTourTracksContraction keeps the tour and the contraction over one
// tree and checks both stay consistent under interleaved operations.
func TestTourTracksContraction(t *testing.T) {
	ring := MinPlus()
	e := NewExpr(ring, 5, WithSeed(31), WithTour())
	src := prng.New(37)
	for step := 0; step < 100; step++ {
		leaves := e.Tree().Leaves()
		leaf := leaves[src.Intn(len(leaves))]
		if src.Intn(4) == 0 && e.Tree().LeafCount() > 2 {
			var cand *Node
			for _, n := range e.Tree().Nodes {
				if n != nil && !n.IsLeaf() && n.Left.IsLeaf() && n.Right.IsLeaf() {
					cand = n
					break
				}
			}
			if cand != nil {
				e.Collapse(cand, int64(src.Intn(100)))
			}
		} else {
			e.Grow(leaf, OpAdd(ring), int64(src.Intn(100)), int64(src.Intn(100)))
		}
		if got, want := e.Root(), e.Tree().Eval(); got != want {
			t.Fatalf("step %d: root %d want %d", step, got, want)
		}
		// Tour properties consistent with the real tree.
		n := e.Tree().Nodes[src.Intn(len(e.Tree().Nodes))]
		if n == nil {
			continue
		}
		depth := 0
		for x := n; x.Parent != nil; x = x.Parent {
			depth++
		}
		if e.Ancestors(n) != depth {
			t.Fatalf("step %d: ancestors(%d) = %d want %d", step, n.ID, e.Ancestors(n), depth)
		}
	}
}

// TestSPGraphUnderHeavyChurn stresses the §6 application across all three
// semirings simultaneously on mirrored topologies.
func TestSPGraphUnderHeavyChurn(t *testing.T) {
	sp := spgraph.New(spgraph.ShortestPath, 41, 10)
	wp := spgraph.New(spgraph.WidestPath, 43, 10)
	src := prng.New(47)
	for step := 0; step < 200; step++ {
		i := src.Intn(sp.EdgeCount())
		se := sp.Edges()[i]
		we := wp.Edges()[i] // same growth history ⇒ same index space
		w1, w2 := int64(src.Intn(500)), int64(src.Intn(500))
		switch src.Intn(3) {
		case 0:
			sp.Subdivide(se, w1, w2)
			wp.Subdivide(we, w1, w2)
		case 1:
			sp.Duplicate(se, w1, w2)
			wp.Duplicate(we, w1, w2)
		default:
			sp.SetWeight(se, w1)
			wp.SetWeight(we, w1)
		}
		if got, want := sp.Metric(), sp.MetricOracle(); got != want {
			t.Fatalf("step %d: shortest %d want %d", step, got, want)
		}
		if got, want := wp.Metric(), wp.MetricOracle(); got != want {
			t.Fatalf("step %d: widest %d want %d", step, got, want)
		}
	}
}

// TestMeteringMonotone checks the PRAM meters accumulate sensibly across a
// workload (work ≥ span, processors ≥ 1 once used).
func TestMeteringMonotone(t *testing.T) {
	ring := ModRing(97)
	e := NewExpr(ring, 1, WithSeed(51))
	src := prng.New(53)
	var lastWork int64
	for i := 0; i < 40; i++ {
		leaves := e.Tree().Leaves()
		e.Grow(leaves[src.Intn(len(leaves))], OpAdd(ring), 1, 2)
		m := e.PRAM()
		if m.Work < lastWork {
			t.Fatal("work went backwards")
		}
		if m.Work < m.Steps {
			t.Fatalf("work %d < steps %d", m.Work, m.Steps)
		}
		lastWork = m.Work
	}
	if e.PRAM().MaxProcs < 1 {
		t.Fatal("no processors recorded")
	}
}

// TestListAndExprShareNothing guards against accidental global state: two
// structures with the same seed must evolve identically, and structures
// with different seeds independently.
func TestListAndExprShareNothing(t *testing.T) {
	mk := func(seed uint64) []int64 {
		ring := ModRing(1_000_000_007)
		e := NewExpr(ring, 1, WithSeed(seed))
		src := prng.New(99)
		var roots []int64
		for i := 0; i < 30; i++ {
			leaves := e.Tree().Leaves()
			e.Grow(leaves[src.Intn(len(leaves))], OpMul(ring), src.Int63(), src.Int63())
			roots = append(roots, e.Root())
		}
		return roots
	}
	a, b, c := mk(1), mk(1), mk(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	// Values are workload-determined, equal across seeds; but the PT shape
	// differs — just ensure c computed correctly (values match since the
	// workload is identical and values are seed-independent).
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("expression values must not depend on PT randomness")
		}
	}
}

package dyntc

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"dyntc/internal/engine"
	"dyntc/internal/query"
	"dyntc/internal/sched"
)

// SchedPool is the shared runtime scheduler: one work-stealing worker
// pool (internal/sched) that engine waves, cross-tree query scatter and
// follower replay all submit to. Create one per process (NewSchedPool)
// and pass it through BatchOptions.Pool / NewForest / WithPool so a
// forest of trees shares a fixed worker set instead of pooling per tree;
// leave it nil to use the process-wide default pool.
type SchedPool = sched.Pool

// SchedStats is a point-in-time snapshot of a scheduler pool's activity
// (workers, steals, queue depth, utilization).
type SchedStats = sched.Stats

// NewSchedPool starts a shared runtime scheduler with the given number of
// workers (GOMAXPROCS when <= 0). Close it only after everything
// submitting to it has quiesced.
func NewSchedPool(workers int) *SchedPool { return sched.NewPool(workers) }

// DefaultSchedPool returns the process-wide shared scheduler pool, which
// everything without an explicit pool uses. It is never closed.
func DefaultSchedPool() *SchedPool { return sched.Default() }

// This file is the concurrent face of the package: Expr.Serve wraps an
// Expr in a request-coalescing engine (internal/engine) that makes it safe
// for arbitrarily many goroutines, amortizing concurrent traffic into the
// batch requests of the paper's §1.4; NewForest shards independent
// expression trees across engines so unrelated trees proceed fully in
// parallel.

// Engine is a concurrent, linearizable front end over one Expr. All
// methods are safe for concurrent use from any number of goroutines;
// requests submitted while the executor is busy coalesce into batches, so
// throughput grows with concurrency (Theorem 4.2's O(log(|U|·log n))
// batch bound, amortized over |U| concurrent callers).
//
// While an Engine is open, the wrapped Expr must not be used directly —
// route everything through the Engine (Query gives linearized access for
// anything without a dedicated method).
type Engine struct {
	expr  *Expr
	inner *engine.Engine
}

// Future is a pending engine request. Wait/Value/Pair block until the
// request has executed.
type Future = engine.Future

// EngineStats is a snapshot of an engine's coalescing behaviour.
type EngineStats = engine.Stats

// BatchOptions tunes the adaptive batching window. The zero value gives
// defaults: flush whenever the executor goes idle (no added latency),
// batches capped at 1024, queue capacity 4096, wave execution on the
// Expr's machine as configured.
type BatchOptions struct {
	// MaxBatch caps requests per flush.
	MaxBatch int
	// Window, when positive, lets a flush accumulate for up to this long
	// (counted from its first request) before executing, trading latency
	// for larger batches.
	Window time.Duration
	// Queue is the submit queue capacity; submits block once it fills.
	Queue int
	// Shed switches the full-queue policy from blocking to load shedding:
	// a submit that finds the queue at capacity fails immediately with
	// engine.ErrOverloaded instead of blocking the caller. Servers
	// translate that into 429 + Retry-After (cmd/dyntcd does); library
	// callers that want backpressure leave it false. Shed requests are
	// counted in EngineStats.Shed.
	Shed bool
	// Workers, when positive, sets the goroutine parallelism hint of the
	// PRAM machine executing each wave's node-disjoint batches: how many
	// shared-pool workers one wave's steps may recruit. Metering is
	// unaffected. Use a negative value for GOMAXPROCS.
	Workers int
	// Pool, when set, is the shared runtime scheduler the engine and the
	// Expr's machine run on: wave sub-batches are scheduled as task
	// groups on one serial lane per engine, and the machine's parallel
	// steps chunk onto the same workers, so any number of engines share
	// one fixed worker set. Nil keeps wave execution on the executor
	// goroutine (the machine still chunks onto the process-default pool).
	Pool *SchedPool
	// WaveTap, when set, receives the sealed change record of every
	// executed mutating wave, on the executor goroutine — the durability
	// seam: pass a WaveLog's Append (or any shipper) to turn the engine's
	// wave stream into a replayable change log. Per-engine: when serving a
	// Forest, attach taps per tree with Engine.SetWaveTap instead.
	WaveTap func(Wave)
	// Metrics, when set, turns on wave pipeline timing and feeds the
	// engine histogram bundle (flush latency, coalesce wait, per-stage
	// breakdown). One bundle (NewEngineMetrics) is shared by every engine
	// it is passed to. Nil keeps the timing path disabled: the engine
	// pays one boolean check per flush and nothing else.
	Metrics *EngineMetrics
	// Trace, when set, samples every TraceSample-th flush into the ring
	// as a WaveTraceRecord (full stage breakdown). Like Metrics it turns
	// on wave timing; the ring is shared across engines.
	Trace *WaveTraceRing
	// Spans, when set, records distributed-trace spans for sampled
	// flushes (every TraceSample-th, plus every flush carrying a request
	// submitted through the Traced view): a flush span, per-stage child
	// spans, and a deterministic wave anchor span per sealed wave that
	// WAL appends and follower replays stitch to by (epoch, seq). One
	// SpanLog (NewSpanLog) is shared by every engine it is passed to.
	// Like Metrics it turns on wave timing.
	Spans *SpanLog
	// TraceSample is the flush sampling stride for Trace (default 16; 1
	// records every flush).
	TraceSample int
	// SlowWave, when set, receives (on the executor goroutine) the trace
	// record of every flush at least SlowWaveThreshold long, sampled or
	// not — the structured slow-wave log hook. Keep it cheap or hand off.
	SlowWave func(WaveTraceRecord)
	// SlowWaveThreshold is the SlowWave latency floor (default 25ms).
	SlowWaveThreshold time.Duration
	// Faults, when set, is a deterministic fault-injection schedule
	// (NewFaultInjector): the engine checks site "engine.wave" once per
	// executed wave, and an injected error crashes the wave into a
	// poisoned engine — the chaos suite's stand-in for a leader dying
	// mid-traffic. Nil (production) injects nothing.
	Faults *FaultInjector
	// Events, when set, receives the engine's lifecycle events (shed
	// bursts, adaptive flush-cap shifts) in the shared journal served at
	// /v1/events. One EventJournal is shared by every subsystem.
	Events *EventJournal
	// Boost, when set, is the anomaly flight recorder's sampling
	// override: while active, every flush is trace- and span-sampled
	// regardless of TraceSample. Checking it costs the unsampled flush
	// path one atomic load.
	Boost *TraceBoost
	// FlushSink, when set, receives every flush's cost sample (forest
	// tree id, request count, duration) on the executor — the feed for
	// anomaly detectors and per-tree hot-spot attribution. Setting it
	// turns on wave timing like Metrics/Trace/Spans do. Keep it cheap.
	FlushSink func(tree uint64, reqs int, flushNS int64)
	// ShedSink, when set, receives per-tree load-shed counts on the
	// shedding submitter's goroutine.
	ShedSink func(tree uint64, n int)
}

// Serve starts an engine over e and returns it. Close the engine to drain
// pending requests and reclaim the Expr for direct use. A non-zero
// opts.Workers reconfigures the Expr's PRAM machine before the executor
// starts.
func (e *Expr) Serve(opts BatchOptions) *Engine {
	if opts.Workers != 0 {
		e.mach.SetWorkers(opts.Workers)
		opts.Workers = e.mach.Workers()
	}
	if opts.Pool != nil {
		e.mach.SetPool(opts.Pool)
	}
	return &Engine{
		expr: e,
		inner: engine.New(e, engine.Options{
			MaxBatch:          opts.MaxBatch,
			Window:            opts.Window,
			Queue:             opts.Queue,
			Shed:              opts.Shed,
			Workers:           opts.Workers,
			WaveTap:           opts.WaveTap,
			Pool:              opts.Pool,
			Obs:               opts.Metrics,
			Trace:             opts.Trace,
			Spans:             opts.Spans,
			TraceSample:       opts.TraceSample,
			SlowWave:          opts.SlowWave,
			SlowWaveThreshold: opts.SlowWaveThreshold,
			Faults:            opts.Faults,
			Events:            opts.Events,
			Boost:             opts.Boost,
			FlushSink:         opts.FlushSink,
			ShedSink:          opts.ShedSink,
		}),
	}
}

// Close stops accepting requests and waits for pending ones to drain.
func (en *Engine) Close() { en.inner.Close() }

// Stats returns a point-in-time snapshot of coalescing behaviour.
func (en *Engine) Stats() EngineStats { return en.inner.Stats() }

// AppliedSeq returns the engine's wave change-log position: the sequence
// number of the last mutating wave executed on the tree.
func (en *Engine) AppliedSeq() uint64 { return en.inner.AppliedSeq() }

// Epoch returns the leadership term stamped into the engine's sealed
// waves (1 for a fresh tree; a restored tree carries its snapshot's
// epoch, so promotion flows the bumped term in via Forest.Restore).
func (en *Engine) Epoch() uint64 { return en.inner.Epoch() }

// SetEpoch advances the wave-stamp epoch (never backwards). Startup
// recovery calls it after replaying a WAL tail that crossed a failover;
// normal promotion does not need it.
func (en *Engine) SetEpoch(epoch uint64) { en.inner.SetEpoch(epoch) }

// SetAppliedSeq seeds the engine's wave change-log position. It exists
// for startup recovery: after a snapshot restore the engine already sits
// at the snapshot's sequence (Forest.Restore seeds it), but replaying a
// recovered WAL tail on top of the restore advances the tree past that
// point, and the next sealed wave must continue the sequence. Call it
// only before the engine receives traffic.
func (en *Engine) SetAppliedSeq(seq uint64) { en.inner.SetAppliedSeq(seq) }

// SetWaveTap installs (nil removes) the engine's wave tap: every executed
// mutating wave's sealed change record is passed to tap on the executor
// goroutine. Attach before traffic (or right after a restore) for a
// gapless log; a WaveLog's Append is the usual tap.
func (en *Engine) SetWaveTap(tap func(Wave)) { en.inner.SetWaveTap(engine.WaveTap(tap)) }

// Snapshot captures the served tree through an engine barrier: the codec
// of Expr.Snapshot at the engine's current applied-wave sequence, taken
// against a quiescent tree, linearized with concurrent traffic.
func (en *Engine) Snapshot() ([]byte, error) {
	data, _, err := en.SnapshotAt()
	return data, err
}

// SnapshotAt is Snapshot returning also the applied-wave sequence the
// snapshot captures — what log compaction trims the wave log to.
func (en *Engine) SnapshotAt() ([]byte, uint64, error) {
	var data []byte
	var seq uint64
	var err error
	f := en.inner.Barrier(func(engine.Host) {
		seq = en.inner.AppliedSeq()
		data, err = en.expr.Snapshot(seq)
	})
	if werr := f.Wait(); werr != nil {
		f.Recycle()
		return nil, 0, werr
	}
	f.Recycle()
	return data, seq, err
}

// --- asynchronous API: submit now, redeem the Future later ---

// GrowAsync submits a leaf expansion; Future.Pair returns the new leaves.
func (en *Engine) GrowAsync(leaf *Node, op Op, leftVal, rightVal int64) *Future {
	return en.inner.Grow(engine.Ref(leaf), op, leftVal, rightVal)
}

// CollapseAsync submits a leaf-pair deletion.
func (en *Engine) CollapseAsync(n *Node, newValue int64) *Future {
	return en.inner.Collapse(engine.Ref(n), newValue)
}

// SetLeafAsync submits a leaf value update.
func (en *Engine) SetLeafAsync(leaf *Node, v int64) *Future {
	return en.inner.SetLeaf(engine.Ref(leaf), v)
}

// SetOpAsync submits an internal-operation update.
func (en *Engine) SetOpAsync(n *Node, op Op) *Future {
	return en.inner.SetOp(engine.Ref(n), op)
}

// ValueAsync submits a subexpression value query.
func (en *Engine) ValueAsync(n *Node) *Future {
	return en.inner.Value(engine.Ref(n))
}

// RootAsync submits a root value query.
func (en *Engine) RootAsync() *Future { return en.inner.Root() }

// --- synchronous API: one blocking call per request ---
// Each wrapper fully consumes its Future and recycles it, so the blocking
// call path allocates nothing per request in steady state.

// Grow expands leaf into an op node with two fresh leaves and returns them.
func (en *Engine) Grow(leaf *Node, op Op, leftVal, rightVal int64) (l, r *Node, err error) {
	f := en.GrowAsync(leaf, op, leftVal, rightVal)
	l, r, err = f.Pair()
	f.Recycle()
	return l, r, err
}

// Collapse deletes n's two leaf children, making n a leaf with newValue.
func (en *Engine) Collapse(n *Node, newValue int64) error {
	f := en.CollapseAsync(n, newValue)
	err := f.Wait()
	f.Recycle()
	return err
}

// SetLeaf updates one leaf value.
func (en *Engine) SetLeaf(leaf *Node, v int64) error {
	f := en.SetLeafAsync(leaf, v)
	err := f.Wait()
	f.Recycle()
	return err
}

// SetOp updates the operation at an internal node.
func (en *Engine) SetOp(n *Node, op Op) error {
	f := en.SetOpAsync(n, op)
	err := f.Wait()
	f.Recycle()
	return err
}

// Value returns the value of the subexpression rooted at n.
func (en *Engine) Value(n *Node) (int64, error) {
	f := en.ValueAsync(n)
	v, err := f.Value()
	f.Recycle()
	return v, err
}

// Root returns the value of the whole expression.
func (en *Engine) Root() (int64, error) {
	f := en.RootAsync()
	v, err := f.Value()
	f.Recycle()
	return v, err
}

// ErrLoggedBarrier reports a mutation attempted inside a Query callback
// on a wave-tapped (replicated) engine. Barrier mutations bypass the wave
// change-log — followers would never see them and silently diverge — so
// on a tapped engine they are refused (the tree is untouched) and Query
// returns this error. Route mutations through the Engine's own methods,
// which the log records; untapped engines are unaffected.
var ErrLoggedBarrier = errors.New("dyntc: mutation inside Query on a replicated engine bypasses the wave log; use Engine methods")

// Query runs fn with exclusive, linearized access to the Expr: fn sees a
// quiescent tree and may call any Expr method. Use it for the §5 tour
// queries and anything else without a dedicated Engine method.
//
// On a wave-tapped engine (one feeding a change log) fn must not mutate
// the tree: mutation attempts are refused — Grow returns nil leaves, the
// set/collapse calls become no-ops — and Query returns ErrLoggedBarrier.
func (en *Engine) Query(fn func(*Expr)) error {
	var qerr error
	f := en.inner.Barrier(func(engine.Host) {
		if !en.inner.Tapped() {
			fn(en.expr)
			return
		}
		en.expr.frozen, en.expr.frozenViolated = true, false
		fn(en.expr)
		en.expr.frozen = false
		if en.expr.frozenViolated {
			en.expr.frozenViolated = false
			qerr = ErrLoggedBarrier
		}
	})
	err := f.Wait()
	f.Recycle()
	if err != nil {
		return err
	}
	return qerr
}

// QueryAsync submits fn for exclusive, linearized execution against a
// quiescent Expr and returns immediately; Future.Wait blocks until fn has
// run. It is the asynchronous form of Query. On a wave-tapped
// (replicated) engine the same logged-barrier guard applies: mutation
// attempts inside fn are refused — the tree is untouched, so followers
// cannot silently diverge — but, the future having no error channel for
// it, the violation is not reported; use Query when you need
// ErrLoggedBarrier surfaced.
func (en *Engine) QueryAsync(fn func(*Expr)) *Future {
	return en.inner.Barrier(func(engine.Host) {
		if !en.inner.Tapped() {
			fn(en.expr)
			return
		}
		en.expr.frozen = true
		fn(en.expr)
		en.expr.frozen, en.expr.frozenViolated = false, false
	})
}

// Preorder returns n's 1-based preorder number (requires WithTour on the
// underlying Expr), linearized against concurrent updates.
func (en *Engine) Preorder(n *Node) (int, error) {
	var v int
	err := en.Query(func(e *Expr) { v = e.Preorder(n) })
	return v, err
}

// SubtreeSize returns the node count of n's subtree (requires WithTour).
func (en *Engine) SubtreeSize(n *Node) (int, error) {
	var v int
	err := en.Query(func(e *Expr) { v = e.SubtreeSize(n) })
	return v, err
}

// LCA returns the least common ancestor of u and v (requires WithTour).
func (en *Engine) LCA(u, v *Node) (*Node, error) {
	var n *Node
	err := en.Query(func(e *Expr) { n = e.LCA(u, v) })
	return n, err
}

// --- ID-addressed API, for callers that cannot hold node handles ---
// (cmd/dyntcd resolves wire-format node IDs through these; IDs are the
// dense, lifetime-stable tree.Node.ID values.)

// GrowID is Grow addressed by node ID, returning the new leaves' IDs.
func (en *Engine) GrowID(leafID int, op Op, leftVal, rightVal int64) (lID, rID int, err error) {
	f := en.inner.Grow(engine.RefID(leafID), op, leftVal, rightVal)
	l, r, err := f.Pair()
	f.Recycle()
	if err != nil {
		return 0, 0, err
	}
	return l.ID, r.ID, nil
}

// CollapseID is Collapse addressed by node ID.
func (en *Engine) CollapseID(nodeID int, newValue int64) error {
	f := en.inner.Collapse(engine.RefID(nodeID), newValue)
	err := f.Wait()
	f.Recycle()
	return err
}

// SetLeafID is SetLeaf addressed by node ID.
func (en *Engine) SetLeafID(leafID int, v int64) error {
	f := en.inner.SetLeaf(engine.RefID(leafID), v)
	err := f.Wait()
	f.Recycle()
	return err
}

// SetOpID is SetOp addressed by node ID.
func (en *Engine) SetOpID(nodeID int, op Op) error {
	f := en.inner.SetOp(engine.RefID(nodeID), op)
	err := f.Wait()
	f.Recycle()
	return err
}

// ValueID is Value addressed by node ID.
func (en *Engine) ValueID(nodeID int) (int64, error) {
	f := en.inner.Value(engine.RefID(nodeID))
	v, err := f.Value()
	f.Recycle()
	return v, err
}

// GrowIDAsync is GrowAsync addressed by node ID.
func (en *Engine) GrowIDAsync(leafID int, op Op, leftVal, rightVal int64) *Future {
	return en.inner.Grow(engine.RefID(leafID), op, leftVal, rightVal)
}

// CollapseIDAsync is CollapseAsync addressed by node ID.
func (en *Engine) CollapseIDAsync(nodeID int, newValue int64) *Future {
	return en.inner.Collapse(engine.RefID(nodeID), newValue)
}

// SetLeafIDAsync is SetLeafAsync addressed by node ID.
func (en *Engine) SetLeafIDAsync(leafID int, v int64) *Future {
	return en.inner.SetLeaf(engine.RefID(leafID), v)
}

// SetOpIDAsync is SetOpAsync addressed by node ID.
func (en *Engine) SetOpIDAsync(nodeID int, op Op) *Future {
	return en.inner.SetOp(engine.RefID(nodeID), op)
}

// ValueIDAsync is ValueAsync addressed by node ID.
func (en *Engine) ValueIDAsync(nodeID int) *Future {
	return en.inner.Value(engine.RefID(nodeID))
}

// --- traced API: the ID-addressed methods carrying a trace context ---

// TracedEngine is an Engine view whose submits carry a distributed-trace
// context: the flush that executes a traced request adopts its trace and
// is always recorded into the engine's SpanLog, regardless of sampling.
// The view is a value — obtaining one allocates nothing — and a zero
// TraceContext makes every method behave exactly like its plain form.
type TracedEngine struct {
	en *Engine
	sc TraceContext
}

// Traced returns a view of the engine whose submits carry sc.
func (en *Engine) Traced(sc TraceContext) TracedEngine {
	return TracedEngine{en: en, sc: sc}
}

// GrowID is Engine.GrowID carrying the view's trace context.
func (t TracedEngine) GrowID(leafID int, op Op, leftVal, rightVal int64) (lID, rID int, err error) {
	f := t.en.inner.GrowCtx(t.sc, engine.RefID(leafID), op, leftVal, rightVal)
	l, r, err := f.Pair()
	f.Recycle()
	if err != nil {
		return 0, 0, err
	}
	return l.ID, r.ID, nil
}

// CollapseID is Engine.CollapseID carrying the view's trace context.
func (t TracedEngine) CollapseID(nodeID int, newValue int64) error {
	f := t.en.inner.CollapseCtx(t.sc, engine.RefID(nodeID), newValue)
	err := f.Wait()
	f.Recycle()
	return err
}

// SetLeafID is Engine.SetLeafID carrying the view's trace context.
func (t TracedEngine) SetLeafID(leafID int, v int64) error {
	f := t.en.inner.SetLeafCtx(t.sc, engine.RefID(leafID), v)
	err := f.Wait()
	f.Recycle()
	return err
}

// SetOpID is Engine.SetOpID carrying the view's trace context.
func (t TracedEngine) SetOpID(nodeID int, op Op) error {
	f := t.en.inner.SetOpCtx(t.sc, engine.RefID(nodeID), op)
	err := f.Wait()
	f.Recycle()
	return err
}

// ValueID is Engine.ValueID carrying the view's trace context.
func (t TracedEngine) ValueID(nodeID int) (int64, error) {
	f := t.en.inner.ValueCtx(t.sc, engine.RefID(nodeID))
	v, err := f.Value()
	f.Recycle()
	return v, err
}

// Root is Engine.Root carrying the view's trace context.
func (t TracedEngine) Root() (int64, error) {
	f := t.en.inner.RootCtx(t.sc)
	v, err := f.Value()
	f.Recycle()
	return v, err
}

// GrowIDAsync is Engine.GrowIDAsync carrying the view's trace context.
func (t TracedEngine) GrowIDAsync(leafID int, op Op, leftVal, rightVal int64) *Future {
	return t.en.inner.GrowCtx(t.sc, engine.RefID(leafID), op, leftVal, rightVal)
}

// CollapseIDAsync is Engine.CollapseIDAsync carrying the view's trace
// context.
func (t TracedEngine) CollapseIDAsync(nodeID int, newValue int64) *Future {
	return t.en.inner.CollapseCtx(t.sc, engine.RefID(nodeID), newValue)
}

// SetLeafIDAsync is Engine.SetLeafIDAsync carrying the view's trace
// context.
func (t TracedEngine) SetLeafIDAsync(leafID int, v int64) *Future {
	return t.en.inner.SetLeafCtx(t.sc, engine.RefID(leafID), v)
}

// SetOpIDAsync is Engine.SetOpIDAsync carrying the view's trace context.
func (t TracedEngine) SetOpIDAsync(nodeID int, op Op) *Future {
	return t.en.inner.SetOpCtx(t.sc, engine.RefID(nodeID), op)
}

// ValueIDAsync is Engine.ValueIDAsync carrying the view's trace context.
func (t TracedEngine) ValueIDAsync(nodeID int) *Future {
	return t.en.inner.ValueCtx(t.sc, engine.RefID(nodeID))
}

// RootAsync is Engine.RootAsync carrying the view's trace context.
func (t TracedEngine) RootAsync() *Future {
	return t.en.inner.RootCtx(t.sc)
}

// compile-time check: Expr is an engine host.
var _ engine.Host = (*Expr)(nil)

// TreeID identifies a tree within a Forest.
type TreeID = uint64

// Forest serves many independent expression trees, one engine (and one
// executor goroutine) per tree, so unrelated trees proceed fully in
// parallel. All methods are safe for concurrent use.
type Forest struct {
	inner   *engine.Forest
	workers int        // PRAM worker parallelism applied to every tree
	pool    *SchedPool // shared scheduler applied to every tree (nil = default pool)
	planner *query.Planner

	mu    sync.Mutex
	exprs map[TreeID]*Engine
}

// NewForest creates an empty forest; opts configures every tree's engine,
// opts.Workers the per-tree PRAM parallelism hint, and opts.Pool the
// shared scheduler every tree's waves — and the forest's cross-tree query
// scatter — run on.
func NewForest(opts BatchOptions) *Forest {
	if opts.Workers < 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Forest{
		inner: engine.NewForest(engine.Options{
			MaxBatch:          opts.MaxBatch,
			Window:            opts.Window,
			Queue:             opts.Queue,
			Shed:              opts.Shed,
			Workers:           opts.Workers,
			Pool:              opts.Pool,
			Obs:               opts.Metrics,
			Trace:             opts.Trace,
			Spans:             opts.Spans,
			TraceSample:       opts.TraceSample,
			SlowWave:          opts.SlowWave,
			SlowWaveThreshold: opts.SlowWaveThreshold,
			Faults:            opts.Faults,
			Events:            opts.Events,
			Boost:             opts.Boost,
			FlushSink:         opts.FlushSink,
			ShedSink:          opts.ShedSink,
		}),
		workers: opts.Workers,
		pool:    opts.Pool,
		planner: query.NewPlannerOn(opts.Pool, 0),
		exprs:   make(map[TreeID]*Engine),
	}
}

// treeOptions prepends the forest-wide machine settings so per-tree
// options can still override them.
func (f *Forest) treeOptions(opts []Option) []Option {
	var pre []Option
	if f.workers != 0 {
		pre = append(pre, WithWorkers(f.workers))
	}
	if f.pool != nil {
		pre = append(pre, WithPool(f.pool))
	}
	if len(pre) == 0 {
		return opts
	}
	return append(pre, opts...)
}

// Create adds a new single-leaf expression tree over ring r and returns
// its id and serving engine. The forest's Workers and Pool settings apply
// unless the given options override them.
func (f *Forest) Create(r Ring, rootValue int64, opts ...Option) (TreeID, *Engine) {
	expr := NewExpr(r, rootValue, f.treeOptions(opts)...)
	id, inner := f.inner.Add(expr)
	en := &Engine{expr: expr, inner: inner}
	f.mu.Lock()
	f.exprs[id] = en
	f.mu.Unlock()
	return id, en
}

// Restore rebuilds a tree from a leader snapshot and serves it under the
// caller-chosen id (the replication path: a replica keeps the leader's
// tree id). The engine starts at the snapshot's applied-wave sequence,
// which is returned alongside it. Restore fails when the id is already
// served.
func (f *Forest) Restore(id TreeID, snapshot []byte, opts ...Option) (*Engine, uint64, error) {
	expr, seq, err := RestoreExpr(snapshot, f.treeOptions(opts)...)
	if err != nil {
		return nil, 0, err
	}
	inner, err := f.inner.AddAt(uint64(id), expr)
	if err != nil {
		return nil, 0, err
	}
	inner.SetAppliedSeq(seq)
	en := &Engine{expr: expr, inner: inner}
	f.mu.Lock()
	f.exprs[id] = en
	f.mu.Unlock()
	return en, seq, nil
}

// Get returns the engine serving tree id.
func (f *Forest) Get(id TreeID) (*Engine, bool) {
	f.mu.Lock()
	en, ok := f.exprs[id]
	f.mu.Unlock()
	return en, ok
}

// Drop closes and removes tree id, reporting whether it existed.
func (f *Forest) Drop(id TreeID) bool {
	f.mu.Lock()
	delete(f.exprs, id)
	f.mu.Unlock()
	return f.inner.Drop(id)
}

// Len returns the number of live trees.
func (f *Forest) Len() int { return f.inner.Len() }

// Each calls fn for every live tree. fn must not call back into the
// forest's lifecycle methods.
func (f *Forest) Each(fn func(id TreeID, en *Engine)) {
	f.mu.Lock()
	ens := make(map[TreeID]*Engine, len(f.exprs))
	for id, en := range f.exprs {
		ens[id] = en
	}
	f.mu.Unlock()
	for id, en := range ens {
		fn(id, en)
	}
}

// Stats aggregates the engine stats of every live tree.
func (f *Forest) Stats() EngineStats { return f.inner.TotalStats() }

// Close drains and closes every tree's engine and parks the query pool.
func (f *Forest) Close() {
	f.inner.Close()
	f.planner.Close()
	f.mu.Lock()
	f.exprs = make(map[TreeID]*Engine)
	f.mu.Unlock()
}

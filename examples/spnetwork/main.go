// Dynamic series-parallel network maintenance — the incremental graph
// application the paper announces as follow-up work (§6, "parallel series
// graphs").
//
// A data-center link between two routers evolves: links are subdivided
// (new switches) and duplicated (redundant cables); the structure maintains
// both the shortest s-t latency and the widest s-t bandwidth under batch
// re-measurements, healing O(log n) state per change instead of
// recomputing the network.
//
//	go run ./examples/spnetwork
package main

import (
	"fmt"

	"dyntc/internal/spgraph"
)

func main() {
	// Latency view (min-plus): series adds, parallel takes the fastest.
	lat := spgraph.New(spgraph.ShortestPath, 1, 40)
	// Bandwidth view (max-min): series bottlenecks, parallel aggregates
	// the best alternative.
	bw := spgraph.New(spgraph.WidestPath, 2, 10)

	fmt.Println("single 40ms / 10Gbps link:")
	fmt.Printf("  latency %dms, bandwidth %dGbps\n", lat.Metric(), bw.Metric())

	// A switch splits the link: 15ms + 25ms; capacities 10 and 40.
	l1, l2 := lat.Subdivide(lat.Edges()[0], 15, 25)
	b1, b2 := bw.Subdivide(bw.Edges()[0], 10, 40)
	fmt.Println("after inserting a switch (15+25ms, 10/40Gbps):")
	fmt.Printf("  latency %dms, bandwidth %dGbps\n", lat.Metric(), bw.Metric())

	// Redundant cable across the second hop: 30ms but 100Gbps.
	lat.Duplicate(l2, 25, 30)
	bw.Duplicate(b2, 40, 100)
	fmt.Println("after adding a redundant second hop (30ms/100Gbps):")
	fmt.Printf("  latency %dms, bandwidth %dGbps\n", lat.Metric(), bw.Metric())

	// The first hop degrades badly; re-measure in a batch.
	lat.SetWeights([]*spgraph.Edge{l1}, []int64{55})
	bw.SetWeights([]*spgraph.Edge{b1}, []int64{3})
	fmt.Println("after first hop degrades (55ms, 3Gbps):")
	fmt.Printf("  latency %dms, bandwidth %dGbps\n", lat.Metric(), bw.Metric())
	fmt.Printf("  (healed %d rake records)\n", lat.Stats().WoundRecords)

	// Add a parallel first hop to route around the degradation.
	lat.Duplicate(l1, 55, 12)
	bw.Duplicate(b1, 3, 25)
	fmt.Println("after provisioning a parallel first hop (12ms/25Gbps):")
	fmt.Printf("  latency %dms, bandwidth %dGbps\n", lat.Metric(), bw.Metric())
}

// Dynamically maintained canonical forms (unordered-isomorphism codes) —
// application (e) of Theorem 5.2.
//
// Two expression trees evolve through different edit histories; their
// randomized canonical codes, maintained incrementally by the contraction
// engine over GF(p), agree exactly when the underlying unordered shapes are
// isomorphic (verified against the deterministic AHU form).
//
//	go run ./examples/isomorphism
package main

import (
	"fmt"

	"dyntc/internal/canon"
	"dyntc/internal/core"
	"dyntc/internal/tree"
)

func main() {
	h := canon.NewHasher(2024)

	// Tree A: grow a chain by always extending the LEFT child.
	ta := tree.New(h.Ring, h.LeafCode())
	ca := core.New(ta, 1, nil)
	curA := ta.Root
	for i := 0; i < 4; i++ {
		pair := ca.AddLeaves([]core.AddOp{{Leaf: curA, Op: h.Op,
			LeftVal: h.LeafCode(), RightVal: h.LeafCode()}})
		curA = pair[0][0]
	}

	// Tree B: grow a chain by alternating sides — a mirror-image history.
	tb := tree.New(h.Ring, h.LeafCode())
	cb := core.New(tb, 2, nil)
	curB := tb.Root
	for i := 0; i < 4; i++ {
		pair := cb.AddLeaves([]core.AddOp{{Leaf: curB, Op: h.Op,
			LeftVal: h.LeafCode(), RightVal: h.LeafCode()}})
		curB = pair[0][i%2]
	}

	fmt.Println("A: left-extended chain, code =", ca.RootValue())
	fmt.Println("B: zigzag chain,       code =", cb.RootValue())
	fmt.Println("codes equal:           ", ca.RootValue() == cb.RootValue())
	fmt.Println("AHU oracle isomorphic: ", canon.Isomorphic(ta.Root, tb.Root))

	// Tree C: a balanced shape of the same size — NOT isomorphic.
	tc := tree.New(h.Ring, h.LeafCode())
	cc := core.New(tc, 3, nil)
	frontier := []*tree.Node{tc.Root}
	for len(frontier) < 5 {
		leaf := frontier[0]
		frontier = frontier[1:]
		pair := cc.AddLeaves([]core.AddOp{{Leaf: leaf, Op: h.Op,
			LeftVal: h.LeafCode(), RightVal: h.LeafCode()}})
		frontier = append(frontier, pair[0][0], pair[0][1])
	}

	fmt.Println("\nC: balanced shape,     code =", cc.RootValue())
	fmt.Println("A ≅ C by codes:        ", ca.RootValue() == cc.RootValue())
	fmt.Println("AHU oracle isomorphic: ", canon.Isomorphic(ta.Root, tc.Root))

	// Continue editing A; its code tracks the shape change immediately.
	ca.AddLeaves([]core.AddOp{{Leaf: curA, Op: h.Op,
		LeftVal: h.LeafCode(), RightVal: h.LeafCode()}})
	fmt.Println("\nafter growing A once more, A ≅ B:",
		ca.RootValue() == cb.RootValue())
}

// Dynamic least common ancestors on a growing taxonomy.
//
// The Eulerian-tour application of Theorems 5.1/5.2: a binary phylogeny
// grows by splitting species into subspecies pairs; at every moment the
// structure answers LCA ("nearest common ancestor of two species"),
// ancestor counts, and subtree sizes in O(log n) expected time per query.
//
//	go run ./examples/dynlca
package main

import (
	"fmt"

	"dyntc"
)

func main() {
	ring := dyntc.ModRing(97) // label values are irrelevant here
	e := dyntc.NewExpr(ring, 0, dyntc.WithSeed(3), dyntc.WithTour())

	names := map[*dyntc.Node]string{}
	life := e.Tree().Root
	names[life] = "life"

	split := func(n *dyntc.Node, a, b string) (*dyntc.Node, *dyntc.Node) {
		l, r := e.Grow(n, dyntc.OpAdd(ring), 0, 0)
		names[n] = names[n] // the split node keeps its name as a clade
		names[l], names[r] = a, b
		return l, r
	}

	animals, plants := split(life, "animals", "plants")
	vertebrates, insects := split(animals, "vertebrates", "insects")
	mammals, birds := split(vertebrates, "mammals", "birds")
	cats, dogs := split(mammals, "cats", "dogs")
	oaks, pines := split(plants, "oaks", "pines")

	show := func(a, b *dyntc.Node) {
		fmt.Printf("LCA(%-11s, %-11s) = %s\n", names[a], names[b], names[e.LCA(a, b)])
	}
	show(cats, dogs)    // mammals
	show(cats, birds)   // vertebrates
	show(cats, insects) // animals
	show(cats, pines)   // life
	show(oaks, pines)   // plants

	fmt.Printf("\nancestors(cats)      = %d\n", e.Ancestors(cats))
	fmt.Printf("subtree(vertebrates) = %d nodes\n", e.SubtreeSize(vertebrates))
	fmt.Printf("preorder(insects)    = %d\n", e.Preorder(insects))

	// The taxonomy keeps growing; queries stay consistent.
	lions, tigers := split(cats, "lions", "tigers")
	show(lions, tigers) // cats
	show(tigers, dogs)  // mammals
	fmt.Printf("\nEuler tour has %d visits for %d nodes\n",
		len(e.EulerTour()), e.Tree().Len())
}

// Critical path analysis over the (max, +) tropical semiring.
//
// A hierarchical project plan is a binary tree: leaves are tasks with
// durations; an internal node either runs its two children in sequence
// (durations add: tropical ×) or in parallel (the longer one dominates:
// tropical +, i.e. max). The contraction maintains the project's critical
// path length while tasks are re-estimated and the plan is restructured —
// the expression-evaluation application of Theorem 5.1 over a non-numeric
// ring.
//
//	go run ./examples/criticalpath
package main

import (
	"fmt"

	"dyntc"
)

func main() {
	ring := dyntc.MaxPlus()
	seq := dyntc.OpMul(ring) // sequential composition: durations add
	par := dyntc.OpAdd(ring) // parallel composition: max dominates

	// Plan:
	//   release = design ; (build-backend ∥ build-frontend) ; test
	e := dyntc.NewExpr(ring, 0, dyntc.WithSeed(7))
	root := e.Tree().Root

	designPhase, rest := e.Grow(root, seq, 0, 0)
	e.SetLeaf(designPhase, 10) // design: 10 days
	buildPhase, testLeaf := e.Grow(rest, seq, 0, 4)
	backend, frontend := e.Grow(buildPhase, par, 15, 9)

	fmt.Println("plan: design(10) ; (backend(15) ∥ frontend(9)) ; test(4)")
	fmt.Printf("critical path: %d days\n", e.Root()) // 10+15+4 = 29

	// The frontend estimate doubles — but the backend still dominates.
	e.SetLeaf(frontend, 18)
	fmt.Printf("frontend→18:   %d days\n", e.Root()) // 10+18+4 = 32

	// Split the backend into two sequential subtasks.
	api, db := e.Grow(backend, seq, 8, 12)
	fmt.Printf("backend=api(8);db(12): %d days\n", e.Root()) // 10+20+4 = 34

	// Re-estimate in one batch: both build tracks shrink.
	e.SetLeaves([]*dyntc.Node{api, db, frontend}, []int64{5, 6, 13})
	fmt.Printf("after re-estimation:   %d days\n", e.Root()) // 10+13+4 = 27
	fmt.Printf("build phase alone:     %d days\n", e.Value(buildPhase))
	_ = testLeaf
}

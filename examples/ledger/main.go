// Running-balance ledger on the incremental list prefix structure (§3).
//
// A ledger of signed transactions supports: batch prefix-sum queries
// ("balance after transaction k"), point corrections, splicing in
// backdated transactions, deleting erroneous ones, and finding the first
// moment the balance crossed a threshold — all in O(log n) expected per
// operation (Theorem 3.1).
//
//	go run ./examples/ledger
package main

import (
	"fmt"

	"dyntc"
)

func main() {
	// Opening ledger: deposits and withdrawals, in order.
	amounts := []int64{+500, -120, +75, -300, +400, -90, +210}
	l := dyntc.NewList(11, dyntc.SumMonoid(), amounts)

	fmt.Println("transactions:", amounts)
	fmt.Println("final balance:", l.Total())

	// Balance after every transaction (a batch prefix query).
	var elems []*dyntc.ListElem[int64]
	for e := l.Head(); e != nil; e = e.Next() {
		elems = append(elems, e)
	}
	fmt.Println("running balances:", l.BatchPrefix(nil, elems))

	// A backdated transaction is discovered: splice it after entry 2.
	l.Insert(nil, l.At(2), []int64{-50})
	fmt.Println("\nafter backdated -50 at position 3:")
	fmt.Println("transactions:", l.Values())
	fmt.Println("final balance:", l.Total())

	// Entry 1 was keyed wrong: correct -120 to -20.
	l.Update(l.At(1), -20)
	fmt.Println("\nafter correcting entry 1 to -20, balance:", l.Total())

	// When did the balance first reach 600?
	e := l.SearchPrefix(func(v int64) bool { return v >= 600 })
	if e != nil {
		fmt.Printf("balance first reached 600 at position %d (amount %d)\n",
			e.Index(), e.Payload())
	}

	// Remove a fraudulent transaction entirely.
	l.Delete(nil, []*dyntc.ListElem[int64]{l.At(4)})
	fmt.Println("\nafter deleting position 4, balance:", l.Total())
}

// Quickstart: build a small arithmetic expression, evaluate it with
// dynamic parallel tree contraction, then update leaves and watch the
// structure heal incrementally instead of re-evaluating from scratch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dyntc"
)

func main() {
	ring := dyntc.ModRing(1_000_000_007)

	// Start from a single leaf and grow the expression (3*4) + (5+6).
	e := dyntc.NewExpr(ring, 0, dyntc.WithSeed(42))
	root := e.Tree().Root
	mul, add := e.Grow(root, dyntc.OpAdd(ring), 0, 0)
	a, b := e.Grow(mul, dyntc.OpMul(ring), 3, 4)
	c, d := e.Grow(add, dyntc.OpAdd(ring), 5, 6)

	fmt.Println("expression: (3*4) + (5+6)")
	fmt.Println("value:     ", e.Root()) // 23

	// Point update: one leaf changes, the wound heals in O(log n).
	e.SetLeaf(a, 10)
	fmt.Println("after 3→10:", e.Root()) // 51
	fmt.Printf("healed %d rake records over %d rounds\n",
		e.Stats().WoundRecords, e.Stats().WoundRounds)

	// Batch update: both requests processed as one parallel batch.
	e.SetLeaves([]*dyntc.Node{b, c}, []int64{100, 1})
	fmt.Println("after batch:", e.Root()) // 10*100 + (1+6) = 1007

	// Subexpression queries replay the expansion lazily.
	fmt.Println("left subtree: ", e.Value(mul)) // 1000
	fmt.Println("right subtree:", e.Value(add)) // 7

	// Structural change: collapse the right subtree back to a constant.
	e.Collapse(add, 50)
	fmt.Println("after collapse:", e.Root()) // 1050
	_ = d
}

package dyntc

// Failover tests at the library level: epoch stamping, the Promote
// handshake, the stale-epoch fence, and fault injection through
// BatchOptions.Faults.

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"dyntc/internal/engine"
)

// TestWaveEpochStamping: a fresh engine seals waves at epoch 1, and a
// restored tree's engine inherits the snapshot's epoch.
func TestWaveEpochStamping(t *testing.T) {
	ring := ModRing(97)
	log, _ := NewWaveLog(1024, "")
	leader := NewExpr(ring, 1, WithSeed(5))
	en := leader.Serve(BatchOptions{WaveTap: func(w Wave) { _ = log.Append(w) }})
	if en.Epoch() != 1 {
		t.Fatalf("fresh engine epoch = %d", en.Epoch())
	}
	prog := newReplicaProgram(101, ring, leader.Tree().Root)
	prog.runLive(t, en, 40)
	en.Close()
	waves, err := log.Since(0)
	if err != nil || len(waves) == 0 {
		t.Fatalf("no waves (%v)", err)
	}
	for _, w := range waves {
		if w.Epoch != 1 {
			t.Fatalf("wave %d stamped epoch %d, want 1", w.Seq, w.Epoch)
		}
	}
	if log.LastEpoch() != 1 {
		t.Fatalf("log epoch = %d", log.LastEpoch())
	}
}

// TestPromoteFailover is the library-level failover walk-through: a
// leader dies (its engine is simply closed), a caught-up follower is
// promoted to epoch 2, a forest restores the promoted snapshot into a
// serving engine, new waves carry the new epoch — and the demoted
// leader's late wave is rejected by the fence at both a wave log and a
// second replica.
func TestPromoteFailover(t *testing.T) {
	ring := ModRing(1_000_000_007)
	log, _ := NewWaveLog(1<<14, "")
	leader := NewExpr(ring, 1, WithSeed(9))
	en := leader.Serve(BatchOptions{WaveTap: func(w Wave) { _ = log.Append(w) }})
	snap0, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	prog := newReplicaProgram(202, ring, leader.Tree().Root)
	prog.runLive(t, en, 80)

	// Follower catches up fully, then the leader "dies".
	fo, err := NewFollower(snap0)
	if err != nil {
		t.Fatal(err)
	}
	waves, err := log.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo.ApplyAll(waves); err != nil {
		t.Fatal(err)
	}
	en.Close()

	// A second replica that will live through the failover.
	fo2, err := NewFollower(snap0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo2.ApplyAll(waves); err != nil {
		t.Fatal(err)
	}

	// Promote: epoch 2, point of no return for fo.
	psnap, pseq, pepoch, err := fo.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if pepoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", pepoch)
	}
	if pseq != fo.Seq() {
		t.Fatalf("promoted seq %d != follower seq %d", pseq, fo.Seq())
	}
	if err := fo.Apply(Wave{Seq: pseq + 1}); !errors.Is(err, ErrPromoted) {
		t.Fatalf("apply after promote err = %v, want ErrPromoted", err)
	}
	if _, _, _, err := Promote(fo); !errors.Is(err, ErrPromoted) {
		t.Fatalf("second promote err = %v, want ErrPromoted", err)
	}

	// The promoted snapshot seeds a serving leader at the new epoch.
	forest := NewForest(BatchOptions{})
	defer forest.Close()
	en2, seq2, err := forest.Restore(1, psnap)
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != pseq || en2.Epoch() != 2 {
		t.Fatalf("restored seq=%d epoch=%d, want %d/2", seq2, en2.Epoch(), pseq)
	}
	var mu sync.Mutex
	var epoch2 []Wave
	en2.SetWaveTap(func(w Wave) { mu.Lock(); epoch2 = append(epoch2, w); mu.Unlock() })
	var leafID int
	if err := en2.Query(func(e *Expr) { leafID = e.Tree().Leaves()[0].ID }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := en2.GrowID(leafID, OpAdd(ring), 7, 9); err != nil {
		t.Fatal(err)
	}
	// The grow future resolves before the seal phase taps the wave; a
	// read-only barrier orders the tap before the assertions.
	if err := en2.Query(func(*Expr) {}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(epoch2) != 1 || epoch2[0].Epoch != 2 || epoch2[0].Seq != pseq+1 {
		mu.Unlock()
		t.Fatalf("post-promotion wave = %+v", epoch2)
	}
	mu.Unlock()

	// The fence: a late wave from the demoted leader (epoch 1, the old
	// continuation sequence) is refused by the log and by the replica
	// that has adopted epoch 2.
	if err := fo2.Apply(epoch2[0]); err != nil {
		t.Fatal(err)
	}
	late := Wave{Seq: pseq + 2, Epoch: 1, Root: 123}
	late.Seal()
	if err := fo2.Apply(late); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("late wave err = %v, want ErrStaleEpoch", err)
	}
	log2, _ := NewWaveLog(64, "")
	if err := log2.Append(epoch2[0]); err != nil {
		t.Fatal(err)
	}
	late2 := Wave{Seq: pseq + 2, Epoch: 1, Root: 123}
	late2.Seal()
	if err := log2.Append(late2); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("log append of stale wave err = %v, want ErrStaleEpoch", err)
	}

	// Byte-identical convergence across the failover: fo2's state equals
	// the promoted leader's snapshot at the same sequence.
	s2, seq3, err := en2.SnapshotAt()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fo2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq3 != fo2.Seq() || !bytes.Equal(s2, fs) {
		t.Fatalf("post-failover replica diverged (seq %d vs %d, bytes equal %v)",
			seq3, fo2.Seq(), bytes.Equal(s2, fs))
	}
}

// TestPreparePromoteTwoPhase: PreparePromote serializes the next term
// without committing anything — the replica still trusts its old epoch
// and keeps applying waves — and MarkPromoted is the separate commit
// point. This is the two-phase contract behind dyntcd's all-or-nothing
// POST /v1/promote.
func TestPreparePromoteTwoPhase(t *testing.T) {
	ring := ModRing(97)
	log, _ := NewWaveLog(1024, "")
	leader := NewExpr(ring, 1, WithSeed(11))
	en := leader.Serve(BatchOptions{WaveTap: func(w Wave) { _ = log.Append(w) }})
	snap0, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	prog := newReplicaProgram(303, ring, leader.Tree().Root)
	prog.runLive(t, en, 30)
	en.Close()
	waves, err := log.Since(0)
	if err != nil || len(waves) < 2 {
		t.Fatalf("waves: %d (%v)", len(waves), err)
	}

	fo, err := NewFollower(snap0)
	if err != nil {
		t.Fatal(err)
	}
	half := len(waves) / 2
	if err := fo.ApplyAll(waves[:half]); err != nil {
		t.Fatal(err)
	}
	psnap, pseq, pepoch, err := fo.PreparePromote()
	if err != nil {
		t.Fatal(err)
	}
	if pepoch != 2 || pseq != fo.Seq() {
		t.Fatalf("prepared seq %d epoch %d, want %d/2", pseq, pepoch, fo.Seq())
	}
	// Nothing committed: the replica still trusts epoch 1 and keeps
	// applying the old leader's waves.
	if fo.Epoch() != 1 {
		t.Fatalf("epoch after prepare = %d, want 1", fo.Epoch())
	}
	if err := fo.ApplyAll(waves[half:]); err != nil {
		t.Fatalf("apply after prepare: %v", err)
	}
	// The prepared snapshot is the next term: restoring it yields epoch 2
	// at the prepared sequence.
	e, seq, err := RestoreExpr(psnap)
	if err != nil {
		t.Fatal(err)
	}
	if seq != pseq || e.Epoch() != 2 {
		t.Fatalf("restored seq=%d epoch=%d, want %d/2", seq, e.Epoch(), pseq)
	}
	// MarkPromoted commits: further waves and prepares are refused.
	fo.MarkPromoted()
	if err := fo.Apply(Wave{Seq: fo.Seq() + 1}); !errors.Is(err, ErrPromoted) {
		t.Fatalf("apply after commit err = %v, want ErrPromoted", err)
	}
	if _, _, _, err := fo.PreparePromote(); !errors.Is(err, ErrPromoted) {
		t.Fatalf("prepare after commit err = %v, want ErrPromoted", err)
	}
}

// TestEngineFaultInjection: an injected engine.wave error poisons the
// engine deterministically — the library face of "leader killed
// mid-traffic".
func TestEngineFaultInjection(t *testing.T) {
	ring := ModRing(97)
	in := NewFaultInjector(7)
	in.Add(FaultRule{Site: "engine.wave", After: 5, Err: ErrFaultInjected, Times: 1})
	leader := NewExpr(ring, 1, WithSeed(5))
	en := leader.Serve(BatchOptions{Faults: in})
	defer en.Close()
	var firstErr error
	for i := 0; i < 50; i++ {
		if _, err := en.Root(); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("injected wave error never surfaced")
	}
	if !errors.Is(firstErr, engine.ErrPoisoned) {
		t.Fatalf("err = %v, want ErrPoisoned wrap", firstErr)
	}
	if in.Firings("engine.wave") != 1 {
		t.Fatalf("firings = %d", in.Firings("engine.wave"))
	}
}

// TestForestFaultInjection: BatchOptions.Faults reaches engines created
// through a Forest — the path dyntcd serves on — not just Expr.Serve.
func TestForestFaultInjection(t *testing.T) {
	in := NewFaultInjector(7)
	in.Add(FaultRule{Site: "engine.wave", Err: ErrFaultInjected, Times: 1})
	f := NewForest(BatchOptions{Faults: in})
	defer f.Close()
	_, en := f.Create(ModRing(97), 1)
	if _, err := en.Root(); !errors.Is(err, engine.ErrPoisoned) {
		t.Fatalf("forest engine err = %v, want ErrPoisoned wrap", err)
	}
	if in.Firings("engine.wave") != 1 {
		t.Fatalf("firings = %d", in.Firings("engine.wave"))
	}
}

package dyntc

// Worker-pool benchmarks: the core batch entry points and the engine flush
// path swept over PRAM worker counts. On a multi-core host wall-clock
// drops as workers grow while the metered PRAM cost stays identical; on
// any host BenchmarkEngineOps demonstrates the executor's allocation
// behaviour (run with -benchmem to see allocs/op).

import (
	"fmt"
	"runtime"
	"testing"
)

// workerSweep is the worker-count dimension of the paper-cost benchmarks:
// {1, 2, 4} plus GOMAXPROCS when it differs.
func workerSweep() []int {
	ws := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		ws = append(ws, g)
	}
	return ws
}

// benchExpr builds an expression with n leaves fanned out under OpAdd.
func benchExpr(n, workers int) (*Expr, []*Node) {
	e := NewExpr(benchRing, 1, WithSeed(42), WithWorkers(workers), WithGrain(256))
	leaves := []*Node{e.Tree().Root}
	for len(leaves) < n {
		batch := make([]GrowOp, 0, len(leaves))
		for _, l := range leaves {
			if len(leaves)+len(batch) >= n {
				break
			}
			batch = append(batch, GrowOp{Leaf: l, Op: OpAdd(benchRing), LeftVal: 1, RightVal: 1})
		}
		pairs := e.GrowBatch(batch)
		next := make([]*Node, 0, len(leaves)+len(batch))
		for _, p := range pairs {
			next = append(next, p[0], p[1])
		}
		next = append(next, leaves[len(batch):]...)
		leaves = next
	}
	return e, leaves
}

// BenchmarkSetLeavesWorkers measures one batched leaf-relabel heal (the
// paper's batch U of label modifications) at each pool size.
func BenchmarkSetLeavesWorkers(b *testing.B) {
	const n, batch = 1 << 12, 256
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e, leaves := benchExpr(n, w)
			ls := make([]*Node, batch)
			vs := make([]int64, batch)
			stride := len(leaves) / batch
			for i := 0; i < batch; i++ {
				ls[i] = leaves[i*stride]
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range vs {
					vs[j] = int64(i + j)
				}
				e.SetLeaves(ls, vs)
			}
		})
	}
}

// BenchmarkGrowCollapseWorkers measures a structural batch (grow then
// collapse the same 128 leaves, net tree size constant) at each pool
// size; structural updates re-simulate the whole trace, the biggest
// parallel phase the engine runs.
func BenchmarkGrowCollapseWorkers(b *testing.B) {
	const n, batch = 1 << 10, 128
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e, leaves := benchExpr(n, w)
			targets := make([]*Node, batch)
			stride := len(leaves) / batch
			for i := 0; i < batch; i++ {
				targets[i] = leaves[i*stride]
			}
			grow := make([]GrowOp, batch)
			shrink := make([]CollapseOp, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, l := range targets {
					grow[j] = GrowOp{Leaf: l, Op: OpAdd(benchRing), LeftVal: 2, RightVal: 3}
				}
				pairs := e.GrowBatch(grow)
				for j := range shrink {
					shrink[j] = CollapseOp{Node: targets[j], NewValue: int64(j)}
				}
				_ = pairs
				e.CollapseBatch(shrink)
			}
		})
	}
}

// BenchmarkEngineOps measures the full engine round trip — submit,
// coalesce, partition, execute, resolve — for a mixed op stream from one
// goroutine. Run with -benchmem: the executor's flush loop and Future
// pool make the steady state allocate only a few objects per op.
func BenchmarkEngineOps(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ring := ModRing(1_000_000_007)
			e := NewExpr(ring, 1, WithSeed(7))
			en := e.Serve(BatchOptions{Workers: w})
			defer en.Close()
			l, r, err := en.Grow(e.Tree().Root, OpAdd(ring), 3, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch i % 3 {
				case 0:
					if err := en.SetLeaf(l, int64(i)); err != nil {
						b.Fatal(err)
					}
				case 1:
					if _, err := en.Value(r); err != nil {
						b.Fatal(err)
					}
				default:
					if _, err := en.Root(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkEngineFlush measures one executor flush of 64 pipelined
// disjoint set-leaf requests (the wave fast path) including partitioning
// and future resolution.
func BenchmarkEngineFlush(b *testing.B) {
	ring := ModRing(1_000_000_007)
	e := NewExpr(ring, 1, WithSeed(7))
	en := e.Serve(BatchOptions{})
	defer en.Close()
	leaves := []*Node{e.Tree().Root}
	for len(leaves) < 64 {
		l, r, err := en.Grow(leaves[0], OpAdd(ring), 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		leaves = append(leaves[1:], l, r)
	}
	futs := make([]*Future, len(leaves))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, l := range leaves {
			futs[j] = en.SetLeafAsync(l, int64(i+j))
		}
		for _, f := range futs {
			if err := f.Wait(); err != nil {
				b.Fatal(err)
			}
			f.Recycle()
		}
	}
}

module dyntc

go 1.24

package dyntc

// One sched.Pool serving all three consumers at once — engine waves,
// cross-tree query scatter, and follower replay — under live mutation
// traffic, with -race watching. At the end the follower must have
// converged byte-identically to the leader (snapshot comparison at the
// same applied sequence), which is the acceptance bar for the unified
// scheduler: sharing workers may change timing, never results.

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"dyntc/internal/prng"
)

func TestSharedPoolServesWavesQueriesAndReplay(t *testing.T) {
	const (
		trees   = 24
		writers = 4
		opsPer  = 40 // write rounds per writer; each round is 32 pipelined sets
	)
	ring := ModRing(1_000_000_007)
	pool := NewSchedPool(4)
	defer pool.Close()

	forest := NewForest(BatchOptions{Workers: 2, Pool: pool})
	defer forest.Close()

	ids := make([]TreeID, 0, trees)
	logs := make(map[TreeID]*WaveLog, trees)
	leaves := make(map[TreeID][]*Node, trees)
	for i := 0; i < trees; i++ {
		id, en := forest.Create(ring, int64(i+1), WithSeed(uint64(100+i)), WithGrain(8))
		// Pre-grow so write waves exceed the engine's lane threshold and
		// genuinely execute as task groups on the shared pool. The tap is
		// attached after the deterministic setup, like a fresh leader.
		if err := en.Query(func(e *Expr) {
			ls := []*Node{e.Tree().Root}
			for len(ls) < 32 {
				l, r := e.Grow(ls[0], OpAdd(ring), 1, 1)
				ls = append(ls[1:], l, r)
			}
			leaves[id] = ls
		}); err != nil {
			t.Fatal(err)
		}
		wl, err := NewWaveLog(4096, "")
		if err != nil {
			t.Fatal(err)
		}
		en.SetWaveTap(func(w Wave) { _ = wl.Append(w) })
		logs[id] = wl
		ids = append(ids, id)
	}

	// Followers bootstrap from the initial snapshots and tail the logs on
	// the same pool the leaders' waves run on.
	followers := make(map[TreeID]*Follower, trees)
	for _, id := range ids {
		en, _ := forest.Get(id)
		snap, err := en.Snapshot()
		if err != nil {
			t.Fatalf("tree %d snapshot: %v", id, err)
		}
		fo, err := NewFollower(snap, WithPool(pool))
		if err != nil {
			t.Fatalf("tree %d follower: %v", id, err)
		}
		followers[id] = fo
	}

	var stop atomic.Bool
	var writersWG, auxWG sync.WaitGroup

	// Writers: batched mutation traffic across all trees — 32 pipelined
	// sets over distinct leaves per round, so flushes coalesce into waves
	// big enough for the lane.
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			rng := prng.New(uint64(7000 + w))
			for k := 0; k < opsPer; k++ {
				id := ids[rng.Intn(len(ids))]
				en, ok := forest.Get(id)
				if !ok {
					continue
				}
				ls := leaves[id]
				futs := make([]*Future, 0, len(ls))
				for _, leaf := range ls {
					futs = append(futs, en.SetLeafAsync(leaf, int64(rng.Intn(1000))))
				}
				for _, f := range futs {
					if err := f.Wait(); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					f.Recycle()
				}
			}
		}(w)
	}

	// Queries: cross-tree scatter-gather riding the same pool. At least a
	// few rounds run even if the writers finish first.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for i := 0; i < 10 || !stop.Load(); i++ {
			res, err := forest.Query(ForestQuery{Read: ReadRoot(), Combine: CombineSum()})
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			if res.Trees == 0 {
				t.Error("query answered by zero trees")
				return
			}
		}
	}()

	// Replay: followers tail their logs concurrently with everything else.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for i := 0; i < 10 || !stop.Load(); i++ {
			for _, id := range ids {
				waves, err := logs[id].Since(followers[id].Seq())
				if err != nil {
					t.Errorf("tree %d log: %v", id, err)
					return
				}
				if err := followers[id].ApplyAll(waves); err != nil {
					t.Errorf("tree %d replay: %v", id, err)
					return
				}
			}
		}
	}()

	// Wait for the writers, then retire the query/replay loops.
	writersWG.Wait()
	stop.Store(true)
	auxWG.Wait()

	// Final catch-up, then the follower must be byte-identical to the
	// leader at the same applied sequence.
	for _, id := range ids {
		en, _ := forest.Get(id)
		waves, err := logs[id].Since(followers[id].Seq())
		if err != nil {
			t.Fatalf("tree %d final log: %v", id, err)
		}
		if err := followers[id].ApplyAll(waves); err != nil {
			t.Fatalf("tree %d final replay: %v", id, err)
		}
		leaderSnap, seq, err := en.SnapshotAt()
		if err != nil {
			t.Fatalf("tree %d leader snapshot: %v", id, err)
		}
		if got := followers[id].Seq(); got != seq {
			t.Fatalf("tree %d: follower at seq %d, leader snapshot at %d", id, got, seq)
		}
		followerSnap, err := followers[id].Snapshot()
		if err != nil {
			t.Fatalf("tree %d follower snapshot: %v", id, err)
		}
		if !bytes.Equal(leaderSnap, followerSnap) {
			t.Fatalf("tree %d: follower snapshot diverged from leader at seq %d", id, seq)
		}
	}
	st := pool.Stats()
	t.Logf("pool after run: %+v", st)
	if st.Loops == 0 && st.Tasks == 0 {
		t.Fatal("nothing ran on the shared pool; the test is vacuous")
	}
}

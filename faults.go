package dyntc

import "dyntc/internal/faults"

// This file is the public face of the deterministic fault-injection
// harness (internal/faults). An injector is a seeded schedule of fault
// rules keyed by site name; the replication stack checks it at its
// crash points:
//
//	"engine.wave"   once per executed wave (BatchOptions.Faults) —
//	                injected errors poison the engine like a crash
//	"wal.append"    per WAL record write (WaveLog.SetFaults) —
//	                supports torn (partial) writes
//	"wal.sync"      per WAL flush/fsync (WaveLog.SetFaults)
//
// dyntcd adds "follower.rpc" on the follower's HTTP transport. The same
// seed against the same call sequence reproduces the same faults, which
// is what lets the chaos suite assert byte-identical convergence after
// killing and corrupting nodes mid-traffic.

// FaultInjector is a seeded, deterministic fault schedule. Nil injects
// nothing everywhere it can be attached.
type FaultInjector = faults.Injector

// FaultRule is one fault at one site: count/probability triggers plus
// error, latency, torn-write, and crash effects.
type FaultRule = faults.Rule

// ErrFaultInjected is the default error injected by rules that carry no
// custom error; test assertions match it with errors.Is.
var ErrFaultInjected = faults.ErrInjected

// NewFaultInjector returns an empty injector driven by seed; add rules
// with its Add method.
func NewFaultInjector(seed uint64) *FaultInjector { return faults.New(seed) }

// FaultInjectorFromSpec builds a seeded injector from the textual rule
// grammar used by dyntcd's -faults flag, e.g.
//
//	"wal.append:after=100:torn=0.5:times=1;follower.rpc:p=0.2:err=partition"
func FaultInjectorFromSpec(seed uint64, spec string) (*FaultInjector, error) {
	return faults.FromSpec(seed, spec)
}

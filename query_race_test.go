package dyntc_test

// The fan-out-vs-mutation oracle: a forest-wide sum taken while every
// tree is under concurrent mutation load must equal, tree by tree, a
// sequential replay of that tree's wave change-log up to exactly the
// applied-wave sequence the query reported for it. This pins the query
// engine's central claim — per-tree results are consistent snapshots at
// their reported sequences, with no global barrier — against the
// replication machinery, across multiple seeds, under the race detector.

import (
	"sync"
	"testing"

	"dyntc"
	"dyntc/internal/prng"
)

// queryMutator drives one tree with the grow/collapse/set discipline of
// the bench load client (only the top frame's right child grows, so the
// top frame is always collapsible), addressed by dense node ids.
type queryMutator struct {
	en    *dyntc.Engine
	rng   *prng.Source
	stack [][3]int // parent, left, right
}

func (m *queryMutator) step(t *testing.T) {
	r := m.rng.Intn(100)
	switch {
	case r < 40 && len(m.stack) < 12:
		target := 0
		if k := len(m.stack); k > 0 {
			target = m.stack[k-1][2]
		}
		l, rt, err := m.en.GrowID(target, dyntc.OpAdd(dyntc.ModRing(1_000_000_007)),
			int64(m.rng.Intn(1000)), int64(m.rng.Intn(1000)))
		if err != nil {
			t.Errorf("grow: %v", err)
			return
		}
		m.stack = append(m.stack, [3]int{target, l, rt})
	case r < 55 && len(m.stack) > 0:
		f := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		if err := m.en.CollapseID(f[0], int64(m.rng.Intn(1000))); err != nil {
			t.Errorf("collapse: %v", err)
		}
	default:
		leaf := 0
		if k := len(m.stack); k > 0 {
			if i := m.rng.Intn(k + 1); i == k {
				leaf = m.stack[k-1][2]
			} else {
				leaf = m.stack[i][1]
			}
		}
		if err := m.en.SetLeafID(leaf, int64(m.rng.Intn(1000))); err != nil {
			t.Errorf("set-leaf: %v", err)
		}
	}
}

func TestRaceForestQueryOracle(t *testing.T) {
	for _, seed := range []uint64{3, 17, 101} {
		seed := seed
		t.Run("", func(t *testing.T) {
			ring := dyntc.ModRing(1_000_000_007)
			const trees = 8
			const opsPerTree = 150
			const queries = 12

			forest := dyntc.NewForest(dyntc.BatchOptions{})
			defer forest.Close()

			ids := make([]dyntc.TreeID, trees)
			engines := make([]*dyntc.Engine, trees)
			logs := make([]*dyntc.WaveLog, trees)
			genesis := make([][]byte, trees)
			for i := 0; i < trees; i++ {
				id, en := forest.Create(ring, int64(i+1), dyntc.WithSeed(seed+uint64(i)))
				wl, err := dyntc.NewWaveLog(1<<14, "")
				if err != nil {
					t.Fatal(err)
				}
				// Tap before traffic (gapless log), snapshot at seq 0.
				en.SetWaveTap(func(w dyntc.Wave) { _ = wl.Append(w) })
				snap, err := en.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				ids[i], engines[i], logs[i], genesis[i] = id, en, wl, snap
			}

			// Mutators hammer every tree while the querier fans out.
			var wg sync.WaitGroup
			for i := 0; i < trees; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					m := &queryMutator{en: engines[i], rng: prng.New(seed + 1000*uint64(i))}
					for j := 0; j < opsPerTree; j++ {
						m.step(t)
					}
				}(i)
			}

			results := make([]dyntc.QueryResult, 0, queries)
			for q := 0; q < queries; q++ {
				res, err := forest.Query(dyntc.ForestQuery{
					Select:  dyntc.QueryAll(),
					Read:    dyntc.ReadRoot(),
					Combine: dyntc.CombineSum(),
					Detail:  true,
				})
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, res)
			}
			wg.Wait()

			// One more query on the quiesced forest: its seqs are final.
			final, err := forest.Query(dyntc.ForestQuery{Read: dyntc.ReadRoot(), Combine: dyntc.CombineSum(), Detail: true})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, final)

			// Oracle: per tree, a follower replays the wave log to each
			// reported sequence — the value must match exactly. Queries ran
			// sequentially, so per-tree sequences are non-decreasing and one
			// follower per tree advances monotonically.
			followers := make(map[dyntc.TreeID]*dyntc.Follower, trees)
			waves := make(map[dyntc.TreeID][]dyntc.Wave, trees)
			for i := 0; i < trees; i++ {
				fo, err := dyntc.NewFollower(genesis[i])
				if err != nil {
					t.Fatal(err)
				}
				ws, err := logs[i].Since(0)
				if err != nil {
					t.Fatal(err)
				}
				followers[ids[i]], waves[ids[i]] = fo, ws
			}
			for qi, res := range results {
				if res.Errors != 0 || res.Trees != trees {
					t.Fatalf("query %d: %d trees, %d errors", qi, res.Trees, res.Errors)
				}
				var sum int64
				for _, tr := range res.Detail {
					fo := followers[tr.Tree]
					if fo.Seq() > tr.Seq {
						t.Fatalf("query %d tree %d: seq %d went backwards (follower at %d)",
							qi, tr.Tree, tr.Seq, fo.Seq())
					}
					for _, w := range waves[tr.Tree] {
						if w.Seq > tr.Seq {
							break
						}
						if err := fo.Apply(w); err != nil {
							t.Fatalf("query %d tree %d: replay to %d: %v", qi, tr.Tree, tr.Seq, err)
						}
					}
					if fo.Seq() != tr.Seq {
						t.Fatalf("query %d tree %d: log has no wave %d (follower at %d)",
							qi, tr.Tree, tr.Seq, fo.Seq())
					}
					if got := fo.Root(); got != tr.Value {
						t.Fatalf("query %d tree %d at seq %d: reported %d, oracle replay says %d",
							qi, tr.Tree, tr.Seq, tr.Value, got)
					}
					sum += tr.Value
				}
				if sum != res.Combined {
					t.Fatalf("query %d: combined %d != detail sum %d", qi, res.Combined, sum)
				}
			}
			// The quiesced query's sequences match the engines' final state.
			for i, tr := range final.Detail {
				if tr.Seq != engines[i].AppliedSeq() {
					t.Fatalf("final query tree %d: seq %d, engine at %d", tr.Tree, tr.Seq, engines[i].AppliedSeq())
				}
			}
		})
	}
}

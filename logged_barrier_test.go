package dyntc_test

import (
	"errors"
	"testing"

	"dyntc"
)

// TestLoggedBarrierRejectsMutation closes the replication-divergence
// hole: a mutation inside a Query callback on a wave-tapped engine would
// bypass the change log, so it is refused and Query reports it.
func TestLoggedBarrierRejectsMutation(t *testing.T) {
	ring := dyntc.ModRing(1_000_000_007)
	e := dyntc.NewExpr(ring, 7, dyntc.WithSeed(3))
	en := e.Serve(dyntc.BatchOptions{})
	defer en.Close()

	// Untapped engine: barrier mutations remain allowed (back-compat for
	// single-process embedders that never replicate).
	var l *dyntc.Node
	if err := en.Query(func(e *dyntc.Expr) {
		l, _ = e.Grow(e.Tree().Root, dyntc.OpAdd(ring), 3, 4)
	}); err != nil {
		t.Fatalf("untapped barrier mutation: %v", err)
	}
	if l == nil {
		t.Fatal("untapped barrier grow returned nil leaf")
	}
	root, err := en.Root()
	if err != nil || root != 7 {
		t.Fatalf("root after untapped grow: %d, %v", root, err)
	}

	// Tap the engine: it now feeds a change log.
	wl, err := dyntc.NewWaveLog(64, "")
	if err != nil {
		t.Fatal(err)
	}
	en.SetWaveTap(func(w dyntc.Wave) { _ = wl.Append(w) })

	seqBefore := en.AppliedSeq()
	logBefore := wl.LastSeq()

	// Every mutation entry point inside the barrier is refused, the tree
	// is untouched, and Query returns ErrLoggedBarrier.
	for name, fn := range map[string]func(e *dyntc.Expr){
		"grow":     func(e *dyntc.Expr) { e.Grow(l, dyntc.OpAdd(ring), 1, 2) },
		"collapse": func(e *dyntc.Expr) { e.Collapse(e.Tree().Root, 9) },
		"set-leaf": func(e *dyntc.Expr) { e.SetLeaf(l, 99) },
		"set-op":   func(e *dyntc.Expr) { e.SetOp(e.Tree().Root, dyntc.OpMul(ring)) },
	} {
		if err := en.Query(fn); !errors.Is(err, dyntc.ErrLoggedBarrier) {
			t.Fatalf("%s in tapped barrier: err %v, want ErrLoggedBarrier", name, err)
		}
	}
	if root, _ := en.Root(); root != 7 {
		t.Fatalf("tree mutated through tapped barrier: root %d", root)
	}
	if en.AppliedSeq() != seqBefore || wl.LastSeq() != logBefore {
		t.Fatalf("sequence moved: applied %d->%d log %d->%d",
			seqBefore, en.AppliedSeq(), logBefore, wl.LastSeq())
	}

	// The refused grow returned nil leaves rather than fake handles.
	var gl, gr *dyntc.Node
	_ = en.Query(func(e *dyntc.Expr) { gl, gr = e.Grow(l, dyntc.OpAdd(ring), 1, 2) })
	if gl != nil || gr != nil {
		t.Fatal("refused grow returned live-looking leaves")
	}

	// Read-only barriers still pass, and logged mutations still flow.
	if err := en.Query(func(e *dyntc.Expr) { _ = e.Root() }); err != nil {
		t.Fatalf("read-only tapped barrier: %v", err)
	}
	if err := en.SetLeaf(l, 10); err != nil {
		t.Fatalf("engine mutation on tapped engine: %v", err)
	}
	if wl.LastSeq() != logBefore+1 {
		t.Fatalf("logged mutation not recorded: log at %d", wl.LastSeq())
	}
	if root, _ := en.Root(); root != 14 {
		t.Fatalf("root after logged set-leaf: %d", root)
	}
}

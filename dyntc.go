// Package dyntc is a Go implementation of dynamic parallel tree contraction
// (Reif & Tate, "Dynamic Parallel Tree Contraction", SPAA 1994).
//
// It maintains a dynamic binary expression tree T of bounded size but
// unbounded depth over a commutative (semi)ring, and processes batches of
// requests — add or delete leaves, modify labels, recompute values at
// specified nodes — in O(log(|U|·log n)) expected parallel time on a
// metered CRCW PRAM simulation, using the paper's random binary splitting
// tree with shortcuts (RBSTS), processor activation, and rake-tree label
// healing. Sequentially, a single update or query costs O(log n) expected.
//
// # Quick start
//
//	ring := dyntc.ModRing(1_000_000_007)
//	e := dyntc.NewExpr(ring, 1, dyntc.WithSeed(42))
//	l, r := e.Grow(e.Tree().Root, dyntc.OpAdd(ring), 3, 4)
//	fmt.Println(e.Root())      // 7
//	e.SetLeaf(l, 10)
//	fmt.Println(e.Root())      // 14
//	_ = r
//
// The Expr type additionally maintains the §5 applications on request:
// preorder numbers, ancestor counts, subtree sizes, the Eulerian tour and
// least common ancestors (enable with WithTour). Package-level re-exports
// give access to the dynamic list-prefix structure of §3 (NewList) and the
// canonical-form hasher of §5(e) (NewHasher).
//
// # Concurrency
//
// An Expr is single-writer. For concurrent use, Expr.Serve wraps it in an
// Engine: a request-coalescing front end that accepts traffic from any
// number of goroutines and amortizes it into the paper's §1.4 batch
// requests (see internal/engine). NewForest shards many independent
// expression trees across engines, and cmd/dyntcd serves a forest over
// HTTP/JSON.
package dyntc

import (
	"dyntc/internal/core"
	"dyntc/internal/euler"
	"dyntc/internal/listprefix"
	"dyntc/internal/pram"
	"dyntc/internal/sched"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// Re-exported algebra types. A Ring is a commutative semiring over int64;
// an Op is a symmetric bilinear node operation a·x·y + b·(x+y) + c.
type (
	// Ring is the label algebra (see internal/semiring.Ring).
	Ring = semiring.Ring
	// Op is a symmetric node operation.
	Op = semiring.Op
	// Node is a node of the expression tree. Node handles are stable for
	// the node's lifetime.
	Node = tree.Node
	// Tree is the underlying expression tree.
	Tree = tree.Tree
	// Metrics reports PRAM cost (rounds, work, processors).
	Metrics = pram.Metrics
	// HealStats reports the cost of the latest dynamic operation.
	HealStats = core.HealStats
)

// ModRing returns the ring of integers modulo p (2 ≤ p < 2³¹).
func ModRing(p int64) Ring { return semiring.NewMod(p) }

// MinPlus returns the (min, +) tropical semiring.
func MinPlus() Ring { return semiring.MinPlus{} }

// MaxPlus returns the (max, +) tropical semiring.
func MaxPlus() Ring { return semiring.MaxPlus{} }

// BoolRing returns the (OR, AND) boolean semiring.
func BoolRing() Ring { return semiring.Bool{} }

// MaxMin returns the bottleneck (max, min) semiring, used for widest-path
// style aggregates.
func MaxMin() Ring { return semiring.MaxMin{} }

// OpAdd returns the addition operation of r.
func OpAdd(r Ring) Op { return semiring.OpAdd(r) }

// OpMul returns the multiplication operation of r.
func OpMul(r Ring) Op { return semiring.OpMul(r) }

// Expr is a dynamically maintained expression tree: the public face of the
// paper's dynamic parallel tree contraction, optionally augmented with the
// Eulerian-tour applications of §5.
type Expr struct {
	t    *tree.Tree
	con  *core.Contraction
	tour *euler.Tour
	mach *pram.Machine
	seed uint64

	// epoch is the leadership term this tree's waves are stamped with:
	// 1 for a fresh tree, the snapshot's epoch for a restored one,
	// bumped by promotion (see Promote in replicate.go). Touched only by
	// the owner / engine executor, like seed.
	epoch uint64

	// frozen is set while an Engine.Query barrier runs on a wave-tapped
	// (replicated) engine: mutations there would be invisible to the wave
	// change-log and silently diverge every follower, so they are refused
	// and recorded in frozenViolated (Engine.Query surfaces the error).
	// Only the engine executor goroutine touches these.
	frozen         bool
	frozenViolated bool
}

// mutable refuses a mutation attempted inside a logged (wave-tapped)
// barrier, recording the violation for Engine.Query to report.
func (e *Expr) mutable() bool {
	if e.frozen {
		e.frozenViolated = true
		return false
	}
	return true
}

// Option configures NewExpr.
type Option func(*options)

type options struct {
	seed     uint64
	workers  int
	grain    int
	pool     *sched.Pool
	withTour bool
}

// newMachine builds the Expr's PRAM machine from the parsed options.
func (o *options) newMachine() *pram.Machine {
	var m *pram.Machine
	if o.workers != 0 {
		m = pram.New(o.workers)
	} else {
		m = pram.Sequential()
	}
	if o.grain > 0 {
		m.SetGrain(o.grain)
	}
	if o.pool != nil {
		m.SetPool(o.pool)
	}
	return m
}

// WithSeed fixes the seed of all randomized structure (default 1).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithWorkers sets the goroutine parallelism of the PRAM machine executing
// batch phases (default: sequential execution; metering is identical).
// Workers run on a persistent pool — spawned once, parked between steps —
// so parallel steps cost no goroutine creation. Negative selects
// GOMAXPROCS.
func WithWorkers(w int) Option { return func(o *options) { o.workers = w } }

// WithGrain pins the machine's sequential threshold: parallel steps with
// fewer than g processors run inline instead of on the worker pool, and
// the adaptive per-kind grain tuning is disabled. Without it the machine
// adapts the threshold from measured step cost. Only meaningful together
// with WithWorkers.
func WithGrain(g int) Option { return func(o *options) { o.grain = g } }

// WithPool directs the Expr's parallel steps to the given shared runtime
// scheduler instead of the process-wide default pool. Use one pool for a
// whole forest (NewForest and dyntcd do this for you) so every tree's
// waves share a fixed worker set.
func WithPool(p *SchedPool) Option { return func(o *options) { o.pool = p } }

// WithTour additionally maintains the Eulerian tour and the derived tree
// properties (Preorder, Ancestors, SubtreeSize, LCA, EulerTour).
func WithTour() Option { return func(o *options) { o.withTour = true } }

// NewExpr creates an expression consisting of a single leaf with the given
// value.
func NewExpr(r Ring, rootValue int64, opts ...Option) *Expr {
	o := options{seed: 1}
	for _, f := range opts {
		f(&o)
	}
	m := o.newMachine()
	t := tree.New(r, rootValue)
	e := &Expr{
		t:     t,
		con:   core.New(t, o.seed, m),
		mach:  m,
		seed:  o.seed,
		epoch: 1,
	}
	if o.withTour {
		e.tour = euler.New(t, o.seed^0x9E3779B97F4A7C15)
	}
	return e
}

// Tree exposes the underlying expression tree (read-only use; mutate only
// through Expr methods so the contraction stays consistent).
func (e *Expr) Tree() *Tree { return e.t }

// Root returns the value of the whole expression (exactly maintained).
func (e *Expr) Root() int64 { return e.con.RootValue() }

// Value returns the value of the subexpression rooted at n.
func (e *Expr) Value(n *Node) int64 { return e.con.Value(n) }

// Values answers a batch of value queries sharing one expansion.
func (e *Expr) Values(ns []*Node) []int64 { return e.con.ValuesBatch(ns) }

// Grow replaces leaf by an operation node with two fresh leaf children
// holding the given values, returning the new leaves.
func (e *Expr) Grow(leaf *Node, op Op, leftVal, rightVal int64) (*Node, *Node) {
	pairs := e.GrowBatch([]GrowOp{{Leaf: leaf, Op: op, LeftVal: leftVal, RightVal: rightVal}})
	return pairs[0][0], pairs[0][1]
}

// GrowOp describes one leaf expansion for GrowBatch.
type GrowOp = core.AddOp

// GrowBatch applies a set of leaf expansions as one parallel batch.
// Inside a Query barrier on a replicated engine it refuses (returning nil
// node pairs) and the surrounding Query reports ErrLoggedBarrier.
func (e *Expr) GrowBatch(ops []GrowOp) [][2]*Node {
	if !e.mutable() {
		return make([][2]*Node, len(ops))
	}
	pairs := e.con.AddLeaves(ops)
	if e.tour != nil {
		for i, op := range ops {
			e.tour.AddChildren(e.mach, op.Leaf, pairs[i][0], pairs[i][1])
		}
	}
	return pairs
}

// Collapse deletes the two leaf children of n, turning n back into a leaf
// with the given value.
func (e *Expr) Collapse(n *Node, newValue int64) {
	e.CollapseBatch([]CollapseOp{{Node: n, NewValue: newValue}})
}

// CollapseOp describes one leaf-pair deletion for CollapseBatch.
type CollapseOp = core.RemoveOp

// CollapseBatch applies a set of leaf-pair deletions as one parallel batch.
func (e *Expr) CollapseBatch(ops []CollapseOp) {
	if !e.mutable() {
		return
	}
	if e.tour != nil {
		for _, op := range ops {
			e.tour.DeleteChildren(e.mach, op.Node.Left, op.Node.Right)
		}
	}
	e.con.RemoveLeaves(ops)
}

// SetLeaf updates one leaf value (O(log n) expected sequential heal).
func (e *Expr) SetLeaf(leaf *Node, v int64) {
	if e.mutable() {
		e.con.SetValue(leaf, v)
	}
}

// SetLeaves updates a batch of leaf values in one parallel heal.
func (e *Expr) SetLeaves(leaves []*Node, vs []int64) {
	if e.mutable() {
		e.con.SetValues(leaves, vs)
	}
}

// SetOp updates the operation at an internal node.
func (e *Expr) SetOp(n *Node, op Op) {
	if e.mutable() {
		e.con.SetOp(n, op)
	}
}

// SetOps updates a batch of internal operations in one parallel heal.
func (e *Expr) SetOps(ns []*Node, ops []Op) {
	if e.mutable() {
		e.con.SetOps(ns, ops)
	}
}

// Stats returns the cost of the most recent dynamic operation.
func (e *Expr) Stats() HealStats { return e.con.LastHeal() }

// LastHeal is Stats under the name the serving engine's heal-reporting
// capability expects; the engine folds it into its counters and traces.
func (e *Expr) LastHeal() HealStats { return e.con.LastHeal() }

// SetPropagate overrides the core.CorePropagate feature gate for this
// Expr: whether structural updates repair the rake trace by change
// propagation (true) or re-simulate the contraction from scratch (false).
// Not safe concurrently with mutations.
func (e *Expr) SetPropagate(on bool) { e.con.SetPropagate(on) }

// PropagateEnabled reports the Expr's effective change-propagation gate.
func (e *Expr) PropagateEnabled() bool { return e.con.PropagateEnabled() }

// PRAM returns the accumulated machine metrics.
func (e *Expr) PRAM() Metrics { return e.mach.Metrics() }

// Workers returns the goroutine parallelism of the Expr's PRAM machine.
func (e *Expr) Workers() int { return e.mach.Workers() }

// HasTour reports whether the Expr maintains its Eulerian tour (WithTour):
// the §5 property queries — and cross-tree subtree-size reads — require it.
func (e *Expr) HasTour() bool { return e.tour != nil }

// SetStepKind labels the machine's subsequent parallel steps with the
// batch kind issuing them, selecting which adaptive-grain estimate they
// use and train. The serving engine brackets each wave sub-batch with
// this; direct library use may ignore it. Not safe concurrently with the
// batch methods.
func (e *Expr) SetStepKind(k pram.StepKind) { e.mach.SetKind(k) }

// StepGrains reports the machine's current sequential threshold per step
// kind (see pram.StepKind) — the adaptive grain surfaced in engine stats.
func (e *Expr) StepGrains() [pram.NumStepKinds]int { return e.mach.Grains() }

// tourOrPanic guards the §5 application queries.
func (e *Expr) tourOrPanic() *euler.Tour {
	if e.tour == nil {
		panic("dyntc: tree-property queries require WithTour()")
	}
	return e.tour
}

// Preorder returns n's 1-based preorder number (requires WithTour).
func (e *Expr) Preorder(n *Node) int { return e.tourOrPanic().Preorder(n) }

// Postorder returns n's 1-based postorder number (requires WithTour).
func (e *Expr) Postorder(n *Node) int { return e.tourOrPanic().Postorder(n) }

// Ancestors returns the number of proper ancestors of n (requires
// WithTour).
func (e *Expr) Ancestors(n *Node) int { return e.tourOrPanic().Ancestors(n) }

// SubtreeSize returns the node count of n's subtree (requires WithTour).
func (e *Expr) SubtreeSize(n *Node) int { return e.tourOrPanic().SubtreeSize(n) }

// LCA returns the least common ancestor of u and v (requires WithTour).
func (e *Expr) LCA(u, v *Node) *Node { return e.tourOrPanic().LCA(u, v) }

// IsAncestor reports whether a is an (inclusive) ancestor of b (requires
// WithTour).
func (e *Expr) IsAncestor(a, b *Node) bool { return e.tourOrPanic().IsAncestor(a, b) }

// EulerTour returns the current Eulerian tour as (node, enter) visits
// (requires WithTour).
func (e *Expr) EulerTour() []TourEntry {
	seq := e.tourOrPanic().Sequence()
	out := make([]TourEntry, len(seq))
	for i, s := range seq {
		out[i] = TourEntry{Node: s.Node, Enter: s.Enter}
	}
	return out
}

// TourEntry is one Eulerian tour visit.
type TourEntry struct {
	Node  *Node
	Enter bool
}

// Monoid is an associative combine with identity, for NewList.
type Monoid[V any] = listprefix.Monoid[V]

// List is the incremental list prefix structure of §3.
type List[V any] = listprefix.List[V]

// ListElem is a stable handle to a list element.
type ListElem[V any] = listprefix.Elem[V]

// NewList builds a dynamic list with monoid aggregation supporting batch
// prefix queries, updates, insertion and deletion (Theorem 3.1).
func NewList[V any](seed uint64, m Monoid[V], values []V) *List[V] {
	return listprefix.New(seed, m, values)
}

// SumMonoid returns the (ℤ, +) monoid for NewList.
func SumMonoid() Monoid[int64] { return listprefix.SumInt64() }

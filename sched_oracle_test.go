package dyntc

// The shared-scheduler metering oracle: the same deterministic request
// program is executed three ways — sequential machine on the executor
// (the reference), per-tree private scheduler pools (the pre-refactor
// architecture), and the shared pool with wave task groups — and every
// observable must be bit-identical: per-request answers and sequence
// stamps, grow-assigned node IDs, the final root, the machine's metered
// PRAM cost, the applied-wave sequence, and the wave change-log bytes.
//
// Determinism is forced with a barrier gate: a QueryAsync barrier parks
// the executor, the round's requests are enqueued while it is parked, and
// releasing the gate makes the executor collect exactly that round as one
// flush — so wave partitioning (and therefore the wave log) is a pure
// function of the program, not of submission timing. Rounds mix grow,
// collapse, set-leaf, set-op, value and root requests, including
// same-node pairs that force multi-wave flushes.
//
// Run with -race: under the shared pool this drives chunk-claimed steps,
// lane-scheduled wave phases and the wave tap across pool workers.

import (
	"encoding/json"
	"fmt"
	"testing"

	"dyntc/internal/prng"
)

type oracleObs struct {
	answers []string // one line per redeemed future, in program order
	root    int64
	metrics Metrics
	applied uint64
	waves   []byte // JSON of the collected wave change-log
}

type oracleFrame struct{ parent, left, right *Node }

// runOracle executes the deterministic program against one configuration.
func runOracle(t *testing.T, seed uint64, workers int, machPool, wavePool *SchedPool) oracleObs {
	t.Helper()
	ring := ModRing(1_000_000_007)
	opts := []Option{WithSeed(seed)}
	if workers > 1 {
		opts = append(opts, WithWorkers(workers), WithGrain(8))
	}
	if machPool != nil {
		opts = append(opts, WithPool(machPool))
	}
	e := NewExpr(ring, 1, opts...)

	// Deterministic fan-out into disjoint per-client regions, pre-serve.
	// 24 clients keep most rounds above the engine's lane threshold, so
	// the shared-pool configuration genuinely executes waves as lane task
	// groups (tiny waves run inline and would not exercise the lane).
	const clients = 24
	bases := []*Node{e.Tree().Root}
	for len(bases) < clients {
		l, r := e.Grow(bases[0], OpAdd(ring), 1, 1)
		bases = append(bases[1:], l, r)
	}

	var waves []Wave
	en := e.Serve(BatchOptions{
		Workers: workers,
		Pool:    wavePool,
		WaveTap: func(w Wave) { waves = append(waves, w) },
	})

	obs := oracleObs{}
	stacks := make([][]oracleFrame, clients)
	rngs := make([]*prng.Source, clients)
	for i := range rngs {
		rngs[i] = prng.New(seed + 1000*uint64(i))
	}

	const rounds = 25
	for r := 0; r < rounds; r++ {
		// Park the executor so the whole round coalesces into one flush.
		entered := make(chan struct{})
		gate := make(chan struct{})
		bf := en.QueryAsync(func(*Expr) { close(entered); <-gate })
		<-entered

		type pending struct {
			kind   string
			client int
			f      *Future
		}
		var futs []pending
		for i := 0; i < clients; i++ {
			rng := rngs[i]
			stack := stacks[i]
			target := bases[i]
			if len(stack) > 0 {
				target = stack[len(stack)-1].right
			}
			switch c := rng.Intn(100); {
			case c < 30 && len(stack) < 12:
				op := OpAdd(ring)
				if rng.Intn(2) == 0 {
					op = OpMul(ring)
				}
				futs = append(futs, pending{"grow", i,
					en.GrowAsync(target, op, int64(rng.Intn(1000)), int64(rng.Intn(1000)))})
			case c < 45 && len(stack) > 0:
				fr := stack[len(stack)-1]
				stacks[i] = stack[:len(stack)-1]
				futs = append(futs, pending{"collapse", i, en.CollapseAsync(fr.parent, int64(rng.Intn(1000)))})
			case c < 60:
				// Same-node set→value pair: conflicts force a second wave,
				// so multi-wave flush partitioning is exercised too.
				leaf := target
				futs = append(futs, pending{"set", i, en.SetLeafAsync(leaf, int64(rng.Intn(1000)))})
				futs = append(futs, pending{"value", i, en.ValueAsync(leaf)})
			case c < 75:
				leaf := target
				if k := len(stack); k > 0 {
					if j := rng.Intn(k + 1); j < k {
						leaf = stack[j].left
					}
				}
				futs = append(futs, pending{"set", i, en.SetLeafAsync(leaf, int64(rng.Intn(1000)))})
			case c < 90:
				n := target
				if k := len(stack); k > 0 {
					fr := stack[rng.Intn(k)]
					switch rng.Intn(3) {
					case 0:
						n = fr.parent
					case 1:
						n = fr.left
					default:
						n = fr.right
					}
				}
				futs = append(futs, pending{"value", i, en.ValueAsync(n)})
			default:
				futs = append(futs, pending{"root", i, en.RootAsync()})
			}
		}
		close(gate)
		if err := bf.Wait(); err != nil {
			t.Fatalf("round %d: gate barrier: %v", r, err)
		}
		bf.Recycle()

		for _, p := range futs {
			switch p.kind {
			case "grow":
				l, rt, err := p.f.Pair()
				if err != nil {
					t.Fatalf("round %d client %d grow: %v", r, p.client, err)
				}
				stacks[p.client] = append(stacks[p.client], oracleFrame{parent: nil, left: l, right: rt})
				obs.answers = append(obs.answers, fmt.Sprintf("grow %d %d %d", p.client, l.ID, rt.ID))
				// Record the parent for collapse: it is the node that was grown.
				stacks[p.client][len(stacks[p.client])-1].parent = l.Parent
			case "value", "root":
				v, seq, err := p.f.ValueSeq()
				if err != nil {
					t.Fatalf("round %d client %d %s: %v", r, p.client, p.kind, err)
				}
				obs.answers = append(obs.answers, fmt.Sprintf("%s %d %d @%d", p.kind, p.client, v, seq))
			default:
				if err := p.f.Wait(); err != nil {
					t.Fatalf("round %d client %d %s: %v", r, p.client, p.kind, err)
				}
				obs.answers = append(obs.answers, fmt.Sprintf("%s %d", p.kind, p.client))
			}
			p.f.Recycle()
		}
	}

	obs.applied = en.AppliedSeq()
	en.Close()
	obs.root = e.Root()
	obs.metrics = e.PRAM()
	data, err := json.Marshal(waves)
	if err != nil {
		t.Fatalf("marshal waves: %v", err)
	}
	obs.waves = data

	// Sanity: the program genuinely produced mixed grow∥set∥value waves.
	mixed := false
	for _, w := range waves {
		kinds := map[uint8]bool{}
		for _, op := range w.Ops {
			kinds[uint8(op.Kind)] = true
		}
		if len(kinds) >= 2 {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Fatal("oracle program produced no mixed-kind wave; the test lost its teeth")
	}
	return obs
}

func assertOracleEqual(t *testing.T, label string, want, got oracleObs) {
	t.Helper()
	if got.root != want.root {
		t.Fatalf("%s: root %d != reference %d", label, got.root, want.root)
	}
	if got.metrics != want.metrics {
		t.Fatalf("%s: PRAM metrics %+v != reference %+v (metering must be bit-identical)", label, got.metrics, want.metrics)
	}
	if got.applied != want.applied {
		t.Fatalf("%s: applied seq %d != reference %d", label, got.applied, want.applied)
	}
	if len(got.answers) != len(want.answers) {
		t.Fatalf("%s: %d answers != reference %d", label, len(got.answers), len(want.answers))
	}
	for i := range got.answers {
		if got.answers[i] != want.answers[i] {
			t.Fatalf("%s: answer %d = %q, reference %q", label, i, got.answers[i], want.answers[i])
		}
	}
	if string(got.waves) != string(want.waves) {
		t.Fatalf("%s: wave change-log bytes differ from reference (len %d vs %d)", label, len(got.waves), len(want.waves))
	}
}

// TestSharedPoolOracleBitIdentical is the acceptance oracle: shared-pool
// wave execution produces identical roots, metrics, answers and wave-log
// bytes to the sequential machine and to per-tree private pools, across
// seeds, including mixed grow∥set∥value waves.
func TestSharedPoolOracleBitIdentical(t *testing.T) {
	for _, seed := range []uint64{3, 17, 1009} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runOracle(t, seed, 0, nil, nil) // sequential machine, inline waves

			private := NewSchedPool(4) // the pre-refactor shape: one pool per tree
			got := runOracle(t, seed, 4, private, nil)
			assertOracleEqual(t, "private-pool", ref, got)
			private.Close()

			shared := NewSchedPool(4) // the shared pool: machine steps + wave task groups
			got = runOracle(t, seed, 4, shared, shared)
			assertOracleEqual(t, "shared-pool", ref, got)
			shared.Close()
		})
	}
}

// Command dyntc-bench regenerates the experiment tables of EXPERIMENTS.md:
// one table per theorem of Reif & Tate (SPAA'94), validating the claimed
// bounds on the metered PRAM simulator.
//
// Usage:
//
//	dyntc-bench                 # run all experiments at full size
//	dyntc-bench -experiment=E3  # one experiment
//	dyntc-bench -quick          # reduced sizes (seconds, for smoke runs)
//	dyntc-bench -seed=7         # change the randomness
//
// Load-driver mode measures the concurrent request-coalescing engine at
// varying client counts and batch windows and writes the machine-readable
// BENCH_engine.json tracked across PRs:
//
//	dyntc-bench -engine                          # default sweep
//	dyntc-bench -engine -clients=1,8,64 -windows=0,1ms -ops=5000
//	dyntc-bench -engine -workers=1,2,4 -grain=128
//	dyntc-bench -engine -shape=path              # adversarial deep topology
//	dyntc-bench -engine -quick -out=BENCH_engine.json
//
// The -workers sweep serves each run's waves on a PRAM worker pool of
// that size (1 = sequential machine); every result records the worker
// count and its wall-clock speedup against the workers=1 run of the same
// (clients, window) cell. -grain lowers the machine's sequential
// threshold so smaller batches execute pool-parallel.
//
// Replay mode measures the durability pipeline (internal/replog):
// snapshot size and codec cost, wave-log throughput under live traffic,
// cold replay speed into a follower, and live follower lag — and writes
// BENCH_replay.json:
//
//	dyntc-bench -replay
//	dyntc-bench -replay -quick -replay-out=BENCH_replay.json
//	dyntc-bench -replay -clients=8 -ops=5000
//
// Query mode measures the cross-tree scatter-gather engine
// (internal/query): direct fan-out queries/sec and join latency p50/p99
// over the forest, one POST /query versus N sequential per-tree GET
// round-trips on the same in-process HTTP host, and the follower
// read-offload speedup — and writes BENCH_query.json:
//
//	dyntc-bench -query
//	dyntc-bench -query -quick -query-out=BENCH_query.json
//	dyntc-bench -query -forests=64,1024 -workers=1,4,8
//	dyntc-bench -query -query-baseline=BENCH_query.json  # regression gate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dyntc"
	"dyntc/internal/bench"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment ID (E1..E13) or 'all'")
		quick    = flag.Bool("quick", false, "reduced problem sizes")
		seed     = flag.Uint64("seed", 42, "randomness seed")
		engine   = flag.Bool("engine", false, "run the engine load driver instead of the experiments")
		clients  = flag.String("clients", "", "engine mode: comma-separated client counts (default 1,2,4,8,16,32)")
		windows  = flag.String("windows", "", "engine mode: comma-separated batch windows, e.g. 0,100us,1ms")
		workers  = flag.String("workers", "", "engine mode: comma-separated PRAM worker hints (default 1,4)")
		grain    = flag.Int("grain", 0, "engine mode: pin the machine sequential threshold (0 = adaptive)")
		shape    = flag.String("shape", "", "engine mode: pre-grown tree topology — star (default), path, random")
		ops      = flag.Int("ops", 0, "engine mode: operations per client (default 2000; 300 with -quick)")
		out      = flag.String("out", "BENCH_engine.json", "engine mode: output JSON path ('' to skip)")
		sharedP  = flag.Bool("shared-pool", false, "engine/query mode: additionally run every cell on one shared scheduler pool and record shared-vs-private speedups")
		forestT  = flag.String("forest-trees", "", "engine mode: comma-separated forest sizes (N trees × 1 client, 4 workers each; shared pool vs N private pools)")
		forestG  = flag.Int("forest-grain", 0, "engine mode: pinned step grain for forest cells (default 8: every wave step dispatches, so the scheduling discipline is what the cell measures)")
		baseFile = flag.String("baseline", "", "engine mode: committed BENCH_engine.json to compare against; fails on >max-regress ops/sec regression for matching rows on the same host class")
		maxRegr  = flag.Float64("max-regress", 0.10, "engine mode: tolerated fractional ops/sec regression vs -baseline")
		replay   = flag.Bool("replay", false, "run the replication/durability driver (snapshot + wave log + follower)")
		repOut   = flag.String("replay-out", "BENCH_replay.json", "replay mode: output JSON path ('' to skip)")
		repBase  = flag.String("replay-baseline", "", "replay mode: committed BENCH_replay.json to compare against; fails on >max-regress throughput regression for matching rows on the same host class")
		queryB   = flag.Bool("query", false, "run the cross-tree query driver (scatter-gather vs naive per-tree GETs + follower offload)")
		qryOut   = flag.String("query-out", "BENCH_query.json", "query mode: output JSON path ('' to skip)")
		qryBase  = flag.String("query-baseline", "", "query mode: committed BENCH_query.json to compare against; fails on >max-regress queries/sec regression for matching rows on the same host class")
		forests  = flag.String("forests", "", "query mode: comma-separated forest sizes (default 64,256,1024)")

		scrape    = flag.Bool("scrape", false, "engine mode: attach a metrics registry to every run and embed its before/after sample deltas in the output JSON")
		scrapeURL = flag.String("scrape-check", "", "CI scrape smoke: drive ops against a live dyntcd at this base URL, then validate GET /metrics, GET /v1/trace and GET /v1/spans (one traced batch)")
		scrapeOps = flag.Int("scrape-ops", 300, "scrape-check mode: operations to drive before scraping")
		scrapeFo  = flag.String("scrape-follower", "", "scrape-check mode: also validate a follower dyntcd at this base URL (lag-stage histograms + replica spans; polls until catch-up)")
	)
	flag.Parse()

	if *scrapeURL != "" {
		if err := bench.ScrapeCheck(*scrapeURL, *scrapeOps); err != nil {
			fmt.Fprintf(os.Stderr, "dyntc-bench: scrape check %s: %v\n", *scrapeURL, err)
			os.Exit(1)
		}
		fmt.Printf("scrape check %s: ok (%d ops)\n", *scrapeURL, *scrapeOps)
		if *scrapeFo != "" {
			if err := bench.FollowerScrapeCheck(*scrapeURL, *scrapeFo); err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: follower scrape check %s: %v\n", *scrapeFo, err)
				os.Exit(1)
			}
			fmt.Printf("follower scrape check %s: ok\n", *scrapeFo)
		}
		return
	}

	if *queryB {
		qcfg := bench.DefaultQueryConfig(*quick, *seed)
		if *forests != "" {
			qcfg.ForestSizes = mustInts(*forests)
		}
		if *workers != "" {
			qcfg.Workers = mustInts(*workers)
		}
		qcfg.SharedPool = *sharedP
		results := bench.QueryLoad(qcfg)
		tb := bench.QueryTable(results)
		tb.Fprint(os.Stdout)
		for _, r := range results {
			if !r.Match {
				fmt.Fprintf(os.Stderr, "dyntc-bench: FAIL trees=%d workers=%d: combined %d != naive per-tree sum %d\n",
					r.Trees, r.Workers, r.Combined, r.NaiveSum)
				os.Exit(1)
			}
		}
		if *qryBase != "" {
			baseline, err := bench.ReadQueryJSON(*qryBase)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: read query baseline %s: %v\n", *qryBase, err)
				os.Exit(1)
			}
			compared, failures := bench.CompareQueryBaseline(results, baseline, *maxRegr)
			fmt.Printf("query baseline check vs %s: %d comparable rows, %d regressions\n", *qryBase, compared, len(failures))
			if len(failures) > 0 {
				for _, f := range failures {
					fmt.Fprintf(os.Stderr, "dyntc-bench: REGRESSION %s\n", f)
				}
				os.Exit(1)
			}
		}
		if *qryOut != "" {
			if err := bench.WriteQueryJSON(*qryOut, results); err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: write %s: %v\n", *qryOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d results)\n", *qryOut, len(results))
		}
		return
	}

	if *replay {
		rcfg := bench.DefaultReplayConfig(*quick, *seed)
		if *clients != "" {
			cs := mustInts(*clients)
			rcfg.Clients = cs[len(cs)-1]
		}
		if *ops > 0 {
			rcfg.Ops = []int{*ops}
		}
		results := bench.ReplayLoad(rcfg)
		tb := bench.ReplayTable(results)
		tb.Fprint(os.Stdout)
		for _, r := range results {
			if !r.Converged {
				fmt.Fprintf(os.Stderr, "dyntc-bench: FAIL clients=%d ops=%d: follower did not converge to leader snapshot\n",
					r.Clients, r.Ops)
				os.Exit(1)
			}
		}
		if *repBase != "" {
			baseline, err := bench.ReadReplayJSON(*repBase)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: read replay baseline %s: %v\n", *repBase, err)
				os.Exit(1)
			}
			compared, failures := bench.CompareReplayBaseline(results, baseline, *maxRegr)
			fmt.Printf("replay baseline check vs %s: %d comparable rows, %d regressions\n", *repBase, compared, len(failures))
			if len(failures) > 0 {
				for _, f := range failures {
					fmt.Fprintf(os.Stderr, "dyntc-bench: FAIL %s\n", f)
				}
				os.Exit(1)
			}
		}
		if *repOut != "" {
			if err := bench.WriteReplayJSON(*repOut, results); err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: write %s: %v\n", *repOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d results)\n", *repOut, len(results))
		}
		return
	}

	if *engine {
		ecfg := bench.DefaultEngineConfig(*quick, *seed)
		if *clients != "" {
			ecfg.Clients = mustInts(*clients)
		}
		if *windows != "" {
			ecfg.Windows = mustDurations(*windows)
		}
		if *workers != "" {
			ecfg.Workers = mustInts(*workers)
		}
		if *grain > 0 {
			ecfg.Grain = *grain
		}
		if *ops > 0 {
			ecfg.OpsPerClient = *ops
		}
		switch *shape {
		case "", "star", "path", "random":
			ecfg.Shape = *shape
		default:
			fmt.Fprintf(os.Stderr, "dyntc-bench: bad -shape %q (want star, path or random)\n", *shape)
			os.Exit(2)
		}
		ecfg.SharedPool = *sharedP
		if *forestT != "" {
			ecfg.ForestTrees = mustInts(*forestT)
		}
		if *forestG > 0 {
			ecfg.ForestGrain = *forestG
		}
		var reg *dyntc.MetricsRegistry
		var before map[string]float64
		if *scrape {
			reg = dyntc.NewMetricsRegistry()
			ecfg.Obs = dyntc.NewEngineMetrics(reg)
			// Tracing on at the default cadence: the instrumented run also
			// carries the span layer's (unsampled) flush-path cost.
			spans, err := dyntc.NewSpanLog(0, "bench", "")
			if err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: span log: %v\n", err)
				os.Exit(1)
			}
			ecfg.Spans = spans
			before = mustScrape(reg)
		}
		results := bench.EngineLoad(ecfg)
		tb := bench.EngineTable(results)
		tb.Fprint(os.Stdout)
		for _, r := range results {
			if !r.Match {
				fmt.Fprintf(os.Stderr, "dyntc-bench: FAIL trees=%d clients=%d window=%.0fus workers=%d shared=%v: live root %d != replay %d\n",
					r.Trees, r.Clients, r.WindowUS, r.Workers, r.Shared, r.Root, r.ReplayRoot)
				os.Exit(1)
			}
		}
		if *baseFile != "" {
			baseline, err := bench.ReadEngineJSON(*baseFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: read baseline %s: %v\n", *baseFile, err)
				os.Exit(1)
			}
			compared, failures := bench.CompareEngineBaseline(results, baseline, *maxRegr)
			fmt.Printf("baseline check vs %s: %d comparable rows, %d regressions\n", *baseFile, compared, len(failures))
			if len(failures) > 0 {
				for _, f := range failures {
					fmt.Fprintf(os.Stderr, "dyntc-bench: REGRESSION %s\n", f)
				}
				os.Exit(1)
			}
		}
		if *out != "" {
			var delta map[string]float64
			if reg != nil {
				delta = bench.DeltaMetrics(before, mustScrape(reg))
			}
			if err := bench.WriteEngineJSONScrape(*out, results, delta); err != nil {
				fmt.Fprintf(os.Stderr, "dyntc-bench: write %s: %v\n", *out, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d results)\n", *out, len(results))
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	if *exp == "all" {
		for _, tb := range bench.All(cfg) {
			tb.Fprint(os.Stdout)
		}
		return
	}
	tb, ok := bench.ByID(*exp, cfg)
	if !ok {
		fmt.Fprintf(os.Stderr, "dyntc-bench: unknown experiment %q (want E1..E13 or all)\n", *exp)
		os.Exit(2)
	}
	tb.Fprint(os.Stdout)
}

// mustScrape renders and parses an in-process registry snapshot.
func mustScrape(reg *dyntc.MetricsRegistry) map[string]float64 {
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		fmt.Fprintf(os.Stderr, "dyntc-bench: render metrics: %v\n", err)
		os.Exit(1)
	}
	m, err := bench.ParseMetricsText(sb.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyntc-bench: parse metrics: %v\n", err)
		os.Exit(1)
	}
	return m
}

// mustInts parses a comma-separated int list.
func mustInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "dyntc-bench: bad client count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// mustDurations parses a comma-separated duration list; a bare number is
// taken as nanoseconds ("0" disables the window).
func mustDurations(s string) []time.Duration {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if n, err := strconv.Atoi(part); err == nil && n >= 0 {
			out = append(out, time.Duration(n))
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil || d < 0 {
			fmt.Fprintf(os.Stderr, "dyntc-bench: bad window %q\n", part)
			os.Exit(2)
		}
		out = append(out, d)
	}
	return out
}

// Command dyntc-bench regenerates the experiment tables of EXPERIMENTS.md:
// one table per theorem of Reif & Tate (SPAA'94), validating the claimed
// bounds on the metered PRAM simulator.
//
// Usage:
//
//	dyntc-bench                 # run all experiments at full size
//	dyntc-bench -experiment=E3  # one experiment
//	dyntc-bench -quick          # reduced sizes (seconds, for smoke runs)
//	dyntc-bench -seed=7         # change the randomness
package main

import (
	"flag"
	"fmt"
	"os"

	"dyntc/internal/bench"
)

func main() {
	var (
		exp   = flag.String("experiment", "all", "experiment ID (E1..E11) or 'all'")
		quick = flag.Bool("quick", false, "reduced problem sizes")
		seed  = flag.Uint64("seed", 42, "randomness seed")
	)
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	if *exp == "all" {
		for _, tb := range bench.All(cfg) {
			tb.Fprint(os.Stdout)
		}
		return
	}
	tb, ok := bench.ByID(*exp, cfg)
	if !ok {
		fmt.Fprintf(os.Stderr, "dyntc-bench: unknown experiment %q (want E1..E11 or all)\n", *exp)
		os.Exit(2)
	}
	tb.Fprint(os.Stdout)
}

// Command dyntc evaluates arithmetic expressions with dynamic parallel
// tree contraction and demonstrates incremental updates.
//
// The expression language is fully parenthesized s-expressions over + and *
// with integer leaves:
//
//	dyntc '(+ (* 3 4) 5)'
//
// prints the value, then (with -trace) applies a few random leaf updates,
// showing the healed root value and the wound size after each — the
// self-healing behaviour of the paper's §1.4.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dyntc"
	"dyntc/internal/prng"
)

func main() {
	var (
		mod   = flag.Int64("mod", 1_000_000_007, "evaluate modulo this prime")
		trace = flag.Bool("trace", false, "apply random updates and show healing stats")
		seed  = flag.Uint64("seed", 1, "randomness seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dyntc [flags] '(+ (* 3 4) 5)'")
		os.Exit(2)
	}

	ring := dyntc.ModRing(*mod)
	e := dyntc.NewExpr(ring, 0, dyntc.WithSeed(*seed))
	leaves, err := parseInto(e, ring, flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dyntc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("value = %d (mod %d)\n", e.Root(), *mod)

	if *trace {
		src := prng.New(*seed + 1)
		for i := 0; i < 5 && len(leaves) > 0; i++ {
			leaf := leaves[src.Intn(len(leaves))]
			nv := src.Int63() % 100
			e.SetLeaf(leaf, nv)
			st := e.Stats()
			fmt.Printf("set leaf -> %2d : value = %d  (wound: %d records over %d rounds)\n",
				nv, e.Root(), st.WoundRecords, st.WoundRounds)
		}
	}
}

// parseInto parses the s-expression into e (which must be a fresh
// single-leaf Expr) and returns the leaf handles.
func parseInto(e *dyntc.Expr, ring dyntc.Ring, s string) ([]*dyntc.Node, error) {
	toks := tokenize(s)
	pos := 0
	var leaves []*dyntc.Node
	var build func(at *dyntc.Node) error
	build = func(at *dyntc.Node) error {
		if pos >= len(toks) {
			return fmt.Errorf("unexpected end of expression")
		}
		tok := toks[pos]
		pos++
		if tok != "(" {
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return fmt.Errorf("bad token %q", tok)
			}
			e.SetLeaf(at, v)
			leaves = append(leaves, at)
			return nil
		}
		if pos >= len(toks) {
			return fmt.Errorf("missing operator")
		}
		var op dyntc.Op
		switch toks[pos] {
		case "+":
			op = dyntc.OpAdd(ring)
		case "*":
			op = dyntc.OpMul(ring)
		default:
			return fmt.Errorf("unknown operator %q", toks[pos])
		}
		pos++
		l, r := e.Grow(at, op, 0, 0)
		if err := build(l); err != nil {
			return err
		}
		if err := build(r); err != nil {
			return err
		}
		if pos >= len(toks) || toks[pos] != ")" {
			return fmt.Errorf("missing )")
		}
		pos++
		return nil
	}
	if err := build(e.Tree().Root); err != nil {
		return nil, err
	}
	if pos != len(toks) {
		return nil, fmt.Errorf("trailing tokens after expression")
	}
	return leaves, nil
}

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

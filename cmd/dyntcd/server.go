package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyntc"
	"dyntc/internal/engine"
	"dyntc/internal/obs"
	"dyntc/internal/replog"
)

// server exposes a dyntc.Forest over HTTP/JSON. Every tree is served by
// its own coalescing engine, so concurrent requests against one tree
// amortize into batches while requests against different trees proceed
// fully in parallel.
//
// API (all bodies JSON):
//
//	GET    /healthz
//	POST   /v1/trees                    {ring, mod?, root, seed?, tour?} -> {tree, root_node}
//	GET    /v1/trees                    -> {trees: [{tree, nodes, leaves, root}]}
//	DELETE /v1/trees/{id}
//	POST   /v1/trees/{id}/grow         {leaf, op, left, right} -> {left, right}
//	POST   /v1/trees/{id}/collapse     {node, value}
//	POST   /v1/trees/{id}/set-leaf     {leaf, value}
//	POST   /v1/trees/{id}/set-op       {node, op}
//	POST   /v1/trees/{id}/batch        {ops: [...]} -> {results: [...]}
//	GET    /v1/trees/{id}/value[?node=N] -> {value}
//	GET    /v1/trees/{id}/stats        -> engine + tree stats
//	GET    /v1/stats                   -> forest-wide aggregate
//	POST   /v1/query                   cross-tree scatter-gather read
//	                                   (see query.go; also served by followers)
//
// Durability & replication (see internal/replog):
//
//	GET    /v1/healthz                  -> per-engine liveness + applied seq
//	GET    /v1/trees/{id}/snapshot      -> versioned snapshot (tree + seed + seq)
//	PUT    /v1/trees/{id}/snapshot      restore a tree under this id
//	GET    /v1/trees/{id}/log?since=SEQ -> waves after SEQ (410 = truncated,
//	                                       re-bootstrap from a snapshot)
//
// Nodes are addressed by their dense, lifetime-stable IDs (tree.Node.ID);
// a new tree's root is node 0.
type server struct {
	forest  *dyntc.Forest
	start   time.Time
	workers int              // PRAM parallelism hint applied to every tree
	pool    *dyntc.SchedPool // the process-wide runtime scheduler (nil in tests)
	// rings remembers each tree's ring so op names ("add"/"mul") can be
	// parsed per request.
	rings sync.Map // dyntc.TreeID -> dyntc.Ring

	// Every tree's engine feeds a wave change-log: the in-memory ring
	// serves follower catch-up, and with a WAL directory configured each
	// tree also appends to <walDir>/tree-<id>.wal.
	walDir string
	logCap int
	logs   sync.Map // dyntc.TreeID -> *dyntc.WaveLog

	// compactEvery > 0 compacts each tree's log every that many waves:
	// snapshot the tree (to <walDir>/tree-<id>.snap when walDir is set),
	// then trim the log ring and WAL to the snapshot's sequence. Followers
	// behind a trimmed log re-bootstrap via the 410 path.
	compactEvery int
	compactors   sync.Map // dyntc.TreeID -> *compactor

	// obs, when set (server.observe), adds GET /metrics and GET /v1/trace
	// to the routes and feeds the snapshot instruments. Nil in tests that
	// don't exercise observability.
	obs *obsBundle

	// fenced, when non-zero, is the newer leadership epoch this leader has
	// observed: a promoted follower is serving writes for a term above any
	// this process sealed, so every write here would be lost on the next
	// failover. A fenced leader refuses writes with 403 and keeps serving
	// reads and its log tail (the new term drains it). Fencing is one-way;
	// recovery is a restart.
	fenced atomic.Uint64

	// faults, when set, is the deterministic fault schedule: it rides into
	// every tree's WAL ("wal.append"/"wal.sync") here and into the engines
	// ("engine.wave") via BatchOptions.Faults in main.
	faults *dyntc.FaultInjector
}

// fence records a newer leadership epoch, flipping the server read-only.
// Multiple observations keep the highest epoch.
func (s *server) fence(epoch uint64) {
	for {
		cur := s.fenced.Load()
		if epoch <= cur {
			return
		}
		if s.fenced.CompareAndSwap(cur, epoch) {
			slog.Warn("fenced read-only: observed leadership epoch above ours", "epoch", epoch)
			s.obs.journal().Emit(obs.EvDemote,
				"fenced read-only: observed leadership epoch above ours",
				map[string]any{"epoch": epoch})
			return
		}
	}
}

// maxEpoch returns the highest leadership epoch across served trees.
func (s *server) maxEpoch() uint64 {
	var max uint64
	s.forest.Each(func(_ dyntc.TreeID, en *dyntc.Engine) {
		if e := en.Epoch(); e > max {
			max = e
		}
	})
	return max
}

// writable guards a mutating handler behind the epoch fence.
func (s *server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if ep := s.fenced.Load(); ep != 0 {
			writeErr(w, apiError{http.StatusForbidden,
				fmt.Sprintf("demoted at epoch %d: fenced read-only", ep)})
			return
		}
		h(w, r)
	}
}

// compactor is one tree's background log-compaction loop. The engine's
// wave tap kicks it (non-blocking) every compactEvery waves; the loop
// runs the snapshot barrier and the log trim off the executor goroutine.
type compactor struct {
	kick chan struct{} // buffered(1): coalesces kicks
	stop chan struct{}
	done chan struct{}
}

// compactLoop snapshots the tree and trims its log on every kick.
func (s *server) compactLoop(id dyntc.TreeID, en *dyntc.Engine, wl *dyntc.WaveLog, c *compactor) {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		}
		var seq uint64
		if s.walDir != "" {
			// The durable path: persist a snapshot first, then trim the
			// log to it — snapshot + compacted WAL replaces genesis + log.
			t0 := time.Now()
			data, snapSeq, err := en.SnapshotAt()
			if err != nil {
				slog.Error("compact snapshot failed", "tree", id, "err", err)
				continue
			}
			s.obs.snapshotDone(len(data), time.Since(t0))
			path := filepath.Join(s.walDir, fmt.Sprintf("tree-%d.snap", id))
			if err := writeFileSync(path, data); err != nil {
				// Keep the log intact: without the persisted snapshot the
				// trimmed prefix would be unrecoverable on disk.
				slog.Error("compact snapshot write failed", "tree", id, "err", err)
				continue
			}
			seq = snapSeq
		} else {
			// Ring-only mode: no serialization needed — trim to the
			// current applied sequence; followers needing older waves
			// re-bootstrap from the live snapshot endpoint anyway.
			seq = en.AppliedSeq()
		}
		// Trim with a retention margin (a quarter of the ring) so
		// steadily-polling followers — typically a few waves behind —
		// keep tailing incrementally instead of being forced into a full
		// re-bootstrap after every compaction. Waves in the margin are
		// redundant for recovery (the snapshot anchors replay at seq);
		// they are catch-up runway.
		capacity := s.logCap
		if capacity <= 0 {
			capacity = replog.DefaultLogCapacity
		}
		margin := uint64(capacity / 4)
		if seq <= margin {
			continue
		}
		if err := wl.Compact(seq - margin); err != nil {
			slog.Error("compact log failed", "tree", id, "err", err)
		}
	}
}

// writeFileSync writes data to path atomically (temp + rename), fsyncing
// before the rename: the WAL trim that follows a compaction snapshot
// must never outrun the snapshot's durability.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// Order the snapshot's directory entry ahead of the WAL trim that
	// follows: without this fsync a crash could keep the trimmed WAL but
	// lose the snapshot that anchors it.
	return replog.SyncDir(filepath.Dir(path))
}

// stopCompactor stops tree id's compaction loop, if any.
func (s *server) stopCompactor(id dyntc.TreeID) {
	if v, ok := s.compactors.LoadAndDelete(id); ok {
		c := v.(*compactor)
		close(c.stop)
		<-c.done
	}
}

func newServer(opts dyntc.BatchOptions) *server {
	return newServerWAL(opts, "", 0)
}

func newServerWAL(opts dyntc.BatchOptions, walDir string, logCap int) *server {
	// The server sheds rather than blocks: a request against a tree whose
	// submit queue is full gets 429 + Retry-After instead of parking an
	// HTTP handler goroutine on engine backpressure.
	opts.Shed = true
	return &server{
		forest:  dyntc.NewForest(opts),
		start:   time.Now(),
		workers: opts.Workers,
		pool:    opts.Pool,
		walDir:  walDir,
		logCap:  logCap,
	}
}

// attachLog creates the tree's wave log and taps the engine into it.
// Attach happens before the engine sees traffic, so the log is gapless
// from the tree's (or restore's) first wave.
func (s *server) attachLog(id dyntc.TreeID, en *dyntc.Engine) error {
	path := ""
	if s.walDir != "" {
		path = filepath.Join(s.walDir, fmt.Sprintf("tree-%d.wal", id))
	}
	wl, err := dyntc.NewWaveLog(s.logCap, path)
	if err != nil {
		return err
	}
	if s.obs != nil {
		wl.SetMetrics(s.obs.replog)
		wl.SetEvents(s.obs.events)
	}
	if s.faults != nil {
		wl.SetFaults(s.faults)
	}
	s.logs.Store(id, wl)
	var c *compactor
	if s.compactEvery > 0 {
		c = &compactor{
			kick: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		s.compactors.Store(id, c)
		go s.compactLoop(id, en, wl, c)
	}
	en.SetWaveTap(func(w dyntc.Wave) {
		t0 := time.Now()
		if err := wl.Append(w); err != nil {
			slog.Error("wave log append failed", "tree", id, "seq", w.Seq, "err", err)
		}
		// The append's wall time feeds the flight recorder: a stalling
		// disk shows up as a wal.append anomaly before it backs the
		// executor up far enough to shed.
		s.obs.recorder().Observe(sigWALAppend, int64(time.Since(t0)))
		// Kick the compactor every compactEvery waves; the send is
		// non-blocking (the tap runs on the executor) and coalesces.
		if c != nil && w.Seq%uint64(s.compactEvery) == 0 {
			select {
			case c.kick <- struct{}{}:
			default:
			}
		}
	})
	return nil
}

// persistSnapshot writes tree id's snapshot next to its WAL (no-op
// without -wal-dir). The pair tree-<id>.snap + tree-<id>.wal is the
// recovery anchor: restore the snapshot, replay the WAL past its
// sequence. Called at tree birth (create / PUT snapshot / promotion) and
// by compaction, so a WAL never exists without the snapshot that anchors
// its replay.
func (s *server) persistSnapshot(id dyntc.TreeID, data []byte) error {
	if s.walDir == "" {
		return nil
	}
	return writeFileSync(filepath.Join(s.walDir, fmt.Sprintf("tree-%d.snap", id)), data)
}

// recover rebuilds every tree whose snapshot survives in the WAL
// directory: restore the snapshot, replay the recovered WAL tail past
// its sequence (truncating a torn tail instead of refusing to start),
// then re-anchor — persist a fresh snapshot of the recovered state and
// rotate to a fresh WAL via attachLog. Call before serving traffic.
func (s *server) recover() error {
	if s.walDir == "" {
		return nil
	}
	snaps, err := filepath.Glob(filepath.Join(s.walDir, "tree-*.snap"))
	if err != nil {
		return err
	}
	anchored := make(map[string]bool, len(snaps))
	for _, sp := range snaps {
		idStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(sp), "tree-"), ".snap")
		id, perr := strconv.ParseUint(idStr, 10, 64)
		if perr != nil {
			continue
		}
		anchored[idStr] = true
		data, rerr := os.ReadFile(sp)
		if rerr != nil {
			slog.Error("read snapshot failed, skipping tree", "tree", idStr, "err", rerr)
			continue
		}
		en, seq, rerr := s.forest.Restore(id, data)
		if rerr != nil {
			slog.Error("restore snapshot failed, skipping tree", "tree", idStr, "err", rerr)
			continue
		}
		epoch := en.Epoch()
		snapEpoch := epoch
		walPath := filepath.Join(s.walDir, fmt.Sprintf("tree-%d.wal", id))
		if _, serr := os.Stat(walPath); serr == nil {
			waves, dropped, werr := dyntc.RecoverWaveLog(walPath)
			if werr != nil {
				slog.Error("wal recover failed, serving snapshot state", "tree", id, "err", werr)
			} else {
				if dropped > 0 {
					slog.Warn("wal recover truncated torn tail", "tree", id, "bytes", dropped)
				}
				// Replay contiguously past the snapshot. The engine is
				// untapped here, so mutating inside Query is legal and the
				// replayed waves are not re-logged.
				for _, wv := range waves {
					if wv.Seq <= seq {
						continue
					}
					if wv.Seq != seq+1 {
						slog.Warn("wal gap, stopping replay", "tree", id, "wave", wv.Seq, "recovered_to", seq)
						break
					}
					wv := wv
					var aerr error
					if qerr := en.Query(func(e *dyntc.Expr) { aerr = e.ApplyWave(wv) }); qerr != nil {
						aerr = qerr
					}
					if aerr != nil {
						slog.Error("wal replay failed, stopping replay", "tree", id, "wave", wv.Seq, "err", aerr)
						break
					}
					seq = wv.Seq
					if ep := wv.EpochOrDefault(); ep > epoch {
						epoch = ep
					}
				}
				if dropped > 0 {
					// Journaled after replay so recovered_to is the seq the
					// tree actually serves from, not the snapshot anchor.
					s.obs.journal().EmitTree(obs.EvWALTorn, id,
						"wal recover truncated a torn tail",
						map[string]any{"bytes": dropped, "recovered_to": seq})
				}
			}
		}
		en.SetAppliedSeq(seq)
		en.SetEpoch(epoch)
		if epoch > snapEpoch {
			s.obs.journal().EmitTree(obs.EvEpochAdopt, id,
				"adopted a newer leadership epoch from the wal tail",
				map[string]any{"epoch": epoch, "from": snapEpoch})
		}
		var ring dyntc.Ring
		if qerr := en.Query(func(e *dyntc.Expr) { ring = e.Tree().Ring }); qerr != nil {
			return qerr
		}
		s.rings.Store(id, ring)
		// Re-anchor before attaching: the fresh snapshot at the recovered
		// sequence and the fresh WAL attachLog rotates to form a consistent
		// pair even if the replayed tail was torn.
		rsnap, rseq, serr := en.SnapshotAt()
		if serr != nil {
			return serr
		}
		if err := s.persistSnapshot(id, rsnap); err != nil {
			return err
		}
		if err := s.attachLog(id, en); err != nil {
			return err
		}
		slog.Info("tree recovered", "tree", id, "seq", rseq, "epoch", epoch)
	}
	// A WAL without its anchoring snapshot cannot be replayed (waves are
	// deltas); refuse to guess and leave the file for the operator.
	wals, _ := filepath.Glob(filepath.Join(s.walDir, "tree-*.wal"))
	for _, wp := range wals {
		idStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(wp), "tree-"), ".wal")
		if !anchored[idStr] {
			slog.Warn("wal has no snapshot anchor, not recovered", "wal", wp, "tree", idStr)
		}
	}
	return nil
}

// closeLogs stops the compactors and flushes and closes every tree's WAL
// (shutdown path; call after the forest has drained).
func (s *server) closeLogs() {
	s.compactors.Range(func(k, _ any) bool {
		s.stopCompactor(k.(dyntc.TreeID))
		return true
	})
	s.logs.Range(func(k, v any) bool {
		if err := v.(*dyntc.WaveLog).Close(); err != nil {
			slog.Error("wal close failed", "tree", k, "err", err)
		}
		return true
	})
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "uptime_s": time.Since(s.start).Seconds()})
	})
	mux.HandleFunc("POST /v1/trees", s.writable(s.handleCreate))
	mux.HandleFunc("GET /v1/trees", s.handleList)
	mux.HandleFunc("DELETE /v1/trees/{id}", s.writable(s.handleDelete))
	mux.HandleFunc("POST /v1/trees/{id}/grow", s.writable(s.treeHandler(s.handleGrow)))
	mux.HandleFunc("POST /v1/trees/{id}/collapse", s.writable(s.treeHandler(s.handleCollapse)))
	mux.HandleFunc("POST /v1/trees/{id}/set-leaf", s.writable(s.treeHandler(s.handleSetLeaf)))
	mux.HandleFunc("POST /v1/trees/{id}/set-op", s.writable(s.treeHandler(s.handleSetOp)))
	mux.HandleFunc("POST /v1/trees/{id}/batch", s.writable(s.treeHandler(s.handleBatch)))
	mux.HandleFunc("GET /v1/trees/{id}/value", s.treeHandler(s.handleValue))
	mux.HandleFunc("GET /v1/trees/{id}/stats", s.treeHandler(s.handleTreeStats))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/trees/{id}/snapshot", s.treeHandler(s.handleGetSnapshot))
	mux.HandleFunc("PUT /v1/trees/{id}/snapshot", s.writable(s.handlePutSnapshot))
	mux.HandleFunc("GET /v1/trees/{id}/log", s.treeHandler(s.handleLog))
	mux.HandleFunc("POST /v1/demote", s.handleDemote)
	if s.obs != nil {
		mux.HandleFunc("GET /metrics", s.obs.handleMetrics)
		mux.HandleFunc("GET /v1/trace", s.obs.handleTrace)
		mux.HandleFunc("GET /v1/spans", s.obs.handleSpans)
		mux.HandleFunc("GET /v1/events", s.obs.handleEvents)
		mux.HandleFunc("GET /v1/hot", s.obs.handleHot)
		mux.HandleFunc("GET /v1/debug/bundle", s.obs.handleBundle)
	}
	return mux
}

// tracedOp joins a handler to the distributed trace its request carries
// in X-Dyntc-Trace: an ingest span (parented on the caller's span) is
// opened for the handler's duration, the returned engine view submits
// under that span — which forces the executing flush into the sampled
// span path — and the response echoes "<trace>-<ingest span>" so the
// client can stitch its own spans on. A request without the header (or
// a server without a span log) gets an untraced view and a no-op
// finish; engine-side sampling then decides alone.
func (s *server) tracedOp(w http.ResponseWriter, r *http.Request, en *dyntc.Engine, op string) (dyntc.TracedEngine, func()) {
	sc := dyntc.ParseTraceHeader(r.Header.Get("X-Dyntc-Trace"))
	if !sc.Valid() || s.obs == nil || s.obs.spans == nil {
		return en.Traced(dyntc.TraceContext{}), func() {}
	}
	ingest := dyntc.TraceContext{Trace: sc.Trace, Span: dyntc.NewSpanID()}
	w.Header().Set("X-Dyntc-Trace", dyntc.FormatTraceHeader(ingest))
	t0 := time.Now()
	return en.Traced(ingest), func() {
		s.obs.spans.Add(dyntc.SpanRecord{
			Trace:  sc.Trace,
			Span:   ingest.Span,
			Parent: sc.Span,
			Name:   "ingest." + op,
			Start:  t0.UnixNano(),
			Dur:    int64(time.Since(t0)),
		})
	}
}

// --- plumbing ---

type apiError struct {
	status int
	msg    string
}

func (e apiError) Error() string { return e.msg }

func errStatus(err error) int {
	var ae apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	switch {
	case errors.Is(err, engine.ErrDeadNode):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrNotLeaf),
		errors.Is(err, engine.ErrNotInternal),
		errors.Is(err, engine.ErrNotCollapsible):
		return http.StatusConflict
	case errors.Is(err, engine.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrClosed), errors.Is(err, engine.ErrPoisoned):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := errStatus(err)
	if status == http.StatusTooManyRequests {
		// Shed under load: tell well-behaved clients when to come back.
		// The executor drains a full queue in well under a second.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return apiError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	return nil
}

// treeHandler resolves the {id} path segment to an engine.
func (s *server) treeHandler(h func(http.ResponseWriter, *http.Request, *dyntc.Engine)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad tree id"})
			return
		}
		en, ok := s.forest.Get(id)
		if !ok {
			writeErr(w, apiError{http.StatusNotFound, fmt.Sprintf("no tree %d", id)})
			return
		}
		h(w, r, en)
	}
}

func parseRing(name string, mod int64) (dyntc.Ring, error) {
	switch name {
	case "", "mod":
		if mod == 0 {
			mod = 1_000_000_007
		}
		if mod < 2 || mod >= 1<<31 {
			return nil, apiError{http.StatusBadRequest, "mod must be in [2, 2^31)"}
		}
		return dyntc.ModRing(mod), nil
	case "minplus":
		return dyntc.MinPlus(), nil
	case "maxplus":
		return dyntc.MaxPlus(), nil
	case "bool":
		return dyntc.BoolRing(), nil
	case "maxmin":
		return dyntc.MaxMin(), nil
	}
	return nil, apiError{http.StatusBadRequest, fmt.Sprintf("unknown ring %q (want mod|minplus|maxplus|bool|maxmin)", name)}
}

func parseOp(name string, ring dyntc.Ring) (dyntc.Op, error) {
	switch name {
	case "add":
		return dyntc.OpAdd(ring), nil
	case "mul":
		return dyntc.OpMul(ring), nil
	}
	return dyntc.Op{}, apiError{http.StatusBadRequest, fmt.Sprintf("unknown op %q (want add|mul)", name)}
}

// --- tree lifecycle ---

type createReq struct {
	Ring string `json:"ring"`
	Mod  int64  `json:"mod"`
	Root int64  `json:"root"`
	Seed uint64 `json:"seed"`
	Tour bool   `json:"tour"`
}

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ring, err := parseRing(req.Ring, req.Mod)
	if err != nil {
		writeErr(w, err)
		return
	}
	opts := []dyntc.Option{}
	if req.Seed != 0 {
		opts = append(opts, dyntc.WithSeed(req.Seed))
	}
	if req.Tour {
		opts = append(opts, dyntc.WithTour())
	}
	id, en := s.forest.Create(ring, req.Root, opts...)
	s.rings.Store(id, ring)
	// Persist the genesis snapshot before the WAL exists: recovery replays
	// tree-<id>.wal on top of tree-<id>.snap, so the anchor must never
	// trail the log it anchors.
	fail := func(err error) {
		s.forest.Drop(id)
		s.rings.Delete(id)
		writeErr(w, err)
	}
	if s.walDir != "" {
		snap, err := en.Snapshot()
		if err == nil {
			err = s.persistSnapshot(id, snap)
		}
		if err != nil {
			fail(err)
			return
		}
	}
	if err := s.attachLog(id, en); err != nil {
		fail(err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"tree": id, "root_node": 0})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	type treeInfo struct {
		Tree   uint64 `json:"tree"`
		Nodes  int    `json:"nodes"`
		Leaves int    `json:"leaves"`
		Root   int64  `json:"root"`
	}
	infos := []treeInfo{}
	s.forest.Each(func(id dyntc.TreeID, en *dyntc.Engine) {
		var ti treeInfo
		ti.Tree = id
		if err := en.Query(func(e *dyntc.Expr) {
			ti.Nodes = e.Tree().Len()
			ti.Leaves = e.Tree().LeafCount()
			ti.Root = e.Root()
		}); err == nil {
			infos = append(infos, ti)
		}
	})
	writeJSON(w, http.StatusOK, map[string]any{"trees": infos})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, "bad tree id"})
		return
	}
	if !s.forest.Drop(id) {
		writeErr(w, apiError{http.StatusNotFound, fmt.Sprintf("no tree %d", id)})
		return
	}
	s.rings.Delete(id)
	s.stopCompactor(id)
	if wl, ok := s.logs.LoadAndDelete(id); ok {
		_ = wl.(*dyntc.WaveLog).Close()
	}
	if s.walDir != "" {
		// A dropped tree must not resurrect on restart: remove its anchor
		// and WAL together.
		_ = os.Remove(filepath.Join(s.walDir, fmt.Sprintf("tree-%d.snap", id)))
		_ = os.Remove(filepath.Join(s.walDir, fmt.Sprintf("tree-%d.wal", id)))
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": id})
}

// --- operations ---

func (s *server) ringOf(r *http.Request) (dyntc.Ring, error) {
	id, _ := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if v, ok := s.rings.Load(id); ok {
		return v.(dyntc.Ring), nil
	}
	return nil, apiError{http.StatusNotFound, "tree ring unknown"}
}

func (s *server) handleGrow(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	var req struct {
		Leaf  int    `json:"leaf"`
		Op    string `json:"op"`
		Left  int64  `json:"left"`
		Right int64  `json:"right"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ring, err := s.ringOf(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	op, err := parseOp(req.Op, ring)
	if err != nil {
		writeErr(w, err)
		return
	}
	ten, finish := s.tracedOp(w, r, en, "grow")
	defer finish()
	lID, rID, err := ten.GrowID(req.Leaf, op, req.Left, req.Right)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"left": lID, "right": rID})
}

func (s *server) handleCollapse(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	var req struct {
		Node  int   `json:"node"`
		Value int64 `json:"value"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ten, finish := s.tracedOp(w, r, en, "collapse")
	defer finish()
	if err := ten.CollapseID(req.Node, req.Value); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": req.Node})
}

func (s *server) handleSetLeaf(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	var req struct {
		Leaf  int   `json:"leaf"`
		Value int64 `json:"value"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ten, finish := s.tracedOp(w, r, en, "set-leaf")
	defer finish()
	if err := ten.SetLeafID(req.Leaf, req.Value); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"leaf": req.Leaf})
}

func (s *server) handleSetOp(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	var req struct {
		Node int    `json:"node"`
		Op   string `json:"op"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ring, err := s.ringOf(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	op, err := parseOp(req.Op, ring)
	if err != nil {
		writeErr(w, err)
		return
	}
	ten, finish := s.tracedOp(w, r, en, "set-op")
	defer finish()
	if err := ten.SetOpID(req.Node, op); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": req.Node})
}

func (s *server) handleValue(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	q := r.URL.Query().Get("node")
	ten, finish := s.tracedOp(w, r, en, "value")
	defer finish()
	if q == "" {
		v, err := ten.Root()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"value": v})
		return
	}
	nodeID, err := strconv.Atoi(q)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, "bad node id"})
		return
	}
	v, err := ten.ValueID(nodeID)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": nodeID, "value": v})
}

// handleBatch submits a mixed operation list concurrently — one HTTP call
// becomes one (or few) coalesced engine flushes — and reports per-op
// results in order.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	var req struct {
		Ops []struct {
			Kind  string `json:"kind"` // grow|collapse|set-leaf|set-op|value|root
			Node  int    `json:"node"`
			Op    string `json:"op"`
			Value int64  `json:"value"`
			Left  int64  `json:"left"`
			Right int64  `json:"right"`
		} `json:"ops"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Ops) > 4096 {
		writeErr(w, apiError{http.StatusBadRequest, "batch too large (max 4096)"})
		return
	}
	ring, err := s.ringOf(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	type result struct {
		Error string `json:"error,omitempty"`
		Left  *int   `json:"left,omitempty"`
		Right *int   `json:"right,omitempty"`
		Value *int64 `json:"value,omitempty"`
	}
	ten, finish := s.tracedOp(w, r, en, "batch")
	defer finish()
	// Validate every op before submitting any, so a malformed batch is
	// rejected whole rather than partially executed.
	submits := make([]func() *dyntc.Future, len(req.Ops))
	kinds := make([]string, len(req.Ops))
	for i, op := range req.Ops {
		op := op
		kinds[i] = op.Kind
		switch op.Kind {
		case "grow":
			parsed, err := parseOp(op.Op, ring)
			if err != nil {
				writeErr(w, apiError{http.StatusBadRequest, fmt.Sprintf("op %d: %v", i, err)})
				return
			}
			submits[i] = func() *dyntc.Future { return ten.GrowIDAsync(op.Node, parsed, op.Left, op.Right) }
		case "collapse":
			submits[i] = func() *dyntc.Future { return ten.CollapseIDAsync(op.Node, op.Value) }
		case "set-leaf":
			submits[i] = func() *dyntc.Future { return ten.SetLeafIDAsync(op.Node, op.Value) }
		case "set-op":
			parsed, err := parseOp(op.Op, ring)
			if err != nil {
				writeErr(w, apiError{http.StatusBadRequest, fmt.Sprintf("op %d: %v", i, err)})
				return
			}
			submits[i] = func() *dyntc.Future { return ten.SetOpIDAsync(op.Node, parsed) }
		case "value":
			submits[i] = func() *dyntc.Future { return ten.ValueIDAsync(op.Node) }
		case "root":
			submits[i] = func() *dyntc.Future { return ten.RootAsync() }
		default:
			writeErr(w, apiError{http.StatusBadRequest, fmt.Sprintf("op %d: unknown kind %q", i, op.Kind)})
			return
		}
	}
	futs := make([]*dyntc.Future, len(submits))
	for i, submit := range submits {
		futs[i] = submit()
	}
	results := make([]result, len(futs))
	for i, f := range futs {
		switch kinds[i] {
		case "grow":
			l, rr, err := f.Pair()
			if err != nil {
				results[i].Error = err.Error()
			} else {
				lid, rid := l.ID, rr.ID
				results[i].Left, results[i].Right = &lid, &rid
			}
		case "value", "root":
			v, err := f.Value()
			if err != nil {
				results[i].Error = err.Error()
			} else {
				results[i].Value = &v
			}
		default:
			if err := f.Wait(); err != nil {
				results[i].Error = err.Error()
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// --- stats ---

func (s *server) handleTreeStats(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	var nodes, leaves int
	var heal dyntc.HealStats
	var pm dyntc.Metrics
	err := en.Query(func(e *dyntc.Expr) {
		nodes = e.Tree().Len()
		leaves = e.Tree().LeafCount()
		heal = e.Stats()
		pm = e.PRAM()
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"engine": en.Stats(),
		"tree":   map[string]any{"nodes": nodes, "leaves": leaves},
		"last_heal": map[string]any{
			"wound_records":  heal.WoundRecords,
			"wound_rounds":   heal.WoundRounds,
			"struct_records": heal.StructRecords,
			"total_records":  heal.TotalRecords,
			"resimulated":    heal.Resimulated,
			"rebuild_leaves": heal.RebuildLeaves,
		},
		"pram": map[string]any{"steps": pm.Steps, "work": pm.Work, "max_procs": pm.MaxProcs},
	})
}

// --- durability & replication ---

// maxSnapshotBody bounds snapshot transfers (PUT bodies, follower
// bootstrap downloads).
const maxSnapshotBody = 256 << 20

// readSnapshotBody reads an entire snapshot, failing loudly on oversize
// instead of silently truncating (a truncated snapshot never decodes, and
// a silent cut would turn one oversized tree into a retry loop).
func readSnapshotBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxSnapshotBody {
		return nil, fmt.Errorf("snapshot exceeds %d bytes", maxSnapshotBody)
	}
	return data, nil
}

func (s *server) handleGetSnapshot(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	t0 := time.Now()
	data, err := en.Snapshot()
	if err != nil {
		writeErr(w, err)
		return
	}
	s.obs.snapshotDone(len(data), time.Since(t0))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handlePutSnapshot restores a tree from a snapshot body under the path's
// tree id — the migration / replication entry point. The id must be free.
func (s *server) handlePutSnapshot(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, "bad tree id"})
		return
	}
	body, err := readSnapshotBody(r.Body)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, "read snapshot body: " + err.Error()})
		return
	}
	en, seq, err := s.forest.Restore(id, body)
	if err != nil {
		// Restore checks occupancy atomically (engine.Forest.AddAt), so a
		// lost duplicate-PUT race still maps to conflict, not bad-request.
		if errors.Is(err, engine.ErrTreeExists) {
			writeErr(w, apiError{http.StatusConflict, fmt.Sprintf("tree %d already exists", id)})
			return
		}
		writeErr(w, apiError{http.StatusBadRequest, "restore: " + err.Error()})
		return
	}
	var ring dyntc.Ring
	if err := en.Query(func(e *dyntc.Expr) { ring = e.Tree().Ring }); err != nil {
		writeErr(w, err)
		return
	}
	s.rings.Store(id, ring)
	// Anchor first (the restored snapshot bytes are already the canonical
	// encoding at seq), then attach the WAL that will continue it.
	if err := s.persistSnapshot(id, body); err != nil {
		s.forest.Drop(id)
		s.rings.Delete(id)
		writeErr(w, err)
		return
	}
	if err := s.attachLog(id, en); err != nil {
		s.forest.Drop(id)
		s.rings.Delete(id)
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"tree": id, "seq": seq})
}

// handleLog ships the tree's wave change-log after ?since=SEQ. A follower
// that is too far behind the in-memory ring gets 410 Gone and must
// re-bootstrap from a snapshot.
func (s *server) handleLog(w http.ResponseWriter, r *http.Request, en *dyntc.Engine) {
	id, _ := strconv.ParseUint(r.PathValue("id"), 10, 64)
	// Followers advertise the leadership epoch they trust. Seeing a higher
	// term than any wave we sealed means a promotion happened elsewhere:
	// fence writes immediately, but keep serving the tail — the new term
	// drains it.
	if h := r.Header.Get("X-Dyntc-Epoch"); h != "" {
		if ep, err := strconv.ParseUint(h, 10, 64); err == nil && ep > en.Epoch() {
			s.fence(ep)
		}
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		var err error
		if since, err = strconv.ParseUint(q, 10, 64); err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad since"})
			return
		}
	}
	v, ok := s.logs.Load(dyntc.TreeID(id))
	if !ok {
		writeErr(w, apiError{http.StatusNotFound, fmt.Sprintf("no log for tree %d", id)})
		return
	}
	wl := v.(*dyntc.WaveLog)
	waves, err := wl.Since(since)
	if err != nil {
		if errors.Is(err, replog.ErrTruncated) {
			writeJSON(w, http.StatusGone, map[string]any{
				"error":    err.Error(),
				"base_seq": wl.BaseSeq(),
			})
			return
		}
		writeErr(w, err)
		return
	}
	if waves == nil {
		waves = []dyntc.Wave{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"waves":       waves,
		"last_seq":    wl.LastSeq(),
		"applied_seq": en.AppliedSeq(),
	})
}

// handleDemote tells this leader a newer leadership term exists — the
// promotion path's explicit fencing call (a promoted follower posts it
// best-effort; operators can too). The epoch must exceed every term this
// process has sealed waves for, else 409.
func (s *server) handleDemote(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if max := s.maxEpoch(); req.Epoch <= max {
		writeErr(w, apiError{http.StatusConflict,
			fmt.Sprintf("demote epoch %d not above current epoch %d", req.Epoch, max)})
		return
	}
	s.fence(req.Epoch)
	writeJSON(w, http.StatusOK, map[string]any{"fenced_at_epoch": s.fenced.Load()})
}

// handleHealthz reports per-engine liveness: applied change-log sequence,
// leadership epoch, queue depth against capacity, and drop counts — the
// signals a load balancer or replication monitor needs. A fenced
// (demoted) leader reports 503 so balancers stop routing writes at it.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type treeHealth struct {
		Tree       dyntc.TreeID `json:"tree"`
		AppliedSeq uint64       `json:"applied_seq"`
		LogSeq     uint64       `json:"log_seq"`
		Epoch      uint64       `json:"epoch"`
		QueueDepth int          `json:"queue_depth"`
		QueueCap   int          `json:"queue_cap"`
		Dropped    uint64       `json:"dropped"`
		WALError   string       `json:"wal_error,omitempty"`
	}
	trees := []treeHealth{}
	s.forest.Each(func(id dyntc.TreeID, en *dyntc.Engine) {
		st := en.Stats()
		th := treeHealth{
			Tree:       id,
			AppliedSeq: en.AppliedSeq(),
			Epoch:      en.Epoch(),
			QueueDepth: st.QueueDepth,
			QueueCap:   st.QueueCap,
			Dropped:    st.Dropped,
		}
		if v, ok := s.logs.Load(id); ok {
			wl := v.(*dyntc.WaveLog)
			th.LogSeq = wl.LastSeq()
			if err := wl.Err(); err != nil {
				th.WALError = err.Error()
			}
		}
		trees = append(trees, th)
	})
	status := http.StatusOK
	body := map[string]any{
		"ok":       true,
		"role":     "leader",
		"uptime_s": time.Since(s.start).Seconds(),
		"trees":    trees,
	}
	if ep := s.fenced.Load(); ep != 0 {
		status = http.StatusServiceUnavailable
		body["ok"] = false
		body["fenced_at_epoch"] = ep
	}
	if s.pool != nil {
		body["sched"] = s.pool.Stats()
	}
	if s.obs != nil {
		body["anomaly_active"] = s.obs.anomaly.Active()
		if ev, ok := s.obs.events.LastEvent(); ok {
			body["last_event"] = ev
		}
	}
	writeJSON(w, status, body)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.forest.Stats()
	body := map[string]any{
		"trees":      s.forest.Len(),
		"uptime_s":   time.Since(s.start).Seconds(),
		"workers":    s.workers,
		"engine":     st,
		"mean_batch": st.MeanFlush(),
		"mean_wave":  st.MeanWave(),
	}
	if s.pool != nil {
		body["sched"] = s.pool.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

package main

// Follower mode (-follow <leader-url>): this process serves read-only
// replicas of every tree a leader dyntcd serves. Each replica bootstraps
// from GET /v1/trees/{id}/snapshot and then tails GET
// /v1/trees/{id}/log?since=SEQ, applying shipped waves in order through
// the verified replay of internal/replog (recorded grow IDs and post-wave
// roots are checked on every wave). A replica that falls behind the
// leader's log ring (410 Gone) re-bootstraps from a fresh snapshot.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dyntc"
	"dyntc/internal/query"
)

// followerServer polls one leader and serves its trees read-only.
type followerServer struct {
	leader string // leader base URL, no trailing slash
	poll   time.Duration
	client *http.Client
	start  time.Time

	// pool is the process-wide runtime scheduler: replica replay (the
	// verified wave re-execution) runs on it, per-tree catch-up tasks are
	// scattered across it, and the query planner shares it.
	pool *dyntc.SchedPool

	// queryEndpoint serves POST /v1/query against the local replicas (the
	// read-offload path); planner scatters on the shared pool.
	queryEndpoint bool
	planner       *query.Planner

	mu   sync.Mutex
	reps map[dyntc.TreeID]*replica

	stop chan struct{}
	done chan struct{}

	// obs, when set (followerServer.observe), adds GET /metrics and
	// GET /v1/trace to the routes and feeds the bootstrap instruments.
	obs *obsBundle
}

// replica is one followed tree.
type replica struct {
	mu        sync.Mutex
	fo        *dyntc.Follower
	leaderSeq uint64 // last_seq reported by the leader's log endpoint
	lastErr   string
	applied   uint64 // waves applied by this process (catch-up throughput)
}

func newFollower(leader string, poll time.Duration) *followerServer {
	return newFollowerOn(leader, poll, nil)
}

func newFollowerOn(leader string, poll time.Duration, pool *dyntc.SchedPool) *followerServer {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	return &followerServer{
		leader:        leader,
		poll:          poll,
		client:        &http.Client{Timeout: 30 * time.Second},
		start:         time.Now(),
		pool:          pool,
		queryEndpoint: true,
		planner:       query.NewPlannerOn(pool, 0),
		reps:          make(map[dyntc.TreeID]*replica),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
}

// run is the catch-up loop: discover trees, bootstrap new ones, tail logs.
func (f *followerServer) run() {
	defer close(f.done)
	for {
		f.syncOnce()
		select {
		case <-f.stop:
			return
		case <-time.After(f.poll):
		}
	}
}

// Close stops the catch-up loop and waits for it to exit.
func (f *followerServer) Close() {
	close(f.stop)
	<-f.done
	f.planner.Close()
}

func (f *followerServer) getJSON(path string, v any) error {
	resp, err := f.client.Get(f.leader + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// syncOnce runs one discovery + catch-up round.
func (f *followerServer) syncOnce() {
	var list struct {
		Trees []struct {
			Tree dyntc.TreeID `json:"tree"`
		} `json:"trees"`
	}
	if err := f.getJSON("/v1/trees", &list); err != nil {
		log.Printf("dyntcd follower: list trees: %v", err)
		return
	}
	// Per-tree catch-up rides the shared scheduler: each tree's log tail
	// fetch + verified replay is one blocking task, so many replicas catch
	// up in parallel without spawning a goroutine per tree; whatever the
	// pool cannot absorb runs inline on the poll loop, as before.
	live := make(map[dyntc.TreeID]bool, len(list.Trees))
	var wg sync.WaitGroup
	for _, ti := range list.Trees {
		id := ti.Tree
		live[id] = true
		task := func() {
			defer wg.Done()
			f.syncTree(id)
		}
		wg.Add(1)
		if f.pool == nil || !f.pool.TrySubmitBlocking(task) {
			task()
		}
	}
	wg.Wait()
	// Drop replicas of trees the leader no longer serves.
	f.mu.Lock()
	for id := range f.reps {
		if !live[id] {
			delete(f.reps, id)
		}
	}
	f.mu.Unlock()
}

func (f *followerServer) getReplica(id dyntc.TreeID) *replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reps[id]
}

// bootstrap fetches a fresh snapshot and (re)builds the replica.
func (f *followerServer) bootstrap(id dyntc.TreeID) (*replica, error) {
	t0 := time.Now()
	resp, err := f.client.Get(fmt.Sprintf("%s/v1/trees/%d/snapshot", f.leader, id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot: %s", resp.Status)
	}
	data, err := readSnapshotBody(resp.Body)
	if err != nil {
		return nil, err
	}
	var fopts []dyntc.Option
	if f.pool != nil {
		fopts = append(fopts, dyntc.WithPool(f.pool))
	}
	fo, err := dyntc.NewFollower(data, fopts...)
	if err != nil {
		return nil, err
	}
	f.obs.snapshotDone(len(data), time.Since(t0))
	rep := &replica{fo: fo, leaderSeq: fo.Seq()}
	f.mu.Lock()
	_, rebootstrap := f.reps[id]
	f.reps[id] = rep
	f.mu.Unlock()
	if rebootstrap && f.obs != nil {
		f.obs.rebootstraps.Inc()
	}
	log.Printf("dyntcd follower: tree %d bootstrapped at seq %d", id, fo.Seq())
	return rep, nil
}

// syncTree bootstraps tree id if new, then applies the leader's log tail.
func (f *followerServer) syncTree(id dyntc.TreeID) {
	rep := f.getReplica(id)
	if rep == nil {
		var err error
		if rep, err = f.bootstrap(id); err != nil {
			log.Printf("dyntcd follower: tree %d bootstrap: %v", id, err)
			return
		}
	}

	var tail struct {
		Waves   []dyntc.Wave `json:"waves"`
		LastSeq uint64       `json:"last_seq"`
	}
	path := fmt.Sprintf("/v1/trees/%d/log?since=%d", id, rep.fo.Seq())
	resp, err := f.client.Get(f.leader + path)
	if err != nil {
		rep.setErr(err)
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		err = json.NewDecoder(resp.Body).Decode(&tail)
	case http.StatusGone:
		// Fell behind the leader's ring: re-bootstrap from a snapshot.
		log.Printf("dyntcd follower: tree %d log truncated, re-bootstrapping", id)
		if _, err := f.bootstrap(id); err != nil {
			log.Printf("dyntcd follower: tree %d re-bootstrap: %v", id, err)
			rep.setErr(err)
		}
		return
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err = fmt.Errorf("%s: %s: %s", path, resp.Status, body)
	}
	if err != nil {
		rep.setErr(err)
		return
	}
	rep.mu.Lock()
	rep.leaderSeq = tail.LastSeq
	rep.mu.Unlock()
	if err := rep.fo.ApplyAll(tail.Waves); err != nil {
		// Divergence is unrecoverable by replay: rebuild from a snapshot.
		log.Printf("dyntcd follower: tree %d apply: %v; re-bootstrapping", id, err)
		rep.setErr(err)
		if _, berr := f.bootstrap(id); berr != nil {
			log.Printf("dyntcd follower: tree %d re-bootstrap: %v", id, berr)
		}
		return
	}
	rep.mu.Lock()
	rep.applied += uint64(len(tail.Waves))
	rep.lastErr = ""
	rep.mu.Unlock()
}

func (r *replica) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// routes serves the read-only replica API. Mutations are rejected with
// 403: a follower is a read replica, writes belong on the leader.
func (f *followerServer) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "role": "follower", "leader": f.leader,
			"uptime_s": time.Since(f.start).Seconds(),
		})
	})
	mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	mux.HandleFunc("GET /v1/trees", f.handleList)
	mux.HandleFunc("GET /v1/trees/{id}/value", f.replicaHandler(f.handleValue))
	mux.HandleFunc("GET /v1/trees/{id}/snapshot", f.replicaHandler(f.handleSnapshot))
	if f.queryEndpoint {
		mux.HandleFunc("POST /v1/query", f.handleQuery)
	}
	if f.obs != nil {
		mux.HandleFunc("GET /metrics", f.obs.handleMetrics)
		mux.HandleFunc("GET /v1/trace", f.obs.handleTrace)
	}
	reject := func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, apiError{http.StatusForbidden, "read-only replica: write on the leader " + f.leader})
	}
	for _, p := range []string{
		"POST /v1/trees", "DELETE /v1/trees/{id}", "POST /v1/trees/{id}/grow",
		"POST /v1/trees/{id}/collapse", "POST /v1/trees/{id}/set-leaf",
		"POST /v1/trees/{id}/set-op", "POST /v1/trees/{id}/batch",
		"PUT /v1/trees/{id}/snapshot",
	} {
		mux.HandleFunc(p, reject)
	}
	return mux
}

func (f *followerServer) replicaHandler(h func(http.ResponseWriter, *http.Request, *replica)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad tree id"})
			return
		}
		rep := f.getReplica(id)
		if rep == nil {
			writeErr(w, apiError{http.StatusNotFound, fmt.Sprintf("no replica of tree %d", id)})
			return
		}
		h(w, r, rep)
	}
}

// handleHealthz reports per-replica applied sequence and lag behind the
// leader's last observed log position.
func (f *followerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type repHealth struct {
		Tree       dyntc.TreeID `json:"tree"`
		AppliedSeq uint64       `json:"applied_seq"`
		LeaderSeq  uint64       `json:"leader_seq"`
		Lag        uint64       `json:"lag"`
		Waves      uint64       `json:"waves_applied"`
		LastError  string       `json:"last_error,omitempty"`
	}
	trees := []repHealth{}
	f.mu.Lock()
	reps := make(map[dyntc.TreeID]*replica, len(f.reps))
	for id, rep := range f.reps {
		reps[id] = rep
	}
	f.mu.Unlock()
	for id, rep := range reps {
		rep.mu.Lock()
		rh := repHealth{
			Tree:       id,
			AppliedSeq: rep.fo.Seq(),
			LeaderSeq:  rep.leaderSeq,
			Waves:      rep.applied,
			LastError:  rep.lastErr,
		}
		rep.mu.Unlock()
		if rh.LeaderSeq > rh.AppliedSeq {
			rh.Lag = rh.LeaderSeq - rh.AppliedSeq
		}
		trees = append(trees, rh)
	}
	body := map[string]any{
		"ok": true, "role": "follower", "leader": f.leader,
		"uptime_s": time.Since(f.start).Seconds(),
		"trees":    trees,
	}
	if f.pool != nil {
		body["sched"] = f.pool.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

func (f *followerServer) handleList(w http.ResponseWriter, r *http.Request) {
	type treeInfo struct {
		Tree   dyntc.TreeID `json:"tree"`
		Nodes  int          `json:"nodes"`
		Leaves int          `json:"leaves"`
		Root   int64        `json:"root"`
	}
	infos := []treeInfo{}
	f.mu.Lock()
	reps := make(map[dyntc.TreeID]*replica, len(f.reps))
	for id, rep := range f.reps {
		reps[id] = rep
	}
	f.mu.Unlock()
	for id, rep := range reps {
		ti := treeInfo{Tree: id}
		rep.fo.Query(func(e *dyntc.Expr) {
			ti.Nodes = e.Tree().Len()
			ti.Leaves = e.Tree().LeafCount()
			ti.Root = e.Root()
		})
		infos = append(infos, ti)
	}
	writeJSON(w, http.StatusOK, map[string]any{"trees": infos})
}

func (f *followerServer) handleValue(w http.ResponseWriter, r *http.Request, rep *replica) {
	q := r.URL.Query().Get("node")
	if q == "" {
		writeJSON(w, http.StatusOK, map[string]any{"value": rep.fo.Root()})
		return
	}
	nodeID, err := strconv.Atoi(q)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, "bad node id"})
		return
	}
	v, err := rep.fo.ValueID(nodeID)
	if err != nil {
		writeErr(w, apiError{http.StatusNotFound, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": nodeID, "value": v})
}

// handleSnapshot re-serializes the replica: followers can seed further
// followers (fan-out) without touching the leader.
func (f *followerServer) handleSnapshot(w http.ResponseWriter, r *http.Request, rep *replica) {
	data, err := rep.fo.Snapshot()
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

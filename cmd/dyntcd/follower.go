package main

// Follower mode (-follow <leader-url>): this process serves read-only
// replicas of every tree a leader dyntcd serves. Each replica bootstraps
// from GET /v1/trees/{id}/snapshot and then tails GET
// /v1/trees/{id}/log?since=SEQ, applying shipped waves in order through
// the verified replay of internal/replog (recorded grow IDs and post-wave
// roots are checked on every wave). A replica that falls behind the
// leader's log ring (410 Gone) re-bootstraps from a fresh snapshot.
//
// Failover: POST /v1/promote ends replica life — every caught-up replica
// is promoted to a new leadership term (epoch+1) and the process swaps
// in a full leader mux over the same listener. An unreachable leader
// does not take the follower down: the poll loop backs off
// exponentially (with seeded jitter) and the replicas keep serving reads
// in explicit degraded mode, reporting their staleness bound.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dyntc"
	"dyntc/internal/obs"
	"dyntc/internal/prng"
	"dyntc/internal/query"
)

// degradedErrThreshold is how many consecutive failed leader polls flip
// the follower into degraded mode (healthz 503, staleness headers on
// reads) even before any -degraded-after bound elapses.
const degradedErrThreshold = 3

// backoffCap bounds the exponential poll backoff against a dead leader.
const backoffCap = 5 * time.Second

// followerServer polls one leader and serves its trees read-only.
type followerServer struct {
	leader string // leader base URL, no trailing slash
	poll   time.Duration
	client *http.Client
	start  time.Time

	// pool is the process-wide runtime scheduler: replica replay (the
	// verified wave re-execution) runs on it, per-tree catch-up tasks are
	// scattered across it, and the query planner shares it.
	pool *dyntc.SchedPool

	// queryEndpoint serves POST /v1/query against the local replicas (the
	// read-offload path); planner scatters on the shared pool.
	queryEndpoint bool
	planner       *query.Planner

	// opts/walDir/logCap configure the leader this process becomes on
	// promotion; until then only the replicas run.
	opts   dyntc.BatchOptions
	walDir string
	logCap int

	// degradedAfter is the staleness bound: longer than this without a
	// successful leader contact means degraded mode (0 = only the
	// consecutive-error threshold applies).
	degradedAfter time.Duration

	// faults, when set (setFaults), is checked at site "follower.rpc" on
	// every leader HTTP call (see faultTransport) and rides into the
	// leader this process becomes on promotion.
	faults *dyntc.FaultInjector

	mu   sync.Mutex
	reps map[dyntc.TreeID]*replica

	// errMu guards the poll-loop health state: consecutive failed rounds,
	// the current backoff, and the last successful leader contact.
	errMu       sync.Mutex
	consecErrs  int
	backoff     time.Duration
	lastContact time.Time
	jitter      *prng.Source

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// promoteMu serializes POST /v1/promote; leaderH holds the promoted
	// leader's handler (handler() routes everything there once set) and
	// leaderSrv the server behind it, for shutdown.
	promoteMu sync.Mutex
	leaderH   atomic.Value // http.Handler
	leaderSrv *server

	// obs, when set (followerServer.observe), adds GET /metrics and
	// GET /v1/trace to the routes and feeds the bootstrap instruments.
	obs *obsBundle
}

// replica is one followed tree.
type replica struct {
	mu        sync.Mutex
	fo        *dyntc.Follower
	leaderSeq uint64 // last_seq reported by the leader's log endpoint
	lastErr   string
	applied   uint64 // waves applied by this process (catch-up throughput)
}

// faultTransport checks the injector at site "follower.rpc" before every
// leader call: an error rule simulates a partition (latency rules stall
// inside Check).
type faultTransport struct {
	base http.RoundTripper
	in   *dyntc.FaultInjector
}

func (t *faultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if rule := t.in.Check("follower.rpc"); rule != nil && rule.Err != nil {
		return nil, rule.Err
	}
	return t.base.RoundTrip(r)
}

func newFollower(leader string, poll time.Duration) *followerServer {
	return newFollowerOn(leader, poll, nil)
}

func newFollowerOn(leader string, poll time.Duration, pool *dyntc.SchedPool) *followerServer {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	return &followerServer{
		leader:        leader,
		poll:          poll,
		client:        &http.Client{Timeout: 30 * time.Second},
		start:         time.Now(),
		pool:          pool,
		queryEndpoint: true,
		planner:       query.NewPlannerOn(pool, 0),
		reps:          make(map[dyntc.TreeID]*replica),
		lastContact:   time.Now(),
		jitter:        prng.New(uint64(time.Now().UnixNano())),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
}

// setFaults installs the deterministic fault schedule on the leader
// transport (site "follower.rpc") and re-seeds the backoff jitter from
// the same seed, so a chaos run's timing is reproducible.
func (f *followerServer) setFaults(in *dyntc.FaultInjector, seed uint64) {
	f.faults = in
	f.jitter = prng.New(seed ^ 0xD6E8FEB86659FD93)
	if in != nil {
		base := f.client.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		f.client.Transport = &faultTransport{base: base, in: in}
	}
}

// run is the catch-up loop: discover trees, bootstrap new ones, tail
// logs. Failed rounds back off exponentially (capped, jittered) instead
// of hammering a dead or partitioned leader at the poll interval.
func (f *followerServer) run() {
	defer close(f.done)
	for {
		delay := f.noteRound(f.syncOnce())
		select {
		case <-f.stop:
			return
		case <-time.After(delay):
		}
	}
}

// noteRound records one poll round's outcome and returns the next delay:
// the poll interval after a success, capped exponential backoff with
// seeded jitter after consecutive failures. Degraded-mode edges — the
// round that crossed the threshold, the round that restored contact —
// are journaled as they happen.
func (f *followerServer) noteRound(ok bool) time.Duration {
	f.errMu.Lock()
	wasDegraded := f.degradedLocked()
	outage := time.Since(f.lastContact)
	var delay time.Duration
	if ok {
		f.consecErrs = 0
		f.backoff = 0
		f.lastContact = time.Now()
		delay = f.poll
	} else {
		f.consecErrs++
		b := f.poll
		for i := 1; i < f.consecErrs && b < backoffCap; i++ {
			b *= 2
		}
		if b > backoffCap {
			b = backoffCap
		}
		// Up to +25% jitter so a fleet of followers does not stampede the
		// leader the moment it returns.
		b += time.Duration(f.jitter.Int63() % int64(b/4+1))
		f.backoff = b
		delay = b
	}
	nowDegraded := f.degradedLocked()
	consec := f.consecErrs
	f.errMu.Unlock()
	if nowDegraded && !wasDegraded {
		f.obs.journal().Emit(obs.EvDegradedEnter,
			"leader unreachable: serving reads in degraded mode",
			map[string]any{"consecutive_errors": consec, "staleness_ms": outage.Milliseconds()})
	} else if wasDegraded && !nowDegraded {
		f.obs.journal().Emit(obs.EvDegradedExit,
			"leader contact restored",
			map[string]any{"outage_ms": outage.Milliseconds()})
	}
	return delay
}

// degradedLocked is the degraded predicate; callers hold errMu.
func (f *followerServer) degradedLocked() bool {
	return f.consecErrs >= degradedErrThreshold ||
		(f.degradedAfter > 0 && time.Since(f.lastContact) > f.degradedAfter)
}

// health returns the poll-loop state and whether the follower is
// degraded: too many consecutive failed rounds, or longer than the
// configured staleness bound since the last successful leader contact.
func (f *followerServer) health() (degraded bool, staleness time.Duration, consecErrs int, backoff time.Duration) {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.degradedLocked(), time.Since(f.lastContact), f.consecErrs, f.backoff
}

// Close stops the catch-up loop and waits for it to exit. After a
// promotion it also shuts down the leader this process became.
func (f *followerServer) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	f.planner.Close()
	f.promoteMu.Lock()
	s := f.leaderSrv
	f.promoteMu.Unlock()
	if s != nil {
		s.forest.Close()
		s.closeLogs()
	}
}

func (f *followerServer) getJSON(path string, v any) error {
	resp, err := f.client.Get(f.leader + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// syncOnce runs one discovery + catch-up round; false means the leader
// was unreachable (the round counts against the backoff/degraded state).
func (f *followerServer) syncOnce() bool {
	var list struct {
		Trees []struct {
			Tree dyntc.TreeID `json:"tree"`
		} `json:"trees"`
	}
	if err := f.getJSON("/v1/trees", &list); err != nil {
		slog.Warn("follower: list trees failed", "err", err)
		return false
	}
	// Per-tree catch-up rides the shared scheduler: each tree's log tail
	// fetch + verified replay is one blocking task, so many replicas catch
	// up in parallel without spawning a goroutine per tree; whatever the
	// pool cannot absorb runs inline on the poll loop, as before.
	live := make(map[dyntc.TreeID]bool, len(list.Trees))
	var wg sync.WaitGroup
	for _, ti := range list.Trees {
		id := ti.Tree
		live[id] = true
		task := func() {
			defer wg.Done()
			f.syncTree(id)
		}
		wg.Add(1)
		if f.pool == nil || !f.pool.TrySubmitBlocking(task) {
			task()
		}
	}
	wg.Wait()
	// Drop replicas of trees the leader no longer serves.
	f.mu.Lock()
	for id := range f.reps {
		if !live[id] {
			delete(f.reps, id)
		}
	}
	f.mu.Unlock()
	return true
}

func (f *followerServer) getReplica(id dyntc.TreeID) *replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reps[id]
}

// bootstrap fetches a fresh snapshot and (re)builds the replica.
func (f *followerServer) bootstrap(id dyntc.TreeID) (*replica, error) {
	t0 := time.Now()
	resp, err := f.client.Get(fmt.Sprintf("%s/v1/trees/%d/snapshot", f.leader, id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot: %s", resp.Status)
	}
	data, err := readSnapshotBody(resp.Body)
	if err != nil {
		return nil, err
	}
	var fopts []dyntc.Option
	if f.pool != nil {
		fopts = append(fopts, dyntc.WithPool(f.pool))
	}
	fo, err := dyntc.NewFollower(data, fopts...)
	if err != nil {
		return nil, err
	}
	f.obs.snapshotDone(len(data), time.Since(t0))
	rep := &replica{fo: fo, leaderSeq: fo.Seq()}
	f.mu.Lock()
	_, rebootstrap := f.reps[id]
	f.reps[id] = rep
	f.mu.Unlock()
	if rebootstrap && f.obs != nil {
		f.obs.rebootstraps.Inc()
		f.obs.journal().EmitTree(obs.EvRebootstrap, uint64(id),
			"replica rebuilt from a fresh snapshot",
			map[string]any{"seq": fo.Seq(), "bytes": len(data)})
	}
	slog.Info("follower: tree bootstrapped", "tree", id, "seq", fo.Seq())
	return rep, nil
}

// syncTree bootstraps tree id if new, then applies the leader's log tail.
func (f *followerServer) syncTree(id dyntc.TreeID) {
	rep := f.getReplica(id)
	if rep == nil {
		var err error
		if rep, err = f.bootstrap(id); err != nil {
			slog.Warn("follower: bootstrap failed", "tree", id, "err", err)
			return
		}
	}

	var tail struct {
		Waves   []dyntc.Wave `json:"waves"`
		LastSeq uint64       `json:"last_seq"`
	}
	path := fmt.Sprintf("/v1/trees/%d/log?since=%d", id, rep.fo.Seq())
	req, err := http.NewRequest(http.MethodGet, f.leader+path, nil)
	if err != nil {
		rep.setErr(err)
		return
	}
	// Advertise the leadership term this replica trusts: a stale leader
	// that sees a higher term fences itself read-only (it still serves
	// the tail so the new term can drain it).
	req.Header.Set("X-Dyntc-Epoch", strconv.FormatUint(rep.fo.Epoch(), 10))
	resp, err := f.client.Do(req)
	if err != nil {
		rep.setErr(err)
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		err = json.NewDecoder(resp.Body).Decode(&tail)
	case http.StatusGone:
		// Fell behind the leader's ring: re-bootstrap from a snapshot.
		slog.Warn("follower: log truncated, re-bootstrapping", "tree", id)
		if _, err := f.bootstrap(id); err != nil {
			slog.Error("follower: re-bootstrap failed", "tree", id, "err", err)
			rep.setErr(err)
		}
		return
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err = fmt.Errorf("%s: %s: %s", path, resp.Status, body)
	}
	if err != nil {
		rep.setErr(err)
		return
	}
	rep.mu.Lock()
	rep.leaderSeq = tail.LastSeq
	rep.mu.Unlock()
	// Apply wave by wave (not ApplyAll) so every replicated wave's lag is
	// attributed to its stages — appended→fetched against the leader's WAL
	// timestamp, fetched→applied against the verified replay — and its
	// follower-side spans land in the span log as each wave completes.
	fetched := time.Now()
	for _, wv := range tail.Waves {
		if err := rep.fo.Apply(wv); err != nil {
			// Divergence is unrecoverable by replay: rebuild from a snapshot.
			slog.Error("follower: apply failed, re-bootstrapping", "tree", id, "seq", wv.Seq, "err", err)
			rep.setErr(err)
			if _, berr := f.bootstrap(id); berr != nil {
				slog.Error("follower: re-bootstrap failed", "tree", id, "err", berr)
			}
			return
		}
		rep.mu.Lock()
		rep.applied++
		rep.mu.Unlock()
		f.observeApply(wv, fetched)
	}
	rep.mu.Lock()
	rep.lastErr = ""
	rep.mu.Unlock()
}

// observeApply attributes one replicated wave's lag and stitches the
// follower's side of its distributed trace. The appended→fetched stage
// runs from the leader's WAL-append timestamp to this follower holding
// the decoded tail; fetched→applied runs from there to the wave's
// verified replay completing. Timed waves feed the histograms always;
// span records are added only for waves sealed inside a sampled trace
// (TraceID set), parented on the deterministic (epoch, seq) wave span ID
// both processes derive independently.
func (f *followerServer) observeApply(wv dyntc.Wave, fetched time.Time) {
	b := f.obs
	if b == nil || wv.AppendedAt == 0 {
		return
	}
	fetchedNS := fetched.UnixNano()
	fetchLag := fetchedNS - wv.AppendedAt
	if fetchLag < 0 {
		// Cross-process clock skew: clamp rather than poison the histogram.
		fetchLag = 0
	}
	applyLag := time.Now().UnixNano() - fetchedNS
	b.replog.AppendedFetched.Observe(fetchLag)
	b.replog.FetchedApplied.Observe(applyLag)
	// Replication-lag stages feed the flight recorder: a leader whose WAL
	// or network stalls shows up as a replica.fetch anomaly, a replica
	// whose verified replay slows down as replica.apply.
	b.anomaly.Observe(sigReplicaFetch, fetchLag)
	b.anomaly.Observe(sigReplicaApply, applyLag)
	if wv.TraceID == 0 || b.spans == nil {
		return
	}
	epoch := wv.EpochOrDefault()
	anchor := dyntc.WaveSpanID(epoch, wv.Seq)
	b.spans.Add(dyntc.SpanRecord{
		Trace: dyntc.SpanID(wv.TraceID), Span: dyntc.NewSpanID(), Parent: anchor,
		Name: "replica.fetch", Seq: wv.Seq, Epoch: epoch,
		Start: wv.AppendedAt, Dur: fetchLag,
	})
	b.spans.Add(dyntc.SpanRecord{
		Trace: dyntc.SpanID(wv.TraceID), Span: dyntc.NewSpanID(), Parent: anchor,
		Name: "replica.apply", Seq: wv.Seq, Epoch: epoch,
		Start: fetchedNS, Dur: applyLag,
	})
}

func (r *replica) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// handler is the process's serving handler: the follower mux until a
// promotion swaps in the new leader's mux atomically under the same
// listener.
func (f *followerServer) handler() http.Handler {
	mux := f.routes()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := f.leaderH.Load(); h != nil {
			h.(http.Handler).ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// routes serves the read-only replica API. Mutations are rejected with
// 403: a follower is a read replica, writes belong on the leader.
func (f *followerServer) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "role": "follower", "leader": f.leader,
			"uptime_s": time.Since(f.start).Seconds(),
		})
	})
	mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	mux.HandleFunc("GET /v1/trees", f.handleList)
	mux.HandleFunc("GET /v1/trees/{id}/value", f.replicaHandler(f.handleValue))
	mux.HandleFunc("GET /v1/trees/{id}/snapshot", f.replicaHandler(f.handleSnapshot))
	mux.HandleFunc("POST /v1/promote", f.handlePromote)
	if f.queryEndpoint {
		mux.HandleFunc("POST /v1/query", f.handleQuery)
	}
	if f.obs != nil {
		mux.HandleFunc("GET /metrics", f.obs.handleMetrics)
		mux.HandleFunc("GET /v1/trace", f.obs.handleTrace)
		mux.HandleFunc("GET /v1/spans", f.obs.handleSpans)
		mux.HandleFunc("GET /v1/events", f.obs.handleEvents)
		mux.HandleFunc("GET /v1/hot", f.obs.handleHot)
		mux.HandleFunc("GET /v1/debug/bundle", f.obs.handleBundle)
	}
	reject := func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, apiError{http.StatusForbidden, "read-only replica: write on the leader " + f.leader})
	}
	for _, p := range []string{
		"POST /v1/trees", "DELETE /v1/trees/{id}", "POST /v1/trees/{id}/grow",
		"POST /v1/trees/{id}/collapse", "POST /v1/trees/{id}/set-leaf",
		"POST /v1/trees/{id}/set-op", "POST /v1/trees/{id}/batch",
		"PUT /v1/trees/{id}/snapshot",
	} {
		mux.HandleFunc(p, reject)
	}
	return mux
}

// handlePromote turns this follower into the leader of a new term: every
// replica is promoted (epoch+1) and restored into a serving engine with
// its own wave log, the leader mux takes over the listener, and the old
// leader is told to fence itself (best-effort — epoch fencing protects
// correctness even if the demote call never lands).
//
// Promotion is all-or-nothing. Phase 1 prepares: every replica's state
// is re-stamped at the next term and restored into a fresh leader
// server, while the poll loop keeps tailing and the replicas keep
// applying — nothing is committed, so any per-tree failure aborts with
// every replica still live and a retried POST /v1/promote can succeed.
// Only after every tree is restored does phase 2 commit: stop the poll
// loop, mark the replicas promoted, and swap the leader mux in.
//
// The caller is responsible for promoting a caught-up follower: waves
// the old leader acknowledged past each replica's prepared sequence are
// lost, exactly as in any asynchronous-replication failover.
func (f *followerServer) handlePromote(w http.ResponseWriter, r *http.Request) {
	f.promoteMu.Lock()
	defer f.promoteMu.Unlock()
	if f.leaderSrv != nil {
		writeErr(w, apiError{http.StatusConflict, "already promoted"})
		return
	}
	t0 := time.Now()

	s := newServerWAL(f.opts, f.walDir, f.logCap)
	s.faults = f.faults
	// Hand the bundle over before any attachLog so the promoted term's
	// wave logs are instrumented from their first append (observe —
	// re-registering the gauges — waits for the phase-2 commit).
	s.obs = f.obs
	f.mu.Lock()
	reps := make(map[dyntc.TreeID]*replica, len(f.reps))
	for id, rep := range f.reps {
		reps[id] = rep
	}
	f.mu.Unlock()
	abort := func(err error) {
		s.forest.Close()
		s.closeLogs()
		writeErr(w, err)
	}
	var epoch uint64
	for id, rep := range reps {
		snap, seq, ep, err := rep.fo.PreparePromote()
		if err != nil {
			abort(fmt.Errorf("promote tree %d: %w", id, err))
			return
		}
		en, _, err := s.forest.Restore(id, snap)
		if err != nil {
			abort(fmt.Errorf("restore promoted tree %d: %w", id, err))
			return
		}
		var ring dyntc.Ring
		if err := en.Query(func(e *dyntc.Expr) { ring = e.Tree().Ring }); err != nil {
			abort(err)
			return
		}
		s.rings.Store(id, ring)
		if err := s.persistSnapshot(id, snap); err != nil {
			// Keep failing over: the tree serves from memory and the next
			// compaction re-anchors it.
			slog.Error("persist promoted snapshot failed", "tree", id, "err", err)
		}
		if err := s.attachLog(id, en); err != nil {
			abort(fmt.Errorf("attach log to promoted tree %d: %w", id, err))
			return
		}
		if ep > epoch {
			epoch = ep
		}
		slog.Info("tree promoted", "tree", id, "seq", seq, "epoch", ep)
	}

	// Phase 2 — commit: every tree restored, so the promotion can no
	// longer fail. Stop tailing the old leader, then mark the replicas
	// promoted (late waves now get ErrPromoted instead of applying to
	// state the new term no longer reads).
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	for _, rep := range reps {
		rep.fo.MarkPromoted()
	}
	if f.obs != nil {
		// Re-registration replaces the follower's cross-layer gauge
		// closures with the leader's; the promotion counter marks the
		// term change on the shared registry.
		s.observe(f.obs)
		f.obs.promotions.Inc()
	}
	f.leaderSrv = s
	f.leaderH.Store(http.Handler(s.routes()))
	failoverMS := time.Since(t0).Milliseconds()
	f.obs.journal().Emit(obs.EvPromote, "promoted to leader",
		map[string]any{"trees": len(reps), "epoch": epoch, "failover_ms": failoverMS})

	// Tell the old leader it is demoted. Best-effort and asynchronous: if
	// it is dead or partitioned the epoch fence still rejects its late
	// writes wave by wave.
	go func(leader string, epoch uint64) {
		body, _ := json.Marshal(map[string]uint64{"epoch": epoch})
		resp, err := http.Post(leader+"/v1/demote", "application/json", bytes.NewReader(body))
		if err != nil {
			slog.Warn("demote old leader failed", "leader", leader, "err", err)
			return
		}
		resp.Body.Close()
	}(f.leader, epoch)

	slog.Info("promoted to leader", "trees", len(reps), "epoch", epoch, "failover_ms", failoverMS)
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted":    true,
		"trees":       len(reps),
		"epoch":       epoch,
		"failover_ms": failoverMS,
	})
}

func (f *followerServer) replicaHandler(h func(http.ResponseWriter, *http.Request, *replica)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad tree id"})
			return
		}
		rep := f.getReplica(id)
		if rep == nil {
			writeErr(w, apiError{http.StatusNotFound, fmt.Sprintf("no replica of tree %d", id)})
			return
		}
		// Degraded reads stay served, but say so: the header carries the
		// staleness bound (time since the last successful leader contact).
		if degraded, staleness, _, _ := f.health(); degraded {
			w.Header().Set("X-Dyntc-Staleness-Ms", strconv.FormatInt(staleness.Milliseconds(), 10))
		}
		h(w, r, rep)
	}
}

// handleHealthz reports per-replica applied sequence and lag behind the
// leader's last observed log position, plus the poll loop's health:
// consecutive failed rounds, current backoff, and staleness. A degraded
// follower (unreachable leader) reports 503 — load balancers should
// prefer fresher replicas — while reads keep flowing.
func (f *followerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type repHealth struct {
		Tree       dyntc.TreeID `json:"tree"`
		AppliedSeq uint64       `json:"applied_seq"`
		LeaderSeq  uint64       `json:"leader_seq"`
		Lag        uint64       `json:"lag"`
		Epoch      uint64       `json:"epoch"`
		Waves      uint64       `json:"waves_applied"`
		LastError  string       `json:"last_error,omitempty"`
	}
	trees := []repHealth{}
	f.mu.Lock()
	reps := make(map[dyntc.TreeID]*replica, len(f.reps))
	for id, rep := range f.reps {
		reps[id] = rep
	}
	f.mu.Unlock()
	for id, rep := range reps {
		rep.mu.Lock()
		rh := repHealth{
			Tree:       id,
			AppliedSeq: rep.fo.Seq(),
			LeaderSeq:  rep.leaderSeq,
			Epoch:      rep.fo.Epoch(),
			Waves:      rep.applied,
			LastError:  rep.lastErr,
		}
		rep.mu.Unlock()
		if rh.LeaderSeq > rh.AppliedSeq {
			rh.Lag = rh.LeaderSeq - rh.AppliedSeq
		}
		trees = append(trees, rh)
	}
	degraded, staleness, consecErrs, backoff := f.health()
	status := http.StatusOK
	body := map[string]any{
		"ok": !degraded, "role": "follower", "leader": f.leader,
		"uptime_s":           time.Since(f.start).Seconds(),
		"trees":              trees,
		"degraded":           degraded,
		"consecutive_errors": consecErrs,
		"backoff_ms":         backoff.Milliseconds(),
		"staleness_ms":       staleness.Milliseconds(),
	}
	if degraded {
		status = http.StatusServiceUnavailable
	}
	if f.pool != nil {
		body["sched"] = f.pool.Stats()
	}
	if f.obs != nil {
		body["anomaly_active"] = f.obs.anomaly.Active()
		if ev, ok := f.obs.events.LastEvent(); ok {
			body["last_event"] = ev
		}
	}
	writeJSON(w, status, body)
}

func (f *followerServer) handleList(w http.ResponseWriter, r *http.Request) {
	type treeInfo struct {
		Tree   dyntc.TreeID `json:"tree"`
		Nodes  int          `json:"nodes"`
		Leaves int          `json:"leaves"`
		Root   int64        `json:"root"`
	}
	infos := []treeInfo{}
	f.mu.Lock()
	reps := make(map[dyntc.TreeID]*replica, len(f.reps))
	for id, rep := range f.reps {
		reps[id] = rep
	}
	f.mu.Unlock()
	for id, rep := range reps {
		ti := treeInfo{Tree: id}
		rep.fo.Query(func(e *dyntc.Expr) {
			ti.Nodes = e.Tree().Len()
			ti.Leaves = e.Tree().LeafCount()
			ti.Root = e.Root()
		})
		infos = append(infos, ti)
	}
	writeJSON(w, http.StatusOK, map[string]any{"trees": infos})
}

func (f *followerServer) handleValue(w http.ResponseWriter, r *http.Request, rep *replica) {
	q := r.URL.Query().Get("node")
	if q == "" {
		writeJSON(w, http.StatusOK, map[string]any{"value": rep.fo.Root()})
		return
	}
	nodeID, err := strconv.Atoi(q)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, "bad node id"})
		return
	}
	v, err := rep.fo.ValueID(nodeID)
	if err != nil {
		writeErr(w, apiError{http.StatusNotFound, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": nodeID, "value": v})
}

// handleSnapshot re-serializes the replica: followers can seed further
// followers (fan-out) without touching the leader.
func (f *followerServer) handleSnapshot(w http.ResponseWriter, r *http.Request, rep *replica) {
	data, err := rep.fo.Snapshot()
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

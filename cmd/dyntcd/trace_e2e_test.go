package main

// End-to-end distributed tracing tests: one trace ID covering HTTP
// ingest → engine flush → wave stages → WAL append on the leader and
// fetch → verified apply on an in-process follower, stitched through
// the deterministic (epoch, seq) wave span ID; plus the promotion test
// proving the observability surface survives the follower→leader mux
// swap.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyntc"
	"dyntc/internal/bench"
)

// spansResp is the GET /v1/spans response shape.
type spansResp struct {
	Total uint64             `json:"total"`
	Spans []dyntc.SpanRecord `json:"spans"`
}

// bySpanName returns the retained spans with the given name, in order.
func bySpanName(spans []dyntc.SpanRecord, name string) []dyntc.SpanRecord {
	var out []dyntc.SpanRecord
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestDistributedTraceEndToEnd is the acceptance scenario: a leader with
// an unsampled cadence (TraceSample far beyond the traffic) and a live
// in-process follower; one batch carrying an X-Dyntc-Trace header forces
// end-to-end sampling, and a single trace ID must cover ingest, flush,
// stages, the wave anchor, the WAL append, and — across the process
// boundary — the follower's fetch and apply, with the three lag-stage
// histograms non-empty and consistent with the span timestamps.
func TestDistributedTraceEndToEnd(t *testing.T) {
	lob, err := newObsBundle(obsConfig{traceCap: 64, proc: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(dyntc.BatchOptions{
		Metrics: lob.engine, Trace: lob.trace, TraceSample: 1 << 20, Spans: lob.spans,
	})
	s.observe(lob)
	leaderSrv := httptest.NewServer(s.routes())
	t.Cleanup(func() { leaderSrv.Close(); s.forest.Close() })

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", leaderSrv.URL+"/v1/trees", map[string]any{"root": 1}, 201, &created)

	fob, err := newObsBundle(obsConfig{traceCap: 64, proc: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	fo := newFollower(leaderSrv.URL, 2*time.Millisecond)
	fo.observe(fob)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.routes())
	t.Cleanup(foSrv.Close)

	// The follower must bootstrap before the traced wave is sealed, so the
	// wave reaches it through the log tail (the replicated path under
	// test), not baked into the bootstrap snapshot.
	waitHealthz(t, foSrv.URL, func(_ int, h healthTrees) bool { return len(h.Trees) == 1 })

	// One traced batch: a grow (mutating → sealed wave → WAL → follower)
	// plus a root read, under a client-minted trace context.
	clientTrace := dyntc.NewTraceID()
	clientSpan := dyntc.NewSpanID()
	hdr := dyntc.FormatTraceHeader(dyntc.TraceContext{Trace: clientTrace, Span: clientSpan})
	body, _ := json.Marshal(map[string]any{"ops": []map[string]any{
		{"kind": "grow", "node": 0, "op": "add", "left": 2, "right": 3},
		{"kind": "root"},
	}})
	req, err := http.NewRequest("POST",
		fmt.Sprintf("%s/v1/trees/%d/batch", leaderSrv.URL, created.Tree), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Dyntc-Trace", hdr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("traced batch: status %d", resp.StatusCode)
	}
	// The response echoes the trace with the server's ingest span:
	// "<trace>-<ingest>", same trace, a span the server minted.
	echo := resp.Header.Get("X-Dyntc-Trace")
	if !strings.HasPrefix(echo, clientTrace.String()+"-") || echo == hdr {
		t.Fatalf("echoed trace header %q, want %s-<fresh ingest span>", echo, clientTrace)
	}

	// Leader-side span tree.
	var ls spansResp
	call(t, "GET", leaderSrv.URL+"/v1/spans?trace="+clientTrace.String(), nil, 200, &ls)
	ingest := bySpanName(ls.Spans, "ingest.batch")
	if len(ingest) != 1 || ingest[0].Parent != clientSpan || ingest[0].Proc != "leader" {
		t.Fatalf("ingest spans = %+v, want one parented on the client span", ingest)
	}
	var flush dyntc.SpanRecord
	for _, f := range bySpanName(ls.Spans, "engine.flush") {
		if f.Parent == ingest[0].Span {
			flush = f
		}
	}
	if flush.Span == 0 {
		t.Fatalf("no engine.flush parented on the ingest span; spans: %+v", ls.Spans)
	}
	if flush.Reqs <= 0 || flush.Tree != created.Tree {
		t.Fatalf("flush span %+v, want reqs > 0 on tree %d", flush, created.Tree)
	}
	var stages int
	for _, sp := range ls.Spans {
		if strings.HasPrefix(sp.Name, "stage.") && sp.Parent == flush.Span {
			stages++
		}
	}
	if stages == 0 {
		t.Fatalf("no stage.* spans under the flush; spans: %+v", ls.Spans)
	}
	waves := bySpanName(ls.Spans, "wave")
	if len(waves) != 1 {
		t.Fatalf("wave spans = %+v, want exactly one", waves)
	}
	wave := waves[0]
	if wave.Parent != flush.Span || wave.Seq == 0 ||
		wave.Span != dyntc.WaveSpanID(wave.Epoch, wave.Seq) {
		t.Fatalf("wave span %+v, want parent=flush and span=WaveSpanID(%d,%d)",
			wave, wave.Epoch, wave.Seq)
	}
	appends := bySpanName(ls.Spans, "wal.append")
	if len(appends) != 1 || appends[0].Parent != wave.Span {
		t.Fatalf("wal.append spans = %+v, want one parented on the wave anchor", appends)
	}

	// Convergence, then the follower's side of the same trace.
	var leaderHealth healthTrees
	call(t, "GET", leaderSrv.URL+"/v1/healthz", nil, 200, &leaderHealth)
	wantSeq := leaderHealth.Trees[0].AppliedSeq
	waitHealthz(t, foSrv.URL, func(_ int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq == wantSeq
	})

	var fs spansResp
	call(t, "GET", foSrv.URL+"/v1/spans?trace="+clientTrace.String(), nil, 200, &fs)
	fetch := bySpanName(fs.Spans, "replica.fetch")
	apply := bySpanName(fs.Spans, "replica.apply")
	if len(fetch) != 1 || len(apply) != 1 {
		t.Fatalf("follower spans = %+v, want one replica.fetch and one replica.apply", fs.Spans)
	}
	for _, sp := range []dyntc.SpanRecord{fetch[0], apply[0]} {
		if sp.Proc != "follower" || sp.Parent != wave.Span || sp.Seq != wave.Seq {
			t.Fatalf("follower span %+v, want proc=follower parented on wave %v seq %d",
				sp, wave.Span, wave.Seq)
		}
	}
	// Cross-process timestamp stitch: the WAL append ends exactly where
	// the fetch-lag stage begins (both are the leader's AppendedAt stamp).
	if got := appends[0].Start + appends[0].Dur; got != fetch[0].Start {
		t.Fatalf("wal.append end %d != replica.fetch start %d", got, fetch[0].Start)
	}
	if apply[0].Start < fetch[0].Start {
		t.Fatalf("replica.apply starts at %d, before the fetch at %d", apply[0].Start, fetch[0].Start)
	}
	// The same wave is also reachable by the cross-process join key.
	var bySeq spansResp
	call(t, "GET", fmt.Sprintf("%s/v1/spans?seq=%d", foSrv.URL, wave.Seq), nil, 200, &bySeq)
	if len(bySeq.Spans) != 2 {
		t.Fatalf("spans by seq = %+v, want the fetch/apply pair", bySeq.Spans)
	}

	// Replication-lag attribution: all three stage histograms non-empty,
	// on the role that owns each stage.
	lm, err := bench.ParseMetricsText(string(getBytes(t, leaderSrv.URL+"/metrics", 200)))
	if err != nil {
		t.Fatal(err)
	}
	if lm[`dyntc_repl_stage_seconds_count{stage="sealed_appended"}`] < 1 {
		t.Fatal("leader sealed_appended histogram empty")
	}
	fm, err := bench.ParseMetricsText(string(getBytes(t, foSrv.URL+"/metrics", 200)))
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"appended_fetched", "fetched_applied"} {
		if fm[`dyntc_repl_stage_seconds_count{stage="`+stage+`"}`] < 1 {
			t.Fatalf("follower %s histogram empty", stage)
		}
	}
	// Span timestamps and the histograms agree on the fetch-lag magnitude:
	// the histogram total is at least the traced wave's span duration.
	if sum := fm[`dyntc_repl_stage_seconds_sum{stage="appended_fetched"}`]; sum*1e9 < float64(fetch[0].Dur) {
		t.Fatalf("appended_fetched sum %vs < traced span %dns", sum, fetch[0].Dur)
	}
}

// TestPromotionKeepsObservability is the mux-swap regression test: after
// POST /v1/promote replaces the follower mux with a full leader mux on
// the same listener, /metrics, /v1/trace and /v1/spans must keep
// serving, and write traffic through the promoted leader must move the
// leader-side families on the same registry.
func TestPromotionKeepsObservability(t *testing.T) {
	leaderSrv, _ := startTestServer(t)
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", leaderSrv.URL+"/v1/trees", map[string]any{"root": 1}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", leaderSrv.URL, created.Tree)
	lastLeaf := growSome(t, base, 5, 0)

	fob, err := newObsBundle(obsConfig{traceCap: 16, proc: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	fo := newFollower(leaderSrv.URL, 2*time.Millisecond)
	// The engine options the promoted leader will serve with: every flush
	// sampled, spans into the same bundle the follower already exports.
	fo.opts = dyntc.BatchOptions{
		Metrics: fob.engine, Trace: fob.trace, TraceSample: 1, Spans: fob.spans,
	}
	fo.observe(fob)
	go fo.run()
	t.Cleanup(fo.Close)
	// handler(), not routes(): promotion swaps the leader mux in behind it.
	foSrv := httptest.NewServer(fo.handler())
	t.Cleanup(foSrv.Close)

	waitHealthz(t, foSrv.URL, func(_ int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq == 5
	})
	call(t, "POST", foSrv.URL+"/v1/promote", nil, 200, nil)

	// The observability surface survives the swap.
	for _, path := range []string{"/metrics", "/v1/trace", "/v1/spans"} {
		getBytes(t, foSrv.URL+path, 200)
	}

	// Writes through the promoted leader move the re-registered leader
	// families: engine flush timing, WAL appends, and the sealed→appended
	// lag stage (every flush is sampled, so waves carry SealedAt).
	growSome(t, fmt.Sprintf("%s/v1/trees/%d", foSrv.URL, created.Tree), 3, lastLeaf)
	text := string(getBytes(t, foSrv.URL+"/metrics", 200))
	if err := bench.CheckMetricsText(text, []string{
		"dyntc_engine_flush_seconds",
		"dyntc_engine_requests_total",
		"dyntc_replog_appends_total",
		"dyntc_repl_stage_seconds",
		"dyntc_go_goroutines",
		"dyntc_build_info",
	}); err != nil {
		t.Fatalf("promoted metrics check: %v\n%s", err, text)
	}
	samples, err := bench.ParseMetricsText(text)
	if err != nil {
		t.Fatal(err)
	}
	if samples["dyntc_engine_flush_seconds_count"] < 3 {
		t.Fatalf("promoted flush count = %v, want >= 3", samples["dyntc_engine_flush_seconds_count"])
	}
	if samples[`dyntc_repl_stage_seconds_count{stage="sealed_appended"}`] < 3 {
		t.Fatalf("promoted sealed_appended count = %v, want >= 3",
			samples[`dyntc_repl_stage_seconds_count{stage="sealed_appended"}`])
	}
	if samples["dyntc_epoch"] < 2 {
		t.Fatalf("promoted epoch = %v, want >= 2", samples["dyntc_epoch"])
	}
	// The promoted leader's spans keep landing in the same ring.
	var sp spansResp
	call(t, "GET", foSrv.URL+"/v1/spans", nil, 200, &sp)
	if len(bySpanName(sp.Spans, "engine.flush")) == 0 {
		t.Fatalf("no engine.flush spans after promotion; spans: %+v", sp.Spans)
	}
}

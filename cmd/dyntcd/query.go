package main

// POST /v1/query: the cross-tree scatter-gather read endpoint. One call
// names a set of trees, a per-tree read and a combiner, and gets back the
// combined value plus (with "detail") each tree's value and the
// applied-wave sequence it answered at — replacing N per-tree GET
// round-trips with one. Leaders scatter across the forest's coalescing
// engines (internal/query); followers serve the identical surface against
// their local replica set, the read-offload path.
//
// Request body:
//
//	{
//	  "trees": [1,2,3],          // explicit ids (optional)
//	  "from": 1, "to": 64,       // inclusive id range (optional; default all)
//	  "read": "root",            // root | value | subtree-size
//	  "node": 0,                 // target node for value / subtree-size
//	  "combine": "sum",          // sum | min | max | count | add | mul
//	  "ring": "mod", "mod": 97,  // ring for add/mul combines
//	  "detail": true             // include per-tree results
//	}
//
// Response: {"combined": .., "trees": .., "errors": ..,
//            "detail": [{"tree":1,"value":7,"applied_seq":42}, ...]}

import (
	"net/http"
	"sort"
	"time"

	"dyntc"
	"dyntc/internal/query"
)

type queryReq struct {
	Trees   []uint64 `json:"trees"`
	From    uint64   `json:"from"`
	To      uint64   `json:"to"`
	Read    string   `json:"read"`
	Node    int      `json:"node"`
	Combine string   `json:"combine"`
	Ring    string   `json:"ring"`
	Mod     int64    `json:"mod"`
	Detail  bool     `json:"detail"`
}

// spec maps the wire request to a query spec.
func (q queryReq) spec() (query.Spec, error) {
	var spec query.Spec
	switch {
	case len(q.Trees) > 0:
		spec.Select = query.IDs(q.Trees...)
	case q.To != 0:
		spec.Select = query.Range(q.From, q.To)
	case q.From != 0:
		// A lower bound without an upper bound would silently select every
		// tree; reject instead of returning a confidently wrong aggregate.
		return spec, apiError{http.StatusBadRequest, "range \"from\" without \"to\""}
	default:
		spec.Select = query.All()
	}
	switch q.Read {
	case "", "root":
		spec.Read = query.Root()
	case "value":
		spec.Read = query.Value(q.Node)
	case "subtree-size":
		spec.Read = query.SubtreeSize(q.Node)
	default:
		return spec, apiError{http.StatusBadRequest, "unknown read " + q.Read + " (want root|value|subtree-size)"}
	}
	switch q.Combine {
	case "", "sum":
		spec.Combine = query.Sum()
	case "min":
		spec.Combine = query.Min()
	case "max":
		spec.Combine = query.Max()
	case "count":
		spec.Combine = query.Count()
	case "add", "mul":
		ring, err := parseRing(q.Ring, q.Mod)
		if err != nil {
			return spec, err
		}
		if q.Combine == "add" {
			spec.Combine = query.RingAdd(ring)
		} else {
			spec.Combine = query.RingMul(ring)
		}
	default:
		return spec, apiError{http.StatusBadRequest, "unknown combine " + q.Combine + " (want sum|min|max|count|add|mul)"}
	}
	return spec, nil
}

// writeQueryResult renders a completed query (detail only on request —
// a 10k-tree aggregate without it stays a few bytes).
func writeQueryResult(w http.ResponseWriter, res query.Result, detail bool) {
	type treeRes struct {
		Tree       uint64 `json:"tree"`
		Value      *int64 `json:"value,omitempty"`
		AppliedSeq uint64 `json:"applied_seq"`
		Error      string `json:"error,omitempty"`
	}
	body := map[string]any{
		"combined": res.Combined,
		"trees":    res.Trees,
		"errors":   res.Errors,
	}
	if detail {
		out := make([]treeRes, len(res.Detail))
		for i, tr := range res.Detail {
			out[i] = treeRes{Tree: tr.Tree, AppliedSeq: tr.Seq}
			if tr.Err != nil {
				out[i].Error = tr.Err.Error()
			} else {
				v := tr.Value
				out[i].Value = &v
			}
		}
		body["detail"] = out
	}
	writeJSON(w, http.StatusOK, body)
}

// serveQuery is the shared endpoint body: parse the wire spec, run it
// through the given planner over the given reader, render the result.
// Leader and follower differ only in what they scatter over.
func serveQuery(w http.ResponseWriter, r *http.Request, run func(query.Spec) (query.Result, error)) {
	var req queryReq
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	spec, err := req.spec()
	if err != nil {
		writeErr(w, err)
		return
	}
	spec.Detail = req.Detail
	res, err := run(spec)
	if err != nil {
		writeErr(w, apiError{http.StatusBadRequest, err.Error()})
		return
	}
	writeQueryResult(w, res, req.Detail)
}

// handleQuery is the leader endpoint: scatter over the forest's engines.
// The whole scatter-gather's wall time feeds the flight recorder's
// query.join signal.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	serveQuery(w, r, s.forest.Query)
	s.obs.recorder().Observe(sigQueryJoin, int64(time.Since(t0)))
}

// --- follower side: the same endpoint against the local replica set ---

// replicaReader adapts the follower's replicas to the query engine's
// Reader contract. Start never blocks; the locked replica read happens in
// Wait (the gather phase), so a chunk of replicas is read back-to-back
// without holding more than one replica lock at a time.
type replicaReader struct{ f *followerServer }

func (rr replicaReader) Trees() []uint64 {
	rr.f.mu.Lock()
	ids := make([]uint64, 0, len(rr.f.reps))
	for id := range rr.f.reps {
		ids = append(ids, uint64(id))
	}
	rr.f.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (rr replicaReader) Start(id uint64, r query.Read) query.Handle {
	rep := rr.f.getReplica(dyntc.TreeID(id))
	if rep == nil {
		return nil
	}
	return replicaHandle{rep: rep, r: r}
}

type replicaHandle struct {
	rep *replica
	r   query.Read
}

func (h replicaHandle) Wait() (int64, uint64, error) { return h.rep.fo.ReadQuery(h.r) }

// handleQuery is the follower endpoint: identical wire surface, served
// from the local replicas — the read-offload path. Every per-tree result
// reports the replica's applied sequence, so callers can see how far
// behind the leader each answer is.
func (f *followerServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	serveQuery(w, r, func(spec query.Spec) (query.Result, error) {
		return f.planner.Run(replicaReader{f: f}, spec)
	})
}

// Command dyntcd serves batch-dynamic expression trees over HTTP/JSON.
//
// Every tree is backed by dynamic parallel tree contraction (Reif & Tate,
// SPAA'94) behind a concurrent request-coalescing engine: concurrent
// requests against one tree amortize into the paper's §1.4 batches, and
// independent trees are sharded across engines so they proceed fully in
// parallel.
//
// Usage:
//
//	dyntcd -addr :8080
//	dyntcd -addr :8080 -window 200us -maxbatch 2048
//	dyntcd -addr :8080 -workers 8          # PRAM worker pool per tree
//
// -workers (default GOMAXPROCS) sets the goroutine parallelism of each
// tree's PRAM machine: a wave's node-disjoint grow/collapse/set batches
// execute on a persistent worker pool. 1 forces sequential wave
// execution; metered PRAM costs are identical either way. The setting is
// surfaced in GET /v1/stats.
//
// Quick session:
//
//	curl -X POST localhost:8080/v1/trees -d '{"root":1}'
//	curl -X POST localhost:8080/v1/trees/1/grow -d '{"leaf":0,"op":"add","left":3,"right":4}'
//	curl localhost:8080/v1/trees/1/value
//	curl localhost:8080/v1/trees/1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dyntc"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		window   = flag.Duration("window", 0, "batching window (0 = adaptive idle-flush)")
		maxBatch = flag.Int("maxbatch", 0, "max requests per flush (0 = default 1024)")
		queue    = flag.Int("queue", 0, "per-tree submit queue capacity (0 = default 4096)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "PRAM worker-pool size per tree (1 = sequential wave execution)")
	)
	flag.Parse()

	s := newServer(dyntc.BatchOptions{MaxBatch: *maxBatch, Window: *window, Queue: *queue, Workers: *workers})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("dyntcd listening on %s (window=%v maxbatch=%d workers=%d)", *addr, *window, *maxBatch, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown *starts*; wait for it to
	// finish draining in-flight handlers before closing the engines.
	stop()
	<-shutdownDone
	s.forest.Close()
	log.Print("dyntcd: drained and stopped")
}

// Command dyntcd serves batch-dynamic expression trees over HTTP/JSON.
//
// Every tree is backed by dynamic parallel tree contraction (Reif & Tate,
// SPAA'94) behind a concurrent request-coalescing engine: concurrent
// requests against one tree amortize into the paper's §1.4 batches, and
// independent trees are sharded across engines so they proceed fully in
// parallel.
//
// Usage:
//
//	dyntcd -addr :8080
//	dyntcd -addr :8080 -window 200us -maxbatch 2048
//	dyntcd -addr :8080 -sched-workers 16   # size the shared scheduler pool
//	dyntcd -addr :8080 -workers 8          # per-tree parallelism hint
//	dyntcd -addr :8080 -wal-dir /var/lib/dyntcd   # durable wave log
//	dyntcd -addr :8080 -wal-dir d -compact-every 10000  # + log compaction
//	dyntcd -addr :8081 -follow http://leader:8080 # read replica (serves /v1/query)
//	dyntcd -addr :8081 -follow http://leader:8080 -wal-dir d   # promotable replica
//	dyntcd -addr :8080 -faults 'wal.append:after=100:torn=0.5:times=1' -fault-seed 7
//
// The whole process runs on ONE runtime scheduler pool (-sched-workers,
// default GOMAXPROCS): every tree's wave sub-batches execute as task
// groups on it, each tree's PRAM steps chunk onto it, the cross-tree
// query scatter rides it, and in -follow mode replica replay does too —
// so a 1024-tree forest on a 16-core box runs 16-wide instead of
// spawning a pool per tree. -workers (default GOMAXPROCS) is the
// per-tree hint: how many shared workers one tree's wave may recruit; 1
// forces sequential wave execution. Metered PRAM costs are identical
// either way. Each engine's flush cap adapts under saturation (adaptive
// MaxBatch; -maxbatch sets the floor). Pool utilization, steal counts
// and queue depth are surfaced in GET /v1/stats and /v1/healthz, and
// per-engine adaptive state (cur_max_batch, per-kind grain) in the
// engine stats.
//
// Durability & replication (internal/replog): every tree's engine taps
// its executed mutating waves into a change log — an in-memory ring of
// -log-cap waves serving GET /v1/trees/{id}/log?since=SEQ, plus, with
// -wal-dir set, an append-only <dir>/tree-<id>.wal file. Snapshots
// (GET/PUT /v1/trees/{id}/snapshot) capture a tree's exact state through
// an engine barrier. In -follow mode the process serves read-only
// replicas of every leader tree: snapshot bootstrap, then verified
// in-order wave replay, re-bootstrapping automatically when it falls
// behind the leader's ring. GET /v1/healthz reports per-tree applied
// sequence numbers (and, on a follower, lag).
//
// Failover: every wave and snapshot is stamped with a leadership epoch.
// POST /v1/promote on a follower ends its replica life — each replica is
// promoted to epoch+1 and served by a full leader mux on the same
// listener — and the old leader, once it observes the newer term (via
// the demote call the promotion fires, an explicit POST /v1/demote, or a
// follower's X-Dyntc-Epoch header on log fetches), fences itself
// read-only: writes 403, reads and the log tail keep flowing. Waves from
// the demoted term are rejected by every log and replica that has seen
// the new one (epoch fencing). A leader started over a -wal-dir from a
// crash recovers at startup: each tree-<id>.snap restores, the WAL tail
// past it replays (a torn tail is truncated, not fatal), and serving
// resumes from a fresh snapshot + WAL pair. A follower that cannot reach
// its leader keeps serving reads in explicit degraded mode — healthz
// turns 503 after 3 consecutive failed polls or the -degraded-after
// staleness bound, reads carry X-Dyntc-Staleness-Ms, and the poll loop
// backs off exponentially with seeded jitter. -faults/-fault-seed drive
// the deterministic fault-injection harness (see dyntc.FaultInjector)
// at sites engine.wave, wal.append, wal.sync and follower.rpc.
//
// Cross-tree queries (internal/query): POST /v1/query scatters one read
// (root value, node value, subtree size) over any subset of the forest —
// explicit ids, an id range, or every tree — and joins the answers with a
// combiner (sum/min/max/count or a semiring add/mul), reporting each
// tree's applied-wave sequence. Followers serve the same endpoint from
// their replicas unless -query-endpoint=false, so dashboards can offload
// cross-tree reads entirely onto replicas. With -compact-every N each
// tree's change log is compacted every N waves: the tree is snapshotted
// (to <wal-dir>/tree-<id>.snap when -wal-dir is set) and the ring + WAL
// are trimmed; followers that fall behind a trimmed log re-bootstrap via
// the existing 410 path.
//
// Quick session:
//
//	curl -X POST localhost:8080/v1/trees -d '{"root":1}'
//	curl -X POST localhost:8080/v1/trees/1/grow -d '{"leaf":0,"op":"add","left":3,"right":4}'
//	curl localhost:8080/v1/trees/1/value
//	curl localhost:8080/v1/trees/1/snapshot
//	curl 'localhost:8080/v1/trees/1/log?since=0'
//	curl localhost:8080/v1/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dyntc"
	"dyntc/internal/pram"
)

// schedSpanSample is the sampling stride for scheduler task spans: pool
// tasks run orders of magnitude more often than flushes, so they are
// sampled far more sparsely to keep the span ring dominated by wave
// lifecycles rather than task noise.
const schedSpanSample = 256

// fatal logs one structured error line and exits, the slog replacement
// for log.Fatalf.
func fatal(msg string, attrs ...any) {
	slog.Error(msg, attrs...)
	os.Exit(1)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		window   = flag.Duration("window", 0, "batching window (0 = adaptive idle-flush)")
		maxBatch = flag.Int("maxbatch", 0, "max requests per flush (0 = default 1024)")
		queue    = flag.Int("queue", 0, "per-tree submit queue capacity (0 = default 4096)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "PRAM parallelism hint per tree: shared-pool workers one tree's wave may recruit (1 = sequential wave execution)")
		schedW   = flag.Int("sched-workers", 0, "size of the process-wide runtime scheduler pool shared by waves, queries and replay (0 = GOMAXPROCS)")
		walDir   = flag.String("wal-dir", "", "directory for append-only per-tree wave logs ('' = in-memory ring only)")
		logCap   = flag.Int("log-cap", 0, "waves retained in each tree's in-memory log ring (0 = default 4096)")
		follow   = flag.String("follow", "", "leader base URL: run as a read-only replica of that dyntcd")
		poll     = flag.Duration("poll", 50*time.Millisecond, "follower mode: leader poll interval")
		queryEP  = flag.Bool("query-endpoint", true, "follower mode: serve POST /v1/query against the local replicas (read offload)")
		compact  = flag.Int("compact-every", 0, "compact each tree's log every N waves: snapshot to <wal-dir>/tree-N.snap and trim the ring + WAL (0 = off)")
		degAfter = flag.Duration("degraded-after", 2*time.Second, "follower mode: staleness bound before reporting degraded (0 = only the consecutive-error threshold)")

		faultSpec = flag.String("faults", "", "deterministic fault schedule, e.g. 'wal.append:after=100:torn=0.5:times=1;follower.rpc:p=0.2:err=partition' (chaos testing; '' = off)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed driving the -faults schedule (same seed + same traffic = same faults)")

		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address ('' = off)")
		slowWave    = flag.Duration("slow-wave", 0, "log a structured trace of every wave flush at least this long (0 = off)")
		accessLog   = flag.Bool("access-log", false, "log every HTTP request: method, path, status, bytes, duration")
		traceCap    = flag.Int("trace-cap", 0, "wave trace records retained for GET /v1/trace (0 = default 256)")
		traceSample = flag.Int("trace-sample", 0, "trace every Nth wave flush (0 = default 16)")
		spanCap     = flag.Int("span-cap", 0, "distributed-trace spans retained for GET /v1/spans (0 = default 4096)")
		spanLog     = flag.String("span-log", "", "mirror every recorded span to this append-only JSONL file ('' = off)")
		spanLogMax  = flag.Int64("span-log-max-bytes", 0, "rotate the -span-log file before it exceeds this size (0 = no rotation)")
		spanLogKeep = flag.Int("span-log-keep", 3, "rotated -span-log generations to keep (<file>.1 .. <file>.N)")
		eventCap    = flag.Int("event-cap", 0, "lifecycle events retained for GET /v1/events (0 = default 1024)")
		eventLog    = flag.String("event-log", "", "mirror every lifecycle event to this append-only JSONL file ('' = off)")
		hotK        = flag.Int("hot-k", 0, "trees tracked per hot-spot dimension for GET /v1/hot (0 = default 16)")

		anomGate     = flag.Float64("anomaly-gate", 0, "anomaly cheap gate: sample must exceed EWMA + this many sigma (0 = default 4)")
		anomMad      = flag.Float64("anomaly-mad", 0, "anomaly robust confirm: sample must exceed median + this many scaled MADs (0 = default 5)")
		anomWarmup   = flag.Int("anomaly-warmup", 0, "samples a signal needs before it may trip (0 = default 64)")
		anomMin      = flag.Duration("anomaly-min", 0, "absolute floor: samples at or below this never trip (0 = default 1ms)")
		anomCooldown = flag.Duration("anomaly-cooldown", 0, "per-signal holdoff between anomaly trips (0 = default 10s)")
		anomBoost    = flag.Duration("anomaly-boost", 0, "how long each anomaly trip boosts trace sampling (0 = default 3s)")

		logFormat = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	switch *logFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fmt.Fprintf(os.Stderr, "dyntcd: -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}

	// One runtime scheduler pool for the whole process: every tree's
	// waves, the cross-tree query scatter and (in follower mode) replica
	// replay share its workers, so a 1024-tree forest on a 16-core box
	// runs 16-wide instead of spawning a pool per tree.
	pool := dyntc.NewSchedPool(*schedW)

	// One registry + trace ring + span log per process; every engine, the
	// scheduler, the wave logs and the query planner report into it
	// (GET /metrics, /v1/trace, /v1/spans).
	proc := "leader"
	if *follow != "" {
		proc = "follower"
	}
	ob, err := newObsBundle(obsConfig{
		traceCap: *traceCap, spanCap: *spanCap, proc: proc,
		spanPath: *spanLog, spanMaxBytes: *spanLogMax, spanKeep: *spanLogKeep,
		eventCap: *eventCap, eventPath: *eventLog, hotK: *hotK,
		anomaly: dyntc.AnomalyConfig{
			GateK: *anomGate, MadK: *anomMad, Warmup: *anomWarmup,
			MinNS: float64(*anomMin), Cooldown: *anomCooldown, Boost: *anomBoost,
		},
	})
	if err != nil {
		fatal("observability init", "err", err)
	}
	defer ob.spans.Close()
	defer ob.events.Close()
	// Scheduler task spans ride the same exporter, sparsely sampled.
	pool.SetSpans(ob.spans, schedSpanSample, pram.StepKindNames)
	// The collapse monitor samples pool utilization every few seconds and
	// journals a sched.collapse event when workers go idle with tasks
	// still queued (the starvation signature).
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for range t.C {
			pool.CheckCollapse(ob.events)
		}
	}()
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}

	// Deterministic fault schedule (chaos testing): a crash rule takes the
	// whole process down, like the real fault it stands in for.
	var faults *dyntc.FaultInjector
	if *faultSpec != "" {
		var err error
		if faults, err = dyntc.FaultInjectorFromSpec(*faultSeed, *faultSpec); err != nil {
			fatal("bad -faults spec", "err", err)
		}
		faults.OnCrash(func(site string, _ dyntc.FaultRule) {
			fatal("injected crash", "site", site)
		})
	}

	if *walDir != "" {
		// Leaders log into it now; a follower needs it the moment it is
		// promoted, so create it up front in both modes.
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			fatal("wal dir", "err", err)
		}
	}
	opts := dyntc.BatchOptions{
		MaxBatch: *maxBatch, Window: *window, Queue: *queue, Workers: *workers, Pool: pool,
		Metrics: ob.engine, Trace: ob.trace, TraceSample: *traceSample, Faults: faults,
		Spans: ob.spans,
	}
	ob.engineHooks(&opts)
	if *slowWave > 0 {
		opts.SlowWave = logSlowWave
		opts.SlowWaveThreshold = *slowWave
	}

	if *follow != "" {
		runFollower(*addr, *follow, *poll, *queryEP, pool, ob, *accessLog, followerConfig{
			opts: opts, walDir: *walDir, logCap: *logCap,
			degradedAfter: *degAfter, faults: faults, faultSeed: *faultSeed,
		})
		return
	}

	s := newServerWAL(opts, *walDir, *logCap)
	s.compactEvery = *compact
	s.faults = faults
	// Observe before recovering: startup recovery journals its lifecycle
	// events (torn tails, epoch adoptions) and the recovered trees' WALs
	// pick up their instruments as attachLog re-attaches them.
	s.observe(ob)
	if err := s.recover(); err != nil {
		fatal("startup recovery", "err", err)
	}
	var handler http.Handler = s.routes()
	if *accessLog {
		handler = withAccessLog(handler)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	slog.Info("dyntcd listening", "addr", *addr, "window", *window, "maxbatch", *maxBatch,
		"workers", *workers, "sched_workers", pool.Workers(), "wal", *walDir)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", "err", err)
	}
	// ListenAndServe returns as soon as Shutdown *starts*; wait for it to
	// finish draining in-flight handlers, then drain every engine's queue
	// and flush the wave logs — the graceful path loses no acknowledged
	// write and no logged wave.
	stop()
	<-shutdownDone
	s.forest.Close()
	s.closeLogs()
	slog.Info("drained and stopped")
}

// followerConfig carries the failover-relevant settings into follower
// mode: the engine options and WAL placement the process adopts if it is
// promoted to leader, the degraded-mode staleness bound, and the fault
// schedule.
type followerConfig struct {
	opts          dyntc.BatchOptions
	walDir        string
	logCap        int
	degradedAfter time.Duration
	faults        *dyntc.FaultInjector
	faultSeed     uint64
}

// runFollower serves read-only replicas of a leader's trees.
func runFollower(addr, leader string, poll time.Duration, queryEndpoint bool, pool *dyntc.SchedPool, ob *obsBundle, accessLog bool, cfg followerConfig) {
	f := newFollowerOn(leader, poll, pool)
	f.queryEndpoint = queryEndpoint
	f.opts = cfg.opts
	f.walDir = cfg.walDir
	f.logCap = cfg.logCap
	f.degradedAfter = cfg.degradedAfter
	if cfg.faults != nil {
		f.setFaults(cfg.faults, cfg.faultSeed)
	}
	f.observe(ob)
	go f.run()
	// handler() switches to the promoted leader's mux atomically when
	// POST /v1/promote lands.
	var handler http.Handler = f.handler()
	if accessLog {
		handler = withAccessLog(handler)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	slog.Info("dyntcd following", "leader", leader, "addr", addr, "poll", poll)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", "err", err)
	}
	stop()
	<-shutdownDone
	f.Close()
	slog.Info("follower stopped")
}

package main

// Observability wiring: one metrics registry per process (GET /metrics,
// Prometheus text format, zero external deps), a sampled wave-trace ring
// (GET /v1/trace), an opt-in access log, a structured slow-wave log and
// an optional pprof listener. Leader and follower share all of it; the
// per-layer instrument bundles live with their layers (internal/obs,
// internal/engine, internal/sched, internal/replog, internal/query) —
// this file only composes them and adds the cross-layer gauges (lag,
// applied sequence) that need to see engines, logs and replicas side by
// side.

import (
	"errors"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dyntc"
	"dyntc/internal/obs"
	"dyntc/internal/pram"
	"dyntc/internal/replog"
)

// Anomaly detector signal names: each is one windowed latency stream the
// flight recorder watches. Leader processes feed the first three; the
// replication-lag pair is follower-side.
const (
	sigEngineFlush  = "engine.flush"
	sigWALAppend    = "wal.append"
	sigQueryJoin    = "query.join"
	sigReplicaFetch = "replica.fetch"
	sigReplicaApply = "replica.apply"
)

// hotRanks is the fixed label cardinality of the dyntc_hot_tree_* gauge
// families: the top hotRanks sketch entries per dimension export, however
// many trees the sketch tracks.
const hotRanks = 8

// obsBundle is the process-wide observability state: the registry every
// layer's families live on, plus the instrument bundles the serving code
// feeds directly (snapshots, re-bootstraps) and the span log every layer
// exports distributed-trace spans into.
type obsBundle struct {
	reg    *dyntc.MetricsRegistry
	engine *dyntc.EngineMetrics
	trace  *dyntc.WaveTraceRing
	replog *replog.Metrics
	query  *dyntc.QueryMetrics

	// spans is the process-wide span exporter: engines (via
	// BatchOptions.Spans), wave logs (via replog.Metrics.Spans), the
	// follower's replay loop and the HTTP ingest layer all record into it;
	// GET /v1/spans serves its ring.
	spans *dyntc.SpanLog

	// events is the lifecycle event journal: every layer's state changes
	// (promotions, fences, degraded transitions, WAL recovery, shed
	// bursts, anomalies) land here; GET /v1/events serves its ring and
	// per-type counts export as dyntc_events_total.
	events *dyntc.EventJournal
	// boost is the flight recorder's sampling override, shared by every
	// engine through BatchOptions.Boost; anomaly trips arm it.
	boost *dyntc.TraceBoost
	// anomaly is the flight recorder: streaming latency detectors that,
	// on a confirmed outlier, journal an anomaly event with a runtime
	// snapshot and arm the boost.
	anomaly *dyntc.AnomalyRecorder
	// Per-tree hot-spot sketches (GET /v1/hot): wave cost in flush
	// nanoseconds, request counts, and shed counts.
	hotCost *dyntc.TopK
	hotReqs *dyntc.TopK
	hotShed *dyntc.TopK

	// proc labels this process's spans, events and debug bundles.
	proc string
	// bundleExtra, set by the serving role's observe, adds its live stats
	// (engine aggregate or follower health) to GET /v1/debug/bundle.
	bundleExtra func() map[string]any

	// Snapshot traffic, both directions: leader compaction/GET encodes,
	// follower bootstrap downloads.
	snapshotBytes   *obs.Histogram
	snapshotSeconds *obs.Histogram
	// rebootstraps counts follower replicas rebuilt from a fresh snapshot
	// after falling behind a trimmed log or diverging on replay.
	rebootstraps *obs.Counter
	// promotions counts follower→leader failovers this process performed.
	promotions *obs.Counter
}

// obsConfig sizes the process-wide observability state: ring capacities,
// the span/event JSONL mirrors (with size-based rotation for spans), the
// hot-spot sketch width and the anomaly detector tuning. The zero value
// of every field means "default".
type obsConfig struct {
	traceCap, spanCap int
	proc              string
	spanPath          string
	spanMaxBytes      int64
	spanKeep          int
	eventCap          int
	eventPath         string
	hotK              int
	anomaly           dyntc.AnomalyConfig
}

// newObsBundle builds the registry and every process-level family. The
// engine histogram bundle, the trace ring, the span log, the event
// journal and the anomaly flight recorder are created here and passed
// into BatchOptions (engineHooks), so all trees share one set of
// instruments. cfg.proc labels this process's spans and events
// ("leader", "follower").
func newObsBundle(cfg obsConfig) (*obsBundle, error) {
	spans, err := dyntc.NewSpanLogRotating(cfg.spanCap, cfg.proc, cfg.spanPath, cfg.spanMaxBytes, cfg.spanKeep)
	if err != nil {
		return nil, err
	}
	events, err := dyntc.NewEventJournal(cfg.eventCap, cfg.proc, cfg.eventPath)
	if err != nil {
		spans.Close()
		return nil, err
	}
	reg := dyntc.NewMetricsRegistry()
	boost := &dyntc.TraceBoost{}
	b := &obsBundle{
		reg:     reg,
		engine:  dyntc.NewEngineMetrics(reg),
		trace:   dyntc.NewWaveTraceRing(cfg.traceCap),
		replog:  replog.NewMetrics(reg),
		query:   dyntc.NewQueryMetrics(reg),
		spans:   spans,
		events:  events,
		boost:   boost,
		anomaly: dyntc.NewAnomalyRecorder(cfg.anomaly, events, boost),
		hotCost: dyntc.NewTopK(cfg.hotK),
		hotReqs: dyntc.NewTopK(cfg.hotK),
		hotShed: dyntc.NewTopK(cfg.hotK),
		proc:    cfg.proc,
		snapshotBytes: reg.HistogramWith("dyntc_replog_snapshot_bytes",
			"size of one tree snapshot encode or download", obs.SizeBuckets, 1),
		snapshotSeconds: reg.Seconds("dyntc_replog_snapshot_seconds",
			"latency of one tree snapshot encode or download"),
		rebootstraps: reg.Counter("dyntc_replog_rebootstraps_total",
			"follower replicas rebuilt from a fresh snapshot (truncated log or replay divergence)"),
		promotions: reg.Counter("dyntc_failover_promotions_total",
			"follower-to-leader promotions performed by this process"),
	}
	// Every WAL append records the sealed→appended lag and its wal.append
	// span through the replog bundle.
	b.replog.Spans = spans
	// Per-type event counts (dyntc_events_total) ride the registry too.
	events.Observe(reg)
	// Hot-tree attribution exports at fixed cardinality: the top hotRanks
	// sketch entries per dimension, as (tree id, weight) gauge pairs.
	for _, dim := range []struct {
		name string
		t    *dyntc.TopK
	}{{"cost_ns", b.hotCost}, {"reqs", b.hotReqs}, {"shed", b.hotShed}} {
		t := dim.t
		for rank := 0; rank < hotRanks; rank++ {
			rank := rank
			reg.GaugeFunc("dyntc_hot_tree_id",
				"tree id at this rank of the hot-spot sketch (0 = unoccupied rank)",
				func() float64 {
					if items := t.Snapshot(); rank < len(items) {
						return float64(items[rank].Key)
					}
					return 0
				}, "dim", dim.name, "rank", strconv.Itoa(rank))
			reg.GaugeFunc("dyntc_hot_tree_weight",
				"estimated weight (dim units) of the tree at this rank of the hot-spot sketch",
				func() float64 {
					if items := t.Snapshot(); rank < len(items) {
						return float64(items[rank].Count)
					}
					return 0
				}, "dim", dim.name, "rank", strconv.Itoa(rank))
		}
	}
	reg.CounterFunc("dyntc_anomaly_trips_total",
		"anomaly detector trips (confirmed latency outliers) this process journaled",
		func() float64 { return float64(b.anomaly.Trips()) })
	reg.GaugeFunc("dyntc_anomaly_active",
		"1 while an anomaly trip's trace-sampling boost window is open, else 0",
		func() float64 {
			if b.anomaly.Active() {
				return 1
			}
			return 0
		})
	// Process health families (goroutines, heap, GC pauses, build info)
	// ride the same registry on leader and follower alike.
	dyntc.RegisterGoRuntime(reg)
	events.Emit(obs.EvProcessStart, "observability initialized", map[string]any{
		"pid": os.Getpid(), "go": runtime.Version(), "proc": cfg.proc,
	})
	return b, nil
}

// engineHooks wires the bundle's engine-facing callbacks into
// BatchOptions: the lifecycle journal, the anomaly boost, and the
// per-flush / per-shed sinks feeding hot-spot attribution and the
// flush-latency anomaly detector. Nil-safe, so servers built without
// observability skip it all.
func (b *obsBundle) engineHooks(opts *dyntc.BatchOptions) {
	if b == nil {
		return
	}
	opts.Events = b.events
	opts.Boost = b.boost
	opts.FlushSink = b.flushDone
	opts.ShedSink = b.shedDone
}

// flushDone is the BatchOptions.FlushSink: every flush charges its wall
// time and request count to its tree's hot-spot sketches and feeds the
// flush-latency anomaly detector.
func (b *obsBundle) flushDone(tree uint64, reqs int, flushNS int64) {
	b.hotCost.Add(tree, uint64(flushNS))
	b.hotReqs.Add(tree, uint64(reqs))
	b.anomaly.Observe(sigEngineFlush, flushNS)
}

// shedDone is the BatchOptions.ShedSink: shed requests are attributed to
// the tree that shed them, so /v1/hot answers "who is being turned away".
func (b *obsBundle) shedDone(tree uint64, n int) {
	b.hotShed.Add(tree, uint64(n))
}

// journal returns the bundle's event journal, nil-safely: every Journal
// method is itself nil-safe, so call sites can emit unconditionally.
func (b *obsBundle) journal() *dyntc.EventJournal {
	if b == nil {
		return nil
	}
	return b.events
}

// recorder returns the anomaly flight recorder, nil-safely.
func (b *obsBundle) recorder() *dyntc.AnomalyRecorder {
	if b == nil {
		return nil
	}
	return b.anomaly
}

// snapshotDone feeds the snapshot instruments; safe on a nil bundle so
// test servers without observability skip it transparently.
func (b *obsBundle) snapshotDone(bytes int, d time.Duration) {
	if b == nil {
		return
	}
	b.snapshotBytes.Observe(int64(bytes))
	b.snapshotSeconds.Observe(int64(d))
}

// handleMetrics renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (b *obsBundle) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = b.reg.WriteTo(w)
}

// handleTrace dumps the wave-trace ring, oldest first; ?n= limits to the
// most recent n records.
func (b *obsBundle) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, apiError{http.StatusBadRequest, "bad n"})
			return
		}
		n = v
	}
	traces := b.trace.Last(n)
	if traces == nil {
		traces = []dyntc.WaveTraceRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  b.trace.Total(),
		"traces": traces,
	})
}

// handleSpans serves the span log. ?trace=<16 hex> returns one
// distributed trace's spans, ?seq=N returns the spans of wave sequence N
// (the cross-process join key), ?n=N the most recent N; with no filter,
// everything retained. Always oldest first.
func (b *obsBundle) handleSpans(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var spans []dyntc.SpanRecord
	switch {
	case q.Get("trace") != "":
		id, err := obs.ParseSpanID(q.Get("trace"))
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad trace id"})
			return
		}
		spans = b.spans.ByTrace(id)
	case q.Get("seq") != "":
		seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad seq"})
			return
		}
		spans = b.spans.BySeq(seq)
	default:
		n := b.spans.Len()
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				writeErr(w, apiError{http.StatusBadRequest, "bad n"})
				return
			}
			n = v
		}
		spans = b.spans.Last(n)
	}
	if spans == nil {
		spans = []dyntc.SpanRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total": b.spans.Total(),
		"spans": spans,
	})
}

// handleEvents serves the lifecycle event journal, oldest first.
// ?type=X filters to one event type (a trailing dot matches the prefix:
// type=anomaly. returns every anomaly signal), ?since=SEQ returns events
// after that journal sequence number, ?n=N caps the result to the most
// recent N.
func (b *obsBundle) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if s := q.Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad since"})
			return
		}
		since = v
	}
	n := 0
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeErr(w, apiError{http.StatusBadRequest, "bad n"})
			return
		}
		n = v
	}
	events := b.events.Query(q.Get("type"), since, n)
	if events == nil {
		events = []dyntc.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  b.events.Total(),
		"events": events,
	})
}

// hotDim renders one hot-spot sketch dimension: total weight observed
// and the ranked entries, each bracketing the true weight within its err.
func hotDim(t *dyntc.TopK) map[string]any {
	items := t.Snapshot()
	if items == nil {
		items = []dyntc.TopKItem{}
	}
	return map[string]any{"total": t.Total(), "trees": items}
}

// handleHot serves per-tree hot-spot attribution: which trees are
// consuming wave execution time, which are receiving the requests, and
// which are shedding.
func (b *obsBundle) handleHot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cost": hotDim(b.hotCost),
		"reqs": hotDim(b.hotReqs),
		"shed": hotDim(b.hotShed),
	})
}

// handleBundle serves the one-shot debug bundle: everything a first
// responder pastes into an incident channel — build and process info,
// the full metrics text, recent lifecycle events, recent spans and wave
// traces, hot-spot attribution, the flight recorder's state, and the
// serving role's live stats — as one JSON document.
func (b *obsBundle) handleBundle(w http.ResponseWriter, r *http.Request) {
	var metrics strings.Builder
	_, _ = b.reg.WriteTo(&metrics)
	events := b.events.Last(256)
	if events == nil {
		events = []dyntc.Event{}
	}
	spans := b.spans.Last(256)
	if spans == nil {
		spans = []dyntc.SpanRecord{}
	}
	traces := b.trace.Last(64)
	if traces == nil {
		traces = []dyntc.WaveTraceRecord{}
	}
	bundle := map[string]any{
		"generated_at": time.Now().UTC().Format(time.RFC3339Nano),
		"proc":         b.proc,
		"pid":          os.Getpid(),
		"go":           runtime.Version(),
		"goroutines":   runtime.NumGoroutine(),
		"args":         os.Args,
		"events":       events,
		"spans":        spans,
		"traces":       traces,
		"hot": map[string]any{
			"cost": hotDim(b.hotCost),
			"reqs": hotDim(b.hotReqs),
			"shed": hotDim(b.hotShed),
		},
		"anomaly": map[string]any{
			"trips":          b.anomaly.Trips(),
			"active":         b.anomaly.Active(),
			"boost_deadline": b.boost.Deadline(),
		},
		"metrics": metrics.String(),
	}
	if b.bundleExtra != nil {
		for k, v := range b.bundleExtra() {
			bundle[k] = v
		}
	}
	writeJSON(w, http.StatusOK, bundle)
}

// statsCache memoizes one forest-wide stats aggregation per TTL: a
// scrape reads a dozen engine counter funcs, and each would otherwise
// walk every engine's stats independently.
type statsCache struct {
	fn  func() dyntc.EngineStats
	ttl time.Duration

	mu sync.Mutex
	at time.Time
	st dyntc.EngineStats
}

func (c *statsCache) get() dyntc.EngineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > c.ttl {
		c.st = c.fn()
		c.at = time.Now()
	}
	return c.st
}

// observe registers the leader's cross-layer families: engine counters
// over a cached forest aggregate, scheduler gauges, and the replication
// gauges that pair engines with their wave logs.
func (s *server) observe(b *obsBundle) {
	s.obs = b
	cache := &statsCache{fn: s.forest.Stats, ttl: 250 * time.Millisecond}
	dyntc.RegisterEngineStats(b.reg, cache.get)
	// Anomaly events carry a snapshot of the engine aggregate at trip
	// time; the debug bundle carries the same plus scheduler state.
	b.anomaly.SetSnapshot(func() map[string]any {
		st := cache.get()
		return map[string]any{
			"queue_depth":   st.QueueDepth,
			"flushes":       st.Flushes,
			"waves":         st.Waves,
			"shed":          st.Shed,
			"cur_max_batch": st.CurMaxBatch,
			"flush_p50_us":  st.FlushP50US,
			"flush_p99_us":  st.FlushP99US,
		}
	})
	b.bundleExtra = func() map[string]any {
		m := map[string]any{
			"role":            "leader",
			"trees":           s.forest.Len(),
			"engine":          cache.get(),
			"epoch":           s.maxEpoch(),
			"fenced_at_epoch": s.fenced.Load(),
		}
		if s.pool != nil {
			m["sched"] = s.pool.Stats()
		}
		return m
	}
	if s.pool != nil {
		s.pool.Observe(b.reg, pram.StepKindNames)
	}
	s.forest.SetQueryMetrics(b.query)
	b.reg.GaugeFunc("dyntc_replog_applied_seq",
		"sum over trees of the wave change-log position (leader: last logged wave)",
		func() float64 {
			var sum float64
			s.logs.Range(func(_, v any) bool {
				sum += float64(v.(*dyntc.WaveLog).LastSeq())
				return true
			})
			return sum
		})
	b.reg.GaugeFunc("dyntc_replog_lag",
		"max waves behind: leader reports applied-but-unlogged (normally 0), follower reports leader_seq - applied_seq",
		func() float64 {
			var max float64
			s.forest.Each(func(id dyntc.TreeID, en *dyntc.Engine) {
				v, ok := s.logs.Load(id)
				if !ok {
					return
				}
				if d := float64(en.AppliedSeq()) - float64(v.(*dyntc.WaveLog).LastSeq()); d > max {
					max = d
				}
			})
			return max
		})
	b.reg.GaugeFunc("dyntc_epoch",
		"highest leadership epoch across served trees (follower: trusted term)",
		func() float64 { return float64(s.maxEpoch()) })
	b.reg.GaugeFunc("dyntc_fenced_epoch",
		"newer epoch a demoted leader fenced itself read-only at (0 = serving writes)",
		func() float64 { return float64(s.fenced.Load()) })
	b.reg.GaugeFunc("dyntc_degraded",
		"1 when serving in degraded mode (follower cut off from its leader), else 0",
		func() float64 { return 0 })
}

// observe registers the follower's cross-layer families: scheduler
// gauges, query metrics on the replica planner, and replication lag
// against the leader's last observed log position.
func (f *followerServer) observe(b *obsBundle) {
	f.obs = b
	if f.pool != nil {
		f.pool.Observe(b.reg, pram.StepKindNames)
	}
	f.planner.SetMetrics(b.query)
	// Replication-lag anomalies snapshot the poll loop's health; the
	// debug bundle carries the same plus scheduler state.
	b.anomaly.SetSnapshot(func() map[string]any {
		degraded, staleness, consecErrs, backoff := f.health()
		return map[string]any{
			"degraded":           degraded,
			"staleness_ms":       staleness.Milliseconds(),
			"consecutive_errors": consecErrs,
			"backoff_ms":         backoff.Milliseconds(),
		}
	})
	b.bundleExtra = func() map[string]any {
		degraded, staleness, consecErrs, backoff := f.health()
		m := map[string]any{
			"role":               "follower",
			"leader":             f.leader,
			"degraded":           degraded,
			"staleness_ms":       staleness.Milliseconds(),
			"consecutive_errors": consecErrs,
			"backoff_ms":         backoff.Milliseconds(),
		}
		if f.pool != nil {
			m["sched"] = f.pool.Stats()
		}
		return m
	}
	snap := func(fn func(rep *replica) uint64, fold func(acc, v float64) float64) float64 {
		f.mu.Lock()
		reps := make([]*replica, 0, len(f.reps))
		for _, rep := range f.reps {
			reps = append(reps, rep)
		}
		f.mu.Unlock()
		var acc float64
		for _, rep := range reps {
			acc = fold(acc, float64(fn(rep)))
		}
		return acc
	}
	b.reg.GaugeFunc("dyntc_replog_applied_seq",
		"sum over trees of the wave change-log position (leader: last logged wave)",
		func() float64 {
			return snap(func(rep *replica) uint64 { return rep.fo.Seq() },
				func(acc, v float64) float64 { return acc + v })
		})
	b.reg.GaugeFunc("dyntc_replog_lag",
		"max waves behind: leader reports applied-but-unlogged (normally 0), follower reports leader_seq - applied_seq",
		func() float64 {
			return snap(func(rep *replica) uint64 {
				rep.mu.Lock()
				leader := rep.leaderSeq
				rep.mu.Unlock()
				applied := rep.fo.Seq()
				if leader > applied {
					return leader - applied
				}
				return 0
			}, func(acc, v float64) float64 {
				if v > acc {
					return v
				}
				return acc
			})
		})
	b.reg.GaugeFunc("dyntc_epoch",
		"highest leadership epoch across served trees (follower: trusted term)",
		func() float64 {
			return snap(func(rep *replica) uint64 { return rep.fo.Epoch() },
				func(acc, v float64) float64 {
					if v > acc {
						return v
					}
					return acc
				})
		})
	b.reg.GaugeFunc("dyntc_degraded",
		"1 when serving in degraded mode (follower cut off from its leader), else 0",
		func() float64 {
			if degraded, _, _, _ := f.health(); degraded {
				return 1
			}
			return 0
		})
	b.reg.GaugeFunc("dyntc_follower_backoff_seconds",
		"current leader-poll backoff after consecutive failed rounds (0 = healthy cadence)",
		func() float64 {
			_, _, _, backoff := f.health()
			return backoff.Seconds()
		})
}

// --- access log (opt-in, -access-log) ---

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// withAccessLog logs one structured line per request — method, path,
// status, bytes written, duration, and the distributed trace the request
// joined (when it carried or was assigned one) — shared by leader and
// follower muxes.
func withAccessLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_us", time.Since(t0).Microseconds(),
		}
		// The handler echoes X-Dyntc-Trace on traced requests; correlate
		// the access line with the trace it belongs to.
		if tr := rec.Header().Get("X-Dyntc-Trace"); tr != "" {
			attrs = append(attrs, "trace", tr)
		}
		slog.Info("access", attrs...)
	})
}

// --- slow-wave log (-slow-wave) ---

// logSlowWave is the BatchOptions.SlowWave hook: one structured line per
// wave flush that crossed the threshold, carrying the per-stage
// breakdown and, when the flush was span-sampled, the trace ID to look
// the full span tree up with (/v1/spans?trace=).
func logSlowWave(t dyntc.WaveTraceRecord) {
	attrs := []any{
		"tree", t.Tree,
		"seq", t.Seq,
		"epoch", t.Epoch,
		"reqs", t.Reqs,
		"waves", t.Waves,
		"coalesce_ns", t.Coalesce,
		"flush_ns", t.Flush,
		"grow_ns", t.Grow,
		"collapse_ns", t.Collapse,
		"set_leaf_ns", t.SetLeaf,
		"set_op_ns", t.SetOp,
		"seal_ns", t.Seal,
		"value_ns", t.Value,
		"barrier_ns", t.Barrier,
		"heal_records", t.HealRecords,
		"resims", t.Resims,
		"trace_records", t.TraceRecords,
	}
	if t.TraceID != 0 {
		attrs = append(attrs, "trace", t.TraceID.String())
	}
	slog.Warn("slow wave", attrs...)
}

// --- pprof (-pprof-addr) ---

// startPprof serves net/http/pprof on its own listener, so profiling
// stays off the serving mux (and off its access log and any fronting
// load balancer).
func startPprof(addr string) {
	go func() {
		srv := &http.Server{
			Addr: addr,
			// net/http/pprof registers on the default mux; nothing else in
			// this process does.
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		slog.Info("pprof listening", "addr", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("pprof server failed", "err", err)
		}
	}()
}

package main

// Observability wiring: one metrics registry per process (GET /metrics,
// Prometheus text format, zero external deps), a sampled wave-trace ring
// (GET /v1/trace), an opt-in access log, a structured slow-wave log and
// an optional pprof listener. Leader and follower share all of it; the
// per-layer instrument bundles live with their layers (internal/obs,
// internal/engine, internal/sched, internal/replog, internal/query) —
// this file only composes them and adds the cross-layer gauges (lag,
// applied sequence) that need to see engines, logs and replicas side by
// side.

import (
	"errors"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"strconv"
	"sync"
	"time"

	"dyntc"
	"dyntc/internal/obs"
	"dyntc/internal/pram"
	"dyntc/internal/replog"
)

// obsBundle is the process-wide observability state: the registry every
// layer's families live on, plus the instrument bundles the serving code
// feeds directly (snapshots, re-bootstraps) and the span log every layer
// exports distributed-trace spans into.
type obsBundle struct {
	reg    *dyntc.MetricsRegistry
	engine *dyntc.EngineMetrics
	trace  *dyntc.WaveTraceRing
	replog *replog.Metrics
	query  *dyntc.QueryMetrics

	// spans is the process-wide span exporter: engines (via
	// BatchOptions.Spans), wave logs (via replog.Metrics.Spans), the
	// follower's replay loop and the HTTP ingest layer all record into it;
	// GET /v1/spans serves its ring.
	spans *dyntc.SpanLog

	// Snapshot traffic, both directions: leader compaction/GET encodes,
	// follower bootstrap downloads.
	snapshotBytes   *obs.Histogram
	snapshotSeconds *obs.Histogram
	// rebootstraps counts follower replicas rebuilt from a fresh snapshot
	// after falling behind a trimmed log or diverging on replay.
	rebootstraps *obs.Counter
	// promotions counts follower→leader failovers this process performed.
	promotions *obs.Counter
}

// newObsBundle builds the registry and every process-level family. The
// engine histogram bundle, the trace ring and the span log are created
// here and passed into BatchOptions, so all trees share one set of
// instruments. proc labels this process's spans ("leader", "follower");
// a non-empty spanPath mirrors spans to an append-only JSONL file.
func newObsBundle(traceCap, spanCap int, proc, spanPath string) (*obsBundle, error) {
	spans, err := dyntc.NewSpanLog(spanCap, proc, spanPath)
	if err != nil {
		return nil, err
	}
	reg := dyntc.NewMetricsRegistry()
	b := &obsBundle{
		reg:    reg,
		engine: dyntc.NewEngineMetrics(reg),
		trace:  dyntc.NewWaveTraceRing(traceCap),
		replog: replog.NewMetrics(reg),
		query:  dyntc.NewQueryMetrics(reg),
		spans:  spans,
		snapshotBytes: reg.HistogramWith("dyntc_replog_snapshot_bytes",
			"size of one tree snapshot encode or download", obs.SizeBuckets, 1),
		snapshotSeconds: reg.Seconds("dyntc_replog_snapshot_seconds",
			"latency of one tree snapshot encode or download"),
		rebootstraps: reg.Counter("dyntc_replog_rebootstraps_total",
			"follower replicas rebuilt from a fresh snapshot (truncated log or replay divergence)"),
		promotions: reg.Counter("dyntc_failover_promotions_total",
			"follower-to-leader promotions performed by this process"),
	}
	// Every WAL append records the sealed→appended lag and its wal.append
	// span through the replog bundle.
	b.replog.Spans = spans
	// Process health families (goroutines, heap, GC pauses, build info)
	// ride the same registry on leader and follower alike.
	dyntc.RegisterGoRuntime(reg)
	return b, nil
}

// snapshotDone feeds the snapshot instruments; safe on a nil bundle so
// test servers without observability skip it transparently.
func (b *obsBundle) snapshotDone(bytes int, d time.Duration) {
	if b == nil {
		return
	}
	b.snapshotBytes.Observe(int64(bytes))
	b.snapshotSeconds.Observe(int64(d))
}

// handleMetrics renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (b *obsBundle) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = b.reg.WriteTo(w)
}

// handleTrace dumps the wave-trace ring, oldest first; ?n= limits to the
// most recent n records.
func (b *obsBundle) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, apiError{http.StatusBadRequest, "bad n"})
			return
		}
		n = v
	}
	traces := b.trace.Last(n)
	if traces == nil {
		traces = []dyntc.WaveTraceRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  b.trace.Total(),
		"traces": traces,
	})
}

// handleSpans serves the span log. ?trace=<16 hex> returns one
// distributed trace's spans, ?seq=N returns the spans of wave sequence N
// (the cross-process join key), ?n=N the most recent N; with no filter,
// everything retained. Always oldest first.
func (b *obsBundle) handleSpans(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var spans []dyntc.SpanRecord
	switch {
	case q.Get("trace") != "":
		id, err := obs.ParseSpanID(q.Get("trace"))
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad trace id"})
			return
		}
		spans = b.spans.ByTrace(id)
	case q.Get("seq") != "":
		seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
		if err != nil {
			writeErr(w, apiError{http.StatusBadRequest, "bad seq"})
			return
		}
		spans = b.spans.BySeq(seq)
	default:
		n := b.spans.Len()
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				writeErr(w, apiError{http.StatusBadRequest, "bad n"})
				return
			}
			n = v
		}
		spans = b.spans.Last(n)
	}
	if spans == nil {
		spans = []dyntc.SpanRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total": b.spans.Total(),
		"spans": spans,
	})
}

// statsCache memoizes one forest-wide stats aggregation per TTL: a
// scrape reads a dozen engine counter funcs, and each would otherwise
// walk every engine's stats independently.
type statsCache struct {
	fn  func() dyntc.EngineStats
	ttl time.Duration

	mu sync.Mutex
	at time.Time
	st dyntc.EngineStats
}

func (c *statsCache) get() dyntc.EngineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > c.ttl {
		c.st = c.fn()
		c.at = time.Now()
	}
	return c.st
}

// observe registers the leader's cross-layer families: engine counters
// over a cached forest aggregate, scheduler gauges, and the replication
// gauges that pair engines with their wave logs.
func (s *server) observe(b *obsBundle) {
	s.obs = b
	cache := &statsCache{fn: s.forest.Stats, ttl: 250 * time.Millisecond}
	dyntc.RegisterEngineStats(b.reg, cache.get)
	if s.pool != nil {
		s.pool.Observe(b.reg, pram.StepKindNames)
	}
	s.forest.SetQueryMetrics(b.query)
	b.reg.GaugeFunc("dyntc_replog_applied_seq",
		"sum over trees of the wave change-log position (leader: last logged wave)",
		func() float64 {
			var sum float64
			s.logs.Range(func(_, v any) bool {
				sum += float64(v.(*dyntc.WaveLog).LastSeq())
				return true
			})
			return sum
		})
	b.reg.GaugeFunc("dyntc_replog_lag",
		"max waves behind: leader reports applied-but-unlogged (normally 0), follower reports leader_seq - applied_seq",
		func() float64 {
			var max float64
			s.forest.Each(func(id dyntc.TreeID, en *dyntc.Engine) {
				v, ok := s.logs.Load(id)
				if !ok {
					return
				}
				if d := float64(en.AppliedSeq()) - float64(v.(*dyntc.WaveLog).LastSeq()); d > max {
					max = d
				}
			})
			return max
		})
	b.reg.GaugeFunc("dyntc_epoch",
		"highest leadership epoch across served trees (follower: trusted term)",
		func() float64 { return float64(s.maxEpoch()) })
	b.reg.GaugeFunc("dyntc_fenced_epoch",
		"newer epoch a demoted leader fenced itself read-only at (0 = serving writes)",
		func() float64 { return float64(s.fenced.Load()) })
	b.reg.GaugeFunc("dyntc_degraded",
		"1 when serving in degraded mode (follower cut off from its leader), else 0",
		func() float64 { return 0 })
}

// observe registers the follower's cross-layer families: scheduler
// gauges, query metrics on the replica planner, and replication lag
// against the leader's last observed log position.
func (f *followerServer) observe(b *obsBundle) {
	f.obs = b
	if f.pool != nil {
		f.pool.Observe(b.reg, pram.StepKindNames)
	}
	f.planner.SetMetrics(b.query)
	snap := func(fn func(rep *replica) uint64, fold func(acc, v float64) float64) float64 {
		f.mu.Lock()
		reps := make([]*replica, 0, len(f.reps))
		for _, rep := range f.reps {
			reps = append(reps, rep)
		}
		f.mu.Unlock()
		var acc float64
		for _, rep := range reps {
			acc = fold(acc, float64(fn(rep)))
		}
		return acc
	}
	b.reg.GaugeFunc("dyntc_replog_applied_seq",
		"sum over trees of the wave change-log position (leader: last logged wave)",
		func() float64 {
			return snap(func(rep *replica) uint64 { return rep.fo.Seq() },
				func(acc, v float64) float64 { return acc + v })
		})
	b.reg.GaugeFunc("dyntc_replog_lag",
		"max waves behind: leader reports applied-but-unlogged (normally 0), follower reports leader_seq - applied_seq",
		func() float64 {
			return snap(func(rep *replica) uint64 {
				rep.mu.Lock()
				leader := rep.leaderSeq
				rep.mu.Unlock()
				applied := rep.fo.Seq()
				if leader > applied {
					return leader - applied
				}
				return 0
			}, func(acc, v float64) float64 {
				if v > acc {
					return v
				}
				return acc
			})
		})
	b.reg.GaugeFunc("dyntc_epoch",
		"highest leadership epoch across served trees (follower: trusted term)",
		func() float64 {
			return snap(func(rep *replica) uint64 { return rep.fo.Epoch() },
				func(acc, v float64) float64 {
					if v > acc {
						return v
					}
					return acc
				})
		})
	b.reg.GaugeFunc("dyntc_degraded",
		"1 when serving in degraded mode (follower cut off from its leader), else 0",
		func() float64 {
			if degraded, _, _, _ := f.health(); degraded {
				return 1
			}
			return 0
		})
	b.reg.GaugeFunc("dyntc_follower_backoff_seconds",
		"current leader-poll backoff after consecutive failed rounds (0 = healthy cadence)",
		func() float64 {
			_, _, _, backoff := f.health()
			return backoff.Seconds()
		})
}

// --- access log (opt-in, -access-log) ---

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// withAccessLog logs one structured line per request — method, path,
// status, bytes written, duration, and the distributed trace the request
// joined (when it carried or was assigned one) — shared by leader and
// follower muxes.
func withAccessLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_us", time.Since(t0).Microseconds(),
		}
		// The handler echoes X-Dyntc-Trace on traced requests; correlate
		// the access line with the trace it belongs to.
		if tr := rec.Header().Get("X-Dyntc-Trace"); tr != "" {
			attrs = append(attrs, "trace", tr)
		}
		slog.Info("access", attrs...)
	})
}

// --- slow-wave log (-slow-wave) ---

// logSlowWave is the BatchOptions.SlowWave hook: one structured line per
// wave flush that crossed the threshold, carrying the per-stage
// breakdown and, when the flush was span-sampled, the trace ID to look
// the full span tree up with (/v1/spans?trace=).
func logSlowWave(t dyntc.WaveTraceRecord) {
	attrs := []any{
		"tree", t.Tree,
		"seq", t.Seq,
		"epoch", t.Epoch,
		"reqs", t.Reqs,
		"waves", t.Waves,
		"coalesce_ns", t.Coalesce,
		"flush_ns", t.Flush,
		"grow_ns", t.Grow,
		"collapse_ns", t.Collapse,
		"set_leaf_ns", t.SetLeaf,
		"set_op_ns", t.SetOp,
		"seal_ns", t.Seal,
		"value_ns", t.Value,
		"barrier_ns", t.Barrier,
	}
	if t.TraceID != 0 {
		attrs = append(attrs, "trace", t.TraceID.String())
	}
	slog.Warn("slow wave", attrs...)
}

// --- pprof (-pprof-addr) ---

// startPprof serves net/http/pprof on its own listener, so profiling
// stays off the serving mux (and off its access log and any fronting
// load balancer).
func startPprof(addr string) {
	go func() {
		srv := &http.Server{
			Addr: addr,
			// net/http/pprof registers on the default mux; nothing else in
			// this process does.
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		slog.Info("pprof listening", "addr", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("pprof server failed", "err", err)
		}
	}()
}

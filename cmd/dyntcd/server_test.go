package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dyntc"
)

func startTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	s := newServer(dyntc.BatchOptions{})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.forest.Close()
	})
	return ts, s
}

// call issues a JSON request and decodes the response into out.
func call(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
}

func TestServerLifecycle(t *testing.T) {
	ts, _ := startTestServer(t)

	var health struct {
		OK bool `json:"ok"`
	}
	call(t, "GET", ts.URL+"/healthz", nil, 200, &health)
	if !health.OK {
		t.Fatal("health not ok")
	}

	var created struct {
		Tree     uint64 `json:"tree"`
		RootNode int    `json:"root_node"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 42}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)

	var grown struct {
		Left  int `json:"left"`
		Right int `json:"right"`
	}
	call(t, "POST", base+"/grow", map[string]any{"leaf": created.RootNode, "op": "add", "left": 3, "right": 4}, 200, &grown)

	var val struct {
		Value int64 `json:"value"`
	}
	call(t, "GET", base+"/value", nil, 200, &val)
	if val.Value != 7 {
		t.Fatalf("3+4 = %d", val.Value)
	}

	call(t, "POST", base+"/set-leaf", map[string]any{"leaf": grown.Left, "value": 10}, 200, nil)
	call(t, "GET", base+"/value", nil, 200, &val)
	if val.Value != 14 {
		t.Fatalf("10+4 = %d", val.Value)
	}

	call(t, "POST", base+"/set-op", map[string]any{"node": created.RootNode, "op": "mul"}, 200, nil)
	call(t, "GET", base+"/value", nil, 200, &val)
	if val.Value != 40 {
		t.Fatalf("10*4 = %d", val.Value)
	}

	call(t, "GET", base+"/value?node="+fmt.Sprint(grown.Right), nil, 200, &val)
	if val.Value != 4 {
		t.Fatalf("right leaf = %d", val.Value)
	}

	call(t, "POST", base+"/collapse", map[string]any{"node": created.RootNode, "value": 9}, 200, nil)
	call(t, "GET", base+"/value", nil, 200, &val)
	if val.Value != 9 {
		t.Fatalf("collapsed root = %d", val.Value)
	}

	var list struct {
		Trees []struct {
			Tree  uint64 `json:"tree"`
			Nodes int    `json:"nodes"`
			Root  int64  `json:"root"`
		} `json:"trees"`
	}
	call(t, "GET", ts.URL+"/v1/trees", nil, 200, &list)
	if len(list.Trees) != 1 || list.Trees[0].Nodes != 1 || list.Trees[0].Root != 9 {
		t.Fatalf("list: %+v", list)
	}

	call(t, "DELETE", base, nil, 200, nil)
	call(t, "GET", base+"/value", nil, 404, nil)
	call(t, "DELETE", base, nil, 404, nil)
}

func TestServerErrors(t *testing.T) {
	ts, _ := startTestServer(t)

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 5}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)

	// Unknown ring and op.
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"ring": "nope"}, 400, nil)
	call(t, "POST", base+"/grow", map[string]any{"leaf": 0, "op": "sub"}, 400, nil)
	// Dead node -> 404; wrong shape -> 409.
	call(t, "POST", base+"/set-leaf", map[string]any{"leaf": 99, "value": 1}, 404, nil)
	call(t, "POST", base+"/collapse", map[string]any{"node": 0, "value": 1}, 409, nil)
	// Unknown fields rejected.
	call(t, "POST", base+"/set-leaf", map[string]any{"leaf": 0, "value": 1, "zzz": 1}, 400, nil)
	// Missing tree.
	call(t, "GET", ts.URL+"/v1/trees/999/value", nil, 404, nil)
	call(t, "GET", ts.URL+"/v1/trees/abc/value", nil, 400, nil)

	// A batch with a malformed op is rejected whole: the valid set-leaf
	// ahead of it must not have executed.
	call(t, "POST", base+"/batch", map[string]any{"ops": []map[string]any{
		{"kind": "set-leaf", "node": 0, "value": 77},
		{"kind": "set-op", "node": 0, "op": "bogus"},
	}}, 400, nil)
	var val struct {
		Value int64 `json:"value"`
	}
	call(t, "GET", base+"/value", nil, 200, &val)
	if val.Value != 5 {
		t.Fatalf("rejected batch partially executed: root = %d, want 5", val.Value)
	}
}

func TestServerBatchAndStats(t *testing.T) {
	ts, _ := startTestServer(t)

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)

	var grown struct {
		Left  int `json:"left"`
		Right int `json:"right"`
	}
	call(t, "POST", base+"/grow", map[string]any{"leaf": 0, "op": "add", "left": 0, "right": 0}, 200, &grown)

	// One HTTP batch: two sets on distinct leaves + a root read + an
	// invalid op whose error is reported in place.
	var batch struct {
		Results []struct {
			Error string `json:"error"`
			Value *int64 `json:"value"`
		} `json:"results"`
	}
	call(t, "POST", base+"/batch", map[string]any{"ops": []map[string]any{
		{"kind": "set-leaf", "node": grown.Left, "value": 20},
		{"kind": "set-leaf", "node": grown.Right, "value": 22},
		{"kind": "root"},
		{"kind": "collapse", "node": grown.Left, "value": 1},
	}}, 200, &batch)
	if len(batch.Results) != 4 {
		t.Fatalf("results: %+v", batch)
	}
	if batch.Results[0].Error != "" || batch.Results[1].Error != "" {
		t.Fatalf("set errors: %+v", batch.Results)
	}
	if batch.Results[2].Value == nil || *batch.Results[2].Value != 42 {
		t.Fatalf("batched root: %+v", batch.Results[2])
	}
	if batch.Results[3].Error == "" {
		t.Fatal("collapse of a leaf should fail in place")
	}

	var stats struct {
		Engine dyntc.EngineStats `json:"engine"`
		Tree   struct {
			Nodes int `json:"nodes"`
		} `json:"tree"`
	}
	call(t, "GET", base+"/stats", nil, 200, &stats)
	if stats.Tree.Nodes != 3 || stats.Engine.Requests == 0 {
		t.Fatalf("tree stats: %+v", stats)
	}

	var forest struct {
		Trees  int               `json:"trees"`
		Engine dyntc.EngineStats `json:"engine"`
	}
	call(t, "GET", ts.URL+"/v1/stats", nil, 200, &forest)
	if forest.Trees != 1 || forest.Engine.Requests == 0 {
		t.Fatalf("forest stats: %+v", forest)
	}
}

// TestServerConcurrentClients drives many goroutines against two trees
// through the full HTTP stack and checks the final values.
func TestServerConcurrentClients(t *testing.T) {
	ts, _ := startTestServer(t)

	mkTree := func() (uint64, int, int) {
		var created struct {
			Tree uint64 `json:"tree"`
		}
		call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 0}, 201, &created)
		var grown struct {
			Left  int `json:"left"`
			Right int `json:"right"`
		}
		call(t, "POST", fmt.Sprintf("%s/v1/trees/%d/grow", ts.URL, created.Tree),
			map[string]any{"leaf": 0, "op": "add", "left": 0, "right": 0}, 200, &grown)
		return created.Tree, grown.Left, grown.Right
	}
	t1, l1, r1 := mkTree()
	t2, l2, r2 := mkTree()

	const perLeaf = 30
	var wg sync.WaitGroup
	for _, cfg := range []struct {
		tree uint64
		leaf int
	}{{t1, l1}, {t1, r1}, {t2, l2}, {t2, r2}} {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(tree uint64, leaf int) {
				defer wg.Done()
				url := fmt.Sprintf("%s/v1/trees/%d/set-leaf", ts.URL, tree)
				for i := 0; i < perLeaf; i++ {
					body, _ := json.Marshal(map[string]any{"leaf": leaf, "value": 7})
					resp, err := http.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("post: %v", err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("set-leaf status %d", resp.StatusCode)
						return
					}
				}
			}(cfg.tree, cfg.leaf)
		}
	}
	wg.Wait()

	for _, id := range []uint64{t1, t2} {
		var val struct {
			Value int64 `json:"value"`
		}
		call(t, "GET", fmt.Sprintf("%s/v1/trees/%d/value", ts.URL, id), nil, 200, &val)
		if val.Value != 14 {
			t.Fatalf("tree %d root = %d, want 14", id, val.Value)
		}
	}
}

package main

// End-to-end tests for the self-diagnosing runtime: the lifecycle event
// journal must record failover, degradation and recovery in order, and
// the anomaly flight recorder must turn a latency fault on a live
// process into a journaled anomaly event, a temporary trace-sampling
// boost, and a debug bundle that carries the whole incident.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dyntc"
	"dyntc/internal/obs"
)

// eventsOf fetches /v1/events with the given raw query string.
func eventsOf(t *testing.T, base, query string) []dyntc.Event {
	t.Helper()
	var out struct {
		Total  uint64        `json:"total"`
		Events []dyntc.Event `json:"events"`
	}
	status, _ := getStatus(t, base+"/v1/events"+query, &out)
	if status != 200 {
		t.Fatalf("GET /v1/events%s: status %d", query, status)
	}
	return out.Events
}

// waitEvents polls /v1/events?type=typ until at least n events match.
func waitEvents(t *testing.T, base, typ string, n int) []dyntc.Event {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		evs := eventsOf(t, base, "?type="+typ)
		if len(evs) >= n {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d %q events; have %d", n, typ, len(evs))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// countSpans returns how many retained spans carry the given name.
func countSpans(t *testing.T, base, name string) int {
	t.Helper()
	var out struct {
		Spans []dyntc.SpanRecord `json:"spans"`
	}
	if status, _ := getStatus(t, base+"/v1/spans", &out); status != 200 {
		t.Fatalf("GET /v1/spans: status %d", status)
	}
	n := 0
	for _, sp := range out.Spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}

func fieldNum(t *testing.T, ev dyntc.Event, key string) float64 {
	t.Helper()
	v, ok := ev.Fields[key].(float64)
	if !ok {
		t.Fatalf("event %q: field %q = %v (%T), want number", ev.Type, key, ev.Fields[key], ev.Fields[key])
	}
	return v
}

// TestEventJournalFailoverSequence promotes a follower over a live
// leader and asserts both journals tell the story in order: the
// follower's records process.start before leader.promote (with the
// epoch and tree count in the fields), and the demoted leader journals
// leader.demote when the fence lands. healthz on both roles surfaces
// the journal's last event.
func TestEventJournalFailoverSequence(t *testing.T) {
	lb, err := newObsBundle(obsConfig{proc: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	s := newServerWAL(dyntc.BatchOptions{}, t.TempDir(), 0)
	s.observe(lb)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.forest.Close()
		s.closeLogs()
	})

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 3}, 201, &created)
	growSome(t, fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree), 4, 0)

	fb, err := newObsBundle(obsConfig{proc: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	fo := newFollower(ts.URL, 2*time.Millisecond)
	fo.walDir = t.TempDir()
	fo.observe(fb)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.handler())
	t.Cleanup(foSrv.Close)

	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq >= 4
	})
	if status := postStatus(t, foSrv.URL+"/v1/promote", nil, nil); status != 200 {
		t.Fatalf("promote: status %d", status)
	}

	// Promoted process: process.start, then leader.promote, in sequence
	// order, on the same journal the follower was born with.
	proms := waitEvents(t, foSrv.URL, obs.EvPromote, 1)
	if proms[0].Proc != "follower" {
		t.Fatalf("promote event proc = %q, want the promoting process", proms[0].Proc)
	}
	if got := fieldNum(t, proms[0], "epoch"); got != 2 {
		t.Fatalf("promote event epoch = %v, want 2", got)
	}
	if got := fieldNum(t, proms[0], "trees"); got != 1 {
		t.Fatalf("promote event trees = %v, want 1", got)
	}
	starts := eventsOf(t, foSrv.URL, "?type="+obs.EvProcessStart)
	if len(starts) != 1 {
		t.Fatalf("process.start events = %d, want 1", len(starts))
	}
	if starts[0].Seq >= proms[0].Seq {
		t.Fatalf("event order: process.start seq %d !< promote seq %d", starts[0].Seq, proms[0].Seq)
	}

	// Demoted leader: the async fence journals leader.demote with the
	// winning epoch, and healthz points at it as the last event.
	dems := waitEvents(t, ts.URL, obs.EvDemote, 1)
	if got := fieldNum(t, dems[0], "epoch"); got != 2 {
		t.Fatalf("demote event epoch = %v, want 2", got)
	}
	var h struct {
		LastEvent     *dyntc.Event `json:"last_event"`
		AnomalyActive *bool        `json:"anomaly_active"`
	}
	getStatus(t, ts.URL+"/v1/healthz", &h)
	if h.LastEvent == nil || h.LastEvent.Type != obs.EvDemote {
		t.Fatalf("demoted leader healthz last_event = %+v, want %s", h.LastEvent, obs.EvDemote)
	}
	if h.AnomalyActive == nil {
		t.Fatal("healthz missing anomaly_active")
	}
}

// TestEventJournalDegradedSequence blacks out the follower's transport
// with a self-healing fault rule and asserts the journal records
// degraded.enter (with the error count) strictly before degraded.exit
// (with the outage duration).
func TestEventJournalDegradedSequence(t *testing.T) {
	ts, _ := startTestServer(t)
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 5}, 201, &created)
	growSome(t, fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree), 3, 0)

	fb, err := newObsBundle(obsConfig{proc: "follower"})
	if err != nil {
		t.Fatal(err)
	}
	in := dyntc.NewFaultInjector(7)
	fo := newFollower(ts.URL, 2*time.Millisecond)
	fo.setFaults(in, 7)
	fo.observe(fb)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.handler())
	t.Cleanup(foSrv.Close)

	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq >= 3
	})

	// Six straight transport errors, then the rule exhausts and contact
	// restores itself — enter on the third failure, exit on recovery.
	in.Add(dyntc.FaultRule{Site: "follower.rpc", Err: dyntc.ErrFaultInjected, Times: 6})
	enter := waitEvents(t, foSrv.URL, obs.EvDegradedEnter, 1)
	exit := waitEvents(t, foSrv.URL, obs.EvDegradedExit, 1)
	if enter[0].Seq >= exit[0].Seq {
		t.Fatalf("event order: enter seq %d !< exit seq %d", enter[0].Seq, exit[0].Seq)
	}
	if got := fieldNum(t, enter[0], "consecutive_errors"); got < degradedErrThreshold {
		t.Fatalf("enter event consecutive_errors = %v, want >= %d", got, degradedErrThreshold)
	}
	if got := fieldNum(t, exit[0], "outage_ms"); got < 0 {
		t.Fatalf("exit event outage_ms = %v", got)
	}
	// Prefix query: the trailing-dot form returns both edges.
	both := eventsOf(t, foSrv.URL, "?type=follower.degraded.")
	if len(both) < 2 {
		t.Fatalf("prefix query returned %d events, want enter+exit", len(both))
	}
}

// TestEventJournalTornTailRecovery tears a WAL tail mid-record and
// restarts: startup recovery must journal wal.recover.torn with the
// dropped byte count against the right tree, strictly after
// process.start, and the per-type counter must show up in /metrics.
func TestEventJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	ts := httptest.NewServer(s.routes())
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 11}, 201, &created)
	growSome(t, fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree), 6, 0)
	ts.Close()
	s.forest.Close()
	s.closeLogs()

	walPath := filepath.Join(dir, fmt.Sprintf("tree-%d.wal", created.Tree))
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, wal[:len(wal)-15], 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := newObsBundle(obsConfig{proc: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	s2 := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	s2.observe(b) // before recover: recovery itself must journal
	if err := s2.recover(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.routes())
	t.Cleanup(func() {
		ts2.Close()
		s2.forest.Close()
		s2.closeLogs()
	})

	torn := waitEvents(t, ts2.URL, obs.EvWALTorn, 1)
	if torn[0].Tree != created.Tree {
		t.Fatalf("torn event tree = %d, want %d", torn[0].Tree, created.Tree)
	}
	if got := fieldNum(t, torn[0], "bytes"); got <= 0 {
		t.Fatalf("torn event bytes = %v, want > 0", got)
	}
	if got := fieldNum(t, torn[0], "recovered_to"); got != 5 {
		t.Fatalf("torn event recovered_to = %v, want 5", got)
	}
	starts := eventsOf(t, ts2.URL, "?type="+obs.EvProcessStart)
	if len(starts) != 1 || starts[0].Seq >= torn[0].Seq {
		t.Fatalf("event order: process.start %+v !< torn seq %d", starts, torn[0].Seq)
	}

	var h struct {
		LastEvent *dyntc.Event `json:"last_event"`
	}
	getStatus(t, ts2.URL+"/v1/healthz", &h)
	if h.LastEvent == nil {
		t.Fatal("healthz missing last_event after recovery")
	}
	metrics := string(getBytes(t, ts2.URL+"/metrics", 200))
	if !strings.Contains(metrics, `dyntc_events_total{type="wal.recover.torn"} 1`) {
		t.Fatal("metrics missing the wal.recover.torn event counter")
	}
}

// TestIncidentFlightRecorderLeader is the full incident drill on a live
// leader: a latency fault stalls two waves, the flush-latency detector
// trips, the journal gets an anomaly event carrying the engine snapshot,
// trace sampling provably boosts while the window is open and decays
// after it, and one debug-bundle fetch captures the whole incident —
// the event, a densely-traced slow wave, and the metrics text.
func TestIncidentFlightRecorderLeader(t *testing.T) {
	b, err := newObsBundle(obsConfig{
		proc: "leader",
		anomaly: dyntc.AnomalyConfig{
			Warmup:   8,
			Window:   16,
			MinNS:    float64(10 * time.Millisecond),
			Cooldown: time.Hour, // one trip per signal: the decay check must stay clean
			Boost:    time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := dyntc.NewFaultInjector(42)
	opts := dyntc.BatchOptions{
		Metrics:     b.engine,
		Trace:       b.trace,
		Spans:       b.spans,
		TraceSample: 1 << 30, // cadence effectively off: only the boost samples
		Faults:      in,
	}
	b.engineHooks(&opts)
	s := newServer(opts)
	s.observe(b)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.forest.Close()
	})

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 9}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	leaf := growSome(t, base, 1, 0)

	// Warm the flush-latency baseline well past the detector's warmup.
	for i := 0; i < 24; i++ {
		call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": i}, 200, nil)
	}
	before := countSpans(t, ts.URL, "engine.flush")

	// The incident: the next two waves stall 60ms inside the engine.
	in.Add(dyntc.FaultRule{Site: "engine.wave", Latency: 60 * time.Millisecond, Times: 2})
	call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": 100}, 200, nil)
	call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": 101}, 200, nil)

	anoms := waitEvents(t, ts.URL, obs.EvAnomaly+"."+sigEngineFlush, 1)
	ev := anoms[0]
	if got := fieldNum(t, ev, "value_ms"); got < 40 {
		t.Fatalf("anomaly value_ms = %v, want >= 40 (the injected stall)", got)
	}
	snap, ok := ev.Fields["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("anomaly event snapshot = %T, want the engine stats map", ev.Fields["snapshot"])
	}
	if _, ok := snap["flushes"]; !ok {
		t.Fatalf("anomaly snapshot missing engine stats: %v", snap)
	}
	var h struct {
		AnomalyActive bool `json:"anomaly_active"`
	}
	getStatus(t, ts.URL+"/v1/healthz", &h)
	if !h.AnomalyActive {
		t.Fatal("healthz anomaly_active = false inside the boost window")
	}

	// Boost: while the window is open every flush is span-sampled.
	for i := 0; i < 5; i++ {
		call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": 200 + i}, 200, nil)
	}
	during := countSpans(t, ts.URL, "engine.flush")
	if during < before+3 {
		t.Fatalf("boost sampling: %d flush spans before, %d after 5 boosted flushes (+2 slow waves)", before, during)
	}

	// Decay: past the deadline, traffic adds no flush spans.
	deadline := time.Unix(0, b.boost.Deadline())
	time.Sleep(time.Until(deadline) + 50*time.Millisecond)
	after := countSpans(t, ts.URL, "engine.flush")
	for i := 0; i < 5; i++ {
		call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": 300 + i}, 200, nil)
	}
	if final := countSpans(t, ts.URL, "engine.flush"); final != after {
		t.Fatalf("boost decay: %d flush spans grew to %d after the window closed", after, final)
	}

	// One debug-bundle fetch carries the whole incident.
	var bundle struct {
		Role    string             `json:"role"`
		Proc    string             `json:"proc"`
		Metrics string             `json:"metrics"`
		Events  []dyntc.Event      `json:"events"`
		Spans   []dyntc.SpanRecord `json:"spans"`
		Anomaly struct {
			Trips  uint64 `json:"trips"`
			Active bool   `json:"active"`
		} `json:"anomaly"`
		Engine map[string]any `json:"engine"`
	}
	raw := getBytes(t, ts.URL+"/v1/debug/bundle", 200)
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("debug bundle is not parseable JSON: %v", err)
	}
	if bundle.Role != "leader" || bundle.Proc != "leader" {
		t.Fatalf("bundle role/proc = %q/%q", bundle.Role, bundle.Proc)
	}
	if bundle.Anomaly.Trips < 1 {
		t.Fatalf("bundle anomaly.trips = %d, want >= 1", bundle.Anomaly.Trips)
	}
	if !strings.Contains(bundle.Metrics, "dyntc_events_total") {
		t.Fatal("bundle metrics snapshot missing dyntc_events_total")
	}
	foundAnom, foundSlowSpan := false, false
	for _, e := range bundle.Events {
		if e.Type == obs.EvAnomaly+"."+sigEngineFlush {
			foundAnom = true
		}
	}
	for _, sp := range bundle.Spans {
		// The second faulted wave flushed inside the boost window: a
		// densely-traced slow wave must be in the bundle.
		if sp.Name == "engine.flush" && sp.Dur >= int64(40*time.Millisecond) {
			foundSlowSpan = true
		}
	}
	if !foundAnom {
		t.Fatal("bundle events missing the anomaly event")
	}
	if !foundSlowSpan {
		t.Fatal("bundle spans missing a densely-traced slow flush")
	}
	if _, ok := bundle.Engine["flushes"]; !ok {
		t.Fatalf("bundle missing engine stats: %v", bundle.Engine)
	}
}

// TestIncidentFlightRecorderFollower runs the replication half of the
// drill: a transport latency fault slows the follower's tailing, the
// replication-lag detectors trip, and the follower's own journal,
// healthz and debug bundle carry the incident.
func TestIncidentFlightRecorderFollower(t *testing.T) {
	// The leader must span-sample every flush: only span-sampled waves
	// carry the SealedAt/AppendedAt stamps the follower's lag detectors
	// feed on.
	lb, err := newObsBundle(obsConfig{proc: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	lopts := dyntc.BatchOptions{Metrics: lb.engine, Spans: lb.spans, TraceSample: 1}
	s := newServer(lopts)
	s.observe(lb)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.forest.Close()
	})
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 13}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	leaf := growSome(t, base, 2, 0)

	fb, err := newObsBundle(obsConfig{
		proc: "follower",
		anomaly: dyntc.AnomalyConfig{
			Warmup:   8,
			Window:   16,
			MinNS:    float64(40 * time.Millisecond),
			Cooldown: time.Hour,
			Boost:    time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := dyntc.NewFaultInjector(9)
	fo := newFollower(ts.URL, 2*time.Millisecond)
	fo.setFaults(fin, 9)
	fo.observe(fb)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.handler())
	t.Cleanup(foSrv.Close)

	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq >= 2
	})

	// Warm the lag baselines with live traffic: every wave the follower
	// tails feeds replica.fetch and replica.apply once. (Waves already in
	// the bootstrap snapshot never reach the detectors.)
	for i := 0; i < 12; i++ {
		call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": i}, 200, nil)
		time.Sleep(4 * time.Millisecond)
	}
	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq >= 14
	})

	// The incident: every leader RPC stalls 120ms while fresh waves keep
	// landing, so tails arrive far behind their append stamps.
	fin.Add(dyntc.FaultRule{Site: "follower.rpc", Latency: 120 * time.Millisecond, Times: 10})
	for i := 0; i < 6; i++ {
		call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": i}, 200, nil)
		time.Sleep(10 * time.Millisecond)
	}

	anoms := waitEvents(t, foSrv.URL, obs.EvAnomaly+".replica.", 1)
	if !strings.HasPrefix(anoms[0].Type, obs.EvAnomaly+".replica.") {
		t.Fatalf("anomaly type = %q", anoms[0].Type)
	}
	if _, ok := anoms[0].Fields["snapshot"].(map[string]any); !ok {
		t.Fatalf("replica anomaly missing snapshot: %v", anoms[0].Fields)
	}
	if fb.anomaly.Trips() < 1 {
		t.Fatalf("follower recorder trips = %d, want >= 1", fb.anomaly.Trips())
	}

	var bundle struct {
		Role    string `json:"role"`
		Anomaly struct {
			Trips uint64 `json:"trips"`
		} `json:"anomaly"`
	}
	raw := getBytes(t, foSrv.URL+"/v1/debug/bundle", 200)
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("follower debug bundle is not parseable JSON: %v", err)
	}
	if bundle.Role != "follower" || bundle.Anomaly.Trips < 1 {
		t.Fatalf("follower bundle = %+v", bundle)
	}
	var h struct {
		LastEvent     *dyntc.Event `json:"last_event"`
		AnomalyActive *bool        `json:"anomaly_active"`
	}
	getStatus(t, foSrv.URL+"/v1/healthz", &h)
	if h.LastEvent == nil || h.AnomalyActive == nil {
		t.Fatal("follower healthz missing last_event / anomaly_active")
	}
}

package main

// Chaos suite: deterministic fault schedules driving the failure paths
// end to end — leader killed mid-traffic with a follower promoted over
// it (epoch fencing must reject the demoted leader's late writes, and
// the promoted state must be byte-identical to a sequential replay of
// the old leader's WAL), a follower partitioned from its leader serving
// degraded reads with a staleness bound, and a leader restarting over a
// torn WAL tail. Everything here runs in-process so the suite is
// -race-clean and seed-reproducible.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dyntc"
)

// postStatus posts a JSON body and returns the status, decoding the
// response into out when non-nil. Unlike call it never fails the test on
// status, so chaos traffic can observe the 403 fence instead of dying.
func postStatus(t *testing.T, url string, body any, out any) int {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		_ = json.Unmarshal(data, out)
	}
	return resp.StatusCode
}

// getStatus fetches url and returns (status, headers), decoding the body
// into out when non-nil.
func getStatus(t *testing.T, url string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		_ = json.Unmarshal(data, out)
	}
	return resp.StatusCode, resp.Header
}

// healthTrees is the per-tree slice shared by leader and follower
// /v1/healthz bodies (field names line up on both).
type healthTrees struct {
	Role  string `json:"role"`
	Trees []struct {
		Tree       uint64 `json:"tree"`
		AppliedSeq uint64 `json:"applied_seq"`
		Epoch      uint64 `json:"epoch"`
	} `json:"trees"`
	Degraded      bool  `json:"degraded"`
	ConsecErrs    int   `json:"consecutive_errors"`
	BackoffMS     int64 `json:"backoff_ms"`
	StalenessMS   int64 `json:"staleness_ms"`
	FencedAtEpoch int64 `json:"fenced_at_epoch"`
}

// waitHealthz polls url until cond is satisfied or the deadline passes.
func waitHealthz(t *testing.T, url string, cond func(status int, h healthTrees) bool) healthTrees {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var h healthTrees
		status, _ := getStatus(t, url+"/v1/healthz", &h)
		if cond(status, h) {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz condition not reached; last: status=%d %+v", status, h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosFailover kills a leader mid-traffic: a follower tailing it
// (through a seeded latency fault on its RPC transport) is promoted to
// epoch 2, the demoted leader fences its late writes, and the promoted
// state is byte-identical to a sequential oracle that replays the old
// leader's genesis snapshot + WAL up to the promoted sequence and then
// promotes. Three seeds vary tree shape and fault timing.
func TestChaosFailover(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dirL, dirF := t.TempDir(), t.TempDir()
			s := newServerWAL(dyntc.BatchOptions{}, dirL, 0)
			ts := httptest.NewServer(s.routes())
			var killOnce sync.Once
			kill := func() {
				killOnce.Do(func() {
					ts.Close()
					s.forest.Close()
					s.closeLogs() // flush buffered WAL appends for the oracle
				})
			}
			t.Cleanup(kill)

			var tr1, tr2 struct {
				Tree uint64 `json:"tree"`
			}
			call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": seed}, 201, &tr1)
			call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 5, "seed": seed + 10, "ring": "minplus"}, 201, &tr2)
			ids := []uint64{tr1.Tree, tr2.Tree}
			// Pre-failover history, plus one node per tree that stays a
			// leaf forever: live traffic set-leafs it, one wave per call.
			leafs := map[uint64]int{}
			for _, id := range ids {
				leafs[id] = growSome(t, fmt.Sprintf("%s/v1/trees/%d", ts.URL, id), 8, 0)
			}

			// Follower tails through a seeded latency fault (20% of leader
			// RPCs stall 1ms) — chaos without losing determinism.
			in := dyntc.NewFaultInjector(seed)
			in.Add(dyntc.FaultRule{Site: "follower.rpc", P: 0.2, Latency: time.Millisecond})
			fo := newFollower(ts.URL, 2*time.Millisecond)
			fo.walDir = dirF
			fo.setFaults(in, seed)
			go fo.run()
			t.Cleanup(fo.Close)
			foSrv := httptest.NewServer(fo.handler())
			t.Cleanup(foSrv.Close)

			// Live traffic against the old leader until it stops accepting
			// writes (the fence's 403, or the shutdown).
			var wg sync.WaitGroup
			for i, id := range ids {
				wg.Add(1)
				go func(i int, id uint64) {
					defer wg.Done()
					url := fmt.Sprintf("%s/v1/trees/%d/set-leaf", ts.URL, id)
					for j := 0; ; j++ {
						enc, _ := json.Marshal(map[string]any{"leaf": leafs[id], "value": j * (i + 2)})
						resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
						if err != nil {
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							return
						}
					}
				}(i, id)
			}

			// Promote once both replicas are past the pre-traffic history.
			waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
				if len(h.Trees) != 2 {
					return false
				}
				for _, th := range h.Trees {
					if th.AppliedSeq < 8 {
						return false
					}
				}
				return true
			})
			var promoted struct {
				Promoted   bool   `json:"promoted"`
				Trees      int    `json:"trees"`
				Epoch      uint64 `json:"epoch"`
				FailoverMS int64  `json:"failover_ms"`
			}
			if status := postStatus(t, foSrv.URL+"/v1/promote", nil, &promoted); status != 200 {
				t.Fatalf("promote: status %d", status)
			}
			if !promoted.Promoted || promoted.Trees != 2 || promoted.Epoch != 2 {
				t.Fatalf("promote response: %+v, want 2 trees at epoch 2", promoted)
			}
			// The promote endpoint vanished with the follower mux: this
			// process is a leader now and leaders don't promote.
			if status := postStatus(t, foSrv.URL+"/v1/promote", nil, nil); status != 404 {
				t.Fatalf("second promote: status %d, want 404", status)
			}

			// The async demote lands and the old leader fences itself.
			waitHealthz(t, ts.URL, func(status int, h healthTrees) bool {
				return status == 503 && h.FencedAtEpoch == 2
			})
			wg.Wait() // traffic saw the fence (or shutdown) and stopped

			// Demoted leader: writes 403, reads still served.
			fenced := postStatus(t, fmt.Sprintf("%s/v1/trees/%d/set-leaf", ts.URL, ids[0]),
				map[string]any{"leaf": leafs[ids[0]], "value": 1}, nil)
			if fenced != 403 {
				t.Fatalf("write on demoted leader: status %d, want 403", fenced)
			}
			if status, _ := getStatus(t, fmt.Sprintf("%s/v1/trees/%d/value", ts.URL, ids[0]), nil); status != 200 {
				t.Fatalf("read on demoted leader: status %d, want 200", status)
			}
			if status, _ := getStatus(t, fmt.Sprintf("%s/v1/trees/%d/log?since=0", ts.URL, ids[0]), nil); status != 200 {
				t.Fatalf("log drain on demoted leader: status %d, want 200", status)
			}
			// Demote with a stale epoch is rejected.
			if status := postStatus(t, ts.URL+"/v1/demote", map[string]any{"epoch": 1}, nil); status != 409 {
				t.Fatalf("stale demote: status %d, want 409", status)
			}
			// A higher epoch seen on a log fetch raises the fence further.
			req, _ := http.NewRequest("GET", fmt.Sprintf("%s/v1/trees/%d/log?since=0", ts.URL, ids[0]), nil)
			req.Header.Set("X-Dyntc-Epoch", "3")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			waitHealthz(t, ts.URL, func(status int, h healthTrees) bool {
				return h.FencedAtEpoch == 3
			})

			// New leader: role flipped, every tree at epoch 2. Record the
			// promoted sequences and snapshot bytes before any new writes.
			h := waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
				return status == 200 && h.Role == "leader"
			})
			S := map[uint64]uint64{}
			for _, th := range h.Trees {
				if th.Epoch != 2 {
					t.Fatalf("tree %d: epoch %d after promotion, want 2", th.Tree, th.Epoch)
				}
				S[th.Tree] = th.AppliedSeq
			}
			snapNew := map[uint64][]byte{}
			for _, id := range ids {
				snapNew[id] = getBytes(t, fmt.Sprintf("%s/v1/trees/%d/snapshot", foSrv.URL, id), 200)
			}

			// Kill the old leader for real and replay its WAL sequentially:
			// genesis snapshot + waves up to the promoted sequence, then a
			// promotion, must reproduce the new leader byte for byte.
			kill()
			for _, id := range ids {
				gen, err := os.ReadFile(filepath.Join(dirL, fmt.Sprintf("tree-%d.snap", id)))
				if err != nil {
					t.Fatal(err)
				}
				waves, _, err := dyntc.RecoverWaveLog(filepath.Join(dirL, fmt.Sprintf("tree-%d.wal", id)))
				if err != nil {
					t.Fatal(err)
				}
				oracle, err := dyntc.NewFollower(gen)
				if err != nil {
					t.Fatal(err)
				}
				upto := waves[:0:0]
				for _, w := range waves {
					if w.Seq <= S[id] {
						upto = append(upto, w)
					}
				}
				if err := oracle.ApplyAll(upto); err != nil {
					t.Fatalf("tree %d: oracle replay: %v", id, err)
				}
				if oracle.Seq() != S[id] {
					t.Fatalf("tree %d: oracle reached seq %d, want %d", id, oracle.Seq(), S[id])
				}
				osnap, oseq, oep, err := oracle.Promote()
				if err != nil {
					t.Fatal(err)
				}
				if oseq != S[id] || oep != 2 {
					t.Fatalf("tree %d: oracle promoted at seq %d epoch %d, want %d/2", id, oseq, oep, S[id])
				}
				if !bytes.Equal(osnap, snapNew[id]) {
					t.Fatalf("tree %d: promoted state differs from sequential replay oracle", id)
				}
				persisted, err := os.ReadFile(filepath.Join(dirF, fmt.Sprintf("tree-%d.snap", id)))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(persisted, osnap) {
					t.Fatalf("tree %d: persisted promotion anchor differs from oracle", id)
				}
			}

			// The new leader serves writes at epoch 2 and logs them past
			// the promoted sequence.
			for i, id := range ids {
				base := fmt.Sprintf("%s/v1/trees/%d", foSrv.URL, id)
				call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leafs[id], "value": 999 + i}, 200, nil)
				var tail struct {
					Waves   []dyntc.Wave `json:"waves"`
					LastSeq uint64       `json:"last_seq"`
				}
				call(t, "GET", fmt.Sprintf("%s/log?since=%d", base, S[id]), nil, 200, &tail)
				if tail.LastSeq != S[id]+1 || len(tail.Waves) != 1 {
					t.Fatalf("tree %d: post-failover log last_seq=%d waves=%d, want %d/1", id, tail.LastSeq, len(tail.Waves), S[id]+1)
				}
				if ep := tail.Waves[0].EpochOrDefault(); ep != 2 {
					t.Fatalf("tree %d: post-failover wave at epoch %d, want 2", id, ep)
				}
			}
		})
	}
}

// TestChaosDegradedFollower partitions a follower from its leader with
// an injected RPC fault: after the consecutive-error threshold the
// follower reports degraded (healthz 503, backoff > 0) but keeps serving
// reads, stamping them with its staleness bound.
func TestChaosDegradedFollower(t *testing.T) {
	ts, _ := startTestServer(t)
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 7}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	growSome(t, base, 5, 0)

	in := dyntc.NewFaultInjector(7)
	fo := newFollower(ts.URL, 2*time.Millisecond)
	fo.setFaults(in, 7)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.handler())
	t.Cleanup(foSrv.Close)

	// Converge first, then drop the partition in.
	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq == 5
	})
	in.Add(dyntc.FaultRule{Site: "follower.rpc", Err: dyntc.ErrFaultInjected})

	h := waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return status == 503
	})
	if !h.Degraded || h.ConsecErrs < degradedErrThreshold || h.BackoffMS <= 0 {
		t.Fatalf("degraded healthz: %+v, want degraded with >=%d errors and backoff", h, degradedErrThreshold)
	}

	// Reads still flow, marked with the staleness bound.
	var v struct {
		Value int64 `json:"value"`
	}
	status, hdr := getStatus(t, fmt.Sprintf("%s/v1/trees/%d/value", foSrv.URL, created.Tree), &v)
	if status != 200 {
		t.Fatalf("degraded read: status %d, want 200", status)
	}
	if hdr.Get("X-Dyntc-Staleness-Ms") == "" {
		t.Fatal("degraded read missing X-Dyntc-Staleness-Ms header")
	}
}

// TestChaosLeaderStartupRecovery restarts a WAL-backed leader whose log
// lost half a record (torn tail, e.g. a crash mid-append): recovery must
// truncate the tear, replay the surviving prefix to the same state a
// sequential oracle reaches, re-anchor, and accept new writes that
// continue the wave sequence.
func TestChaosLeaderStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	ts := httptest.NewServer(s.routes())
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 11}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	leaf9 := growSome(t, base, 9, 0)
	growSome(t, base, 1, leaf9) // wave 10, about to be torn off
	ts.Close()
	s.forest.Close()
	s.closeLogs()

	genesis, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("tree-%d.snap", created.Tree)))
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, fmt.Sprintf("tree-%d.wal", created.Tree))
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle from the intact log: waves 1..9 are the expected survivors.
	intact := filepath.Join(t.TempDir(), "intact.wal")
	if err := os.WriteFile(intact, wal, 0o644); err != nil {
		t.Fatal(err)
	}
	waves, dropped, err := dyntc.RecoverWaveLog(intact)
	if err != nil || dropped != 0 || len(waves) != 10 {
		t.Fatalf("intact wal: %d waves, %d dropped, err=%v; want 10/0/nil", len(waves), dropped, err)
	}
	oracle, err := dyntc.NewFollower(genesis)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplyAll(waves[:9]); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record and restart.
	if err := os.WriteFile(walPath, wal[:len(wal)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	if err := s2.recover(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.routes())
	t.Cleanup(func() {
		ts2.Close()
		s2.forest.Close()
		s2.closeLogs()
	})

	var h healthTrees
	if status, _ := getStatus(t, ts2.URL+"/v1/healthz", &h); status != 200 {
		t.Fatalf("healthz after recovery: %d", status)
	}
	if len(h.Trees) != 1 || h.Trees[0].AppliedSeq != 9 {
		t.Fatalf("recovered at %+v, want applied_seq 9", h.Trees)
	}
	var v struct {
		Value int64 `json:"value"`
	}
	call(t, "GET", fmt.Sprintf("%s/v1/trees/%d/value", ts2.URL, created.Tree), nil, 200, &v)
	if v.Value != oracle.Root() {
		t.Fatalf("recovered root %d, oracle %d", v.Value, oracle.Root())
	}
	osnap, err := oracle.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rsnap := getBytes(t, fmt.Sprintf("%s/v1/trees/%d/snapshot", ts2.URL, created.Tree), 200)
	if !bytes.Equal(osnap, rsnap) {
		t.Fatal("recovered state differs from oracle replay of the surviving prefix")
	}

	// The torn wave 10 grew leaf9, so after truncation leaf9 is a leaf
	// again; the recovered tree must accept writes continuing the
	// sequence where the tear left it.
	call(t, "POST", fmt.Sprintf("%s/v1/trees/%d/set-leaf", ts2.URL, created.Tree),
		map[string]any{"leaf": leaf9, "value": 42}, 200, nil)
	var tail struct {
		LastSeq uint64 `json:"last_seq"`
	}
	call(t, "GET", fmt.Sprintf("%s/v1/trees/%d/log?since=9", ts2.URL, created.Tree), nil, 200, &tail)
	if tail.LastSeq != 10 {
		t.Fatalf("post-recovery write logged at %d, want 10", tail.LastSeq)
	}
}

// TestChaosCleanRestartIdentity is the torn test's control: a graceful
// shutdown and recovery must land on the exact pre-shutdown state.
func TestChaosCleanRestartIdentity(t *testing.T) {
	dir := t.TempDir()
	s := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	ts := httptest.NewServer(s.routes())
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 3, "seed": 13, "ring": "minplus"}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	growSome(t, base, 6, 0)
	final := getBytes(t, base+"/snapshot", 200)
	ts.Close()
	s.forest.Close()
	s.closeLogs()

	s2 := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	if err := s2.recover(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.routes())
	t.Cleanup(func() {
		ts2.Close()
		s2.forest.Close()
		s2.closeLogs()
	})
	recovered := getBytes(t, fmt.Sprintf("%s/v1/trees/%d/snapshot", ts2.URL, created.Tree), 200)
	if !bytes.Equal(recovered, final) {
		t.Fatal("clean restart did not reproduce the pre-shutdown snapshot")
	}
}

// TestPromoteAbortIsRetryable: a promotion that fails part-way through
// its prepare phase (here: the new term's WAL directory does not exist,
// so attaching the first tree's log fails) must leave the follower fully
// live — poll loop tailing, replicas applying, reads flowing — so a
// retried POST /v1/promote succeeds once the cause is fixed. Pins the
// all-or-nothing promotion contract.
func TestPromoteAbortIsRetryable(t *testing.T) {
	leaderSrv, _ := startTestServer(t)
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", leaderSrv.URL+"/v1/trees", map[string]any{"root": 1, "seed": 8}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", leaderSrv.URL, created.Tree)
	leaf := growSome(t, base, 5, 0)

	fo := newFollower(leaderSrv.URL, 2*time.Millisecond)
	fo.walDir = filepath.Join(t.TempDir(), "missing", "wal") // parent absent: attachLog fails
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.handler())
	t.Cleanup(foSrv.Close)
	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return len(h.Trees) == 1 && h.Trees[0].AppliedSeq == 5
	})

	if status := postStatus(t, foSrv.URL+"/v1/promote", nil, nil); status != 500 {
		t.Fatalf("promote into a missing wal dir: status %d, want 500", status)
	}

	// Aborted, not wedged: still a follower, and the poll loop still
	// applies new leader waves (no replica was marked promoted).
	leaf = growSome(t, base, 2, leaf)
	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return status == 200 && h.Role == "follower" &&
			len(h.Trees) == 1 && h.Trees[0].AppliedSeq == 7
	})

	// Fix the cause and retry: the same promotion now commits.
	if err := os.MkdirAll(fo.walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted bool   `json:"promoted"`
		Epoch    uint64 `json:"epoch"`
	}
	if status := postStatus(t, foSrv.URL+"/v1/promote", nil, &promoted); status != 200 {
		t.Fatalf("retried promote: status %d", status)
	}
	if !promoted.Promoted || promoted.Epoch != 2 {
		t.Fatalf("retried promote: %+v", promoted)
	}
	waitHealthz(t, foSrv.URL, func(status int, h healthTrees) bool {
		return status == 200 && h.Role == "leader"
	})
	// The new leader serves writes at the new term.
	call(t, "POST", fmt.Sprintf("%s/v1/trees/%d/set-leaf", foSrv.URL, created.Tree),
		map[string]any{"leaf": leaf, "value": 77}, 200, nil)
}

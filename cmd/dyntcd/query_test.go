package main

// Tests for the cross-tree query endpoint (leader + follower), log
// compaction, and load shedding.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dyntc"
)

// readFileOrNil returns the file's bytes, or nil when unreadable.
func readFileOrNil(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

type queryResp struct {
	Combined int64 `json:"combined"`
	Trees    int   `json:"trees"`
	Errors   int   `json:"errors"`
	Detail   []struct {
		Tree       uint64 `json:"tree"`
		Value      *int64 `json:"value"`
		AppliedSeq uint64 `json:"applied_seq"`
		Error      string `json:"error"`
	} `json:"detail"`
}

// TestQueryEndpointAggregates is the acceptance check: one POST /v1/query
// aggregates over a 64-tree forest and returns the combined result plus
// per-tree applied sequences.
func TestQueryEndpointAggregates(t *testing.T) {
	ts, s := startTestServer(t)

	const n = 64
	ids := make([]uint64, 0, n)
	for i := 1; i <= n; i++ {
		var created struct {
			Tree uint64 `json:"tree"`
		}
		call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": i, "seed": i}, 201, &created)
		ids = append(ids, created.Tree)
		if i%4 == 0 { // some trees get mutation history
			growSome(t, fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree), 3, 0)
		}
	}
	// The naive dashboard path the query replaces: one GET per tree.
	var want int64
	for _, id := range ids {
		var v struct {
			Value int64 `json:"value"`
		}
		call(t, "GET", fmt.Sprintf("%s/v1/trees/%d/value", ts.URL, id), nil, 200, &v)
		want += v.Value
	}

	var res queryResp
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"read": "root", "combine": "sum", "detail": true}, 200, &res)
	if res.Trees != n || res.Errors != 0 {
		t.Fatalf("query: trees=%d errors=%d", res.Trees, res.Errors)
	}
	if res.Combined != want {
		t.Fatalf("combined = %d, want %d", res.Combined, want)
	}
	if len(res.Detail) != n {
		t.Fatalf("detail: %d entries", len(res.Detail))
	}
	var detailSum int64
	for _, d := range res.Detail {
		if d.Value == nil {
			t.Fatalf("tree %d: no value", d.Tree)
		}
		detailSum += *d.Value
		en, ok := s.forest.Get(d.Tree)
		if !ok {
			t.Fatalf("unknown tree %d in detail", d.Tree)
		}
		if d.AppliedSeq != en.AppliedSeq() { // forest is quiescent
			t.Fatalf("tree %d: applied_seq %d, engine at %d", d.Tree, d.AppliedSeq, en.AppliedSeq())
		}
	}
	if detailSum != res.Combined {
		t.Fatalf("detail sum %d != combined %d", detailSum, res.Combined)
	}

	// Count over an id range; min over explicit ids; ring combine.
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"from": 1, "to": 16, "combine": "count"}, 200, &res)
	if res.Combined != 16 {
		t.Fatalf("range count: %d", res.Combined)
	}
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"trees": []int{2, 3, 5}, "combine": "min"}, 200, &res)
	if res.Combined != 2 {
		t.Fatalf("min: %d", res.Combined)
	}
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"trees": []int{2, 3}, "combine": "mul", "ring": "mod", "mod": 7}, 200, &res)
	if res.Combined != 2*3%7 {
		t.Fatalf("ring mul: %d", res.Combined)
	}

	// Unknown tree ids are per-tree errors, not failures.
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"trees": []int{1, 100000}, "detail": true}, 200, &res)
	if res.Trees != 1 || res.Errors != 1 || res.Detail[1].Error == "" {
		t.Fatalf("missing tree: %+v", res)
	}

	// Bad specs are 400s — including "from" without "to", which must not
	// silently select every tree.
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"read": "nope"}, 400, nil)
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"combine": "nope"}, 400, nil)
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"from": 9, "to": 3}, 400, nil)
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"from": 9}, 400, nil)
}

// TestCompactionTrimsLogAndFollowerRebootstraps proves the -compact-every
// path end to end: compaction trims the ring (log reads before the trim
// turn 410) and a follower behind the trim re-bootstraps from a snapshot
// and converges.
func TestCompactionTrimsLogAndFollowerRebootstraps(t *testing.T) {
	dir := t.TempDir()
	// Small ring so the quarter-ring retention margin (2 waves here)
	// doesn't swallow the trim under test.
	s := newServerWAL(dyntc.BatchOptions{}, dir, 8)
	s.compactEvery = 5
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() { ts.Close(); s.forest.Close(); s.closeLogs() })

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 11}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	leaf := growSome(t, base, 6, 0)

	// Follower bootstraps at seq 6 (driven manually: no background loop,
	// so the race between traffic and polls is under test control).
	fo := newFollower(ts.URL, time.Millisecond)
	fo.syncOnce()
	rep := fo.getReplica(created.Tree)
	if rep == nil || rep.fo.Seq() != 6 {
		t.Fatalf("follower bootstrap: %+v", rep)
	}

	// 14 more waves; compactEvery=5 kicks the compactor past seq 6.
	leaf = growSome(t, base, 14, leaf)
	waitCompacted := func(sinceGone uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(fmt.Sprintf("%s/log?since=%d", base, sinceGone))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusGone {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("log?since=%d still %d, compaction never trimmed", sinceGone, resp.StatusCode)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitCompacted(6) // the follower's position is now behind the ring

	// Snapshot file persisted next to the WAL.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data := readFileOrNil(fmt.Sprintf("%s/tree-%d.snap", dir, created.Tree)); data != nil {
			if _, _, err := dyntc.RestoreExpr(data); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction snapshot never persisted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The next sync hits 410 and re-bootstraps; one more sync drains any
	// tail. The replica must land exactly on the leader's applied seq.
	fo.syncOnce()
	fo.syncOnce()
	rep = fo.getReplica(created.Tree)
	if rep == nil {
		t.Fatal("replica lost after re-bootstrap")
	}
	en, _ := s.forest.Get(created.Tree)
	if rep.fo.Seq() != en.AppliedSeq() {
		t.Fatalf("follower at %d, leader at %d", rep.fo.Seq(), en.AppliedSeq())
	}
	var lv struct {
		Value int64 `json:"value"`
	}
	call(t, "GET", base+"/value", nil, 200, &lv)
	if got := rep.fo.Root(); got != lv.Value {
		t.Fatalf("follower root %d, leader %d", got, lv.Value)
	}
}

// TestShed429 proves load shedding: with the executor pinned and the
// submit queue full, the next request gets 429 + Retry-After instead of
// blocking, and the shed is counted in /v1/stats.
func TestShed429(t *testing.T) {
	const queueCap = 2
	s := newServer(dyntc.BatchOptions{Queue: queueCap})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() { ts.Close(); s.forest.Close() })

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	en, _ := s.forest.Get(created.Tree)

	// Pin the executor inside a barrier so nothing drains the queue.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = en.Query(func(*dyntc.Expr) { close(started); <-release })
	}()
	<-started

	// Fill the queue with requests that will block on their futures.
	statuses := make(chan int, queueCap)
	for i := 0; i < queueCap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/value")
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for en.Stats().QueueDepth < queueCap {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", en.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full + executor pinned: the next request is shed.
	resp, err := http.Get(base + "/value")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	wg.Wait()
	for i := 0; i < queueCap; i++ {
		if st := <-statuses; st != http.StatusOK {
			t.Fatalf("queued request finished with %d", st)
		}
	}

	var stats struct {
		Engine struct {
			Shed uint64 `json:"shed"`
		} `json:"engine"`
	}
	call(t, "GET", ts.URL+"/v1/stats", nil, 200, &stats)
	if stats.Engine.Shed == 0 {
		t.Fatal("shed not counted in /v1/stats")
	}
}

// TestLeaderFollowerQueryEquivalence is the read-offload smoke: after
// convergence, POST /v1/query answers identically on leader and follower.
func TestLeaderFollowerQueryEquivalence(t *testing.T) {
	leaderSrv, s := startTestServer(t)

	const n = 8
	for i := 1; i <= n; i++ {
		var created struct {
			Tree uint64 `json:"tree"`
		}
		call(t, "POST", leaderSrv.URL+"/v1/trees", map[string]any{"root": i, "seed": i * 7}, 201, &created)
		growSome(t, fmt.Sprintf("%s/v1/trees/%d", leaderSrv.URL, created.Tree), i%4, 0)
	}

	fo := newFollower(leaderSrv.URL, time.Millisecond)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.routes())
	t.Cleanup(foSrv.Close)

	// Wait until every replica matches its leader engine's applied seq.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := 0
		s.forest.Each(func(id dyntc.TreeID, en *dyntc.Engine) {
			if rep := fo.getReplica(id); rep != nil && rep.fo.Seq() == en.AppliedSeq() {
				caught++
			}
		})
		if caught == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower converged on %d/%d trees", caught, n)
		}
		time.Sleep(2 * time.Millisecond)
	}

	for _, body := range []map[string]any{
		{"read": "root", "combine": "sum", "detail": true},
		{"read": "root", "combine": "max", "detail": true},
		{"from": 2, "to": 5, "combine": "count"},
	} {
		var lres, fres queryResp
		call(t, "POST", leaderSrv.URL+"/v1/query", body, 200, &lres)
		call(t, "POST", foSrv.URL+"/v1/query", body, 200, &fres)
		if lres.Combined != fres.Combined || lres.Trees != fres.Trees || lres.Errors != fres.Errors {
			t.Fatalf("query %v: leader %+v, follower %+v", body, lres, fres)
		}
		if len(lres.Detail) != len(fres.Detail) {
			t.Fatalf("query %v: detail lengths differ", body)
		}
		for i := range lres.Detail {
			ld, fd := lres.Detail[i], fres.Detail[i]
			if ld.Tree != fd.Tree || ld.AppliedSeq != fd.AppliedSeq ||
				(ld.Value == nil) != (fd.Value == nil) ||
				(ld.Value != nil && *ld.Value != *fd.Value) {
				t.Fatalf("query %v tree %d: leader %+v, follower %+v", body, ld.Tree, ld, fd)
			}
		}
	}

	// The endpoint can be disabled on followers.
	fo2 := newFollower(leaderSrv.URL, time.Millisecond)
	fo2.queryEndpoint = false
	fo2Srv := httptest.NewServer(fo2.routes())
	t.Cleanup(func() { fo2Srv.Close(); close(fo2.stop) })
	resp, err := http.Post(fo2Srv.URL+"/v1/query", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled query endpoint: status %d, want 404", resp.StatusCode)
	}
}

package main

// Tests for the durability & replication surface: snapshot GET/PUT, the
// wave-log endpoint, /v1/healthz, and the leader→follower catch-up smoke
// (an in-process leader and follower converging under live traffic).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dyntc"
)

// growSome issues n grows against tree id, always expanding the latest
// left leaf, and returns the last response.
func growSome(t *testing.T, base string, n int, leaf int) int {
	t.Helper()
	for i := 0; i < n; i++ {
		var grown struct {
			Left  int `json:"left"`
			Right int `json:"right"`
		}
		call(t, "POST", base+"/grow", map[string]any{"leaf": leaf, "op": "add", "left": i, "right": i + 1}, 200, &grown)
		leaf = grown.Left
	}
	return leaf
}

func getBytes(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, data)
	}
	return data
}

func TestSnapshotLogEndpoints(t *testing.T) {
	ts, _ := startTestServer(t)

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 9}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	lastLeaf := growSome(t, base, 8, 0)

	// Wave log: 8 grows = 8 mutating waves (sequential client).
	var tail struct {
		Waves   []dyntc.Wave `json:"waves"`
		LastSeq uint64       `json:"last_seq"`
	}
	call(t, "GET", base+"/log?since=0", nil, 200, &tail)
	if tail.LastSeq != 8 || len(tail.Waves) != 8 {
		t.Fatalf("log: last_seq=%d waves=%d, want 8/8", tail.LastSeq, len(tail.Waves))
	}
	for i, w := range tail.Waves {
		if w.Seq != uint64(i+1) || !w.Verify() {
			t.Fatalf("wave %d: seq=%d verify=%v", i, w.Seq, w.Verify())
		}
	}
	call(t, "GET", base+"/log?since=6", nil, 200, &tail)
	if len(tail.Waves) != 2 {
		t.Fatalf("log since=6: %d waves, want 2", len(tail.Waves))
	}

	// Snapshot → restore under a fresh id → equal state.
	snap := getBytes(t, base+"/snapshot", 200)
	var restored struct {
		Tree uint64 `json:"tree"`
		Seq  uint64 `json:"seq"`
	}
	call(t, "PUT", ts.URL+"/v1/trees/77/snapshot", json.RawMessage(snap), 201, &restored)
	if restored.Seq != 8 {
		t.Fatalf("restored seq = %d, want 8", restored.Seq)
	}
	var v1, v2 struct {
		Value int64 `json:"value"`
	}
	call(t, "GET", base+"/value", nil, 200, &v1)
	call(t, "GET", ts.URL+"/v1/trees/77/value", nil, 200, &v2)
	if v1.Value != v2.Value {
		t.Fatalf("restored root %d != original %d", v2.Value, v1.Value)
	}
	// The restored tree serves writes and logs them from its own seq (its
	// node IDs are the leader's, so the leader's last leaf id works).
	growSome(t, ts.URL+"/v1/trees/77", 1, lastLeaf)
	var tail77 struct {
		LastSeq uint64 `json:"last_seq"`
	}
	call(t, "GET", ts.URL+"/v1/trees/77/log?since=8", nil, 200, &tail77)
	if tail77.LastSeq != 9 {
		t.Fatalf("restored tree log at %d, want 9", tail77.LastSeq)
	}
	// Restoring over a live id conflicts.
	call(t, "PUT", ts.URL+"/v1/trees/77/snapshot", json.RawMessage(snap), 409, nil)
	// A corrupt snapshot is rejected.
	call(t, "PUT", ts.URL+"/v1/trees/88/snapshot", json.RawMessage(`{"version":1}`), 400, nil)

	// Healthz reports both trees' applied sequences.
	var health struct {
		OK    bool   `json:"ok"`
		Role  string `json:"role"`
		Trees []struct {
			Tree       uint64 `json:"tree"`
			AppliedSeq uint64 `json:"applied_seq"`
			LogSeq     uint64 `json:"log_seq"`
			QueueCap   int    `json:"queue_cap"`
		} `json:"trees"`
	}
	call(t, "GET", ts.URL+"/v1/healthz", nil, 200, &health)
	if !health.OK || health.Role != "leader" || len(health.Trees) != 2 {
		t.Fatalf("healthz: %+v", health)
	}
	for _, th := range health.Trees {
		want := uint64(8)
		if th.Tree == 77 {
			want = 9
		}
		if th.AppliedSeq != want || th.LogSeq != want {
			t.Fatalf("tree %d: applied=%d log=%d, want %d", th.Tree, th.AppliedSeq, th.LogSeq, want)
		}
		if th.QueueCap <= 0 {
			t.Fatalf("tree %d: queue_cap %d", th.Tree, th.QueueCap)
		}
	}
}

func TestLogTruncationGone(t *testing.T) {
	s := newServerWAL(dyntc.BatchOptions{}, "", 4) // tiny ring
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() { ts.Close(); s.forest.Close() })

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	growSome(t, base, 10, 0)

	var gone struct {
		Error   string `json:"error"`
		BaseSeq uint64 `json:"base_seq"`
	}
	call(t, "GET", base+"/log?since=0", nil, 410, &gone)
	if gone.BaseSeq != 7 {
		t.Fatalf("base_seq = %d, want 7 (10 waves, ring 4)", gone.BaseSeq)
	}
}

// TestFollowerCatchupSmoke is the CI convergence smoke: an in-process
// leader and follower, live traffic on two trees while the follower
// tails the log, then convergence asserted on roots, sequences, and the
// full snapshot bytes of every tree.
func TestFollowerCatchupSmoke(t *testing.T) {
	leaderSrv, _ := startTestServer(t)

	// Two trees with some pre-follower history.
	var tr1, tr2 struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", leaderSrv.URL+"/v1/trees", map[string]any{"root": 1, "seed": 3}, 201, &tr1)
	call(t, "POST", leaderSrv.URL+"/v1/trees", map[string]any{"root": 5, "seed": 4, "ring": "minplus"}, 201, &tr2)
	base1 := fmt.Sprintf("%s/v1/trees/%d", leaderSrv.URL, tr1.Tree)
	base2 := fmt.Sprintf("%s/v1/trees/%d", leaderSrv.URL, tr2.Tree)
	startLeaf := map[string]int{base1: growSome(t, base1, 5, 0), base2: 0}

	// Follower starts mid-history and polls fast.
	fo := newFollower(leaderSrv.URL, 2*time.Millisecond)
	go fo.run()
	t.Cleanup(fo.Close)
	foSrv := httptest.NewServer(fo.routes())
	t.Cleanup(foSrv.Close)

	// Live traffic while the follower tails.
	var wg sync.WaitGroup
	for i, base := range []string{base1, base2} {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			leaf := growSome(t, base, 20, startLeaf[base])
			for j := 0; j < 10; j++ {
				call(t, "POST", base+"/set-leaf", map[string]any{"leaf": leaf, "value": j * (i + 2)}, 200, nil)
			}
		}(i, base)
	}
	wg.Wait()

	// Wait for convergence: the leader's traffic is done, so its applied
	// sequences are final; the follower must reach them exactly.
	type healthResp struct {
		Trees []struct {
			Tree       uint64 `json:"tree"`
			AppliedSeq uint64 `json:"applied_seq"`
			Lag        uint64 `json:"lag"`
			LastError  string `json:"last_error"`
		} `json:"trees"`
	}
	var leaderHealth healthResp
	call(t, "GET", leaderSrv.URL+"/v1/healthz", nil, 200, &leaderHealth)
	want := map[uint64]uint64{}
	for _, th := range leaderHealth.Trees {
		want[th.Tree] = th.AppliedSeq
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var health healthResp
		call(t, "GET", foSrv.URL+"/v1/healthz", nil, 200, &health)
		caught := len(health.Trees) == 2
		for _, th := range health.Trees {
			if th.AppliedSeq != want[th.Tree] {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not converge: want %v, have %+v", want, health)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Roots and snapshot bytes must match tree by tree.
	for _, id := range []uint64{tr1.Tree, tr2.Tree} {
		var lv, fv struct {
			Value int64 `json:"value"`
		}
		call(t, "GET", fmt.Sprintf("%s/v1/trees/%d/value", leaderSrv.URL, id), nil, 200, &lv)
		call(t, "GET", fmt.Sprintf("%s/v1/trees/%d/value", foSrv.URL, id), nil, 200, &fv)
		if lv.Value != fv.Value {
			t.Fatalf("tree %d: leader root %d, follower %d", id, lv.Value, fv.Value)
		}
		lsnap := getBytes(t, fmt.Sprintf("%s/v1/trees/%d/snapshot", leaderSrv.URL, id), 200)
		fsnap := getBytes(t, fmt.Sprintf("%s/v1/trees/%d/snapshot", foSrv.URL, id), 200)
		if !bytes.Equal(lsnap, fsnap) {
			t.Fatalf("tree %d: follower snapshot differs from leader's", id)
		}
	}

	// Writes on the follower are rejected.
	call(t, "POST", fmt.Sprintf("%s/v1/trees/%d/grow", foSrv.URL, tr1.Tree),
		map[string]any{"leaf": 0, "op": "add", "left": 1, "right": 2}, 403, nil)
}

// TestWALPersistsAcrossRestart pins the durable path: a server with a WAL
// directory logs every wave to disk; a fresh process (server) replays the
// WAL into a restored snapshot and reaches the same state.
func TestWALPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := newServerWAL(dyntc.BatchOptions{}, dir, 0)
	ts := httptest.NewServer(s.routes())

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1, "seed": 6}, 201, &created)
	base := fmt.Sprintf("%s/v1/trees/%d", ts.URL, created.Tree)
	leaf := growSome(t, base, 6, 0)
	snap0 := getBytes(t, base+"/snapshot", 200) // snapshot at seq 6
	growSome(t, base, 3, leaf)                  // three more waves hit only the WAL tail
	var finalRoot struct {
		Value int64 `json:"value"`
	}
	call(t, "GET", base+"/value", nil, 200, &finalRoot)
	finalSnap := getBytes(t, base+"/snapshot", 200)
	ts.Close()
	s.forest.Close()
	s.closeLogs() // graceful shutdown flushes the WAL

	waves, err := dyntc.ReadWaveLog(fmt.Sprintf("%s/tree-%d.wal", dir, created.Tree))
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 9 {
		t.Fatalf("WAL has %d waves, want 9", len(waves))
	}
	fo, err := dyntc.NewFollower(snap0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo.ApplyAll(waves); err != nil { // waves 1..6 skip idempotently
		t.Fatal(err)
	}
	if fo.Root() != finalRoot.Value {
		t.Fatalf("replayed root %d, want %d", fo.Root(), finalRoot.Value)
	}
	snap, err := fo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, finalSnap) {
		t.Fatal("replayed state differs from pre-shutdown snapshot")
	}
}

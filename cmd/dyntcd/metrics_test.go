package main

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"dyntc"
	"dyntc/internal/bench"
)

// startObsServer is startTestServer with the observability bundle wired:
// metrics registry, engine histograms, trace ring (sampled every flush)
// and the /metrics + /v1/trace routes.
func startObsServer(t *testing.T) (*httptest.Server, *server, *obsBundle) {
	t.Helper()
	ob, err := newObsBundle(obsConfig{traceCap: 16, proc: "leader"})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(dyntc.BatchOptions{
		Metrics: ob.engine, Trace: ob.trace, TraceSample: 1, Spans: ob.spans,
	})
	s.observe(ob)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.forest.Close()
	})
	return ts, s, ob
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := startObsServer(t)

	// Drive enough traffic for every engine family to move.
	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1}, http.StatusCreated, &created)
	var grown struct{ Left, Right int }
	call(t, "POST", tsTree(ts, created.Tree)+"/grow",
		map[string]any{"leaf": 0, "op": "add", "left": 3, "right": 4}, http.StatusOK, &grown)
	for i := 0; i < 50; i++ {
		call(t, "POST", tsTree(ts, created.Tree)+"/set-leaf",
			map[string]any{"leaf": grown.Left, "value": int64(i)}, http.StatusOK, nil)
	}
	call(t, "POST", ts.URL+"/v1/query", map[string]any{"read": "root"}, http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Same validation CI's scrape smoke applies: parseable text format,
	// every layer's families present. The pool is nil in this test server,
	// so sched families are exempt here.
	required := []string{
		"dyntc_engine_flush_seconds",
		"dyntc_engine_coalesce_wait_seconds",
		"dyntc_engine_requests_total",
		"dyntc_replog_lag",
		"dyntc_replog_appends_total",
		"dyntc_query_join_seconds",
	}
	if err := bench.CheckMetricsText(string(body), required); err != nil {
		t.Fatalf("metrics check: %v\n%s", err, body)
	}
	samples, err := bench.ParseMetricsText(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if samples["dyntc_engine_flush_seconds_count"] <= 0 {
		t.Fatal("flush histogram never observed")
	}
	if samples[`dyntc_engine_requests_total{kind="set-leaf"}`] < 50 {
		t.Fatalf("set-leaf requests = %v, want >= 50",
			samples[`dyntc_engine_requests_total{kind="set-leaf"}`])
	}
	if samples["dyntc_replog_appends_total"] <= 0 {
		t.Fatal("wave log appends never counted")
	}
	if samples["dyntc_query_join_seconds_count"] != 1 {
		t.Fatalf("query joins = %v, want 1", samples["dyntc_query_join_seconds_count"])
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _, ob := startObsServer(t)

	var created struct {
		Tree uint64 `json:"tree"`
	}
	call(t, "POST", ts.URL+"/v1/trees", map[string]any{"root": 1}, http.StatusCreated, &created)
	for i := 0; i < 30; i++ {
		call(t, "POST", tsTree(ts, created.Tree)+"/set-leaf",
			map[string]any{"leaf": 0, "value": int64(i)}, http.StatusOK, nil)
	}

	var trace struct {
		Total  int                     `json:"total"`
		Traces []dyntc.WaveTraceRecord `json:"traces"`
	}
	call(t, "GET", ts.URL+"/v1/trace?n=5", nil, http.StatusOK, &trace)
	if trace.Total < 30 {
		t.Fatalf("trace total = %d, want >= 30 (sampling every flush)", trace.Total)
	}
	if len(trace.Traces) != 5 {
		t.Fatalf("len(traces) = %d, want 5", len(trace.Traces))
	}
	for _, tr := range trace.Traces {
		if tr.Tree != created.Tree {
			t.Fatalf("trace tree = %d, want %d", tr.Tree, created.Tree)
		}
		if tr.Flush <= 0 {
			t.Fatalf("trace flush ns = %d, want > 0", tr.Flush)
		}
	}
	if ob.trace.Total() != trace.Total {
		t.Fatalf("ring total %d != endpoint total %d", ob.trace.Total(), trace.Total)
	}

	call(t, "GET", ts.URL+"/v1/trace?n=bogus", nil, http.StatusBadRequest, nil)
}

// TestAccessLog checks the middleware's structured line shape: method,
// path, status and duration attributes (slog's default handler routes
// through the log package, so capturing its writer sees the line).
func TestAccessLog(t *testing.T) {
	_, s, _ := startObsServer(t)
	h := withAccessLog(s.routes())

	var buf bytes.Buffer
	old := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(old)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	line := buf.String()
	for _, want := range []string{"access", "method=GET", "path=/healthz", "status=200", "dur_us="} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log line %q missing %q", line, want)
		}
	}

	// Error statuses are captured through WriteHeader, not defaulted.
	buf.Reset()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trees/999/value", nil))
	if !strings.Contains(buf.String(), "status=404") {
		t.Fatalf("access log line %q missing status=404", buf.String())
	}
}

func tsTree(ts *httptest.Server, id uint64) string {
	return ts.URL + "/v1/trees/" + strconv.FormatUint(id, 10)
}

// Benchmarks, one per experiment of EXPERIMENTS.md (run with
// go test -bench=. -benchmem). Each benchmark isolates the operation whose
// scaling the corresponding dyntc-bench table sweeps; custom metrics report
// the PRAM quantities (wound sizes, rounds) alongside wall time.
package dyntc

import (
	"testing"

	"dyntc/internal/contract"
	"dyntc/internal/core"
	"dyntc/internal/euler"
	"dyntc/internal/linkcut"
	"dyntc/internal/listprefix"
	"dyntc/internal/pram"
	"dyntc/internal/prng"
	"dyntc/internal/rbsts"
	"dyntc/internal/semiring"
	"dyntc/internal/seqdyn"
	"dyntc/internal/tree"
)

var benchRing = semiring.NewMod(1_000_000_007)

func benchIntTree(seed uint64, n int) *rbsts.Tree[int64, int64] {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	return rbsts.New[int64, int64](seed,
		func(p int64) int64 { return p },
		func(a, b int64) int64 { return a + b },
		vals)
}

// BenchmarkE1Build measures RBSTS construction (Lemma 2.1).
func BenchmarkE1Build(b *testing.B) {
	const n = 1 << 14
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := benchIntTree(uint64(i+1), n)
		if tr.Len() != n {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkE2Activation measures parse-tree activation for |U|=16 on
// n=2^16 (Theorem 2.1).
func BenchmarkE2Activation(b *testing.B) {
	const n, u = 1 << 16, 16
	tr := benchIntTree(1, n)
	src := prng.New(2)
	leaves := make([]*rbsts.Node[int64, int64], u)
	m := pram.Sequential()
	var rounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range leaves {
			leaves[j] = tr.LeafAt(src.Intn(n))
		}
		m.Reset()
		act := tr.Activate(m, leaves)
		rounds += m.Metrics().Steps
		act.Release(m)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// BenchmarkE3InsertDelete measures one batch insert + delete of 16 leaves
// (Theorems 2.2/2.3).
func BenchmarkE3InsertDelete(b *testing.B) {
	const n, u = 1 << 14, 16
	tr := benchIntTree(3, n)
	src := prng.New(4)
	var rebuilt int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := make([]rbsts.InsertOp[int64], u)
		for j := range ops {
			ops[j] = rbsts.InsertOp[int64]{Gap: src.Intn(tr.Len() + 1), Payloads: []int64{1}}
		}
		rep := tr.BatchInsert(nil, ops)
		rebuilt += int64(rep.RebuildLeaves)
		dels := make([]*rbsts.Node[int64, int64], u)
		seen := map[int]bool{}
		for j := 0; j < u; {
			k := src.Intn(tr.Len())
			if !seen[k] {
				seen[k] = true
				dels[j] = tr.LeafAt(k)
				j++
			}
		}
		rep = tr.BatchDelete(nil, dels)
		rebuilt += int64(rep.RebuildLeaves)
	}
	b.ReportMetric(float64(rebuilt)/float64(b.N), "rebuilt-leaves/op")
}

// BenchmarkE4ListPrefix measures a 64-query batch prefix (Theorem 3.1).
func BenchmarkE4ListPrefix(b *testing.B) {
	const n, u = 1 << 16, 64
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	l := listprefix.New(5, listprefix.SumInt64(), vals)
	src := prng.New(6)
	elems := make([]*listprefix.Elem[int64], u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range elems {
			elems[j] = l.At(src.Intn(n))
		}
		if out := l.BatchPrefix(nil, elems); len(out) != u {
			b.Fatal("bad batch")
		}
	}
}

// BenchmarkE5StaticContractionKD measures the classical Kosaraju–Delcher
// contraction.
func BenchmarkE5StaticContractionKD(b *testing.B) {
	const n = 1 << 12
	tr := tree.Generate(benchRing, prng.New(7), n, tree.ShapeRandom)
	want := tr.Eval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := contract.KD(pram.Sequential(), tr); res.Value != want {
			b.Fatal("wrong value")
		}
	}
}

// BenchmarkE5StaticContractionPT measures the RBSTS-guided contraction
// (trace construction included).
func BenchmarkE5StaticContractionPT(b *testing.B) {
	const n = 1 << 12
	tr := tree.Generate(benchRing, prng.New(7), n, tree.ShapeRandom)
	want := tr.Eval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := core.New(tr, uint64(i+1), nil); c.RootValue() != want {
			b.Fatal("wrong value")
		}
	}
}

// BenchmarkE6DynamicUpdates measures a 16-leaf batch value update with
// wound healing (Theorem 4.1).
func BenchmarkE6DynamicUpdates(b *testing.B) {
	const n, u = 1 << 14, 16
	tr := tree.Generate(benchRing, prng.New(8), n, tree.ShapeRandom)
	c := core.New(tr, 9, nil)
	leaves := tr.Leaves()
	src := prng.New(10)
	ls := make([]*tree.Node, u)
	vs := make([]int64, u)
	var wound int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < u; j++ {
			ls[j] = leaves[src.Intn(len(leaves))]
			vs[j] = src.Int63()
		}
		c.SetValues(ls, vs)
		wound += int64(c.LastHeal().WoundRecords)
	}
	b.ReportMetric(float64(wound)/float64(b.N), "wound-records/op")
}

// BenchmarkE7SingleUpdate measures one leaf update (Theorem 4.2
// sequential).
func BenchmarkE7SingleUpdate(b *testing.B) {
	const n = 1 << 14
	tr := tree.Generate(benchRing, prng.New(11), n, tree.ShapeRandom)
	c := core.New(tr, 12, nil)
	leaves := tr.Leaves()
	src := prng.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SetValue(leaves[src.Intn(len(leaves))], src.Int63())
	}
}

// BenchmarkE7Query measures one subexpression value query.
func BenchmarkE7Query(b *testing.B) {
	const n = 1 << 14
	tr := tree.Generate(benchRing, prng.New(14), n, tree.ShapeRandom)
	c := core.New(tr, 15, nil)
	var internals []*tree.Node
	for _, nd := range tr.Nodes {
		if nd != nil && !nd.IsLeaf() {
			internals = append(internals, nd)
		}
	}
	src := prng.New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Value(internals[src.Intn(len(internals))])
	}
}

// BenchmarkE8TreeProps measures a preorder query on a maintained tour
// (Theorem 5.1).
func BenchmarkE8TreeProps(b *testing.B) {
	const n = 1 << 14
	tr := tree.Generate(benchRing, prng.New(17), n, tree.ShapeRandom)
	e := euler.New(tr, 18)
	var live []*tree.Node
	for _, nd := range tr.Nodes {
		if nd != nil {
			live = append(live, nd)
		}
	}
	src := prng.New(19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Preorder(live[src.Intn(len(live))])
	}
}

// BenchmarkE9LCA measures an LCA query via the tour range-min
// (Theorem 5.2).
func BenchmarkE9LCA(b *testing.B) {
	const n = 1 << 14
	tr := tree.Generate(benchRing, prng.New(20), n, tree.ShapeRandom)
	e := euler.New(tr, 21)
	var live []*tree.Node
	for _, nd := range tr.Nodes {
		if nd != nil {
			live = append(live, nd)
		}
	}
	src := prng.New(22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.LCA(live[src.Intn(len(live))], live[src.Intn(len(live))])
	}
}

// BenchmarkE9LinkCutLCA is the sequential dynamic-trees comparator.
func BenchmarkE9LinkCutLCA(b *testing.B) {
	const n = 1 << 14
	tr := tree.Generate(benchRing, prng.New(23), n, tree.ShapeRandom)
	lc := make([]*linkcut.Node, 0, tr.Len())
	byNode := map[*tree.Node]*linkcut.Node{}
	for _, nd := range tr.Nodes {
		if nd != nil {
			x := linkcut.NewNode(0)
			byNode[nd] = x
			lc = append(lc, x)
		}
	}
	for _, nd := range tr.Nodes {
		if nd != nil && nd.Parent != nil {
			linkcut.Link(byNode[nd], byNode[nd.Parent])
		}
	}
	src := prng.New(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = linkcut.LCA(lc[src.Intn(len(lc))], lc[src.Intn(len(lc))])
	}
}

// BenchmarkE10ContractionComb and BenchmarkE10PathRecomputeComb expose the
// paper's motivating gap on an unbounded-depth tree: contraction updates
// stay logarithmic while path recomputation pays Θ(depth).
func BenchmarkE10ContractionComb(b *testing.B) {
	const n = 1 << 12
	tr := tree.Generate(benchRing, prng.New(25), n, tree.ShapeLeftComb)
	c := core.New(tr, 26, nil)
	deep := tr.Leaves()[0]
	src := prng.New(27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SetValue(deep, src.Int63())
	}
}

func BenchmarkE10PathRecomputeComb(b *testing.B) {
	const n = 1 << 12
	tr := tree.Generate(benchRing, prng.New(25), n, tree.ShapeLeftComb)
	p := seqdyn.NewPathEval(tr)
	deep := tr.Leaves()[0]
	src := prng.New(27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetValue(deep, src.Int63())
	}
}

// BenchmarkE11NaiveActivation is the shortcut ablation comparator for
// BenchmarkE2Activation.
func BenchmarkE11NaiveActivation(b *testing.B) {
	const n, u = 1 << 16, 16
	tr := benchIntTree(28, n)
	src := prng.New(29)
	leaves := make([]*rbsts.Node[int64, int64], u)
	m := pram.Sequential()
	var rounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range leaves {
			leaves[j] = tr.LeafAt(src.Intn(n))
		}
		m.Reset()
		act := tr.NaiveActivate(m, leaves)
		rounds += m.Metrics().Steps
		act.Release(m)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// BenchmarkFacadeGrow measures the full public-API growth path including
// tour maintenance.
func BenchmarkFacadeGrow(b *testing.B) {
	ring := ModRing(1_000_000_007)
	e := NewExpr(ring, 1, WithSeed(30), WithTour())
	src := prng.New(31)
	leaves := []*Node{e.Tree().Root}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := src.Intn(len(leaves))
		leaf := leaves[k]
		l, r := e.Grow(leaf, OpAdd(ring), src.Int63(), src.Int63())
		// The grown leaf became internal: replace it in the pool.
		leaves[k] = l
		leaves = append(leaves, r)
	}
}

package dyntc

// Durability & replication tests: the snapshot codec, the wave change-log,
// and follower catch-up, pinned to the strongest available oracles —
// byte-identical snapshots and the sequential replay of the same programs.

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"dyntc/internal/prng"
)

// replicaProgram is a deterministic mixed-op workload over its own region
// of the tree (the subtree under base): grow / collapse / set-leaf /
// set-op / value, every choice drawn from the seeded rng. It runs against
// either an Engine (live) or a bare Expr (sequential oracle).
type replicaProgram struct {
	rng   *prng.Source
	ring  Ring
	base  *Node
	stack []replicaFrame
	roots []int64 // value-query answers in program order
}

type replicaFrame struct{ parent, left, right *Node }

func newReplicaProgram(seed uint64, ring Ring, base *Node) *replicaProgram {
	return &replicaProgram{rng: prng.New(seed), ring: ring, base: base}
}

// step issues one operation through the callbacks (blocking, so exactly
// one request of this program is in flight at a time and the program's
// operation order is deterministic).
func (p *replicaProgram) step(
	grow func(*Node, Op, int64, int64) (*Node, *Node),
	collapse func(*Node, int64),
	set func(*Node, int64),
	setOp func(*Node, Op),
	value func(*Node) int64,
) {
	top := func() *Node {
		if len(p.stack) == 0 {
			return p.base
		}
		return p.stack[len(p.stack)-1].right
	}
	r := p.rng.Intn(100)
	switch {
	case r < 35 && len(p.stack) < 24:
		op := OpAdd(p.ring)
		if p.rng.Intn(2) == 0 {
			op = OpMul(p.ring)
		}
		target := top()
		l, rt := grow(target, op, int64(p.rng.Intn(1000)), int64(p.rng.Intn(1000)))
		p.stack = append(p.stack, replicaFrame{parent: target, left: l, right: rt})
	case r < 50 && len(p.stack) > 0:
		f := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		collapse(f.parent, int64(p.rng.Intn(1000)))
	case r < 70:
		k := len(p.stack)
		target := p.base
		if k > 0 {
			if i := p.rng.Intn(k + 1); i < k {
				target = p.stack[i].left
			} else {
				target = p.stack[k-1].right
			}
		}
		set(target, int64(p.rng.Intn(1000)))
	case r < 80 && len(p.stack) > 0:
		f := p.stack[p.rng.Intn(len(p.stack))]
		op := OpAdd(p.ring)
		if p.rng.Intn(2) == 0 {
			op = OpMul(p.ring)
		}
		setOp(f.parent, op)
	default:
		k := len(p.stack)
		n := p.base
		if k > 0 {
			f := p.stack[p.rng.Intn(k)]
			switch p.rng.Intn(3) {
			case 0:
				n = f.parent
			case 1:
				n = f.left
			default:
				n = f.right
			}
		}
		p.roots = append(p.roots, value(n))
	}
}

func (p *replicaProgram) runLive(t *testing.T, en *Engine, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		p.step(
			func(n *Node, op Op, lv, rv int64) (*Node, *Node) {
				l, r, err := en.Grow(n, op, lv, rv)
				if err != nil {
					t.Errorf("live grow: %v", err)
				}
				return l, r
			},
			func(n *Node, v int64) {
				if err := en.Collapse(n, v); err != nil {
					t.Errorf("live collapse: %v", err)
				}
			},
			func(n *Node, v int64) {
				if err := en.SetLeaf(n, v); err != nil {
					t.Errorf("live set-leaf: %v", err)
				}
			},
			func(n *Node, op Op) {
				if err := en.SetOp(n, op); err != nil {
					t.Errorf("live set-op: %v", err)
				}
			},
			func(n *Node) int64 {
				v, err := en.Value(n)
				if err != nil {
					t.Errorf("live value: %v", err)
				}
				return v
			},
		)
	}
}

func (p *replicaProgram) runSeq(e *Expr, steps int) {
	for i := 0; i < steps; i++ {
		p.step(
			func(n *Node, op Op, lv, rv int64) (*Node, *Node) { return e.Grow(n, op, lv, rv) },
			func(n *Node, v int64) { e.Collapse(n, v) },
			func(n *Node, v int64) { e.SetLeaf(n, v) },
			func(n *Node, op Op) { e.SetOp(n, op) },
			func(n *Node) int64 { return e.Value(n) },
		)
	}
}

// replicaFanOut grows the single leaf into n disjoint region roots.
func replicaFanOut(e *Expr, ring Ring, n int) []*Node {
	leaves := []*Node{e.Tree().Root}
	for len(leaves) < n {
		l, r := e.Grow(leaves[0], OpAdd(ring), 1, 1)
		leaves = append(leaves[1:], l, r)
	}
	return leaves
}

// TestSnapshotReplayByteIdentical is the acceptance pin: for several PRNG
// seeds, a single deterministic program runs (a) through an engine with a
// wave log and (b) directly on a bare Expr (the sequential replay oracle).
// The leader's final snapshot, a follower built from the initial snapshot
// plus the full log, and the oracle's snapshot must be byte-identical.
func TestSnapshotReplayByteIdentical(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		ring := ModRing(1_000_000_007)

		// Leader: engine-served, logged.
		log, err := NewWaveLog(1<<16, "")
		if err != nil {
			t.Fatal(err)
		}
		leader := NewExpr(ring, 1, WithSeed(seed))
		en := leader.Serve(BatchOptions{WaveTap: func(w Wave) {
			if err := log.Append(w); err != nil {
				t.Errorf("log append: %v", err)
			}
		}})
		snap0, err := en.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		prog := newReplicaProgram(seed*1000, ring, leader.Tree().Root)
		prog.runLive(t, en, 400)
		finalSnap, err := en.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		finalSeq := en.AppliedSeq()
		en.Close()
		if got := log.LastSeq(); got != finalSeq {
			t.Fatalf("seed %d: log at %d, engine applied %d", seed, got, finalSeq)
		}

		// Follower: initial snapshot + full log.
		fo, err := NewFollower(snap0)
		if err != nil {
			t.Fatal(err)
		}
		waves, err := log.Since(fo.Seq())
		if err != nil {
			t.Fatal(err)
		}
		if err := fo.ApplyAll(waves); err != nil {
			t.Fatalf("seed %d: follower replay: %v", seed, err)
		}
		foSnap, err := fo.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(foSnap, finalSnap) {
			t.Fatalf("seed %d: follower snapshot differs from leader's", seed)
		}

		// Sequential replay oracle: the same program applied directly to a
		// bare Expr must land on the same bytes (and the same query answers).
		oracle := NewExpr(ring, 1, WithSeed(seed))
		oprog := newReplicaProgram(seed*1000, ring, oracle.Tree().Root)
		oprog.runSeq(oracle, 400)
		oSnap, err := oracle.Snapshot(finalSeq)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oSnap, finalSnap) {
			t.Fatalf("seed %d: sequential oracle snapshot differs from leader's", seed)
		}
		if len(oprog.roots) != len(prog.roots) {
			t.Fatalf("seed %d: %d live value queries vs %d oracle", seed, len(prog.roots), len(oprog.roots))
		}
		for i := range oprog.roots {
			if oprog.roots[i] != prog.roots[i] {
				t.Fatalf("seed %d: value query %d: live %d oracle %d", seed, i, prog.roots[i], oprog.roots[i])
			}
		}
	}
}

// TestFollowerMeteringDeterministic pins replay determinism of the PRAM
// metering: two followers of the same snapshot + log — one sequential, one
// on a 4-worker pool with a low grain — must report identical metered
// costs (the pool invariant) and identical snapshots.
func TestFollowerMeteringDeterministic(t *testing.T) {
	ring := ModRing(1_000_000_007)
	log, _ := NewWaveLog(1<<16, "")
	leader := NewExpr(ring, 1, WithSeed(11))
	en := leader.Serve(BatchOptions{WaveTap: func(w Wave) { _ = log.Append(w) }})
	snap0, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	prog := newReplicaProgram(4242, ring, leader.Tree().Root)
	prog.runLive(t, en, 300)
	en.Close()

	fseq, err := NewFollower(snap0)
	if err != nil {
		t.Fatal(err)
	}
	fpool, err := NewFollower(snap0, WithWorkers(4), WithGrain(8))
	if err != nil {
		t.Fatal(err)
	}
	waves, err := log.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fseq.ApplyAll(waves); err != nil {
		t.Fatal(err)
	}
	if err := fpool.ApplyAll(waves); err != nil {
		t.Fatal(err)
	}
	var mseq, mpool Metrics
	fseq.Query(func(e *Expr) { mseq = e.PRAM() })
	fpool.Query(func(e *Expr) { mpool = e.PRAM() })
	if mseq != mpool {
		t.Fatalf("metering diverged: sequential %+v, 4-worker pool %+v", mseq, mpool)
	}
	s1, err := fseq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fpool.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("pooled follower snapshot differs from sequential follower")
	}
}

// TestRaceSnapshotMidTraffic is the race-detector replication test: many
// client goroutines hammer one logged engine while snapshots are taken
// mid-traffic; every mid-traffic snapshot, restored and fed the tail of
// the log, must converge to the leader's exact final state, and the final
// root must match the sequential replay of the same client programs.
func TestRaceSnapshotMidTraffic(t *testing.T) {
	const (
		clients = 6
		steps   = 150
		seed    = 77
	)
	ring := ModRing(1_000_000_007)
	log, err := NewWaveLog(1<<17, "")
	if err != nil {
		t.Fatal(err)
	}

	leader := NewExpr(ring, 1, WithSeed(seed))
	bases := replicaFanOut(leader, ring, clients)
	en := leader.Serve(BatchOptions{WaveTap: func(w Wave) {
		if err := log.Append(w); err != nil {
			t.Errorf("log append: %v", err)
		}
	}})

	progs := make([]*replicaProgram, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		progs[i] = newReplicaProgram(uint64(9000+i), ring, bases[i])
		wg.Add(1)
		go func(p *replicaProgram) {
			defer wg.Done()
			p.runLive(t, en, steps)
		}(progs[i])
	}

	// Snapshots taken while traffic is in full flight.
	var snapMu sync.Mutex
	var midSnaps [][]byte
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 5; i++ {
			data, err := en.Snapshot()
			if err != nil {
				t.Errorf("mid-traffic snapshot: %v", err)
				return
			}
			snapMu.Lock()
			midSnaps = append(midSnaps, data)
			snapMu.Unlock()
		}
	}()

	wg.Wait()
	snapWG.Wait()
	finalSnap, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	en.Close()
	leaderRoot := leader.Root()
	if st := en.Stats(); st.Errors != 0 {
		t.Fatalf("live run produced %d validation errors", st.Errors)
	}

	// Every mid-traffic snapshot + log tail converges to the leader.
	for i, snap := range midSnaps {
		fo, err := NewFollower(snap)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		waves, err := log.Since(fo.Seq())
		if err != nil {
			t.Fatalf("snapshot %d (seq %d): %v", i, fo.Seq(), err)
		}
		if err := fo.ApplyAll(waves); err != nil {
			t.Fatalf("snapshot %d: catch-up: %v", i, err)
		}
		if fo.Root() != leaderRoot {
			t.Fatalf("snapshot %d: follower root %d, leader %d", i, fo.Root(), leaderRoot)
		}
		foSnap, err := fo.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(foSnap, finalSnap) {
			t.Fatalf("snapshot %d: follower final state differs from leader's", i)
		}
	}

	// Sequential replay oracle: same client programs, one after another, on
	// a bare Expr. Regions are disjoint, so the final root must agree with
	// any concurrent interleaving, and per-region value answers replay too.
	oracle := NewExpr(ring, 1, WithSeed(seed))
	obases := replicaFanOut(oracle, ring, clients)
	for i := 0; i < clients; i++ {
		p := newReplicaProgram(uint64(9000+i), ring, obases[i])
		p.runSeq(oracle, steps)
		if len(p.roots) != len(progs[i].roots) {
			t.Fatalf("client %d: %d live queries vs %d oracle", i, len(progs[i].roots), len(p.roots))
		}
		for j := range p.roots {
			if p.roots[j] != progs[i].roots[j] {
				t.Fatalf("client %d query %d: live %d oracle %d", i, j, progs[i].roots[j], p.roots[j])
			}
		}
	}
	if oracle.Root() != leaderRoot {
		t.Fatalf("root: leader %d, sequential oracle %d", leaderRoot, oracle.Root())
	}
}

// TestFollowerGapAndDivergence covers the failure modes: out-of-order
// waves report ErrWaveGap, stale re-delivery is idempotent, and a wave
// whose recorded root disagrees with the replayed state reports
// divergence (after which the replica must re-bootstrap).
func TestFollowerGapAndDivergence(t *testing.T) {
	ring := ModRing(97)
	log, _ := NewWaveLog(1024, "")
	leader := NewExpr(ring, 1, WithSeed(5))
	en := leader.Serve(BatchOptions{WaveTap: func(w Wave) { _ = log.Append(w) }})
	snap0, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	prog := newReplicaProgram(555, ring, leader.Tree().Root)
	prog.runLive(t, en, 60)
	en.Close()

	waves, err := log.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) < 3 {
		t.Fatalf("only %d waves", len(waves))
	}
	fo, err := NewFollower(snap0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo.Apply(waves[1]); !errors.Is(err, ErrWaveGap) {
		t.Fatalf("gap err = %v, want ErrWaveGap", err)
	}
	if err := fo.Apply(waves[0]); err != nil {
		t.Fatal(err)
	}
	if err := fo.Apply(waves[0]); err != nil { // idempotent re-delivery
		t.Fatalf("re-delivery err = %v", err)
	}
	bad := waves[1]
	bad.Root++
	bad.Seal()
	if err := fo.Apply(bad); !errors.Is(err, ErrDiverged) {
		t.Fatalf("diverged err = %v, want ErrDiverged", err)
	}
}

package bench

import (
	"math"
	"time"

	"dyntc/internal/contract"
	"dyntc/internal/core"
	"dyntc/internal/euler"
	"dyntc/internal/linkcut"
	"dyntc/internal/listprefix"
	"dyntc/internal/pram"
	"dyntc/internal/prng"
	"dyntc/internal/rbsts"
	"dyntc/internal/semiring"
	"dyntc/internal/seqdyn"
	"dyntc/internal/tree"
)

var ring = semiring.NewMod(1_000_000_007)

// intTree builds an RBSTS over n int leaves with the sum aggregation.
func intTree(seed uint64, n int) *rbsts.Tree[int64, int64] {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	return rbsts.New[int64, int64](seed,
		func(p int64) int64 { return p },
		func(a, b int64) int64 { return a + b },
		vals)
}

// pickLeaves selects u distinct random leaves of an RBSTS.
func pickLeaves(src *prng.Source, t *rbsts.Tree[int64, int64], u int) []*rbsts.Node[int64, int64] {
	seen := map[int]bool{}
	var out []*rbsts.Node[int64, int64]
	for len(out) < u {
		i := src.Intn(t.Len())
		if !seen[i] {
			seen[i] = true
			out = append(out, t.LeafAt(i))
		}
	}
	return out
}

// E1Build validates Lemma 2.1: RBSTS construction in O(log n) expected
// rounds with O(n) work, and expected depth Θ(log n).
func E1Build(cfg Config) Table {
	t := Table{
		ID:      "E1",
		Title:   "RBSTS construction (Lemma 2.1)",
		Claim:   "build in O(log n) expected time, O(n/log n) processors; expected depth O(log n)",
		Columns: []string{"n", "depth", "depth/ln n", "tau", "wall_us"},
	}
	for _, n := range cfg.sizes([]int{1 << 12, 1 << 14, 1 << 16, 1 << 18}, []int{1 << 10, 1 << 12}) {
		start := time.Now()
		tr := intTree(cfg.Seed+uint64(n), n)
		el := time.Since(start).Microseconds()
		d := tr.Root().Height()
		t.AddRow(n, d, float64(d)/math.Log(float64(n)), tr.ShortcutMinHeight(), el)
	}
	t.Notes = append(t.Notes,
		"depth/ln n must stay bounded (theory: ≈4.31 for random split trees)")
	return t
}

// E2Activation validates Theorem 2.1: parse-tree identification in
// O(log(|U| log n)) rounds with O(|U| log n / log(|U| log n)) processors.
func E2Activation(cfg Config) Table {
	t := Table{
		ID:      "E2",
		Title:   "Processor activation (Theorem 2.1)",
		Claim:   "activate PT(U) in O(log(|U| log n)) rounds; naive walking needs Θ(depth)",
		Columns: []string{"n", "|U|", "rounds", "log2(|U|·log2 n)", "procs", "|PT(U)|", "naive_rounds"},
	}
	src := prng.New(cfg.Seed + 2)
	for _, n := range cfg.sizes([]int{1 << 14, 1 << 18}, []int{1 << 12}) {
		tr := intTree(cfg.Seed+uint64(n), n)
		for _, u := range cfg.sizes([]int{1, 4, 16, 64, 256}, []int{1, 16}) {
			if u > n {
				continue
			}
			leaves := pickLeaves(src, tr, u)
			m := pram.Sequential()
			act := tr.Activate(m, leaves)
			rounds := m.Metrics().Steps
			size := len(act.Nodes)
			procs := act.Procs
			act.Release(m)

			mn := pram.Sequential()
			nact := tr.NaiveActivate(mn, leaves)
			nact.Release(mn)

			pred := math.Log2(float64(u) * math.Log2(float64(n)))
			t.AddRow(n, u, rounds, pred, procs, size, mn.Metrics().Steps)
		}
	}
	t.Notes = append(t.Notes,
		"rounds should track log2(|U|·log2 n) up to a constant, not the tree depth")
	return t
}

// E3InsertDelete validates Theorems 2.2/2.3: expected rebuild size
// O(log n) per inserted/deleted leaf.
func E3InsertDelete(cfg Config) Table {
	t := Table{
		ID:      "E3",
		Title:   "Batch insertion/deletion (Theorems 2.2/2.3)",
		Claim:   "E[rebuild size] = O(|U| log n); structure stays a valid RBSTS",
		Columns: []string{"n", "|U|", "op", "mean_rebuild", "mean/(|U|·ln n)", "depth_after/ln n"},
	}
	src := prng.New(cfg.Seed + 3)
	trials := 60
	if cfg.Quick {
		trials = 30
	}
	for _, n := range cfg.sizes([]int{1 << 14, 1 << 16}, []int{1 << 11}) {
		for _, u := range cfg.sizes([]int{1, 8, 64}, []int{1, 8}) {
			// Insertions.
			tr := intTree(cfg.Seed+uint64(n), n)
			total := 0
			for trial := 0; trial < trials; trial++ {
				ops := make([]rbsts.InsertOp[int64], u)
				for i := range ops {
					ops[i] = rbsts.InsertOp[int64]{Gap: src.Intn(tr.Len() + 1), Payloads: []int64{0}}
				}
				rep := tr.BatchInsert(nil, ops)
				total += rep.RebuildLeaves
			}
			mean := float64(total) / float64(trials)
			logn := math.Log(float64(n))
			t.AddRow(n, u, "insert", mean, mean/(float64(u)*logn),
				float64(tr.Root().Height())/math.Log(float64(tr.Len())))

			// Deletions.
			total = 0
			for trial := 0; trial < trials; trial++ {
				rep := tr.BatchDelete(nil, pickLeaves(src, tr, u))
				total += rep.RebuildLeaves
			}
			mean = float64(total) / float64(trials)
			t.AddRow(n, u, "delete", mean, mean/(float64(u)*logn),
				float64(tr.Root().Height())/math.Log(float64(tr.Len())))
		}
	}
	t.Notes = append(t.Notes, "mean/(|U|·ln n) bounded by a constant validates E[S] = O(|U| log n)")
	return t
}

// E4ListPrefix validates Theorem 3.1: batch prefix queries in
// O(log(|U| log n)) rounds.
func E4ListPrefix(cfg Config) Table {
	t := Table{
		ID:      "E4",
		Title:   "Incremental list prefix (Theorem 3.1)",
		Claim:   "batch prefix queries in O(log(|U| log n)) rounds over the extended parse tree",
		Columns: []string{"n", "|U|", "rounds", "log2(|U|·log2 n)", "seq_walk_rounds"},
	}
	src := prng.New(cfg.Seed + 4)
	for _, n := range cfg.sizes([]int{1 << 14, 1 << 18}, []int{1 << 12}) {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i)
		}
		l := listprefix.New(cfg.Seed+uint64(n), listprefix.SumInt64(), vals)
		for _, u := range cfg.sizes([]int{1, 16, 256}, []int{1, 16}) {
			var elems []*listprefix.Elem[int64]
			seen := map[int]bool{}
			for len(elems) < u {
				i := src.Intn(n)
				if !seen[i] {
					seen[i] = true
					elems = append(elems, l.At(i))
				}
			}
			m := pram.Sequential()
			l.BatchPrefix(m, elems)
			// Sequential comparison: each walk is depth rounds.
			walkRounds := 0
			for _, e := range elems {
				if d := e.Depth(); d > walkRounds {
					walkRounds = d
				}
			}
			t.AddRow(n, u, m.Metrics().Steps, math.Log2(float64(u)*math.Log2(float64(n))), walkRounds)
		}
	}
	return t
}

// E5StaticContraction compares the classical Kosaraju–Delcher schedule with
// the paper's RBSTS-guided randomized schedule (§4.2): both O(log n)
// rounds, across shapes including unbounded-depth combs.
func E5StaticContraction(cfg Config) Table {
	t := Table{
		ID:      "E5",
		Title:   "Static contraction schedules (§4.2 / Kosaraju–Delcher)",
		Claim:   "PT-guided rounds = depth(PT) = O(log n); KD rake rounds = O(log n); both correct on unbounded-depth trees",
		Columns: []string{"shape", "n", "kd_rounds", "pt_rounds", "ln n", "values_agree"},
	}
	shapes := []struct {
		name  string
		shape tree.Shape
	}{
		{"random", tree.ShapeRandom},
		{"balanced", tree.ShapeBalanced},
		{"left-comb", tree.ShapeLeftComb},
	}
	for _, sh := range shapes {
		for _, n := range cfg.sizes([]int{1 << 10, 1 << 14}, []int{1 << 9}) {
			tr := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, sh.shape)
			kd := contract.KD(pram.Sequential(), tr)
			c := core.New(tr, cfg.Seed+5, pram.Sequential())
			agree := kd.Value == c.RootValue() && kd.Value == tr.Eval()
			t.AddRow(sh.name, n, kd.RakeRounds, c.PTDepth(), math.Log(float64(n)), agree)
		}
	}
	t.Notes = append(t.Notes,
		"kd_rounds counts the two conflict-free substeps per halving round",
		"pt_rounds is the RBSTS depth: ≈4.31·ln n expected, independent of T's shape")
	return t
}

// E6DynamicBatch validates Theorem 4.1/4.2 for batches: wound size
// O(|U| log n) for label updates, plus the PT rebuild cost for structural
// batches.
func E6DynamicBatch(cfg Config) Table {
	t := Table{
		ID:      "E6",
		Title:   "Dynamic contraction batch updates (Theorems 4.1/4.2)",
		Claim:   "label-update wound = O(|U| log n) records in O(log n) rounds; structural PT rebuild = O(|U| log n) leaves",
		Columns: []string{"n", "|U|", "op", "wound_recs", "recs/(|U|·ln n)", "wound_rounds", "rebuild_leaves"},
	}
	src := prng.New(cfg.Seed + 6)
	trials := 20
	if cfg.Quick {
		trials = 5
	}
	for _, n := range cfg.sizes([]int{1 << 12, 1 << 16}, []int{1 << 10}) {
		tr := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, tree.ShapeRandom)
		c := core.New(tr, cfg.Seed+7, nil)
		leaves := tr.Leaves()
		for _, u := range cfg.sizes([]int{1, 16, 128}, []int{1, 8}) {
			recs, rounds := 0, 0
			for trial := 0; trial < trials; trial++ {
				ls := make([]*tree.Node, 0, u)
				vs := make([]int64, 0, u)
				seen := map[int]bool{}
				for len(ls) < u {
					i := src.Intn(len(leaves))
					if !seen[i] {
						seen[i] = true
						ls = append(ls, leaves[i])
						vs = append(vs, src.Int63())
					}
				}
				c.SetValues(ls, vs)
				recs += c.LastHeal().WoundRecords
				rounds += c.LastHeal().WoundRounds
			}
			meanRecs := float64(recs) / float64(trials)
			t.AddRow(n, u, "setvalues", meanRecs,
				meanRecs/(float64(u)*math.Log(float64(n))),
				float64(rounds)/float64(trials), 0)
		}
		// Structural batch: grow u random leaves.
		for _, u := range cfg.sizes([]int{1, 16}, []int{1}) {
			rebuilt := 0
			for trial := 0; trial < trials/2+1; trial++ {
				cur := tr.Leaves()
				ops := make([]core.AddOp, 0, u)
				seen := map[*tree.Node]bool{}
				for len(ops) < u {
					l := cur[src.Intn(len(cur))]
					if !seen[l] {
						seen[l] = true
						ops = append(ops, core.AddOp{Leaf: l, Op: semiring.OpAdd(ring),
							LeftVal: src.Int63(), RightVal: src.Int63()})
					}
				}
				c.AddLeaves(ops)
				rebuilt += c.LastHeal().RebuildLeaves
			}
			t.AddRow(n, u, "addleaves", "-", "-", "-",
				float64(rebuilt)/float64(trials/2+1))
		}
	}
	t.Notes = append(t.Notes,
		"addleaves repairs the trace by change propagation over the PT rebuild diff (full re-simulation is the fallback; see E13); rebuild_leaves validates the Theorem 2.2 component")
	return t
}

// E7SingleUpdate validates the sequential claim of Theorem 4.2: one update
// with one processor in O(log n) time, and query cost.
func E7SingleUpdate(cfg Config) Table {
	t := Table{
		ID:      "E7",
		Title:   "Single update / query (Theorem 4.2 sequential)",
		Claim:   "single update heals an O(log n) chain; a value query replays O(log n) records expected",
		Columns: []string{"n", "mean_wound", "wound/ln n", "mean_query_replay", "query/ln n"},
	}
	src := prng.New(cfg.Seed + 7)
	updates := 150
	if cfg.Quick {
		updates = 30
	}
	for _, n := range cfg.sizes([]int{1 << 10, 1 << 13, 1 << 16}, []int{1 << 10}) {
		tr := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, tree.ShapeRandom)
		c := core.New(tr, cfg.Seed+11, nil)
		leaves := tr.Leaves()
		wound := 0
		for i := 0; i < updates; i++ {
			c.SetValue(leaves[src.Intn(len(leaves))], src.Int63())
			wound += c.LastHeal().WoundRecords
		}
		// Query replay depth: count memo entries per single query.
		replay := 0
		for i := 0; i < updates; i++ {
			var q *tree.Node
			for q == nil {
				cand := tr.Nodes[src.Intn(len(tr.Nodes))]
				if cand != nil && !cand.IsLeaf() {
					q = cand
				}
			}
			before := c.Machine().Metrics().Work
			c.Value(q)
			replay += int(c.Machine().Metrics().Work - before)
		}
		logn := math.Log(float64(n))
		mw := float64(wound) / float64(updates)
		mq := float64(replay) / float64(updates)
		t.AddRow(n, mw, mw/logn, mq, mq/logn)
	}
	return t
}

// E8TreeProps validates Theorem 5.1: maintained tree properties under
// structural churn.
func E8TreeProps(cfg Config) Table {
	t := Table{
		ID:      "E8",
		Title:   "Tree properties + Eulerian tour (Theorem 5.1)",
		Claim:   "preorder/#ancestors/subtree-size queries O(log n) expected after any update batch",
		Columns: []string{"n", "query", "mean_wall_ns", "checked"},
	}
	src := prng.New(cfg.Seed + 8)
	for _, n := range cfg.sizes([]int{1 << 10, 1 << 14}, []int{1 << 9}) {
		tr := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, tree.ShapeRandom)
		e := euler.New(tr, cfg.Seed+13)
		// Churn: grow a few leaves.
		for i := 0; i < 10; i++ {
			leaves := tr.Leaves()
			leaf := leaves[src.Intn(len(leaves))]
			l, r := tr.AddChildren(leaf, semiring.OpAdd(ring), 1, 2)
			e.AddChildren(nil, leaf, l, r)
		}
		var live []*tree.Node
		for _, nd := range tr.Nodes {
			if nd != nil {
				live = append(live, nd)
			}
		}
		queries := 2000
		if cfg.Quick {
			queries = 200
		}
		for _, q := range []struct {
			name string
			f    func(nd *tree.Node) int
		}{
			{"preorder", e.Preorder},
			{"ancestors", e.Ancestors},
			{"subtree", e.SubtreeSize},
		} {
			start := time.Now()
			sum := 0
			for i := 0; i < queries; i++ {
				sum += q.f(live[src.Intn(len(live))])
			}
			el := time.Since(start).Nanoseconds() / int64(queries)
			t.AddRow(n, q.name, el, sum > 0)
		}
	}
	return t
}

// E9LCACanon validates Theorem 5.2: LCA and canonical forms.
func E9LCACanon(cfg Config) Table {
	t := Table{
		ID:      "E9",
		Title:   "LCA and canonical forms (Theorem 5.2)",
		Claim:   "LCA via tour range-min O(log n) expected; iso codes maintained by the contraction engine",
		Columns: []string{"n", "op", "mean_wall_ns", "vs_linkcut_ns", "agree"},
	}
	src := prng.New(cfg.Seed + 9)
	for _, n := range cfg.sizes([]int{1 << 10, 1 << 14}, []int{1 << 9}) {
		tr := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, tree.ShapeRandom)
		e := euler.New(tr, cfg.Seed+17)
		// Mirror the tree into a link-cut forest.
		lc := make(map[*tree.Node]*linkcut.Node, len(tr.Nodes))
		for _, nd := range tr.Nodes {
			if nd != nil {
				lc[nd] = linkcut.NewNode(0)
				lc[nd].Label = nd
			}
		}
		for _, nd := range tr.Nodes {
			if nd != nil && nd.Parent != nil {
				linkcut.Link(lc[nd], lc[nd.Parent])
			}
		}
		var live []*tree.Node
		for _, nd := range tr.Nodes {
			if nd != nil {
				live = append(live, nd)
			}
		}
		queries := 2000
		if cfg.Quick {
			queries = 200
		}
		pairs := make([][2]*tree.Node, queries)
		for i := range pairs {
			pairs[i] = [2]*tree.Node{live[src.Intn(len(live))], live[src.Intn(len(live))]}
		}
		start := time.Now()
		ours := make([]*tree.Node, queries)
		for i, p := range pairs {
			ours[i] = e.LCA(p[0], p[1])
		}
		oursNs := time.Since(start).Nanoseconds() / int64(queries)
		start = time.Now()
		agree := true
		for i, p := range pairs {
			got := linkcut.LCA(lc[p[0]], lc[p[1]]).Label.(*tree.Node)
			if got != ours[i] {
				agree = false
			}
		}
		lcNs := time.Since(start).Nanoseconds() / int64(queries)
		t.AddRow(n, "lca", oursNs, lcNs, agree)
	}
	return t
}

// E10Baselines runs the head-to-head of §1.2: dynamic contraction versus
// sequential path recomputation and full rebuilds, on balanced and comb
// shapes.
func E10Baselines(cfg Config) Table {
	t := Table{
		ID:      "E10",
		Title:   "Dynamic expression evaluation baselines (§1.1/§1.2)",
		Claim:   "contraction update cost stays O(log n) on unbounded-depth trees where path recomputation degrades to Θ(n)",
		Columns: []string{"shape", "n", "method", "ns_per_update", "work_per_update"},
	}
	src := prng.New(cfg.Seed + 10)
	updates := 300
	if cfg.Quick {
		updates = 50
	}
	for _, sh := range []struct {
		name  string
		shape tree.Shape
	}{{"balanced", tree.ShapeBalanced}, {"left-comb", tree.ShapeLeftComb}} {
		for _, n := range cfg.sizes([]int{1 << 12, 1 << 14}, []int{1 << 10}) {
			mk := func() (*tree.Tree, []*tree.Node) {
				tr := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, sh.shape)
				return tr, tr.Leaves()
			}
			// Ours.
			tr, leaves := mk()
			c := core.New(tr, cfg.Seed+19, nil)
			start := time.Now()
			work := 0
			for i := 0; i < updates; i++ {
				c.SetValue(leaves[src.Intn(len(leaves))], src.Int63())
				work += c.LastHeal().WoundRecords
			}
			t.AddRow(sh.name, n, "contraction",
				time.Since(start).Nanoseconds()/int64(updates), float64(work)/float64(updates))

			// Path recompute.
			tr2, leaves2 := mk()
			p := seqdyn.NewPathEval(tr2)
			start = time.Now()
			work = 0
			for i := 0; i < updates; i++ {
				work += p.SetValue(leaves2[src.Intn(len(leaves2))], src.Int63())
			}
			t.AddRow(sh.name, n, "path-recompute",
				time.Since(start).Nanoseconds()/int64(updates), float64(work)/float64(updates))

			// Full rebuild (few iterations; it is Θ(n) per op).
			tr3, leaves3 := mk()
			rb := seqdyn.NewRebuildEval(tr3)
			rounds := updates / 10
			if rounds == 0 {
				rounds = 1
			}
			start = time.Now()
			for i := 0; i < rounds; i++ {
				rb.SetValue(leaves3[src.Intn(len(leaves3))], src.Int63())
				_ = rb.Root()
			}
			t.AddRow(sh.name, n, "full-rebuild",
				time.Since(start).Nanoseconds()/int64(rounds), float64(n))
		}
	}
	t.Notes = append(t.Notes,
		"on left-comb, path-recompute's work/update ≈ n/2 while contraction stays ≈ c·ln n: the paper's motivating gap")
	return t
}

// E11Ablation isolates the shortcut structure: activation rounds with and
// without shortcuts, across tree sizes.
func E11Ablation(cfg Config) Table {
	t := Table{
		ID:      "E11",
		Title:   "Ablation: shortcuts on/off (§2)",
		Claim:   "without shortcuts activation costs Θ(depth) rounds; with them O(log(|U| log n))",
		Columns: []string{"n", "|U|", "shortcut_rounds", "naive_rounds", "speedup"},
	}
	src := prng.New(cfg.Seed + 11)
	for _, n := range cfg.sizes([]int{1 << 12, 1 << 16, 1 << 20}, []int{1 << 12}) {
		tr := intTree(cfg.Seed+uint64(n), n)
		for _, u := range []int{1, 16} {
			leaves := pickLeaves(src, tr, u)
			m := pram.Sequential()
			act := tr.Activate(m, leaves)
			act.Release(m)
			fast := m.Metrics().Steps
			mn := pram.Sequential()
			nact := tr.NaiveActivate(mn, leaves)
			nact.Release(mn)
			slow := mn.Metrics().Steps
			t.AddRow(n, u, fast, slow, float64(slow)/float64(fast))
		}
	}
	return t
}

// E13Propagation measures the change-propagation contraction core
// against the full re-simulation it replaced: a k-leaf structural wave
// on an n-leaf tree must touch O(k log(n/k)) trace records — a
// vanishing fraction of the trace as n grows — and charge
// proportionally less PRAM work than re-simulating all Θ(n) records.
// The resim twin runs the identical op sequence on a structurally
// identical tree with the gate off, so work_ratio is apples-to-apples
// and the matching roots double as a correctness oracle.
func E13Propagation(cfg Config) Table {
	t := Table{
		ID:      "E13",
		Title:   "Change propagation: structural waves (batch × tree sweep)",
		Claim:   "k-leaf structural wave touches O(k log(n/k)) records — ≤5% of the trace for k≤16 on n≥64k — with ≥5× less pram work than full re-simulation",
		Columns: []string{"n", "k", "records_touched", "touched/total", "touched/(k·ln(n/k))", "resim_waves", "work/wave", "resim_work/wave", "work_ratio", "roots_match"},
	}
	src := prng.New(cfg.Seed + 13)
	trials := 12
	if cfg.Quick {
		trials = 4
	}
	for _, n := range cfg.sizes([]int{1 << 12, 1 << 14, 1 << 16}, []int{1 << 10, 1 << 12}) {
		for _, k := range []int{1, 4, 16} {
			// Twin trees: same generator stream → identical structure, so
			// leaf indices address the same logical leaf in both.
			trP := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, tree.ShapeRandom)
			cP := core.New(trP, cfg.Seed+17, nil)
			trR := tree.Generate(ring, prng.New(cfg.Seed+uint64(n)), n, tree.ShapeRandom)
			cR := core.New(trR, cfg.Seed+17, nil)
			cR.SetPropagate(false)

			touched, total, resims := 0, 0, 0
			var workP, workR int64
			match := true
			for trial := 0; trial < trials; trial++ {
				leavesP, leavesR := trP.Leaves(), trR.Leaves()
				seen := map[int]bool{}
				idx := make([]int, 0, k)
				for len(idx) < k {
					i := src.Intn(len(leavesP))
					if !seen[i] {
						seen[i] = true
						idx = append(idx, i)
					}
				}
				opsP := make([]core.AddOp, k)
				opsR := make([]core.AddOp, k)
				for j, i := range idx {
					lv, rv := src.Int63(), src.Int63()
					opsP[j] = core.AddOp{Leaf: leavesP[i], Op: semiring.OpAdd(ring), LeftVal: lv, RightVal: rv}
					opsR[j] = core.AddOp{Leaf: leavesR[i], Op: semiring.OpAdd(ring), LeftVal: lv, RightVal: rv}
				}
				before := cP.Machine().Metrics().Work
				cP.AddLeaves(opsP)
				workP += cP.Machine().Metrics().Work - before
				heal := cP.LastHeal()
				touched += heal.StructRecords
				total += heal.TotalRecords
				if heal.Resimulated {
					resims++
				}
				before = cR.Machine().Metrics().Work
				cR.AddLeaves(opsR)
				workR += cR.Machine().Metrics().Work - before
				match = match && cP.RootValue() == cR.RootValue()
			}
			meanTouched := float64(touched) / float64(trials)
			frac := float64(touched) / float64(total)
			wp := float64(workP) / float64(trials)
			wr := float64(workR) / float64(trials)
			ratio := 0.0
			if wp > 0 {
				ratio = wr / wp
			}
			t.AddRow(n, k, meanTouched, frac,
				meanTouched/(float64(k)*math.Log(float64(n)/float64(k))),
				resims, wp, wr, ratio, match)
		}
	}
	t.Notes = append(t.Notes,
		"records_touched = trace records re-executed per structural wave (heal.StructRecords); touched/total divides by the trace size after the wave",
		"work_ratio = resim twin's pram work per wave / propagation's — the speedup change propagation buys",
		"resim_waves counts propagation-path waves that fell back to full re-simulation (0 expected at these sizes)")
	return t
}

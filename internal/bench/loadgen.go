package bench

// The engine load driver: measures the concurrent request-coalescing
// engine (internal/engine, surfaced as dyntc.Engine) at varying client
// counts and batch windows, and emits machine-readable BENCH_engine.json
// so the perf trajectory is tracked across PRs.
//
// Each client owns a disjoint region of one shared expression tree and
// runs a deterministic seeded program: structural operations (grow /
// collapse) are submitted blocking — their results shape the program —
// while label updates and value queries are pipelined asynchronously, so
// the executor sees sustained concurrent pressure and coalescing shows up
// even with no batching window. Every run is validated against a
// sequential replay of the same programs on a plain Expr: the final root
// values must match exactly.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"dyntc"
	"dyntc/internal/prng"
)

// EngineConfig configures the engine load bench.
type EngineConfig struct {
	Clients      []int           // client-count sweep
	Windows      []time.Duration // batching-window sweep
	Workers      []int           // PRAM worker-hint sweep (1 = sequential machine)
	OpsPerClient int             // operations per client per run
	MaxBatch     int             // flush size cap floor (0 = engine default)
	Grain        int             // machine sequential threshold (0 = adaptive)
	Seed         uint64
	// Shape selects the pre-grown topology the clients' base leaves hang
	// off: "star" (the default: FIFO expansion, a wide shallow fan),
	// "path" (LIFO expansion, one maximal-depth spine — the adversarial
	// shape for contraction depth) or "random" (uniform leaf expansion).
	Shape string

	// SharedPool additionally runs every cell in shared-pool mode (one
	// process-wide scheduler for machines + wave task groups) next to the
	// private mode (a dedicated pool per tree, the pre-refactor shape), so
	// rows record the shared-vs-private speedup.
	SharedPool bool
	// ForestTrees adds forest cells: N trees, one client each, machine
	// hint ForestWorkers per tree — the oversubscription scenario the
	// shared pool exists for (private mode spawns N pools). Forest cells
	// pre-grow every tree and drive batched set/value traffic so waves
	// carry real parallel steps, and pin the grain to ForestGrain
	// (default 8: every wave step dispatches, modeling expensive step
	// bodies) so those steps actually hit the pools — N×workers private
	// workers waking and parking against each other versus one
	// self-throttling shared pool is exactly what the cell measures.
	ForestTrees   []int
	ForestWorkers int
	ForestGrain   int
	// AdaptiveProbe adds a saturation cell with a deliberately low flush
	// cap (64) so the committed row demonstrates adaptive MaxBatch
	// growing the cap (cur_max_batch, batch_grows, mean_batch).
	AdaptiveProbe bool
	// Obs, when set, attaches the engine metrics bundle to every run — the
	// -scrape mode: the bench then measures the instrumented engine (the
	// overhead-check configuration) and the caller can embed the
	// registry's deltas next to the wall-clock numbers.
	Obs *dyntc.EngineMetrics
	// Spans, when set, additionally enables distributed tracing at the
	// default sampling cadence, so an instrumented run also carries the
	// span layer's cost on the (almost always unsampled) flush path —
	// the configuration the scrape-on baseline gate regresses against.
	Spans *dyntc.SpanLog
}

// DefaultEngineConfig is the sweep cmd/dyntc-bench runs.
func DefaultEngineConfig(quick bool, seed uint64) EngineConfig {
	cfg := EngineConfig{
		Clients:       []int{1, 2, 4, 8, 16, 32},
		Windows:       []time.Duration{0, 100 * time.Microsecond, time.Millisecond},
		Workers:       []int{1, 4},
		OpsPerClient:  2000,
		Seed:          seed,
		ForestWorkers: 4,
		AdaptiveProbe: true,
	}
	if quick {
		cfg.Clients = []int{1, 8}
		cfg.Windows = []time.Duration{0, 100 * time.Microsecond}
		cfg.Workers = []int{1, 4}
		cfg.OpsPerClient = 300
	}
	return cfg
}

// EngineResult is one measurement: a (clients, window, workers) cell over
// one shared tree (Trees == 1), or a forest cell (Trees > 1, one client
// per tree), in private or shared scheduler mode.
type EngineResult struct {
	Clients    int     `json:"clients"`
	WindowUS   float64 `json:"window_us"`
	Workers    int     `json:"workers"`
	Trees      int     `json:"trees"`
	Shared     bool    `json:"shared_pool"`
	MaxBatch   int     `json:"max_batch"`  // configured flush-cap floor (0 = default)
	GoMaxProcs int     `json:"gomaxprocs"` // host class marker for baseline comparisons
	Ops        int     `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// SpeedupVsSeq is OpsPerSec relative to the workers=1 run of the same
	// cell; SpeedupVsPrivate relative to the private-pools run of the same
	// cell (0 when the sweep has no matching baseline).
	SpeedupVsSeq     float64 `json:"speedup_vs_seq"`
	SpeedupVsPrivate float64 `json:"speedup_vs_private"`

	MeanBatch float64 `json:"mean_batch"` // requests per executed flush
	MeanWave  float64 `json:"mean_wave"`  // requests per conflict-free wave
	MaxFlush  int64   `json:"max_flush"`
	Flushes   uint64  `json:"flushes"`
	Waves     uint64  `json:"waves"`

	// Change-propagation evidence: the pre-grown topology, the mean trace
	// records re-executed per mutating wave, the waves that fell back to
	// a full re-simulation, and the contraction's final trace size (so
	// records_touched/trace_records is the fraction a wave touches).
	Shape          string  `json:"shape,omitempty"`
	RecordsTouched float64 `json:"records_touched"`
	ResimWaves     uint64  `json:"resim_waves"`
	TraceRecords   int     `json:"trace_records,omitempty"`

	// Adaptive MaxBatch evidence: where the flush cap ended up and how
	// often it moved.
	CurMaxBatch int64  `json:"cur_max_batch"`
	BatchGrows  uint64 `json:"batch_grows"`

	// Goroutines is the process goroutine count mid-run (forest cells):
	// the oversubscription axis — N private pools carry N×workers
	// goroutines, the shared pool a fixed handful.
	Goroutines int `json:"goroutines,omitempty"`

	PRAMSteps int64 `json:"pram_steps"` // parallel rounds charged
	PRAMWork  int64 `json:"pram_work"`  // total processor-steps charged

	Root       int64 `json:"root"`
	ReplayRoot int64 `json:"replay_root"`
	Match      bool  `json:"match"`
}

// loadFrame is one uncollapsed grow: parent is internal with children
// (left, right); only the top frame's right child grows further, so the
// top frame is always collapsible and left children stay leaves.
type loadFrame struct{ parent, left, right *dyntc.Node }

// loadApplier abstracts live-concurrent vs sequential-replay execution.
type loadApplier interface {
	grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node, error)
	collapse(n *dyntc.Node, v int64) error
	setAsync(leaf *dyntc.Node, v int64) error
	valueAsync(n *dyntc.Node) error
	drain() error
}

type liveLoad struct {
	en      *dyntc.Engine
	pending []*dyntc.Future
	// noAutoDrain lets saturation probes pipeline past the usual 128
	// in-flight cap (the point is a deep queue).
	noAutoDrain bool
}

func (a *liveLoad) grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node, error) {
	return a.en.Grow(leaf, op, lv, rv)
}
func (a *liveLoad) collapse(n *dyntc.Node, v int64) error { return a.en.Collapse(n, v) }
func (a *liveLoad) setAsync(leaf *dyntc.Node, v int64) error {
	a.pending = append(a.pending, a.en.SetLeafAsync(leaf, v))
	return a.maybeDrain()
}
func (a *liveLoad) valueAsync(n *dyntc.Node) error {
	a.pending = append(a.pending, a.en.ValueAsync(n))
	return a.maybeDrain()
}
func (a *liveLoad) maybeDrain() error {
	if !a.noAutoDrain && len(a.pending) >= 128 {
		return a.drain()
	}
	return nil
}
func (a *liveLoad) drain() error {
	for _, f := range a.pending {
		if err := f.Wait(); err != nil {
			return err
		}
	}
	a.pending = a.pending[:0]
	return nil
}

type seqLoad struct{ e *dyntc.Expr }

func (a seqLoad) grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node, error) {
	l, r := a.e.Grow(leaf, op, lv, rv)
	return l, r, nil
}
func (a seqLoad) collapse(n *dyntc.Node, v int64) error { a.e.Collapse(n, v); return nil }
func (a seqLoad) setAsync(leaf *dyntc.Node, v int64) error {
	a.e.SetLeaf(leaf, v)
	return nil
}
func (a seqLoad) valueAsync(n *dyntc.Node) error { _ = a.e.Value(n); return nil }
func (a seqLoad) drain() error                   { return nil }

// loadClient is the deterministic per-client program; its rng stream (and
// hence structure) is identical live and replayed.
type loadClient struct {
	rng   *prng.Source
	ring  dyntc.Ring
	base  *dyntc.Node
	stack []loadFrame
}

const loadMaxDepth = 20

func (c *loadClient) step(a loadApplier) error {
	r := c.rng.Intn(100)
	switch {
	case r < 15 && len(c.stack) < loadMaxDepth:
		target := c.base
		if k := len(c.stack); k > 0 {
			target = c.stack[k-1].right
		}
		op := dyntc.OpAdd(c.ring)
		if c.rng.Intn(2) == 0 {
			op = dyntc.OpMul(c.ring)
		}
		lv, rv := int64(c.rng.Intn(1000)), int64(c.rng.Intn(1000))
		if err := a.drain(); err != nil { // order pipelined ops before structure
			return err
		}
		l, rt, err := a.grow(target, op, lv, rv)
		if err != nil {
			return err
		}
		c.stack = append(c.stack, loadFrame{parent: target, left: l, right: rt})
		return nil
	case r < 25 && len(c.stack) > 0:
		f := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		if err := a.drain(); err != nil {
			return err
		}
		return a.collapse(f.parent, int64(c.rng.Intn(1000)))
	case r < 80:
		leaf := c.base
		if k := len(c.stack); k > 0 {
			if i := c.rng.Intn(k + 1); i == k {
				leaf = c.stack[k-1].right
			} else {
				leaf = c.stack[i].left
			}
		}
		return a.setAsync(leaf, int64(c.rng.Intn(1000)))
	default:
		n := c.base
		if k := len(c.stack); k > 0 {
			f := c.stack[c.rng.Intn(k)]
			switch c.rng.Intn(3) {
			case 0:
				n = f.parent
			case 1:
				n = f.left
			default:
				n = f.right
			}
		}
		return a.valueAsync(n)
	}
}

// engineFanOut grows the single-leaf tree into n disjoint client bases
// with star (FIFO, wide) topology.
func engineFanOut(e *dyntc.Expr, ring dyntc.Ring, n int) []*dyntc.Node {
	return engineFanOutShape(e, ring, n, "", 0)
}

// engineFanOutShape grows the single-leaf tree into n disjoint client
// bases with the requested topology: "star"/"" expands FIFO (wide,
// depth log n), "path" expands the newest leaf (one spine, depth n-1),
// "random" expands a seeded uniform leaf.
func engineFanOutShape(e *dyntc.Expr, ring dyntc.Ring, n int, shape string, seed uint64) []*dyntc.Node {
	leaves := []*dyntc.Node{e.Tree().Root}
	rng := prng.New(seed + 1)
	for len(leaves) < n {
		var i int
		switch shape {
		case "path":
			i = len(leaves) - 1
		case "random":
			i = rng.Intn(len(leaves))
		default: // "star"
			i = 0
		}
		l, r := e.Grow(leaves[i], dyntc.OpAdd(ring), 1, 1)
		leaves[i] = leaves[len(leaves)-1]
		leaves = append(leaves[:len(leaves)-1], l, r)
	}
	return leaves
}

// runEngineLoad executes one (clients, window, workers) cell over one
// shared tree. In shared mode the machine and the engine's wave task
// groups ride one scheduler pool; in private mode the machine gets a
// dedicated pool (the pre-refactor architecture). The replay oracle is
// always sequential, so a match also certifies that pool execution
// leaves results untouched.
func runEngineLoad(cfg EngineConfig, clients int, window time.Duration, workers int, shared bool, maxBatch int) EngineResult {
	ring := dyntc.ModRing(1_000_000_007)

	exprOpts := []dyntc.Option{dyntc.WithSeed(cfg.Seed)}
	if cfg.Grain > 0 {
		exprOpts = append(exprOpts, dyntc.WithGrain(cfg.Grain))
	}
	var pool *dyntc.SchedPool
	bo := dyntc.BatchOptions{MaxBatch: maxBatch, Window: window, Workers: workers, Metrics: cfg.Obs, Spans: cfg.Spans}
	if shared {
		pool = dyntc.NewSchedPool(0)
		exprOpts = append(exprOpts, dyntc.WithPool(pool))
		bo.Pool = pool
	} else if workers > 1 {
		pool = dyntc.NewSchedPool(workers)
		exprOpts = append(exprOpts, dyntc.WithPool(pool))
	}
	live := dyntc.NewExpr(ring, 1, exprOpts...)
	bases := engineFanOutShape(live, ring, clients, cfg.Shape, cfg.Seed)
	en := live.Serve(bo)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &loadClient{rng: prng.New(cfg.Seed + uint64(i)*1000), ring: ring, base: bases[i]}
			a := &liveLoad{en: en}
			for j := 0; j < cfg.OpsPerClient; j++ {
				if err := c.step(a); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = a.drain()
		}(i)
	}
	wg.Wait()
	en.Close()
	elapsed := time.Since(start)
	if pool != nil {
		pool.Close()
	}

	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: engine load client failed: %v", err))
		}
	}

	// Sequential replay oracle.
	replay := dyntc.NewExpr(ring, 1, dyntc.WithSeed(cfg.Seed))
	rbases := engineFanOutShape(replay, ring, clients, cfg.Shape, cfg.Seed)
	for i := 0; i < clients; i++ {
		c := &loadClient{rng: prng.New(cfg.Seed + uint64(i)*1000), ring: ring, base: rbases[i]}
		a := seqLoad{e: replay}
		for j := 0; j < cfg.OpsPerClient; j++ {
			if err := c.step(a); err != nil {
				panic(fmt.Sprintf("bench: replay client failed: %v", err))
			}
		}
	}

	st := en.Stats()
	pm := live.PRAM()
	ops := clients * cfg.OpsPerClient
	var touched float64
	if st.AppliedSeq > 0 {
		touched = float64(st.HealRecords) / float64(st.AppliedSeq)
	}
	shape := cfg.Shape
	if shape == "" {
		shape = "star"
	}
	return EngineResult{
		Clients:        clients,
		WindowUS:       float64(window) / float64(time.Microsecond),
		Workers:        st.Workers,
		Trees:          1,
		Shared:         shared,
		MaxBatch:       maxBatch,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Ops:            ops,
		Seconds:        elapsed.Seconds(),
		OpsPerSec:      float64(ops) / elapsed.Seconds(),
		MeanBatch:      st.MeanFlush(),
		MeanWave:       st.MeanWave(),
		MaxFlush:       st.MaxFlush,
		Flushes:        st.Flushes,
		Waves:          st.Waves,
		Shape:          shape,
		RecordsTouched: touched,
		ResimWaves:     st.Resimulations,
		TraceRecords:   live.LastHeal().TotalRecords,
		CurMaxBatch:    st.CurMaxBatch,
		BatchGrows:     st.BatchGrows,
		PRAMSteps:      pm.Steps,
		PRAMWork:       pm.Work,
		Root:           live.Root(),
		ReplayRoot:     replay.Root(),
		Match:          live.Root() == replay.Root(),
	}
}

// forestLeaves is the pre-grown size of every forest-cell tree: big
// enough that a coalesced set wave's heal carries parallel-sized steps.
const forestLeaves = 96

// burstProgram drives one tree's measured traffic: rounds of `burst`
// pipelined requests (7/8 set-leaf, 1/8 value) over the pre-grown
// leaves, drained per round — the batchy read-modify traffic coalescing
// exists for. Forest cells use bursts of 64; the saturation probe uses
// 256 (4× its flush-cap floor) so flushes clip against the cap with the
// queue still deep. Same-leaf requests within a burst keep submission
// order (the engine defers conflicting requests in order), so the
// sequential replay oracle is exact.
func burstProgram(rng *prng.Source, leaves []*dyntc.Node, ops, burst int,
	set func(*dyntc.Node, int64), value func(*dyntc.Node), drain func() error) error {
	for done := 0; done < ops; {
		n := burst
		if rest := ops - done; n > rest {
			n = rest
		}
		for j := 0; j < n; j++ {
			leaf := leaves[rng.Intn(len(leaves))]
			if j%8 == 7 {
				value(leaf)
			} else {
				set(leaf, int64(rng.Intn(1000)))
			}
		}
		if err := drain(); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// runForestLoad executes one forest cell: trees independent pre-grown
// expression trees, one client each, every tree's machine hinted at
// `workers` with the grain pinned low (cfg.ForestGrain) so wave steps
// genuinely hit the scheduler. In private mode every tree gets its own
// pool — trees×workers goroutines all waking and parking against each
// other, the oversubscription the unified scheduler removes — while
// shared mode runs the whole forest (machines, wave task groups, engine
// lanes) on one GOMAXPROCS-sized pool that self-throttles to the
// hardware. The oracle replays every tree's program sequentially and
// compares the folded roots.
func runForestLoad(cfg EngineConfig, trees, workers int, shared bool) EngineResult {
	ring := dyntc.ModRing(1_000_000_007)
	grain := cfg.ForestGrain
	if grain <= 0 {
		grain = 8
	}

	var sharedPool *dyntc.SchedPool
	bo := dyntc.BatchOptions{Workers: workers, Metrics: cfg.Obs, Spans: cfg.Spans}
	if shared {
		sharedPool = dyntc.NewSchedPool(0)
		bo.Pool = sharedPool
	}
	forest := dyntc.NewForest(bo)
	var privPools []*dyntc.SchedPool
	engines := make([]*dyntc.Engine, trees)
	bases := make([][]*dyntc.Node, trees)
	for i := 0; i < trees; i++ {
		opts := []dyntc.Option{dyntc.WithSeed(cfg.Seed + uint64(i)), dyntc.WithGrain(grain)}
		if !shared {
			p := dyntc.NewSchedPool(workers)
			privPools = append(privPools, p)
			opts = append(opts, dyntc.WithPool(p))
		}
		_, en := forest.Create(ring, 1, opts...)
		engines[i] = en
		// Pre-grow deterministically through a barrier (untapped engine:
		// direct Expr mutation inside Query is the setup fast path).
		if err := en.Query(func(e *dyntc.Expr) { bases[i] = engineFanOut(e, ring, forestLeaves) }); err != nil {
			panic(fmt.Sprintf("bench: forest pre-grow %d: %v", i, err))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, trees)
	for i := 0; i < trees; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := &liveLoad{en: engines[i]}
			errs[i] = burstProgram(prng.New(cfg.Seed+uint64(i)*1000), bases[i], cfg.OpsPerClient, 64,
				func(n *dyntc.Node, v int64) { _ = a.setAsync(n, v) },
				func(n *dyntc.Node) { _ = a.valueAsync(n) },
				a.drain)
		}(i)
	}
	goroutines := runtime.NumGoroutine() // mid-run: pools spawned, clients live
	wg.Wait()
	elapsed := time.Since(start)
	st := forest.Stats()
	var rootFold int64
	for i := range engines {
		var r int64
		if err := engines[i].Query(func(e *dyntc.Expr) { r = e.Root() }); err != nil {
			panic(fmt.Sprintf("bench: forest root %d: %v", i, err))
		}
		rootFold ^= r + int64(i)
	}
	forest.Close()
	for _, p := range privPools {
		p.Close()
	}
	if sharedPool != nil {
		sharedPool.Close()
	}
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: forest client %d failed: %v", i, err))
		}
	}

	// Sequential replay oracle, tree by tree.
	var replayFold int64
	for i := 0; i < trees; i++ {
		replay := dyntc.NewExpr(ring, 1, dyntc.WithSeed(cfg.Seed+uint64(i)))
		leaves := engineFanOut(replay, ring, forestLeaves)
		err := burstProgram(prng.New(cfg.Seed+uint64(i)*1000), leaves, cfg.OpsPerClient, 64,
			func(n *dyntc.Node, v int64) { replay.SetLeaf(n, v) },
			func(n *dyntc.Node) { _ = replay.Value(n) },
			func() error { return nil })
		if err != nil {
			panic(fmt.Sprintf("bench: forest replay %d: %v", i, err))
		}
		replayFold ^= replay.Root() + int64(i)
	}

	ops := trees * cfg.OpsPerClient
	var touched float64
	if st.AppliedSeq > 0 {
		touched = float64(st.HealRecords) / float64(st.AppliedSeq)
	}
	return EngineResult{
		Clients:        trees,
		Workers:        workers,
		Trees:          trees,
		Shared:         shared,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Ops:            ops,
		Seconds:        elapsed.Seconds(),
		OpsPerSec:      float64(ops) / elapsed.Seconds(),
		MeanBatch:      st.MeanFlush(),
		MeanWave:       st.MeanWave(),
		MaxFlush:       st.MaxFlush,
		Flushes:        st.Flushes,
		Waves:          st.Waves,
		Shape:          "star",
		RecordsTouched: touched,
		ResimWaves:     st.Resimulations,
		CurMaxBatch:    st.CurMaxBatch,
		BatchGrows:     st.BatchGrows,
		Goroutines:     goroutines,
		Root:           rootFold,
		ReplayRoot:     replayFold,
		Match:          rootFold == replayFold,
	}
}

// runSaturationProbe is the adaptive-MaxBatch evidence cell: 16 clients
// flood one engine (flush cap floor 64) with 256-request pipelined
// storms over disjoint leaf regions. The committed row must show
// cur_max_batch (and the mean executed batch) well above the 64 floor.
func runSaturationProbe(cfg EngineConfig, workers int, shared bool) EngineResult {
	const (
		probeClients = 16
		probeRegion  = 32 // leaves per client
		probeFloor   = 64 // MaxBatch floor under test
	)
	ring := dyntc.ModRing(1_000_000_007)
	var pool *dyntc.SchedPool
	exprOpts := []dyntc.Option{dyntc.WithSeed(cfg.Seed)}
	bo := dyntc.BatchOptions{MaxBatch: probeFloor, Workers: workers, Metrics: cfg.Obs, Spans: cfg.Spans}
	if shared {
		pool = dyntc.NewSchedPool(0)
		exprOpts = append(exprOpts, dyntc.WithPool(pool))
		bo.Pool = pool
	} else if workers > 1 {
		pool = dyntc.NewSchedPool(workers)
		exprOpts = append(exprOpts, dyntc.WithPool(pool))
	}
	live := dyntc.NewExpr(ring, 1, exprOpts...)
	leaves := engineFanOut(live, ring, probeClients*probeRegion)
	en := live.Serve(bo)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, probeClients)
	for i := 0; i < probeClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := &liveLoad{en: en, noAutoDrain: true}
			region := leaves[i*probeRegion : (i+1)*probeRegion]
			errs[i] = burstProgram(prng.New(cfg.Seed+uint64(i)*1000), region, cfg.OpsPerClient, 256,
				func(n *dyntc.Node, v int64) { _ = a.setAsync(n, v) },
				func(n *dyntc.Node) { _ = a.valueAsync(n) },
				a.drain)
		}(i)
	}
	wg.Wait()
	en.Close()
	elapsed := time.Since(start)
	if pool != nil {
		pool.Close()
	}
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: saturation client %d failed: %v", i, err))
		}
	}

	// Replay oracle: disjoint regions commute, so client-after-client
	// sequential replay must land on the same root.
	replay := dyntc.NewExpr(ring, 1, dyntc.WithSeed(cfg.Seed))
	rleaves := engineFanOut(replay, ring, probeClients*probeRegion)
	for i := 0; i < probeClients; i++ {
		region := rleaves[i*probeRegion : (i+1)*probeRegion]
		err := burstProgram(prng.New(cfg.Seed+uint64(i)*1000), region, cfg.OpsPerClient, 256,
			func(n *dyntc.Node, v int64) { replay.SetLeaf(n, v) },
			func(n *dyntc.Node) { _ = replay.Value(n) },
			func() error { return nil })
		if err != nil {
			panic(fmt.Sprintf("bench: saturation replay %d: %v", i, err))
		}
	}

	st := en.Stats()
	pm := live.PRAM()
	ops := probeClients * cfg.OpsPerClient
	var touched float64
	if st.AppliedSeq > 0 {
		touched = float64(st.HealRecords) / float64(st.AppliedSeq)
	}
	return EngineResult{
		Clients:        probeClients,
		Workers:        st.Workers,
		Trees:          1,
		Shared:         shared,
		MaxBatch:       probeFloor,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Ops:            ops,
		Seconds:        elapsed.Seconds(),
		OpsPerSec:      float64(ops) / elapsed.Seconds(),
		MeanBatch:      st.MeanFlush(),
		MeanWave:       st.MeanWave(),
		MaxFlush:       st.MaxFlush,
		Flushes:        st.Flushes,
		Waves:          st.Waves,
		Shape:          "star",
		RecordsTouched: touched,
		ResimWaves:     st.Resimulations,
		TraceRecords:   live.LastHeal().TotalRecords,
		CurMaxBatch:    st.CurMaxBatch,
		BatchGrows:     st.BatchGrows,
		PRAMSteps:      pm.Steps,
		PRAMWork:       pm.Work,
		Root:           live.Root(),
		ReplayRoot:     replay.Root(),
		Match:          live.Root() == replay.Root(),
	}
}

// EngineLoad runs the full sweep: every (clients, window, workers) cell
// in private mode (plus shared mode with cfg.SharedPool), the forest
// cells, and the adaptive-MaxBatch saturation probe. Each row's speedups
// are filled against the workers=1 run and the private run of its cell.
func EngineLoad(cfg EngineConfig) []EngineResult {
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1}
	}
	modes := []bool{false}
	if cfg.SharedPool {
		modes = append(modes, true)
	}
	var out []EngineResult
	for _, shared := range modes {
		for _, wk := range workers {
			for _, w := range cfg.Windows {
				for _, c := range cfg.Clients {
					out = append(out, runEngineLoad(cfg, c, w, wk, shared, cfg.MaxBatch))
				}
			}
		}
	}
	fw := cfg.ForestWorkers
	if fw <= 0 {
		fw = 4
	}
	for _, shared := range modes {
		for _, n := range cfg.ForestTrees {
			out = append(out, runForestLoad(cfg, n, fw, shared))
		}
	}
	if cfg.AdaptiveProbe {
		for _, shared := range modes {
			out = append(out, runSaturationProbe(cfg, workers[len(workers)-1], shared))
		}
	}

	type cell struct {
		clients  int
		windowUS float64
		trees    int
		shared   bool
		maxBatch int
	}
	seqBase := make(map[cell]float64)
	for _, r := range out {
		if r.Workers == 1 {
			seqBase[cell{r.Clients, r.WindowUS, r.Trees, r.Shared, r.MaxBatch}] = r.OpsPerSec
		}
	}
	type pcell struct {
		clients  int
		windowUS float64
		workers  int
		trees    int
		maxBatch int
	}
	privBase := make(map[pcell]float64)
	for _, r := range out {
		if !r.Shared {
			privBase[pcell{r.Clients, r.WindowUS, r.Workers, r.Trees, r.MaxBatch}] = r.OpsPerSec
		}
	}
	for i := range out {
		if base := seqBase[cell{out[i].Clients, out[i].WindowUS, out[i].Trees, out[i].Shared, out[i].MaxBatch}]; base > 0 {
			out[i].SpeedupVsSeq = out[i].OpsPerSec / base
		}
		if out[i].Shared {
			if base := privBase[pcell{out[i].Clients, out[i].WindowUS, out[i].Workers, out[i].Trees, out[i].MaxBatch}]; base > 0 {
				out[i].SpeedupVsPrivate = out[i].OpsPerSec / base
			}
		}
	}
	return out
}

// CompareEngineBaseline checks shared-pool results against a committed
// baseline file: shared rows whose full configuration (clients, window,
// workers, trees, max-batch floor, ops, gomaxprocs) matches a baseline
// row must not regress OpsPerSec by more than tolerance (e.g. 0.10).
// Rows without a comparable baseline row — a different host class
// included — are skipped, as are measurements too short to be stable
// (under baselineMinSeconds on either side). It returns the comparisons
// performed and the failures.
func CompareEngineBaseline(results, baseline []EngineResult, tolerance float64) (compared int, failures []string) {
	const baselineMinSeconds = 0.2
	type key struct {
		clients  int
		windowUS float64
		workers  int
		trees    int
		maxBatch int
		ops      int
		gmp      int
		shape    string
	}
	// Rows written before the shape column carry "", which is the star
	// fan-out — normalize so old baselines stay comparable.
	shapeOf := func(r EngineResult) string {
		if r.Shape == "" {
			return "star"
		}
		return r.Shape
	}
	base := make(map[key]EngineResult)
	for _, r := range baseline {
		if r.Shared {
			base[key{r.Clients, r.WindowUS, r.Workers, r.Trees, r.MaxBatch, r.Ops, r.GoMaxProcs, shapeOf(r)}] = r
		}
	}
	for _, r := range results {
		if !r.Shared {
			continue
		}
		b, ok := base[key{r.Clients, r.WindowUS, r.Workers, r.Trees, r.MaxBatch, r.Ops, r.GoMaxProcs, shapeOf(r)}]
		if !ok || b.OpsPerSec <= 0 {
			continue
		}
		if r.Seconds < baselineMinSeconds || b.Seconds < baselineMinSeconds {
			continue
		}
		want := b.OpsPerSec
		compared++
		if r.OpsPerSec < (1-tolerance)*want {
			failures = append(failures, fmt.Sprintf(
				"clients=%d window=%.0fus workers=%d trees=%d shared=%v maxbatch=%d: %.0f ops/s vs baseline %.0f (-%.1f%%, tolerance %.0f%%)",
				r.Clients, r.WindowUS, r.Workers, r.Trees, r.Shared, r.MaxBatch,
				r.OpsPerSec, want, 100*(1-r.OpsPerSec/want), 100*tolerance))
		}
	}
	return compared, failures
}

// ReadEngineJSON loads a BENCH_engine.json payload (for baseline checks).
func ReadEngineJSON(path string) ([]EngineResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Results []EngineResult `json:"results"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, err
	}
	return payload.Results, nil
}

// WriteEngineJSON writes results as the tracked BENCH_engine.json payload.
func WriteEngineJSON(path string, results []EngineResult) error {
	return WriteEngineJSONScrape(path, results, nil)
}

// WriteEngineJSONScrape is WriteEngineJSON with an embedded metrics
// snapshot (-scrape mode): the registry's sample deltas over the run.
// ReadEngineJSON ignores the extra field, so scrape-annotated files stay
// valid baselines.
func WriteEngineJSONScrape(path string, results []EngineResult, scrape map[string]float64) error {
	payload := struct {
		Bench   string             `json:"bench"`
		Results []EngineResult     `json:"results"`
		Scrape  map[string]float64 `json:"scrape,omitempty"`
	}{Bench: "engine-coalescing", Results: results, Scrape: scrape}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// EngineTable renders results as a dyntc-bench table.
func EngineTable(results []EngineResult) Table {
	t := Table{
		ID:      "E12",
		Title:   "engine: concurrent request coalescing",
		Claim:   "batch size grows with concurrency; shared scheduler beats per-tree pools at forest scale; results identical to sequential replay",
		Columns: []string{"trees", "clients", "shape", "window_us", "workers", "shared", "ops/s", "speedup", "vs_private", "mean_batch", "records_touched", "resim_waves", "match"},
	}
	for _, r := range results {
		shape := r.Shape
		if shape == "" {
			shape = "star"
		}
		t.AddRow(r.Trees, r.Clients, shape, fmt.Sprintf("%.0f", r.WindowUS), fmt.Sprint(r.Workers),
			fmt.Sprint(r.Shared),
			fmt.Sprintf("%.0f", r.OpsPerSec), fmt.Sprintf("%.2f", r.SpeedupVsSeq),
			fmt.Sprintf("%.2f", r.SpeedupVsPrivate),
			r.MeanBatch, fmt.Sprintf("%.1f", r.RecordsTouched), fmt.Sprint(r.ResimWaves), fmt.Sprint(r.Match))
	}
	t.Notes = append(t.Notes,
		"structural ops blocking, label/value ops pipelined; every run replayed sequentially and compared",
		"workers = per-tree PRAM hint; shared = one scheduler pool for the whole run vs a pool per tree",
		"speedup vs the workers=1 run of the same cell; vs_private vs the private-pools run of the same cell",
		"cur_max_batch > the configured floor demonstrates adaptive MaxBatch growth under saturation",
		"records_touched = trace records re-executed per mutating wave (change propagation); resim_waves = waves that fell back to full re-simulation")
	return t
}

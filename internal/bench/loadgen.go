package bench

// The engine load driver: measures the concurrent request-coalescing
// engine (internal/engine, surfaced as dyntc.Engine) at varying client
// counts and batch windows, and emits machine-readable BENCH_engine.json
// so the perf trajectory is tracked across PRs.
//
// Each client owns a disjoint region of one shared expression tree and
// runs a deterministic seeded program: structural operations (grow /
// collapse) are submitted blocking — their results shape the program —
// while label updates and value queries are pipelined asynchronously, so
// the executor sees sustained concurrent pressure and coalescing shows up
// even with no batching window. Every run is validated against a
// sequential replay of the same programs on a plain Expr: the final root
// values must match exactly.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"dyntc"
	"dyntc/internal/prng"
)

// EngineConfig configures the engine load bench.
type EngineConfig struct {
	Clients      []int           // client-count sweep
	Windows      []time.Duration // batching-window sweep
	Workers      []int           // PRAM worker-pool sweep (1 = sequential machine)
	OpsPerClient int             // operations per client per run
	MaxBatch     int             // flush size cap (0 = engine default)
	Grain        int             // machine sequential threshold (0 = default)
	Seed         uint64
}

// DefaultEngineConfig is the sweep cmd/dyntc-bench runs.
func DefaultEngineConfig(quick bool, seed uint64) EngineConfig {
	cfg := EngineConfig{
		Clients:      []int{1, 2, 4, 8, 16, 32},
		Windows:      []time.Duration{0, 100 * time.Microsecond, time.Millisecond},
		Workers:      []int{1, 4},
		OpsPerClient: 2000,
		Seed:         seed,
	}
	if quick {
		cfg.Clients = []int{1, 8}
		cfg.Windows = []time.Duration{0, 100 * time.Microsecond}
		cfg.Workers = []int{1, 4}
		cfg.OpsPerClient = 300
	}
	return cfg
}

// EngineResult is one (clients, window, workers) measurement.
type EngineResult struct {
	Clients   int     `json:"clients"`
	WindowUS  float64 `json:"window_us"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// SpeedupVsSeq is OpsPerSec relative to the workers=1 run of the same
	// (clients, window) cell; 0 when the sweep has no workers=1 baseline.
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`

	MeanBatch float64 `json:"mean_batch"` // requests per executed flush
	MeanWave  float64 `json:"mean_wave"`  // requests per conflict-free wave
	MaxFlush  int64   `json:"max_flush"`
	Flushes   uint64  `json:"flushes"`
	Waves     uint64  `json:"waves"`

	PRAMSteps int64 `json:"pram_steps"` // parallel rounds charged
	PRAMWork  int64 `json:"pram_work"`  // total processor-steps charged

	Root       int64 `json:"root"`
	ReplayRoot int64 `json:"replay_root"`
	Match      bool  `json:"match"`
}

// loadFrame is one uncollapsed grow: parent is internal with children
// (left, right); only the top frame's right child grows further, so the
// top frame is always collapsible and left children stay leaves.
type loadFrame struct{ parent, left, right *dyntc.Node }

// loadApplier abstracts live-concurrent vs sequential-replay execution.
type loadApplier interface {
	grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node, error)
	collapse(n *dyntc.Node, v int64) error
	setAsync(leaf *dyntc.Node, v int64) error
	valueAsync(n *dyntc.Node) error
	drain() error
}

type liveLoad struct {
	en      *dyntc.Engine
	pending []*dyntc.Future
}

func (a *liveLoad) grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node, error) {
	return a.en.Grow(leaf, op, lv, rv)
}
func (a *liveLoad) collapse(n *dyntc.Node, v int64) error { return a.en.Collapse(n, v) }
func (a *liveLoad) setAsync(leaf *dyntc.Node, v int64) error {
	a.pending = append(a.pending, a.en.SetLeafAsync(leaf, v))
	return a.maybeDrain()
}
func (a *liveLoad) valueAsync(n *dyntc.Node) error {
	a.pending = append(a.pending, a.en.ValueAsync(n))
	return a.maybeDrain()
}
func (a *liveLoad) maybeDrain() error {
	if len(a.pending) >= 128 {
		return a.drain()
	}
	return nil
}
func (a *liveLoad) drain() error {
	for _, f := range a.pending {
		if err := f.Wait(); err != nil {
			return err
		}
	}
	a.pending = a.pending[:0]
	return nil
}

type seqLoad struct{ e *dyntc.Expr }

func (a seqLoad) grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node, error) {
	l, r := a.e.Grow(leaf, op, lv, rv)
	return l, r, nil
}
func (a seqLoad) collapse(n *dyntc.Node, v int64) error { a.e.Collapse(n, v); return nil }
func (a seqLoad) setAsync(leaf *dyntc.Node, v int64) error {
	a.e.SetLeaf(leaf, v)
	return nil
}
func (a seqLoad) valueAsync(n *dyntc.Node) error { _ = a.e.Value(n); return nil }
func (a seqLoad) drain() error                   { return nil }

// loadClient is the deterministic per-client program; its rng stream (and
// hence structure) is identical live and replayed.
type loadClient struct {
	rng   *prng.Source
	ring  dyntc.Ring
	base  *dyntc.Node
	stack []loadFrame
}

const loadMaxDepth = 20

func (c *loadClient) step(a loadApplier) error {
	r := c.rng.Intn(100)
	switch {
	case r < 15 && len(c.stack) < loadMaxDepth:
		target := c.base
		if k := len(c.stack); k > 0 {
			target = c.stack[k-1].right
		}
		op := dyntc.OpAdd(c.ring)
		if c.rng.Intn(2) == 0 {
			op = dyntc.OpMul(c.ring)
		}
		lv, rv := int64(c.rng.Intn(1000)), int64(c.rng.Intn(1000))
		if err := a.drain(); err != nil { // order pipelined ops before structure
			return err
		}
		l, rt, err := a.grow(target, op, lv, rv)
		if err != nil {
			return err
		}
		c.stack = append(c.stack, loadFrame{parent: target, left: l, right: rt})
		return nil
	case r < 25 && len(c.stack) > 0:
		f := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		if err := a.drain(); err != nil {
			return err
		}
		return a.collapse(f.parent, int64(c.rng.Intn(1000)))
	case r < 80:
		leaf := c.base
		if k := len(c.stack); k > 0 {
			if i := c.rng.Intn(k + 1); i == k {
				leaf = c.stack[k-1].right
			} else {
				leaf = c.stack[i].left
			}
		}
		return a.setAsync(leaf, int64(c.rng.Intn(1000)))
	default:
		n := c.base
		if k := len(c.stack); k > 0 {
			f := c.stack[c.rng.Intn(k)]
			switch c.rng.Intn(3) {
			case 0:
				n = f.parent
			case 1:
				n = f.left
			default:
				n = f.right
			}
		}
		return a.valueAsync(n)
	}
}

// engineFanOut grows the single-leaf tree into n disjoint client bases.
func engineFanOut(e *dyntc.Expr, ring dyntc.Ring, n int) []*dyntc.Node {
	leaves := []*dyntc.Node{e.Tree().Root}
	for len(leaves) < n {
		l, r := e.Grow(leaves[0], dyntc.OpAdd(ring), 1, 1)
		leaves = append(leaves[1:], l, r)
	}
	return leaves
}

// runEngineLoad executes one (clients, window, workers) cell. The live run
// serves waves on a machine with the given worker-pool size; the replay
// oracle is always sequential, so a match also certifies that pool
// execution leaves results untouched.
func runEngineLoad(cfg EngineConfig, clients int, window time.Duration, workers int) EngineResult {
	ring := dyntc.ModRing(1_000_000_007)

	exprOpts := []dyntc.Option{dyntc.WithSeed(cfg.Seed)}
	if cfg.Grain > 0 {
		exprOpts = append(exprOpts, dyntc.WithGrain(cfg.Grain))
	}
	live := dyntc.NewExpr(ring, 1, exprOpts...)
	bases := engineFanOut(live, ring, clients)
	en := live.Serve(dyntc.BatchOptions{MaxBatch: cfg.MaxBatch, Window: window, Workers: workers})

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &loadClient{rng: prng.New(cfg.Seed + uint64(i)*1000), ring: ring, base: bases[i]}
			a := &liveLoad{en: en}
			for j := 0; j < cfg.OpsPerClient; j++ {
				if err := c.step(a); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = a.drain()
		}(i)
	}
	wg.Wait()
	en.Close()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: engine load client failed: %v", err))
		}
	}

	// Sequential replay oracle.
	replay := dyntc.NewExpr(ring, 1, dyntc.WithSeed(cfg.Seed))
	rbases := engineFanOut(replay, ring, clients)
	for i := 0; i < clients; i++ {
		c := &loadClient{rng: prng.New(cfg.Seed + uint64(i)*1000), ring: ring, base: rbases[i]}
		a := seqLoad{e: replay}
		for j := 0; j < cfg.OpsPerClient; j++ {
			if err := c.step(a); err != nil {
				panic(fmt.Sprintf("bench: replay client failed: %v", err))
			}
		}
	}

	st := en.Stats()
	pm := live.PRAM()
	ops := clients * cfg.OpsPerClient
	return EngineResult{
		Clients:    clients,
		WindowUS:   float64(window) / float64(time.Microsecond),
		Workers:    st.Workers,
		Ops:        ops,
		Seconds:    elapsed.Seconds(),
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		MeanBatch:  st.MeanFlush(),
		MeanWave:   st.MeanWave(),
		MaxFlush:   st.MaxFlush,
		Flushes:    st.Flushes,
		Waves:      st.Waves,
		PRAMSteps:  pm.Steps,
		PRAMWork:   pm.Work,
		Root:       live.Root(),
		ReplayRoot: replay.Root(),
		Match:      live.Root() == replay.Root(),
	}
}

// EngineLoad runs the full sweep and fills each row's speedup against the
// workers=1 run of its (clients, window) cell.
func EngineLoad(cfg EngineConfig) []EngineResult {
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1}
	}
	var out []EngineResult
	for _, wk := range workers {
		for _, w := range cfg.Windows {
			for _, c := range cfg.Clients {
				out = append(out, runEngineLoad(cfg, c, w, wk))
			}
		}
	}
	type cell struct {
		clients  int
		windowUS float64
	}
	baseline := make(map[cell]float64)
	for _, r := range out {
		if r.Workers == 1 {
			baseline[cell{r.Clients, r.WindowUS}] = r.OpsPerSec
		}
	}
	for i := range out {
		if base := baseline[cell{out[i].Clients, out[i].WindowUS}]; base > 0 {
			out[i].SpeedupVsSeq = out[i].OpsPerSec / base
		}
	}
	return out
}

// WriteEngineJSON writes results as the tracked BENCH_engine.json payload.
func WriteEngineJSON(path string, results []EngineResult) error {
	payload := struct {
		Bench   string         `json:"bench"`
		Results []EngineResult `json:"results"`
	}{Bench: "engine-coalescing", Results: results}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// EngineTable renders results as a dyntc-bench table.
func EngineTable(results []EngineResult) Table {
	t := Table{
		ID:      "E12",
		Title:   "engine: concurrent request coalescing",
		Claim:   "mean executed batch size grows with concurrency; results identical to sequential replay",
		Columns: []string{"clients", "window_us", "workers", "ops/s", "speedup", "mean_batch", "mean_wave", "max_flush", "match"},
	}
	for _, r := range results {
		t.AddRow(r.Clients, fmt.Sprintf("%.0f", r.WindowUS), fmt.Sprint(r.Workers),
			fmt.Sprintf("%.0f", r.OpsPerSec), fmt.Sprintf("%.2f", r.SpeedupVsSeq),
			r.MeanBatch, r.MeanWave,
			fmt.Sprint(r.MaxFlush), fmt.Sprint(r.Match))
	}
	t.Notes = append(t.Notes,
		"structural ops blocking, label/value ops pipelined; every run replayed sequentially and compared",
		"workers = PRAM worker-pool size for wave execution; speedup is vs the workers=1 run of the same cell")
	return t
}

// Package bench contains the experiment harness that regenerates every
// table of EXPERIMENTS.md. The paper (an extended abstract) publishes
// theorems rather than measured tables, so each experiment E1–E13 validates
// the *shape* of one claimed bound — slopes, ratios and crossovers on the
// metered PRAM simulator (see the experiments section of the README).
//
// Each experiment function returns a Table; cmd/dyntc-bench prints them,
// and the root bench_test.go wraps each in a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper bound being validated
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Config scales every experiment. Quick shrinks sizes for test runs.
type Config struct {
	Quick bool
	Seed  uint64
}

// sizes returns n sweeps depending on Quick mode.
func (c Config) sizes(full, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// All runs every experiment in order.
func All(cfg Config) []Table {
	return []Table{
		E1Build(cfg),
		E2Activation(cfg),
		E3InsertDelete(cfg),
		E4ListPrefix(cfg),
		E5StaticContraction(cfg),
		E6DynamicBatch(cfg),
		E7SingleUpdate(cfg),
		E8TreeProps(cfg),
		E9LCACanon(cfg),
		E10Baselines(cfg),
		E11Ablation(cfg),
		E13Propagation(cfg),
	}
}

// ByID returns the experiment with the given ID (e.g. "E3").
func ByID(id string, cfg Config) (Table, bool) {
	switch strings.ToUpper(id) {
	case "E1":
		return E1Build(cfg), true
	case "E2":
		return E2Activation(cfg), true
	case "E3":
		return E3InsertDelete(cfg), true
	case "E4":
		return E4ListPrefix(cfg), true
	case "E5":
		return E5StaticContraction(cfg), true
	case "E6":
		return E6DynamicBatch(cfg), true
	case "E7":
		return E7SingleUpdate(cfg), true
	case "E8":
		return E8TreeProps(cfg), true
	case "E9":
		return E9LCACanon(cfg), true
	case "E10":
		return E10Baselines(cfg), true
	case "E11":
		return E11Ablation(cfg), true
	case "E13":
		return E13Propagation(cfg), true
	}
	return Table{}, false
}

package bench

// The replication load driver (dyntc-bench -replay): measures the
// durability pipeline of internal/replog end to end — snapshot size and
// codec cost, wave-log append throughput under live engine traffic,
// replay throughput into a follower, and follower lag while tailing a
// leader mid-traffic. Emits the machine-readable BENCH_replay.json
// tracked across PRs.
//
// Each run drives one logged engine with the same deterministic
// region-sharded client programs as the engine bench, while a follower —
// bootstrapped from the pre-traffic snapshot — concurrently tails the
// in-memory wave log. Convergence is asserted, not assumed: at the end
// the follower's snapshot must be byte-identical to the leader's.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"dyntc"
	"dyntc/internal/prng"
)

// ReplayConfig configures the replication bench.
type ReplayConfig struct {
	Ops     []int // operations per client, swept
	Clients int
	Seed    uint64
}

// DefaultReplayConfig is the sweep cmd/dyntc-bench runs.
func DefaultReplayConfig(quick bool, seed uint64) ReplayConfig {
	cfg := ReplayConfig{Ops: []int{500, 2000, 8000}, Clients: 8, Seed: seed}
	if quick {
		cfg.Ops = []int{300}
		cfg.Clients = 4
	}
	return cfg
}

// ReplayResult is one measurement of the snapshot + log + catch-up path.
type ReplayResult struct {
	Clients int `json:"clients"`
	Ops     int `json:"ops"` // total operations issued

	Waves  int `json:"waves"`   // mutating waves logged
	LogOps int `json:"log_ops"` // mutating ops in the log

	LeaderOpsPerSec float64 `json:"leader_ops_per_sec"` // with logging + follower attached

	SnapshotBytes    int     `json:"snapshot_bytes"`     // final state snapshot size
	SnapshotEncodeMS float64 `json:"snapshot_encode_ms"` // Engine.Snapshot (barrier + codec)
	RestoreMS        float64 `json:"restore_ms"`         // decode + rebuild Expr

	ReplayWavesPerSec float64 `json:"replay_waves_per_sec"` // cold full-log replay
	ReplayOpsPerSec   float64 `json:"replay_ops_per_sec"`

	MeanLagWaves float64 `json:"mean_lag_waves"` // live-tailing follower lag samples
	MaxLagWaves  uint64  `json:"max_lag_waves"`
	CatchupMS    float64 `json:"catchup_ms"` // leader-done -> follower converged

	// FailoverMS is the promotion path end to end: epoch-bump the
	// caught-up follower, restore its promoted snapshot into an engine,
	// and have that engine serving.
	FailoverMS float64 `json:"failover_ms"`
	// DegradedStalenessMS is the staleness bound a degraded read on the
	// cut-off follower reports: time since its last successful leader
	// contact at the moment the read is served.
	DegradedStalenessMS float64 `json:"degraded_staleness_ms"`

	Converged bool `json:"converged"` // follower snapshot byte-identical to leader's

	Seconds    float64 `json:"seconds"`    // leader traffic wall time (baseline stability gate)
	GoMaxProcs int     `json:"gomaxprocs"` // host class for baseline comparability
}

// runReplay is one (clients, ops) measurement.
func runReplay(cfg ReplayConfig, opsPerClient int) ReplayResult {
	ring := dyntc.ModRing(1_000_000_007)
	res := ReplayResult{Clients: cfg.Clients, Ops: cfg.Clients * opsPerClient,
		GoMaxProcs: runtime.GOMAXPROCS(0)}

	wlog, err := dyntc.NewWaveLog(1<<20, "")
	if err != nil {
		panic(err)
	}
	leader := dyntc.NewExpr(ring, 1, dyntc.WithSeed(cfg.Seed))
	bases := engineFanOut(leader, ring, cfg.Clients)
	en := leader.Serve(dyntc.BatchOptions{WaveTap: func(w dyntc.Wave) {
		if err := wlog.Append(w); err != nil {
			panic(err)
		}
	}})

	snap0, err := en.Snapshot()
	if err != nil {
		panic(err)
	}

	// Live-tailing follower: polls the log while the leader serves.
	tailFo, err := dyntc.NewFollower(snap0)
	if err != nil {
		panic(err)
	}
	stopTail := make(chan struct{})
	tailDone := make(chan struct{})
	var lagSamples, lagTotal, lagMax uint64
	go func() {
		defer close(tailDone)
		for {
			last := wlog.LastSeq()
			at := tailFo.Seq()
			if last > at {
				lag := last - at
				lagTotal += lag
				if lag > lagMax {
					lagMax = lag
				}
				lagSamples++
				if waves, err := wlog.Since(at); err == nil {
					if err := tailFo.ApplyAll(waves); err != nil {
						panic(err)
					}
				}
			}
			select {
			case <-stopTail:
				if tailFo.Seq() == wlog.LastSeq() {
					return
				}
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()

	// Leader traffic: the engine bench's deterministic clients.
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &loadClient{rng: prng.New(cfg.Seed + uint64(i)*1000), ring: ring, base: bases[i]}
			a := &liveLoad{en: en}
			for j := 0; j < opsPerClient; j++ {
				if err := c.step(a); err != nil {
					panic(err)
				}
			}
			if err := a.drain(); err != nil {
				panic(err)
			}
		}(i)
	}
	wg.Wait()
	leaderSecs := time.Since(start).Seconds()
	res.LeaderOpsPerSec = float64(res.Ops) / leaderSecs
	res.Seconds = leaderSecs

	// Follower catch-up time after the leader goes quiet.
	catchupStart := time.Now()
	close(stopTail)
	<-tailDone
	// The tail follower's last successful leader contact: everything
	// after this point it serves without a leader.
	lastContact := time.Now()
	res.CatchupMS = float64(time.Since(catchupStart).Nanoseconds()) / 1e6
	if lagSamples > 0 {
		res.MeanLagWaves = float64(lagTotal) / float64(lagSamples)
	}
	res.MaxLagWaves = lagMax

	// Snapshot codec cost on the final (largest) state.
	encStart := time.Now()
	finalSnap, err := en.Snapshot()
	if err != nil {
		panic(err)
	}
	res.SnapshotEncodeMS = float64(time.Since(encStart).Nanoseconds()) / 1e6
	res.SnapshotBytes = len(finalSnap)
	en.Close()

	decStart := time.Now()
	if _, _, err := dyntc.RestoreExpr(finalSnap); err != nil {
		panic(err)
	}
	res.RestoreMS = float64(time.Since(decStart).Nanoseconds()) / 1e6

	waves, err := wlog.Since(0)
	if err != nil {
		panic(err)
	}
	res.Waves = len(waves)
	for _, w := range waves {
		res.LogOps += len(w.Ops)
	}

	// Cold replay throughput: fresh follower, full log.
	coldFo, err := dyntc.NewFollower(snap0)
	if err != nil {
		panic(err)
	}
	replayStart := time.Now()
	if err := coldFo.ApplyAll(waves); err != nil {
		panic(err)
	}
	replaySecs := time.Since(replayStart).Seconds()
	if replaySecs > 0 {
		res.ReplayWavesPerSec = float64(res.Waves) / replaySecs
		res.ReplayOpsPerSec = float64(res.LogOps) / replaySecs
	}

	// Convergence: both followers must land on the leader's exact bytes.
	tailSnap, err := tailFo.Snapshot()
	if err != nil {
		panic(err)
	}
	coldSnap, err := coldFo.Snapshot()
	if err != nil {
		panic(err)
	}
	res.Converged = bytes.Equal(tailSnap, finalSnap) && bytes.Equal(coldSnap, finalSnap)

	// Degraded read: the leader is gone (closed above), the follower
	// keeps serving — a read's staleness bound is the time since the
	// follower's last successful leader contact.
	readAt := time.Now()
	_ = tailFo.Root()
	res.DegradedStalenessMS = float64(readAt.Sub(lastContact).Nanoseconds()) / 1e6

	// Failover: promote the caught-up follower to a new leadership term
	// and stand its state up as a serving engine.
	foStart := time.Now()
	psnap, _, _, err := tailFo.Promote()
	if err != nil {
		panic(err)
	}
	pe, _, err := dyntc.RestoreExpr(psnap)
	if err != nil {
		panic(err)
	}
	pen := pe.Serve(dyntc.BatchOptions{})
	res.FailoverMS = float64(time.Since(foStart).Nanoseconds()) / 1e6
	pen.Close()
	return res
}

// ReplayLoad runs the replication bench sweep.
func ReplayLoad(cfg ReplayConfig) []ReplayResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	var out []ReplayResult
	for _, ops := range cfg.Ops {
		out = append(out, runReplay(cfg, ops))
	}
	return out
}

// WriteReplayJSON writes results as the tracked BENCH_replay.json payload.
func WriteReplayJSON(path string, results []ReplayResult) error {
	payload := struct {
		Bench   string         `json:"bench"`
		Results []ReplayResult `json:"results"`
	}{Bench: "replication-replay", Results: results}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReplayJSON loads a BENCH_replay.json payload (for baseline checks).
func ReadReplayJSON(path string) ([]ReplayResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Results []ReplayResult `json:"results"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, err
	}
	return payload.Results, nil
}

// CompareReplayBaseline checks replay results against a committed
// baseline file: rows whose configuration (clients, ops, gomaxprocs)
// matches a baseline row must not regress LeaderOpsPerSec or
// ReplayWavesPerSec by more than tolerance, and every current row must
// have converged. Rows without a comparable baseline row — a different
// host class included — are skipped, as are measurements too short to be
// stable (under baselineMinSeconds on either side). It returns the
// comparisons performed and the failures.
func CompareReplayBaseline(results, baseline []ReplayResult, tolerance float64) (compared int, failures []string) {
	const baselineMinSeconds = 0.2
	type key struct {
		clients int
		ops     int
		gmp     int
	}
	base := make(map[key]ReplayResult)
	for _, r := range baseline {
		base[key{r.Clients, r.Ops, r.GoMaxProcs}] = r
	}
	for _, r := range results {
		if !r.Converged {
			failures = append(failures, fmt.Sprintf(
				"clients=%d ops=%d: follower did not converge to the leader's snapshot bytes", r.Clients, r.Ops))
			continue
		}
		b, ok := base[key{r.Clients, r.Ops, r.GoMaxProcs}]
		if !ok {
			continue
		}
		if r.Seconds < baselineMinSeconds || b.Seconds < baselineMinSeconds {
			continue
		}
		compared++
		check := func(name string, have, want float64) {
			if want > 0 && have < (1-tolerance)*want {
				failures = append(failures, fmt.Sprintf(
					"clients=%d ops=%d: %s %.0f vs baseline %.0f (-%.1f%%, tolerance %.0f%%)",
					r.Clients, r.Ops, name, have, want, 100*(1-have/want), 100*tolerance))
			}
		}
		check("leader_ops/s", r.LeaderOpsPerSec, b.LeaderOpsPerSec)
		check("replay_waves/s", r.ReplayWavesPerSec, b.ReplayWavesPerSec)
	}
	return compared, failures
}

// ReplayTable renders results as a dyntc-bench table.
func ReplayTable(results []ReplayResult) Table {
	t := Table{
		ID:      "E13",
		Title:   "replication: snapshot + wave log + follower catch-up",
		Claim:   "followers replaying the wave log converge to the leader's exact snapshot bytes",
		Columns: []string{"clients", "ops", "waves", "leader_ops/s", "snap_KB", "snap_ms", "restore_ms", "replay_waves/s", "mean_lag", "max_lag", "catchup_ms", "failover_ms", "stale_ms", "converged"},
	}
	for _, r := range results {
		t.AddRow(r.Clients, r.Ops, r.Waves,
			fmt.Sprintf("%.0f", r.LeaderOpsPerSec),
			fmt.Sprintf("%.1f", float64(r.SnapshotBytes)/1024),
			fmt.Sprintf("%.2f", r.SnapshotEncodeMS),
			fmt.Sprintf("%.2f", r.RestoreMS),
			fmt.Sprintf("%.0f", r.ReplayWavesPerSec),
			fmt.Sprintf("%.1f", r.MeanLagWaves),
			fmt.Sprint(r.MaxLagWaves),
			fmt.Sprintf("%.2f", r.CatchupMS),
			fmt.Sprintf("%.2f", r.FailoverMS),
			fmt.Sprintf("%.2f", r.DegradedStalenessMS),
			fmt.Sprint(r.Converged))
	}
	t.Notes = append(t.Notes,
		"leader_ops/s includes wave logging and a live-tailing in-process follower",
		"lag sampled each follower poll (200µs); catch-up is leader-quiet to follower-converged",
		"failover_ms promotes the caught-up follower and stands it up as a serving engine",
		"stale_ms is the staleness bound a degraded read reports after the leader is gone")
	return t
}

package bench

// The cross-tree query driver: measures the scatter-gather engine
// (internal/query, surfaced as dyntc.Forest.Query and POST /v1/query)
// against the naive dashboard pattern it replaces — one GET round-trip
// per tree — and the follower read-offload path, and emits the tracked
// BENCH_query.json.
//
// Three measurements per (forest size, scatter workers) cell:
//
//   - Direct fan-out: queries/sec and join latency p50/p99 of back-to-back
//     planner runs over the quiesced forest (no HTTP).
//   - Round-trips-equivalent: a minimal HTTP server over the same forest;
//     one POST /query versus N sequential GET /value round-trips on the
//     same host — the motivating comparison (a dashboard summing N trees).
//   - Follower offload: with every tree under leader-side mutation load,
//     query latency against the loaded leader versus against quiesced
//     follower replicas of the same trees.
//
// Every cell validates: the combined query result must equal the
// sequential per-tree sum taken over the naive GET path.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dyntc"
	"dyntc/internal/prng"
	"dyntc/internal/query"
)

// QueryConfig configures the query bench.
type QueryConfig struct {
	ForestSizes []int // trees per forest
	Workers     []int // scatter-width sweep
	Rounds      int   // repeated queries per measurement
	Seed        uint64
	// SharedPool additionally runs every cell with the forest's machines,
	// wave task groups and the query scatter all on one shared scheduler
	// pool, next to the private mode (dedicated scatter pool, per-tree
	// default machines), recording the shared-vs-private speedup.
	SharedPool bool
}

// DefaultQueryConfig is the sweep cmd/dyntc-bench runs.
func DefaultQueryConfig(quick bool, seed uint64) QueryConfig {
	cfg := QueryConfig{
		ForestSizes: []int{64, 256, 1024},
		Workers:     []int{1, 4},
		Rounds:      200,
		Seed:        seed,
	}
	if quick {
		cfg.ForestSizes = []int{64, 128}
		cfg.Rounds = 50
	}
	return cfg
}

// QueryResult is one (forest size, workers) measurement.
type QueryResult struct {
	Trees      int  `json:"trees"`
	Workers    int  `json:"workers"`
	Shared     bool `json:"shared_pool"`
	GoMaxProcs int  `json:"gomaxprocs"` // host class marker for baseline comparisons
	// Rounds is the measured query count and Seconds its wall clock, kept
	// so baseline gates can skip statistically unstable rows.
	Rounds  int     `json:"rounds"`
	Seconds float64 `json:"seconds"`
	// SpeedupVsPrivate is QueriesPerSec relative to the private run of the
	// same (trees, workers) cell (0 without one).
	SpeedupVsPrivate float64 `json:"speedup_vs_private"`

	// Direct fan-out over the quiesced forest.
	QueriesPerSec float64 `json:"queries_per_sec"`
	JoinP50US     float64 `json:"join_p50_us"`
	JoinP99US     float64 `json:"join_p99_us"`

	// One POST /query vs N sequential GET round-trips, same host.
	HTTPQueryUS    float64 `json:"http_query_us"`
	NaiveGetsUS    float64 `json:"naive_gets_us"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`

	// Query latency against the mutating leader vs follower replicas.
	LeaderLoadedUS  float64 `json:"leader_loaded_us"`
	FollowerUS      float64 `json:"follower_us"`
	FollowerSpeedup float64 `json:"follower_speedup"`

	Combined int64 `json:"combined"`
	NaiveSum int64 `json:"naive_sum"`
	Match    bool  `json:"match"`
}

// benchForestReader adapts the public dyntc.Forest to the query engine's
// Reader (the bench sweeps scatter-pool sizes, which the public
// Forest.Query pins to GOMAXPROCS).
type benchForestReader struct{ f *dyntc.Forest }

func (r benchForestReader) Trees() []uint64 {
	ids := make([]uint64, 0, r.f.Len())
	r.f.Each(func(id dyntc.TreeID, _ *dyntc.Engine) { ids = append(ids, uint64(id)) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (r benchForestReader) Start(id uint64, _ query.Read) query.Handle {
	en, ok := r.f.Get(id)
	if !ok {
		return nil
	}
	return benchFutureHandle{f: en.RootAsync()}
}

type benchFutureHandle struct{ f *dyntc.Future }

func (h benchFutureHandle) Wait() (int64, uint64, error) {
	v, seq, err := h.f.ValueSeq()
	h.f.Recycle()
	return v, seq, err
}

// benchFollowerReader serves the same reads from follower replicas.
type benchFollowerReader struct {
	ids []uint64
	fos map[uint64]*dyntc.Follower
}

func (r benchFollowerReader) Trees() []uint64 { return r.ids }

func (r benchFollowerReader) Start(id uint64, rd query.Read) query.Handle {
	fo, ok := r.fos[id]
	if !ok {
		return nil
	}
	return benchFollowerHandle{fo: fo, r: rd}
}

type benchFollowerHandle struct {
	fo *dyntc.Follower
	r  query.Read
}

func (h benchFollowerHandle) Wait() (int64, uint64, error) { return h.fo.ReadQuery(h.r) }

// buildQueryForest creates trees single-leaf expressions and grows each a
// few waves so values and sequences are non-trivial. A non-nil pool puts
// the whole forest (machines + wave task groups) on it.
func buildQueryForest(cfg QueryConfig, trees int, pool *dyntc.SchedPool) (*dyntc.Forest, []uint64) {
	ring := dyntc.ModRing(1_000_000_007)
	f := dyntc.NewForest(dyntc.BatchOptions{Pool: pool})
	rng := prng.New(cfg.Seed)
	ids := make([]uint64, 0, trees)
	for i := 0; i < trees; i++ {
		id, en := f.Create(ring, int64(rng.Intn(1000)), dyntc.WithSeed(cfg.Seed+uint64(i)))
		ids = append(ids, uint64(id))
		leaf := 0
		for j := 0; j < 1+i%3; j++ {
			l, _, err := en.GrowID(leaf, dyntc.OpAdd(ring), int64(rng.Intn(1000)), int64(rng.Intn(1000)))
			if err != nil {
				panic(fmt.Sprintf("bench: query forest grow: %v", err))
			}
			leaf = l
		}
	}
	return f, ids
}

// percentile returns the q-quantile of sorted latencies, in microseconds.
func latPct(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	i := int(q * float64(len(lats)-1))
	return float64(lats[i]) / float64(time.Microsecond)
}

// runQueryBench executes one (trees, workers) cell. In shared mode one
// scheduler pool hosts the forest's machines, the engines' wave task
// groups and the query scatter; in private mode the scatter gets its own
// dedicated pool (the pre-refactor shape).
func runQueryBench(cfg QueryConfig, trees, workers int, shared bool) QueryResult {
	var pool *dyntc.SchedPool
	var planner *query.Planner
	if shared {
		pool = dyntc.NewSchedPool(0)
		defer pool.Close()
		planner = query.NewPlannerOn(pool, workers)
	} else {
		priv := dyntc.NewSchedPool(workers)
		defer priv.Close()
		planner = query.NewPlannerOn(priv, workers)
	}
	forest, ids := buildQueryForest(cfg, trees, pool)
	defer forest.Close()
	defer planner.Close()
	reader := benchForestReader{f: forest}
	spec := query.Spec{Read: query.Root(), Combine: query.Sum()}

	// Direct fan-out: back-to-back planner runs, join latency measured.
	lats := make([]time.Duration, 0, cfg.Rounds)
	var combined int64
	start := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		t0 := time.Now()
		res, err := planner.Run(reader, spec)
		if err != nil {
			panic(fmt.Sprintf("bench: query run: %v", err))
		}
		lats = append(lats, time.Since(t0))
		combined = res.Combined
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	// HTTP comparison on the same host: one POST /query vs N GETs.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /value", func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseUint(r.URL.Query().Get("tree"), 10, 64)
		en, ok := forest.Get(id)
		if !ok {
			http.Error(w, "no tree", http.StatusNotFound)
			return
		}
		v, err := en.Root()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `{"value":%d}`, v)
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		res, err := planner.Run(reader, spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, `{"combined":%d,"trees":%d}`, res.Combined, res.Trees)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client := ts.Client()
	getJSON := func(method, url string) []byte {
		req, _ := http.NewRequest(method, url, nil)
		resp, err := client.Do(req)
		if err != nil {
			panic(fmt.Sprintf("bench: %s %s: %v", method, url, err))
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("bench: %s %s: %s: %s", method, url, resp.Status, data))
		}
		return data
	}

	httpRounds := cfg.Rounds / 10
	if httpRounds == 0 {
		httpRounds = 1
	}
	var naiveSum int64
	naiveStart := time.Now()
	for r := 0; r < httpRounds; r++ {
		naiveSum = 0
		for _, id := range ids {
			var v struct {
				Value int64 `json:"value"`
			}
			if err := json.Unmarshal(getJSON("GET", fmt.Sprintf("%s/value?tree=%d", ts.URL, id)), &v); err != nil {
				panic(err)
			}
			naiveSum += v.Value
		}
	}
	naiveUS := float64(time.Since(naiveStart)) / float64(time.Microsecond) / float64(httpRounds)
	queryStart := time.Now()
	for r := 0; r < httpRounds; r++ {
		getJSON("POST", ts.URL+"/query")
	}
	httpQueryUS := float64(time.Since(queryStart)) / float64(time.Microsecond) / float64(httpRounds)

	// Follower offload: replicas of every tree, then leader under write
	// load vs quiesced followers.
	fr := benchFollowerReader{ids: ids, fos: make(map[uint64]*dyntc.Follower, len(ids))}
	for _, id := range ids {
		en, _ := forest.Get(id)
		snap, err := en.Snapshot()
		if err != nil {
			panic(fmt.Sprintf("bench: snapshot tree %d: %v", id, err))
		}
		fo, err := dyntc.NewFollower(snap)
		if err != nil {
			panic(fmt.Sprintf("bench: follower tree %d: %v", id, err))
		}
		fr.fos[id] = fo
	}
	var stopLoad atomic.Bool
	var wg sync.WaitGroup
	for i, id := range ids {
		if i%4 != 0 { // load a quarter of the trees: steady mixed pressure
			continue
		}
		en, _ := forest.Get(id)
		wg.Add(1)
		go func(i int, en *dyntc.Engine) {
			defer wg.Done()
			rng := prng.New(cfg.Seed + 7777*uint64(i))
			for !stopLoad.Load() {
				if err := en.SetLeafID(0, int64(rng.Intn(1000))); err != nil {
					return
				}
			}
		}(i, en)
	}
	loadRounds := cfg.Rounds / 4
	if loadRounds == 0 {
		loadRounds = 1
	}
	leaderStart := time.Now()
	for r := 0; r < loadRounds; r++ {
		if _, err := planner.Run(reader, spec); err != nil {
			panic(err)
		}
	}
	leaderUS := float64(time.Since(leaderStart)) / float64(time.Microsecond) / float64(loadRounds)
	followerStart := time.Now()
	for r := 0; r < loadRounds; r++ {
		if _, err := planner.Run(fr, spec); err != nil {
			panic(err)
		}
	}
	followerUS := float64(time.Since(followerStart)) / float64(time.Microsecond) / float64(loadRounds)
	stopLoad.Store(true)
	wg.Wait()

	res := QueryResult{
		Trees:          trees,
		Workers:        workers,
		Shared:         shared,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Rounds:         cfg.Rounds,
		Seconds:        elapsed.Seconds(),
		QueriesPerSec:  float64(cfg.Rounds) / elapsed.Seconds(),
		JoinP50US:      latPct(lats, 0.50),
		JoinP99US:      latPct(lats, 0.99),
		HTTPQueryUS:    httpQueryUS,
		NaiveGetsUS:    naiveUS,
		LeaderLoadedUS: leaderUS,
		FollowerUS:     followerUS,
		Combined:       combined,
		NaiveSum:       naiveSum,
		Match:          combined == naiveSum,
	}
	if httpQueryUS > 0 {
		res.SpeedupVsNaive = naiveUS / httpQueryUS
	}
	if followerUS > 0 {
		res.FollowerSpeedup = leaderUS / followerUS
	}
	return res
}

// QueryLoad runs the full sweep (shared mode rows after private ones when
// enabled) and fills the shared rows' speedups against their private
// counterparts.
func QueryLoad(cfg QueryConfig) []QueryResult {
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{0}
	}
	modes := []bool{false}
	if cfg.SharedPool {
		modes = append(modes, true)
	}
	var out []QueryResult
	for _, shared := range modes {
		for _, w := range workers {
			for _, n := range cfg.ForestSizes {
				out = append(out, runQueryBench(cfg, n, w, shared))
			}
		}
	}
	type cell struct{ trees, workers int }
	priv := make(map[cell]float64)
	for _, r := range out {
		if !r.Shared {
			priv[cell{r.Trees, r.Workers}] = r.QueriesPerSec
		}
	}
	for i := range out {
		if out[i].Shared {
			if base := priv[cell{out[i].Trees, out[i].Workers}]; base > 0 {
				out[i].SpeedupVsPrivate = out[i].QueriesPerSec / base
			}
		}
	}
	return out
}

// ReadQueryJSON loads a BENCH_query.json payload (for baseline checks).
func ReadQueryJSON(path string) ([]QueryResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Results []QueryResult `json:"results"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil, err
	}
	return payload.Results, nil
}

// CompareQueryBaseline checks results against a committed BENCH_query.json:
// rows whose (trees, workers, shared, rounds, gomaxprocs) match a baseline
// row must not regress QueriesPerSec by more than tolerance. Rows without a
// comparable baseline row — a different host class included — are skipped,
// as are measurements too short to be stable (under 0.2s on either side)
// and pre-gate baseline rows that never recorded a host class. It returns
// the comparisons performed and the failures.
func CompareQueryBaseline(results, baseline []QueryResult, tolerance float64) (compared int, failures []string) {
	const baselineMinSeconds = 0.2
	type key struct {
		trees   int
		workers int
		shared  bool
		rounds  int
		gmp     int
	}
	base := make(map[key]QueryResult)
	for _, r := range baseline {
		if r.GoMaxProcs > 0 {
			base[key{r.Trees, r.Workers, r.Shared, r.Rounds, r.GoMaxProcs}] = r
		}
	}
	for _, r := range results {
		b, ok := base[key{r.Trees, r.Workers, r.Shared, r.Rounds, r.GoMaxProcs}]
		if !ok || b.QueriesPerSec <= 0 {
			continue
		}
		if r.Seconds < baselineMinSeconds || b.Seconds < baselineMinSeconds {
			continue
		}
		compared++
		if r.QueriesPerSec < (1-tolerance)*b.QueriesPerSec {
			failures = append(failures, fmt.Sprintf(
				"trees=%d workers=%d shared=%v: %.0f queries/s vs baseline %.0f (-%.1f%%, tolerance %.0f%%)",
				r.Trees, r.Workers, r.Shared,
				r.QueriesPerSec, b.QueriesPerSec, 100*(1-r.QueriesPerSec/b.QueriesPerSec), 100*tolerance))
		}
	}
	return compared, failures
}

// WriteQueryJSON writes results as the tracked BENCH_query.json payload.
func WriteQueryJSON(path string, results []QueryResult) error {
	payload := struct {
		Bench   string        `json:"bench"`
		Results []QueryResult `json:"results"`
	}{Bench: "query-scatter-gather", Results: results}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// QueryTable renders results as a dyntc-bench table.
func QueryTable(results []QueryResult) Table {
	t := Table{
		ID:      "E14",
		Title:   "query: cross-tree scatter-gather",
		Claim:   "one fan-out call beats N per-tree HTTP round-trips; follower replicas absorb reads from a loaded leader",
		Columns: []string{"trees", "workers", "shared", "queries/s", "vs_private", "join_p50_us", "join_p99_us", "http_query_us", "naive_gets_us", "speedup", "follower_speedup", "match"},
	}
	for _, r := range results {
		t.AddRow(r.Trees, fmt.Sprint(r.Workers), fmt.Sprint(r.Shared), fmt.Sprintf("%.0f", r.QueriesPerSec),
			fmt.Sprintf("%.2f", r.SpeedupVsPrivate),
			r.JoinP50US, r.JoinP99US, fmt.Sprintf("%.0f", r.HTTPQueryUS), fmt.Sprintf("%.0f", r.NaiveGetsUS),
			fmt.Sprintf("%.2f", r.SpeedupVsNaive), fmt.Sprintf("%.2f", r.FollowerSpeedup), fmt.Sprint(r.Match))
	}
	t.Notes = append(t.Notes,
		"speedup = N sequential GET /value round-trips vs one POST /query, same in-process HTTP host",
		"follower_speedup = query latency on the mutating leader vs quiesced follower replicas",
		"match = scatter-gather combined == sequential per-tree GET sum")
	return t
}

package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestEngineLoadQuick(t *testing.T) {
	cfg := EngineConfig{
		Clients:      []int{1, 8},
		Windows:      []time.Duration{0},
		OpsPerClient: 200,
		Seed:         42,
	}
	results := EngineLoad(cfg)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.Match {
			t.Fatalf("clients=%d: live root %d != replay root %d", r.Clients, r.Root, r.ReplayRoot)
		}
		if r.OpsPerSec <= 0 {
			t.Fatalf("clients=%d: ops/sec %f", r.Clients, r.OpsPerSec)
		}
	}
	// The acceptance criterion: with >= 8 concurrent clients, coalescing
	// demonstrably happens — the mean executed batch size exceeds 1.
	r8 := results[1]
	if r8.Clients != 8 {
		t.Fatalf("unexpected sweep order: %+v", r8)
	}
	if r8.MeanBatch <= 1 {
		t.Fatalf("8 clients: mean batch %.3f, want > 1", r8.MeanBatch)
	}
	t.Logf("8 clients: %.0f ops/s, mean batch %.2f, mean wave %.2f, max flush %d",
		r8.OpsPerSec, r8.MeanBatch, r8.MeanWave, r8.MaxFlush)
}

func TestWriteEngineJSON(t *testing.T) {
	cfg := EngineConfig{Clients: []int{2}, Windows: []time.Duration{0}, OpsPerClient: 50, Seed: 1}
	results := EngineLoad(cfg)
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := WriteEngineJSON(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Bench   string         `json:"bench"`
		Results []EngineResult `json:"results"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("BENCH_engine.json is not valid JSON: %v", err)
	}
	if payload.Bench != "engine-coalescing" || len(payload.Results) != 1 {
		t.Fatalf("payload: %+v", payload)
	}
}

package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42}
	tables := All(cfg)
	if len(tables) != 12 {
		t.Fatalf("got %d experiments", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s produced no rows", tb.ID)
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		out := buf.String()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, tb.Columns[0]) {
			t.Fatalf("%s rendered badly:\n%s", tb.ID, out)
		}
	}
}

func TestByID(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"E1", "e5", "E11", "e13"} {
		tb, ok := ByID(id, cfg)
		if !ok || len(tb.Rows) == 0 {
			t.Fatalf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("E99", cfg); ok {
		t.Fatal("ByID accepted unknown experiment")
	}
}

func TestE5ValuesAgree(t *testing.T) {
	tb := E5StaticContraction(Config{Quick: true, Seed: 7})
	for _, row := range tb.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E5 disagreement: %v", row)
		}
	}
}

func TestE3RebuildRatioBounded(t *testing.T) {
	tb := E3InsertDelete(Config{Quick: true, Seed: 9})
	for _, row := range tb.Rows {
		// mean/(|U|·ln n) sits in column 4.
		var ratio float64
		if _, err := fmt.Sscan(row[4], &ratio); err != nil {
			t.Fatalf("bad ratio cell %q", row[4])
		}
		// The per-insert rebuild size has heavy tails (a root rebuild is
		// Θ(n) with probability Θ(1/n)); the mean over dozens of trials
		// stays within a generous constant of |U|·ln n.
		if ratio > 15 {
			t.Fatalf("rebuild ratio %f too large: %v", ratio, row)
		}
	}
}

package bench

// Metrics scraping support, two uses:
//
//   - `dyntc-bench -engine -scrape` attaches an in-process metrics
//     registry to the engine load runs and embeds the before/after
//     sample deltas in BENCH_engine.json, so committed bench files carry
//     the instrumentation's own view of the run (flush counts, stage
//     sums) next to the wall-clock numbers.
//
//   - `dyntc-bench -scrape-check <url>` is the CI smoke: drive a few
//     hundred operations against a live dyntcd, then validate that GET
//     /metrics parses as Prometheus text and contains the families every
//     layer is supposed to export, and that GET /v1/trace answers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dyntc"
)

// ParseMetricsText parses Prometheus text exposition format into
// sample-name -> value (the name includes the label set verbatim, e.g.
// `dyntc_engine_stage_seconds_sum{stage="grow"}`). Comment and blank
// lines are skipped; a malformed sample line is an error.
func ParseMetricsText(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the sample name
		// (possibly containing spaces inside label values) is the rest.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("metrics line %d: no value: %q", ln+1, line)
		}
		name, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value %q: %v", ln+1, val, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("metrics line %d: duplicate sample %q", ln+1, name)
		}
		out[name] = v
	}
	return out, nil
}

// DeltaMetrics returns after-minus-before for every sample in after,
// dropping zero deltas and histogram bucket samples (the _sum/_count
// pairs carry the story; per-bucket deltas would bloat a BENCH file).
func DeltaMetrics(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range after {
		if strings.Contains(name, "_bucket{") {
			continue
		}
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// CheckMetricsText validates a /metrics payload: it must parse as
// Prometheus text and contain at least one sample of every required
// family (family name = sample name prefix, so histograms match via
// their _count/_sum/_bucket series).
func CheckMetricsText(text string, required []string) error {
	samples, err := ParseMetricsText(text)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("metrics: no samples")
	}
	for _, fam := range required {
		found := false
		for name := range samples {
			if name == fam || strings.HasPrefix(name, fam+"_") || strings.HasPrefix(name, fam+"{") {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("metrics: required family %q missing", fam)
		}
	}
	return nil
}

// RequiredLeaderFamilies is what a leader dyntcd /metrics must export —
// one family per instrumented layer.
var RequiredLeaderFamilies = []string{
	"dyntc_engine_flush_seconds",
	"dyntc_engine_coalesce_wait_seconds",
	"dyntc_engine_requests_total",
	"dyntc_sched_utilization",
	"dyntc_sched_task_seconds",
	"dyntc_replog_lag",
	"dyntc_replog_appends_total",
	"dyntc_query_join_seconds",
}

// ScrapeCheck drives the CI scrape smoke against a live dyntcd at
// baseURL: create a tree, push ~ops mutations through the batch
// endpoint, run one cross-tree query, then validate /metrics (format +
// required families + non-zero flush count) and /v1/trace.
func ScrapeCheck(baseURL string, ops int) error {
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, body any, out any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(baseURL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("POST %s: %s: %s", path, resp.Status, msg)
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	get := func(path string) (string, error) {
		resp, err := client.Get(baseURL + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body), nil
	}

	// A tree with a few leaves to spread the load over.
	var created struct {
		Tree uint64 `json:"tree"`
	}
	if err := post("/v1/trees", map[string]any{"root": 1}, &created); err != nil {
		return err
	}
	tree := fmt.Sprintf("/v1/trees/%d", created.Tree)
	leaves := []int{0}
	for len(leaves) < 8 {
		var grown struct {
			Left  int `json:"left"`
			Right int `json:"right"`
		}
		if err := post(tree+"/grow", map[string]any{
			"leaf": leaves[0], "op": "add", "left": 1, "right": 2,
		}, &grown); err != nil {
			return err
		}
		leaves = append(leaves[1:], grown.Left, grown.Right)
	}

	// Batched set/value traffic: every op lands in a coalesced engine
	// flush, so the engine histograms must move.
	type batchOp struct {
		Kind  string `json:"kind"`
		Node  int    `json:"node"`
		Value int64  `json:"value,omitempty"`
	}
	for done := 0; done < ops; {
		n := 100
		if rest := ops - done; n > rest {
			n = rest
		}
		batch := make([]batchOp, n)
		for i := range batch {
			leaf := leaves[i%len(leaves)]
			if i%8 == 7 {
				batch[i] = batchOp{Kind: "value", Node: leaf}
			} else {
				batch[i] = batchOp{Kind: "set-leaf", Node: leaf, Value: int64(done + i)}
			}
		}
		var res struct {
			Results []struct {
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := post(tree+"/batch", map[string]any{"ops": batch}, &res); err != nil {
			return err
		}
		for i, r := range res.Results {
			if r.Error != "" {
				return fmt.Errorf("batch op %d: %s", i, r.Error)
			}
		}
		done += n
	}

	// One cross-tree query so the query families move too.
	if err := post("/v1/query", map[string]any{"read": "root", "combine": "sum"}, nil); err != nil {
		return err
	}

	// The scrape itself.
	text, err := get("/metrics")
	if err != nil {
		return err
	}
	if err := CheckMetricsText(text, RequiredLeaderFamilies); err != nil {
		return err
	}
	samples, _ := ParseMetricsText(text)
	if samples["dyntc_engine_flush_seconds_count"] <= 0 {
		return fmt.Errorf("metrics: dyntc_engine_flush_seconds_count is zero after %d ops", ops)
	}
	if samples["dyntc_query_join_seconds_count"] <= 0 {
		return fmt.Errorf("metrics: dyntc_query_join_seconds_count is zero after a query")
	}

	// And the trace ring endpoint.
	traceBody, err := get("/v1/trace?n=4")
	if err != nil {
		return err
	}
	var trace struct {
		Total  int                     `json:"total"`
		Traces []dyntc.WaveTraceRecord `json:"traces"`
	}
	if err := json.Unmarshal([]byte(traceBody), &trace); err != nil {
		return fmt.Errorf("trace: bad body: %v", err)
	}
	if trace.Total <= 0 {
		return fmt.Errorf("trace: no waves sampled after %d ops", ops)
	}
	return nil
}

package bench

// Metrics scraping support, two uses:
//
//   - `dyntc-bench -engine -scrape` attaches an in-process metrics
//     registry to the engine load runs and embeds the before/after
//     sample deltas in BENCH_engine.json, so committed bench files carry
//     the instrumentation's own view of the run (flush counts, stage
//     sums) next to the wall-clock numbers.
//
//   - `dyntc-bench -scrape-check <url>` is the CI smoke: drive a few
//     hundred operations against a live dyntcd, then validate that GET
//     /metrics parses as Prometheus text and contains the families every
//     layer is supposed to export, and that GET /v1/trace answers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dyntc"
)

// ParseMetricsText parses Prometheus text exposition format into
// sample-name -> value (the name includes the label set verbatim, e.g.
// `dyntc_engine_stage_seconds_sum{stage="grow"}`). Comment and blank
// lines are skipped; a malformed sample line is an error.
func ParseMetricsText(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the sample name
		// (possibly containing spaces inside label values) is the rest.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("metrics line %d: no value: %q", ln+1, line)
		}
		name, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value %q: %v", ln+1, val, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("metrics line %d: duplicate sample %q", ln+1, name)
		}
		out[name] = v
	}
	return out, nil
}

// DeltaMetrics returns after-minus-before for every sample in after,
// dropping zero deltas and histogram bucket samples (the _sum/_count
// pairs carry the story; per-bucket deltas would bloat a BENCH file).
func DeltaMetrics(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range after {
		if strings.Contains(name, "_bucket{") {
			continue
		}
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// CheckMetricsText validates a /metrics payload: it must parse as
// Prometheus text and contain at least one sample of every required
// family (family name = sample name prefix, so histograms match via
// their _count/_sum/_bucket series).
func CheckMetricsText(text string, required []string) error {
	samples, err := ParseMetricsText(text)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("metrics: no samples")
	}
	for _, fam := range required {
		found := false
		for name := range samples {
			if name == fam || strings.HasPrefix(name, fam+"_") || strings.HasPrefix(name, fam+"{") {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("metrics: required family %q missing", fam)
		}
	}
	return nil
}

// RequiredLeaderFamilies is what a leader dyntcd /metrics must export —
// one family per instrumented layer, plus the process-health families
// every role carries (Go runtime, build info, replication-lag stages).
var RequiredLeaderFamilies = []string{
	"dyntc_engine_flush_seconds",
	"dyntc_engine_coalesce_wait_seconds",
	"dyntc_engine_requests_total",
	"dyntc_sched_utilization",
	"dyntc_sched_task_seconds",
	"dyntc_replog_lag",
	"dyntc_replog_appends_total",
	"dyntc_repl_stage_seconds",
	"dyntc_query_join_seconds",
	"dyntc_events_total",
	"dyntc_hot_tree_id",
	"dyntc_hot_tree_weight",
	"dyntc_anomaly_trips_total",
	"dyntc_anomaly_active",
	"dyntc_go_goroutines",
	"dyntc_go_heap_alloc_bytes",
	"dyntc_go_gc_pause_seconds",
	"dyntc_build_info",
}

// RequiredFollowerFamilies is what a follower dyntcd /metrics must
// export: replication position and lag attribution over the tailed
// leader, plus the shared process-health families.
var RequiredFollowerFamilies = []string{
	"dyntc_replog_applied_seq",
	"dyntc_replog_lag",
	"dyntc_repl_stage_seconds",
	"dyntc_epoch",
	"dyntc_events_total",
	"dyntc_anomaly_trips_total",
	"dyntc_anomaly_active",
	"dyntc_go_goroutines",
	"dyntc_go_heap_alloc_bytes",
	"dyntc_build_info",
}

// CheckObsEndpoints validates the self-diagnosis surface both roles
// serve: the lifecycle event journal, the hot-tree attribution and the
// one-shot debug bundle must all answer well-formed JSON. wantRole pins
// the bundle's role field; wantHot additionally requires the hot-tree
// cost dimension to have absorbed traffic (true on a leader that just
// served load, false on an idle follower whose engines never flush).
func CheckObsEndpoints(get func(path string) (string, error), wantRole string, wantHot bool) error {
	evBody, err := get("/v1/events?n=64")
	if err != nil {
		return err
	}
	var ev struct {
		Total  uint64        `json:"total"`
		Events []dyntc.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(evBody), &ev); err != nil {
		return fmt.Errorf("events: bad body: %v", err)
	}
	if ev.Total == 0 || len(ev.Events) == 0 {
		return fmt.Errorf("events: journal empty (every process journals at least process.start)")
	}
	for _, e := range ev.Events {
		if e.Seq == 0 || e.Type == "" {
			return fmt.Errorf("events: malformed event %+v", e)
		}
	}

	hotBody, err := get("/v1/hot")
	if err != nil {
		return err
	}
	var hot map[string]struct {
		Total uint64           `json:"total"`
		Trees []dyntc.TopKItem `json:"trees"`
	}
	if err := json.Unmarshal([]byte(hotBody), &hot); err != nil {
		return fmt.Errorf("hot: bad body: %v", err)
	}
	for _, dim := range []string{"cost", "reqs", "shed"} {
		if _, ok := hot[dim]; !ok {
			return fmt.Errorf("hot: missing dimension %q", dim)
		}
	}
	if wantHot && (hot["cost"].Total == 0 || len(hot["cost"].Trees) == 0) {
		return fmt.Errorf("hot: cost dimension empty after load")
	}

	bundleBody, err := get("/v1/debug/bundle")
	if err != nil {
		return err
	}
	var bundle struct {
		Role    string          `json:"role"`
		Metrics string          `json:"metrics"`
		Events  []dyntc.Event   `json:"events"`
		Anomaly map[string]any  `json:"anomaly"`
		Hot     json.RawMessage `json:"hot"`
	}
	if err := json.Unmarshal([]byte(bundleBody), &bundle); err != nil {
		return fmt.Errorf("debug bundle: bad body: %v", err)
	}
	if bundle.Role != wantRole {
		return fmt.Errorf("debug bundle: role %q, want %q", bundle.Role, wantRole)
	}
	if !strings.Contains(bundle.Metrics, "dyntc_events_total") {
		return fmt.Errorf("debug bundle: embedded metrics snapshot missing dyntc_events_total")
	}
	if len(bundle.Events) == 0 || len(bundle.Hot) == 0 {
		return fmt.Errorf("debug bundle: missing events or hot sections")
	}
	if _, ok := bundle.Anomaly["trips"]; !ok {
		return fmt.Errorf("debug bundle: anomaly section missing trips: %v", bundle.Anomaly)
	}
	return nil
}

// ScrapeCheck drives the CI scrape smoke against a live dyntcd at
// baseURL: create a tree, push ~ops mutations through the batch
// endpoint, run one cross-tree query, then validate /metrics (format +
// required families + non-zero flush count) and /v1/trace.
func ScrapeCheck(baseURL string, ops int) error {
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, body any, out any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(baseURL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("POST %s: %s: %s", path, resp.Status, msg)
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	get := func(path string) (string, error) {
		resp, err := client.Get(baseURL + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body), nil
	}

	// A tree with a few leaves to spread the load over.
	var created struct {
		Tree uint64 `json:"tree"`
	}
	if err := post("/v1/trees", map[string]any{"root": 1}, &created); err != nil {
		return err
	}
	tree := fmt.Sprintf("/v1/trees/%d", created.Tree)
	leaves := []int{0}
	for len(leaves) < 8 {
		var grown struct {
			Left  int `json:"left"`
			Right int `json:"right"`
		}
		if err := post(tree+"/grow", map[string]any{
			"leaf": leaves[0], "op": "add", "left": 1, "right": 2,
		}, &grown); err != nil {
			return err
		}
		leaves = append(leaves[1:], grown.Left, grown.Right)
	}

	// Batched set/value traffic: every op lands in a coalesced engine
	// flush, so the engine histograms must move.
	type batchOp struct {
		Kind  string `json:"kind"`
		Node  int    `json:"node"`
		Value int64  `json:"value,omitempty"`
	}
	for done := 0; done < ops; {
		n := 100
		if rest := ops - done; n > rest {
			n = rest
		}
		batch := make([]batchOp, n)
		for i := range batch {
			leaf := leaves[i%len(leaves)]
			if i%8 == 7 {
				batch[i] = batchOp{Kind: "value", Node: leaf}
			} else {
				batch[i] = batchOp{Kind: "set-leaf", Node: leaf, Value: int64(done + i)}
			}
		}
		var res struct {
			Results []struct {
				Error string `json:"error"`
			} `json:"results"`
		}
		if err := post(tree+"/batch", map[string]any{"ops": batch}, &res); err != nil {
			return err
		}
		for i, r := range res.Results {
			if r.Error != "" {
				return fmt.Errorf("batch op %d: %s", i, r.Error)
			}
		}
		done += n
	}

	// One cross-tree query so the query families move too.
	if err := post("/v1/query", map[string]any{"read": "root", "combine": "sum"}, nil); err != nil {
		return err
	}

	// One explicitly traced mutating batch: the X-Dyntc-Trace header must
	// be echoed back with the server's ingest span, force the flush into
	// the span log, and leave the full leader-side span tree readable at
	// /v1/spans?trace=.
	trace := dyntc.NewTraceID()
	hdr := dyntc.FormatTraceHeader(dyntc.TraceContext{Trace: trace, Span: dyntc.NewSpanID()})
	tracedBody, _ := json.Marshal(map[string]any{"ops": []batchOp{
		{Kind: "set-leaf", Node: leaves[0], Value: 42},
	}})
	req, err := http.NewRequest(http.MethodPost, baseURL+tree+"/batch", bytes.NewReader(tracedBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Dyntc-Trace", hdr)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traced batch: %s", resp.Status)
	}
	if echo := resp.Header.Get("X-Dyntc-Trace"); !strings.HasPrefix(echo, trace.String()+"-") || echo == hdr {
		return fmt.Errorf("traced batch: echoed header %q, want %s-<fresh ingest span>", echo, trace)
	}
	spansBody, err := get("/v1/spans?trace=" + trace.String())
	if err != nil {
		return err
	}
	var spans struct {
		Spans []dyntc.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(spansBody), &spans); err != nil {
		return fmt.Errorf("spans: bad body: %v", err)
	}
	names := make(map[string]bool, len(spans.Spans))
	for _, sp := range spans.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"ingest.batch", "engine.flush", "wave", "wal.append"} {
		if !names[want] {
			return fmt.Errorf("spans: trace %s missing a %q span (have %v)", trace, want, names)
		}
	}

	// The scrape itself.
	text, err := get("/metrics")
	if err != nil {
		return err
	}
	if err := CheckMetricsText(text, RequiredLeaderFamilies); err != nil {
		return err
	}
	samples, _ := ParseMetricsText(text)
	if samples["dyntc_engine_flush_seconds_count"] <= 0 {
		return fmt.Errorf("metrics: dyntc_engine_flush_seconds_count is zero after %d ops", ops)
	}
	if samples["dyntc_query_join_seconds_count"] <= 0 {
		return fmt.Errorf("metrics: dyntc_query_join_seconds_count is zero after a query")
	}
	if samples[`dyntc_repl_stage_seconds_count{stage="sealed_appended"}`] <= 0 {
		return fmt.Errorf("metrics: sealed_appended lag stage empty after a traced wave")
	}

	// And the trace ring endpoint.
	traceBody, err := get("/v1/trace?n=4")
	if err != nil {
		return err
	}
	var ring struct {
		Total  int                     `json:"total"`
		Traces []dyntc.WaveTraceRecord `json:"traces"`
	}
	if err := json.Unmarshal([]byte(traceBody), &ring); err != nil {
		return fmt.Errorf("trace: bad body: %v", err)
	}
	if ring.Total <= 0 {
		return fmt.Errorf("trace: no waves sampled after %d ops", ops)
	}

	// The self-diagnosis surface: journal, hot-tree attribution, bundle.
	return CheckObsEndpoints(get, "leader", true)
}

// FollowerScrapeCheck validates a live follower dyntcd at baseURL
// tailing the leader at leaderURL: /metrics must carry the follower
// families with both follower-side lag stages (appended→fetched,
// fetched→applied) non-empty, and /v1/spans must hold the replica spans
// of at least one replicated wave. A follower that bootstrapped after
// the ScrapeCheck traffic finished has nothing to apply (the snapshot
// already covers every wave), so each poll round seals one more wave on
// the leader before re-checking; the check passes as soon as a
// post-bootstrap wave has flowed through the verified replay.
func FollowerScrapeCheck(leaderURL, baseURL string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	get := func(path string) (string, error) {
		resp, err := client.Get(baseURL + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body), nil
	}
	// One dedicated tree to nudge: every poll round grows it by one wave,
	// so the follower always has fresh log tail to attribute.
	nudgeBody, _ := json.Marshal(map[string]any{"root": 1})
	resp, err := client.Post(leaderURL+"/v1/trees", "application/json", bytes.NewReader(nudgeBody))
	if err != nil {
		return fmt.Errorf("create nudge tree: %w", err)
	}
	var nudge struct {
		Tree uint64 `json:"tree"`
	}
	err = json.NewDecoder(resp.Body).Decode(&nudge)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("create nudge tree: %w", err)
	}
	sealWave := func(v int64) error {
		body, _ := json.Marshal(map[string]any{"leaf": 0, "value": v})
		resp, err := client.Post(fmt.Sprintf("%s/v1/trees/%d/set-leaf", leaderURL, nudge.Tree),
			"application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("nudge set-leaf: %s", resp.Status)
		}
		return nil
	}

	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for round := int64(0); ; round++ {
		if err := sealWave(round); err != nil {
			return fmt.Errorf("follower scrape: %w", err)
		}
		lastErr = func() error {
			text, err := get("/metrics")
			if err != nil {
				return err
			}
			if err := CheckMetricsText(text, RequiredFollowerFamilies); err != nil {
				return err
			}
			samples, _ := ParseMetricsText(text)
			for _, stage := range []string{"appended_fetched", "fetched_applied"} {
				if samples[`dyntc_repl_stage_seconds_count{stage="`+stage+`"}`] <= 0 {
					return fmt.Errorf("metrics: follower %s lag stage empty", stage)
				}
			}
			spansBody, err := get("/v1/spans")
			if err != nil {
				return err
			}
			var spans struct {
				Spans []dyntc.SpanRecord `json:"spans"`
			}
			if err := json.Unmarshal([]byte(spansBody), &spans); err != nil {
				return fmt.Errorf("spans: bad body: %v", err)
			}
			var applied bool
			for _, sp := range spans.Spans {
				if sp.Name == "replica.apply" && sp.Proc == "follower" &&
					sp.Parent == dyntc.WaveSpanID(sp.Epoch, sp.Seq) {
					applied = true
					break
				}
			}
			if !applied {
				return fmt.Errorf("spans: no replica.apply span parented on its wave anchor yet")
			}
			return nil
		}()
		if lastErr == nil {
			// Replication attribution converged; finish with the
			// self-diagnosis surface.
			return CheckObsEndpoints(get, "follower", false)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower scrape: %w", lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

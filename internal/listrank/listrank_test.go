package listrank

import (
	"testing"
	"testing/quick"

	"dyntc/internal/pram"
	"dyntc/internal/prng"
)

// randomList builds a random permutation list over n nodes, returning the
// next array and the head index.
func randomList(src *prng.Source, n int) (next []int, head int) {
	perm := src.Perm(n)
	next = make([]int, n)
	for i := range next {
		next[i] = -1
	}
	for i := 0; i+1 < n; i++ {
		next[perm[i]] = perm[i+1]
	}
	if n > 0 {
		head = perm[0]
	}
	return next, head
}

func TestSequentialSmall(t *testing.T) {
	// List: 2 -> 0 -> 1.
	next := []int{1, -1, 0}
	rank := Sequential(next, 2)
	want := []int{1, 0, 2}
	for i := range want {
		if rank[i] != want[i] {
			t.Fatalf("rank = %v, want %v", rank, want)
		}
	}
}

func TestWyllieMatchesSequential(t *testing.T) {
	src := prng.New(1)
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		next, head := randomList(src, n)
		seq := Sequential(next, head)
		wy := Wyllie(pram.New(4), next)
		for i := 0; i < n; i++ {
			if seq[i] != wy[i] {
				t.Fatalf("n=%d node %d: seq %d wyllie %d", n, i, seq[i], wy[i])
			}
		}
	}
}

func TestWyllieQuick(t *testing.T) {
	src := prng.New(2)
	f := func(seed uint64) bool {
		n := int(seed%200) + 1
		next, head := randomList(src, n)
		seq := Sequential(next, head)
		wy := Wyllie(pram.Sequential(), next)
		for i := 0; i < n; i++ {
			if seq[i] != wy[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWyllieSpanIsLogarithmic(t *testing.T) {
	src := prng.New(3)
	const n = 1 << 14
	next, _ := randomList(src, n)
	m := pram.Sequential()
	Wyllie(m, next)
	steps := m.Metrics().Steps
	// log2(2^14) = 14 jump rounds plus init and the final quiescence check.
	if steps < 14 || steps > 20 {
		t.Fatalf("Wyllie used %d rounds for n=%d, want ~log n", steps, n)
	}
	if m.Metrics().Work < int64(n)*14 {
		t.Fatalf("Wyllie work %d suspiciously low", m.Metrics().Work)
	}
}

func TestPrefixSums(t *testing.T) {
	next := []int{1, 2, -1}
	vals := []int64{5, 7, 9}
	got := PrefixSums(next, 0, vals)
	want := []int64{5, 12, 21}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix = %v, want %v", got, want)
		}
	}
}

func TestSingletonList(t *testing.T) {
	next := []int{-1}
	if r := Sequential(next, 0); r[0] != 0 {
		t.Fatalf("singleton rank = %d", r[0])
	}
	if r := Wyllie(pram.Sequential(), next); r[0] != 0 {
		t.Fatalf("singleton wyllie rank = %d", r[0])
	}
}

// Package listrank implements list ranking, the substrate the classical
// Kosaraju–Delcher tree-contraction algorithm uses to order the leaves of
// the expression tree left to right (Reif & Tate §4: "finding an Euler tour
// of the expression tree, performing a list ranking to order the leaves").
//
// Two algorithms are provided:
//
//   - Sequential: a single walk, O(n) work, Θ(n) span.
//   - Wyllie: pointer jumping on a metered PRAM machine, O(log n) rounds and
//     O(n log n) work. This is the textbook non-work-optimal ranker; it is
//     used both as a real substrate and as a baseline whose metered span is
//     compared against the paper's structures in the experiments.
package listrank

import "dyntc/internal/pram"

// Sequential computes, for each node i of the linked list described by
// next (next[i] < 0 terminates), the number of nodes strictly after i.
// head is the first node. Nodes not on the list keep rank 0.
func Sequential(next []int, head int) []int {
	rank := make([]int, len(next))
	// First pass: count list length from head.
	length := 0
	for i := head; i >= 0; i = next[i] {
		length++
	}
	pos := 0
	for i := head; i >= 0; i = next[i] {
		rank[i] = length - 1 - pos
		pos++
	}
	return rank
}

// Wyllie computes the same ranks by pointer jumping on machine m: every
// node repeatedly adds its successor's accumulated rank and doubles its
// jump pointer, for ⌈log₂ n⌉ rounds. All n processors are active every
// round, so the metered cost is Θ(log n) span and Θ(n log n) work.
func Wyllie(m *pram.Machine, next []int) []int {
	n := len(next)
	rank := make([]int, n)
	jump := make([]int, n)
	m.Step(n, func(i int) {
		jump[i] = next[i]
		if next[i] >= 0 {
			rank[i] = 1
		}
	})
	// Double until no pointers remain. Each iteration is two PRAM rounds
	// (read phase into shadow arrays, then write phase) to respect the
	// synchronous read-before-write semantics of the model.
	newRank := make([]int, n)
	newJump := make([]int, n)
	for {
		var active int64
		m.Step(n, func(i int) {
			j := jump[i]
			if j >= 0 {
				pram.AddInt64(&active, 1)
				newRank[i] = rank[i] + rank[j]
				newJump[i] = jump[j]
			} else {
				newRank[i] = rank[i]
				newJump[i] = -1
			}
		})
		if active == 0 {
			break
		}
		rank, newRank = newRank, rank
		jump, newJump = newJump, jump
	}
	return rank
}

// PrefixSums computes, for the list described by next/head with the given
// node values, the inclusive prefix sum at every node (sum of values from
// head up to and including the node), sequentially.
func PrefixSums(next []int, head int, values []int64) []int64 {
	out := make([]int64, len(next))
	var acc int64
	for i := head; i >= 0; i = next[i] {
		acc += values[i]
		out[i] = acc
	}
	return out
}

package semiring

import (
	"testing"
	"testing/quick"
)

func TestLinearIdentityAndConst(t *testing.T) {
	for _, r := range rings() {
		id := Identity(r)
		f := func(xr int64) bool {
			x := r.Normalize(xr)
			if id.Apply(r, x) != x {
				return false
			}
			c := Const(r, x)
			if !c.IsConst(r) {
				return false
			}
			return c.Apply(r, r.Normalize(xr+1)) == x
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestComposeIsFunctionComposition(t *testing.T) {
	for _, r := range rings() {
		f := func(a1, b1, a2, b2, xr int64) bool {
			g := Linear{r.Normalize(a1), r.Normalize(b1)}
			h := Linear{r.Normalize(a2), r.Normalize(b2)}
			x := r.Normalize(xr)
			return g.Compose(r, h).Apply(r, x) == g.Apply(r, h.Apply(r, x))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	for _, r := range rings() {
		f := func(a1, b1, a2, b2, a3, b3 int64) bool {
			p := Linear{r.Normalize(a1), r.Normalize(b1)}
			q := Linear{r.Normalize(a2), r.Normalize(b2)}
			s := Linear{r.Normalize(a3), r.Normalize(b3)}
			lhs := p.Compose(r, q).Compose(r, s)
			rhs := p.Compose(r, q.Compose(r, s))
			return lhs == rhs
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestOpSymmetry(t *testing.T) {
	for _, r := range rings() {
		f := func(a, b, c, xr, yr int64) bool {
			q := Op{r.Normalize(a), r.Normalize(b), r.Normalize(c)}
			x, y := r.Normalize(xr), r.Normalize(yr)
			return q.Eval(r, x, y) == q.Eval(r, y, x)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestPartialMatchesEval(t *testing.T) {
	for _, r := range rings() {
		f := func(a, b, c, kr, yr int64) bool {
			q := Op{r.Normalize(a), r.Normalize(b), r.Normalize(c)}
			k, y := r.Normalize(kr), r.Normalize(yr)
			return q.Partial(r, k).Apply(r, y) == q.Eval(r, k, y)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

func TestPaperRakeFormulas(t *testing.T) {
	// §4.2: raking leaf value B into a node with pending form (C, D):
	// addition yields (C, C·B + D); multiplication yields (C·B, D).
	r := NewMod(1_000_000_007)
	const B, C, D = 5, 7, 11
	pending := Linear{A: C, B: D}

	add := pending.Compose(r, OpAdd(r).Partial(r, B))
	if add.A != C || add.B != (C*B+D)%1_000_000_007 {
		t.Fatalf("addition small-rake = %+v", add)
	}
	mul := pending.Compose(r, OpMul(r).Partial(r, B))
	if mul.A != C*B || mul.B != D {
		t.Fatalf("multiplication small-rake = %+v", mul)
	}
}

func TestOpAddOpMul(t *testing.T) {
	for _, r := range rings() {
		f := func(xr, yr int64) bool {
			x, y := r.Normalize(xr), r.Normalize(yr)
			if OpAdd(r).Eval(r, x, y) != r.Add(x, y) {
				return false
			}
			return OpMul(r).Eval(r, x, y) == r.Mul(x, y)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

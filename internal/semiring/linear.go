package semiring

// Linear is the paper's label pair (A, B): the function x ↦ A·x + B over a
// Ring. Initial internal-node labels are Identity (1, 0); leaf labels are
// Const(v) = (0, v) (§4.2: "all internal nodes are given the pair (1,0) as
// a label, and all leaves are given the pair (0,v)").
type Linear struct {
	A, B int64
}

// Identity returns the identity form (1, 0) of r.
func Identity(r Ring) Linear { return Linear{A: r.One(), B: r.Zero()} }

// Const returns the constant form (0, v) of r.
func Const(r Ring, v int64) Linear { return Linear{A: r.Zero(), B: v} }

// Apply evaluates the form at x: A·x + B.
func (f Linear) Apply(r Ring, x int64) int64 {
	return r.Add(r.Mul(f.A, x), f.B)
}

// Compose returns f∘g, the form x ↦ f(g(x)) = (A_f·A_g)·x + (A_f·B_g + B_f).
// This is the paper's "small-compress" label update: with f = (A, B) the
// pending form of the removed parent and g = (C, D) the sibling's form, the
// new sibling form is (A·C, A·D + B).
func (f Linear) Compose(r Ring, g Linear) Linear {
	return Linear{
		A: r.Mul(f.A, g.A),
		B: r.Add(r.Mul(f.A, g.B), f.B),
	}
}

// IsConst reports whether the form ignores its input (A == Zero), which is
// the invariant maintained for leaf labels throughout contraction.
func (f Linear) IsConst(r Ring) bool { return f.A == r.Zero() }

// Op is a symmetric bilinear node operation
//
//	q(x, y) = a·x·y + b·(x + y) + c
//
// over a Ring. The paper's node operations are the special cases
// OpAdd = (0,1,0) and OpMul = (1,0,0); the general form additionally covers
// the order-insensitive hash combination used for canonical forms (§5(e)).
// Symmetry (q(x,y) = q(y,x)) is what makes the rake of either sibling use
// the same Partial rule.
type Op struct {
	A, B, C int64
}

// OpAdd returns the addition operation x + y of r.
func OpAdd(r Ring) Op { return Op{A: r.Zero(), B: r.One(), C: r.Zero()} }

// OpMul returns the multiplication operation x · y of r.
func OpMul(r Ring) Op { return Op{A: r.One(), B: r.Zero(), C: r.Zero()} }

// Eval computes q(x, y).
func (q Op) Eval(r Ring, x, y int64) int64 {
	axy := r.Mul(r.Mul(q.A, x), y)
	bxy := r.Mul(q.B, r.Add(x, y))
	return r.Add(r.Add(axy, bxy), q.C)
}

// Partial fixes one argument of q at the constant k and returns the
// resulting linear form in the other argument:
//
//	q(k, y) = (a·k + b)·y + (b·k + c).
//
// This is the paper's "small-rake": absorbing the raked leaf's constant
// value into its parent's operation. For OpAdd it yields (1, k) and for
// OpMul (k, 0), matching §4.2's (C, C·B+D) and (C·B, D) updates once
// composed with the parent's pending form.
func (q Op) Partial(r Ring, k int64) Linear {
	return Linear{
		A: r.Add(r.Mul(q.A, k), q.B),
		B: r.Add(r.Mul(q.B, k), q.C),
	}
}

package semiring

import (
	"testing"
	"testing/quick"
)

// rings returns every Ring instance for axiom tests.
func rings() []Ring {
	return []Ring{NewMod(1_000_000_007), NewMod(97), MinPlus{}, MaxPlus{}, Bool{}, MaxMin{}}
}

func TestRingAxioms(t *testing.T) {
	for _, r := range rings() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			f := func(xr, yr, zr int64) bool {
				x, y, z := r.Normalize(xr), r.Normalize(yr), r.Normalize(zr)
				// Commutativity.
				if r.Add(x, y) != r.Add(y, x) || r.Mul(x, y) != r.Mul(y, x) {
					return false
				}
				// Associativity.
				if r.Add(r.Add(x, y), z) != r.Add(x, r.Add(y, z)) {
					return false
				}
				if r.Mul(r.Mul(x, y), z) != r.Mul(x, r.Mul(y, z)) {
					return false
				}
				// Identities.
				if r.Add(x, r.Zero()) != x || r.Mul(x, r.One()) != x {
					return false
				}
				// Annihilation.
				if r.Mul(x, r.Zero()) != r.Zero() {
					return false
				}
				// Distributivity.
				return r.Mul(x, r.Add(y, z)) == r.Add(r.Mul(x, y), r.Mul(x, z))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestModRingReduction(t *testing.T) {
	r := NewMod(97)
	if got := r.Normalize(-1); got != 96 {
		t.Fatalf("Normalize(-1) = %d", got)
	}
	if got := r.Add(96, 5); got != 4 {
		t.Fatalf("Add wrap = %d", got)
	}
	if got := r.Mul(96, 96); got != 1 {
		t.Fatalf("(-1)*(-1) mod 97 = %d", got)
	}
}

func TestNewModPanics(t *testing.T) {
	for _, p := range []int64{0, 1, -5, 1 << 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMod(%d) did not panic", p)
				}
			}()
			NewMod(p)
		}()
	}
}

func TestTropicalSentinels(t *testing.T) {
	mp := MinPlus{}
	if got := mp.Mul(Infinity, Infinity); got != Infinity {
		t.Fatalf("inf+inf = %d", got)
	}
	if got := mp.Mul(Infinity, -100); got != Infinity {
		t.Fatalf("inf annihilation = %d", got)
	}
	if got := mp.Add(Infinity, 5); got != 5 {
		t.Fatalf("min(inf,5) = %d", got)
	}
	xp := MaxPlus{}
	if got := xp.Mul(-Infinity, -Infinity); got != -Infinity {
		t.Fatalf("-inf + -inf = %d", got)
	}
	if got := xp.Mul(-Infinity, 100); got != -Infinity {
		t.Fatalf("-inf annihilation = %d", got)
	}
	if got := xp.Add(-Infinity, 5); got != 5 {
		t.Fatalf("max(-inf,5) = %d", got)
	}
}

func TestBoolTruthTable(t *testing.T) {
	b := Bool{}
	cases := []struct{ x, y, or, and int64 }{
		{0, 0, 0, 0}, {0, 1, 1, 0}, {1, 0, 1, 0}, {1, 1, 1, 1},
	}
	for _, c := range cases {
		if b.Add(c.x, c.y) != c.or {
			t.Errorf("OR(%d,%d)", c.x, c.y)
		}
		if b.Mul(c.x, c.y) != c.and {
			t.Errorf("AND(%d,%d)", c.x, c.y)
		}
	}
	if b.Normalize(42) != 1 || b.Normalize(0) != 0 {
		t.Error("Bool.Normalize")
	}
}

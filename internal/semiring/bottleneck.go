package semiring

// MaxMin is the bottleneck (fuzzy) semiring: Add is max with identity
// -Infinity, Mul is min with identity +Infinity. Distributivity holds by
// lattice distributivity of (min, max). Contraction over MaxMin computes
// widest-path style aggregates: series composition takes the narrowest
// link, parallel composition the widest alternative.
type MaxMin struct{}

// Add returns max(x, y).
func (MaxMin) Add(x, y int64) int64 {
	if x > y {
		return x
	}
	return y
}

// Mul returns min(x, y).
func (MaxMin) Mul(x, y int64) int64 {
	if x < y {
		return x
	}
	return y
}

// Zero returns -Infinity, the identity of max.
func (MaxMin) Zero() int64 { return -Infinity }

// One returns +Infinity, the identity of min.
func (MaxMin) One() int64 { return Infinity }

// Normalize clamps x into [-Infinity, Infinity].
func (MaxMin) Normalize(x int64) int64 {
	if x >= Infinity {
		return Infinity
	}
	if x <= -Infinity {
		return -Infinity
	}
	return x % maxFinite
}

// Name implements Ring.
func (MaxMin) Name() string { return "max-min" }

// Package semiring defines the label algebra used by parallel tree
// contraction (Reif & Tate, SPAA'94, §4.2).
//
// The paper's rake operations manipulate labels that are pairs (A, B)
// representing the linear form x ↦ A·x + B over a commutative ring ("we
// consider the case of T being over a commutative ring, which is the case
// for the vast majority of tree contraction applications"). This package
// provides:
//
//   - Ring: a commutative semiring over int64 values,
//   - Linear: the (A, B) linear forms, their application and composition,
//   - Op: symmetric bilinear node operations q(x,y) = a·x·y + b·(x+y) + c,
//     which generalize the paper's {+, ×} node labels and additionally
//     support the canonical-form application (§5(e)) where an
//     order-insensitive combination of children is required.
//
// The rake identities implemented here are exactly the paper's: for a
// small-rake of leaf value k into a node with pending form (C, D) and
// operation q, the new pending form is Partial(q, k) composed under (C, D);
// for a small-compress, forms compose. Both stay inside the (A, B)
// representation because Partial of a bilinear form is linear and linear
// forms are closed under composition.
package semiring

import "fmt"

// Ring is a commutative semiring over int64 element representations. Add
// must be commutative and associative with identity Zero; Mul must be
// commutative and associative with identity One, distribute over Add, and
// Zero must annihilate under Mul. (Every commutative ring qualifies; so do
// tropical semirings, which is why contraction over min-plus works.)
type Ring interface {
	Add(x, y int64) int64
	Mul(x, y int64) int64
	Zero() int64
	One() int64
	// Normalize maps an arbitrary int64 into the ring's canonical element
	// representation (e.g. reduction mod p). Generators use it to admit
	// arbitrary test inputs.
	Normalize(x int64) int64
	Name() string
}

// ModRing is the ring of integers modulo a prime (or any modulus) P with
// 1 < P < 2^31 so that products of reduced elements fit in int64.
type ModRing struct{ P int64 }

// NewMod returns the ring Z/pZ. It panics for invalid moduli.
func NewMod(p int64) ModRing {
	if p < 2 || p >= 1<<31 {
		panic("semiring: modulus out of range")
	}
	return ModRing{P: p}
}

// Add returns (x + y) mod P.
func (r ModRing) Add(x, y int64) int64 { return (x + y) % r.P }

// Mul returns (x · y) mod P.
func (r ModRing) Mul(x, y int64) int64 { return (x * y) % r.P }

// Zero returns the additive identity.
func (r ModRing) Zero() int64 { return 0 }

// One returns the multiplicative identity.
func (r ModRing) One() int64 { return 1 }

// Normalize reduces x into [0, P).
func (r ModRing) Normalize(x int64) int64 {
	x %= r.P
	if x < 0 {
		x += r.P
	}
	return x
}

// Name implements Ring.
func (r ModRing) Name() string { return fmt.Sprintf("Z/%d", r.P) }

// Infinity is the additive identity of the tropical semirings. Finite
// tropical elements are kept small by Normalize (|x| < 2^20) and tropical
// multiplication is exact integer addition, so chains of up to ~2^38
// multiplications stay strictly between the sentinels and the semiring
// axioms hold exactly.
const Infinity int64 = 1 << 60

// maxFinite bounds the magnitude of normalized finite tropical elements.
const maxFinite int64 = 1 << 20

// MinPlus is the tropical semiring (min, +): Add is min with identity
// +Infinity, Mul is numeric + with identity 0. Contraction over MinPlus
// computes shortest-path style aggregates of the expression tree.
type MinPlus struct{}

// Add returns min(x, y).
func (MinPlus) Add(x, y int64) int64 {
	if x < y {
		return x
	}
	return y
}

// Mul returns x + y, with +Infinity annihilating.
func (MinPlus) Mul(x, y int64) int64 {
	if x >= Infinity || y >= Infinity {
		return Infinity
	}
	return x + y
}

// Zero returns +Infinity, the identity of min.
func (MinPlus) Zero() int64 { return Infinity }

// One returns 0, the identity of +.
func (MinPlus) One() int64 { return 0 }

// Normalize maps x to +Infinity if it is at least Infinity, otherwise to a
// small finite representative.
func (MinPlus) Normalize(x int64) int64 {
	if x >= Infinity {
		return Infinity
	}
	return x % maxFinite
}

// Name implements Ring.
func (MinPlus) Name() string { return "min-plus" }

// MaxPlus is the tropical semiring (max, +).
type MaxPlus struct{}

// Add returns max(x, y).
func (MaxPlus) Add(x, y int64) int64 {
	if x > y {
		return x
	}
	return y
}

// Mul returns x + y, with -Infinity annihilating.
func (MaxPlus) Mul(x, y int64) int64 {
	if x <= -Infinity || y <= -Infinity {
		return -Infinity
	}
	return x + y
}

// Zero returns -Infinity, the identity of max.
func (MaxPlus) Zero() int64 { return -Infinity }

// One returns 0, the identity of +.
func (MaxPlus) One() int64 { return 0 }

// Normalize maps x to -Infinity if it is at most -Infinity, otherwise to a
// small finite representative.
func (MaxPlus) Normalize(x int64) int64 {
	if x <= -Infinity {
		return -Infinity
	}
	return x % maxFinite
}

// Name implements Ring.
func (MaxPlus) Name() string { return "max-plus" }

// Bool is the boolean semiring ({0,1}, OR, AND). Contraction over Bool
// evaluates monotone boolean expression trees.
type Bool struct{}

// Add returns x OR y.
func (Bool) Add(x, y int64) int64 {
	if x != 0 || y != 0 {
		return 1
	}
	return 0
}

// Mul returns x AND y.
func (Bool) Mul(x, y int64) int64 {
	if x != 0 && y != 0 {
		return 1
	}
	return 0
}

// Zero returns 0 (false).
func (Bool) Zero() int64 { return 0 }

// One returns 1 (true).
func (Bool) One() int64 { return 1 }

// Normalize maps nonzero to 1.
func (Bool) Normalize(x int64) int64 {
	if x != 0 {
		return 1
	}
	return 0
}

// Name implements Ring.
func (Bool) Name() string { return "bool" }

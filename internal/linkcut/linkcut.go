// Package linkcut implements Sleator–Tarjan link-cut trees — reference [16]
// of Reif & Tate and the canonical sequential dynamic-trees baseline the
// paper positions itself against (§1.1): every operation runs in O(log n)
// amortized sequential time, versus the paper's O(log(|U| log n)) expected
// parallel time for batches of |U| operations.
//
// The implementation is the standard splay-tree realization with access/
// expose, supporting link, cut, root finding, LCA, path length, and a
// maximum-cost path aggregate. Experiment E10 runs it head-to-head against
// the batch-parallel structures.
package linkcut

// Node is a vertex of the represented forest. The zero value is not
// usable; create nodes with NewNode.
type Node struct {
	// Splay tree links over the preferred-path decomposition.
	left, right, parent *Node
	// pathParent connects a preferred path's splay root to its parent
	// vertex in the represented tree.
	pathParent *Node

	// Cost is the vertex cost used by path aggregates.
	Cost int64
	// maxCost is the maximum cost in this node's splay subtree.
	maxCost int64
	// size is the splay subtree size (vertices on the preferred path
	// segment), used for path length queries.
	size int

	// Label is free for the caller.
	Label any
}

// NewNode returns a fresh singleton vertex with the given cost.
func NewNode(cost int64) *Node {
	n := &Node{Cost: cost}
	n.pull()
	return n
}

// pull recomputes the node's aggregates from its splay children.
func (n *Node) pull() {
	n.maxCost = n.Cost
	n.size = 1
	if n.left != nil {
		n.size += n.left.size
		if n.left.maxCost > n.maxCost {
			n.maxCost = n.left.maxCost
		}
	}
	if n.right != nil {
		n.size += n.right.size
		if n.right.maxCost > n.maxCost {
			n.maxCost = n.right.maxCost
		}
	}
}

// isSplayRoot reports whether n is the root of its splay tree.
func (n *Node) isSplayRoot() bool {
	return n.parent == nil || (n.parent.left != n && n.parent.right != n)
}

// rotate promotes n above its splay parent.
func (n *Node) rotate() {
	p := n.parent
	g := p.parent
	if !p.isSplayRoot() {
		if g.left == p {
			g.left = n
		} else {
			g.right = n
		}
	} else {
		// n inherits p's path-parent pointer.
		n.pathParent = p.pathParent
		p.pathParent = nil
	}
	n.parent = g

	if p.left == n {
		p.left = n.right
		if p.left != nil {
			p.left.parent = p
		}
		n.right = p
	} else {
		p.right = n.left
		if p.right != nil {
			p.right.parent = p
		}
		n.left = p
	}
	p.parent = n
	p.pull()
	n.pull()
}

// splay brings n to the root of its splay tree.
func (n *Node) splay() {
	for !n.isSplayRoot() {
		p := n.parent
		if !p.isSplayRoot() {
			g := p.parent
			if (g.left == p) == (p.left == n) {
				p.rotate() // zig-zig
			} else {
				n.rotate() // zig-zag
			}
		}
		n.rotate()
	}
}

// access makes the path from the tree root to n preferred and returns the
// previous splay root encountered last (used by LCA).
func access(n *Node) *Node {
	n.splay()
	// Detach n's deeper preferred subpath.
	if n.right != nil {
		n.right.parent = nil
		n.right.pathParent = n
		n.right = nil
		n.pull()
	}
	last := n
	for n.pathParent != nil {
		q := n.pathParent
		last = q
		q.splay()
		if q.right != nil {
			q.right.parent = nil
			q.right.pathParent = q
			q.right = nil
		}
		q.right = n
		n.parent = q
		n.pathParent = nil
		q.pull()
		n.splay()
	}
	return last
}

// FindRoot returns the root of n's represented tree.
func FindRoot(n *Node) *Node {
	access(n)
	// The root is the leftmost node on the preferred path.
	for n.left != nil {
		n = n.left
	}
	n.splay()
	return n
}

// Link makes child (which must be the root of its own tree) a child of
// parent. It panics if child is not a tree root or the link would create a
// cycle.
func Link(child, parent *Node) {
	if FindRoot(parent) == FindRoot(child) {
		panic("linkcut: Link would create a cycle")
	}
	access(child)
	if child.left != nil {
		panic("linkcut: Link of a non-root")
	}
	access(parent)
	child.pathParent = parent
}

// Cut removes the edge between n and its parent. It panics if n is a root.
func Cut(n *Node) {
	access(n)
	if n.left == nil {
		panic("linkcut: Cut of a root")
	}
	n.left.parent = nil
	n.left = nil
	n.pull()
}

// Connected reports whether two vertices are in the same tree.
func Connected(a, b *Node) bool {
	if a == b {
		return true
	}
	return FindRoot(a) == FindRoot(b)
}

// LCA returns the least common ancestor of a and b, or nil if they are in
// different trees.
func LCA(a, b *Node) *Node {
	if a == b {
		return a
	}
	if !Connected(a, b) {
		return nil
	}
	access(a)
	return access(b)
}

// PathMax returns the maximum cost on the path from n to its tree root.
func PathMax(n *Node) int64 {
	access(n)
	return n.maxCost
}

// Depth returns the number of edges from n to its tree root.
func Depth(n *Node) int {
	access(n)
	return n.size - 1
}

// SetCost updates n's cost.
func SetCost(n *Node, cost int64) {
	access(n)
	n.Cost = cost
	n.pull()
}

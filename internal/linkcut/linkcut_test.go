package linkcut

import (
	"testing"

	"dyntc/internal/prng"
)

// naiveForest is the reference model: explicit parent pointers.
type naiveForest struct {
	parent map[*Node]*Node
	cost   map[*Node]int64
}

func newNaive() *naiveForest {
	return &naiveForest{parent: map[*Node]*Node{}, cost: map[*Node]int64{}}
}

func (f *naiveForest) root(n *Node) *Node {
	for f.parent[n] != nil {
		n = f.parent[n]
	}
	return n
}

func (f *naiveForest) depth(n *Node) int {
	d := 0
	for f.parent[n] != nil {
		n = f.parent[n]
		d++
	}
	return d
}

func (f *naiveForest) pathMax(n *Node) int64 {
	best := f.cost[n]
	for x := n; x != nil; x = f.parent[x] {
		if f.cost[x] > best {
			best = f.cost[x]
		}
	}
	return best
}

func (f *naiveForest) lca(a, b *Node) *Node {
	anc := map[*Node]bool{}
	for x := a; x != nil; x = f.parent[x] {
		anc[x] = true
	}
	for x := b; x != nil; x = f.parent[x] {
		if anc[x] {
			return x
		}
	}
	return nil
}

func TestBasicLinkCut(t *testing.T) {
	a, b, c := NewNode(1), NewNode(2), NewNode(3)
	Link(b, a)
	Link(c, b)
	if FindRoot(c) != a {
		t.Fatal("root of c should be a")
	}
	if Depth(c) != 2 {
		t.Fatalf("depth(c) = %d", Depth(c))
	}
	if PathMax(c) != 3 {
		t.Fatalf("pathmax(c) = %d", PathMax(c))
	}
	Cut(b)
	if FindRoot(c) != b {
		t.Fatal("after cut, root of c should be b")
	}
	if Connected(a, c) {
		t.Fatal("a and c still connected")
	}
}

func TestLinkPanicsOnCycle(t *testing.T) {
	a, b := NewNode(0), NewNode(0)
	Link(b, a)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on cycle")
		}
	}()
	Link(a, b)
}

func TestCutPanicsOnRoot(t *testing.T) {
	a := NewNode(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on root cut")
		}
	}()
	Cut(a)
}

func TestRandomSoakAgainstNaive(t *testing.T) {
	src := prng.New(42)
	const n = 120
	nodes := make([]*Node, n)
	model := newNaive()
	for i := range nodes {
		nodes[i] = NewNode(int64(i))
		model.cost[nodes[i]] = int64(i)
	}
	for step := 0; step < 4000; step++ {
		switch src.Intn(5) {
		case 0: // link two random trees
			a := nodes[src.Intn(n)]
			b := nodes[src.Intn(n)]
			if model.root(a) != model.root(b) && model.parent[a] == nil {
				Link(a, b)
				model.parent[a] = b
			}
		case 1: // cut a random non-root
			a := nodes[src.Intn(n)]
			if model.parent[a] != nil {
				Cut(a)
				delete(model.parent, a)
			}
		case 2: // root + depth query
			a := nodes[src.Intn(n)]
			if FindRoot(a) != model.root(a) {
				t.Fatalf("step %d: FindRoot mismatch", step)
			}
			if Depth(a) != model.depth(a) {
				t.Fatalf("step %d: Depth mismatch: %d vs %d", step, Depth(a), model.depth(a))
			}
		case 3: // path max + cost update
			a := nodes[src.Intn(n)]
			v := src.Int63() % 1000
			SetCost(a, v)
			model.cost[a] = v
			if PathMax(a) != model.pathMax(a) {
				t.Fatalf("step %d: PathMax mismatch", step)
			}
		default: // lca + connectivity
			a := nodes[src.Intn(n)]
			b := nodes[src.Intn(n)]
			wantConn := model.root(a) == model.root(b)
			if Connected(a, b) != wantConn {
				t.Fatalf("step %d: connectivity mismatch", step)
			}
			if wantConn {
				if got, want := LCA(a, b), model.lca(a, b); got != want {
					t.Fatalf("step %d: LCA mismatch", step)
				}
			}
		}
	}
}

func TestDeepChainPerformance(t *testing.T) {
	// A 100k chain must be traversable without quadratic blowup (splay
	// amortization); this also guards against stack-depth accidents.
	const n = 100000
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(int64(i))
		if i > 0 {
			Link(nodes[i], nodes[i-1])
		}
	}
	if FindRoot(nodes[n-1]) != nodes[0] {
		t.Fatal("wrong root")
	}
	if Depth(nodes[n-1]) != n-1 {
		t.Fatal("wrong depth")
	}
	if PathMax(nodes[n-1]) != n-1 {
		t.Fatal("wrong path max")
	}
}

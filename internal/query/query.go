// Package query is the cross-tree read engine over a forest of served
// expression trees: the layer between the per-tree coalescing engines
// (internal/engine) and the HTTP surface (cmd/dyntcd).
//
// A single-tree engine answers one tree's reads fast, but the forest
// serves many independent trees and dashboard-shaped workloads ("sum of
// roots across my 10k trees") would otherwise issue one round-trip per
// tree. Batch read queries dominate real batch-dynamic workloads and
// batch exceptionally well (Ikram et al. 2025; Acar et al. 2020), so this
// package makes them one call: a Spec names a set of trees (explicit IDs,
// all, or an ID range), a per-tree read (root value, node value, subtree
// size) and a combiner (sum / min / max / count, or a semiring combine
// over the existing Ring algebra), and the Planner scatters the reads
// across a persistent worker pool and gathers the partial results.
//
// Scatter rides each engine's coalescing window: root and node-value
// reads are submitted asynchronously and join whatever wave the target
// engine is flushing — there is no global barrier, and mutation traffic
// keeps flowing while a query is in flight. Each per-tree result carries
// the applied-wave sequence number the read observed, so callers see
// exactly which version of every tree answered (and can replay a wave log
// to that sequence to audit the answer).
package query

import (
	"errors"
	"fmt"
	"math"

	"dyntc/internal/semiring"
)

// Errors reported per tree (in TreeResult.Err) or for a whole Spec.
var (
	// ErrNoTree reports a selected tree id the reader does not serve.
	ErrNoTree = errors.New("query: no such tree")
	// ErrNoTour reports a subtree-size read against a tree built without
	// tour maintenance (dyntc.WithTour).
	ErrNoTour = errors.New("query: tree does not maintain the Eulerian tour (WithTour)")
	// ErrBadSpec reports an invalid query specification.
	ErrBadSpec = errors.New("query: invalid spec")
)

// ReadKind enumerates the per-tree reads a query can scatter.
type ReadKind uint8

const (
	// ReadRoot reads the tree's root value (the whole expression).
	ReadRoot ReadKind = iota
	// ReadValue reads the value of the subexpression rooted at Read.Node.
	ReadValue
	// ReadSubtree reads the node count of the subtree rooted at Read.Node
	// (requires the tree to maintain its Eulerian tour).
	ReadSubtree
)

// Read is the per-tree read a query performs on every selected tree.
type Read struct {
	Kind ReadKind
	Node int // target node id for ReadValue / ReadSubtree
}

// Root reads every selected tree's root value.
func Root() Read { return Read{Kind: ReadRoot} }

// Value reads the value at dense node id node of every selected tree.
func Value(node int) Read { return Read{Kind: ReadValue, Node: node} }

// SubtreeSize reads the subtree node count at dense node id node of every
// selected tree (each tree must maintain its tour).
func SubtreeSize(node int) Read { return Read{Kind: ReadSubtree, Node: node} }

// CombineKind enumerates the cross-tree combiners.
type CombineKind uint8

const (
	// CombineSum adds the per-tree values as plain int64s.
	CombineSum CombineKind = iota
	// CombineMin takes the minimum per-tree value.
	CombineMin
	// CombineMax takes the maximum per-tree value.
	CombineMax
	// CombineCount counts the trees that answered (values ignored).
	CombineCount
	// CombineRingAdd folds values with Ring.Add from Ring.Zero.
	CombineRingAdd
	// CombineRingMul folds values with Ring.Mul from Ring.One.
	CombineRingMul
)

// Combiner joins per-tree read results into one forest-wide answer. The
// zero value is CombineSum.
type Combiner struct {
	Kind CombineKind
	Ring semiring.Ring // required for the ring combiners
}

// Sum combines by plain int64 addition.
func Sum() Combiner { return Combiner{Kind: CombineSum} }

// Min combines by minimum.
func Min() Combiner { return Combiner{Kind: CombineMin} }

// Max combines by maximum.
func Max() Combiner { return Combiner{Kind: CombineMax} }

// Count counts answering trees.
func Count() Combiner { return Combiner{Kind: CombineCount} }

// RingAdd combines with r.Add starting from r.Zero().
func RingAdd(r semiring.Ring) Combiner { return Combiner{Kind: CombineRingAdd, Ring: r} }

// RingMul combines with r.Mul starting from r.One().
func RingMul(r semiring.Ring) Combiner { return Combiner{Kind: CombineRingMul, Ring: r} }

// Identity returns the combiner's fold identity (the Combined value of a
// query that selected no trees).
func (c Combiner) Identity() int64 {
	switch c.Kind {
	case CombineMin:
		return math.MaxInt64
	case CombineMax:
		return math.MinInt64
	case CombineRingAdd:
		return c.Ring.Zero()
	case CombineRingMul:
		return c.Ring.One()
	}
	return 0
}

// Fold accumulates one per-tree value into acc.
func (c Combiner) Fold(acc, v int64) int64 {
	switch c.Kind {
	case CombineMin:
		return min(acc, v)
	case CombineMax:
		return max(acc, v)
	case CombineCount:
		return acc + 1
	case CombineRingAdd:
		return c.Ring.Add(acc, c.Ring.Normalize(v))
	case CombineRingMul:
		return c.Ring.Mul(acc, c.Ring.Normalize(v))
	}
	return acc + v
}

// Merge joins two partial accumulators (the gather step of the
// scatter-gather join). For every combiner but Count it coincides with
// Fold; counts add.
func (c Combiner) Merge(a, b int64) int64 {
	if c.Kind == CombineCount {
		return a + b
	}
	return c.Fold(a, b)
}

func (c Combiner) validate() error {
	switch c.Kind {
	case CombineSum, CombineMin, CombineMax, CombineCount:
		return nil
	case CombineRingAdd, CombineRingMul:
		if c.Ring == nil {
			return fmt.Errorf("%w: ring combiner without a ring", ErrBadSpec)
		}
		return nil
	}
	return fmt.Errorf("%w: unknown combiner %d", ErrBadSpec, c.Kind)
}

// Selector names the set of trees a query scatters over. Zero value =
// every served tree. Explicit IDs win over the range; an explicit id the
// reader does not serve yields a per-tree ErrNoTree result rather than
// failing the query.
type Selector struct {
	IDs      []uint64 // explicit tree ids, queried in the given order
	From, To uint64   // inclusive id range, active when To != 0
}

// All selects every served tree.
func All() Selector { return Selector{} }

// IDs selects exactly the given trees.
func IDs(ids ...uint64) Selector { return Selector{IDs: ids} }

// Range selects served trees with From <= id <= To.
func Range(from, to uint64) Selector { return Selector{From: from, To: to} }

// resolve maps the selector to the concrete id list to scatter over,
// given the reader's (sorted) served ids.
func (s Selector) resolve(served []uint64) []uint64 {
	if len(s.IDs) > 0 {
		return s.IDs
	}
	if s.To == 0 {
		return served
	}
	out := make([]uint64, 0, len(served))
	for _, id := range served {
		if id >= s.From && id <= s.To {
			out = append(out, id)
		}
	}
	return out
}

func (s Selector) validate() error {
	if s.To != 0 && s.From > s.To {
		return fmt.Errorf("%w: range [%d, %d] is empty", ErrBadSpec, s.From, s.To)
	}
	// From without To would silently fall back to all trees — ids start
	// at 1, so To == 0 is never a legitimate range endpoint.
	if s.To == 0 && s.From != 0 && len(s.IDs) == 0 {
		return fmt.Errorf("%w: range lower bound %d without an upper bound", ErrBadSpec, s.From)
	}
	return nil
}

// Spec is one cross-tree query: which trees, what to read on each, and
// how to join the answers.
type Spec struct {
	Select  Selector
	Read    Read
	Combine Combiner
	// Detail requests the per-tree breakdown (Result.Detail): each tree's
	// value, applied-wave sequence and error. Off by default — a 10k-tree
	// aggregate then allocates no per-tree results.
	Detail bool
}

func (q Spec) validate() error {
	switch q.Read.Kind {
	case ReadRoot, ReadValue, ReadSubtree:
	default:
		return fmt.Errorf("%w: unknown read kind %d", ErrBadSpec, q.Read.Kind)
	}
	if q.Read.Kind != ReadRoot && q.Read.Node < 0 {
		return fmt.Errorf("%w: negative node id %d", ErrBadSpec, q.Read.Node)
	}
	if err := q.Select.validate(); err != nil {
		return err
	}
	return q.Combine.validate()
}

// TreeResult is one tree's contribution to a query.
type TreeResult struct {
	Tree  uint64 // tree id
	Value int64  // the read's value (combiner input)
	Seq   uint64 // applied-wave sequence the read observed
	Err   error  // per-tree failure (dead node, no tour, no such tree)
}

// Result is a completed cross-tree query.
type Result struct {
	Combined int64        // the combiner's fold over every answering tree
	Trees    int          // trees that answered (combined)
	Errors   int          // trees that failed their read
	Detail   []TreeResult // per-tree results, scatter order; nil unless Spec.Detail
}

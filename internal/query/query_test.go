package query

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"dyntc/internal/semiring"
)

// fakeReader serves synthetic trees: value = 10*id, seq = id, with a
// configurable error set. Start resolves immediately (the planner's
// scatter/gather mechanics are what is under test, not engine futures).
type fakeReader struct {
	ids    []uint64
	failOn map[uint64]error
	starts atomic.Int64
}

func (r *fakeReader) Trees() []uint64 { return r.ids }

type fakeHandle struct {
	v   int64
	seq uint64
	err error
}

func (h fakeHandle) Wait() (int64, uint64, error) { return h.v, h.seq, h.err }

func (r *fakeReader) Start(id uint64, _ Read) Handle {
	r.starts.Add(1)
	served := false
	for _, s := range r.ids {
		if s == id {
			served = true
			break
		}
	}
	if !served {
		return nil
	}
	if err := r.failOn[id]; err != nil {
		return fakeHandle{err: err}
	}
	return fakeHandle{v: int64(10 * id), seq: id}
}

func ids(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

func TestPlannerCombiners(t *testing.T) {
	p := NewPlanner(4)
	defer p.Close()
	r := &fakeReader{ids: ids(100)}

	// sum of 10*(1..100) = 10*5050
	res, err := p.Run(r, Spec{Read: Root(), Combine: Sum(), Detail: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined != 50500 || res.Trees != 100 || res.Errors != 0 {
		t.Fatalf("sum: got %+v", res)
	}
	if len(res.Detail) != 100 {
		t.Fatalf("detail: %d entries", len(res.Detail))
	}
	for i, tr := range res.Detail {
		if tr.Tree != uint64(i+1) || tr.Value != int64(10*(i+1)) || tr.Seq != uint64(i+1) || tr.Err != nil {
			t.Fatalf("detail[%d] = %+v", i, tr)
		}
	}

	for _, tc := range []struct {
		name string
		c    Combiner
		want int64
	}{
		{"min", Min(), 10},
		{"max", Max(), 1000},
		{"count", Count(), 100},
		{"ring-add", RingAdd(semiring.NewMod(97)), 50500 % 97},
	} {
		res, err := p.Run(r, Spec{Read: Root(), Combine: tc.c})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Combined != tc.want {
			t.Fatalf("%s: combined %d, want %d", tc.name, res.Combined, tc.want)
		}
	}

	// Ring product over a small explicit set: 10*20*30 mod 97.
	res, err = p.Run(r, Spec{Select: IDs(1, 2, 3), Read: Root(), Combine: RingMul(semiring.NewMod(97))})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(10 * 20 * 30 % 97); res.Combined != want {
		t.Fatalf("ring-mul: combined %d, want %d", res.Combined, want)
	}
}

func TestPlannerSelectors(t *testing.T) {
	p := NewPlanner(3)
	defer p.Close()
	r := &fakeReader{ids: ids(50)}

	res, err := p.Run(r, Spec{Select: Range(10, 19), Read: Root(), Combine: Count()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined != 10 || res.Trees != 10 {
		t.Fatalf("range: %+v", res)
	}

	// Explicit ids preserve order and surface missing trees per tree.
	res, err = p.Run(r, Spec{Select: IDs(7, 999, 3), Read: Root(), Combine: Sum(), Detail: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees != 2 || res.Errors != 1 || res.Combined != 100 {
		t.Fatalf("ids: %+v", res)
	}
	if res.Detail[0].Tree != 7 || res.Detail[1].Tree != 999 || res.Detail[2].Tree != 3 {
		t.Fatalf("ids order: %+v", res.Detail)
	}
	if !errors.Is(res.Detail[1].Err, ErrNoTree) {
		t.Fatalf("missing tree err: %v", res.Detail[1].Err)
	}

	// Empty selection: identity, no error.
	res, err = p.Run(r, Spec{Select: Range(200, 300), Read: Root(), Combine: Min()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees != 0 || res.Combined != math.MaxInt64 {
		t.Fatalf("empty: %+v", res)
	}
}

func TestPlannerErrorsAndValidation(t *testing.T) {
	p := NewPlanner(2)
	defer p.Close()
	boom := fmt.Errorf("boom")
	r := &fakeReader{ids: ids(10), failOn: map[uint64]error{4: boom, 8: boom}}

	res, err := p.Run(r, Spec{Read: Root(), Combine: Count()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees != 8 || res.Errors != 2 || res.Combined != 8 {
		t.Fatalf("errors: %+v", res)
	}

	for _, bad := range []Spec{
		{Read: Read{Kind: 42}, Combine: Sum()},
		{Read: Value(-1), Combine: Sum()},
		{Read: Root(), Combine: Combiner{Kind: CombineRingAdd}}, // no ring
		{Select: Range(9, 3), Read: Root(), Combine: Sum()},
		{Select: Range(9, 0), Read: Root(), Combine: Sum()}, // lower bound, no upper
	} {
		if _, err := p.Run(r, bad); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("spec %+v: err %v, want ErrBadSpec", bad, err)
		}
	}
}

func TestPlannerClosedRunsInline(t *testing.T) {
	p := NewPlanner(2)
	r := &fakeReader{ids: ids(20)}
	if _, err := p.Run(r, Spec{Read: Root(), Combine: Sum()}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// After Close, queries still complete (scatter runs inline).
	res, err := p.Run(r, Spec{Read: Root(), Combine: Sum()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees != 20 {
		t.Fatalf("closed planner: %+v", res)
	}
	p.Close() // idempotent
}

// TestPlannerUnalignedChunks pins the chunking math: id counts that do
// not divide evenly across the pool (e.g. 9 ids on 8 workers, where ceil
// division would produce empty trailing chunks) must still visit every
// tree exactly once.
func TestPlannerUnalignedChunks(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 8, 16} {
		p := NewPlanner(workers)
		for _, n := range []int{1, 2, 5, 8, 9, 13, 31, 100} {
			r := &fakeReader{ids: ids(n)}
			res, err := p.Run(r, Spec{Read: Root(), Combine: Count(), Detail: true})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			if res.Trees != n || len(res.Detail) != n {
				t.Fatalf("workers=%d n=%d: %+v", workers, n, res)
			}
		}
		p.Close()
	}
}

func TestPlannerManyChunksOneWorker(t *testing.T) {
	p := NewPlanner(1)
	defer p.Close()
	r := &fakeReader{ids: ids(257)}
	res, err := p.Run(r, Spec{Read: Root(), Combine: Count()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees != 257 {
		t.Fatalf("one worker: %+v", res)
	}
	if got := r.starts.Load(); got != 257 {
		t.Fatalf("starts: %d", got)
	}
}

package query

import (
	"runtime"
	"sync"
)

// Planner owns the persistent scatter-gather worker pool. One planner
// serves any number of concurrent queries; workers are spawned lazily on
// first demand and parked between queries, so an idle forest costs no
// goroutines and a hot one reuses the same pool for every query — the
// same persistent-pool discipline internal/pram applies to wave
// execution.
type Planner struct {
	workers int
	tasks   chan func()
	stop    chan struct{}

	mu      sync.Mutex
	spawned int
	closed  bool
	wg      sync.WaitGroup
}

// NewPlanner creates a planner with the given scatter parallelism
// (GOMAXPROCS when <= 0).
func NewPlanner(workers int) *Planner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Planner{
		workers: workers,
		tasks:   make(chan func()),
		stop:    make(chan struct{}),
	}
}

// Workers returns the pool's scatter parallelism.
func (p *Planner) Workers() int { return p.workers }

// Close parks the pool permanently: in-flight chunk tasks finish, later
// queries run their scatter inline on the calling goroutine. Idempotent.
func (p *Planner) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.stop)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// worker runs chunk tasks until the planner closes.
func (p *Planner) worker() {
	defer p.wg.Done()
	for {
		select {
		case fn := <-p.tasks:
			fn()
		case <-p.stop:
			return
		}
	}
}

// dispatch hands fn to a pool worker, spawning one if none is idle and
// the pool is below its size. It reports false when the planner is closed
// — the caller runs fn inline.
func (p *Planner) dispatch(fn func()) bool {
	select {
	case p.tasks <- fn:
		return true
	default:
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	if p.spawned < p.workers {
		p.spawned++
		p.wg.Add(1)
		go p.worker()
	}
	p.mu.Unlock()
	select {
	case p.tasks <- fn:
		return true
	case <-p.stop:
		return false
	}
}

// Run executes one cross-tree query: resolve the selector against the
// reader's served trees, scatter the per-tree reads across the pool in
// contiguous id chunks, and gather the partial folds into one Result.
//
// Within a chunk every read is submitted asynchronously before any is
// waited on, so reads join the target engines' in-flight coalescing
// windows instead of serializing round-trips; across chunks the pool
// overlaps submission and collection. There is no cross-tree barrier of
// any kind — each tree answers at whatever applied-wave sequence its
// engine had reached, and that sequence is reported per tree.
func (p *Planner) Run(r Reader, spec Spec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	// Explicit-ID queries never pay the served-tree scan (a shard walk +
	// sort over the whole forest); only range/all selectors need it.
	ids := spec.Select.IDs
	if len(ids) == 0 {
		ids = spec.Select.resolve(r.Trees())
	}
	res := Result{Combined: spec.Combine.Identity()}
	if len(ids) == 0 {
		return res, nil
	}

	nchunks := p.workers
	if len(ids) < nchunks {
		nchunks = len(ids)
	}
	chunkLen := (len(ids) + nchunks - 1) / nchunks
	// Ceil division can make the last chunks empty (e.g. 9 ids on 8
	// workers → 5 chunks of 2); walk by offset so every chunk is non-empty.
	nchunks = (len(ids) + chunkLen - 1) / chunkLen

	var detail []TreeResult
	if spec.Detail {
		detail = make([]TreeResult, len(ids))
	}
	partials := make([]int64, nchunks)
	counts := make([]int, nchunks)
	errCounts := make([]int, nchunks)

	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		lo := c * chunkLen
		hi := lo + chunkLen
		if hi > len(ids) {
			hi = len(ids)
		}
		c, lo, hi := c, lo, hi
		task := func() {
			defer wg.Done()
			// Scatter: submit the whole chunk before waiting on anything.
			handles := make([]Handle, hi-lo)
			for i := lo; i < hi; i++ {
				handles[i-lo] = r.Start(ids[i], spec.Read)
			}
			// Gather: wait, record, fold.
			acc := spec.Combine.Identity()
			for i := lo; i < hi; i++ {
				tr := TreeResult{Tree: ids[i]}
				if h := handles[i-lo]; h == nil {
					tr.Err = ErrNoTree
				} else {
					tr.Value, tr.Seq, tr.Err = h.Wait()
				}
				if tr.Err != nil {
					errCounts[c]++
				} else {
					acc = spec.Combine.Fold(acc, tr.Value)
					counts[c]++
				}
				if detail != nil {
					detail[i] = tr
				}
			}
			partials[c] = acc
		}
		wg.Add(1)
		if !p.dispatch(task) {
			task()
		}
	}
	wg.Wait()

	// Join the per-chunk partial folds in chunk (= id) order.
	for c := 0; c < nchunks; c++ {
		if counts[c] > 0 {
			res.Combined = spec.Combine.Merge(res.Combined, partials[c])
			res.Trees += counts[c]
		}
		res.Errors += errCounts[c]
	}
	res.Detail = detail
	return res, nil
}

package query

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dyntc/internal/obs"
	"dyntc/internal/sched"
)

// Metrics is the query engine's instrument bundle (Planner.SetMetrics).
type Metrics struct {
	// Queries counts completed Run calls.
	Queries *obs.Counter
	// TreeErrors counts per-tree read errors across all queries.
	TreeErrors *obs.Counter
	// ScatterWidth is the number of chunks each query scattered into.
	ScatterWidth *obs.Histogram
	// JoinSeconds is the whole scatter-gather-join span of one query.
	JoinSeconds *obs.Histogram
}

// NewMetrics registers the query families on reg.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Queries:      r.Counter("dyntc_query_total", "cross-tree queries executed"),
		TreeErrors:   r.Counter("dyntc_query_tree_errors_total", "per-tree read errors across all queries"),
		ScatterWidth: r.HistogramWith("dyntc_query_scatter_width", "chunks one cross-tree query scattered into", obs.CountBuckets, 1),
		JoinSeconds:  r.Seconds("dyntc_query_join_seconds", "scatter-gather-join span of one cross-tree query"),
	}
}

// Planner scatters cross-tree queries over the shared runtime scheduler
// (internal/sched). One planner serves any number of concurrent queries;
// it owns no goroutines of its own — chunk tasks are submitted to the
// pool's blocking lane (a gather waits on engine futures, so it must
// never occupy the pool's last worker), and whatever the pool cannot
// absorb runs inline on the querying goroutine. The width is the scatter
// parallelism hint: how many chunks a query is split into.
type Planner struct {
	pool   *sched.Pool // nil = the process-wide default pool
	width  int
	closed atomic.Bool
	m      atomic.Pointer[Metrics] // optional instruments (SetMetrics)
}

// SetMetrics attaches (or, with nil, detaches) the metrics bundle;
// swappable at runtime so servers can instrument a serving planner.
func (p *Planner) SetMetrics(m *Metrics) { p.m.Store(m) }

// NewPlanner creates a planner with the given scatter parallelism
// (GOMAXPROCS when <= 0) on the process-wide default pool.
func NewPlanner(workers int) *Planner { return NewPlannerOn(nil, workers) }

// NewPlannerOn creates a planner that scatters on the given pool (nil
// selects the process-wide default).
func NewPlannerOn(p *sched.Pool, workers int) *Planner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Planner{pool: p, width: workers}
}

// Workers returns the planner's scatter parallelism hint.
func (p *Planner) Workers() int { return p.width }

// Close retires the planner: later queries run their scatter inline on
// the calling goroutine. The underlying pool is shared and unaffected.
// Idempotent.
func (p *Planner) Close() { p.closed.Store(true) }

// dispatch hands fn to the pool's blocking lane, reporting false when the
// planner is closed or no blocking slot is free — the caller runs fn
// inline.
func (p *Planner) dispatch(fn func()) bool {
	if p.closed.Load() {
		return false
	}
	pool := p.pool
	if pool == nil {
		pool = sched.Default()
	}
	return pool.TrySubmitBlocking(fn)
}

// Run executes one cross-tree query: resolve the selector against the
// reader's served trees, scatter the per-tree reads across the pool in
// contiguous id chunks, and gather the partial folds into one Result.
//
// Within a chunk every read is submitted asynchronously before any is
// waited on, so reads join the target engines' in-flight coalescing
// windows instead of serializing round-trips; across chunks the pool
// overlaps submission and collection. There is no cross-tree barrier of
// any kind — each tree answers at whatever applied-wave sequence its
// engine had reached, and that sequence is reported per tree.
func (p *Planner) Run(r Reader, spec Spec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	// Explicit-ID queries never pay the served-tree scan (a shard walk +
	// sort over the whole forest); only range/all selectors need it.
	ids := spec.Select.IDs
	if len(ids) == 0 {
		ids = spec.Select.resolve(r.Trees())
	}
	res := Result{Combined: spec.Combine.Identity()}
	if len(ids) == 0 {
		return res, nil
	}

	nchunks := p.width
	if len(ids) < nchunks {
		nchunks = len(ids)
	}
	chunkLen := (len(ids) + nchunks - 1) / nchunks
	// Ceil division can make the last chunks empty (e.g. 9 ids on 8
	// workers → 5 chunks of 2); walk by offset so every chunk is non-empty.
	nchunks = (len(ids) + chunkLen - 1) / chunkLen

	if m := p.m.Load(); m != nil {
		t0 := time.Now()
		defer func() {
			m.Queries.Inc()
			m.ScatterWidth.Observe(int64(nchunks))
			m.JoinSeconds.Observe(int64(time.Since(t0)))
			m.TreeErrors.Add(uint64(res.Errors))
		}()
	}

	var detail []TreeResult
	if spec.Detail {
		detail = make([]TreeResult, len(ids))
	}
	partials := make([]int64, nchunks)
	counts := make([]int, nchunks)
	errCounts := make([]int, nchunks)

	var wg sync.WaitGroup
	for c := 0; c < nchunks; c++ {
		lo := c * chunkLen
		hi := lo + chunkLen
		if hi > len(ids) {
			hi = len(ids)
		}
		c, lo, hi := c, lo, hi
		task := func() {
			defer wg.Done()
			// Scatter: submit the whole chunk before waiting on anything.
			handles := make([]Handle, hi-lo)
			for i := lo; i < hi; i++ {
				handles[i-lo] = r.Start(ids[i], spec.Read)
			}
			// Gather: wait, record, fold.
			acc := spec.Combine.Identity()
			for i := lo; i < hi; i++ {
				tr := TreeResult{Tree: ids[i]}
				if h := handles[i-lo]; h == nil {
					tr.Err = ErrNoTree
				} else {
					tr.Value, tr.Seq, tr.Err = h.Wait()
				}
				if tr.Err != nil {
					errCounts[c]++
				} else {
					acc = spec.Combine.Fold(acc, tr.Value)
					counts[c]++
				}
				if detail != nil {
					detail[i] = tr
				}
			}
			partials[c] = acc
		}
		wg.Add(1)
		if !p.dispatch(task) {
			task()
		}
	}
	wg.Wait()

	// Join the per-chunk partial folds in chunk (= id) order.
	for c := 0; c < nchunks; c++ {
		if counts[c] > 0 {
			res.Combined = spec.Combine.Merge(res.Combined, partials[c])
			res.Trees += counts[c]
		}
		res.Errors += errCounts[c]
	}
	res.Detail = detail
	return res, nil
}

package query

import (
	"fmt"

	"dyntc/internal/engine"
	"dyntc/internal/tree"
)

// Reader is the per-tree read surface a planner scatters over. Two
// implementations exist: ForestReader (below) submits asynchronous reads
// into the leader's coalescing engines, and cmd/dyntcd's follower adapts
// its replica set so read offload serves the identical query surface.
type Reader interface {
	// Trees returns a snapshot of the served tree ids, sorted ascending.
	Trees() []uint64
	// Start begins the read on tree id and returns a handle to gather it
	// with. Start must not block on the read executing — submission and
	// collection are separate so a whole chunk of reads can ride one
	// coalescing window. A nil handle means the tree is not served.
	Start(id uint64, r Read) Handle
}

// Handle is one in-flight per-tree read.
type Handle interface {
	// Wait blocks until the read executed and returns its value together
	// with the applied-wave sequence number the read observed.
	Wait() (value int64, seq uint64, err error)
}

// TourHost is the optional host capability subtree-size reads require.
// dyntc.Expr implements it; HasTour reports whether the Eulerian tour is
// maintained (trees built without WithTour answer ErrNoTour instead of
// panicking the executor).
type TourHost interface {
	HasTour() bool
	SubtreeSize(n *tree.Node) int
}

// ForestReader adapts an engine.Forest: root and node-value reads submit
// engine futures (joining in-flight waves), subtree-size reads ride an
// engine barrier against the tour.
type ForestReader struct {
	F *engine.Forest
}

// Trees implements Reader.
func (fr ForestReader) Trees() []uint64 { return fr.F.IDs() }

// Start implements Reader.
func (fr ForestReader) Start(id uint64, r Read) Handle {
	e, ok := fr.F.Get(id)
	if !ok {
		return nil
	}
	switch r.Kind {
	case ReadRoot:
		return futureHandle{f: e.Root()}
	case ReadValue:
		return futureHandle{f: e.Value(engine.RefID(r.Node))}
	case ReadSubtree:
		h := &barrierHandle{}
		h.f = e.Barrier(func(host engine.Host) {
			h.val, h.seq, h.err = subtreeSize(host, e, r.Node)
		})
		return h
	}
	return nil
}

// futureHandle gathers an asynchronous value/root read.
type futureHandle struct{ f *engine.Future }

func (h futureHandle) Wait() (int64, uint64, error) {
	v, seq, err := h.f.ValueSeq()
	h.f.Recycle()
	return v, seq, err
}

// barrierHandle gathers a read executed inside an engine barrier.
type barrierHandle struct {
	f   *engine.Future
	val int64
	seq uint64
	err error
}

func (h *barrierHandle) Wait() (int64, uint64, error) {
	werr := h.f.Wait()
	h.f.Recycle()
	if werr != nil {
		return 0, 0, werr
	}
	return h.val, h.seq, h.err
}

// subtreeSize runs on the executor goroutine against a quiescent host.
func subtreeSize(host engine.Host, e *engine.Engine, nodeID int) (int64, uint64, error) {
	th, ok := host.(TourHost)
	if !ok || !th.HasTour() {
		return 0, 0, ErrNoTour
	}
	t := host.Tree()
	if nodeID < 0 || nodeID >= len(t.Nodes) || t.Nodes[nodeID] == nil {
		return 0, 0, fmt.Errorf("%w (id %d)", engine.ErrDeadNode, nodeID)
	}
	return int64(th.SubtreeSize(t.Nodes[nodeID])), e.AppliedSeq(), nil
}

package spgraph

import (
	"testing"

	"dyntc/internal/prng"
)

func TestShortestPathBasics(t *testing.T) {
	// Single edge of length 10; subdivide into 4+7; add a parallel bypass
	// of 6 across the second segment.
	n := New(ShortestPath, 1, 10)
	if n.Metric() != 10 {
		t.Fatalf("metric %d", n.Metric())
	}
	a, b := n.Subdivide(n.Edges()[0], 4, 7)
	if n.Metric() != 11 {
		t.Fatalf("4+7 = %d", n.Metric())
	}
	_, _ = n.Duplicate(b, 7, 6)
	if n.Metric() != 10 {
		t.Fatalf("4+min(7,6) = %d", n.Metric())
	}
	n.SetWeight(a, 1)
	if n.Metric() != 7 {
		t.Fatalf("1+6 = %d", n.Metric())
	}
}

func TestWidestPathBasics(t *testing.T) {
	// Capacities: series takes the min, parallel the max.
	n := New(WidestPath, 2, 100)
	a, _ := n.Subdivide(n.Edges()[0], 30, 80)
	if n.Metric() != 30 {
		t.Fatalf("min(30,80) = %d", n.Metric())
	}
	n.Duplicate(a, 30, 50)
	if n.Metric() != 50 {
		t.Fatalf("min(max(30,50),80) = %d", n.Metric())
	}
}

func TestConnectivity(t *testing.T) {
	n := New(Connectivity, 3, 1)
	a, b := n.Subdivide(n.Edges()[0], 1, 1)
	if n.Metric() != 1 {
		t.Fatal("series of up edges should connect")
	}
	n.SetWeight(a, 0)
	if n.Metric() != 0 {
		t.Fatal("cut series edge should disconnect")
	}
	// A parallel backup across the broken edge restores connectivity.
	n.Duplicate(a, 0, 1)
	if n.Metric() != 1 {
		t.Fatal("parallel backup should reconnect")
	}
	_ = b
}

func TestRandomSoakAgainstOracle(t *testing.T) {
	for _, kind := range []Kind{ShortestPath, WidestPath, Connectivity} {
		src := prng.New(uint64(kind) + 10)
		weight := func() int64 {
			if kind == Connectivity {
				return int64(src.Intn(2))
			}
			return int64(src.Intn(1000))
		}
		n := New(kind, uint64(kind)+100, weight())
		for step := 0; step < 120; step++ {
			edges := n.Edges()
			e := edges[src.Intn(len(edges))]
			switch src.Intn(4) {
			case 0:
				n.Subdivide(e, weight(), weight())
			case 1:
				n.Duplicate(e, weight(), weight())
			case 2:
				n.SetWeight(e, weight())
			default:
				// Contract a random composition of two edges, if any.
				var cand *Edge
				for _, nd := range n.Tree().Nodes {
					if nd != nil && !nd.IsLeaf() && nd.Left.IsLeaf() && nd.Right.IsLeaf() {
						cand = nd
						break
					}
				}
				if cand != nil && n.EdgeCount() > 2 {
					n.Contract(cand, weight())
				}
			}
			if got, want := n.Metric(), n.MetricOracle(); got != want {
				t.Fatalf("kind %d step %d: metric %d want %d", kind, step, got, want)
			}
		}
	}
}

func TestBatchGrowAndUpdate(t *testing.T) {
	n := New(ShortestPath, 7, 50)
	src := prng.New(8)
	// Grow a batch.
	e := n.Edges()[0]
	pairs := n.GrowBatch([]GrowSpec{{Edge: e, Series: true, W1: 10, W2: 20}})
	if n.Metric() != 30 {
		t.Fatalf("metric %d", n.Metric())
	}
	// Batch on distinct edges.
	n.GrowBatch([]GrowSpec{
		{Edge: pairs[0][0], Series: false, W1: 10, W2: 8},
		{Edge: pairs[0][1], Series: true, W1: 5, W2: 6},
	})
	if got, want := n.Metric(), n.MetricOracle(); got != want {
		t.Fatalf("metric %d want %d", got, want)
	}
	// Batch weight updates.
	edges := n.Edges()
	ws := make([]int64, len(edges))
	for i := range ws {
		ws[i] = int64(src.Intn(100))
	}
	n.SetWeights(edges, ws)
	if got, want := n.Metric(), n.MetricOracle(); got != want {
		t.Fatalf("after batch update: metric %d want %d", got, want)
	}
	if n.Stats().WoundRecords == 0 {
		t.Fatal("no healing recorded")
	}
}

func TestSubMetric(t *testing.T) {
	n := New(ShortestPath, 9, 10)
	a, _ := n.Subdivide(n.Edges()[0], 3, 4)
	sub, _ := n.Duplicate(a, 3, 9)
	// The left composition node (parallel 3 | 9) has metric 3.
	if got := n.SubMetric(sub.Parent); got != 3 {
		t.Fatalf("submetric %d", got)
	}
	if got := n.SubMetric(n.Tree().Root); got != n.Metric() {
		t.Fatal("root submetric mismatch")
	}
}

func TestLargeNetworkScaling(t *testing.T) {
	// Grow to ~2000 edges, then check single-update wound sizes stay small.
	n := New(ShortestPath, 11, 100)
	src := prng.New(12)
	for n.EdgeCount() < 2000 {
		edges := n.Edges()
		e := edges[src.Intn(len(edges))]
		if src.Intn(2) == 0 {
			n.Subdivide(e, int64(src.Intn(50)), int64(src.Intn(50)))
		} else {
			n.Duplicate(e, int64(src.Intn(50)), int64(src.Intn(50)))
		}
	}
	totalWound := 0
	const updates = 100
	for i := 0; i < updates; i++ {
		edges := n.Edges()
		n.SetWeight(edges[src.Intn(len(edges))], int64(src.Intn(50)))
		totalWound += n.Stats().WoundRecords
	}
	if got, want := n.Metric(), n.MetricOracle(); got != want {
		t.Fatalf("metric %d want %d", got, want)
	}
	if mean := float64(totalWound) / updates; mean > 60 {
		t.Fatalf("mean wound %.1f too large for n=2000", mean)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Kind(99), 1, 0)
}

// Package spgraph maintains dynamic two-terminal series-parallel networks —
// the first application family the paper announces for its technique (§6:
// "In a subsequent paper, we apply our dynamic parallel tree contraction
// technique to various incremental problems on graphs with constant
// separator size, for example: parallel series graphs ...").
//
// A two-terminal series-parallel graph is described by its SP decomposition
// tree: leaves are edges with weights, internal nodes compose their
// children's networks in series (terminals chained) or parallel (terminals
// merged). Two-terminal path metrics are then expression evaluations over a
// semiring:
//
//	shortest s-t path: series = weight sum  (min-plus ⊗), parallel = min (⊕)
//	widest   s-t path: series = min of caps (max-min ⊗), parallel = max (⊕)
//	s-t connectivity:  series = AND,                     parallel = OR
//
// so the dynamic parallel tree contraction engine (package core) maintains
// them under batch edge-weight updates, edge subdivisions (series growth)
// and edge duplications (parallel growth), with the bounds of Theorem 4.1.
package spgraph

import (
	"fmt"

	"dyntc/internal/core"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// Kind selects the maintained metric.
type Kind int

// Metrics over SP networks.
const (
	// ShortestPath maintains the two-terminal shortest path length
	// (min-plus semiring).
	ShortestPath Kind = iota
	// WidestPath maintains the two-terminal bottleneck capacity
	// (max-min semiring).
	WidestPath
	// Connectivity maintains two-terminal connectivity over {0,1} edge
	// states (boolean semiring).
	Connectivity
)

// Network is a dynamic two-terminal series-parallel network.
type Network struct {
	kind Kind
	ring semiring.Ring
	t    *tree.Tree
	con  *core.Contraction

	seriesOp   semiring.Op
	parallelOp semiring.Op
}

// Edge is a handle to one network edge (a leaf of the SP tree).
type Edge = tree.Node

// New creates a network consisting of a single edge between the two
// terminals with the given weight.
func New(kind Kind, seed uint64, weight int64) *Network {
	n := &Network{kind: kind}
	switch kind {
	case ShortestPath:
		n.ring = semiring.MinPlus{}
	case WidestPath:
		n.ring = semiring.MaxMin{}
	case Connectivity:
		n.ring = semiring.Bool{}
	default:
		panic(fmt.Sprintf("spgraph: unknown kind %d", kind))
	}
	// Parallel composition is the semiring Add; series composition the
	// semiring Mul (see the package comment's table).
	n.parallelOp = semiring.OpAdd(n.ring)
	n.seriesOp = semiring.OpMul(n.ring)
	n.t = tree.New(n.ring, weight)
	n.con = core.New(n.t, seed, nil)
	return n
}

// Metric returns the maintained two-terminal metric of the whole network
// (exactly maintained; O(1)).
func (n *Network) Metric() int64 { return n.con.RootValue() }

// SubMetric returns the metric of the sub-network described by the given
// SP-tree node.
func (n *Network) SubMetric(at *tree.Node) int64 { return n.con.Value(at) }

// Edges returns all edge handles.
func (n *Network) Edges() []*Edge { return n.t.Leaves() }

// EdgeCount returns the number of edges.
func (n *Network) EdgeCount() int { return n.t.LeafCount() }

// Tree exposes the SP decomposition tree (read-only).
func (n *Network) Tree() *tree.Tree { return n.t }

// SetWeight updates one edge weight and heals (O(log n) expected).
func (n *Network) SetWeight(e *Edge, w int64) {
	n.con.SetValue(e, w)
}

// SetWeights applies a batch of edge weight updates in one parallel heal.
func (n *Network) SetWeights(es []*Edge, ws []int64) {
	n.con.SetValues(es, ws)
}

// Subdivide replaces edge e by two edges in series with the given weights,
// returning the new edges. (Graph view: a new vertex splits the edge.)
func (n *Network) Subdivide(e *Edge, w1, w2 int64) (*Edge, *Edge) {
	pairs := n.con.AddLeaves([]core.AddOp{{Leaf: e, Op: n.seriesOp, LeftVal: w1, RightVal: w2}})
	return pairs[0][0], pairs[0][1]
}

// Duplicate replaces edge e by two parallel edges with the given weights,
// returning the new edges. (Graph view: a parallel link is added.)
func (n *Network) Duplicate(e *Edge, w1, w2 int64) (*Edge, *Edge) {
	pairs := n.con.AddLeaves([]core.AddOp{{Leaf: e, Op: n.parallelOp, LeftVal: w1, RightVal: w2}})
	return pairs[0][0], pairs[0][1]
}

// GrowBatch applies a batch of subdivisions (series=true) and duplications
// (series=false) as one parallel batch.
type GrowSpec struct {
	Edge   *Edge
	Series bool
	W1, W2 int64
}

// GrowBatch applies the specs in one batch and returns the new edge pairs.
func (n *Network) GrowBatch(specs []GrowSpec) [][2]*Edge {
	ops := make([]core.AddOp, len(specs))
	for i, s := range specs {
		op := n.parallelOp
		if s.Series {
			op = n.seriesOp
		}
		ops[i] = core.AddOp{Leaf: s.Edge, Op: op, LeftVal: s.W1, RightVal: s.W2}
	}
	return n.con.AddLeaves(ops)
}

// Contract collapses the composition node whose children are both edges
// back into a single edge of the given weight (the inverse of Subdivide /
// Duplicate).
func (n *Network) Contract(node *tree.Node, weight int64) {
	n.con.RemoveLeaves([]core.RemoveOp{{Node: node, NewValue: weight}})
}

// Stats returns the healing cost of the latest operation.
func (n *Network) Stats() core.HealStats { return n.con.LastHeal() }

// MetricOracle recomputes the metric from scratch (tests).
func (n *Network) MetricOracle() int64 { return n.t.Eval() }

// Package pram is a metered simulator for the paper's machine model: a
// synchronous CRCW PRAM with a forking operation (Reif & Tate, SPAA'94,
// §1.3).
//
// Real CRCW PRAMs do not exist, so the library substitutes a
// round-synchronous simulator. Algorithms are expressed as sequences of
// parallel steps. A step executes a body for every active processor index
// and charges the three quantities the paper's theorems are stated in:
//
//   - Steps    — parallel time (one per Step call; the span in rounds),
//   - Work     — total processor-steps (sum of active processors per step),
//   - MaxProcs — the largest number of processors active in any one step.
//
// Steps may optionally be executed on a pool of goroutines (one chunk per
// worker); on a single-core host the execution is sequential but the
// metered quantities are identical, which is what the experiments report.
//
// Concurrent-write (CRCW) semantics inside a step are expressed with the
// atomic helpers in this package (arbitrary-winner test-and-set, priority
// max-combine) so that goroutine execution stays race-free.
package pram

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Metrics accumulates the PRAM cost of a computation.
type Metrics struct {
	Steps    int64 // parallel time in rounds
	Work     int64 // total processor-steps
	MaxProcs int64 // maximum processors active in a single round
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Steps += other.Steps
	m.Work += other.Work
	if other.MaxProcs > m.MaxProcs {
		m.MaxProcs = other.MaxProcs
	}
}

// Machine executes metered parallel steps. The zero value is a sequential
// machine; use New to pick the number of workers. Machine is not safe for
// concurrent use by multiple goroutines (each logical computation should
// own one Machine).
type Machine struct {
	workers int
	metrics Metrics
	// grain is the minimum number of iterations per goroutine chunk; below
	// workers*grain a step runs sequentially to avoid dispatch overhead.
	grain int
}

// New returns a Machine with the given goroutine parallelism. workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Machine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Machine{workers: workers, grain: 1024}
}

// Sequential returns a single-worker machine. Metering is identical to a
// parallel machine; only wall-clock execution differs.
func Sequential() *Machine { return &Machine{workers: 1, grain: 1 << 30} }

// Metrics returns the accumulated cost so far.
func (m *Machine) Metrics() Metrics { return m.metrics }

// Reset clears the accumulated metrics.
func (m *Machine) Reset() { m.metrics = Metrics{} }

// Charge adds a round of n processors to the meters without executing
// anything. It is used by algorithms whose per-processor body has already
// been executed inline (for example tiny fixed-size steps).
func (m *Machine) Charge(n int) {
	if n <= 0 {
		return
	}
	m.metrics.Steps++
	m.metrics.Work += int64(n)
	if int64(n) > m.metrics.MaxProcs {
		m.metrics.MaxProcs = int64(n)
	}
}

// ChargeSpan adds s rounds of span with the given total work, modelling a
// phase whose internal structure was executed inline (e.g. a sequential
// walk of length s by one processor per element of a frontier).
func (m *Machine) ChargeSpan(steps, work, procs int64) {
	m.metrics.Steps += steps
	m.metrics.Work += work
	if procs > m.metrics.MaxProcs {
		m.metrics.MaxProcs = procs
	}
}

// Step executes body(i) for every i in [0, n) as one synchronous parallel
// round and charges n processors. Bodies must not assume any ordering
// between indices and must use the CRCW helpers for writes that can race.
func (m *Machine) Step(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	m.Charge(n)
	if m.workers <= 1 || n < m.workers*2 || n < m.grain {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	chunk := (n + m.workers - 1) / m.workers
	var wg sync.WaitGroup
	for w := 0; w < m.workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// TestAndSet implements an arbitrary-winner CRCW write to a flag: it sets
// *flag to 1 and reports whether this call was the one that changed it.
func TestAndSet(flag *int32) bool {
	return atomic.CompareAndSwapInt32(flag, 0, 1)
}

// Clear resets a flag written by TestAndSet.
func Clear(flag *int32) { atomic.StoreInt32(flag, 0) }

// IsSet reports whether the flag is set.
func IsSet(flag *int32) bool { return atomic.LoadInt32(flag) != 0 }

// WriteMax implements a priority-CRCW combining write: *addr becomes
// max(*addr, v).
func WriteMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// WriteMin implements a combining write: *addr becomes min(*addr, v).
func WriteMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// AddInt64 is a combining-sum CRCW write.
func AddInt64(addr *int64, v int64) { atomic.AddInt64(addr, v) }

// Package pram is a metered simulator for the paper's machine model: a
// synchronous CRCW PRAM with a forking operation (Reif & Tate, SPAA'94,
// §1.3).
//
// Real CRCW PRAMs do not exist, so the library substitutes a
// round-synchronous simulator. Algorithms are expressed as sequences of
// parallel steps. A step executes a body for every active processor index
// and charges the three quantities the paper's theorems are stated in:
//
//   - Steps    — parallel time (one per Step call; the span in rounds),
//   - Work     — total processor-steps (sum of active processors per step),
//   - MaxProcs — the largest number of processors active in any one step.
//
// Steps large enough to go parallel execute on the shared work-stealing
// scheduler (internal/sched): a Machine is a thin façade that submits
// grain-sized chunks of each round to one process-wide pool, so a forest
// of machines shares a fixed worker set instead of spawning a pool per
// tree. Workers() and the grain are per-machine *hints* — they cap how
// many pool workers one machine's round may recruit and where it switches
// to inline execution — not dedicated goroutines. The calling goroutine
// always participates in its own round, so a round makes progress even on
// a saturated pool and nested rounds cannot deadlock.
//
// The grain adapts: unless pinned with SetGrain, the machine keeps an
// EWMA of measured per-element step cost — separately per step kind (see
// SetKind; engines label waves grow/collapse/set/value) — and sizes the
// sequential threshold and chunk so a chunk costs on the order of tens of
// microseconds, amortizing dispatch for cheap bodies and exposing
// parallelism for expensive ones.
//
// Metering is purely a function of the Step/Charge sequence: a Machine
// with any worker hint, grain or pool charges exactly the same Steps,
// Work and MaxProcs as Sequential() for the same computation. Only
// wall-clock differs — which is what the experiments report.
//
// Concurrent-write (CRCW) semantics inside a step are expressed with the
// atomic helpers in this package (arbitrary-winner test-and-set, priority
// max-combine) so that pool execution stays race-free.
package pram

import (
	"runtime"
	"sync/atomic"
	"time"

	"dyntc/internal/sched"
)

// Metrics accumulates the PRAM cost of a computation.
type Metrics struct {
	Steps    int64 // parallel time in rounds
	Work     int64 // total processor-steps
	MaxProcs int64 // maximum processors active in a single round
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Steps += other.Steps
	m.Work += other.Work
	if other.MaxProcs > m.MaxProcs {
		m.MaxProcs = other.MaxProcs
	}
}

// StepKind labels a parallel step with the batch kind that issued it, so
// the adaptive grain is tuned per (machine, kind): a grow wave's
// resimulation bodies and a value wave's replay bodies cost very
// different nanoseconds per element, and one shared threshold would
// mis-size both.
type StepKind uint8

// Step kinds. Engines set these around each wave sub-batch; direct
// library use stays on KindDefault.
const (
	KindDefault StepKind = iota
	KindGrow
	KindCollapse
	KindSet
	KindValue
	NumStepKinds = 5
)

// StepKindNames names each StepKind, indexed by kind — the label values
// for per-kind scheduler metrics (sched.Pool.Observe).
var StepKindNames = []string{"default", "grow", "collapse", "set", "value"}

// Machine executes metered parallel steps. The zero value is a sequential
// machine; use New to pick the parallelism hint. Machine is not safe for
// concurrent use by multiple goroutines (each logical computation should
// own one Machine), but any number of Machines share one scheduler pool.
type Machine struct {
	workers int
	metrics Metrics
	// grain is the sequential threshold: steps smaller than grain run
	// inline on the calling goroutine to avoid dispatch overhead. It also
	// sets the minimum chunk size (grain/2) for chunk claiming. When
	// pinned (SetGrain / Sequential) it is static; otherwise the tuner
	// adapts it per step kind from measured cost.
	grain  int
	pinned bool
	// pool is the scheduler the machine submits chunks to; nil selects
	// the process-wide sched.Default() at the first parallel step.
	pool *sched.Pool
	kind StepKind
	tune grainTuner
}

// defaultGrain is the starting parallel threshold: below this many
// processors a round is assumed cheaper to run inline than to dispatch,
// until measured cost says otherwise.
const defaultGrain = 1024

// Adaptive-grain tuning constants: a chunk should cost aboutTargetNs so
// dispatch (a few hundred nanoseconds per chunk) stays amortized without
// starving the pool of parallelism.
const (
	tuneTargetNs = 50_000 // aim: one grain of work ≈ 50µs sequential
	tuneMinGrain = 64
	tuneMaxGrain = 1 << 20
	tuneMinStep  = 64 // don't pay two clock reads on trivial rounds
)

// grainTuner keeps a per-kind EWMA of measured per-element cost and the
// grain derived from it. The EWMA is only touched by the machine's
// execution context; the derived grains are atomics so stats snapshots
// may read them from any goroutine.
type grainTuner struct {
	ewma  [NumStepKinds]float64 // ns per element; 0 = no sample yet
	grain [NumStepKinds]atomic.Int32
}

// observe folds one measured step into the kind's EWMA and re-derives
// its grain. Wall-clock per element is used as the cost estimate for
// both inline steps (exact) and pool steps — for a well-parallelized
// round it UNDERestimates the sequential per-element cost by up to the
// participant count, which makes the derived grain larger, i.e. biases
// toward inline execution: the safe direction (a busy pool, where the
// caller did most of the round itself, measures close to the true cost
// and is not pushed toward even more dispatch).
func (g *grainTuner) observe(kind StepKind, n int, elapsed time.Duration) {
	perElem := float64(elapsed) / float64(n)
	if perElem <= 0 {
		// A coarse clock can measure a cheap step as zero; folding that in
		// would zero the EWMA and overflow the grain division below.
		return
	}
	if cur := g.ewma[kind]; cur == 0 {
		g.ewma[kind] = perElem
	} else {
		g.ewma[kind] = 0.8*cur + 0.2*perElem
	}
	grain := int32(tuneTargetNs / g.ewma[kind])
	if grain < tuneMinGrain {
		grain = tuneMinGrain
	}
	if grain > tuneMaxGrain {
		grain = tuneMaxGrain
	}
	g.grain[kind].Store(grain)
}

// New returns a Machine with the given parallelism hint. workers <= 0
// selects GOMAXPROCS. Rounds execute on the shared scheduler pool
// (sched.Default() unless SetPool chooses another); the hint caps how
// many of its workers one round recruits.
func New(workers int) *Machine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Machine{workers: workers, grain: defaultGrain}
}

// NewOnPool returns a Machine that submits its rounds to the given pool
// (useful for dedicated pools in tests and benchmarks; nil means the
// shared default).
func NewOnPool(p *sched.Pool, workers int) *Machine {
	m := New(workers)
	m.pool = p
	return m
}

// Sequential returns a single-worker machine. Metering is identical to a
// parallel machine; only wall-clock execution differs.
func Sequential() *Machine { return &Machine{workers: 1, grain: 1 << 30, pinned: true} }

// Workers returns the machine's parallelism hint.
func (m *Machine) Workers() int {
	if m.workers <= 0 {
		return 1
	}
	return m.workers
}

// SetWorkers reconfigures the parallelism hint (w <= 0 selects
// GOMAXPROCS). Metering is unaffected. Not safe concurrently with Step.
func (m *Machine) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w == m.workers {
		return
	}
	m.workers = w
	if m.grain >= 1<<30 && w > 1 {
		// A Sequential() machine being upgraded: give it the real
		// threshold so parallelism can actually engage, and let it adapt.
		m.grain = defaultGrain
		m.pinned = false
	}
}

// SetPool directs the machine's rounds to p (nil restores the shared
// default pool). Not safe concurrently with Step.
func (m *Machine) SetPool(p *sched.Pool) { m.pool = p }

// SetGrain pins the sequential threshold: steps with fewer than g
// processors run inline on the calling goroutine, and adaptive tuning is
// disabled. Lower values exercise the pool on smaller rounds (more
// dispatch overhead, more parallelism). Metering is unaffected. Not safe
// concurrently with Step.
func (m *Machine) SetGrain(g int) {
	if g < 1 {
		g = 1
	}
	m.grain = g
	m.pinned = true
}

// SetKind labels subsequent steps with the issuing batch kind, selecting
// which adaptive-grain estimate they use and train. Engines bracket each
// wave sub-batch with this; plain library use may ignore it.
func (m *Machine) SetKind(k StepKind) {
	if k < NumStepKinds {
		m.kind = k
	}
}

// Grains reports the current sequential threshold per step kind: the
// pinned grain everywhere when SetGrain was used, otherwise each kind's
// adapted value (the starting default until that kind has a sample).
// Safe to call from any goroutine.
func (m *Machine) Grains() [NumStepKinds]int {
	var out [NumStepKinds]int
	for k := range out {
		out[k] = m.grainFor(StepKind(k))
	}
	return out
}

// grainFor returns the active sequential threshold for kind.
func (m *Machine) grainFor(kind StepKind) int {
	if m.pinned {
		return m.grain
	}
	if g := m.tune.grain[kind].Load(); g > 0 {
		return int(g)
	}
	return m.grain
}

// Release is a no-op kept for API compatibility: machines own no
// goroutines — workers belong to the shared scheduler pool.
func (m *Machine) Release() {}

// Metrics returns the accumulated cost so far.
func (m *Machine) Metrics() Metrics { return m.metrics }

// Reset clears the accumulated metrics. The adaptive-grain estimates are
// kept: a Machine is reusable across computations.
func (m *Machine) Reset() { m.metrics = Metrics{} }

// Charge adds a round of n processors to the meters without executing
// anything. It is used by algorithms whose per-processor body has already
// been executed inline (for example tiny fixed-size steps).
func (m *Machine) Charge(n int) {
	if n <= 0 {
		return
	}
	m.metrics.Steps++
	m.metrics.Work += int64(n)
	if int64(n) > m.metrics.MaxProcs {
		m.metrics.MaxProcs = int64(n)
	}
}

// ChargeSpan adds s rounds of span with the given total work, modelling a
// phase whose internal structure was executed inline (e.g. a sequential
// walk of length s by one processor per element of a frontier).
func (m *Machine) ChargeSpan(steps, work, procs int64) {
	m.metrics.Steps += steps
	m.metrics.Work += work
	if procs > m.metrics.MaxProcs {
		m.metrics.MaxProcs = procs
	}
}

// Step executes body(i) for every i in [0, n) as one synchronous parallel
// round and charges n processors. Bodies must not assume any ordering
// between indices and must use the CRCW helpers for writes that can race.
// A panic in any body aborts the round (remaining chunks are skipped) and
// re-panics on the calling goroutine; the Machine and the shared pool
// stay usable.
func (m *Machine) Step(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	m.Charge(n)
	kind := m.kind
	grain := m.grainFor(kind)
	if m.workers <= 1 || n < grain || n < m.workers*2 {
		if m.pinned || n < tuneMinStep {
			for i := 0; i < n; i++ {
				body(i)
			}
			return
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			body(i)
		}
		m.tune.observe(kind, n, time.Since(start))
		return
	}
	if m.pool == nil {
		m.pool = sched.Default()
	}
	// Chunk for ~4 chunks per recruited worker so uneven bodies
	// load-balance, but never below grain/2 so dispatch stays amortized.
	chunk := n / (m.workers * 4)
	if min := grain / 2; chunk < min {
		chunk = min
	}
	if chunk < 1 {
		chunk = 1
	}
	if m.pinned {
		m.pool.ParallelForKind(uint8(kind), n, chunk, m.workers, body)
		return
	}
	start := time.Now()
	m.pool.ParallelForKind(uint8(kind), n, chunk, m.workers, body)
	m.tune.observe(kind, n, time.Since(start))
}

// TestAndSet implements an arbitrary-winner CRCW write to a flag: it sets
// *flag to 1 and reports whether this call was the one that changed it.
func TestAndSet(flag *int32) bool {
	return atomic.CompareAndSwapInt32(flag, 0, 1)
}

// Clear resets a flag written by TestAndSet.
func Clear(flag *int32) { atomic.StoreInt32(flag, 0) }

// IsSet reports whether the flag is set.
func IsSet(flag *int32) bool { return atomic.LoadInt32(flag) != 0 }

// WriteMax implements a priority-CRCW combining write: *addr becomes
// max(*addr, v).
func WriteMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// WriteMin implements a combining write: *addr becomes min(*addr, v).
func WriteMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// AddInt64 is a combining-sum CRCW write.
func AddInt64(addr *int64, v int64) { atomic.AddInt64(addr, v) }

// Package pram is a metered simulator for the paper's machine model: a
// synchronous CRCW PRAM with a forking operation (Reif & Tate, SPAA'94,
// §1.3).
//
// Real CRCW PRAMs do not exist, so the library substitutes a
// round-synchronous simulator. Algorithms are expressed as sequences of
// parallel steps. A step executes a body for every active processor index
// and charges the three quantities the paper's theorems are stated in:
//
//   - Steps    — parallel time (one per Step call; the span in rounds),
//   - Work     — total processor-steps (sum of active processors per step),
//   - MaxProcs — the largest number of processors active in any one step.
//
// Steps may optionally execute on a pool of goroutines. The pool is
// persistent: workers are created once (lazily, on the first step large
// enough to go parallel) and parked between steps, so a step dispatch is a
// handful of channel operations and atomic adds — no goroutine spawn, no
// WaitGroup, no allocation. Work is distributed by atomic chunk claiming
// with an adaptive grain, so uneven bodies load-balance across workers.
// On a single-core host execution degrades to sequential but the metered
// quantities are identical, which is what the experiments report.
//
// Concurrent-write (CRCW) semantics inside a step are expressed with the
// atomic helpers in this package (arbitrary-winner test-and-set, priority
// max-combine) so that goroutine execution stays race-free.
package pram

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Metrics accumulates the PRAM cost of a computation.
type Metrics struct {
	Steps    int64 // parallel time in rounds
	Work     int64 // total processor-steps
	MaxProcs int64 // maximum processors active in a single round
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Steps += other.Steps
	m.Work += other.Work
	if other.MaxProcs > m.MaxProcs {
		m.MaxProcs = other.MaxProcs
	}
}

// Machine executes metered parallel steps. The zero value is a sequential
// machine; use New to pick the number of workers. Machine is not safe for
// concurrent use by multiple goroutines (each logical computation should
// own one Machine).
//
// Metering is purely a function of the Step/Charge sequence: a Machine
// with any worker count charges exactly the same Steps, Work and MaxProcs
// as Sequential() for the same computation. Only wall-clock differs.
type Machine struct {
	workers int
	metrics Metrics
	// grain is the sequential threshold: steps smaller than grain run
	// inline on the calling goroutine to avoid dispatch overhead. It also
	// sets the minimum chunk size (grain/2) for adaptive chunking.
	grain int
	// pool holds the persistent workers; nil until the first parallel
	// step (machines that never cross the grain threshold never spawn).
	pool *pool
}

// defaultGrain is the parallel threshold for New: below this many
// processors a round is cheaper to run inline than to dispatch.
const defaultGrain = 1024

// New returns a Machine with the given goroutine parallelism. workers <= 0
// selects GOMAXPROCS. Workers are started lazily and parked between steps;
// they are reclaimed when the Machine is garbage collected or explicitly
// via Release.
func New(workers int) *Machine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Machine{workers: workers, grain: defaultGrain}
}

// Sequential returns a single-worker machine. Metering is identical to a
// parallel machine; only wall-clock execution differs.
func Sequential() *Machine { return &Machine{workers: 1, grain: 1 << 30} }

// Workers returns the configured goroutine parallelism.
func (m *Machine) Workers() int {
	if m.workers <= 0 {
		return 1
	}
	return m.workers
}

// SetWorkers reconfigures the goroutine parallelism (w <= 0 selects
// GOMAXPROCS). An existing pool is released; the next parallel step starts
// a fresh one. Metering is unaffected. Not safe concurrently with Step.
func (m *Machine) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w == m.workers {
		return
	}
	m.release()
	m.workers = w
	if m.grain >= 1<<30 && w > 1 {
		// A Sequential() machine being upgraded: give it the real
		// threshold so parallelism can actually engage.
		m.grain = defaultGrain
	}
}

// SetGrain sets the sequential threshold: steps with fewer than g
// processors run inline on the calling goroutine. Lower values exercise
// the pool on smaller rounds (more dispatch overhead, more parallelism);
// the default of 1024 suits bodies that are a few dozen nanoseconds each.
// Metering is unaffected. Not safe concurrently with Step.
func (m *Machine) SetGrain(g int) {
	if g < 1 {
		g = 1
	}
	m.grain = g
}

// Release parks the Machine's worker pool permanently, reclaiming its
// goroutines. The Machine remains usable: a later parallel step starts a
// fresh pool. Unreleased machines are reclaimed by the garbage collector.
func (m *Machine) Release() { m.release() }

func (m *Machine) release() {
	if m.pool != nil {
		m.pool.shutdown()
		m.pool = nil
	}
}

// Metrics returns the accumulated cost so far.
func (m *Machine) Metrics() Metrics { return m.metrics }

// Reset clears the accumulated metrics. The worker pool (if any) is kept:
// a Machine is reusable across computations.
func (m *Machine) Reset() { m.metrics = Metrics{} }

// Charge adds a round of n processors to the meters without executing
// anything. It is used by algorithms whose per-processor body has already
// been executed inline (for example tiny fixed-size steps).
func (m *Machine) Charge(n int) {
	if n <= 0 {
		return
	}
	m.metrics.Steps++
	m.metrics.Work += int64(n)
	if int64(n) > m.metrics.MaxProcs {
		m.metrics.MaxProcs = int64(n)
	}
}

// ChargeSpan adds s rounds of span with the given total work, modelling a
// phase whose internal structure was executed inline (e.g. a sequential
// walk of length s by one processor per element of a frontier).
func (m *Machine) ChargeSpan(steps, work, procs int64) {
	m.metrics.Steps += steps
	m.metrics.Work += work
	if procs > m.metrics.MaxProcs {
		m.metrics.MaxProcs = procs
	}
}

// Step executes body(i) for every i in [0, n) as one synchronous parallel
// round and charges n processors. Bodies must not assume any ordering
// between indices and must use the CRCW helpers for writes that can race.
// A panic in any body aborts the round (remaining chunks are skipped) and
// re-panics on the calling goroutine; the Machine and its pool stay
// usable.
func (m *Machine) Step(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	m.Charge(n)
	if m.workers <= 1 || n < m.grain || n < m.workers*2 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if m.pool == nil {
		m.pool = newPool(m.workers - 1)
		// Reclaim the workers when the Machine is dropped without an
		// explicit Release. The cleanup closes over the pool only, so it
		// does not keep the Machine alive.
		runtime.AddCleanup(m, func(p *pool) { p.shutdown() }, m.pool)
	}
	// Adaptive grain: aim for ~4 chunks per participant so uneven bodies
	// load-balance, but never below grain/2 so dispatch stays amortized.
	chunk := n / (m.workers * 4)
	if min := m.grain / 2; chunk < min {
		chunk = min
	}
	if chunk < 1 {
		chunk = 1
	}
	m.pool.run(n, chunk, body)
}

// pool is a persistent team of parked worker goroutines plus a reusable
// barrier. The dispatching goroutine participates in every round, so a
// pool of size k serves a machine of k+1 workers.
type pool struct {
	size int // parked worker goroutines

	wake chan struct{} // one token per worker per round
	done chan struct{} // last finisher -> dispatcher, capacity 1
	stop chan struct{} // closed exactly once by shutdown

	stopOnce sync.Once

	// Round state: written by the dispatcher before the wake tokens are
	// sent (the channel provides the happens-before edge), reset after
	// the barrier.
	n     int
	chunk int
	body  func(int)

	next      atomic.Int64 // next unclaimed index
	remaining atomic.Int32 // participants still running this round
	aborted   atomic.Bool  // a body panicked: stop claiming chunks

	panicMu  sync.Mutex
	panicVal any
	panicked bool
}

func newPool(size int) *pool {
	p := &pool{
		size: size,
		wake: make(chan struct{}, size),
		done: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) shutdown() { p.stopOnce.Do(func() { close(p.stop) }) }

func (p *pool) worker() {
	for {
		select {
		case <-p.stop:
			return
		case <-p.wake:
			p.work()
			if p.remaining.Add(-1) == 0 {
				p.done <- struct{}{}
			}
		}
	}
}

// run executes one parallel round on the pool; the caller participates.
func (p *pool) run(n, chunk int, body func(int)) {
	p.n, p.chunk, p.body = n, chunk, body
	p.next.Store(0)
	p.aborted.Store(false)
	p.remaining.Store(int32(p.size) + 1)
	for i := 0; i < p.size; i++ {
		p.wake <- struct{}{}
	}
	p.work()
	if p.remaining.Add(-1) > 0 {
		<-p.done
	}
	p.body = nil // release the closure between rounds
	if p.panicked {
		v := p.panicVal
		p.panicked, p.panicVal = false, nil
		panic(v)
	}
}

// work claims and executes chunks until the round's index space is
// exhausted (or a body panics). It never lets a panic escape: the first
// panic value is recorded for the dispatcher and the round is aborted.
func (p *pool) work() {
	defer func() {
		if r := recover(); r != nil {
			p.aborted.Store(true)
			p.panicMu.Lock()
			if !p.panicked {
				p.panicked, p.panicVal = true, r
			}
			p.panicMu.Unlock()
		}
	}()
	chunk := int64(p.chunk)
	for !p.aborted.Load() {
		lo := p.next.Add(chunk) - chunk
		if lo >= int64(p.n) {
			return
		}
		hi := lo + chunk
		if hi > int64(p.n) {
			hi = int64(p.n)
		}
		body := p.body
		for i := int(lo); i < int(hi); i++ {
			body(i)
		}
	}
}

// TestAndSet implements an arbitrary-winner CRCW write to a flag: it sets
// *flag to 1 and reports whether this call was the one that changed it.
func TestAndSet(flag *int32) bool {
	return atomic.CompareAndSwapInt32(flag, 0, 1)
}

// Clear resets a flag written by TestAndSet.
func Clear(flag *int32) { atomic.StoreInt32(flag, 0) }

// IsSet reports whether the flag is set.
func IsSet(flag *int32) bool { return atomic.LoadInt32(flag) != 0 }

// WriteMax implements a priority-CRCW combining write: *addr becomes
// max(*addr, v).
func WriteMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// WriteMin implements a combining write: *addr becomes min(*addr, v).
func WriteMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// AddInt64 is a combining-sum CRCW write.
func AddInt64(addr *int64, v int64) { atomic.AddInt64(addr, v) }

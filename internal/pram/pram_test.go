package pram

import (
	"sync/atomic"
	"testing"
)

func TestStepMetersWorkAndSpan(t *testing.T) {
	m := New(4)
	m.Step(100, func(i int) {})
	m.Step(50, func(i int) {})
	got := m.Metrics()
	if got.Steps != 2 {
		t.Fatalf("Steps = %d, want 2", got.Steps)
	}
	if got.Work != 150 {
		t.Fatalf("Work = %d, want 150", got.Work)
	}
	if got.MaxProcs != 100 {
		t.Fatalf("MaxProcs = %d, want 100", got.MaxProcs)
	}
}

func TestStepExecutesEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		m := New(workers)
		const n = 10000
		counts := make([]int32, n)
		m.Step(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestStepZeroAndNegative(t *testing.T) {
	m := New(2)
	ran := false
	m.Step(0, func(i int) { ran = true })
	m.Step(-5, func(i int) { ran = true })
	if ran {
		t.Fatal("body ran for non-positive n")
	}
	if m.Metrics().Steps != 0 {
		t.Fatal("non-positive steps were charged")
	}
}

func TestSequentialMachineOrdering(t *testing.T) {
	m := Sequential()
	var order []int
	m.Step(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential machine out of order: %v", order)
		}
	}
}

func TestChargeAndChargeSpan(t *testing.T) {
	m := Sequential()
	m.Charge(10)
	m.ChargeSpan(3, 30, 12)
	got := m.Metrics()
	if got.Steps != 4 || got.Work != 40 || got.MaxProcs != 12 {
		t.Fatalf("metrics = %+v", got)
	}
	m.Reset()
	if m.Metrics() != (Metrics{}) {
		t.Fatal("Reset did not clear metrics")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Steps: 1, Work: 2, MaxProcs: 3}
	b := Metrics{Steps: 10, Work: 20, MaxProcs: 2}
	a.Add(b)
	if a.Steps != 11 || a.Work != 22 || a.MaxProcs != 3 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestTestAndSetArbitraryWinner(t *testing.T) {
	m := New(8)
	var flag int32
	var winners int64
	m.Step(1000, func(i int) {
		if TestAndSet(&flag) {
			AddInt64(&winners, 1)
		}
	})
	if winners != 1 {
		t.Fatalf("TestAndSet had %d winners, want 1", winners)
	}
	if !IsSet(&flag) {
		t.Fatal("flag not set")
	}
	Clear(&flag)
	if IsSet(&flag) {
		t.Fatal("flag not cleared")
	}
}

func TestWriteMaxMinCombining(t *testing.T) {
	m := New(8)
	maxv := int64(-1 << 62)
	minv := int64(1 << 62)
	m.Step(5000, func(i int) {
		WriteMax(&maxv, int64(i*7%4999))
		WriteMin(&minv, int64(i*7%4999))
	})
	if maxv != 4998 {
		t.Fatalf("WriteMax got %d", maxv)
	}
	if minv != 0 {
		t.Fatalf("WriteMin got %d", minv)
	}
}

func TestNewDefaultsWorkers(t *testing.T) {
	m := New(0)
	if m.workers < 1 {
		t.Fatal("New(0) produced no workers")
	}
}

package pram

// Tests for the persistent worker pool: steps must not spawn goroutines or
// allocate, metering must be bit-for-bit identical to the sequential
// machine, and a panicking body must leave the Machine (and its pool)
// reusable. Run with -race: the chunk-claiming barrier is exactly the kind
// of code the race detector exists for.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// parallelTestMachine returns a machine whose pool engages on small steps.
func parallelTestMachine(workers int) *Machine {
	m := New(workers)
	m.SetGrain(8)
	return m
}

func TestPoolNoGoroutineSpawnPerStep(t *testing.T) {
	m := parallelTestMachine(4)
	defer m.Release()
	var sink atomic.Int64
	body := func(i int) { sink.Add(int64(i)) }

	m.Step(1000, body) // warm-up: spawns the pool
	before := runtime.NumGoroutine()
	for k := 0; k < 200; k++ {
		m.Step(1000, body)
	}
	// Growth is the bug; a transient decrease just means another test's
	// released workers finished exiting. Settle before judging.
	after := runtime.NumGoroutine()
	for i := 0; i < 100 && after > before; i++ {
		runtime.Gosched()
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Fatalf("goroutines grew from %d to %d across 200 parallel steps", before, after)
	}

	allocs := testing.AllocsPerRun(100, func() { m.Step(1000, body) })
	if allocs != 0 {
		t.Fatalf("parallel Step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestPoolExecutesEveryIndexOnceSmallGrain(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		m := parallelTestMachine(workers)
		for _, n := range []int{8, 9, 17, 100, 1001, 4096} {
			counts := make([]int32, n)
			m.Step(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
		m.Release()
	}
}

func TestPoolMetricsIdenticalToSequential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seq := Sequential()
		par := parallelTestMachine(4)
		x := seed
		ns := make([]int, 50)
		for k := range ns {
			x = x*6364136223846793005 + 1442695040888963407
			ns[k] = int(x>>33)%5000 + 1
		}
		var a, b atomic.Int64
		for _, n := range ns {
			seq.Step(n, func(i int) { a.Add(1) })
		}
		for _, n := range ns {
			par.Step(n, func(i int) { b.Add(1) })
		}
		if seq.Metrics() != par.Metrics() {
			t.Fatalf("seed %d: sequential %+v != pool %+v", seed, seq.Metrics(), par.Metrics())
		}
		if a.Load() != b.Load() {
			t.Fatalf("seed %d: executed %d vs %d bodies", seed, a.Load(), b.Load())
		}
		par.Release()
	}
}

func TestPoolPanicRecoveryAndReuse(t *testing.T) {
	m := parallelTestMachine(4)
	defer m.Release()
	m.Step(1000, func(i int) {}) // warm the pool
	goroutines := runtime.NumGoroutine()

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic in body did not propagate")
			}
			if s, ok := r.(string); !ok || s != "boom" {
				t.Fatalf("panic value = %v, want \"boom\"", r)
			}
		}()
		m.Step(1000, func(i int) {
			if i == 500 {
				panic("boom")
			}
		})
	}()

	// The step was still charged (the round dispatched) and the machine
	// remains fully usable on the same pool.
	if got := m.Metrics(); got.Steps != 2 || got.MaxProcs != 1000 {
		t.Fatalf("metrics after panic = %+v", got)
	}
	var ran atomic.Int64
	m.Step(2000, func(i int) { ran.Add(1) })
	if ran.Load() != 2000 {
		t.Fatalf("step after panic ran %d bodies, want 2000", ran.Load())
	}
	// No worker may leak from the panic; transient decreases (other tests'
	// workers finishing their exit) are fine.
	now := runtime.NumGoroutine()
	for i := 0; i < 100 && now > goroutines; i++ {
		runtime.Gosched()
		now = runtime.NumGoroutine()
	}
	if now > goroutines {
		t.Fatalf("goroutines %d -> %d after panic recovery", goroutines, now)
	}
}

func TestMachineReuseAfterReset(t *testing.T) {
	m := parallelTestMachine(4)
	defer m.Release()
	var sum atomic.Int64
	m.Step(500, func(i int) { sum.Add(int64(i)) })
	first := m.Metrics()
	m.Reset()
	if m.Metrics() != (Metrics{}) {
		t.Fatal("Reset did not clear metrics")
	}
	sum.Store(0)
	m.Step(500, func(i int) { sum.Add(int64(i)) })
	if m.Metrics() != first {
		t.Fatalf("reused machine metered %+v, first run %+v", m.Metrics(), first)
	}
	if want := int64(500*499) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestSetWorkersReconfigures(t *testing.T) {
	m := New(2)
	m.SetGrain(8)
	m.Step(100, func(i int) {})
	m.SetWorkers(4)
	if m.Workers() != 4 {
		t.Fatalf("Workers() = %d after SetWorkers(4)", m.Workers())
	}
	var n atomic.Int64
	m.Step(100, func(i int) { n.Add(1) })
	if n.Load() != 100 {
		t.Fatalf("step after SetWorkers ran %d bodies", n.Load())
	}
	// Upgrading a Sequential machine must unlock the parallel threshold.
	s := Sequential()
	s.SetWorkers(4)
	s.Step(100, func(i int) {})
	if s.Workers() != 4 {
		t.Fatalf("sequential upgrade: Workers() = %d", s.Workers())
	}
	m.Release()
	s.Release()
}

func TestReleaseReclaimsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	m := parallelTestMachine(4)
	m.Step(1000, func(i int) {})
	m.Release()
	// Workers exit asynchronously; give the scheduler a few yields.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		runtime.Gosched()
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines %d -> %d after Release", before, now)
	}
	// Released machines restart on demand.
	var n atomic.Int64
	m.Step(1000, func(i int) { n.Add(1) })
	if n.Load() != 1000 {
		t.Fatalf("step after Release ran %d bodies", n.Load())
	}
	m.Release()
}

// BenchmarkStep sweeps the worker count: on a multi-core host wall-clock
// drops with workers while the metered cost stays constant; on any host it
// demonstrates the dispatch path is allocation-free.
func BenchmarkStep(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		workerCounts = append(workerCounts, g)
	}
	const n = 1 << 15
	data := make([]int64, n)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := New(w)
			defer m.Release()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Step(n, func(j int) { data[j]++ })
			}
		})
	}
}

package pram

// Tests for pool-backed step execution: steps must not spawn goroutines
// or allocate, metering must be bit-for-bit identical to the sequential
// machine, and a panicking body must leave the Machine (and the shared
// scheduler pool) reusable. Run with -race: the chunk-claiming steal path
// is exactly the kind of code the race detector exists for.
//
// Machines here run on dedicated sched pools (NewOnPool) so goroutine
// accounting is exact; the leak checks use the schedtest helper shared
// with the scheduler's own tests instead of racing asynchronous worker
// exits against a tolerance.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dyntc/internal/sched"
	"dyntc/internal/sched/schedtest"
)

// parallelTestMachine returns a machine on its own pool whose parallel
// path engages on small steps. Close the returned pool when done.
func parallelTestMachine(workers int) (*Machine, *sched.Pool) {
	p := sched.NewPool(workers)
	m := NewOnPool(p, workers)
	m.SetGrain(8)
	return m, p
}

func TestPoolNoGoroutineSpawnPerStep(t *testing.T) {
	m, p := parallelTestMachine(4)
	defer p.Close()
	var sink atomic.Int64
	body := func(i int) { sink.Add(int64(i)) }

	m.Step(1000, body) // warm-up
	before := schedtest.StableGoroutines()
	for k := 0; k < 200; k++ {
		m.Step(1000, body)
	}
	schedtest.WaitForGoroutines(t, before)

	allocs := testing.AllocsPerRun(100, func() { m.Step(1000, body) })
	if allocs > 0.5 {
		t.Fatalf("parallel Step allocates %.2f objects/op, want ~0", allocs)
	}
}

func TestPoolExecutesEveryIndexOnceSmallGrain(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		m, p := parallelTestMachine(workers)
		for _, n := range []int{8, 9, 17, 100, 1001, 4096} {
			counts := make([]int32, n)
			m.Step(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestPoolMetricsIdenticalToSequential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seq := Sequential()
		par, p := parallelTestMachine(4)
		x := seed
		ns := make([]int, 50)
		for k := range ns {
			x = x*6364136223846793005 + 1442695040888963407
			ns[k] = int(x>>33)%5000 + 1
		}
		var a, b atomic.Int64
		for _, n := range ns {
			seq.Step(n, func(i int) { a.Add(1) })
		}
		for _, n := range ns {
			par.Step(n, func(i int) { b.Add(1) })
		}
		if seq.Metrics() != par.Metrics() {
			t.Fatalf("seed %d: sequential %+v != pool %+v", seed, seq.Metrics(), par.Metrics())
		}
		if a.Load() != b.Load() {
			t.Fatalf("seed %d: executed %d vs %d bodies", seed, a.Load(), b.Load())
		}
		p.Close()
	}
}

// TestAdaptiveGrainMetricsIdentical pins that adaptive grain tuning (the
// default for New machines) changes scheduling only, never metering.
func TestAdaptiveGrainMetricsIdentical(t *testing.T) {
	seq := Sequential()
	ad := New(4) // adaptive grain, shared default pool
	for _, kind := range []StepKind{KindDefault, KindGrow, KindSet, KindValue} {
		ad.SetKind(kind)
		for k := 0; k < 30; k++ {
			n := 100 + 977*k%4000
			seq.Step(n, func(i int) {})
			ad.Step(n, func(i int) { time.Sleep(0) })
		}
	}
	if seq.Metrics() != ad.Metrics() {
		t.Fatalf("adaptive machine metered %+v, sequential %+v", ad.Metrics(), seq.Metrics())
	}
}

// TestAdaptiveGrainTracksCost checks the tuner moves the threshold in the
// right direction: expensive bodies shrink the grain, cheap ones grow it,
// and kinds tune independently.
func TestAdaptiveGrainTracksCost(t *testing.T) {
	m := New(2)
	m.SetKind(KindGrow)
	for k := 0; k < 30; k++ {
		m.Step(512, func(i int) { // expensive body: ~µs each
			busy := time.Now()
			for time.Since(busy) < time.Microsecond {
			}
		})
	}
	m.SetKind(KindValue)
	var sink atomic.Int64
	for k := 0; k < 200; k++ {
		m.Step(100_000, func(i int) { sink.Add(1) }) // cheap body
	}
	g := m.Grains()
	if g[KindGrow] >= g[KindValue] {
		t.Fatalf("grain(grow expensive)=%d should be below grain(value cheap)=%d", g[KindGrow], g[KindValue])
	}
	if g[KindGrow] < tuneMinGrain || g[KindValue] > tuneMaxGrain {
		t.Fatalf("grains out of clamp range: %v", g)
	}
	// KindCollapse never ran: still at the starting default.
	if g[KindCollapse] != defaultGrain {
		t.Fatalf("untrained kind grain = %d, want default %d", g[KindCollapse], defaultGrain)
	}
}

func TestPoolPanicRecoveryAndReuse(t *testing.T) {
	m, p := parallelTestMachine(4)
	defer p.Close()
	m.Step(1000, func(i int) {}) // warm up
	goroutines := schedtest.StableGoroutines()

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic in body did not propagate")
			}
			if s, ok := r.(string); !ok || s != "boom" {
				t.Fatalf("panic value = %v, want \"boom\"", r)
			}
		}()
		m.Step(1000, func(i int) {
			if i == 500 {
				panic("boom")
			}
		})
	}()

	// The step was still charged (the round dispatched) and the machine
	// remains fully usable on the same pool.
	if got := m.Metrics(); got.Steps != 2 || got.MaxProcs != 1000 {
		t.Fatalf("metrics after panic = %+v", got)
	}
	var ran atomic.Int64
	m.Step(2000, func(i int) { ran.Add(1) })
	if ran.Load() != 2000 {
		t.Fatalf("step after panic ran %d bodies, want 2000", ran.Load())
	}
	schedtest.WaitForGoroutines(t, goroutines)
}

func TestMachineReuseAfterReset(t *testing.T) {
	m, p := parallelTestMachine(4)
	defer p.Close()
	var sum atomic.Int64
	m.Step(500, func(i int) { sum.Add(int64(i)) })
	first := m.Metrics()
	m.Reset()
	if m.Metrics() != (Metrics{}) {
		t.Fatal("Reset did not clear metrics")
	}
	sum.Store(0)
	m.Step(500, func(i int) { sum.Add(int64(i)) })
	if m.Metrics() != first {
		t.Fatalf("reused machine metered %+v, first run %+v", m.Metrics(), first)
	}
	if want := int64(500*499) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestSetWorkersReconfigures(t *testing.T) {
	m := New(2)
	m.SetGrain(8)
	m.Step(100, func(i int) {})
	m.SetWorkers(4)
	if m.Workers() != 4 {
		t.Fatalf("Workers() = %d after SetWorkers(4)", m.Workers())
	}
	var n atomic.Int64
	m.Step(100, func(i int) { n.Add(1) })
	if n.Load() != 100 {
		t.Fatalf("step after SetWorkers ran %d bodies", n.Load())
	}
	// Upgrading a Sequential machine must unlock the parallel threshold.
	s := Sequential()
	s.SetWorkers(4)
	s.Step(100, func(i int) {})
	if s.Workers() != 4 {
		t.Fatalf("sequential upgrade: Workers() = %d", s.Workers())
	}
}

// TestSharedPoolAcrossMachines is the architectural point of the
// refactor: many machines share one pool, so total goroutines track the
// pool size, not the machine count.
func TestSharedPoolAcrossMachines(t *testing.T) {
	base := schedtest.StableGoroutines()
	p := sched.NewPool(4)
	machines := make([]*Machine, 64)
	for i := range machines {
		machines[i] = NewOnPool(p, 4)
		machines[i].SetGrain(8)
	}
	var total atomic.Int64
	for round := 0; round < 5; round++ {
		for _, m := range machines {
			m.Step(500, func(i int) { total.Add(1) })
		}
	}
	if total.Load() != 64*5*500 {
		t.Fatalf("ran %d bodies, want %d", total.Load(), 64*5*500)
	}
	if now := runtime.NumGoroutine(); now > base+6 {
		t.Fatalf("64 machines grew goroutines %d -> %d; pool should cap at 4 workers", base, now)
	}
	p.Close()
	schedtest.WaitForGoroutines(t, base)
}

// BenchmarkStep sweeps the worker hint: on a multi-core host wall-clock
// drops with workers while the metered cost stays constant; on any host it
// demonstrates the dispatch path is allocation-free.
func BenchmarkStep(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		workerCounts = append(workerCounts, g)
	}
	const n = 1 << 15
	data := make([]int64, n)
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := New(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Step(n, func(j int) { data[j]++ })
			}
		})
	}
}

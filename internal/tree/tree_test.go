package tree

import (
	"testing"
	"testing/quick"

	"dyntc/internal/prng"
	"dyntc/internal/semiring"
)

var testRing = semiring.NewMod(1_000_000_007)

func TestSingleLeaf(t *testing.T) {
	tr := New(testRing, 42)
	if tr.Len() != 1 || tr.LeafCount() != 1 {
		t.Fatal("bad counts")
	}
	if tr.Eval() != 42 {
		t.Fatalf("Eval = %d", tr.Eval())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddDeleteChildren(t *testing.T) {
	tr := New(testRing, 10)
	l, r := tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 3, 4)
	if tr.Len() != 3 || tr.LeafCount() != 2 {
		t.Fatal("bad counts after AddChildren")
	}
	if tr.Eval() != 7 {
		t.Fatalf("3+4 = %d", tr.Eval())
	}
	tr.AddChildren(l, semiring.OpMul(testRing), 5, 6)
	// (5*6) + 4 = 34
	if tr.Eval() != 34 {
		t.Fatalf("(5*6)+4 = %d", tr.Eval())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.DeleteChildren(l, 9)
	// 9 + 4 = 13
	if tr.Eval() != 13 {
		t.Fatalf("9+4 = %d", tr.Eval())
	}
	_ = r
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddChildrenPanicsOnInternal(t *testing.T) {
	tr := New(testRing, 1)
	tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 1, 2)
}

func TestDeleteChildrenPanics(t *testing.T) {
	tr := New(testRing, 1)
	tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 1, 2)
	tr.AddChildren(tr.Root.Left, semiring.OpAdd(testRing), 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.DeleteChildren(tr.Root, 0) // left child is internal
}

func TestLeavesOrder(t *testing.T) {
	tr := New(testRing, 0)
	a, b := tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 1, 2)
	c, d := tr.AddChildren(a, semiring.OpAdd(testRing), 3, 4)
	leaves := tr.Leaves()
	want := []*Node{c, d, b}
	if len(leaves) != 3 {
		t.Fatalf("got %d leaves", len(leaves))
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("leaf order wrong at %d", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, shape := range []Shape{ShapeRandom, ShapeBalanced, ShapeLeftComb, ShapeRightComb} {
		for _, n := range []int{1, 2, 3, 17, 200} {
			tr := Generate(testRing, prng.New(uint64(n)), n, shape)
			if tr.LeafCount() != n {
				t.Fatalf("shape %d: %d leaves, want %d", shape, tr.LeafCount(), n)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("shape %d n=%d: %v", shape, n, err)
			}
		}
	}
}

func TestCombDepth(t *testing.T) {
	tr := Generate(testRing, prng.New(1), 100, ShapeLeftComb)
	depth := 0
	for n := tr.Root; !n.IsLeaf(); n = n.Left {
		depth++
	}
	if depth != 99 {
		t.Fatalf("left comb depth = %d, want 99", depth)
	}
	// Eval must not overflow the stack on deep combs.
	big := Generate(testRing, prng.New(2), 100000, ShapeLeftComb)
	_ = big.Eval()
}

func TestEvalMatchesRecursive(t *testing.T) {
	var rec func(r semiring.Ring, n *Node) int64
	rec = func(r semiring.Ring, n *Node) int64 {
		if n.IsLeaf() {
			return n.Value
		}
		return n.Op.Eval(r, rec(r, n.Left), rec(r, n.Right))
	}
	f := func(seed uint64) bool {
		src := prng.New(seed)
		tr := Generate(testRing, src, 1+int(seed%64), ShapeRandom)
		return tr.Eval() == rec(testRing, tr.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalAtSubtrees(t *testing.T) {
	src := prng.New(5)
	tr := Generate(testRing, src, 50, ShapeRandom)
	for _, n := range tr.Nodes {
		if n == nil || n.IsLeaf() {
			continue
		}
		want := n.Op.Eval(testRing, tr.EvalAt(n.Left), tr.EvalAt(n.Right))
		if got := tr.EvalAt(n); got != want {
			t.Fatalf("EvalAt(%d) = %d, want %d", n.ID, got, want)
		}
	}
}

func TestSiblings(t *testing.T) {
	tr := New(testRing, 0)
	l, r := tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 1, 2)
	if l.Sibling() != r || r.Sibling() != l {
		t.Fatal("sibling links wrong")
	}
	if tr.Root.Sibling() != nil {
		t.Fatal("root has a sibling")
	}
}

func TestSetValueSetOp(t *testing.T) {
	tr := New(testRing, 1)
	tr.AddChildren(tr.Root, semiring.OpAdd(testRing), 2, 3)
	tr.SetValue(tr.Root.Left, 10)
	if tr.Eval() != 13 {
		t.Fatalf("10+3 = %d", tr.Eval())
	}
	tr.SetOp(tr.Root, semiring.OpMul(testRing))
	if tr.Eval() != 30 {
		t.Fatalf("10*3 = %d", tr.Eval())
	}
}

// Package tree provides the dynamic binary expression trees T that
// parallel tree contraction evaluates (Reif & Tate, SPAA'94, §4). Trees are
// full binary (every internal node has exactly two children), of bounded
// size but unbounded depth; leaves carry ring values and internal nodes
// carry symmetric bilinear operations over a commutative (semi)ring.
//
// The package also provides the paper's two structural mutations — grow a
// leaf into an operation node with two new leaf children, and collapse an
// operation node whose children are both leaves back into a leaf — plus
// random tree generators for every shape the experiments sweep (balanced,
// left/right combs, uniformly random) and a direct iterative evaluator used
// as the correctness oracle.
package tree

import (
	"fmt"

	"dyntc/internal/prng"
	"dyntc/internal/semiring"
)

// Node is a node of the expression tree. Exactly one of (Op) / (Value) is
// meaningful: internal nodes have an operation, leaves have a value.
type Node struct {
	Parent, Left, Right *Node

	// Op is the node's symmetric bilinear operation (internal nodes).
	Op semiring.Op
	// Value is the leaf's ring value.
	Value int64

	// ID is a dense index into Tree.Nodes, stable for the node's lifetime.
	ID int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Sibling returns the node's sibling, or nil at the root.
func (n *Node) Sibling() *Node {
	if n.Parent == nil {
		return nil
	}
	if n.Parent.Left == n {
		return n.Parent.Right
	}
	return n.Parent.Left
}

// Tree is a dynamic full binary expression tree over a ring.
type Tree struct {
	Ring semiring.Ring
	Root *Node

	// Nodes indexes every node ever created by ID; deleted nodes keep
	// their slot (nil-ed) so IDs stay dense and stable.
	Nodes []*Node

	liveCount int
}

// New creates a tree consisting of a single leaf.
func New(r semiring.Ring, rootValue int64) *Tree {
	t := &Tree{Ring: r}
	t.Root = t.newNode()
	t.Root.Value = r.Normalize(rootValue)
	return t
}

func (t *Tree) newNode() *Node {
	n := &Node{ID: len(t.Nodes)}
	t.Nodes = append(t.Nodes, n)
	t.liveCount++
	return n
}

// Len returns the number of live nodes.
func (t *Tree) Len() int { return t.liveCount }

// LeafCount returns the number of leaves ((Len+1)/2 for a full binary tree).
func (t *Tree) LeafCount() int { return (t.liveCount + 1) / 2 }

// AddChildren grows leaf into an internal node with operation op and two
// new leaf children holding the given values (the paper's "add two new
// children below a current leaf"). It returns the new left and right
// leaves.
func (t *Tree) AddChildren(leaf *Node, op semiring.Op, leftVal, rightVal int64) (l, r *Node) {
	if !leaf.IsLeaf() {
		panic("tree: AddChildren on an internal node")
	}
	l, r = t.newNode(), t.newNode()
	l.Value = t.Ring.Normalize(leftVal)
	r.Value = t.Ring.Normalize(rightVal)
	l.Parent, r.Parent = leaf, leaf
	leaf.Left, leaf.Right = l, r
	leaf.Op = op
	leaf.Value = 0
	return l, r
}

// DeleteChildren collapses an internal node whose children are both leaves
// back into a leaf with the given value (the paper's "delete two leaf
// children of a node").
func (t *Tree) DeleteChildren(n *Node, newValue int64) {
	if n.IsLeaf() || !n.Left.IsLeaf() || !n.Right.IsLeaf() {
		panic("tree: DeleteChildren requires two leaf children")
	}
	t.Nodes[n.Left.ID] = nil
	t.Nodes[n.Right.ID] = nil
	t.liveCount -= 2
	n.Left.Parent, n.Right.Parent = nil, nil
	n.Left, n.Right = nil, nil
	n.Value = t.Ring.Normalize(newValue)
	n.Op = semiring.Op{}
}

// SetValue updates a leaf's value.
func (t *Tree) SetValue(leaf *Node, v int64) {
	if !leaf.IsLeaf() {
		panic("tree: SetValue on an internal node")
	}
	leaf.Value = t.Ring.Normalize(v)
}

// SetOp updates an internal node's operation.
func (t *Tree) SetOp(n *Node, op semiring.Op) {
	if n.IsLeaf() {
		panic("tree: SetOp on a leaf")
	}
	n.Op = op
}

// RestoreNode describes one live node for Restore. Links are node IDs;
// -1 means none. Exactly one of Op / Value is meaningful, as in Node.
type RestoreNode struct {
	ID, Parent, Left, Right int
	Op                      semiring.Op
	Value                   int64
}

// Restore reconstructs a tree from a serialized description: slots is the
// historical length of the Nodes index (deleted slots included — restoring
// it exactly keeps future ID assignment identical to the source tree), and
// nodes lists every live node. The result is validated; values are stored
// as given (they were normalized when first set).
func Restore(r semiring.Ring, slots int, nodes []RestoreNode) (*Tree, error) {
	if slots < len(nodes) || len(nodes) == 0 {
		return nil, fmt.Errorf("tree: restore with %d nodes in %d slots", len(nodes), slots)
	}
	t := &Tree{Ring: r, Nodes: make([]*Node, slots)}
	for _, rn := range nodes {
		if rn.ID < 0 || rn.ID >= slots {
			return nil, fmt.Errorf("tree: restore node ID %d out of range [0, %d)", rn.ID, slots)
		}
		if t.Nodes[rn.ID] != nil {
			return nil, fmt.Errorf("tree: restore duplicate node ID %d", rn.ID)
		}
		t.Nodes[rn.ID] = &Node{ID: rn.ID}
	}
	at := func(id int) (*Node, error) {
		if id == -1 {
			return nil, nil
		}
		if id < 0 || id >= slots || t.Nodes[id] == nil {
			return nil, fmt.Errorf("tree: restore link to missing node %d", id)
		}
		return t.Nodes[id], nil
	}
	for _, rn := range nodes {
		n := t.Nodes[rn.ID]
		var err error
		if n.Parent, err = at(rn.Parent); err != nil {
			return nil, err
		}
		if n.Left, err = at(rn.Left); err != nil {
			return nil, err
		}
		if n.Right, err = at(rn.Right); err != nil {
			return nil, err
		}
		if (n.Left == nil) != (n.Right == nil) {
			return nil, fmt.Errorf("tree: restore half-internal node %d", rn.ID)
		}
		if n.IsLeaf() {
			n.Value = rn.Value
		} else {
			n.Op = rn.Op
		}
		if n.Parent == nil {
			if t.Root != nil {
				return nil, fmt.Errorf("tree: restore found two roots (%d, %d)", t.Root.ID, rn.ID)
			}
			t.Root = n
		}
	}
	t.liveCount = len(nodes)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	return t, nil
}

// Leaves returns the leaves in left-to-right order (iterative DFS).
func (t *Tree) Leaves() []*Node {
	var out []*Node
	if t.Root == nil {
		return out
	}
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.IsLeaf() {
			out = append(out, n)
			continue
		}
		stack = append(stack, n.Right, n.Left)
	}
	return out
}

// Eval computes the expression value bottom-up with an explicit stack (no
// recursion, so comb trees of any depth are safe). This is the oracle every
// contraction result is tested against.
func (t *Tree) Eval() int64 {
	return t.EvalAt(t.Root)
}

// EvalAt computes the value of the subexpression rooted at n.
func (t *Tree) EvalAt(n *Node) int64 {
	type frame struct {
		n    *Node
		seen bool
	}
	vals := make([]int64, len(t.Nodes))
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{n, false})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.IsLeaf() {
			vals[f.n.ID] = f.n.Value
			continue
		}
		if !f.seen {
			stack = append(stack, frame{f.n, true}, frame{f.n.Right, false}, frame{f.n.Left, false})
			continue
		}
		vals[f.n.ID] = f.n.Op.Eval(t.Ring, vals[f.n.Left.ID], vals[f.n.Right.ID])
	}
	return vals[n.ID]
}

// Validate checks full-binary structure and parent links.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("tree: nil root")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("tree: root has a parent")
	}
	count := 0
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		if t.Nodes[n.ID] != n {
			return fmt.Errorf("tree: node ID %d not registered", n.ID)
		}
		if n.IsLeaf() {
			if n.Right != nil {
				return fmt.Errorf("tree: half-internal node %d", n.ID)
			}
			continue
		}
		if n.Right == nil {
			return fmt.Errorf("tree: half-internal node %d", n.ID)
		}
		if n.Left.Parent != n || n.Right.Parent != n {
			return fmt.Errorf("tree: bad parent links under node %d", n.ID)
		}
		stack = append(stack, n.Left, n.Right)
	}
	if count != t.liveCount {
		return fmt.Errorf("tree: liveCount=%d but %d reachable", t.liveCount, count)
	}
	return nil
}

// Shape selects a random tree topology.
type Shape int

// Tree shapes for the generators.
const (
	// ShapeRandom grows the tree by expanding uniformly random leaves.
	ShapeRandom Shape = iota
	// ShapeBalanced is a perfectly balanced topology.
	ShapeBalanced
	// ShapeLeftComb chains every expansion down the leftmost leaf
	// (depth = n-1: the unbounded-depth stress shape).
	ShapeLeftComb
	// ShapeRightComb chains down the rightmost leaf.
	ShapeRightComb
)

// Generate builds a random full binary expression tree with the given
// number of leaves, topology shape, random {+,×} operations and values
// drawn from src. Values are normalized into the ring.
func Generate(r semiring.Ring, src *prng.Source, leaves int, shape Shape) *Tree {
	if leaves < 1 {
		panic("tree: Generate needs at least one leaf")
	}
	t := New(r, src.Int63())
	frontier := []*Node{t.Root}
	for n := 1; n < leaves; n++ {
		var leaf *Node
		switch shape {
		case ShapeBalanced:
			// Expanding the frontier in FIFO order yields a balanced tree.
			leaf = frontier[0]
			frontier = frontier[1:]
		case ShapeLeftComb:
			leaf = frontier[0]
			frontier = frontier[:0]
		case ShapeRightComb:
			leaf = frontier[len(frontier)-1]
			frontier = frontier[:0]
		default:
			i := src.Intn(len(frontier))
			leaf = frontier[i]
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
		op := semiring.OpAdd(r)
		if src.Intn(2) == 1 {
			op = semiring.OpMul(r)
		}
		l, rg := t.AddChildren(leaf, op, src.Int63(), src.Int63())
		switch shape {
		case ShapeLeftComb:
			frontier = append(frontier, l)
		case ShapeRightComb:
			frontier = append(frontier, rg)
		default:
			frontier = append(frontier, l, rg)
		}
	}
	return t
}

// Package seqdyn provides the sequential baselines the paper's batch-
// parallel algorithms are measured against (§1.2: "with the known
// sequential algorithms, a sequence of |U| queries or update requests takes
// O(|U| log n) time"):
//
//   - PathEval: dynamic expression evaluation that caches every node's
//     value and recomputes the root path on each update — O(depth) per
//     update, O(1) per query. On balanced trees this is the classical
//     O(log n) sequential dynamic algorithm (Cohen–Tamassia style); on
//     unbounded-depth trees it degrades to Θ(n), which is exactly the
//     degradation the paper's structure avoids.
//   - RebuildEval: recomputes everything from scratch on each update —
//     the Θ(n) floor.
package seqdyn

import (
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// PathEval caches node values and repairs root paths on update.
type PathEval struct {
	t    *tree.Tree
	vals []int64
}

// NewPathEval builds the cache in O(n).
func NewPathEval(t *tree.Tree) *PathEval {
	p := &PathEval{t: t}
	p.Rebuild()
	return p
}

// Rebuild recomputes every cached value (called after structural changes).
func (p *PathEval) Rebuild() {
	p.vals = make([]int64, len(p.t.Nodes))
	// Iterative post-order.
	type frame struct {
		n    *tree.Node
		seen bool
	}
	stack := []frame{{p.t.Root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.IsLeaf() {
			p.vals[f.n.ID] = f.n.Value
			continue
		}
		if !f.seen {
			stack = append(stack, frame{f.n, true}, frame{f.n.Right, false}, frame{f.n.Left, false})
			continue
		}
		p.vals[f.n.ID] = f.n.Op.Eval(p.t.Ring, p.vals[f.n.Left.ID], p.vals[f.n.Right.ID])
	}
}

// SetValue updates a leaf and repairs the root path. It returns the number
// of nodes recomputed (the Θ(depth) cost driver).
func (p *PathEval) SetValue(leaf *tree.Node, v int64) int {
	p.t.SetValue(leaf, v)
	p.vals[leaf.ID] = leaf.Value
	steps := 0
	for n := leaf.Parent; n != nil; n = n.Parent {
		p.vals[n.ID] = n.Op.Eval(p.t.Ring, p.vals[n.Left.ID], p.vals[n.Right.ID])
		steps++
	}
	return steps
}

// Value returns the cached value at n.
func (p *PathEval) Value(n *tree.Node) int64 { return p.vals[n.ID] }

// Root returns the cached root value.
func (p *PathEval) Root() int64 { return p.vals[p.t.Root.ID] }

// AddChildren grows a leaf and repairs the root path.
func (p *PathEval) AddChildren(leaf *tree.Node, op semiring.Op, lv, rv int64) (*tree.Node, *tree.Node) {
	l, r := p.t.AddChildren(leaf, op, lv, rv)
	for len(p.vals) < len(p.t.Nodes) {
		p.vals = append(p.vals, 0)
	}
	p.vals[l.ID] = l.Value
	p.vals[r.ID] = r.Value
	p.vals[leaf.ID] = leaf.Op.Eval(p.t.Ring, l.Value, r.Value)
	for n := leaf.Parent; n != nil; n = n.Parent {
		p.vals[n.ID] = n.Op.Eval(p.t.Ring, p.vals[n.Left.ID], p.vals[n.Right.ID])
	}
	return l, r
}

// RebuildEval recomputes the whole expression on every request.
type RebuildEval struct{ t *tree.Tree }

// NewRebuildEval wraps a tree.
func NewRebuildEval(t *tree.Tree) *RebuildEval { return &RebuildEval{t: t} }

// SetValue updates a leaf; the cost is paid at query time.
func (p *RebuildEval) SetValue(leaf *tree.Node, v int64) { p.t.SetValue(leaf, v) }

// Root evaluates from scratch: Θ(n).
func (p *RebuildEval) Root() int64 { return p.t.Eval() }

// Value evaluates the subtree from scratch.
func (p *RebuildEval) Value(n *tree.Node) int64 { return p.t.EvalAt(n) }

// NaiveActivationWalk counts the parent-pointer steps the no-shortcut
// activation of §2 would take for the given update set: the Θ(|U|·depth)
// baseline of experiment E11.
func NaiveActivationWalk(leaves []*tree.Node) int {
	seen := map[*tree.Node]bool{}
	steps := 0
	for _, l := range leaves {
		for n := l; n != nil && !seen[n]; n = n.Parent {
			seen[n] = true
			steps++
		}
	}
	return steps
}

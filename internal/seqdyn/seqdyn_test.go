package seqdyn

import (
	"testing"

	"dyntc/internal/prng"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

var testRing = semiring.NewMod(1_000_000_007)

func TestPathEvalMatchesOracle(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(1), 300, tree.ShapeRandom)
	p := NewPathEval(tr)
	if p.Root() != tr.Eval() {
		t.Fatalf("initial root %d want %d", p.Root(), tr.Eval())
	}
	src := prng.New(2)
	leaves := tr.Leaves()
	for i := 0; i < 100; i++ {
		p.SetValue(leaves[src.Intn(len(leaves))], src.Int63())
		if p.Root() != tr.Eval() {
			t.Fatalf("update %d: root %d want %d", i, p.Root(), tr.Eval())
		}
	}
	for _, n := range tr.Nodes {
		if n != nil && p.Value(n) != tr.EvalAt(n) {
			t.Fatalf("node %d: %d want %d", n.ID, p.Value(n), tr.EvalAt(n))
		}
	}
}

func TestPathEvalCombDegradation(t *testing.T) {
	// On a left comb, updating the deepest leaf costs Θ(n) recomputations
	// — the degradation the paper's structure avoids.
	const n = 2000
	tr := tree.Generate(testRing, prng.New(3), n, tree.ShapeLeftComb)
	p := NewPathEval(tr)
	deepest := tr.Leaves()[0]
	steps := p.SetValue(deepest, 7)
	if steps < n-2 {
		t.Fatalf("comb update took %d steps, expected ~%d", steps, n-1)
	}
}

func TestPathEvalAddChildren(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(5), 50, tree.ShapeRandom)
	p := NewPathEval(tr)
	src := prng.New(7)
	for i := 0; i < 40; i++ {
		leaves := tr.Leaves()
		p.AddChildren(leaves[src.Intn(len(leaves))], semiring.OpMul(testRing), src.Int63(), src.Int63())
		if p.Root() != tr.Eval() {
			t.Fatalf("step %d: root %d want %d", i, p.Root(), tr.Eval())
		}
	}
}

func TestRebuildEval(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(9), 100, tree.ShapeRandom)
	p := NewRebuildEval(tr)
	src := prng.New(11)
	leaves := tr.Leaves()
	for i := 0; i < 20; i++ {
		p.SetValue(leaves[src.Intn(len(leaves))], src.Int63())
		if p.Root() != tr.Eval() {
			t.Fatal("rebuild eval mismatch")
		}
	}
}

func TestNaiveActivationWalk(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(13), 500, tree.ShapeLeftComb)
	leaves := tr.Leaves()
	// Deepest leaf alone: walks the whole spine.
	if got := NaiveActivationWalk(leaves[:1]); got < 499 {
		t.Fatalf("walk %d steps", got)
	}
	// All leaves: every node visited exactly once.
	if got := NaiveActivationWalk(leaves); got != tr.Len() {
		t.Fatalf("walk %d steps, want %d", got, tr.Len())
	}
}

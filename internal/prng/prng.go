// Package prng provides a small, fast, deterministic pseudo-random number
// generator used throughout the library.
//
// All randomized structures in this module (random binary splitting trees,
// randomized rebuild decisions, workload generators) draw from prng so that
// every experiment and test is reproducible from a single seed. The
// generator is splitmix64 (Steele, Lea, Flood 2014): a 64-bit state advanced
// by a Weyl constant and finalized with a variant of the MurmurHash3
// finalizer. It passes BigCrush when used as described and is splittable,
// which the parallel construction paths rely on to give each goroutine an
// independent stream.
package prng

import "math/bits"

// Source is a deterministic splitmix64 generator. The zero value is a valid
// generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden is the 64-bit golden-ratio Weyl increment of splitmix64.
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one step.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift method with rejection of the biased region.
func (s *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability num/den. It panics if den <= 0 or
// num < 0. Probabilities above 1 always return true.
func (s *Source) Bernoulli(num, den int) bool {
	if den <= 0 || num < 0 {
		panic("prng: Bernoulli with invalid ratio")
	}
	if num >= den {
		return true
	}
	return s.Intn(den) < num
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

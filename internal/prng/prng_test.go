package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must not be a shifted copy of the parent stream.
	parent := make([]uint64, 64)
	for i := range parent {
		parent[i] = a.Uint64()
	}
	for i := 0; i < 32; i++ {
		v := c.Uint64()
		for _, p := range parent {
			if v == p {
				t.Fatalf("split stream collided with parent stream")
			}
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	check := func(n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-square-ish sanity test over 8 buckets.
	s := New(99)
	const buckets, draws = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expect := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from %f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := New(11)
	hits := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		if s.Bernoulli(1, 4) {
			hits++
		}
	}
	p := float64(hits) / draws
	if p < 0.23 || p > 0.27 {
		t.Fatalf("Bernoulli(1/4) frequency %f", p)
	}
	if !s.Bernoulli(5, 4) {
		t.Fatal("Bernoulli with num>den must be true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

package listprefix

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"dyntc/internal/pram"
	"dyntc/internal/prng"
)

func intList(seed uint64, n int) *List[int64] {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	return New(seed, SumInt64(), vals)
}

func TestPrefixAtMatchesNaive(t *testing.T) {
	l := intList(1, 100)
	var acc int64
	for i, e := 0, l.Head(); e != nil; i, e = i+1, e.Next() {
		acc += e.Payload()
		if got := l.PrefixAt(e); got != acc {
			t.Fatalf("prefix at %d = %d, want %d", i, got, acc)
		}
	}
}

func TestBatchPrefixMatchesSequential(t *testing.T) {
	src := prng.New(2)
	for _, n := range []int{1, 2, 3, 17, 256, 2048} {
		l := intList(uint64(n), n)
		for _, u := range []int{1, 2, 7, 50} {
			if u > n {
				continue
			}
			var elems []*Elem[int64]
			for i := 0; i < u; i++ {
				elems = append(elems, l.At(src.Intn(n)))
			}
			m := pram.Sequential()
			got := l.BatchPrefix(m, elems)
			for i, e := range elems {
				if want := l.PrefixAt(e); got[i] != want {
					t.Fatalf("n=%d u=%d elem %d: batch %d want %d", n, u, i, got[i], want)
				}
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("flags leaked: %v", err)
			}
		}
	}
}

func TestBatchPrefixNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative: this
	// catches any ordering mistake in the Euler tour.
	concat := Monoid[string]{Identity: "", Combine: func(a, b string) string { return a + b }}
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	l := New(7, concat, words)
	var elems []*Elem[string]
	for e := l.Head(); e != nil; e = e.Next() {
		elems = append(elems, e)
	}
	got := l.BatchPrefix(pram.Sequential(), elems)
	for i := range got {
		want := strings.Join(words[:i+1], "")
		if got[i] != want {
			t.Fatalf("prefix %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestBatchPrefixParallelMachine(t *testing.T) {
	l := intList(5, 4096)
	var elems []*Elem[int64]
	for i := 0; i < 300; i++ {
		elems = append(elems, l.At((i*13)%4096))
	}
	m := pram.New(4)
	got := l.BatchPrefix(m, elems)
	for i, e := range elems {
		if want := l.PrefixAt(e); got[i] != want {
			t.Fatalf("elem %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestBatchPrefixSpan(t *testing.T) {
	// Theorem 3.1: span O(log(|U| log n)), not Θ(depth). With n = 2^16 and
	// |U| = 4 the parse tree has ≲ 4·60 nodes, so the tour prefix needs
	// ~log2(480) ≈ 9 jump rounds; the whole operation should stay well
	// under 64 rounds while a per-element walk would already cost ~depth
	// (≈ 30+) rounds for the walk alone plus activation.
	l := intList(11, 1<<16)
	elems := []*Elem[int64]{l.At(5), l.At(30000), l.At(30001), l.At(65000)}
	m := pram.Sequential()
	l.BatchPrefix(m, elems)
	if steps := m.Metrics().Steps; steps > 64 {
		t.Fatalf("batch prefix used %d rounds", steps)
	}
}

func TestUpdateAndPrefix(t *testing.T) {
	l := intList(3, 50)
	e := l.At(25)
	l.Update(e, 1000)
	if got := l.PrefixAt(l.At(49)); got != 50*51/2-26+1000 {
		t.Fatalf("total after update = %d", got)
	}
	if got := l.Total(); got != 50*51/2-26+1000 {
		t.Fatalf("Total = %d", got)
	}
}

func TestBatchUpdate(t *testing.T) {
	l := intList(3, 128)
	m := pram.Sequential()
	elems := []*Elem[int64]{l.At(0), l.At(64), l.At(127)}
	l.BatchUpdate(m, elems, []int64{0, 0, 0})
	want := int64(128*129/2) - 1 - 65 - 128
	if got := l.Total(); got != want {
		t.Fatalf("Total = %d want %d", got, want)
	}
}

func TestInsertDeleteMaintainPrefix(t *testing.T) {
	l := intList(9, 10)
	e5 := l.At(5)
	l.Insert(nil, e5, []int64{100, 200})
	l.Delete(nil, []*Elem[int64]{l.At(0)})
	// List now: 2,3,4,5,6,100,200,7,8,9,10
	wantVals := []int64{2, 3, 4, 5, 6, 100, 200, 7, 8, 9, 10}
	got := l.Values()
	if fmt.Sprint(got) != fmt.Sprint(wantVals) {
		t.Fatalf("values %v want %v", got, wantVals)
	}
	var acc int64
	for i, e := 0, l.Head(); e != nil; i, e = i+1, e.Next() {
		acc += e.Payload()
		if p := l.PrefixAt(e); p != acc {
			t.Fatalf("prefix at %d = %d want %d", i, p, acc)
		}
	}
}

func TestRangeSum(t *testing.T) {
	l := intList(13, 64)
	f := func(a, b uint8) bool {
		i, j := int(a)%64, int(b)%64
		if i > j {
			i, j = j, i
		}
		var want int64
		for k := i; k <= j; k++ {
			want += int64(k + 1)
		}
		return l.RangeSum(l.At(i), l.At(j)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSumReversedPanics(t *testing.T) {
	l := intList(13, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.RangeSum(l.At(5), l.At(2))
}

func TestSearchPrefix(t *testing.T) {
	l := intList(17, 100) // prefix at i = (i+1)(i+2)/2
	for _, target := range []int64{1, 3, 4, 5000, 100 * 101 / 2} {
		e := l.SearchPrefix(func(v int64) bool { return v >= target })
		// Naive scan.
		var acc int64
		var want *Elem[int64]
		for x := l.Head(); x != nil; x = x.Next() {
			acc += x.Payload()
			if acc >= target {
				want = x
				break
			}
		}
		if e != want {
			t.Fatalf("target %d: got %v want %v", target, e, want)
		}
	}
	if l.SearchPrefix(func(v int64) bool { return v > 1<<40 }) != nil {
		t.Fatal("found unreachable prefix")
	}
}

func TestMinMonoid(t *testing.T) {
	vals := []int64{5, 3, 8, 1, 9, 2}
	l := New(19, MinInt64(), vals)
	if got := l.Total(); got != 1 {
		t.Fatalf("min total = %d", got)
	}
	if got := l.RangeSum(l.At(0), l.At(2)); got != 3 {
		t.Fatalf("range min = %d", got)
	}
	if got := l.RangeSum(l.At(4), l.At(5)); got != 2 {
		t.Fatalf("range min = %d", got)
	}
}

func TestQuickPrefixProperty(t *testing.T) {
	src := prng.New(23)
	f := func(seed uint64, raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		l := New(seed, SumInt64(), vals)
		i := src.Intn(len(vals))
		var want int64
		for k := 0; k <= i; k++ {
			want += vals[k]
		}
		return l.PrefixAt(l.At(i)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyList(t *testing.T) {
	l := New(1, SumInt64(), nil)
	if l.Len() != 0 {
		t.Fatal("not empty")
	}
	if got := l.Total(); got != 0 {
		t.Fatalf("Total = %d", got)
	}
	if out := l.BatchPrefix(nil, nil); len(out) != 0 {
		t.Fatal("BatchPrefix on empty")
	}
	if l.SearchPrefix(func(int64) bool { return true }) != nil {
		t.Fatal("SearchPrefix on empty")
	}
	elems := l.InsertAt(nil, 0, []int64{4, 5})
	if len(elems) != 2 || l.Total() != 9 {
		t.Fatal("insert into empty failed")
	}
}

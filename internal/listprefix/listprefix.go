// Package listprefix implements the incremental list prefix structure of
// Reif & Tate, SPAA'94, §3: a dynamic list whose elements carry monoid
// values, supporting batch prefix queries, point and batch updates, and
// batch insertion/deletion — all with the paper's expected bounds.
//
// The structure is an RBSTS whose leaves are the list elements and whose
// internal nodes maintain the monoid sum of their sublist ("we store the
// sum of all the values in that sub-list at the internal node"). A batch of
// |U| prefix queries proceeds exactly as in Theorem 3.1:
//
//  1. identify/activate the parse tree PT(U) (Theorem 2.1),
//  2. extend it conceptually to P̂T(U) by treating each non-activated child
//     of an activated node as a single leaf carrying its subtree sum,
//  3. build the Euler tour of P̂T(U) as a linked list of arcs in one
//     parallel round, and
//  4. run a parallel prefix (pointer jumping) over the tour, which yields
//     every query's prefix sum in O(log |PT(U)|) = O(log(|U| log n)) rounds.
//
// The pointer-jumping prefix costs a log factor more work than the paper's
// optimal list-prefix subroutine; this affects work constants only, not the
// round counts the experiments validate.
package listprefix

import (
	"dyntc/internal/pram"
	"dyntc/internal/rbsts"
)

// Monoid describes an associative combine with identity over V. It does not
// need to be commutative: prefix queries respect list order.
type Monoid[V any] struct {
	Identity V
	Combine  func(V, V) V
}

// SumInt64 is the (ℤ, +) monoid.
func SumInt64() Monoid[int64] {
	return Monoid[int64]{Identity: 0, Combine: func(a, b int64) int64 { return a + b }}
}

// MinInt64 is the (ℤ∪{∞}, min) monoid; identity is a large sentinel.
func MinInt64() Monoid[int64] {
	return Monoid[int64]{Identity: 1 << 62, Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
}

// Elem is a stable handle to a list element; it remains valid across every
// mutation until the element is deleted.
type Elem[V any] = rbsts.Node[V, V]

// List is the incremental list prefix structure.
type List[V any] struct {
	tree *rbsts.Tree[V, V]
	mon  Monoid[V]
}

// New builds a list over the given values (Lemma 2.1 construction).
func New[V any](seed uint64, mon Monoid[V], values []V) *List[V] {
	t := rbsts.New[V, V](seed,
		func(v V) V { return v },
		mon.Combine,
		values)
	return &List[V]{tree: t, mon: mon}
}

// Len returns the number of elements.
func (l *List[V]) Len() int { return l.tree.Len() }

// At returns the element at index i (O(log n) expected).
func (l *List[V]) At(i int) *Elem[V] { return l.tree.LeafAt(i) }

// Head returns the first element, or nil.
func (l *List[V]) Head() *Elem[V] { return l.tree.Head() }

// Tail returns the last element, or nil.
func (l *List[V]) Tail() *Elem[V] { return l.tree.Tail() }

// Value returns the element's value.
func (l *List[V]) Value(e *Elem[V]) V { return e.Payload() }

// Values returns all values in order.
func (l *List[V]) Values() []V {
	out := make([]V, 0, l.Len())
	for e := l.tree.Head(); e != nil; e = e.Next() {
		out = append(out, e.Payload())
	}
	return out
}

// Total returns the sum over the whole list (exactly maintained; O(1)).
func (l *List[V]) Total() V {
	if l.tree.Root() == nil {
		return l.mon.Identity
	}
	return l.tree.Root().Sum()
}

// PrefixAt returns the inclusive prefix sum at e by the sequential root
// path walk: the sum of every left sibling subtree plus e itself. O(log n)
// expected with one processor.
func (l *List[V]) PrefixAt(e *Elem[V]) V {
	acc := e.Sum()
	for v := e; v.Parent() != nil; v = v.Parent() {
		if v == v.Parent().Right() {
			acc = l.mon.Combine(v.Parent().Left().Sum(), acc)
		}
	}
	return acc
}

// Update sets the value at e and refreshes sums along the root path.
func (l *List[V]) Update(e *Elem[V], v V) { l.tree.UpdateLeaf(e, v) }

// BatchUpdate applies a set of point updates and repairs all sums over the
// parse tree in parallel (Theorem 3.1's update side).
func (l *List[V]) BatchUpdate(m *pram.Machine, elems []*Elem[V], values []V) {
	l.tree.BatchUpdate(m, elems, values)
}

// Insert inserts values immediately after element after (nil = front) and
// returns the new elements.
func (l *List[V]) Insert(m *pram.Machine, after *Elem[V], values []V) []*Elem[V] {
	return l.tree.InsertAfter(m, after, values)
}

// InsertAt inserts values so the first lands at index gap.
func (l *List[V]) InsertAt(m *pram.Machine, gap int, values []V) []*Elem[V] {
	rep := l.tree.BatchInsert(m, []rbsts.InsertOp[V]{{Gap: gap, Payloads: values}})
	return rep.NewLeaves
}

// Delete removes the given elements.
func (l *List[V]) Delete(m *pram.Machine, elems []*Elem[V]) {
	l.tree.BatchDelete(m, elems)
}

// Tree exposes the underlying RBSTS (used by the applications layer).
func (l *List[V]) Tree() *rbsts.Tree[V, V] { return l.tree }

// Validate checks structural invariants (tests only).
func (l *List[V]) Validate() error { return l.tree.Validate() }

// BatchPrefix returns the inclusive prefix sum at every element of elems,
// using the parallel procedure of Theorem 3.1 (activation, Euler tour of
// the extended parse tree, pointer-jumping prefix).
func (l *List[V]) BatchPrefix(m *pram.Machine, elems []*Elem[V]) []V {
	if m == nil {
		m = pram.Sequential()
	}
	out := make([]V, len(elems))
	if len(elems) == 0 || l.tree.Root() == nil {
		return out
	}
	act := l.tree.Activate(m, elems)
	defer act.Release(m)

	// Assemble P̂T(U): activated nodes plus boundary children. Each PAT
	// node gets an index; arcs 2i (enter) and 2i+1 (leave).
	idx := make(map[*Elem[V]]int, 2*len(act.Nodes))
	pat := make([]*Elem[V], 0, 2*len(act.Nodes))
	addNode := func(n *Elem[V]) {
		if _, ok := idx[n]; !ok {
			idx[n] = len(pat)
			pat = append(pat, n)
		}
	}
	for _, n := range act.Nodes {
		addNode(n)
	}
	// Boundary children: non-activated children of activated internals.
	// (One sequential pass; charged as one parallel round.)
	for _, n := range act.Nodes {
		if !n.IsLeaf() {
			if !n.Left().IsActive() {
				addNode(n.Left())
			}
			if !n.Right().IsActive() {
				addNode(n.Right())
			}
		}
	}
	m.Charge(len(pat))

	nArcs := 2 * len(pat)
	succ := make([]int, nArcs)
	value := make([]V, nArcs)
	root := l.tree.Root()
	// One parallel round builds the tour's linked structure: classic O(1)
	// per-node Euler tour successor rules.
	m.Step(len(pat), func(i int) {
		n := pat[i]
		down, up := 2*i, 2*i+1
		isPATLeaf := n.IsLeaf() || !n.IsActive()
		if isPATLeaf {
			value[down] = n.Sum()
			succ[down] = up
		} else {
			value[down] = l.mon.Identity
			succ[down] = 2 * idx[n.Left()]
		}
		value[up] = l.mon.Identity
		if n == root {
			succ[up] = -1
		} else {
			p := n.Parent()
			if n == p.Left() {
				succ[up] = 2 * idx[p.Right()]
			} else {
				succ[up] = 2*idx[p] + 1
			}
		}
	})

	prefix := l.tourPrefix(m, succ, value, 2*idx[root])

	m.Step(len(elems), func(i int) {
		out[i] = prefix[2*idx[elems[i]]]
	})
	return out
}

// tourPrefix computes inclusive prefix sums over the linked list given by
// succ (entry head, -1 terminates) using pointer jumping over predecessor
// links: O(log n) rounds, O(n log n) work.
func (l *List[V]) tourPrefix(m *pram.Machine, succ []int, value []V, head int) []V {
	n := len(succ)
	pred := make([]int, n)
	m.Step(n, func(i int) { pred[i] = -2 })
	m.Step(n, func(i int) {
		if s := succ[i]; s >= 0 {
			pred[s] = i
		}
	})
	m.Step(1, func(int) { pred[head] = -1 })

	val := append([]V(nil), value...)
	jump := pred
	newVal := make([]V, n)
	newJump := make([]int, n)
	for {
		var active int64
		m.Step(n, func(i int) {
			j := jump[i]
			if j >= 0 {
				pram.AddInt64(&active, 1)
				newVal[i] = l.mon.Combine(val[j], val[i])
				newJump[i] = jump[j]
			} else {
				newVal[i] = val[i]
				newJump[i] = j
			}
		})
		if active == 0 {
			break
		}
		val, newVal = newVal, val
		jump, newJump = newJump, jump
	}
	return val
}

// RangeSum returns the sum of values between elements a and b inclusive
// (a must not come after b), via two sequential root-path walks.
func (l *List[V]) RangeSum(a, b *Elem[V]) V {
	ia, ib := a.Index(), b.Index()
	if ia > ib {
		panic("listprefix: RangeSum with reversed range")
	}
	return l.rangeSumIdx(l.tree.Root(), ia, ib)
}

func (l *List[V]) rangeSumIdx(v *Elem[V], lo, hi int) V {
	// Whole subtree covered.
	if lo <= 0 && hi >= v.LeafCount()-1 {
		return v.Sum()
	}
	left := v.Left().LeafCount()
	if hi < left {
		return l.rangeSumIdx(v.Left(), lo, hi)
	}
	if lo >= left {
		return l.rangeSumIdx(v.Right(), lo-left, hi-left)
	}
	return l.mon.Combine(
		l.rangeSumIdx(v.Left(), lo, left-1),
		l.rangeSumIdx(v.Right(), 0, hi-left),
	)
}

// SearchPrefix returns the first element whose inclusive prefix sum
// satisfies pred, assuming pred is monotone along the list (false… then
// true…), or nil if none does. O(log n) expected.
func (l *List[V]) SearchPrefix(pred func(V) bool) *Elem[V] {
	v := l.tree.Root()
	if v == nil {
		return nil
	}
	if !pred(v.Sum()) {
		return nil
	}
	acc := l.mon.Identity
	for !v.IsLeaf() {
		withLeft := l.mon.Combine(acc, v.Left().Sum())
		if pred(withLeft) {
			v = v.Left()
		} else {
			acc = withLeft
			v = v.Right()
		}
	}
	return v
}

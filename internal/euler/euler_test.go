package euler

import (
	"testing"

	"dyntc/internal/prng"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

var testRing = semiring.NewMod(1_000_000_007)

// oracle computes tree properties naively.
type oracle struct {
	pre, post, depth, size map[*tree.Node]int
}

func buildOracle(t *tree.Tree) *oracle {
	o := &oracle{
		pre:   map[*tree.Node]int{},
		post:  map[*tree.Node]int{},
		depth: map[*tree.Node]int{},
		size:  map[*tree.Node]int{},
	}
	preCtr, postCtr := 0, 0
	var walk func(n *tree.Node, d int) int
	walk = func(n *tree.Node, d int) int {
		preCtr++
		o.pre[n] = preCtr
		o.depth[n] = d
		sz := 1
		if !n.IsLeaf() {
			sz += walk(n.Left, d+1) + walk(n.Right, d+1)
		}
		postCtr++
		o.post[n] = postCtr
		o.size[n] = sz
		return sz
	}
	walk(t.Root, 0)
	return o
}

func naiveLCA(u, v *tree.Node) *tree.Node {
	anc := map[*tree.Node]bool{}
	for x := u; x != nil; x = x.Parent {
		anc[x] = true
	}
	for x := v; x != nil; x = x.Parent {
		if anc[x] {
			return x
		}
	}
	return nil
}

func checkAll(t *testing.T, tr *tree.Tree, e *Tour) {
	t.Helper()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	o := buildOracle(tr)
	for _, n := range tr.Nodes {
		if n == nil {
			continue
		}
		if got := e.Preorder(n); got != o.pre[n] {
			t.Fatalf("preorder(%d) = %d, want %d", n.ID, got, o.pre[n])
		}
		if got := e.Postorder(n); got != o.post[n] {
			t.Fatalf("postorder(%d) = %d, want %d", n.ID, got, o.post[n])
		}
		if got := e.Ancestors(n); got != o.depth[n] {
			t.Fatalf("ancestors(%d) = %d, want %d", n.ID, got, o.depth[n])
		}
		if got := e.SubtreeSize(n); got != o.size[n] {
			t.Fatalf("size(%d) = %d, want %d", n.ID, got, o.size[n])
		}
	}
}

func TestStaticProperties(t *testing.T) {
	for _, shape := range []tree.Shape{tree.ShapeRandom, tree.ShapeBalanced, tree.ShapeLeftComb, tree.ShapeRightComb} {
		for _, n := range []int{1, 2, 3, 9, 100} {
			tr := tree.Generate(testRing, prng.New(uint64(5*n+int(shape))), n, shape)
			e := New(tr, uint64(n))
			checkAll(t, tr, e)
		}
	}
}

func TestLCAAllPairs(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(3), 60, tree.ShapeRandom)
	e := New(tr, 5)
	for _, u := range tr.Nodes {
		if u == nil {
			continue
		}
		for _, v := range tr.Nodes {
			if v == nil {
				continue
			}
			if got, want := e.LCA(u, v), naiveLCA(u, v); got != want {
				t.Fatalf("LCA(%d,%d) = %v, want %v", u.ID, v.ID, got.ID, want.ID)
			}
		}
	}
}

func TestSequenceIsEulerTour(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(7), 50, tree.ShapeRandom)
	e := New(tr, 9)
	seq := e.Sequence()
	if len(seq) != 2*tr.Len() {
		t.Fatalf("tour length %d", len(seq))
	}
	if seq[0].Node != tr.Root || !seq[0].Enter {
		t.Fatal("tour does not start by entering the root")
	}
	if seq[len(seq)-1].Node != tr.Root || seq[len(seq)-1].Enter {
		t.Fatal("tour does not end by leaving the root")
	}
	// Consecutive entries must be tree-adjacent moves.
	for i := 0; i+1 < len(seq); i++ {
		a, b := seq[i], seq[i+1]
		ok := false
		switch {
		case a.Enter && b.Enter:
			ok = b.Node.Parent == a.Node && a.Node.Left == b.Node
		case a.Enter && !b.Enter:
			ok = a.Node == b.Node && a.Node.IsLeaf()
		case !a.Enter && b.Enter:
			ok = a.Node.Parent == b.Node.Parent && a.Node.Parent.Right == b.Node
		default:
			ok = a.Node.Parent == b.Node
		}
		if !ok {
			t.Fatalf("tour discontinuity at %d", i)
		}
	}
}

func TestDynamicGrowShrink(t *testing.T) {
	tr := tree.New(testRing, 1)
	e := New(tr, 11)
	src := prng.New(13)
	// Grow randomly, checking properties each step.
	for step := 0; step < 60; step++ {
		leaves := tr.Leaves()
		leaf := leaves[src.Intn(len(leaves))]
		l, r := tr.AddChildren(leaf, semiring.OpAdd(testRing), src.Int63(), src.Int63())
		e.AddChildren(nil, leaf, l, r)
		if step%10 == 0 {
			checkAll(t, tr, e)
		}
	}
	checkAll(t, tr, e)
	// Shrink back down.
	for step := 0; tr.LeafCount() > 1; step++ {
		var cand *tree.Node
		for _, n := range tr.Nodes {
			if n != nil && !n.IsLeaf() && n.Left.IsLeaf() && n.Right.IsLeaf() {
				cand = n
				break
			}
		}
		e.DeleteChildren(nil, cand.Left, cand.Right)
		tr.DeleteChildren(cand, 0)
		if step%10 == 0 {
			checkAll(t, tr, e)
		}
	}
	checkAll(t, tr, e)
}

func TestLCAAfterMutations(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(17), 30, tree.ShapeRandom)
	e := New(tr, 19)
	src := prng.New(23)
	for step := 0; step < 40; step++ {
		leaves := tr.Leaves()
		leaf := leaves[src.Intn(len(leaves))]
		l, r := tr.AddChildren(leaf, semiring.OpAdd(testRing), 1, 2)
		e.AddChildren(nil, leaf, l, r)
		// Check a handful of random pairs.
		var live []*tree.Node
		for _, n := range tr.Nodes {
			if n != nil {
				live = append(live, n)
			}
		}
		for k := 0; k < 10; k++ {
			u := live[src.Intn(len(live))]
			v := live[src.Intn(len(live))]
			if got, want := e.LCA(u, v), naiveLCA(u, v); got != want {
				t.Fatalf("step %d: LCA(%d,%d) = %d, want %d", step, u.ID, v.ID, got.ID, want.ID)
			}
		}
	}
}

func TestBatchPreorder(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(29), 200, tree.ShapeRandom)
	e := New(tr, 31)
	o := buildOracle(tr)
	var qs []*tree.Node
	for _, n := range tr.Nodes {
		if n != nil {
			qs = append(qs, n)
		}
	}
	got := e.BatchPreorder(nil, qs)
	for i, n := range qs {
		if got[i] != o.pre[n] {
			t.Fatalf("batch preorder(%d) = %d, want %d", n.ID, got[i], o.pre[n])
		}
	}
}

func TestIsAncestor(t *testing.T) {
	tr := tree.Generate(testRing, prng.New(37), 80, tree.ShapeRandom)
	e := New(tr, 41)
	for _, u := range tr.Nodes {
		if u == nil {
			continue
		}
		for _, v := range tr.Nodes {
			if v == nil {
				continue
			}
			want := naiveLCA(u, v) == u
			if got := e.IsAncestor(u, v); got != want {
				t.Fatalf("IsAncestor(%d,%d) = %v want %v", u.ID, v.ID, got, want)
			}
		}
	}
}

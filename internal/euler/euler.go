// Package euler maintains the Eulerian tour of a dynamic expression tree
// and the standard tree properties derived from it — applications (a) and
// (b) of Reif & Tate, SPAA'94, §5 (Theorem 5.1: "maintaining the standard
// tree properties (such as preorder, number of ancestors), as well as
// Eulerian tour"), plus least common ancestors (Theorem 5.2).
//
// The tour is a dynamic list over an RBSTS (§2/§3 machinery): every tree
// node contributes an enter entry and an exit entry. The list aggregation
// keeps, per sublist: the number of enter entries, the ±1 depth-delta
// total, and the minimum prefix of depth-deltas with its first witness.
// From these, with O(log n) expected root-path walks:
//
//	preorder(n)  = #enter entries up to enter(n)
//	#ancestors(n) = (±1 prefix at enter(n)) - 1
//	subtree size = (pos(exit(n)) - pos(enter(n)) + 1) / 2
//	LCA(u, v)    = witness of the minimum depth prefix on [enter(u), enter(v)]
//
// Structural tree mutations translate to inserting or deleting four
// adjacent tour entries — exactly the dynamic-list updates of Theorem 2.3,
// so every bound carries over.
package euler

import (
	"fmt"

	"dyntc/internal/pram"
	"dyntc/internal/rbsts"
	"dyntc/internal/tree"
)

// Entry is one tour event: entering or leaving a node. Entry values are
// allocated once and stable; Self points back at the list leaf holding the
// entry (valid across rebuilds because leaf objects are stable).
type Entry struct {
	Node  *tree.Node
	Enter bool
	Self  *rbsts.Node[*Entry, Sum]
}

// Sum is the tour aggregation: Ent counts enter entries, Total sums the ±1
// depth deltas, MinPref is the minimum over nonempty prefixes of the
// segment's deltas, and Arg is the first entry attaining it.
type Sum struct {
	Ent     int
	Total   int
	MinPref int
	Arg     *Entry
}

func leafSum(e *Entry) Sum {
	if e.Enter {
		return Sum{Ent: 1, Total: 1, MinPref: 1, Arg: e}
	}
	return Sum{Ent: 0, Total: -1, MinPref: -1, Arg: e}
}

func mergeSum(a, b Sum) Sum {
	out := Sum{
		Ent:   a.Ent + b.Ent,
		Total: a.Total + b.Total,
	}
	if a.MinPref <= a.Total+b.MinPref {
		out.MinPref = a.MinPref
		out.Arg = a.Arg
	} else {
		out.MinPref = a.Total + b.MinPref
		out.Arg = b.Arg
	}
	return out
}

// Tour is the maintained Eulerian tour.
type Tour struct {
	t    *tree.Tree
	list *rbsts.Tree[*Entry, Sum]
	ent  map[*tree.Node]*Entry // enter entry of each node
	ext  map[*tree.Node]*Entry // exit entry of each node
}

// New builds the tour of the given tree.
func New(t *tree.Tree, seed uint64) *Tour {
	e := &Tour{
		t:   t,
		ent: make(map[*tree.Node]*Entry),
		ext: make(map[*tree.Node]*Entry),
	}
	var entries []*Entry
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		in := &Entry{Node: n, Enter: true}
		out := &Entry{Node: n, Enter: false}
		e.ent[n], e.ext[n] = in, out
		entries = append(entries, in)
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
		}
		entries = append(entries, out)
	}
	walk(t.Root)
	e.list = rbsts.New[*Entry, Sum](seed, leafSum, mergeSum, entries)
	for l := e.list.Head(); l != nil; l = l.Next() {
		l.Payload().Self = l
	}
	return e
}

// Len returns the number of tour entries (2 × nodes).
func (e *Tour) Len() int { return e.list.Len() }

// Sequence returns the Eulerian tour as the ordered node-visit list (the
// paper's Eulerian tour query).
func (e *Tour) Sequence() []*Entry {
	out := make([]*Entry, 0, e.list.Len())
	for l := e.list.Head(); l != nil; l = l.Next() {
		out = append(out, l.Payload())
	}
	return out
}

// AddChildren records that leaf n grew children l and r (call after
// tree.AddChildren): four entries are spliced between enter(n) and exit(n).
func (e *Tour) AddChildren(m *pram.Machine, n, l, r *tree.Node) {
	el := &Entry{Node: l, Enter: true}
	xl := &Entry{Node: l, Enter: false}
	er := &Entry{Node: r, Enter: true}
	xr := &Entry{Node: r, Enter: false}
	leaves := e.list.InsertAfter(m, e.ent[n].Self, []*Entry{el, xl, er, xr})
	for i, en := range []*Entry{el, xl, er, xr} {
		en.Self = leaves[i]
	}
	e.ent[l], e.ext[l] = el, xl
	e.ent[r], e.ext[r] = er, xr
}

// DeleteChildren records that the leaf children l and r of a node were
// deleted (call around tree.DeleteChildren).
func (e *Tour) DeleteChildren(m *pram.Machine, l, r *tree.Node) {
	e.list.BatchDelete(m, []*rbsts.Node[*Entry, Sum]{
		e.ent[l].Self, e.ext[l].Self, e.ent[r].Self, e.ext[r].Self,
	})
	delete(e.ent, l)
	delete(e.ext, l)
	delete(e.ent, r)
	delete(e.ext, r)
}

// position returns the entry's index in the tour.
func (e *Tour) position(en *Entry) int { return en.Self.Index() }

// prefix returns the aggregation over entries [0..en], inclusive, via a
// root-path walk (O(log n) expected).
func (e *Tour) prefix(en *Entry) Sum {
	acc := en.Self.Sum()
	for v := en.Self; v.Parent() != nil; v = v.Parent() {
		if v == v.Parent().Right() {
			acc = mergeSum(v.Parent().Left().Sum(), acc)
		}
	}
	return acc
}

// Preorder returns n's 1-based preorder number.
func (e *Tour) Preorder(n *tree.Node) int { return e.prefix(e.ent[n]).Ent }

// Postorder returns n's 1-based postorder number: exit entries up to
// exit(n).
func (e *Tour) Postorder(n *tree.Node) int {
	p := e.prefix(e.ext[n])
	return e.position(e.ext[n]) + 1 - p.Ent
}

// Ancestors returns the number of proper ancestors of n (= its depth).
func (e *Tour) Ancestors(n *tree.Node) int { return e.prefix(e.ent[n]).Total - 1 }

// SubtreeSize returns the number of nodes in n's subtree.
func (e *Tour) SubtreeSize(n *tree.Node) int {
	return (e.position(e.ext[n]) - e.position(e.ent[n]) + 1) / 2
}

// IsAncestor reports whether a is an ancestor of b (inclusive).
func (e *Tour) IsAncestor(a, b *tree.Node) bool {
	return e.position(e.ent[a]) <= e.position(e.ent[b]) &&
		e.position(e.ext[b]) <= e.position(e.ext[a])
}

// LCA returns the least common ancestor of u and v (Theorem 5.2) via the
// minimum depth-prefix witness on the tour range [enter(u), enter(v)].
func (e *Tour) LCA(u, v *tree.Node) *tree.Node {
	if u == v {
		return u
	}
	iu, iv := e.position(e.ent[u]), e.position(e.ent[v])
	if iu > iv {
		u, v = v, u
		iu, iv = iv, iu
	}
	if e.IsAncestor(u, v) {
		return u
	}
	s := e.rangeSum(iu, iv)
	arg := s.Arg
	if arg.Enter {
		return arg.Node
	}
	return arg.Node.Parent
}

// rangeSum folds the aggregation over entry indices [lo, hi].
func (e *Tour) rangeSum(lo, hi int) Sum {
	if lo > hi {
		panic(fmt.Sprintf("euler: bad range [%d,%d]", lo, hi))
	}
	var acc Sum
	first := true
	var rec func(v *rbsts.Node[*Entry, Sum], lo, hi int)
	rec = func(v *rbsts.Node[*Entry, Sum], lo, hi int) {
		if lo <= 0 && hi >= v.LeafCount()-1 {
			if first {
				acc, first = v.Sum(), false
			} else {
				acc = mergeSum(acc, v.Sum())
			}
			return
		}
		left := v.Left().LeafCount()
		if hi < left {
			rec(v.Left(), lo, hi)
			return
		}
		if lo >= left {
			rec(v.Right(), lo-left, hi-left)
			return
		}
		rec(v.Left(), lo, left-1)
		rec(v.Right(), 0, hi-left)
	}
	rec(e.list.Root(), lo, hi)
	return acc
}

// BatchPreorder answers preorder queries for a set of nodes; the underlying
// parse-tree activation is exercised through the shared list machinery.
func (e *Tour) BatchPreorder(m *pram.Machine, nodes []*tree.Node) []int {
	if m == nil {
		m = pram.Sequential()
	}
	out := make([]int, len(nodes))
	var span int64
	for i, n := range nodes {
		out[i] = e.Preorder(n)
		if d := int64(e.ent[n].Self.Depth()); d > span {
			span = d
		}
	}
	m.ChargeSpan(span, int64(len(nodes))*span, int64(len(nodes)))
	return out
}

// Validate checks tour invariants against the tree (tests).
func (e *Tour) Validate() error {
	if err := e.list.Validate(); err != nil {
		return err
	}
	if e.list.Len() != 2*e.t.Len() {
		return fmt.Errorf("euler: %d entries for %d nodes", e.list.Len(), e.t.Len())
	}
	depth := 0
	for l := e.list.Head(); l != nil; l = l.Next() {
		en := l.Payload()
		if en.Self != l {
			return fmt.Errorf("euler: stale Self pointer at %v", en.Node.ID)
		}
		if en.Enter {
			depth++
		} else {
			depth--
		}
		if depth < 0 {
			return fmt.Errorf("euler: unbalanced tour")
		}
	}
	if depth != 0 {
		return fmt.Errorf("euler: tour does not close")
	}
	return nil
}

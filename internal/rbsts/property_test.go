package rbsts

// Property-based and failure-injection tests complementing rbsts_test.go.

import (
	"testing"
	"testing/quick"

	"dyntc/internal/pram"
	"dyntc/internal/prng"
)

// TestQuickActivationClosure: for arbitrary (n, U) the activation marks
// exactly the ancestor closure and releases cleanly.
func TestQuickActivationClosure(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := 1 + int(seed%300)
		tr := newIntTree(seed, n)
		u := 1 + src.Intn(min(n, 20))
		var leaves []*Node[int64, int64]
		seen := map[int]bool{}
		for len(leaves) < u {
			i := src.Intn(n)
			if !seen[i] {
				seen[i] = true
				leaves = append(leaves, tr.LeafAt(i))
			}
		}
		m := pram.Sequential()
		act := tr.Activate(m, leaves)
		want := ancestorClosure(leaves)
		if len(act.Nodes) != len(want) {
			return false
		}
		for _, nd := range act.Nodes {
			if !want[nd] {
				return false
			}
		}
		act.Release(m)
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertOrderPreserved: arbitrary interleavings of gap insertions
// keep payloads in the order a slice model predicts.
func TestQuickInsertOrderPreserved(t *testing.T) {
	f := func(seed uint64, gapsRaw []uint8) bool {
		if len(gapsRaw) == 0 || len(gapsRaw) > 24 {
			return true
		}
		tr := newIntTree(seed, 4)
		model := []int64{0, 1, 2, 3}
		for i, g := range gapsRaw {
			gap := int(g) % (tr.Len() + 1)
			val := int64(1000 + i)
			tr.BatchInsert(nil, []InsertOp[int64]{{Gap: gap, Payloads: []int64{val}}})
			model = append(model[:gap], append([]int64{val}, model[gap:]...)...)
		}
		got := payloadsOf(tr)
		if len(got) != len(model) {
			return false
		}
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestGapNodeIsLCAAfterChurn: the gap↔node correspondence (which the
// contraction schedule depends on) survives arbitrary mutation sequences.
// Validate() already checks it; this test adds churn with larger batches.
func TestGapNodeIsLCAAfterChurn(t *testing.T) {
	src := prng.New(404)
	tr := newIntTree(405, 64)
	for step := 0; step < 60; step++ {
		var ops []InsertOp[int64]
		for i := 0; i < 1+src.Intn(4); i++ {
			ops = append(ops, InsertOp[int64]{Gap: src.Intn(tr.Len() + 1), Payloads: []int64{int64(step)}})
		}
		tr.BatchInsert(nil, ops)
		k := 1 + src.Intn(min(5, tr.Len()-1))
		tr.BatchDelete(nil, pickDistinct(src, tr, k))
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func pickDistinct(src *prng.Source, tr *Tree[int64, int64], k int) []*Node[int64, int64] {
	seen := map[int]bool{}
	var out []*Node[int64, int64]
	for len(out) < k {
		i := src.Intn(tr.Len())
		if !seen[i] {
			seen[i] = true
			out = append(out, tr.LeafAt(i))
		}
	}
	return out
}

// TestValidateCatchesCorruption injects targeted corruption and checks the
// validator reports each kind.
func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Tree[int64, int64] { return newIntTree(1, 32) }

	t.Run("leaf-count", func(t *testing.T) {
		tr := mk()
		tr.root.leaves++
		if tr.Validate() == nil {
			t.Fatal("corrupted leaf count not detected")
		}
	})
	t.Run("height", func(t *testing.T) {
		tr := mk()
		tr.root.height += 3
		if tr.Validate() == nil {
			t.Fatal("corrupted height not detected")
		}
	})
	t.Run("depth", func(t *testing.T) {
		tr := mk()
		tr.root.left.depth = 7
		if tr.Validate() == nil {
			t.Fatal("corrupted depth not detected")
		}
	})
	t.Run("active-leak", func(t *testing.T) {
		tr := mk()
		tr.root.left.active = 1
		if tr.Validate() == nil {
			t.Fatal("leaked ACTIVE flag not detected")
		}
	})
	t.Run("list-links", func(t *testing.T) {
		tr := mk()
		h := tr.Head()
		h.next, h.next.prev = h.next.next, nil
		if tr.Validate() == nil {
			t.Fatal("broken leaf list not detected")
		}
	})
	t.Run("gap-node", func(t *testing.T) {
		tr := mk()
		tr.Head().gapNode = tr.root
		if tr.Validate() == nil {
			t.Fatal("bad gap node not detected")
		}
	})
	t.Run("shortcut-target", func(t *testing.T) {
		tr := mk()
		// Find a node with shortcuts and corrupt one entry.
		var victim *Node[int64, int64]
		var walk func(v *Node[int64, int64])
		walk = func(v *Node[int64, int64]) {
			if victim != nil || v == nil {
				return
			}
			if len(v.shortcuts) > 1 {
				victim = v
				return
			}
			if !v.IsLeaf() {
				walk(v.left)
				walk(v.right)
			}
		}
		walk(tr.root)
		if victim == nil {
			t.Skip("tree too small for shortcuts")
		}
		victim.shortcuts[len(victim.shortcuts)-1] = victim
		if tr.Validate() == nil {
			t.Fatal("corrupted shortcut not detected")
		}
	})
}

// TestActivationProcessorBound: Theorem 2.1's processor count stays within
// a constant factor of |U|·log n / log(|U|·log n).
func TestActivationProcessorBound(t *testing.T) {
	tr := newIntTree(17, 1<<15)
	src := prng.New(19)
	for _, u := range []int{1, 8, 64} {
		leaves := pickDistinct(src, tr, u)
		m := pram.Sequential()
		act := tr.Activate(m, leaves)
		act.Release(m)
		// Generous constant: procs ≤ 4·|PT(U)|/cutoff + |U| bound proxy.
		if act.Procs > 4*len(act.Nodes) {
			t.Fatalf("|U|=%d: %d processors for %d parse-tree nodes", u, act.Procs, len(act.Nodes))
		}
	}
}

// TestAggregationAcrossRebuilds: sums survive mixed batch churn exactly.
func TestAggregationAcrossRebuilds(t *testing.T) {
	src := prng.New(55)
	tr := newIntTree(56, 100)
	for step := 0; step < 80; step++ {
		tr.BatchInsert(nil, []InsertOp[int64]{{Gap: src.Intn(tr.Len() + 1), Payloads: []int64{src.Int63() % 1000}}})
		if src.Intn(2) == 0 {
			tr.BatchDelete(nil, pickDistinct(src, tr, 1))
		}
		if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
			t.Fatalf("step %d: sum %d want %d", step, got, want)
		}
	}
}

package rbsts

import (
	"fmt"
	"sort"

	"dyntc/internal/pram"
)

// InsertOp requests insertion of Payloads (in order) at gap Gap: the new
// leaves end up immediately before the leaf currently at index Gap, with
// Gap == Len() meaning "after the last leaf". Gap indices in one batch all
// refer to the tree state before the batch.
type InsertOp[P any] struct {
	Gap      int
	Payloads []P
}

// Report summarizes a batch mutation: which subtrees were rebuilt (their
// new roots) and how many leaves those rebuilds touched. The dynamic
// contraction layer uses Rebuilt to locate its wound.
type Report[P, S any] struct {
	// Rebuilt holds the roots of freshly rebuilt subtrees (after the
	// mutation; internal nodes inside them are new objects).
	Rebuilt []*Node[P, S]
	// RebuildLeaves is the total leaf count over all rebuilt subtrees —
	// the paper's random variable S of Theorem 2.2, whose expectation is
	// O(|U| log n).
	RebuildLeaves int
	// FullRebuild reports that the entire tree was rebuilt (threshold
	// drift or emptied tree).
	FullRebuild bool
	// NewLeaves holds the leaf nodes created for inserted payloads, in
	// batch order (ops[0].Payloads[0], ops[0].Payloads[1], ...). Empty for
	// deletions.
	NewLeaves []*Node[P, S]
	// HeightChanged holds the surviving ancestors (outside any rebuilt
	// subtree) whose height changed when metadata was refreshed up the root
	// paths. Their gaps keep their old gap leaves but fire at a new round,
	// so the contraction layer must reschedule exactly these records.
	HeightChanged []*Node[P, S]
	// GapRelinked holds surviving internal nodes whose gapLeaf pointer was
	// repointed to a different leaf object (the leaf just left of a rebuilt
	// span was removed or replaced). Their records change raked leaf.
	GapRelinked []*Node[P, S]
}

// pendingItem is one payload waiting to be spliced into a rebuild, at gap
// index gap relative to the plan subtree's original leaves; seq is the
// item's position in batch order and doubles as the within-gap tiebreak.
type pendingItem[P any] struct {
	gap     int
	seq     int
	payload P
}

// rebuildPlan is a scheduled randomized rebuild of the subtree rooted at
// node, with items to splice in and/or leaves to remove.
//
// pinSeq implements the paper's insertion rebuild exactly: "build a new
// RBSTS with root w and subtrees containing the leaves (v1,...,vk) and
// (z, vk+1,...,vn)" — the new root's split is PINNED at the inserted
// item's position rather than drawn fresh. Pinning is what makes the
// 1/m-coin walk produce exactly the uniform split distribution: the
// structural descent realizes every new split value except the insertion
// gap itself, and the pinned rebuild supplies that one missing value with
// the complementary probability. (A fresh random split here would
// re-randomize an already-conditioned choice and bias splits away from
// the insertion gap; the chi-square tests in distribution_test.go catch
// this.) pinSeq < 0 means no pin (deletion-triggered plans re-randomize a
// deterministically chosen region, which is exact as-is).
type rebuildPlan[P, S any] struct {
	node     *Node[P, S]
	items    []pendingItem[P]
	removals map[*Node[P, S]]bool
	dead     bool // subsumed into an ancestor plan
	pinSeq   int  // seq of the split-pinning item, or -1
}

// planner accumulates rebuild plans for one batch.
type planner[P, S any] struct {
	tree     *Tree[P, S]
	plans    []*rebuildPlan[P, S]
	byNod    map[*Node[P, S]]*rebuildPlan[P, S]
	newBySeq []*Node[P, S] // inserted leaf per batch sequence number
}

func newPlanner[P, S any](t *Tree[P, S], items int) *planner[P, S] {
	return &planner[P, S]{
		tree:     t,
		byNod:    make(map[*Node[P, S]]*rebuildPlan[P, S]),
		newBySeq: make([]*Node[P, S], items),
	}
}

// origLeafOffset returns the number of original leaves of v lying strictly
// left of d's subtree (v must be an ancestor of d).
func origLeafOffset[P, S any](d, v *Node[P, S]) int {
	off := 0
	for c := d; c != v; c = c.parent {
		if c == c.parent.right {
			off += c.parent.left.leaves
		}
	}
	return off
}

// planAt returns the plan rooted at node, creating it if needed, and in
// either case subsumes plans strictly inside node's subtree: a fresh
// rebuild of the larger subtree re-draws all interior randomness, so
// folding nested plans in keeps the distribution exact.
func (pl *planner[P, S]) planAt(node *Node[P, S]) *rebuildPlan[P, S] {
	p, ok := pl.byNod[node]
	if !ok {
		p = &rebuildPlan[P, S]{node: node, removals: make(map[*Node[P, S]]bool), pinSeq: -1}
		pl.plans = append(pl.plans, p)
		pl.byNod[node] = p
	}
	for _, q := range pl.plans {
		if q == p || q.dead {
			continue
		}
		if node.isAncestorOf(q.node) {
			off := origLeafOffset(q.node, node)
			for _, it := range q.items {
				it.gap += off
				p.items = append(p.items, it)
			}
			for z := range q.removals {
				p.removals[z] = true
			}
			q.dead = true
			delete(pl.byNod, q.node)
		}
	}
	return p
}

// markedAncestor returns the live plan at the closest marked ancestor of v
// (possibly v itself), or nil.
func (pl *planner[P, S]) markedAncestor(v *Node[P, S]) *rebuildPlan[P, S] {
	for a := v; a != nil; a = a.parent {
		if p, ok := pl.byNod[a]; ok && !p.dead {
			return p
		}
	}
	return nil
}

// liftIfEmpty escalates a plan to its parent while the plan would empty its
// subtree entirely (a full binary tree cannot host an empty child). The
// larger fresh rebuild remains distribution-exact. It returns the surviving
// plan.
func (pl *planner[P, S]) liftIfEmpty(p *rebuildPlan[P, S]) *rebuildPlan[P, S] {
	for !p.dead && p.node.parent != nil &&
		len(p.removals) >= p.node.leaves && len(p.items) == 0 {
		p = pl.planAt(p.node.parent)
	}
	return p
}

// BatchInsert inserts a set of payloads at the given gaps (Theorem 2.2).
// Each inserted leaf walks (logically) down from the root; at a subtree of
// effective size m the walk triggers a rebuild of that subtree with
// probability 1/m, which preserves the random-split distribution exactly
// (the split value a structural descent cannot produce is exactly the one
// the rebuild realizes). Walks stopping inside an already-scheduled rebuild
// simply join it: the fresh rebuild of the final content dominates any
// interior randomness.
func (t *Tree[P, S]) BatchInsert(m *pram.Machine, ops []InsertOp[P]) Report[P, S] {
	if m == nil {
		m = pram.Sequential()
	}
	var rep Report[P, S]
	total := 0
	base := make([]int, len(ops))
	for i, op := range ops {
		if op.Gap < 0 || op.Gap > t.count {
			panic(fmt.Sprintf("rbsts: insert gap %d out of range [0,%d]", op.Gap, t.count))
		}
		base[i] = total
		total += len(op.Payloads)
	}
	if total == 0 {
		return rep
	}
	sorted := make([]int, len(ops))
	for i := range sorted {
		sorted[i] = i
	}
	sort.SliceStable(sorted, func(a, b int) bool { return ops[sorted[a]].Gap < ops[sorted[b]].Gap })

	// Empty tree: build everything fresh.
	if t.count == 0 {
		newBySeq := make([]*Node[P, S], total)
		leaves := make([]*Node[P, S], 0, total)
		for _, oi := range sorted {
			for j, p := range ops[oi].Payloads {
				l := &Node[P, S]{leaves: 1, payload: p}
				if t.leafFn != nil {
					l.sum = t.leafFn(p)
				}
				newBySeq[base[oi]+j] = l
				leaves = append(leaves, l)
			}
		}
		t.rebuildAll(leaves)
		rep.Rebuilt = []*Node[P, S]{t.root}
		rep.RebuildLeaves = len(leaves)
		rep.FullRebuild = true
		rep.NewLeaves = newBySeq
		return rep
	}

	pl := newPlanner(t, total)
	pending := make(map[*Node[P, S]]int)
	var walkSpan, walkWork int64
	for _, oi := range sorted {
		op := ops[oi]
		for j, payload := range op.Payloads {
			seq := base[oi] + j
			v := t.root
			gRel := op.Gap
			var path []*Node[P, S]
			var steps int64
			for {
				steps++
				if p, ok := pl.byNod[v]; ok && !p.dead {
					p.items = append(p.items, pendingItem[P]{gap: gRel, seq: seq, payload: payload})
					break
				}
				mEff := v.leaves + pending[v]
				if v.IsLeaf() || t.src.Bernoulli(1, mEff) {
					created := pl.byNod[v] == nil
					p := pl.planAt(v)
					if created {
						// This item's position pins the new root split
						// (the paper's insertion rebuild; see rebuildPlan).
						p.pinSeq = seq
					}
					p.items = append(p.items, pendingItem[P]{gap: gRel, seq: seq, payload: payload})
					break
				}
				path = append(path, v)
				if gRel <= v.left.leaves {
					v = v.left
				} else {
					gRel -= v.left.leaves
					v = v.right
				}
			}
			for _, n := range path {
				pending[n]++
			}
			pending[v]++
			walkWork += steps
			if steps > walkSpan {
				walkSpan = steps
			}
		}
	}
	// The walks correspond to the parallel decision phase: activation of
	// the insertion paths plus one coin round per level.
	m.ChargeSpan(walkSpan, walkWork, int64(total))

	t.executePlans(m, pl, &rep)
	rep.NewLeaves = pl.newBySeq
	t.maybeRethreshold(&rep)
	return rep
}

// BatchDelete removes the given leaves (Theorem 2.3 / §2 "deletions can be
// handled similarly"). For each deleted leaf z the rebuild site is the
// higher of z's two adjacent-gap ancestors (for boundary leaves, the
// parent): rebuilding that subtree without z refreshes exactly the gaps
// whose priorities the treap-equivalent view requires re-randomized, so the
// random-split distribution is preserved exactly. Expected rebuild size is
// O(log n) per deleted leaf.
func (t *Tree[P, S]) BatchDelete(m *pram.Machine, leaves []*Node[P, S]) Report[P, S] {
	if m == nil {
		m = pram.Sequential()
	}
	var rep Report[P, S]
	if len(leaves) == 0 {
		return rep
	}
	seen := make(map[*Node[P, S]]bool, len(leaves))
	pl := newPlanner(t, 0)
	var walkSpan, walkWork int64
	for _, z := range leaves {
		if z == nil || !z.IsLeaf() || seen[z] {
			continue
		}
		seen[z] = true
		if z.parent == nil {
			// Deleting the only leaf empties the tree.
			t.rebuildAll(nil)
			rep.FullRebuild = true
			return rep
		}
		// Join an enclosing scheduled rebuild when one exists.
		if p := pl.markedAncestor(z); p != nil {
			p.removals[z] = true
			pl.liftIfEmpty(p)
			continue
		}
		v := z.parent
		var other *Node[P, S]
		if z == z.parent.left {
			if z.prev != nil {
				other = z.prev.gapNode
			}
		} else {
			other = z.gapNode
		}
		if other != nil && other.depth < v.depth {
			v = other
		}
		walkWork += int64(z.depth-v.depth) + 1
		if int64(z.depth-v.depth) > walkSpan {
			walkSpan = int64(z.depth - v.depth)
		}
		p := pl.planAt(v)
		p.removals[z] = true
		pl.liftIfEmpty(p)
	}
	m.ChargeSpan(walkSpan+1, walkWork, int64(len(seen)))

	// A plan that empties the whole tree.
	for _, p := range pl.plans {
		if !p.dead && p.node == t.root && len(p.removals) == t.count && len(p.items) == 0 {
			t.rebuildAll(nil)
			rep.FullRebuild = true
			return rep
		}
	}
	t.executePlans(m, pl, &rep)
	t.maybeRethreshold(&rep)
	return rep
}

// executePlans runs every surviving rebuild plan: collect the subtree's
// leaves, drop removals, splice insertions, rebuild fresh, reattach, and
// refresh metadata up the root path. Plans are disjoint subtrees, so the
// execution order only matters for RNG determinism (creation order).
func (t *Tree[P, S]) executePlans(m *pram.Machine, pl *planner[P, S], rep *Report[P, S]) {
	var rebuildWork int64
	var rebuildSpan int64
	for _, p := range pl.plans {
		if p.dead {
			continue
		}
		node := p.node
		// Collect original leaves of the subtree, left to right, via the
		// leaf list between the subtree's extreme leaves.
		first := node
		for !first.IsLeaf() {
			first = first.left
		}
		last := node
		for !last.IsLeaf() {
			last = last.right
		}
		orig := make([]*Node[P, S], 0, node.leaves)
		for l := first; ; l = l.next {
			orig = append(orig, l)
			if l == last {
				break
			}
		}
		before, after := first.prev, last.next
		outerGap := last.gapNode // gap to the right of the subtree's span

		// Splice: walk gaps 0..len(orig), emitting pending items and
		// surviving originals in order.
		items := p.items
		sort.SliceStable(items, func(a, b int) bool {
			if items[a].gap != items[b].gap {
				return items[a].gap < items[b].gap
			}
			return items[a].seq < items[b].seq
		})
		merged := make([]*Node[P, S], 0, len(orig)+len(items))
		pinPos := -1
		ii := 0
		for gap := 0; gap <= len(orig); gap++ {
			for ii < len(items) && items[ii].gap == gap {
				l := &Node[P, S]{leaves: 1, payload: items[ii].payload}
				if t.leafFn != nil {
					l.sum = t.leafFn(items[ii].payload)
				}
				pl.newBySeq[items[ii].seq] = l
				if items[ii].seq == p.pinSeq {
					pinPos = len(merged)
				}
				merged = append(merged, l)
				ii++
			}
			if gap < len(orig) && !p.removals[orig[gap]] {
				merged = append(merged, orig[gap])
			}
		}
		// Detach removed leaves for hygiene.
		for z := range p.removals {
			z.next, z.prev, z.parent, z.gapNode = nil, nil, nil, nil
		}
		if len(merged) == 0 {
			panic("rbsts: internal error: plan emptied a subtree (lift failed)")
		}

		parent := node.parent
		wasLeft := parent != nil && parent.left == node
		var fresh *Node[P, S]
		if pinPos >= 0 && len(merged) > 1 {
			// Pinned insertion rebuild: the new root separates the pinned
			// item at its gap (split = pinPos, or 1 when the item is the
			// leftmost leaf); both sides are fresh random subtrees.
			split := pinPos
			if split == 0 {
				split = 1
			}
			fresh = t.buildSubtreeSplit(merged, node.depth, split)
		} else {
			fresh = t.buildSubtree(merged, node.depth)
		}
		if parent == nil {
			t.root = fresh
			fresh.parent = nil
		} else if wasLeft {
			parent.left = fresh
			fresh.parent = parent
		} else {
			parent.right = fresh
			fresh.parent = parent
		}
		t.relink(merged, before, after)
		newLast := merged[len(merged)-1]
		newLast.gapNode = outerGap
		if outerGap != nil {
			if outerGap.gapLeaf != newLast {
				rep.GapRelinked = append(rep.GapRelinked, outerGap)
			}
			outerGap.gapLeaf = newLast
		}
		t.count += len(merged) - len(orig)
		rep.HeightChanged = append(rep.HeightChanged, t.recomputeUpDiff(fresh)...)
		stack := t.ancestorStack(fresh)
		t.assignShortcuts(fresh, stack)
		// Ancestors whose height just crossed the shortcut threshold
		// (because the subtree below grew) must gain shortcut lists now so
		// the activation invariant — every node at or above τ in height
		// carries shortcuts — keeps holding between full rebuilds.
		for _, a := range stack {
			if a.height >= t.shortcutMinHeight && a.depth > 0 && a.shortcuts == nil {
				depths := shortcutDepths(a.depth)
				sc := make([]*Node[P, S], len(depths))
				for i, d := range depths {
					sc[i] = stack[d]
				}
				a.shortcuts = sc
			}
		}
		t.rebuildEpoch++

		rep.Rebuilt = append(rep.Rebuilt, fresh)
		rep.RebuildLeaves += len(merged)
		rebuildWork += int64(2 * len(merged))
		if s := int64(fresh.height) + 1; s > rebuildSpan {
			rebuildSpan = s
		}
	}
	// Rebuild cost in the PRAM model (Lemma 2.1): O(log S) span, O(S) work.
	if rebuildWork > 0 {
		m.ChargeSpan(rebuildSpan, rebuildWork, rebuildWork/2+1)
	}
}

// maybeRethreshold rebuilds the whole tree when log₂log₂ n has drifted a
// full unit away from the stored shortcut threshold τ. The paper's relaxed
// condition (§2: shortcuts required at subtree depth ≥ 2·log log n, only
// forbidden below ½·log log n) tolerates a wide band, and the paper notes a
// tree whose size moved that much "will be entirely rebuilt with high
// probability" anyway. The hysteresis also prevents thrashing when n sits
// exactly on a ⌈log₂log₂ n⌉ boundary (e.g. 2^16 ± 1).
func (t *Tree[P, S]) maybeRethreshold(rep *Report[P, S]) {
	if t.count == 0 {
		return
	}
	x := logLog2(t.count)
	tau := float64(t.shortcutMinHeight)
	if x < tau+1 && x > tau-1.5 {
		return
	}
	t.rebuildAll(t.Leaves())
	rep.Rebuilt = []*Node[P, S]{t.root}
	rep.RebuildLeaves = t.count
	rep.FullRebuild = true
}

// InsertAfter inserts payloads immediately after the given leaf (or at the
// very front when after is nil), returning the new leaves in order.
func (t *Tree[P, S]) InsertAfter(m *pram.Machine, after *Node[P, S], payloads []P) []*Node[P, S] {
	gap := 0
	if after != nil {
		gap = after.Index() + 1
	}
	rep := t.BatchInsert(m, []InsertOp[P]{{Gap: gap, Payloads: payloads}})
	return rep.NewLeaves
}

// Delete removes a single leaf.
func (t *Tree[P, S]) Delete(m *pram.Machine, leaf *Node[P, S]) {
	t.BatchDelete(m, []*Node[P, S]{leaf})
}

package rbsts

import (
	"fmt"
	"math"

	"dyntc/internal/pram"
	"dyntc/internal/prng"
)

// Tree is a random binary splitting tree with shortcuts over a sequence of
// leaves with payloads of type P, optionally aggregated into summaries of
// type S by a monoid (leaf, merge) pair. The zero value is not usable; use
// New.
//
// Tree is not safe for concurrent mutation; batch operations internally use
// goroutine parallelism through the pram.Machine they are given.
type Tree[P, S any] struct {
	root *Node[P, S]
	src  *prng.Source

	// leafFn/mergeFn implement the optional aggregation monoid. Both nil
	// means no aggregation is maintained.
	leafFn  func(P) S
	mergeFn func(S, S) S

	// shortcutMinHeight is the height threshold τ ≈ log₂log₂ n above which
	// nodes carry shortcut lists (§2's "height greater than log log n").
	shortcutMinHeight int

	head, tail *Node[P, S]
	count      int

	// rebuildEpoch increments every time any subtree is rebuilt; used by
	// clients to detect staleness and by tests.
	rebuildEpoch int64
}

// New builds a fresh RBSTS over the given payloads (Lemma 2.1). leaf and
// merge may both be nil for an unaggregated tree. The build draws all
// randomness from seed.
func New[P, S any](seed uint64, leaf func(P) S, merge func(S, S) S, payloads []P) *Tree[P, S] {
	if (leaf == nil) != (merge == nil) {
		panic("rbsts: leaf and merge aggregation functions must be both set or both nil")
	}
	t := &Tree[P, S]{
		src:     prng.New(seed),
		leafFn:  leaf,
		mergeFn: merge,
	}
	leavesN := make([]*Node[P, S], len(payloads))
	for i, p := range payloads {
		leavesN[i] = &Node[P, S]{leaves: 1, payload: p}
		if t.leafFn != nil {
			leavesN[i].sum = t.leafFn(p)
		}
	}
	t.rebuildAll(leavesN)
	return t
}

// Root returns the root node (nil for an empty tree).
func (t *Tree[P, S]) Root() *Node[P, S] { return t.root }

// Len returns the number of leaves.
func (t *Tree[P, S]) Len() int { return t.count }

// Head returns the first leaf (nil when empty).
func (t *Tree[P, S]) Head() *Node[P, S] { return t.head }

// Tail returns the last leaf (nil when empty).
func (t *Tree[P, S]) Tail() *Node[P, S] { return t.tail }

// RebuildEpoch returns a counter incremented on every subtree rebuild.
func (t *Tree[P, S]) RebuildEpoch() int64 { return t.rebuildEpoch }

// ShortcutMinHeight returns the current shortcut threshold τ.
func (t *Tree[P, S]) ShortcutMinHeight() int { return t.shortcutMinHeight }

// Leaves returns all leaves in order.
func (t *Tree[P, S]) Leaves() []*Node[P, S] {
	out := make([]*Node[P, S], 0, t.count)
	for l := t.head; l != nil; l = l.next {
		out = append(out, l)
	}
	return out
}

// LeafAt returns the leaf at position i, descending by subtree counts in
// O(depth) time.
func (t *Tree[P, S]) LeafAt(i int) *Node[P, S] {
	if i < 0 || i >= t.count {
		panic(fmt.Sprintf("rbsts: LeafAt(%d) out of range [0,%d)", i, t.count))
	}
	v := t.root
	for !v.IsLeaf() {
		if i < v.left.leaves {
			v = v.left
		} else {
			i -= v.left.leaves
			v = v.right
		}
	}
	return v
}

// logLog2 returns log₂ log₂ n, clamped to at least 1 (defined for n ≥ 1).
func logLog2(n int) float64 {
	if n < 4 {
		return 1
	}
	x := math.Log2(math.Log2(float64(n)))
	if x < 1 {
		return 1
	}
	return x
}

// threshold computes τ = ⌈log₂ log₂ n⌉ clamped to at least 1.
func threshold(n int) int {
	return int(math.Ceil(logLog2(n)))
}

// rebuildAll rebuilds the entire tree over the given leaf nodes and
// recomputes the shortcut threshold from the current size. It is also the
// escape hatch for threshold drift: insertion/deletion call it when
// ⌈log₂log₂ n⌉ moves, which mirrors the paper's observation that a tree
// whose size changes enough to shift the threshold is rebuilt entirely with
// high probability anyway.
func (t *Tree[P, S]) rebuildAll(leaves []*Node[P, S]) {
	t.count = len(leaves)
	t.shortcutMinHeight = threshold(t.count)
	t.rebuildEpoch++
	if len(leaves) == 0 {
		t.root, t.head, t.tail = nil, nil, nil
		return
	}
	t.relink(leaves, nil, nil)
	t.root = t.buildSubtree(leaves, 0)
	t.root.parent = nil
	t.assignShortcuts(t.root, make([]*Node[P, S], 0, 64))
}

// relink splices the leaf linked list: leaves become consecutive, preceded
// by before and followed by after (either may be nil for the tree ends).
func (t *Tree[P, S]) relink(leaves []*Node[P, S], before, after *Node[P, S]) {
	for i, l := range leaves {
		if i > 0 {
			l.prev = leaves[i-1]
		} else {
			l.prev = before
		}
		if i+1 < len(leaves) {
			l.next = leaves[i+1]
		} else {
			l.next = after
		}
	}
	if before != nil {
		before.next = leaves[0]
	} else {
		t.head = leaves[0]
	}
	if after != nil {
		after.prev = leaves[len(leaves)-1]
	} else {
		t.tail = leaves[len(leaves)-1]
	}
}

// buildSubtree builds a fresh random-split subtree over the given leaf
// nodes rooted at the given depth, reusing the leaf Node objects. It sets
// structure, depth, height, leaf counts, sums and the gap correspondence,
// but not shortcuts (see assignShortcuts, which needs the ancestor stack).
func (t *Tree[P, S]) buildSubtree(leaves []*Node[P, S], depth int) *Node[P, S] {
	n := len(leaves)
	if n == 1 {
		return t.buildLeaf(leaves[0], depth)
	}
	// The root split position is uniform over the n-1 gaps (§2's
	// construction procedure: "pick a random integer k in the range
	// 1..n-1").
	return t.buildSubtreeSplit(leaves, depth, 1+t.src.Intn(n-1))
}

// buildLeaf resets a reused leaf node's metadata for its new position.
func (t *Tree[P, S]) buildLeaf(l *Node[P, S], depth int) *Node[P, S] {
	l.depth = depth
	l.height = 0
	l.leaves = 1
	l.left, l.right = nil, nil
	l.shortcuts = nil
	if t.leafFn != nil {
		l.sum = t.leafFn(l.payload)
	}
	return l
}

// buildSubtreeSplit builds a subtree whose root split is pinned at k
// (1 ≤ k ≤ n-1), with both sides fresh random subtrees. Insertion rebuilds
// use it to realize the paper's "(v1..vk) | (z, vk+1..vn)" root.
func (t *Tree[P, S]) buildSubtreeSplit(leaves []*Node[P, S], depth, k int) *Node[P, S] {
	n := len(leaves)
	if n == 1 {
		return t.buildLeaf(leaves[0], depth)
	}
	v := &Node[P, S]{depth: depth}
	v.left = t.buildSubtree(leaves[:k], depth+1)
	v.right = t.buildSubtree(leaves[k:], depth+1)
	v.left.parent = v
	v.right.parent = v
	v.leaves = n
	v.height = 1 + max(v.left.height, v.right.height)
	if t.mergeFn != nil {
		v.sum = t.mergeFn(v.left.sum, v.right.sum)
	}
	// Gap correspondence: v's gap sits between leaves[k-1] and leaves[k].
	v.gapLeaf = leaves[k-1]
	leaves[k-1].gapNode = v
	return v
}

// assignShortcuts walks the subtree assigning shortcut lists to nodes at or
// above the height threshold. anc is the ancestor stack indexed by depth
// (anc[d] is the ancestor at depth d); the caller seeds it with the path
// above the subtree. Descent prunes at nodes below the threshold, since
// height strictly decreases downward along any path.
func (t *Tree[P, S]) assignShortcuts(v *Node[P, S], anc []*Node[P, S]) {
	if v.height < t.shortcutMinHeight {
		v.shortcuts = nil
		// Children are strictly shorter: nothing below needs shortcuts,
		// but stale lists from a previous epoch must still be dropped.
		t.clearShortcuts(v)
		return
	}
	if v.depth > 0 {
		depths := shortcutDepths(v.depth)
		sc := make([]*Node[P, S], len(depths))
		for i, d := range depths {
			sc[i] = anc[d]
		}
		v.shortcuts = sc
	} else {
		v.shortcuts = nil
	}
	if v.IsLeaf() {
		return
	}
	anc = append(anc, v)
	t.assignShortcuts(v.left, anc)
	t.assignShortcuts(v.right, anc)
}

// clearShortcuts removes shortcut lists from an entire subtree.
func (t *Tree[P, S]) clearShortcuts(v *Node[P, S]) {
	if v.shortcuts != nil {
		v.shortcuts = nil
	}
	if !v.IsLeaf() {
		t.clearShortcuts(v.left)
		t.clearShortcuts(v.right)
	}
}

// ancestorStack returns the root path above v indexed by depth:
// stack[d] is v's ancestor at depth d, for d < v.depth.
func (t *Tree[P, S]) ancestorStack(v *Node[P, S]) []*Node[P, S] {
	stack := make([]*Node[P, S], v.depth)
	for a := v.parent; a != nil; a = a.parent {
		stack[a.depth] = a
	}
	return stack
}

// recomputeUp refreshes leaf counts, heights and sums on the root path
// starting at v's parent. It must be called after any subtree replacement.
func (t *Tree[P, S]) recomputeUp(v *Node[P, S]) {
	for a := v.parent; a != nil; a = a.parent {
		a.leaves = a.left.leaves + a.right.leaves
		a.height = 1 + max(a.left.height, a.right.height)
		if t.mergeFn != nil {
			a.sum = t.mergeFn(a.left.sum, a.right.sum)
		}
	}
}

// recomputeUpDiff is recomputeUp, additionally returning the ancestors
// whose height changed. Rebuild reports expose the list so the dynamic
// contraction layer can reschedule exactly the gaps whose rounds moved.
func (t *Tree[P, S]) recomputeUpDiff(v *Node[P, S]) []*Node[P, S] {
	var changed []*Node[P, S]
	for a := v.parent; a != nil; a = a.parent {
		a.leaves = a.left.leaves + a.right.leaves
		h := 1 + max(a.left.height, a.right.height)
		if h != a.height {
			a.height = h
			changed = append(changed, a)
		}
		if t.mergeFn != nil {
			a.sum = t.mergeFn(a.left.sum, a.right.sum)
		}
	}
	return changed
}

// UpdateLeaf replaces the payload of a leaf and recomputes sums along the
// root path (the sequential single-update path of Theorem 4.2: O(log n)
// expected with one processor).
func (t *Tree[P, S]) UpdateLeaf(leaf *Node[P, S], payload P) {
	leaf.payload = payload
	if t.leafFn != nil {
		leaf.sum = t.leafFn(payload)
	}
	t.recomputeUp(leaf)
}

// BatchUpdate replaces payloads of a set of leaves and recomputes sums over
// the parse tree PT(U) in parallel: one activation (Theorem 2.1) plus one
// recomputation round per parse-tree level.
func (t *Tree[P, S]) BatchUpdate(m *pram.Machine, leaves []*Node[P, S], payloads []P) pram.Metrics {
	if len(leaves) != len(payloads) {
		panic("rbsts: BatchUpdate length mismatch")
	}
	if m == nil {
		m = pram.Sequential()
	}
	start := m.Metrics()
	m.Step(len(leaves), func(i int) {
		leaves[i].payload = payloads[i]
		if t.leafFn != nil {
			leaves[i].sum = t.leafFn(payloads[i])
		}
	})
	if t.mergeFn != nil {
		act := t.Activate(m, leaves)
		t.RecomputeSums(m, act)
		act.Release(m)
	}
	end := m.Metrics()
	return pram.Metrics{Steps: end.Steps - start.Steps, Work: end.Work - start.Work, MaxProcs: end.MaxProcs}
}

// RecomputeSums recomputes aggregation sums bottom-up over an activated
// parse tree, one parallel round per height level.
func (t *Tree[P, S]) RecomputeSums(m *pram.Machine, act *Activation[P, S]) {
	if t.mergeFn == nil {
		return
	}
	byHeight := make(map[int][]*Node[P, S])
	maxH := 0
	for _, n := range act.Nodes {
		if n.IsLeaf() {
			continue
		}
		byHeight[n.height] = append(byHeight[n.height], n)
		if n.height > maxH {
			maxH = n.height
		}
	}
	for h := 1; h <= maxH; h++ {
		level := byHeight[h]
		if len(level) == 0 {
			continue
		}
		m.Step(len(level), func(i int) {
			n := level[i]
			n.sum = t.mergeFn(n.left.sum, n.right.sum)
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package rbsts

import (
	"fmt"
	"math"
	"testing"

	"dyntc/internal/pram"
	"dyntc/internal/prng"
)

// newIntTree builds an aggregated (sum monoid) tree over 0..n-1 values.
func newIntTree(seed uint64, n int) *Tree[int64, int64] {
	payloads := make([]int64, n)
	for i := range payloads {
		payloads[i] = int64(i)
	}
	return New[int64, int64](seed,
		func(p int64) int64 { return p },
		func(a, b int64) int64 { return a + b },
		payloads)
}

func payloadsOf(t *Tree[int64, int64]) []int64 {
	var out []int64
	for l := t.Head(); l != nil; l = l.Next() {
		out = append(out, l.Payload())
	}
	return out
}

func TestBuildValidates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 64, 1000} {
		tr := newIntTree(7, n)
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		got := payloadsOf(tr)
		for i, p := range got {
			if p != int64(i) {
				t.Fatalf("n=%d: leaf order wrong at %d: %v", n, i, got)
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newIntTree(1, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != nil || tr.Len() != 0 {
		t.Fatal("empty tree not empty")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := newIntTree(42, 500), newIntTree(42, 500)
	var walkA, walkB []int
	var walk func(v *Node[int64, int64], out *[]int)
	walk = func(v *Node[int64, int64], out *[]int) {
		if v.IsLeaf() {
			*out = append(*out, -1)
			return
		}
		*out = append(*out, v.Left().LeafCount())
		walk(v.Left(), out)
		walk(v.Right(), out)
	}
	walk(a.Root(), &walkA)
	walk(b.Root(), &walkB)
	if len(walkA) != len(walkB) {
		t.Fatal("different shapes from same seed")
	}
	for i := range walkA {
		if walkA[i] != walkB[i] {
			t.Fatal("different shapes from same seed")
		}
	}
}

func TestExpectedDepthLogarithmic(t *testing.T) {
	// Random split trees have expected height ≈ 4.31·ln n. Allow slack.
	for _, n := range []int{1 << 10, 1 << 14} {
		tr := newIntTree(99, n)
		bound := int(8 * math.Log(float64(n)))
		if h := tr.Root().Height(); h > bound {
			t.Fatalf("n=%d height %d exceeds %d", n, h, bound)
		}
	}
}

func TestLeafAtIndexRoundtrip(t *testing.T) {
	tr := newIntTree(5, 300)
	for i := 0; i < 300; i++ {
		l := tr.LeafAt(i)
		if l.Index() != i {
			t.Fatalf("LeafAt(%d).Index() = %d", i, l.Index())
		}
		if l.Payload() != int64(i) {
			t.Fatalf("LeafAt(%d) payload %d", i, l.Payload())
		}
	}
}

func TestLeafAtPanics(t *testing.T) {
	tr := newIntTree(5, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("LeafAt(10) did not panic")
		}
	}()
	tr.LeafAt(10)
}

func TestSumMaintained(t *testing.T) {
	tr := newIntTree(3, 100)
	if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
		t.Fatalf("sum %d want %d", got, want)
	}
	tr.UpdateLeaf(tr.LeafAt(17), 1000)
	if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
		t.Fatalf("after update: sum %d want %d", got, want)
	}
}

func TestBatchUpdateSums(t *testing.T) {
	tr := newIntTree(3, 256)
	m := pram.Sequential()
	leaves := []*Node[int64, int64]{tr.LeafAt(0), tr.LeafAt(100), tr.LeafAt(255)}
	tr.BatchUpdate(m, leaves, []int64{-5, -7, -9})
	if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
		t.Fatalf("sum %d want %d", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShortcutDepthsGeometric(t *testing.T) {
	for _, d := range []int{1, 2, 3, 10, 100, 1000} {
		ds := shortcutDepths(d)
		if len(ds) == 0 || ds[0] != 0 {
			t.Fatalf("d=%d: first entry %v", d, ds)
		}
		for i := 1; i < len(ds); i++ {
			if ds[i] <= ds[i-1] {
				t.Fatalf("d=%d: depths not strictly increasing: %v", d, ds)
			}
			// Remaining distance shrinks by at most a factor 2/3 (+1 slack).
			remPrev, rem := d-ds[i-1], d-ds[i]
			if rem > remPrev*2/3 {
				t.Fatalf("d=%d: remaining %d -> %d not geometric", d, remPrev, rem)
			}
		}
		if last := ds[len(ds)-1]; last >= d {
			t.Fatalf("d=%d: shortcut to self or below: %v", d, ds)
		}
	}
	if shortcutDepths(0) != nil {
		t.Fatal("shortcutDepths(0) should be nil")
	}
}

// ancestorClosure computes the expected parse tree node set naively.
func ancestorClosure(leaves []*Node[int64, int64]) map[*Node[int64, int64]]bool {
	want := make(map[*Node[int64, int64]]bool)
	for _, l := range leaves {
		for v := l; v != nil; v = v.Parent() {
			want[v] = true
		}
	}
	return want
}

func checkActivation(t *testing.T, tr *Tree[int64, int64], act *Activation[int64, int64], leaves []*Node[int64, int64]) {
	t.Helper()
	want := ancestorClosure(leaves)
	got := make(map[*Node[int64, int64]]bool, len(act.Nodes))
	for _, n := range act.Nodes {
		if got[n] {
			t.Fatal("activation returned a duplicate node")
		}
		got[n] = true
		if !n.IsActive() {
			t.Fatal("returned node not marked active")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("activation marked %d nodes, want %d", len(got), len(want))
	}
	for n := range want {
		if !got[n] {
			t.Fatalf("missing parse tree node at depth %d", n.Depth())
		}
	}
}

func TestActivateMarksExactClosure(t *testing.T) {
	src := prng.New(123)
	for _, n := range []int{1, 2, 10, 257, 4096} {
		tr := newIntTree(uint64(n), n)
		for _, u := range []int{1, 2, 5, 32} {
			if u > n {
				continue
			}
			var leaves []*Node[int64, int64]
			seen := map[int]bool{}
			for len(leaves) < u {
				i := src.Intn(n)
				if !seen[i] {
					seen[i] = true
					leaves = append(leaves, tr.LeafAt(i))
				}
			}
			m := pram.Sequential()
			act := tr.Activate(m, leaves)
			checkActivation(t, tr, act, leaves)
			act.Release(m)
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d u=%d: flags leaked: %v", n, u, err)
			}
		}
	}
}

func TestActivateDuplicateLeaves(t *testing.T) {
	tr := newIntTree(9, 128)
	l := tr.LeafAt(64)
	m := pram.Sequential()
	act := tr.Activate(m, []*Node[int64, int64]{l, l, l})
	checkActivation(t, tr, act, []*Node[int64, int64]{l})
	act.Release(m)
}

func TestNaiveActivateMatches(t *testing.T) {
	tr := newIntTree(11, 1024)
	leaves := []*Node[int64, int64]{tr.LeafAt(3), tr.LeafAt(700), tr.LeafAt(701)}
	m := pram.Sequential()
	act := tr.NaiveActivate(m, leaves)
	checkActivation(t, tr, act, leaves)
	act.Release(m)
}

func TestActivationFasterThanNaive(t *testing.T) {
	// Theorem 2.1: for |U|=1 the shortcut activation runs in
	// O(log(log n)) rounds; the naive walk needs Θ(depth) rounds. Use the
	// deepest leaf of a large tree so the gap is visible at test sizes.
	tr := newIntTree(17, 1<<18)
	leaf := tr.Root()
	for !leaf.IsLeaf() {
		if leaf.Left().Height() >= leaf.Right().Height() {
			leaf = leaf.Left()
		} else {
			leaf = leaf.Right()
		}
	}
	ms := pram.Sequential()
	act := tr.Activate(ms, []*Node[int64, int64]{leaf})
	checkActivation(t, tr, act, []*Node[int64, int64]{leaf})
	act.Release(ms)
	fast := ms.Metrics().Steps

	mn := pram.Sequential()
	nact := tr.NaiveActivate(mn, []*Node[int64, int64]{leaf})
	nact.Release(mn)
	slow := mn.Metrics().Steps

	if fast*2 >= slow {
		t.Fatalf("shortcut activation %d rounds vs naive %d (leaf depth %d): no speedup",
			fast, slow, leaf.Depth())
	}
}

func TestActivateParallelMachine(t *testing.T) {
	tr := newIntTree(21, 1<<12)
	var leaves []*Node[int64, int64]
	for i := 0; i < 200; i++ {
		leaves = append(leaves, tr.LeafAt(i*20))
	}
	m := pram.New(4)
	act := tr.Activate(m, leaves)
	checkActivation(t, tr, act, leaves)
	act.Release(m)
}

func TestInsertSingle(t *testing.T) {
	tr := newIntTree(31, 10)
	newLeaves := tr.InsertAfter(nil, tr.LeafAt(4), []int64{100})
	if len(newLeaves) != 1 || newLeaves[0].Payload() != 100 {
		t.Fatalf("bad new leaves %v", newLeaves)
	}
	want := []int64{0, 1, 2, 3, 4, 100, 5, 6, 7, 8, 9}
	got := payloadsOf(tr)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
		t.Fatalf("sum %d want %d", got, want)
	}
}

func TestInsertAtEnds(t *testing.T) {
	tr := newIntTree(33, 5)
	tr.BatchInsert(nil, []InsertOp[int64]{{Gap: 0, Payloads: []int64{-1}}})
	tr.BatchInsert(nil, []InsertOp[int64]{{Gap: tr.Len(), Payloads: []int64{99}}})
	want := []int64{-1, 0, 1, 2, 3, 4, 99}
	if fmt.Sprint(payloadsOf(tr)) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", payloadsOf(tr), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchInsertMultipleGaps(t *testing.T) {
	tr := newIntTree(35, 6)
	rep := tr.BatchInsert(nil, []InsertOp[int64]{
		{Gap: 4, Payloads: []int64{400, 401}},
		{Gap: 0, Payloads: []int64{-10}},
		{Gap: 6, Payloads: []int64{600}},
		{Gap: 4, Payloads: []int64{402}},
	})
	want := []int64{-10, 0, 1, 2, 3, 400, 401, 402, 4, 5, 600}
	if fmt.Sprint(payloadsOf(tr)) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", payloadsOf(tr), want)
	}
	// NewLeaves in batch order.
	wantNew := []int64{400, 401, -10, 600, 402}
	if len(rep.NewLeaves) != len(wantNew) {
		t.Fatalf("NewLeaves count %d", len(rep.NewLeaves))
	}
	for i, l := range rep.NewLeaves {
		if l.Payload() != wantNew[i] {
			t.Fatalf("NewLeaves[%d] = %d want %d", i, l.Payload(), wantNew[i])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	tr := newIntTree(37, 0)
	rep := tr.BatchInsert(nil, []InsertOp[int64]{{Gap: 0, Payloads: []int64{1, 2, 3}}})
	if !rep.FullRebuild {
		t.Fatal("expected full rebuild")
	}
	if fmt.Sprint(payloadsOf(tr)) != fmt.Sprint([]int64{1, 2, 3}) {
		t.Fatalf("got %v", payloadsOf(tr))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSingle(t *testing.T) {
	tr := newIntTree(41, 10)
	tr.Delete(nil, tr.LeafAt(5))
	want := []int64{0, 1, 2, 3, 4, 6, 7, 8, 9}
	if fmt.Sprint(payloadsOf(tr)) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", payloadsOf(tr), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
		t.Fatalf("sum %d want %d", got, want)
	}
}

func TestDeleteBoundaries(t *testing.T) {
	tr := newIntTree(43, 8)
	tr.Delete(nil, tr.Head())
	tr.Delete(nil, tr.Tail())
	want := []int64{1, 2, 3, 4, 5, 6}
	if fmt.Sprint(payloadsOf(tr)) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", payloadsOf(tr), want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newIntTree(45, 6)
	tr.BatchDelete(nil, tr.Leaves())
	if tr.Len() != 0 || tr.Root() != nil {
		t.Fatal("tree not emptied")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// And it can be refilled.
	tr.BatchInsert(nil, []InsertOp[int64]{{Gap: 0, Payloads: []int64{7, 8}}})
	if fmt.Sprint(payloadsOf(tr)) != fmt.Sprint([]int64{7, 8}) {
		t.Fatalf("refill got %v", payloadsOf(tr))
	}
}

func TestDeleteToSingleLeafAndBack(t *testing.T) {
	tr := newIntTree(47, 4)
	leaves := tr.Leaves()
	tr.BatchDelete(nil, leaves[0:3])
	if tr.Len() != 1 || tr.Root() == nil || !tr.Root().IsLeaf() {
		t.Fatalf("expected single-leaf tree, len=%d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Delete(nil, tr.Head())
	if tr.Len() != 0 {
		t.Fatal("expected empty tree")
	}
}

// TestRandomMutationSoak compares the tree against a plain slice model
// across a long random sequence of batch inserts, deletes and updates,
// validating every structural invariant after each step.
func TestRandomMutationSoak(t *testing.T) {
	src := prng.New(1234)
	tr := newIntTree(999, 16)
	model := make([]int64, 16)
	for i := range model {
		model[i] = int64(i)
	}
	nextVal := int64(1000)
	for step := 0; step < 400; step++ {
		switch op := src.Intn(3); {
		case op == 0 || tr.Len() == 0: // insert batch
			nOps := 1 + src.Intn(3)
			var ops []InsertOp[int64]
			type ins struct {
				gap int
				val int64
			}
			var flat []ins
			for i := 0; i < nOps; i++ {
				gap := src.Intn(tr.Len() + 1)
				k := 1 + src.Intn(2)
				var ps []int64
				for j := 0; j < k; j++ {
					ps = append(ps, nextVal)
					flat = append(flat, ins{gap, nextVal})
					nextVal++
				}
				ops = append(ops, InsertOp[int64]{Gap: gap, Payloads: ps})
			}
			rep := tr.BatchInsert(nil, ops)
			if len(rep.NewLeaves) != len(flat) {
				t.Fatalf("step %d: NewLeaves %d want %d", step, len(rep.NewLeaves), len(flat))
			}
			// Apply to model: sort by gap stable (matching tree semantics).
			// Build gap->values in batch order.
			perGap := map[int][]int64{}
			for _, f := range flat {
				perGap[f.gap] = append(perGap[f.gap], f.val)
			}
			var newModel []int64
			for g := 0; g <= len(model); g++ {
				newModel = append(newModel, perGap[g]...)
				if g < len(model) {
					newModel = append(newModel, model[g])
				}
			}
			model = newModel
		case op == 1 && tr.Len() > 0: // delete batch
			k := 1 + src.Intn(min(4, tr.Len()))
			idxSet := map[int]bool{}
			for len(idxSet) < k {
				idxSet[src.Intn(tr.Len())] = true
			}
			var leaves []*Node[int64, int64]
			var newModel []int64
			for i, l := 0, tr.Head(); l != nil; i, l = i+1, l.Next() {
				if idxSet[i] {
					leaves = append(leaves, l)
				} else {
					newModel = append(newModel, model[i])
				}
			}
			tr.BatchDelete(nil, leaves)
			model = newModel
		default: // point update
			if tr.Len() == 0 {
				continue
			}
			i := src.Intn(tr.Len())
			tr.UpdateLeaf(tr.LeafAt(i), nextVal)
			model[i] = nextVal
			nextVal++
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		got := payloadsOf(tr)
		if len(got) != len(model) {
			t.Fatalf("step %d: len %d want %d", step, len(got), len(model))
		}
		for i := range model {
			if got[i] != model[i] {
				t.Fatalf("step %d: payload[%d]=%d want %d\ngot  %v\nwant %v",
					step, i, got[i], model[i], got, model)
			}
		}
		if tr.Len() > 0 {
			if got, want := tr.Root().Sum(), tr.SumOracle(); got != want {
				t.Fatalf("step %d: sum %d want %d", step, got, want)
			}
		}
	}
}

// TestInsertDistribution checks Theorem 2.2's "resulting in a valid RBSTS":
// the mean leaf depth of trees grown by repeated random insertion must
// match the mean leaf depth of freshly built trees of the same size.
func TestInsertDistribution(t *testing.T) {
	const n = 512
	const trials = 60
	grownMean, freshMean := 0.0, 0.0
	src := prng.New(777)
	for trial := 0; trial < trials; trial++ {
		// Grown: start with 1 leaf, insert at random gaps.
		tr := newIntTree(uint64(trial)*2+1, 1)
		for tr.Len() < n {
			gap := src.Intn(tr.Len() + 1)
			tr.BatchInsert(nil, []InsertOp[int64]{{Gap: gap, Payloads: []int64{0}}})
		}
		grownMean += meanLeafDepth(tr)
		fresh := newIntTree(uint64(trial)*2+2, n)
		freshMean += meanLeafDepth(fresh)
	}
	grownMean /= trials
	freshMean /= trials
	// Means over 60 trials of 512 leaves concentrate well; 8% slack.
	if math.Abs(grownMean-freshMean) > 0.08*freshMean {
		t.Fatalf("grown mean depth %.3f vs fresh %.3f", grownMean, freshMean)
	}
}

// TestDeleteDistribution: grow to 2n, randomly delete down to n, compare
// against fresh builds of size n.
func TestDeleteDistribution(t *testing.T) {
	const n = 384
	const trials = 60
	shrunkMean, freshMean := 0.0, 0.0
	src := prng.New(888)
	for trial := 0; trial < trials; trial++ {
		tr := newIntTree(uint64(trial)*2+1, 2*n)
		for tr.Len() > n {
			tr.Delete(nil, tr.LeafAt(src.Intn(tr.Len())))
		}
		shrunkMean += meanLeafDepth(tr)
		fresh := newIntTree(uint64(trial)*2+2, n)
		freshMean += meanLeafDepth(fresh)
	}
	shrunkMean /= trials
	freshMean /= trials
	if math.Abs(shrunkMean-freshMean) > 0.08*freshMean {
		t.Fatalf("shrunk mean depth %.3f vs fresh %.3f", shrunkMean, freshMean)
	}
}

func meanLeafDepth(tr *Tree[int64, int64]) float64 {
	total := 0
	for l := tr.Head(); l != nil; l = l.Next() {
		total += l.Depth()
	}
	return float64(total) / float64(tr.Len())
}

// TestRebuildSizeExpectation checks Theorem 2.2's E[S] = O(log n) per
// insertion: the average rebuild size across many single insertions into a
// large tree must be within a constant factor of ln n.
func TestRebuildSizeExpectation(t *testing.T) {
	const n = 1 << 13
	tr := newIntTree(3141, n)
	src := prng.New(59)
	totalRebuilt := 0
	const inserts = 300
	for i := 0; i < inserts; i++ {
		rep := tr.BatchInsert(nil, []InsertOp[int64]{{Gap: src.Intn(tr.Len() + 1), Payloads: []int64{0}}})
		totalRebuilt += rep.RebuildLeaves
	}
	mean := float64(totalRebuilt) / inserts
	logn := math.Log(float64(n))
	if mean > 6*logn {
		t.Fatalf("mean rebuild size %.1f exceeds 6·ln n = %.1f", mean, 6*logn)
	}
}

func TestStableLeafIdentityAcrossRebuilds(t *testing.T) {
	tr := newIntTree(51, 64)
	marked := tr.LeafAt(20)
	src := prng.New(4)
	for i := 0; i < 100; i++ {
		gap := src.Intn(tr.Len() + 1)
		tr.BatchInsert(nil, []InsertOp[int64]{{Gap: gap, Payloads: []int64{int64(i)}}})
	}
	// The leaf object must still be in the tree with the same payload.
	if marked.Payload() != 20 {
		t.Fatalf("payload changed: %d", marked.Payload())
	}
	found := false
	for l := tr.Head(); l != nil; l = l.Next() {
		if l == marked {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("marked leaf object no longer in tree")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

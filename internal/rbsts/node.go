// Package rbsts implements the random binary splitting tree with shortcuts
// (RBSTS) of Reif & Tate, SPAA'94, §2 — the data structure underlying every
// dynamic algorithm in this library.
//
// An RBSTS is a full binary tree over a sequence of leaves whose shape is
// drawn from the random-split distribution: the root separates the leaves
// after a uniformly random position, recursively. Such trees have expected
// depth O(log n). Every node stores its depth, subtree leaf count and
// height; nodes whose subtree height reaches the tree's shortcut threshold
// (≈ log log n) additionally store a geometric list of ancestor shortcuts,
// entry i pointing to the ancestor at depth ⌊d·(1-(2/3)^i)⌋ (realized with
// an integer 2/3 recurrence; see shortcutDepths). Shortcuts are what let
// the activation procedure of Theorem 2.1 identify a parse tree PT(U) in
// O(log(|U| log n)) rounds rather than Θ(depth).
//
// The tree supports, with the paper's expected bounds:
//
//   - construction from a leaf sequence (Lemma 2.1),
//   - parse-tree identification and processor activation (Theorem 2.1),
//   - batch leaf insertion and deletion via randomized subtree rebuilds
//     (Theorems 2.2/2.3); leaf node objects are stable across rebuilds so
//     clients may hold leaf references indefinitely,
//   - an optional monoid aggregation (payload summaries combined bottom-up),
//     which is how §3's incremental list prefix and §5's applications
//     augment the structure.
//
// Internal nodes correspond 1–1 with gaps between adjacent leaves; the
// GapNode/GapLeaf links expose that correspondence to the dynamic tree
// contraction layer, which schedules one rake per gap at a round equal to
// the gap node's height (§4.2).
package rbsts

// Node is a node of the splitting tree. Leaves carry the client payload P;
// internal nodes carry the aggregated summary S of their subtree (when the
// tree has an aggregator). Leaf Node objects survive subtree rebuilds;
// internal Node objects do not.
type Node[P, S any] struct {
	parent, left, right *Node[P, S]

	// leaves is the number of leaves in this subtree (1 for a leaf).
	leaves int
	// depth is the number of edges from the root (root = 0).
	depth int
	// height is the subtree height in edges (leaf = 0).
	height int

	// active is the CRCW ACTIVE flag of §2, set during activation via
	// atomic test-and-set and cleared when the parse tree is released.
	active int32

	// shortcuts[i] is the ancestor at the i-th shortcut depth (see
	// shortcutDepths); shortcuts[0] is the root. Only present on nodes
	// with height >= the tree's shortcut threshold.
	shortcuts []*Node[P, S]

	// payload is the client value (leaves only).
	payload P
	// sum is the aggregated summary of the subtree (maintained only when
	// the tree has an aggregator; on leaves it caches leafFn(payload)).
	sum S

	// Leaf-list links (leaves only): the leaves form a doubly linked list
	// in left-to-right order.
	next, prev *Node[P, S]

	// Gap correspondence: for an internal node, gapLeaf is the rightmost
	// leaf of its left subtree (the leaf immediately left of the node's
	// gap). For a leaf, gapNode is the internal node owning the gap to the
	// leaf's immediate right (nil for the last leaf).
	gapLeaf, gapNode *Node[P, S]
}

// IsLeaf reports whether n is a leaf.
func (n *Node[P, S]) IsLeaf() bool { return n.left == nil }

// Parent returns the parent node (nil at the root).
func (n *Node[P, S]) Parent() *Node[P, S] { return n.parent }

// Left returns the left child (nil for leaves).
func (n *Node[P, S]) Left() *Node[P, S] { return n.left }

// Right returns the right child (nil for leaves).
func (n *Node[P, S]) Right() *Node[P, S] { return n.right }

// Depth returns the number of edges from the root.
func (n *Node[P, S]) Depth() int { return n.depth }

// Height returns the subtree height in edges (0 for leaves). For an
// internal node this is also the contraction round at which the node's gap
// rakes (§4.2).
func (n *Node[P, S]) Height() int { return n.height }

// LeafCount returns the number of leaves in the subtree.
func (n *Node[P, S]) LeafCount() int { return n.leaves }

// Payload returns the client payload of a leaf.
func (n *Node[P, S]) Payload() P { return n.payload }

// Sum returns the aggregated subtree summary. It is only meaningful when
// the tree was built with an aggregator.
func (n *Node[P, S]) Sum() S { return n.sum }

// Next returns the next leaf in left-to-right order (nil at the tail).
func (n *Node[P, S]) Next() *Node[P, S] { return n.next }

// Prev returns the previous leaf in left-to-right order (nil at the head).
func (n *Node[P, S]) Prev() *Node[P, S] { return n.prev }

// GapLeaf returns, for an internal node, the leaf immediately left of the
// node's gap (the rightmost leaf of its left subtree).
func (n *Node[P, S]) GapLeaf() *Node[P, S] { return n.gapLeaf }

// GapNode returns, for a leaf, the internal node owning the gap to the
// leaf's right (nil for the last leaf). The gap node of a leaf is exactly
// the lowest common ancestor of the leaf and its successor.
func (n *Node[P, S]) GapNode() *Node[P, S] { return n.gapNode }

// Shortcuts returns the node's shortcut list (nil when the node is below
// the shortcut threshold). The slice must not be modified.
func (n *Node[P, S]) Shortcuts() []*Node[P, S] { return n.shortcuts }

// Index returns the leaf's position in the leaf order, in O(depth) time by
// summing left-subtree counts along the root path.
func (n *Node[P, S]) Index() int {
	idx := 0
	for v := n; v.parent != nil; v = v.parent {
		if v == v.parent.right {
			idx += v.parent.left.leaves
		}
	}
	return idx
}

// Root returns the root of the tree containing n.
func (n *Node[P, S]) Root() *Node[P, S] {
	v := n
	for v.parent != nil {
		v = v.parent
	}
	return v
}

// isAncestorOf reports whether n is a proper or improper ancestor of m.
func (n *Node[P, S]) isAncestorOf(m *Node[P, S]) bool {
	for v := m; v != nil; v = v.parent {
		if v == n {
			return true
		}
		if v.depth <= n.depth {
			return false
		}
	}
	return false
}

// shortcutDepths returns the target depths of the shortcut list for a node
// at depth d: the paper's ⌊d·(1-(2/3)^i)⌋ sequence, realized as the integer
// recurrence remaining←⌊remaining·2/3⌋ starting from d (entry depth is
// d-remaining). Entry 0 is always depth 0 (the root); the list stops when
// the remaining distance reaches zero, so the deepest entry is a proper
// ancestor. The recurrence keeps the geometric 2/3 decrease the range
// splitting analysis of Theorem 2.1 needs while avoiding large-power
// arithmetic.
func shortcutDepths(d int) []int {
	if d <= 0 {
		return nil
	}
	depths := make([]int, 0, 8)
	for remaining := d; remaining > 0; remaining = remaining * 2 / 3 {
		depths = append(depths, d-remaining)
	}
	return depths
}

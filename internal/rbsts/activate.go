package rbsts

import (
	"math"
	"sort"

	"dyntc/internal/pram"
)

// Activation is an identified parse tree PT(U): the update-set leaves plus
// all of their ancestors, with every node's ACTIVE flag set. Release must
// be called before the next activation on the same tree.
type Activation[P, S any] struct {
	// Nodes is every node of PT(U), deduplicated (each node appears once,
	// recorded by the processor that won its test-and-set).
	Nodes []*Node[P, S]
	// Procs is the number of processor slots the startup procedure used
	// (Theorem 2.1's processor bound is checked against this).
	Procs int
}

// Release clears all ACTIVE flags in one parallel round.
func (a *Activation[P, S]) Release(m *pram.Machine) {
	if m == nil {
		m = pram.Sequential()
	}
	nodes := a.Nodes
	m.Step(len(nodes), func(i int) { pram.Clear(&nodes[i].active) })
}

// IsActive reports whether a node is currently marked.
func (n *Node[P, S]) IsActive() bool { return pram.IsSet(&n.active) }

// actProc is a stage-2 processor of Theorem 2.1's startup procedure. It is
// responsible for marking the ancestors of node at depths [low, node.depth).
type actProc[P, S any] struct {
	node *Node[P, S]
	// low is the shallow end of the processor's responsibility range; it
	// always equals the depth of node.shortcuts[scIdx].
	low   int
	scIdx int
}

// cutoff is the range size log(|U|·log n) at which range splitting stops
// and processors walk sequentially (Theorem 2.1's final stage).
func cutoff(u, n int) int {
	if u < 1 {
		u = 1
	}
	if n < 4 {
		n = 4
	}
	c := int(math.Ceil(math.Log2(float64(u) * math.Log2(float64(n)))))
	if c < 1 {
		c = 1
	}
	return c
}

// Activate identifies and activates the parse tree PT(U) for the given
// update-set leaves, following Theorem 2.1:
//
//  1. every leaf walks up marking nodes until it reaches a node carrying a
//     shortcut list (O(log log n) rounds, since height strictly increases
//     along any root path and shortcuts appear at height ≈ log log n);
//  2. each such seed repeatedly splits its depth range [low, d] by
//     advancing one shortcut entry (ranges shrink geometrically by 2/3)
//     and forks a processor at the shortcut target to cover the shallow
//     part, until every range is at most log(|U| log n);
//  3. every processor walks its residual range sequentially, marking via
//     test-and-set.
//
// Duplicate processors for a node are permitted (the fork simply loses the
// test-and-set); this keeps the rounds race-free and only affects constant
// factors, not the O(|U|·log n / log(|U| log n)) processor bound, which is
// charged per leaf exactly as in the paper's proof.
func (t *Tree[P, S]) Activate(m *pram.Machine, leaves []*Node[P, S]) *Activation[P, S] {
	if m == nil {
		m = pram.Sequential()
	}
	act := &Activation[P, S]{}
	if len(leaves) == 0 || t.root == nil {
		return act
	}
	procs := len(leaves)

	// Initial round: mark the update-set leaves themselves.
	marked := make([][]*Node[P, S], len(leaves))
	m.Step(len(leaves), func(i int) {
		if pram.TestAndSet(&leaves[i].active) {
			marked[i] = append(marked[i], leaves[i])
		}
	})
	for _, ms := range marked {
		act.Nodes = append(act.Nodes, ms...)
	}

	// Stage 1: walk up to the first shortcut-bearing node (or the root).
	frontier := append([]*Node[P, S](nil), act.Nodes...)
	var seeds []*Node[P, S]
	for len(frontier) > 0 {
		next := make([]*Node[P, S], len(frontier))
		seedSlot := make([]*Node[P, S], len(frontier))
		markSlot := make([]*Node[P, S], len(frontier))
		m.Step(len(frontier), func(i int) {
			p := frontier[i].parent
			if p == nil {
				return
			}
			if !pram.TestAndSet(&p.active) {
				return // another processor owns everything above
			}
			markSlot[i] = p
			if p.shortcuts != nil {
				seedSlot[i] = p
			} else if p.parent != nil {
				next[i] = p
			}
		})
		frontier = frontier[:0]
		for i := range next {
			if markSlot[i] != nil {
				act.Nodes = append(act.Nodes, markSlot[i])
			}
			if seedSlot[i] != nil {
				seeds = append(seeds, seedSlot[i])
			}
			if next[i] != nil {
				frontier = append(frontier, next[i])
			}
		}
	}

	// Stage 2: geometric range splitting along shortcut lists.
	cut := cutoff(len(leaves), t.count)
	var running []actProc[P, S]
	for _, s := range seeds {
		running = append(running, actProc[P, S]{node: s, low: 0, scIdx: 0})
	}
	procs += len(running)
	var final []actProc[P, S]
	for {
		// Partition off processors whose range is small enough.
		still := running[:0]
		for _, p := range running {
			if p.node.depth-p.low <= cut || p.scIdx+1 >= len(p.node.shortcuts) {
				final = append(final, p)
			} else {
				still = append(still, p)
			}
		}
		running = still
		if len(running) == 0 {
			break
		}
		spawnSlot := make([]actProc[P, S], len(running))
		spawnOK := make([]bool, len(running))
		markSlot := make([]*Node[P, S], len(running))
		m.Step(len(running), func(i int) {
			p := &running[i]
			w := p.node.shortcuts[p.scIdx+1]
			delegatedLow := p.low
			p.scIdx++
			p.low = w.depth
			if pram.TestAndSet(&w.active) {
				markSlot[i] = w
			}
			// Fork a processor at w covering [delegatedLow, w.depth]. Its
			// shortcut index is the deepest entry not below delegatedLow
			// (the paper's "unique value k"; found here by binary search,
			// which the paper computes in O(1) from the closed form). A
			// target without shortcuts (possible transiently between
			// rebuilds) degrades to a plain walker over the whole range.
			if len(w.shortcuts) == 0 {
				spawnSlot[i] = actProc[P, S]{node: w, low: delegatedLow, scIdx: 0}
			} else {
				k := sort.Search(len(w.shortcuts), func(j int) bool {
					return w.shortcuts[j].depth > delegatedLow
				}) - 1
				if k < 0 {
					k = 0
				}
				low := w.shortcuts[k].depth
				if low > delegatedLow {
					low = delegatedLow
				}
				spawnSlot[i] = actProc[P, S]{node: w, low: low, scIdx: k}
			}
			spawnOK[i] = true
		})
		for i := range spawnSlot {
			if markSlot[i] != nil {
				act.Nodes = append(act.Nodes, markSlot[i])
			}
			if spawnOK[i] {
				running = append(running, spawnSlot[i])
				procs++
			}
		}
	}

	// Stage 3: each processor walks its residual range one level per round.
	walkers := final
	positions := make([]*Node[P, S], len(walkers))
	for i, p := range walkers {
		positions[i] = p.node.parent
	}
	for {
		any := false
		markSlot := make([]*Node[P, S], len(walkers))
		activeIdx := make([]int, 0, len(walkers))
		for i, pos := range positions {
			if pos != nil && pos.depth >= walkers[i].low {
				activeIdx = append(activeIdx, i)
				any = true
			}
		}
		if !any {
			break
		}
		m.Step(len(activeIdx), func(j int) {
			i := activeIdx[j]
			pos := positions[i]
			if pram.TestAndSet(&pos.active) {
				markSlot[i] = pos
			}
			positions[i] = pos.parent
		})
		for _, i := range activeIdx {
			if markSlot[i] != nil {
				act.Nodes = append(act.Nodes, markSlot[i])
			}
		}
	}

	act.Procs = procs
	return act
}

// NaiveActivate is the baseline without shortcuts (§2's "the best we can do
// is follow the parent links"): every leaf walks to the root, Θ(depth)
// rounds. Used by experiment E11 and as a correctness oracle.
func (t *Tree[P, S]) NaiveActivate(m *pram.Machine, leaves []*Node[P, S]) *Activation[P, S] {
	if m == nil {
		m = pram.Sequential()
	}
	act := &Activation[P, S]{Procs: len(leaves)}
	if len(leaves) == 0 || t.root == nil {
		return act
	}
	frontier := make([]*Node[P, S], 0, len(leaves))
	markSlot := make([]*Node[P, S], len(leaves))
	m.Step(len(leaves), func(i int) {
		if pram.TestAndSet(&leaves[i].active) {
			markSlot[i] = leaves[i]
		}
	})
	for _, n := range markSlot {
		if n != nil {
			act.Nodes = append(act.Nodes, n)
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		next := make([]*Node[P, S], len(frontier))
		m.Step(len(frontier), func(i int) {
			p := frontier[i].parent
			if p != nil && pram.TestAndSet(&p.active) {
				next[i] = p
			}
		})
		frontier = frontier[:0]
		for _, p := range next {
			if p != nil {
				act.Nodes = append(act.Nodes, p)
				frontier = append(frontier, p)
			}
		}
	}
	return act
}

package rbsts

import "fmt"

// Validate checks every structural invariant of the tree and returns the
// first violation found, or nil. It is O(n · shortcut length) and intended
// for tests and failure injection, not production paths.
func (t *Tree[P, S]) Validate() error {
	if t.root == nil {
		if t.count != 0 || t.head != nil || t.tail != nil {
			return fmt.Errorf("rbsts: empty root but count=%d head=%p tail=%p", t.count, t.head, t.tail)
		}
		return nil
	}
	if t.root.parent != nil {
		return fmt.Errorf("rbsts: root has a parent")
	}
	var leaves []*Node[P, S]
	if err := t.validateNode(t.root, 0, &leaves); err != nil {
		return err
	}
	if len(leaves) != t.count {
		return fmt.Errorf("rbsts: count=%d but found %d leaves", t.count, len(leaves))
	}
	// Leaf list agrees with in-order traversal.
	if t.head != leaves[0] || t.tail != leaves[len(leaves)-1] {
		return fmt.Errorf("rbsts: head/tail do not match extreme leaves")
	}
	for i, l := range leaves {
		var wantPrev, wantNext *Node[P, S]
		if i > 0 {
			wantPrev = leaves[i-1]
		}
		if i+1 < len(leaves) {
			wantNext = leaves[i+1]
		}
		if l.prev != wantPrev || l.next != wantNext {
			return fmt.Errorf("rbsts: leaf %d has bad list links", i)
		}
		if l.Index() != i {
			return fmt.Errorf("rbsts: leaf %d reports Index %d", i, l.Index())
		}
	}
	// Gap correspondence: leaf i's gap node must be the LCA of leaves i
	// and i+1, and the mapping must be mutual.
	for i := 0; i+1 < len(leaves); i++ {
		g := leaves[i].gapNode
		if g == nil {
			return fmt.Errorf("rbsts: interior leaf %d has nil gapNode", i)
		}
		if g.gapLeaf != leaves[i] {
			return fmt.Errorf("rbsts: gap node of leaf %d does not point back", i)
		}
		if !g.isAncestorOf(leaves[i]) || !g.isAncestorOf(leaves[i+1]) {
			return fmt.Errorf("rbsts: gap node of leaf %d is not a common ancestor", i)
		}
		// Must be the LOWEST common ancestor: leaf i in left subtree,
		// leaf i+1 in right subtree.
		if !g.left.isAncestorOf(leaves[i]) || !g.right.isAncestorOf(leaves[i+1]) {
			return fmt.Errorf("rbsts: gap node of leaf %d is not the LCA", i)
		}
	}
	if t.tail.gapNode != nil {
		return fmt.Errorf("rbsts: tail leaf has a gapNode")
	}
	return nil
}

func (t *Tree[P, S]) validateNode(v *Node[P, S], depth int, leaves *[]*Node[P, S]) error {
	if v.depth != depth {
		return fmt.Errorf("rbsts: node depth=%d want %d", v.depth, depth)
	}
	if v.active != 0 {
		return fmt.Errorf("rbsts: node at depth %d has a leaked ACTIVE flag", depth)
	}
	if err := t.validateShortcuts(v); err != nil {
		return err
	}
	if v.IsLeaf() {
		if v.right != nil || v.leaves != 1 || v.height != 0 {
			return fmt.Errorf("rbsts: malformed leaf at depth %d", depth)
		}
		*leaves = append(*leaves, v)
		return nil
	}
	if v.right == nil {
		return fmt.Errorf("rbsts: internal node with one child at depth %d", depth)
	}
	if v.left.parent != v || v.right.parent != v {
		return fmt.Errorf("rbsts: child parent links broken at depth %d", depth)
	}
	if err := t.validateNode(v.left, depth+1, leaves); err != nil {
		return err
	}
	if err := t.validateNode(v.right, depth+1, leaves); err != nil {
		return err
	}
	if v.leaves != v.left.leaves+v.right.leaves {
		return fmt.Errorf("rbsts: leaf count wrong at depth %d", depth)
	}
	if v.height != 1+max(v.left.height, v.right.height) {
		return fmt.Errorf("rbsts: height wrong at depth %d", depth)
	}
	return nil
}

// validateShortcuts checks presence and targets of the shortcut list.
func (t *Tree[P, S]) validateShortcuts(v *Node[P, S]) error {
	if v.height >= t.shortcutMinHeight && v.depth > 0 {
		depths := shortcutDepths(v.depth)
		if len(v.shortcuts) != len(depths) {
			return fmt.Errorf("rbsts: node depth=%d height=%d has %d shortcuts, want %d",
				v.depth, v.height, len(v.shortcuts), len(depths))
		}
		for i, d := range depths {
			s := v.shortcuts[i]
			if s == nil || s.depth != d || !s.isAncestorOf(v) {
				return fmt.Errorf("rbsts: node depth=%d shortcut %d invalid", v.depth, i)
			}
		}
	}
	return nil
}

// SumOracle recomputes the aggregation of the whole tree from scratch
// (tests compare it against the maintained root sum).
func (t *Tree[P, S]) SumOracle() S {
	var zero S
	if t.root == nil || t.mergeFn == nil {
		return zero
	}
	var rec func(v *Node[P, S]) S
	rec = func(v *Node[P, S]) S {
		if v.IsLeaf() {
			return t.leafFn(v.payload)
		}
		return t.mergeFn(rec(v.left), rec(v.right))
	}
	return rec(t.root)
}

package rbsts

// Statistical tests of the random-split distribution: the
// RBST over leaves is equivalent to a treap over gaps with i.i.d.
// priorities, whose root split is uniform. These tests verify uniformity
// of split positions in trees maintained through the randomized-rebuild
// insert/delete paths, which is the exactness claim of Theorems 2.2/2.3.

import (
	"math"
	"testing"

	"dyntc/internal/prng"
)

// chiSquareUniform returns the chi-square statistic of observed counts
// against a uniform distribution over len(counts) buckets.
func chiSquareUniform(counts []int, total int) float64 {
	expect := float64(total) / float64(len(counts))
	var x2 float64
	for _, c := range counts {
		d := float64(c) - expect
		x2 += d * d / expect
	}
	return x2
}

// criticalValue999 approximates the 99.9% chi-square critical value for
// df degrees of freedom (Wilson–Hilferty).
func criticalValue999(df int) float64 {
	z := 3.09 // 99.9% normal quantile
	k := float64(df)
	return k * math.Pow(1-2/(9*k)+z*math.Sqrt(2/(9*k)), 3)
}

func TestFreshBuildSplitUniform(t *testing.T) {
	// Root split of a fresh 8-leaf tree must be uniform over 7 positions.
	const n, trials = 8, 14000
	counts := make([]int, n-1)
	for i := 0; i < trials; i++ {
		tr := newIntTree(uint64(i)+1, n)
		counts[tr.Root().Left().LeafCount()-1]++
	}
	if x2 := chiSquareUniform(counts, trials); x2 > criticalValue999(n-2) {
		t.Fatalf("fresh build split not uniform: chi2=%.1f counts=%v", x2, counts)
	}
}

func TestGrownSplitUniform(t *testing.T) {
	// Trees grown leaf-by-leaf through the Theorem 2.2 insertion procedure
	// must show the same uniform root split.
	const n, trials = 8, 14000
	src := prng.New(31337)
	counts := make([]int, n-1)
	for i := 0; i < trials; i++ {
		tr := newIntTree(uint64(i)*2+1, 1)
		for tr.Len() < n {
			gap := src.Intn(tr.Len() + 1)
			tr.BatchInsert(nil, []InsertOp[int64]{{Gap: gap, Payloads: []int64{0}}})
		}
		counts[tr.Root().Left().LeafCount()-1]++
	}
	if x2 := chiSquareUniform(counts, trials); x2 > criticalValue999(n-2) {
		t.Fatalf("grown split not uniform: chi2=%.1f counts=%v", x2, counts)
	}
}

func TestShrunkSplitUniform(t *testing.T) {
	// Trees shrunk through the deletion procedure must also stay uniform.
	const n, start, trials = 6, 12, 12000
	src := prng.New(271828)
	counts := make([]int, n-1)
	for i := 0; i < trials; i++ {
		tr := newIntTree(uint64(i)*2+7, start)
		for tr.Len() > n {
			tr.Delete(nil, tr.LeafAt(src.Intn(tr.Len())))
		}
		counts[tr.Root().Left().LeafCount()-1]++
	}
	if x2 := chiSquareUniform(counts, trials); x2 > criticalValue999(n-2) {
		t.Fatalf("shrunk split not uniform: chi2=%.1f counts=%v", x2, counts)
	}
}

func TestMixedChurnSplitUniform(t *testing.T) {
	// Interleaved inserts and deletes around a fixed size.
	const n, trials = 7, 12000
	src := prng.New(1618)
	counts := make([]int, n-1)
	for i := 0; i < trials; i++ {
		tr := newIntTree(uint64(i)*2+3, n)
		for step := 0; step < 10; step++ {
			gap := src.Intn(tr.Len() + 1)
			tr.BatchInsert(nil, []InsertOp[int64]{{Gap: gap, Payloads: []int64{0}}})
			tr.Delete(nil, tr.LeafAt(src.Intn(tr.Len())))
		}
		counts[tr.Root().Left().LeafCount()-1]++
	}
	if x2 := chiSquareUniform(counts, trials); x2 > criticalValue999(n-2) {
		t.Fatalf("churned split not uniform: chi2=%.1f counts=%v", x2, counts)
	}
}

package engine_test

// The race-detector stress test: N client goroutines hammer one Engine
// with mixed grow / collapse / set / value traffic, and the final root
// value (plus every value-query answer along the way) is asserted against
// a sequential replay of the same client programs on a plain Expr.
//
// Each client owns one region of the tree (the subtree under its assigned
// leaf) and runs a deterministic seeded program against it. Regions are
// disjoint, so (a) structural operations of different clients commute —
// replaying the clients one after another sequentially must yield the
// same final tree values as any concurrent interleaving — and (b) a value
// query inside a client's own region depends only on that client's
// earlier (program-ordered) operations, so the live answers are
// deterministic too and are compared against the replay exhaustively.

import (
	"sync"
	"testing"
	"time"

	"dyntc"
	"dyntc/internal/prng"
)

// applier abstracts "live through the engine" vs "sequential replay".
type applier interface {
	grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node)
	collapse(n *dyntc.Node, v int64)
	set(leaf *dyntc.Node, v int64)
	value(n *dyntc.Node) int64
}

type liveApplier struct {
	t  *testing.T
	en *dyntc.Engine
}

func (a liveApplier) grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node) {
	l, r, err := a.en.Grow(leaf, op, lv, rv)
	if err != nil {
		a.t.Errorf("live grow: %v", err)
	}
	return l, r
}
func (a liveApplier) collapse(n *dyntc.Node, v int64) {
	if err := a.en.Collapse(n, v); err != nil {
		a.t.Errorf("live collapse: %v", err)
	}
}
func (a liveApplier) set(leaf *dyntc.Node, v int64) {
	if err := a.en.SetLeaf(leaf, v); err != nil {
		a.t.Errorf("live set: %v", err)
	}
}
func (a liveApplier) value(n *dyntc.Node) int64 {
	v, err := a.en.Value(n)
	if err != nil {
		a.t.Errorf("live value: %v", err)
	}
	return v
}

type seqApplier struct{ e *dyntc.Expr }

func (a seqApplier) grow(leaf *dyntc.Node, op dyntc.Op, lv, rv int64) (*dyntc.Node, *dyntc.Node) {
	return a.e.Grow(leaf, op, lv, rv)
}
func (a seqApplier) collapse(n *dyntc.Node, v int64) { a.e.Collapse(n, v) }
func (a seqApplier) set(leaf *dyntc.Node, v int64)   { a.e.SetLeaf(leaf, v) }
func (a seqApplier) value(n *dyntc.Node) int64       { return a.e.Value(n) }

// frame is one grow the client has not collapsed yet: parent was a leaf,
// now internal with children left, right. Only the top frame's right
// child is ever grown further, so every left child stays a leaf and the
// top frame is always collapsible.
type frame struct{ parent, left, right *dyntc.Node }

// clientProgram replays deterministically: every choice depends only on
// the seeded rng and the stack depth.
type clientProgram struct {
	rng   *prng.Source
	ring  dyntc.Ring
	base  *dyntc.Node
	stack []frame
	vals  []int64 // value-query answers, in program order
}

func newClient(seed uint64, ring dyntc.Ring, base *dyntc.Node) *clientProgram {
	return &clientProgram{rng: prng.New(seed), ring: ring, base: base}
}

func (c *clientProgram) growTarget() *dyntc.Node {
	if len(c.stack) == 0 {
		return c.base
	}
	return c.stack[len(c.stack)-1].right
}

// settable returns a leaf of the client's region: a left child of some
// frame, the top frame's right child, or the base leaf.
func (c *clientProgram) settable() *dyntc.Node {
	k := len(c.stack)
	if k == 0 {
		return c.base
	}
	i := c.rng.Intn(k + 1)
	if i == k {
		return c.stack[k-1].right
	}
	return c.stack[i].left
}

// queryable returns any live node of the region.
func (c *clientProgram) queryable() *dyntc.Node {
	k := len(c.stack)
	if k == 0 {
		return c.base
	}
	f := c.stack[c.rng.Intn(k)]
	switch c.rng.Intn(3) {
	case 0:
		return f.parent
	case 1:
		return f.left
	}
	return f.right
}

const maxClientDepth = 24

func (c *clientProgram) step(a applier) {
	r := c.rng.Intn(100)
	switch {
	case r < 35 && len(c.stack) < maxClientDepth:
		target := c.growTarget()
		op := dyntc.OpAdd(c.ring)
		if c.rng.Intn(2) == 0 {
			op = dyntc.OpMul(c.ring)
		}
		lv, rv := int64(c.rng.Intn(1000)), int64(c.rng.Intn(1000))
		l, rt := a.grow(target, op, lv, rv)
		c.stack = append(c.stack, frame{parent: target, left: l, right: rt})
	case r < 55 && len(c.stack) > 0:
		f := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		a.collapse(f.parent, int64(c.rng.Intn(1000)))
	case r < 85:
		a.set(c.settable(), int64(c.rng.Intn(1000)))
	default:
		c.vals = append(c.vals, a.value(c.queryable()))
	}
}

// fanOut grows the single-leaf expression into n disjoint leaves
// (deterministically), one region root per client.
func fanOut(e *dyntc.Expr, ring dyntc.Ring, n int) []*dyntc.Node {
	leaves := []*dyntc.Node{e.Tree().Root}
	for len(leaves) < n {
		l, r := e.Grow(leaves[0], dyntc.OpAdd(ring), 1, 1)
		leaves = append(leaves[1:], l, r)
	}
	return leaves
}

func runStress(t *testing.T, clients, opsPerClient int, opts dyntc.BatchOptions, exprOpts ...dyntc.Option) {
	t.Helper()
	const seed = 7
	ring := dyntc.ModRing(1_000_000_007)

	// Live, concurrent run.
	live := dyntc.NewExpr(ring, 1, append([]dyntc.Option{dyntc.WithSeed(seed)}, exprOpts...)...)
	bases := fanOut(live, ring, clients)
	en := live.Serve(opts)
	progs := make([]*clientProgram, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		progs[i] = newClient(uint64(1000+i), ring, bases[i])
		wg.Add(1)
		go func(p *clientProgram) {
			defer wg.Done()
			a := liveApplier{t: t, en: en}
			for j := 0; j < opsPerClient; j++ {
				p.step(a)
			}
		}(progs[i])
	}
	wg.Wait()
	en.Close()
	liveRoot := live.Root()
	st := en.Stats()
	if st.Errors != 0 {
		t.Fatalf("live run produced %d validation errors", st.Errors)
	}

	// Sequential replay oracle: same programs, client after client, on a
	// plain Expr.
	replay := dyntc.NewExpr(ring, 1, dyntc.WithSeed(seed))
	rbases := fanOut(replay, ring, clients)
	for i := 0; i < clients; i++ {
		p := newClient(uint64(1000+i), ring, rbases[i])
		a := seqApplier{e: replay}
		for j := 0; j < opsPerClient; j++ {
			p.step(a)
		}
		// Every value query must have returned the same answer live.
		if len(p.vals) != len(progs[i].vals) {
			t.Fatalf("client %d: %d live value queries vs %d replayed",
				i, len(progs[i].vals), len(p.vals))
		}
		for j := range p.vals {
			if p.vals[j] != progs[i].vals[j] {
				t.Fatalf("client %d value query %d: live %d, replay %d",
					i, j, progs[i].vals[j], p.vals[j])
			}
		}
	}
	if replay.Root() != liveRoot {
		t.Fatalf("root: live %d, sequential replay %d", liveRoot, replay.Root())
	}
	t.Logf("clients=%d ops/client=%d root=%d meanFlush=%.2f meanWave=%.2f maxFlush=%d",
		clients, opsPerClient, liveRoot, st.MeanFlush(), st.MeanWave(), st.MaxFlush)
}

func TestStressOracle(t *testing.T) {
	runStress(t, 8, 200, dyntc.BatchOptions{})
}

// TestStressOracleWorkers4 runs the oracle with waves executing on a
// 4-worker PRAM pool, with the grain forced low so even small batches
// take the pool path. Under -race this exercises the persistent pool's
// chunk claiming against the full engine stack; the sequential replay
// proves pool execution changes no result.
func TestStressOracleWorkers4(t *testing.T) {
	runStress(t, 8, 200, dyntc.BatchOptions{Workers: 4}, dyntc.WithGrain(8))
}

// TestStressOracleSharedPool4Workers runs the oracle with the full
// shared-scheduler stack: wave sub-batches scheduled as task groups on a
// 4-worker pool and the machine's steps chunked onto the same workers.
// Under -race this drives lane scheduling, chunk claiming and stealing
// against the whole engine; the sequential replay proves shared-pool
// execution changes no result.
func TestStressOracleSharedPool4Workers(t *testing.T) {
	pool := dyntc.NewSchedPool(4)
	defer pool.Close()
	runStress(t, 8, 200, dyntc.BatchOptions{Workers: 4, Pool: pool},
		dyntc.WithGrain(8), dyntc.WithPool(pool))
}

func TestStressOracleManyClients(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runStress(t, 32, 150, dyntc.BatchOptions{})
}

func TestStressOracleWindowed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runStress(t, 16, 100, dyntc.BatchOptions{Window: 200 * time.Microsecond})
}

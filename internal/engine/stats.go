package engine

import "sync/atomic"

// statsRec is the executor-side accumulator. Counters are atomics so
// Stats() snapshots from any goroutine without touching the executor.
type statsRec struct {
	requests  atomic.Uint64
	flushes   atomic.Uint64
	waves     atomic.Uint64
	errors    atomic.Uint64
	maxFlush  atomic.Int64
	grows     atomic.Uint64
	collapses atomic.Uint64
	setLeaves atomic.Uint64
	setOps    atomic.Uint64
	values    atomic.Uint64
	roots     atomic.Uint64
	barriers  atomic.Uint64
}

func (s *statsRec) flush(n int) {
	s.requests.Add(uint64(n))
	s.flushes.Add(1)
	for {
		cur := s.maxFlush.Load()
		if int64(n) <= cur || s.maxFlush.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func (s *statsRec) wave() { s.waves.Add(1) }
func (s *statsRec) fail() { s.errors.Add(1) }

func (s *statsRec) done(k kind) {
	switch k {
	case kGrow:
		s.grows.Add(1)
	case kCollapse:
		s.collapses.Add(1)
	case kSetLeaf:
		s.setLeaves.Add(1)
	case kSetOp:
		s.setOps.Add(1)
	case kValue:
		s.values.Add(1)
	case kRoot:
		s.roots.Add(1)
	case kBarrier:
		s.barriers.Add(1)
	}
}

// Stats is a snapshot of an engine's coalescing behaviour.
type Stats struct {
	Requests uint64 `json:"requests"`  // requests that reached the executor
	Flushes  uint64 `json:"flushes"`   // adaptive batches executed
	Waves    uint64 `json:"waves"`     // conflict-free waves executed
	Errors   uint64 `json:"errors"`    // requests failed by validation
	MaxFlush int64  `json:"max_flush"` // largest flush seen
	Workers  int    `json:"workers"`   // configured PRAM worker parallelism (0 = host default)

	Grows     uint64 `json:"grows"`
	Collapses uint64 `json:"collapses"`
	SetLeaves uint64 `json:"set_leaves"`
	SetOps    uint64 `json:"set_ops"`
	Values    uint64 `json:"values"`
	Roots     uint64 `json:"roots"`
	Barriers  uint64 `json:"barriers"`
}

// MeanFlush is the mean executed batch size: requests per flush. Under
// concurrent load this exceeds 1 — the whole point of coalescing.
func (s Stats) MeanFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Flushes)
}

// MeanWave is the mean conflict-free wave input: requests per wave.
func (s Stats) MeanWave() float64 {
	if s.Waves == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Waves)
}

// Add accumulates other into s (for forest-wide aggregation).
func (s *Stats) Add(other Stats) {
	s.Requests += other.Requests
	s.Flushes += other.Flushes
	s.Waves += other.Waves
	s.Errors += other.Errors
	if other.MaxFlush > s.MaxFlush {
		s.MaxFlush = other.MaxFlush
	}
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	s.Grows += other.Grows
	s.Collapses += other.Collapses
	s.SetLeaves += other.SetLeaves
	s.SetOps += other.SetOps
	s.Values += other.Values
	s.Roots += other.Roots
	s.Barriers += other.Barriers
}

// Stats returns a point-in-time snapshot.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:  e.stats.requests.Load(),
		Flushes:   e.stats.flushes.Load(),
		Waves:     e.stats.waves.Load(),
		Errors:    e.stats.errors.Load(),
		MaxFlush:  e.stats.maxFlush.Load(),
		Workers:   e.opts.Workers,
		Grows:     e.stats.grows.Load(),
		Collapses: e.stats.collapses.Load(),
		SetLeaves: e.stats.setLeaves.Load(),
		SetOps:    e.stats.setOps.Load(),
		Values:    e.stats.values.Load(),
		Roots:     e.stats.roots.Load(),
		Barriers:  e.stats.barriers.Load(),
	}
}

package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dyntc/internal/pram"
)

// latWindow is the number of recent flush latencies retained for the
// p50/p99 estimates: enough to smooth noise, cheap to sort on Stats().
const latWindow = 256

// statsRec is the executor-side accumulator. Counters are atomics so
// Stats() snapshots from any goroutine without touching the executor; the
// flush-latency window is a small mutex-guarded ring (one executor write
// per flush, rare reader).
type statsRec struct {
	requests     atomic.Uint64
	flushes      atomic.Uint64
	waves        atomic.Uint64
	errors       atomic.Uint64
	dropped      atomic.Uint64
	shedded      atomic.Uint64
	maxFlush     atomic.Int64
	batchGrows   atomic.Uint64
	batchShrinks atomic.Uint64
	grows        atomic.Uint64
	collapses    atomic.Uint64
	setLeaves    atomic.Uint64
	setOps       atomic.Uint64
	values       atomic.Uint64
	roots        atomic.Uint64
	barriers     atomic.Uint64
	healRecords  atomic.Uint64
	resims       atomic.Uint64

	latMu sync.Mutex
	lat   [latWindow]int64 // recent flush durations, nanoseconds
	latN  int              // total recorded (ring position = latN % latWindow)
}

func (s *statsRec) flush(n int) {
	s.requests.Add(uint64(n))
	s.flushes.Add(1)
	for {
		cur := s.maxFlush.Load()
		if int64(n) <= cur || s.maxFlush.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func (s *statsRec) wave() { s.waves.Add(1) }
func (s *statsRec) fail() { s.errors.Add(1) }

// drop counts requests discarded without execution (engine closed or
// poisoned): the load-shedding visibility counter.
func (s *statsRec) drop(n int) { s.dropped.Add(uint64(n)) }

// shed counts requests rejected at submit because the queue was full
// (Options.Shed engines): the 429 visibility counter.
func (s *statsRec) shed(n int) { s.shedded.Add(uint64(n)) }

// flushDone records one flush's end-to-end executor latency.
func (s *statsRec) flushDone(d time.Duration) {
	s.latMu.Lock()
	s.lat[s.latN%latWindow] = int64(d)
	s.latN++
	s.latMu.Unlock()
}

// window appends a copy of the retained flush-latency samples
// (nanoseconds) to buf — the seam forest aggregation merges across
// engines so forest percentiles describe the combined distribution, not
// the worst tree.
func (s *statsRec) window(buf []int64) []int64 {
	s.latMu.Lock()
	n := s.latN
	if n > latWindow {
		n = latWindow
	}
	buf = append(buf, s.lat[:n]...)
	s.latMu.Unlock()
	return buf
}

// percentilesUS returns the p50/p99 of a set of nanosecond latencies, in
// microseconds (0, 0 when empty). Sorts buf in place.
func percentilesUS(buf []int64) (p50, p99 float64) {
	n := len(buf)
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(n-1))
		return float64(buf[i]) / 1e3
	}
	return pick(0.50), pick(0.99)
}

// latencies returns the p50/p99 of the retained flush-latency window, in
// microseconds (0, 0 before the first flush).
func (s *statsRec) latencies() (p50, p99 float64) {
	return percentilesUS(s.window(nil))
}

func (s *statsRec) done(k kind) {
	switch k {
	case kGrow:
		s.grows.Add(1)
	case kCollapse:
		s.collapses.Add(1)
	case kSetLeaf:
		s.setLeaves.Add(1)
	case kSetOp:
		s.setOps.Add(1)
	case kValue:
		s.values.Add(1)
	case kRoot:
		s.roots.Add(1)
	case kBarrier:
		s.barriers.Add(1)
	}
}

// Stats is a snapshot of an engine's coalescing behaviour.
type Stats struct {
	Requests uint64 `json:"requests"`  // requests that reached the executor
	Flushes  uint64 `json:"flushes"`   // adaptive batches executed
	Waves    uint64 `json:"waves"`     // conflict-free waves executed
	Errors   uint64 `json:"errors"`    // requests failed by validation
	Dropped  uint64 `json:"dropped"`   // requests discarded unexecuted (closed / poisoned)
	Shed     uint64 `json:"shed"`      // requests rejected at submit, queue full (Options.Shed)
	MaxFlush int64  `json:"max_flush"` // largest flush seen
	Workers  int    `json:"workers"`   // configured PRAM worker parallelism (0 = host default)

	// Adaptive batching: the current flush cap (starts at Options.MaxBatch,
	// grows while flushes saturate) and how often it moved.
	CurMaxBatch  int64  `json:"cur_max_batch"`
	BatchGrows   uint64 `json:"batch_grows"`
	BatchShrinks uint64 `json:"batch_shrinks"`

	// SharedPool reports whether waves execute on the shared runtime
	// scheduler (Options.Pool) instead of inline on the executor.
	SharedPool bool `json:"shared_pool"`

	// Grain is the host machine's current sequential threshold per batch
	// kind (adaptive unless pinned; zero when the host does not report it).
	Grain GrainStats `json:"grain"`

	// Backpressure visibility: the submit queue's instantaneous depth and
	// the executor's recent flush latency distribution.
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	FlushP50US float64 `json:"flush_p50_us"` // median flush latency, µs
	FlushP99US float64 `json:"flush_p99_us"` // p99 flush latency, µs

	// AppliedSeq is the engine's wave change-log position: the sequence
	// number of the last mutating wave executed. In forest aggregates it
	// sums to the total mutating waves applied across trees.
	AppliedSeq uint64 `json:"applied_seq"`

	Grows     uint64 `json:"grows"`
	Collapses uint64 `json:"collapses"`
	SetLeaves uint64 `json:"set_leaves"`
	SetOps    uint64 `json:"set_ops"`
	Values    uint64 `json:"values"`
	Roots     uint64 `json:"roots"`
	Barriers  uint64 `json:"barriers"`

	// Heal cost of the mutating waves: trace records re-executed in
	// total, and how many waves fell back to a full re-simulation of the
	// contraction instead of change propagation.
	HealRecords   uint64 `json:"heal_records"`
	Resimulations uint64 `json:"resimulations"`
}

// GrainStats is the host machine's current per-kind sequential threshold
// (see pram.StepKind): how many processors a step needs before it leaves
// the calling goroutine for the shared pool, tuned from measured cost.
type GrainStats struct {
	Default  int `json:"default"`
	Grow     int `json:"grow"`
	Collapse int `json:"collapse"`
	Set      int `json:"set"`
	Value    int `json:"value"`
}

func (g *GrainStats) maxWith(other GrainStats) {
	if other.Default > g.Default {
		g.Default = other.Default
	}
	if other.Grow > g.Grow {
		g.Grow = other.Grow
	}
	if other.Collapse > g.Collapse {
		g.Collapse = other.Collapse
	}
	if other.Set > g.Set {
		g.Set = other.Set
	}
	if other.Value > g.Value {
		g.Value = other.Value
	}
}

// MeanFlush is the mean executed batch size: requests per flush. Under
// concurrent load this exceeds 1 — the whole point of coalescing.
func (s Stats) MeanFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Flushes)
}

// MeanWave is the mean conflict-free wave input: requests per wave.
func (s Stats) MeanWave() float64 {
	if s.Waves == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Waves)
}

// Add accumulates other into s: counters and queue depths sum, Workers
// takes the largest pool. Percentiles cannot be merged from two snapshots,
// so Add keeps the worst engine's values — an upper bound, not the
// combined distribution; Forest.TotalStats, which can reach the engines'
// retained latency windows, overwrites them with the true forest-wide
// percentiles.
func (s *Stats) Add(other Stats) {
	s.Requests += other.Requests
	s.Flushes += other.Flushes
	s.Waves += other.Waves
	s.Errors += other.Errors
	s.Dropped += other.Dropped
	s.Shed += other.Shed
	s.QueueDepth += other.QueueDepth
	s.QueueCap += other.QueueCap
	s.AppliedSeq += other.AppliedSeq
	if other.FlushP50US > s.FlushP50US {
		s.FlushP50US = other.FlushP50US
	}
	if other.FlushP99US > s.FlushP99US {
		s.FlushP99US = other.FlushP99US
	}
	if other.MaxFlush > s.MaxFlush {
		s.MaxFlush = other.MaxFlush
	}
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	if other.CurMaxBatch > s.CurMaxBatch {
		s.CurMaxBatch = other.CurMaxBatch
	}
	s.BatchGrows += other.BatchGrows
	s.BatchShrinks += other.BatchShrinks
	s.SharedPool = s.SharedPool || other.SharedPool
	s.Grain.maxWith(other.Grain)
	s.Grows += other.Grows
	s.Collapses += other.Collapses
	s.SetLeaves += other.SetLeaves
	s.SetOps += other.SetOps
	s.Values += other.Values
	s.Roots += other.Roots
	s.Barriers += other.Barriers
	s.HealRecords += other.HealRecords
	s.Resimulations += other.Resimulations
}

// Stats returns a point-in-time snapshot.
func (e *Engine) Stats() Stats {
	p50, p99 := e.stats.latencies()
	s := Stats{
		Requests:     e.stats.requests.Load(),
		Flushes:      e.stats.flushes.Load(),
		Waves:        e.stats.waves.Load(),
		Errors:       e.stats.errors.Load(),
		Dropped:      e.stats.dropped.Load(),
		Shed:         e.stats.shedded.Load(),
		MaxFlush:     e.stats.maxFlush.Load(),
		Workers:      e.opts.Workers,
		CurMaxBatch:  e.curMax.Load(),
		BatchGrows:   e.stats.batchGrows.Load(),
		BatchShrinks: e.stats.batchShrinks.Load(),
		SharedPool:   e.opts.Pool != nil,
		QueueDepth:   len(e.ch),
		QueueCap:     e.opts.Queue,
		FlushP50US:   p50,
		FlushP99US:   p99,
		AppliedSeq:   e.appliedSeq.Load(),
		Grows:        e.stats.grows.Load(),
		Collapses:    e.stats.collapses.Load(),
		SetLeaves:    e.stats.setLeaves.Load(),
		SetOps:       e.stats.setOps.Load(),
		Values:       e.stats.values.Load(),
		Roots:        e.stats.roots.Load(),
		Barriers:     e.stats.barriers.Load(),

		HealRecords:   e.stats.healRecords.Load(),
		Resimulations: e.stats.resims.Load(),
	}
	if e.grainer != nil {
		g := e.grainer.StepGrains()
		s.Grain = GrainStats{
			Default:  g[pram.KindDefault],
			Grow:     g[pram.KindGrow],
			Collapse: g[pram.KindCollapse],
			Set:      g[pram.KindSet],
			Value:    g[pram.KindValue],
		}
	}
	return s
}

package engine

import (
	"dyntc/internal/core"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// Local aliases for the host-side types, so Host's method set is written
// once and matches dyntc.Expr's signatures exactly.
type (
	// TreeT is the host expression tree.
	TreeT = tree.Tree
	// NodeT is a node of the host tree.
	NodeT = tree.Node
	// OpT is a symmetric node operation.
	OpT = semiring.Op
	// GrowOp is one leaf expansion of a grow batch.
	GrowOp = core.AddOp
	// CollapseOp is one leaf-pair deletion of a collapse batch.
	CollapseOp = core.RemoveOp
	// HealStats is the per-wave heal cost report of the contraction core.
	HealStats = core.HealStats
)

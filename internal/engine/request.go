package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dyntc/internal/obs"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// Errors reported through futures. Engine validation replaces the panics of
// internal/core: a malformed request fails its own future and never reaches
// the contraction, so one bad client cannot take the executor down.
var (
	// ErrClosed reports a submit after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrDeadNode reports a request addressing a deleted (or foreign) node.
	ErrDeadNode = errors.New("engine: node is not live in this tree")
	// ErrNotLeaf reports Grow/SetLeaf on an internal node.
	ErrNotLeaf = errors.New("engine: node is not a leaf")
	// ErrNotCollapsible reports Collapse on a node without two leaf children.
	ErrNotCollapsible = errors.New("engine: node does not have two leaf children")
	// ErrNotInternal reports SetOp on a leaf.
	ErrNotInternal = errors.New("engine: node is not an internal node")
	// ErrPoisoned reports that a previous executor panic left the structure
	// in an unknown state; the engine refuses further traffic.
	ErrPoisoned = errors.New("engine: poisoned by a previous executor panic")
	// ErrTreeExists reports a Forest.AddAt under an id already serving.
	ErrTreeExists = errors.New("engine: forest already serves this tree id")
	// ErrOverloaded reports a submit rejected because the queue was full
	// (engines with Options.Shed; blocking engines never return it).
	ErrOverloaded = errors.New("engine: submit queue full")
)

// NodeRef addresses a node of the host tree either by live handle or by its
// dense tree ID. ID-based refs are resolved on the executor goroutine
// against a quiescent tree, which is what remote callers (cmd/dyntcd) need:
// they never hold *tree.Node pointers.
type NodeRef struct {
	N    *tree.Node
	ID   int
	ByID bool
}

// Ref addresses a node by live handle.
func Ref(n *tree.Node) NodeRef { return NodeRef{N: n} }

// RefID addresses a node by tree ID.
func RefID(id int) NodeRef { return NodeRef{ID: id, ByID: true} }

// kind enumerates the request kinds the engine coalesces.
type kind uint8

const (
	kGrow kind = iota
	kCollapse
	kSetLeaf
	kSetOp
	kValue
	kRoot
	kBarrier
)

func (k kind) String() string {
	switch k {
	case kGrow:
		return "grow"
	case kCollapse:
		return "collapse"
	case kSetLeaf:
		return "set-leaf"
	case kSetOp:
		return "set-op"
	case kValue:
		return "value"
	case kRoot:
		return "root"
	case kBarrier:
		return "barrier"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Future is one submitted request. The submitting goroutine keeps the only
// reference until the executor resolves it; Wait blocks until then. A
// Future is resolved exactly once and may be waited on by any number of
// goroutines afterwards.
//
// Futures come from a pool: the hot submit→execute→wait cycle reuses the
// struct, its mutex and its condition variable, so steady-state request
// traffic does not allocate per request. A caller that has fully consumed
// a resolved Future may hand it back with Recycle; the synchronous
// convenience wrappers (dyntc.Engine.Grow etc.) do so automatically.
type Future struct {
	kind kind
	ref  NodeRef
	op   semiring.Op
	a, b int64           // grow: left/right values; set-leaf/collapse: new value in a
	fn   func(Host)      // barrier payload
	at   time.Time       // submit time, stamped only on timing-enabled engines
	span obs.SpanContext // distributed-trace context, zero for untraced requests

	// resolution — written by the executor under mu; waiters block on
	// cond until resolved flips. doneCh is only materialized when Done()
	// is called (select-style waiters), so the common blocking path is
	// allocation-free.
	mu       sync.Mutex
	cond     sync.Cond
	resolved bool
	doneCh   chan struct{}
	val      int64
	seq      uint64 // applied-wave sequence observed by read requests
	pair     [2]*tree.Node
	err      error
}

var futurePool = sync.Pool{New: func() any {
	f := &Future{}
	f.cond.L = &f.mu
	return f
}}

// newFuture returns a pooled, fully reset Future for one request.
func newFuture(k kind) *Future {
	f := futurePool.Get().(*Future)
	f.kind = k
	return f
}

// resolve fills the result and releases waiters. Must be called exactly
// once per Future lifetime, by the executor (or by a failed submit while
// the caller still holds the only reference).
func (f *Future) resolve(val int64, pair [2]*tree.Node, err error) {
	f.mu.Lock()
	f.val, f.pair, f.err = val, pair, err
	f.resolved = true
	if f.doneCh != nil {
		close(f.doneCh)
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Done returns a channel closed when the request has executed (or failed).
// The channel is created on first call; prefer Wait/Value/Pair, which do
// not allocate.
func (f *Future) Done() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.doneCh == nil {
		f.doneCh = make(chan struct{})
		if f.resolved {
			close(f.doneCh)
		}
	}
	return f.doneCh
}

// Wait blocks until the request has executed and returns its error.
func (f *Future) Wait() error {
	f.mu.Lock()
	for !f.resolved {
		f.cond.Wait()
	}
	err := f.err
	f.mu.Unlock()
	return err
}

// Value returns the request's scalar result (value / root queries) after
// Wait.
func (f *Future) Value() (int64, error) {
	f.mu.Lock()
	for !f.resolved {
		f.cond.Wait()
	}
	val, err := f.val, f.err
	f.mu.Unlock()
	return val, err
}

// ValueSeq returns the request's scalar result together with the engine's
// applied-wave sequence number at the moment the request executed. For
// value / root / barrier requests the sequence identifies exactly which
// version of the tree answered — the fan-in contract cross-tree queries
// join on. Mutating requests and requests failed by validation report
// sequence 0.
func (f *Future) ValueSeq() (int64, uint64, error) {
	f.mu.Lock()
	for !f.resolved {
		f.cond.Wait()
	}
	val, seq, err := f.val, f.seq, f.err
	f.mu.Unlock()
	return val, seq, err
}

// Pair returns the two leaves created by a grow request after Wait.
func (f *Future) Pair() (l, r *tree.Node, err error) {
	f.mu.Lock()
	for !f.resolved {
		f.cond.Wait()
	}
	l, r, err = f.pair[0], f.pair[1], f.err
	f.mu.Unlock()
	return l, r, err
}

// Recycle returns a resolved Future to the allocation pool. Call it only
// when the request has resolved and no other goroutine holds a reference;
// afterwards the Future must not be touched. Recycling is optional — an
// abandoned Future is simply garbage collected — and a no-op on a Future
// that has not resolved yet.
func (f *Future) Recycle() {
	f.mu.Lock()
	if !f.resolved {
		f.mu.Unlock()
		return
	}
	f.kind = 0
	f.ref = NodeRef{}
	f.op = semiring.Op{}
	f.a, f.b = 0, 0
	f.fn = nil
	f.at = time.Time{}
	f.span = obs.SpanContext{}
	f.resolved = false
	f.doneCh = nil
	f.val = 0
	f.seq = 0
	f.pair = [2]*tree.Node{}
	f.err = nil
	f.mu.Unlock()
	futurePool.Put(f)
}

package engine

import (
	"errors"
	"fmt"

	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// Errors reported through futures. Engine validation replaces the panics of
// internal/core: a malformed request fails its own future and never reaches
// the contraction, so one bad client cannot take the executor down.
var (
	// ErrClosed reports a submit after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrDeadNode reports a request addressing a deleted (or foreign) node.
	ErrDeadNode = errors.New("engine: node is not live in this tree")
	// ErrNotLeaf reports Grow/SetLeaf on an internal node.
	ErrNotLeaf = errors.New("engine: node is not a leaf")
	// ErrNotCollapsible reports Collapse on a node without two leaf children.
	ErrNotCollapsible = errors.New("engine: node does not have two leaf children")
	// ErrNotInternal reports SetOp on a leaf.
	ErrNotInternal = errors.New("engine: node is not an internal node")
	// ErrPoisoned reports that a previous executor panic left the structure
	// in an unknown state; the engine refuses further traffic.
	ErrPoisoned = errors.New("engine: poisoned by a previous executor panic")
)

// NodeRef addresses a node of the host tree either by live handle or by its
// dense tree ID. ID-based refs are resolved on the executor goroutine
// against a quiescent tree, which is what remote callers (cmd/dyntcd) need:
// they never hold *tree.Node pointers.
type NodeRef struct {
	N    *tree.Node
	ID   int
	ByID bool
}

// Ref addresses a node by live handle.
func Ref(n *tree.Node) NodeRef { return NodeRef{N: n} }

// RefID addresses a node by tree ID.
func RefID(id int) NodeRef { return NodeRef{ID: id, ByID: true} }

// kind enumerates the request kinds the engine coalesces.
type kind uint8

const (
	kGrow kind = iota
	kCollapse
	kSetLeaf
	kSetOp
	kValue
	kRoot
	kBarrier
)

func (k kind) String() string {
	switch k {
	case kGrow:
		return "grow"
	case kCollapse:
		return "collapse"
	case kSetLeaf:
		return "set-leaf"
	case kSetOp:
		return "set-op"
	case kValue:
		return "value"
	case kRoot:
		return "root"
	case kBarrier:
		return "barrier"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Future is one submitted request. The submitting goroutine keeps the only
// reference until the executor resolves it; Wait blocks until then. A
// Future is resolved exactly once and may be waited on by any number of
// goroutines afterwards.
type Future struct {
	kind kind
	ref  NodeRef
	op   semiring.Op
	a, b int64      // grow: left/right values; set-leaf/collapse: new value in a
	fn   func(Host) // barrier payload

	// resolution — written by the executor before close(done), read by
	// waiters after <-done; the channel provides the happens-before edge.
	val  int64
	pair [2]*tree.Node
	err  error
	done chan struct{}
}

func newFuture(k kind) *Future {
	return &Future{kind: k, done: make(chan struct{})}
}

// resolve fills the result and releases waiters. Must be called exactly
// once, by the executor.
func (f *Future) resolve(val int64, pair [2]*tree.Node, err error) {
	f.val, f.pair, f.err = val, pair, err
	close(f.done)
}

// Done returns a channel closed when the request has executed (or failed).
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the request has executed and returns its error.
func (f *Future) Wait() error {
	<-f.done
	return f.err
}

// Value returns the request's scalar result (value / root queries) after
// Wait.
func (f *Future) Value() (int64, error) {
	<-f.done
	return f.val, f.err
}

// Pair returns the two leaves created by a grow request after Wait.
func (f *Future) Pair() (l, r *tree.Node, err error) {
	<-f.done
	return f.pair[0], f.pair[1], f.err
}

package engine

import (
	"time"

	"dyntc/internal/obs"
)

// This file is the engine layer's observability wiring: histogram
// instruments over the wave pipeline (submit → coalesce wait → flush →
// per-kind phase → seal/tap → ack), sampled per-flush trace records, and
// the slow-wave hook. All of it is opt-in through Options; an engine
// without Obs/Trace/SlowWave configured takes exactly one bool check per
// flush and nothing per request.

// numStages is the wave phases plus the barrier pseudo-phase (barriers
// are dispatched directly, outside the phase table).
const numStages = numPhases + 1

// stageBarrierIdx indexes the barrier slot of scratch.stageNS.
const stageBarrierIdx = numPhases

// stageNames labels each stage slot for the stage-seconds histogram.
var stageNames = [numStages]string{
	"grow", "collapse", "set-leaf", "set-op", "seal", "value", "barrier",
}

// Obs bundles the engine layer's metric instruments. One Obs is shared by
// every engine of a forest — the instruments are atomic, and per-tree
// label cardinality would make a 10k-tree forest unscrapeable — so the
// histograms describe the whole forest's wave pipeline.
type Obs struct {
	// FlushSeconds is the wall time of one coalesced flush: flush start to
	// every request of the flush acked.
	FlushSeconds *obs.Histogram
	// CoalesceSeconds is how long a flush's oldest request waited between
	// submit and flush start — the price of batching.
	CoalesceSeconds *obs.Histogram
	// Stage is per-phase execution time, one histogram sample per flush
	// per non-empty stage (grow, collapse, set-leaf, set-op, seal —
	// change-record build plus tap/WAL append —, value, barrier).
	Stage [numStages]*obs.Histogram
	// HealRecords is the number of trace records a mutating wave's heal
	// re-executed — the change-propagation cost, one sample per wave. A
	// distribution hugging the tree's log n is healthy; samples near the
	// trace size mean waves are re-simulating.
	HealRecords *obs.Histogram
}

// healRecordBuckets are power-of-four record counts: heal costs range
// from a handful of records (a local wound) to millions (a re-simulated
// big tree), so the buckets must span six orders of magnitude cheaply.
var healRecordBuckets = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// NewObs registers the engine histogram families on reg and returns the
// instrument bundle to put in Options.Obs.
func NewObs(r *obs.Registry) *Obs {
	o := &Obs{
		FlushSeconds: r.Seconds("dyntc_engine_flush_seconds",
			"wall time of one coalesced flush, start to all requests acked"),
		CoalesceSeconds: r.Seconds("dyntc_engine_coalesce_wait_seconds",
			"wait of a flush's oldest request between submit and flush start"),
	}
	for i, name := range stageNames {
		o.Stage[i] = r.Seconds("dyntc_engine_stage_seconds",
			"execution time of one wave phase, summed per flush", "stage", name)
	}
	o.HealRecords = r.HistogramWith("dyntc_heal_wave_records",
		"trace records re-executed by one mutating wave's heal", healRecordBuckets, 1)
	return o
}

// RegisterStatsFuncs exports the engine layer's counter and gauge
// families on reg as scrape-time functions over a Stats provider —
// typically a cached Forest.TotalStats, so the engines' own atomic
// counters are the single source of truth and the request path carries no
// second set of increments.
func RegisterStatsFuncs(r *obs.Registry, stats func() Stats) {
	kinds := []struct {
		label string
		get   func(Stats) uint64
	}{
		{"grow", func(s Stats) uint64 { return s.Grows }},
		{"collapse", func(s Stats) uint64 { return s.Collapses }},
		{"set-leaf", func(s Stats) uint64 { return s.SetLeaves }},
		{"set-op", func(s Stats) uint64 { return s.SetOps }},
		{"value", func(s Stats) uint64 { return s.Values }},
		{"root", func(s Stats) uint64 { return s.Roots }},
		{"barrier", func(s Stats) uint64 { return s.Barriers }},
	}
	for _, k := range kinds {
		get := k.get
		r.CounterFunc("dyntc_engine_requests_total", "requests executed, by kind",
			func() float64 { return float64(get(stats())) }, "kind", k.label)
	}
	r.CounterFunc("dyntc_engine_flushes_total", "coalesced flushes executed",
		func() float64 { return float64(stats().Flushes) })
	r.CounterFunc("dyntc_engine_waves_total", "conflict-free waves executed",
		func() float64 { return float64(stats().Waves) })
	r.CounterFunc("dyntc_heal_records_total", "trace records re-executed by mutating-wave heals",
		func() float64 { return float64(stats().HealRecords) })
	r.CounterFunc("dyntc_resimulations_total", "mutating waves that fell back to full re-simulation",
		func() float64 { return float64(stats().Resimulations) })
	r.CounterFunc("dyntc_engine_errors_total", "requests failed by validation",
		func() float64 { return float64(stats().Errors) })
	r.CounterFunc("dyntc_engine_dropped_total", "requests discarded unexecuted (closed or poisoned)",
		func() float64 { return float64(stats().Dropped) })
	r.CounterFunc("dyntc_engine_shed_total", "requests rejected at submit, queue full",
		func() float64 { return float64(stats().Shed) })
	r.GaugeFunc("dyntc_engine_queue_depth", "submitted requests currently queued, all trees",
		func() float64 { return float64(stats().QueueDepth) })
	r.GaugeFunc("dyntc_engine_applied_seq", "mutating waves applied, summed over trees",
		func() float64 { return float64(stats().AppliedSeq) })
	r.GaugeFunc("dyntc_engine_cur_max_batch", "largest adaptive flush cap across trees",
		func() float64 { return float64(stats().CurMaxBatch) })
	r.GaugeFunc("dyntc_engine_flush_p50_seconds", "median flush latency over the merged retained windows",
		func() float64 { return stats().FlushP50US / 1e6 })
	r.GaugeFunc("dyntc_engine_flush_p99_seconds", "p99 flush latency over the merged retained windows",
		func() float64 { return stats().FlushP99US / 1e6 })
}

// SetTraceID sets the tree id stamped into this engine's trace records —
// forests set it to the tree's forest id right after Add/AddAt.
func (e *Engine) SetTraceID(id uint64) { e.traceID.Store(id) }

// beginFlushSpan decides, at flush start, whether this flush is recorded
// into the span log: every TraceSample-th flush, any flush while the
// anomaly flight recorder's boost is active, or any flush carrying a
// request with an explicit trace context (the first such request's trace
// is adopted, so an X-Dyntc-Trace header forces end-to-end tracing). The
// unsampled path is allocation-free: one counter compare, one atomic
// boost load, plus one span field compare per request.
func (e *Engine) beginFlushSpan(flush []*Future, flushStart time.Time) {
	sc := &e.sc
	sc.spanActive = false
	sc.spanTrace, sc.spanParent, sc.spanFlush = 0, 0, 0
	sc.flushT0 = flushStart
	if e.opts.Spans == nil {
		return
	}
	sampled := e.flushSeq%uint64(e.opts.TraceSample) == 0 ||
		e.opts.Boost.Active(flushStart.UnixNano())
	for _, f := range flush {
		if f.span.Valid() {
			sc.spanTrace, sc.spanParent = f.span.Trace, f.span.Span
			sampled = true
			break
		}
	}
	if !sampled {
		return
	}
	sc.spanActive = true
	if sc.spanTrace == 0 {
		sc.spanTrace = obs.NewTraceID()
	}
	sc.spanFlush = obs.NewSpanID()
	for i := range sc.stageStart {
		sc.stageStart[i] = -1
	}
}

// emitFlushSpans records the sampled flush's span tree: the flush span
// (parented on the adopting request's ingest span, when one exists), an
// engine.coalesce span for the batching wait, and one child span per
// stage that ran, timestamped from the stage's first start within the
// flush. Wave anchor spans were already emitted by phaseSealWave.
func (e *Engine) emitFlushSpans(reqs int, coalesceNS, flushNS int64) {
	sc := &e.sc
	sl := e.opts.Spans
	tree := e.traceID.Load()
	epoch := e.epoch.Load()
	t0 := sc.flushT0.UnixNano()
	sl.Add(obs.Span{
		Trace:  sc.spanTrace,
		Span:   sc.spanFlush,
		Parent: sc.spanParent,
		Name:   "engine.flush",
		Tree:   tree,
		Seq:    e.appliedSeq.Load(),
		Epoch:  epoch,
		Start:  t0,
		Dur:    flushNS,
		Reqs:   reqs,
	})
	if coalesceNS > 0 {
		sl.Add(obs.Span{
			Trace:  sc.spanTrace,
			Span:   obs.NewSpanID(),
			Parent: sc.spanFlush,
			Name:   "engine.coalesce",
			Tree:   tree,
			Epoch:  epoch,
			Start:  t0 - coalesceNS,
			Dur:    coalesceNS,
		})
	}
	for i := range sc.stageNS {
		if sc.stageNS[i] > 0 && sc.stageStart[i] >= 0 {
			sl.Add(obs.Span{
				Trace:  sc.spanTrace,
				Span:   obs.NewSpanID(),
				Parent: sc.spanFlush,
				Name:   "stage." + stageNames[i],
				Tree:   tree,
				Epoch:  epoch,
				Start:  t0 + sc.stageStart[i],
				Dur:    sc.stageNS[i],
			})
		}
	}
}

// observeFlush runs at the end of every flush on a timing-enabled engine:
// it feeds the histograms, emits the flush's span tree when span-sampled,
// and, when the flush is trace-sampled (every TraceSample-th) or slow
// (SlowWaveThreshold), assembles the WaveTrace.
func (e *Engine) observeFlush(reqs int, coalesceNS, flushNS int64) {
	sc := &e.sc
	if o := e.opts.Obs; o != nil {
		o.FlushSeconds.Observe(flushNS)
		o.CoalesceSeconds.Observe(coalesceNS)
		for i := range sc.stageNS {
			if ns := sc.stageNS[i]; ns > 0 {
				o.Stage[i].Observe(ns)
			}
		}
	}
	if sc.spanActive {
		e.emitFlushSpans(reqs, coalesceNS, flushNS)
	}
	if sink := e.opts.FlushSink; sink != nil {
		sink(e.traceID.Load(), reqs, flushNS)
	}
	ring, slow := e.opts.Trace, e.opts.SlowWave
	if ring == nil && slow == nil {
		return
	}
	sampled := ring != nil && (e.flushSeq%uint64(e.opts.TraceSample) == 0 ||
		e.opts.Boost.Active(sc.flushT0.UnixNano()))
	isSlow := slow != nil && flushNS >= int64(e.opts.SlowWaveThreshold)
	if !sampled && !isSlow {
		return
	}
	tr := obs.WaveTrace{
		Tree:     e.traceID.Load(),
		Seq:      e.appliedSeq.Load(),
		Epoch:    e.epoch.Load(),
		Reqs:     reqs,
		Waves:    sc.waveN,
		Coalesce: coalesceNS,
		Flush:    flushNS,
		Grow:     sc.stageNS[phaseGrowsIdx],
		Collapse: sc.stageNS[phaseCollapsesIdx],
		SetLeaf:  sc.stageNS[phaseSetLeavesIdx],
		SetOp:    sc.stageNS[phaseSetOpsIdx],
		Seal:     sc.stageNS[phaseSealWaveIdx],
		Value:    sc.stageNS[phaseValuesIdx],
		Barrier:  sc.stageNS[stageBarrierIdx],

		HealRecords:  sc.healRecords,
		Resims:       sc.healResims,
		TraceRecords: sc.traceRecords,
	}
	if sc.spanActive {
		tr.TraceID = sc.spanTrace
	}
	if sampled {
		ring.Add(tr)
	}
	if isSlow {
		slow(tr)
	}
}

// noteHeal folds the host's last heal report into the engine counters,
// the per-flush trace accumulators and the records-touched histogram. It
// runs right after each mutating host call, on the wave's execution
// context, so the report it reads is the wave's own.
func (e *Engine) noteHeal(executed int) {
	if e.healer == nil || executed == 0 {
		return
	}
	hs := e.healer.LastHeal()
	e.stats.healRecords.Add(uint64(hs.WoundRecords))
	if hs.Resimulated {
		e.stats.resims.Add(1)
	}
	if o := e.opts.Obs; o != nil && o.HealRecords != nil {
		o.HealRecords.Observe(int64(hs.WoundRecords))
	}
	if e.timing {
		sc := &e.sc
		sc.healRecords += int64(hs.WoundRecords)
		if hs.Resimulated {
			sc.healResims++
		}
		sc.traceRecords = hs.TotalRecords
	}
}

// timedPhase wraps one phase fn with a stage clock accumulating into the
// scratch's per-flush stage slot (wave-context-serialized, like every
// other scratch field).
func (e *Engine) timedPhase(idx int, fn func()) func() {
	return func() {
		t0 := time.Now()
		if e.sc.spanActive && e.sc.stageStart[idx] < 0 {
			e.sc.stageStart[idx] = int64(t0.Sub(e.sc.flushT0))
		}
		fn()
		e.sc.stageNS[idx] += int64(time.Since(t0))
	}
}

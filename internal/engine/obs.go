package engine

import (
	"time"

	"dyntc/internal/obs"
)

// This file is the engine layer's observability wiring: histogram
// instruments over the wave pipeline (submit → coalesce wait → flush →
// per-kind phase → seal/tap → ack), sampled per-flush trace records, and
// the slow-wave hook. All of it is opt-in through Options; an engine
// without Obs/Trace/SlowWave configured takes exactly one bool check per
// flush and nothing per request.

// numStages is the wave phases plus the barrier pseudo-phase (barriers
// are dispatched directly, outside the phase table).
const numStages = numPhases + 1

// stageBarrierIdx indexes the barrier slot of scratch.stageNS.
const stageBarrierIdx = numPhases

// stageNames labels each stage slot for the stage-seconds histogram.
var stageNames = [numStages]string{
	"grow", "collapse", "set-leaf", "set-op", "seal", "value", "barrier",
}

// Obs bundles the engine layer's metric instruments. One Obs is shared by
// every engine of a forest — the instruments are atomic, and per-tree
// label cardinality would make a 10k-tree forest unscrapeable — so the
// histograms describe the whole forest's wave pipeline.
type Obs struct {
	// FlushSeconds is the wall time of one coalesced flush: flush start to
	// every request of the flush acked.
	FlushSeconds *obs.Histogram
	// CoalesceSeconds is how long a flush's oldest request waited between
	// submit and flush start — the price of batching.
	CoalesceSeconds *obs.Histogram
	// Stage is per-phase execution time, one histogram sample per flush
	// per non-empty stage (grow, collapse, set-leaf, set-op, seal —
	// change-record build plus tap/WAL append —, value, barrier).
	Stage [numStages]*obs.Histogram
}

// NewObs registers the engine histogram families on reg and returns the
// instrument bundle to put in Options.Obs.
func NewObs(r *obs.Registry) *Obs {
	o := &Obs{
		FlushSeconds: r.Seconds("dyntc_engine_flush_seconds",
			"wall time of one coalesced flush, start to all requests acked"),
		CoalesceSeconds: r.Seconds("dyntc_engine_coalesce_wait_seconds",
			"wait of a flush's oldest request between submit and flush start"),
	}
	for i, name := range stageNames {
		o.Stage[i] = r.Seconds("dyntc_engine_stage_seconds",
			"execution time of one wave phase, summed per flush", "stage", name)
	}
	return o
}

// RegisterStatsFuncs exports the engine layer's counter and gauge
// families on reg as scrape-time functions over a Stats provider —
// typically a cached Forest.TotalStats, so the engines' own atomic
// counters are the single source of truth and the request path carries no
// second set of increments.
func RegisterStatsFuncs(r *obs.Registry, stats func() Stats) {
	kinds := []struct {
		label string
		get   func(Stats) uint64
	}{
		{"grow", func(s Stats) uint64 { return s.Grows }},
		{"collapse", func(s Stats) uint64 { return s.Collapses }},
		{"set-leaf", func(s Stats) uint64 { return s.SetLeaves }},
		{"set-op", func(s Stats) uint64 { return s.SetOps }},
		{"value", func(s Stats) uint64 { return s.Values }},
		{"root", func(s Stats) uint64 { return s.Roots }},
		{"barrier", func(s Stats) uint64 { return s.Barriers }},
	}
	for _, k := range kinds {
		get := k.get
		r.CounterFunc("dyntc_engine_requests_total", "requests executed, by kind",
			func() float64 { return float64(get(stats())) }, "kind", k.label)
	}
	r.CounterFunc("dyntc_engine_flushes_total", "coalesced flushes executed",
		func() float64 { return float64(stats().Flushes) })
	r.CounterFunc("dyntc_engine_waves_total", "conflict-free waves executed",
		func() float64 { return float64(stats().Waves) })
	r.CounterFunc("dyntc_engine_errors_total", "requests failed by validation",
		func() float64 { return float64(stats().Errors) })
	r.CounterFunc("dyntc_engine_dropped_total", "requests discarded unexecuted (closed or poisoned)",
		func() float64 { return float64(stats().Dropped) })
	r.CounterFunc("dyntc_engine_shed_total", "requests rejected at submit, queue full",
		func() float64 { return float64(stats().Shed) })
	r.GaugeFunc("dyntc_engine_queue_depth", "submitted requests currently queued, all trees",
		func() float64 { return float64(stats().QueueDepth) })
	r.GaugeFunc("dyntc_engine_applied_seq", "mutating waves applied, summed over trees",
		func() float64 { return float64(stats().AppliedSeq) })
	r.GaugeFunc("dyntc_engine_cur_max_batch", "largest adaptive flush cap across trees",
		func() float64 { return float64(stats().CurMaxBatch) })
	r.GaugeFunc("dyntc_engine_flush_p50_seconds", "median flush latency over the merged retained windows",
		func() float64 { return stats().FlushP50US / 1e6 })
	r.GaugeFunc("dyntc_engine_flush_p99_seconds", "p99 flush latency over the merged retained windows",
		func() float64 { return stats().FlushP99US / 1e6 })
}

// SetTraceID sets the tree id stamped into this engine's trace records —
// forests set it to the tree's forest id right after Add/AddAt.
func (e *Engine) SetTraceID(id uint64) { e.traceID.Store(id) }

// observeFlush runs at the end of every flush on a timing-enabled engine:
// it feeds the histograms and, when the flush is sampled (every
// TraceSample-th) or slow (SlowWaveThreshold), assembles the WaveTrace.
func (e *Engine) observeFlush(reqs int, coalesceNS, flushNS int64) {
	sc := &e.sc
	if o := e.opts.Obs; o != nil {
		o.FlushSeconds.Observe(flushNS)
		o.CoalesceSeconds.Observe(coalesceNS)
		for i := range sc.stageNS {
			if ns := sc.stageNS[i]; ns > 0 {
				o.Stage[i].Observe(ns)
			}
		}
	}
	ring, slow := e.opts.Trace, e.opts.SlowWave
	if ring == nil && slow == nil {
		return
	}
	e.flushSeq++
	sampled := ring != nil && e.flushSeq%uint64(e.opts.TraceSample) == 0
	isSlow := slow != nil && flushNS >= int64(e.opts.SlowWaveThreshold)
	if !sampled && !isSlow {
		return
	}
	tr := obs.WaveTrace{
		Tree:     e.traceID.Load(),
		Seq:      e.appliedSeq.Load(),
		Reqs:     reqs,
		Waves:    sc.waveN,
		Coalesce: coalesceNS,
		Flush:    flushNS,
		Grow:     sc.stageNS[phaseGrowsIdx],
		Collapse: sc.stageNS[phaseCollapsesIdx],
		SetLeaf:  sc.stageNS[phaseSetLeavesIdx],
		SetOp:    sc.stageNS[phaseSetOpsIdx],
		Seal:     sc.stageNS[phaseSealWaveIdx],
		Value:    sc.stageNS[phaseValuesIdx],
		Barrier:  sc.stageNS[stageBarrierIdx],
	}
	if sampled {
		ring.Add(tr)
	}
	if isSlow {
		slow(tr)
	}
}

// timedPhase wraps one phase fn with a stage clock accumulating into the
// scratch's per-flush stage slot (wave-context-serialized, like every
// other scratch field).
func (e *Engine) timedPhase(idx int, fn func()) func() {
	return func() {
		t0 := time.Now()
		fn()
		e.sc.stageNS[idx] += int64(time.Since(t0))
	}
}

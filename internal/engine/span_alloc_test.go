package engine

import (
	"testing"
	"time"

	"dyntc/internal/obs"
)

// newSpanEngine builds an in-package engine with a span log attached, a
// sampling period large enough that no flush is cadence-sampled, and a
// (never-triggered) anomaly boost, so the zero-alloc guard covers the
// boost check too.
func newSpanEngine(t testing.TB) (*Forest, *Engine) {
	t.Helper()
	sl, err := obs.NewSpanLog(16, "test", "")
	if err != nil {
		t.Fatal(err)
	}
	f := NewForest(Options{Spans: sl, TraceSample: 1 << 30, Boost: &obs.TraceBoost{}})
	_, en := f.Add(stubHost{})
	t.Cleanup(func() { f.Close() })
	return f, en
}

// TestBeginFlushSpanUnsampledZeroAlloc guards the acceptance invariant:
// an engine with span tracing enabled but an unsampled flush (cadence
// miss, no request carrying a trace header) must not allocate in
// beginFlushSpan — the per-flush cost is a counter compare plus one span
// field compare per request.
func TestBeginFlushSpanUnsampledZeroAlloc(t *testing.T) {
	_, en := newSpanEngine(t)
	en.flushSeq = 5 // 5 % (1<<30) != 0 → cadence miss
	futs := []*Future{{}, {}, {}, {}}
	now := time.Now()

	allocs := testing.AllocsPerRun(200, func() {
		en.beginFlushSpan(futs, now)
	})
	if allocs != 0 {
		t.Fatalf("beginFlushSpan allocated %v per unsampled flush, want 0", allocs)
	}
	if en.sc.spanActive {
		t.Fatal("unsampled flush marked span-active")
	}
}

// TestBeginFlushSpanAdoptsHeaderTrace checks the force-sampling path: a
// request carrying an explicit trace context makes the flush sampled
// regardless of cadence, and its trace/span are adopted as the flush
// span's trace and parent.
func TestBeginFlushSpanAdoptsHeaderTrace(t *testing.T) {
	_, en := newSpanEngine(t)
	en.flushSeq = 5
	sc := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	futs := []*Future{{}, {span: sc}, {}}

	en.beginFlushSpan(futs, time.Now())
	if !en.sc.spanActive {
		t.Fatal("flush carrying a traced request not sampled")
	}
	if en.sc.spanTrace != sc.Trace || en.sc.spanParent != sc.Span {
		t.Fatalf("adopted trace/parent = %v/%v, want %v/%v",
			en.sc.spanTrace, en.sc.spanParent, sc.Trace, sc.Span)
	}
	if en.sc.spanFlush == 0 {
		t.Fatal("sampled flush has no flush span id")
	}

	// Cadence sampling without a header mints a fresh trace.
	en.flushSeq = 0 // 0 % anything == 0 → cadence hit
	en.beginFlushSpan([]*Future{{}}, time.Now())
	if !en.sc.spanActive || en.sc.spanTrace == 0 || en.sc.spanParent != 0 {
		t.Fatalf("cadence-sampled flush state = %+v", en.sc)
	}
}

// TestBeginFlushSpanBoostSamples checks the flight-recorder override: an
// active TraceBoost forces span sampling on a cadence-missed flush, and
// an expired boost decays back to the unsampled (still zero-alloc) path.
func TestBeginFlushSpanBoostSamples(t *testing.T) {
	_, en := newSpanEngine(t)
	en.flushSeq = 5 // cadence miss
	futs := []*Future{{}, {}}

	en.opts.Boost.Trigger(time.Hour)
	en.beginFlushSpan(futs, time.Now())
	if !en.sc.spanActive {
		t.Fatal("flush during an active boost not sampled")
	}
	if en.sc.spanTrace == 0 || en.sc.spanFlush == 0 {
		t.Fatalf("boost-sampled flush state = %+v", en.sc)
	}

	// Decay: a flush timestamped past the boost deadline is unsampled
	// again — and allocation-free, boost present or not.
	past := time.Unix(0, en.opts.Boost.Deadline()+1)
	allocs := testing.AllocsPerRun(200, func() {
		en.beginFlushSpan(futs, past)
	})
	if en.sc.spanActive {
		t.Fatal("flush past the boost deadline still sampled")
	}
	if allocs != 0 {
		t.Fatalf("beginFlushSpan allocated %v with an expired boost, want 0", allocs)
	}
}

// BenchmarkBeginFlushSpanUnsampled pins the unsampled flush-path span
// check; run with -benchmem to watch the 0 allocs/op column.
func BenchmarkBeginFlushSpanUnsampled(b *testing.B) {
	_, en := newSpanEngine(b)
	en.flushSeq = 5
	futs := make([]*Future, 32)
	for i := range futs {
		futs[i] = &Future{}
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.beginFlushSpan(futs, now)
	}
}

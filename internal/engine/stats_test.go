package engine_test

// Backpressure-visibility and wave-tap tests: queue depth / flush latency
// / dropped counters in Stats, and the change-log seam (WaveTap sequence
// contiguity, mutating-only waves, AppliedSeq).

import (
	"testing"

	"dyntc"
	"dyntc/internal/replog"
)

func TestStatsBackpressureFields(t *testing.T) {
	ring := dyntc.ModRing(97)
	e := dyntc.NewExpr(ring, 1)
	en := e.Serve(dyntc.BatchOptions{Queue: 64})
	leaf := e.Tree().Root
	for i := 0; i < 50; i++ {
		l, _, err := en.Grow(leaf, dyntc.OpAdd(ring), 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		leaf = l
	}
	st := en.Stats()
	if st.QueueCap != 64 {
		t.Fatalf("QueueCap = %d, want 64", st.QueueCap)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", st.QueueDepth)
	}
	if st.FlushP50US <= 0 || st.FlushP99US < st.FlushP50US {
		t.Fatalf("flush latency p50=%v p99=%v", st.FlushP50US, st.FlushP99US)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d during normal traffic", st.Dropped)
	}
	if st.AppliedSeq == 0 || st.AppliedSeq != en.AppliedSeq() {
		t.Fatalf("AppliedSeq = %d (engine %d)", st.AppliedSeq, en.AppliedSeq())
	}
	en.Close()
	// A submit after close is a drop.
	if _, _, err := en.Grow(leaf, dyntc.OpAdd(ring), 1, 2); err == nil {
		t.Fatal("grow after close succeeded")
	}
	if st := en.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d after post-close submit, want 1", st.Dropped)
	}
}

func TestWaveTapSequenceAndKinds(t *testing.T) {
	ring := dyntc.ModRing(1_000_000_007)
	e := dyntc.NewExpr(ring, 1)
	var waves []dyntc.Wave
	en := e.Serve(dyntc.BatchOptions{WaveTap: func(w dyntc.Wave) { waves = append(waves, w) }})

	l, r, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := en.SetLeaf(l, 10); err != nil {
		t.Fatal(err)
	}
	// Reads are not waves: they must not advance the sequence or tap.
	if _, err := en.Root(); err != nil {
		t.Fatal(err)
	}
	if _, err := en.Value(r); err != nil {
		t.Fatal(err)
	}
	if err := en.Collapse(e.Tree().Root, 9); err != nil {
		t.Fatal(err)
	}
	en.Close()

	if len(waves) != 3 {
		t.Fatalf("%d waves tapped, want 3 (reads excluded)", len(waves))
	}
	wantKinds := []replog.OpKind{replog.OpGrow, replog.OpSetLeaf, replog.OpCollapse}
	for i, w := range waves {
		if w.Seq != uint64(i+1) {
			t.Fatalf("wave %d: seq %d", i, w.Seq)
		}
		if !w.Verify() {
			t.Fatalf("wave %d fails checksum", i)
		}
		if len(w.Ops) != 1 || w.Ops[0].Kind != wantKinds[i] {
			t.Fatalf("wave %d: ops %+v, want kind %v", i, w.Ops, wantKinds[i])
		}
	}
	if g := waves[0].Ops[0]; g.LeftID != l.ID || g.RightID != r.ID {
		t.Fatalf("grow record IDs (%d,%d), want (%d,%d)", g.LeftID, g.RightID, l.ID, r.ID)
	}
	if waves[2].Root != 9 {
		t.Fatalf("final wave root %d, want 9", waves[2].Root)
	}
	if en.AppliedSeq() != 3 {
		t.Fatalf("AppliedSeq = %d, want 3", en.AppliedSeq())
	}
}

package engine_test

import (
	"errors"
	"testing"

	"dyntc"
	"dyntc/internal/engine"
)

// holdFlush blocks the executor inside a barrier so every request
// submitted before release() lands in one flush, then releases it.
func holdFlush(t *testing.T, en *dyntc.Engine) (release func()) {
	t.Helper()
	started := make(chan struct{})
	unblock := make(chan struct{})
	go func() {
		_ = en.Query(func(*dyntc.Expr) { close(started); <-unblock })
	}()
	<-started
	return func() { close(unblock) }
}

// TestSameNodeOrdering: requests touching one node within a single flush
// execute in submission order, across waves.
func TestSameNodeOrdering(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)
	l, _, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 0, 4)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}

	release := holdFlush(t, en)
	before := en.Stats().Waves // the holding barrier's wave is counted
	f1 := en.SetLeafAsync(l, 5)
	f2 := en.ValueAsync(l)
	f3 := en.SetLeafAsync(l, 9)
	f4 := en.ValueAsync(l)
	release()

	if err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
	if v, err := f2.Value(); err != nil || v != 5 {
		t.Fatalf("value after first set = %d, %v", v, err)
	}
	if err := f3.Wait(); err != nil {
		t.Fatal(err)
	}
	if v, err := f4.Value(); err != nil || v != 9 {
		t.Fatalf("value after second set = %d, %v", v, err)
	}
	// Four same-node requests cannot share a wave: at least 4 waves ran
	// for that flush.
	if got := en.Stats().Waves - before; got < 4 {
		t.Fatalf("waves = %d, want >= 4", got)
	}
}

// TestStructuralOrdering: a grow followed by same-flush requests on the
// grown leaf — the later requests see the post-grow structure (and fail
// accordingly), exactly as if submitted in sequence.
func TestStructuralOrdering(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)
	l, _, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 0, 4)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}

	release := holdFlush(t, en)
	fg := en.GrowAsync(l, dyntc.OpMul(ring), 6, 7)
	fs := en.SetLeafAsync(l, 1) // l is internal by the time this runs
	fv := en.ValueAsync(l)      // subtree value: 6*7
	fc := en.CollapseAsync(l, 2)
	release()

	if _, _, err := fg.Pair(); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := fs.Wait(); !errors.Is(err, engine.ErrNotLeaf) {
		t.Fatalf("set-leaf after grow: %v", err)
	}
	if v, err := fv.Value(); err != nil || v != 42 {
		t.Fatalf("value after grow = %d, %v", v, err)
	}
	if err := fc.Wait(); err != nil {
		t.Fatalf("collapse after grow: %v", err)
	}
	if v, _ := en.Root(); v != 6 {
		t.Fatalf("2+4 = %d", v)
	}
}

// TestDisjointRequestsShareWave: requests on disjoint nodes coalesce into
// a single wave (one core batch per kind).
func TestDisjointRequestsShareWave(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)

	// Build a fan of 8 leaves.
	leaves := []*dyntc.Node{e.Tree().Root}
	for len(leaves) < 8 {
		l, r, err := en.Grow(leaves[0], dyntc.OpAdd(ring), 1, 1)
		if err != nil {
			t.Fatalf("Grow: %v", err)
		}
		leaves = append(leaves[1:], l, r)
	}

	release := holdFlush(t, en)
	before := en.Stats().Waves // the holding barrier's wave is counted
	var futs []*dyntc.Future
	for i, l := range leaves {
		futs = append(futs, en.SetLeafAsync(l, int64(i+1)))
	}
	release()
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := en.Stats().Waves - before; got != 1 {
		t.Fatalf("disjoint sets used %d waves, want 1", got)
	}
	if v, _ := en.Root(); v != 1+2+3+4+5+6+7+8 {
		t.Fatalf("root = %d", v)
	}
}

// TestMixedKindsOneWave: disjoint grow + collapse + set-leaf + set-op +
// value all execute in one wave.
func TestMixedKindsOneWave(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)

	// Fan of 4 independent subtrees: g (to grow), c (to collapse),
	// s (set-leaf), o-subtree (set-op at its parent).
	l1, r1, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, c, err := en.Grow(l1, dyntc.OpAdd(ring), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, o, err := en.Grow(r1, dyntc.OpAdd(ring), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Make c internal with two leaf children so it can collapse.
	if _, _, err := en.Grow(c, dyntc.OpAdd(ring), 2, 3); err != nil {
		t.Fatal(err)
	}
	// Make o internal so set-op applies.
	ol, or, err := en.Grow(o, dyntc.OpMul(ring), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = ol, or

	release := holdFlush(t, en)
	before := en.Stats().Waves // the holding barrier's wave is counted
	fg := en.GrowAsync(g, dyntc.OpMul(ring), 4, 5)
	fc := en.CollapseAsync(c, 9)
	fs := en.SetLeafAsync(s, 7)
	fo := en.SetOpAsync(o, dyntc.OpAdd(ring))
	fv := en.RootAsync()
	release()

	for _, f := range []*dyntc.Future{fg, fc, fs, fo, fv} {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := en.Stats().Waves - before; got != 1 {
		t.Fatalf("mixed disjoint kinds used %d waves, want 1", got)
	}
	// g=4*5=20, c=9 → left subtree 29; s=7, o=2+3=5 → right 12; root 41.
	if v, _ := en.Root(); v != 41 {
		t.Fatalf("root = %d, want 41", v)
	}
}

// TestCollapseFootprintBlocksChildren: a collapse and a same-flush request
// on one of its children conflict (the child dies); order is preserved.
func TestCollapseFootprintBlocksChildren(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)
	l, r, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = r

	release := holdFlush(t, en)
	fv := en.ValueAsync(l) // reads l before the collapse kills it
	fc := en.CollapseAsync(e.Tree().Root, 9)
	fs := en.SetLeafAsync(l, 8) // after the collapse: dead node
	release()

	if v, err := fv.Value(); err != nil || v != 3 {
		t.Fatalf("value before collapse = %d, %v", v, err)
	}
	if err := fc.Wait(); err != nil {
		t.Fatalf("collapse: %v", err)
	}
	if err := fs.Wait(); !errors.Is(err, engine.ErrDeadNode) {
		t.Fatalf("set dead leaf: %v", err)
	}
	if v, _ := en.Root(); v != 9 {
		t.Fatalf("root = %d", v)
	}
}

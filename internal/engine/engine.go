// Package engine turns many concurrent callers into the batches that
// dynamic parallel tree contraction is built for.
//
// Reif & Tate's structure (internal/core) processes a *batch* U of mixed
// requests — add or delete leaves, modify labels, query values — in
// O(log(|U|·log n)) expected parallel time, but it is single-writer: the
// seed repo left batch assembly to a lone caller. This package supplies the
// missing concurrency seam, in the style of modern batch-dynamic tree
// systems (Acar et al. 2020; Ikram et al. 2025) whose throughput comes
// precisely from coalescing concurrent operations into batches before they
// hit the structure:
//
//   - Arbitrarily many goroutines submit Grow / Collapse / SetLeaf /
//     SetOp / Value / Root / Barrier requests and receive per-request
//     Futures.
//   - A single executor goroutine drains the queue with an adaptive
//     batching window: a flush closes when it reaches MaxBatch, when the
//     window expires, or — with no window configured — the moment the
//     executor goes idle, so batching adds no latency when traffic is
//     light and grows batches automatically as the executor saturates.
//   - Each flush is partitioned (partition.go) into waves of
//     node-disjoint requests, and every wave executes as at most one call
//     to each of the core batch entry points (GrowBatch, CollapseBatch,
//     SetLeaves, SetOps, Values) — the paper's §1.4 batch-request model.
//
// Every request is linearizable: it takes effect atomically between submit
// and future resolution. Requests touching a common node additionally
// execute in submission order.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"dyntc/internal/faults"
	"dyntc/internal/obs"
	"dyntc/internal/pram"
	"dyntc/internal/replog"
	"dyntc/internal/sched"
)

// Host is the single-writer structure the engine serializes access to.
// dyntc.Expr satisfies it directly.
type Host interface {
	Tree() *TreeT
	GrowBatch(ops []GrowOp) [][2]*NodeT
	CollapseBatch(ops []CollapseOp)
	SetLeaves(leaves []*NodeT, values []int64)
	SetOps(nodes []*NodeT, ops []OpT)
	Values(nodes []*NodeT) []int64
	Root() int64
}

// Options configures an Engine. The zero value gives sane defaults.
type Options struct {
	// MaxBatch is the initial (and minimum) cap on requests per flush
	// (default 1024). The effective cap adapts: it doubles while flushes
	// saturate — a flush fills the cap with more requests still queued —
	// up to MaxBatchCeil, and decays back once flushes run well under it,
	// so sustained overload coalesces into larger batches (the paper's
	// batch bound rewards exactly that) without inflating light-traffic
	// latency. Stats reports the current cap as CurMaxBatch.
	MaxBatch int
	// MaxBatchCeil bounds the adaptive cap (default max(4·MaxBatch,
	// Queue)). Set it equal to MaxBatch to pin the cap (no adaptivity).
	MaxBatchCeil int
	// Window is the maximum time the executor waits, counted from the
	// first request of a flush, for more requests to coalesce. Zero means
	// flush as soon as the queue is momentarily empty (adaptive
	// idle-flush): zero added latency when idle, large batches under load.
	Window time.Duration
	// Queue is the submit queue capacity; submits block (backpressure)
	// once it fills (default 4096).
	Queue int
	// Shed switches the full-queue policy from blocking to load shedding:
	// a submit that finds the queue at capacity fails its future
	// immediately with ErrOverloaded instead of blocking the caller.
	// Servers translate that into 429 + Retry-After; library callers that
	// want backpressure leave it false. Barriers are exempt: snapshots,
	// log compaction and follower bootstrap ride barriers and must not
	// starve under exactly the load shedding exists to survive — they
	// block on a full queue like on an unshedded engine.
	Shed bool
	// Workers is the goroutine parallelism of the host's PRAM machine, on
	// which a wave's node-disjoint batches execute. The engine itself
	// stays single-executor; the layer that owns the host applies the
	// setting to its machine (dyntc.Expr.Serve / dyntc.NewForest do).
	// Recorded here so Stats can surface it. 0 means leave the host's
	// machine as configured.
	Workers int
	// WaveTap, when set, is called after every executed wave that mutated
	// the tree, with the wave's sealed change record (dense-ID ops,
	// assigned grow IDs, post-wave root, checksum). This is the
	// replication seam: internal/replog logs and ships these. The tap runs
	// inline on the wave's execution context (the executor goroutine, or
	// the engine's scheduler lane when Pool is set), serialized with the
	// engine's waves — it must be fast and must not call back into the
	// engine. See also Engine.SetWaveTap.
	WaveTap WaveTap
	// Pool, when set, is the shared runtime scheduler: each wave's
	// grow/collapse/set/value sub-batches are scheduled as task groups on
	// one serial lane of this pool instead of running on the executor
	// goroutine. One tree's sub-batches still execute in order (the host
	// is single-writer and metering must stay deterministic), but the
	// lanes of many engines interleave across the pool's workers, so a
	// big forest shares a fixed worker set instead of oversubscribing the
	// host with per-tree execution. Results, metering and the wave log
	// are byte-identical either way. The layer that owns the host should
	// point its PRAM machine at the same pool (dyntc.Expr.Serve and
	// dyntc.NewForest do).
	Pool *sched.Pool
	// Obs, when set, receives per-flush wave-pipeline histograms
	// (flush/coalesce/per-stage seconds — see NewObs). One Obs is shared
	// by every engine of a forest; nil costs one bool check per flush.
	Obs *Obs
	// Trace, when set, receives a WaveTrace record for every
	// TraceSample-th flush: the sampled wave-lifecycle trace dyntcd dumps
	// via GET /v1/trace.
	Trace *obs.TraceRing
	// TraceSample is the flush sampling period for Trace (default 16;
	// 1 records every flush).
	TraceSample int
	// Spans, when set, receives distributed-trace spans for sampled
	// flushes: a flush span parented on the ingest span of the first
	// traced request (when one carries a SpanContext), per-stage child
	// spans, and one wave span per sealed wave whose deterministic ID
	// (obs.WaveSpanID) lets follower-side spans stitch to it by
	// (epoch, seq). Flushes are sampled at the TraceSample period; a flush
	// containing an explicitly traced request is always recorded. Setting
	// Spans enables timing like Obs/Trace do.
	Spans *obs.SpanLog
	// SlowWave, when set, is called — on the executor, so keep it cheap —
	// with the trace record of every flush at least SlowWaveThreshold
	// slow, regardless of Trace sampling. dyntcd's -slow-wave structured
	// log rides on this.
	SlowWave func(obs.WaveTrace)
	// SlowWaveThreshold is the flush duration that counts as slow
	// (default 25ms when SlowWave is set).
	SlowWaveThreshold time.Duration
	// Events, when set, receives the engine's lifecycle events: shed
	// bursts (rate-limited to one event per second per engine) and
	// adaptive flush-cap shifts. Shared with the server's journal; nil
	// costs one pointer check on the rare paths that emit.
	Events *obs.Journal
	// Boost, when set, is the anomaly flight recorder's sampling
	// override: while active, every flush is trace- and span-sampled
	// regardless of TraceSample, so the slow period around a detector
	// trip is densely traced. Checking it costs the unsampled flush path
	// one atomic load — no allocation.
	Boost *obs.TraceBoost
	// FlushSink, when set, receives every flush's cost sample — the
	// engine's forest tree id, request count and flush duration — on the
	// executor. This feeds the anomaly detectors and the per-tree
	// hot-spot sketch; it must be fast and must not call back into the
	// engine. Setting FlushSink enables timing like Obs/Trace/Spans do.
	FlushSink func(tree uint64, reqs int, flushNS int64)
	// ShedSink, when set, receives per-tree load-shed counts (the
	// hot-spot sketch's shed dimension). Called on the submitting
	// goroutine, only when a request is actually shed.
	ShedSink func(tree uint64, n int)
	// Faults, when set, is the deterministic fault-injection schedule:
	// site "engine.wave" is checked once per executed wave on the
	// executor. An injected error panics the wave, which the engine's
	// own recovery turns into a poisoned engine — the library-level
	// stand-in for a leader crash mid-traffic; injected latency
	// simulates a stalled flush. nil (production) costs one pointer
	// check per wave.
	Faults *faults.Injector
}

// WaveTap receives the change record of one executed mutating wave.
type WaveTap func(replog.Wave)

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.Queue <= 0 {
		o.Queue = 4096
	}
	if o.MaxBatchCeil <= 0 {
		o.MaxBatchCeil = 4 * o.MaxBatch
		if o.Queue > o.MaxBatchCeil {
			o.MaxBatchCeil = o.Queue
		}
	}
	if o.MaxBatchCeil < o.MaxBatch {
		o.MaxBatchCeil = o.MaxBatch
	}
	if o.TraceSample <= 0 {
		o.TraceSample = 16
	}
	if o.SlowWave != nil && o.SlowWaveThreshold <= 0 {
		o.SlowWaveThreshold = 25 * time.Millisecond
	}
	return o
}

// Engine is a concurrent request-coalescing front end over one Host. All
// exported methods are safe for concurrent use.
type Engine struct {
	host Host
	opts Options

	ch chan *Future

	mu       sync.RWMutex // guards closed against concurrent submits
	closed   bool
	poisoned bool

	stats statsRec

	// appliedSeq numbers the mutating waves this engine has executed; it
	// is the tree state's position in the wave change-log. Restored
	// followers seed it with their snapshot's sequence (SetAppliedSeq).
	appliedSeq atomic.Uint64
	// epoch is the leadership term stamped into every sealed wave: 1 for
	// a fresh engine, the host's term when the host reports one (a tree
	// restored from a snapshot), advanced by SetEpoch at promotion.
	epoch atomic.Uint64
	// tap is the active wave tap (nil = none); swappable at runtime so a
	// change log can attach to an already-serving engine.
	tap atomic.Pointer[WaveTap]

	// sc is the executor's reusable flush/partition state (touched only by
	// the wave execution context: the executor goroutine, plus — between
	// waveWG.Add and Wait — the chain's worker).
	sc scratch

	// curMax is the adaptive flush cap (see Options.MaxBatch); underfull
	// counts consecutive under-filled flushes (executor only).
	curMax    atomic.Int64
	underfull int

	// chain is the engine's serial lane on the shared scheduler (nil =
	// waves execute inline on the executor). waveWG joins the lane's task
	// group per wave; wavePanicked/VAL carry a phase panic back to the
	// executor (written on the lane, read after Wait — the WaitGroup is
	// the happens-before edge).
	chain        *sched.Chain
	laneWave     bool // current wave takes the lane (chain set, wave big enough)
	waveWG       sync.WaitGroup
	wavePanicked bool
	wavePanicVal any
	// phaseFns/laneFns are the wave phases and their lane-wrapped forms,
	// built once so scheduling a wave allocates nothing (a bound method
	// value or closure built per wave would).
	phaseFns [numPhases]func()
	laneFns  [numPhases]func()

	// kinder/grainer/healer are the host's optional tuning and
	// observability capabilities, cached once (dyntc.Expr implements all
	// three).
	kinder  stepKinder
	grainer grainReporter
	healer  healReporter

	// timing enables the per-flush clock reads (immutable after New): set
	// when any of Obs / Trace / SlowWave is configured. traceID is the
	// forest tree id stamped into trace records (SetTraceID); flushSeq
	// counts flushes for trace sampling (executor only).
	timing   bool
	traceID  atomic.Uint64
	flushSeq uint64

	// shedEventAt rate-limits shed-burst journal events (one per second
	// per engine; written by shedding submitters via CAS).
	shedEventAt atomic.Int64

	done chan struct{}
}

// stepKinder is the optional host capability the engine uses to label
// each wave sub-batch with its kind, so the host machine's adaptive grain
// tunes per (tree, batch kind).
type stepKinder interface{ SetStepKind(pram.StepKind) }

// grainReporter is the optional host capability exposing the machine's
// current per-kind grain for Stats.
type grainReporter interface{ StepGrains() [pram.NumStepKinds]int }

// healReporter is the optional host capability exposing the contraction
// core's per-wave heal cost (records touched, re-simulation fallbacks),
// folded into Stats, the wave traces and the heal histograms.
type healReporter interface{ LastHeal() HealStats }

// New starts an engine (and its executor goroutine) over host.
func New(host Host, opts Options) *Engine {
	e := &Engine{
		host: host,
		opts: opts.withDefaults(),
		done: make(chan struct{}),
	}
	e.ch = make(chan *Future, e.opts.Queue)
	e.curMax.Store(int64(e.opts.MaxBatch))
	if e.opts.WaveTap != nil {
		e.tap.Store(&e.opts.WaveTap)
	}
	// A serial lane on a single-worker pool cannot interleave trees — it
	// only adds hops Go's own scheduler does better — so the lane engages
	// only when the pool has real width. Machines still chunk their steps
	// onto the pool either way.
	if e.opts.Pool != nil && e.opts.Pool.Workers() > 1 {
		e.chain = e.opts.Pool.NewChain()
	}
	e.kinder, _ = host.(stepKinder)
	e.grainer, _ = host.(grainReporter)
	e.healer, _ = host.(healReporter)
	// A host restored from a snapshot carries its leadership term; seed
	// the wave stamp from it (same capability pattern as kinder).
	if ep, ok := host.(interface{ Epoch() uint64 }); ok {
		e.epoch.Store(ep.Epoch())
	} else {
		e.epoch.Store(1)
	}
	e.timing = e.opts.Obs != nil || e.opts.Trace != nil || e.opts.SlowWave != nil ||
		e.opts.Spans != nil || e.opts.FlushSink != nil
	e.phaseFns = [numPhases]func(){
		e.phaseGrows, e.phaseCollapses, e.phaseSetLeaves,
		e.phaseSetOps, e.phaseSealWave, e.phaseValues,
	}
	if e.timing {
		// Wrap each phase with its stage clock before the lane forms are
		// derived, so lane-dispatched phases are timed identically.
		for i, fn := range e.phaseFns {
			e.phaseFns[i] = e.timedPhase(i, fn)
		}
	}
	for i, fn := range e.phaseFns {
		fn := fn
		e.laneFns[i] = func() {
			defer e.waveWG.Done()
			if e.wavePanicked {
				return
			}
			defer func() {
				if r := recover(); r != nil {
					e.wavePanicked, e.wavePanicVal = true, r
				}
			}()
			fn()
		}
	}
	go e.run()
	return e
}

// SetWaveTap installs (or, with nil, removes) the wave tap. The tap takes
// effect from the next executed wave; waves already executed are not
// replayed into it, so attach the tap before traffic (or right after
// restoring a snapshot) for a gapless log.
func (e *Engine) SetWaveTap(tap WaveTap) {
	if tap == nil {
		e.tap.Store(nil)
		return
	}
	e.tap.Store(&tap)
}

// Tapped reports whether a wave tap is currently attached: the engine's
// mutating waves feed a change log, so state changes that bypass the wave
// stream (mutations inside a Barrier) would silently diverge replicas.
func (e *Engine) Tapped() bool { return e.tap.Load() != nil }

// AppliedSeq returns the sequence number of the last mutating wave the
// engine executed (the tree state's position in the wave change-log).
func (e *Engine) AppliedSeq() uint64 { return e.appliedSeq.Load() }

// SetAppliedSeq seeds the applied-wave sequence, for an engine started
// over a host restored from a snapshot taken at that sequence. Call it
// before the engine receives traffic.
func (e *Engine) SetAppliedSeq(seq uint64) { e.appliedSeq.Store(seq) }

// Epoch returns the leadership term stamped into sealed waves.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// SetEpoch advances the wave-stamp epoch (it never moves backwards).
// Startup recovery uses it after replaying a WAL that crossed a
// failover; promotion normally flows the bumped epoch in via the
// restored host instead.
func (e *Engine) SetEpoch(epoch uint64) {
	for {
		cur := e.epoch.Load()
		if epoch <= cur || e.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Close stops accepting requests, waits for the executor to drain every
// pending request, and returns. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.ch)
	}
	e.mu.Unlock()
	<-e.done
}

// submit enqueues f, failing it immediately when the engine is closed —
// or, on a shedding engine, when the queue is at capacity.
func (e *Engine) submit(f *Future) *Future {
	if e.timing {
		f.at = time.Now()
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.stats.drop(1)
		f.resolve(0, [2]*NodeT{}, ErrClosed)
		return f
	}
	// The send happens under the read lock so Close cannot close e.ch
	// between the check and the send; the executor keeps draining, so
	// blocked senders always complete.
	if e.opts.Shed && f.kind != kBarrier {
		select {
		case e.ch <- f:
			e.mu.RUnlock()
		default:
			e.mu.RUnlock()
			e.stats.shed(1)
			if sink := e.opts.ShedSink; sink != nil {
				sink(e.traceID.Load(), 1)
			}
			e.noteShedBurst()
			f.resolve(0, [2]*NodeT{}, ErrOverloaded)
		}
		return f
	}
	e.ch <- f
	e.mu.RUnlock()
	return f
}

// Grow submits a leaf expansion: ref becomes an op node with two fresh
// leaves holding (leftVal, rightVal). Future.Pair returns the new leaves.
func (e *Engine) Grow(ref NodeRef, op OpT, leftVal, rightVal int64) *Future {
	f := newFuture(kGrow)
	f.ref, f.op, f.a, f.b = ref, op, leftVal, rightVal
	return e.submit(f)
}

// Collapse submits a leaf-pair deletion: ref's two leaf children are
// removed and ref becomes a leaf holding newValue.
func (e *Engine) Collapse(ref NodeRef, newValue int64) *Future {
	f := newFuture(kCollapse)
	f.ref, f.a = ref, newValue
	return e.submit(f)
}

// SetLeaf submits a leaf value update.
func (e *Engine) SetLeaf(ref NodeRef, value int64) *Future {
	f := newFuture(kSetLeaf)
	f.ref, f.a = ref, value
	return e.submit(f)
}

// SetOp submits an internal-operation update.
func (e *Engine) SetOp(ref NodeRef, op OpT) *Future {
	f := newFuture(kSetOp)
	f.ref, f.op = ref, op
	return e.submit(f)
}

// Value submits a subexpression value query. Future.Value returns it.
func (e *Engine) Value(ref NodeRef) *Future {
	f := newFuture(kValue)
	f.ref = ref
	return e.submit(f)
}

// Root submits a root value query. Future.Value returns it.
func (e *Engine) Root() *Future {
	return e.submit(newFuture(kRoot))
}

// GrowCtx is Grow carrying a distributed-trace context: the flush that
// executes the request adopts sc's trace (and is force-sampled into the
// span log). The zero SpanContext degrades to plain Grow at no cost.
func (e *Engine) GrowCtx(sc obs.SpanContext, ref NodeRef, op OpT, leftVal, rightVal int64) *Future {
	f := newFuture(kGrow)
	f.ref, f.op, f.a, f.b, f.span = ref, op, leftVal, rightVal, sc
	return e.submit(f)
}

// CollapseCtx is Collapse carrying a distributed-trace context.
func (e *Engine) CollapseCtx(sc obs.SpanContext, ref NodeRef, newValue int64) *Future {
	f := newFuture(kCollapse)
	f.ref, f.a, f.span = ref, newValue, sc
	return e.submit(f)
}

// SetLeafCtx is SetLeaf carrying a distributed-trace context.
func (e *Engine) SetLeafCtx(sc obs.SpanContext, ref NodeRef, value int64) *Future {
	f := newFuture(kSetLeaf)
	f.ref, f.a, f.span = ref, value, sc
	return e.submit(f)
}

// SetOpCtx is SetOp carrying a distributed-trace context.
func (e *Engine) SetOpCtx(sc obs.SpanContext, ref NodeRef, op OpT) *Future {
	f := newFuture(kSetOp)
	f.ref, f.op, f.span = ref, op, sc
	return e.submit(f)
}

// ValueCtx is Value carrying a distributed-trace context.
func (e *Engine) ValueCtx(sc obs.SpanContext, ref NodeRef) *Future {
	f := newFuture(kValue)
	f.ref, f.span = ref, sc
	return e.submit(f)
}

// RootCtx is Root carrying a distributed-trace context.
func (e *Engine) RootCtx(sc obs.SpanContext) *Future {
	f := newFuture(kRoot)
	f.span = sc
	return e.submit(f)
}

// Barrier submits fn for exclusive, linearized execution on the executor
// goroutine: fn sees a quiescent host and may use any of its methods. Tour
// queries and node-ID resolution ride on this.
func (e *Engine) Barrier(fn func(Host)) *Future {
	f := newFuture(kBarrier)
	f.fn = fn
	return e.submit(f)
}

// run is the executor: the only goroutine that drains the queue and (via
// its serial lane, when a pool is configured) touches e.host.
func (e *Engine) run() {
	defer close(e.done)
	for {
		first, ok := <-e.ch
		if !ok {
			return
		}
		flush := e.collect(first)
		n := len(flush)
		e.executeFlush(flush)
		e.adaptBatch(n)
	}
}

// noteShedBurst journals that the engine is shedding, rate-limited to
// one event per second per engine: individual rejections are counted by
// stats and the ShedSink; the journal records that a burst is happening
// at all, with the running total for scale.
func (e *Engine) noteShedBurst() {
	j := e.opts.Events
	if j == nil {
		return
	}
	now := time.Now().UnixNano()
	last := e.shedEventAt.Load()
	if now-last < int64(time.Second) || !e.shedEventAt.CompareAndSwap(last, now) {
		return
	}
	j.EmitTree(obs.EvShedBurst, e.traceID.Load(),
		"submit queue full, shedding requests",
		map[string]any{"shed_total": e.stats.shedded.Load(), "queue_cap": e.opts.Queue})
}

// adaptBatch is the adaptive flush cap (Options.MaxBatch docs): grow
// while flushes saturate — a flush that reaches the cap was clipped by
// it, i.e. demand outran the executor — and decay after a run of
// well-under-filled flushes. Correctness never depends on the cap; it
// only moves the latency/throughput trade under load.
func (e *Engine) adaptBatch(flushLen int) {
	cur := int(e.curMax.Load())
	switch {
	case flushLen >= cur && cur < e.opts.MaxBatchCeil:
		next := cur * 2
		if next > e.opts.MaxBatchCeil {
			next = e.opts.MaxBatchCeil
		}
		e.curMax.Store(int64(next))
		e.stats.batchGrows.Add(1)
		if j := e.opts.Events; j != nil {
			j.EmitTree(obs.EvBatchGrow, e.traceID.Load(),
				"adaptive flush cap doubled under saturation",
				map[string]any{"from": cur, "to": next})
		}
		e.underfull = 0
	case flushLen < cur/4 && cur > e.opts.MaxBatch:
		if e.underfull++; e.underfull >= 8 {
			next := cur / 2
			if next < e.opts.MaxBatch {
				next = e.opts.MaxBatch
			}
			e.curMax.Store(int64(next))
			e.stats.batchShrinks.Add(1)
			if j := e.opts.Events; j != nil {
				j.EmitTree(obs.EvBatchShrink, e.traceID.Load(),
					"adaptive flush cap decayed after underfull flushes",
					map[string]any{"from": cur, "to": next})
			}
			e.underfull = 0
		}
	default:
		e.underfull = 0
	}
}

// collect assembles one flush: the adaptive batching window. It returns
// immediately with whatever has accrued when the queue goes idle (Window
// 0), or waits up to Window from the first request while the flush is
// smaller than the current adaptive cap (Options.MaxBatch, grown under
// saturation). The returned slice is the executor's reusable flush
// buffer, valid until the next collect.
func (e *Engine) collect(first *Future) []*Future {
	flush := append(e.sc.flush[:0], first)
	defer func() { e.sc.flush = flush }()
	maxBatch := int(e.curMax.Load())

	// Fast path: drain whatever is already queued.
	for len(flush) < maxBatch {
		select {
		case f, ok := <-e.ch:
			if !ok {
				return flush
			}
			flush = append(flush, f)
			continue
		default:
		}
		break
	}

	if e.opts.Window <= 0 || len(flush) >= maxBatch {
		return flush
	}

	// Window path: keep accumulating until the deadline or the cap.
	timer := time.NewTimer(e.opts.Window)
	defer timer.Stop()
	for len(flush) < maxBatch {
		select {
		case f, ok := <-e.ch:
			if !ok {
				return flush
			}
			flush = append(flush, f)
		case <-timer.C:
			return flush
		}
	}
	return flush
}

// Package engine turns many concurrent callers into the batches that
// dynamic parallel tree contraction is built for.
//
// Reif & Tate's structure (internal/core) processes a *batch* U of mixed
// requests — add or delete leaves, modify labels, query values — in
// O(log(|U|·log n)) expected parallel time, but it is single-writer: the
// seed repo left batch assembly to a lone caller. This package supplies the
// missing concurrency seam, in the style of modern batch-dynamic tree
// systems (Acar et al. 2020; Ikram et al. 2025) whose throughput comes
// precisely from coalescing concurrent operations into batches before they
// hit the structure:
//
//   - Arbitrarily many goroutines submit Grow / Collapse / SetLeaf /
//     SetOp / Value / Root / Barrier requests and receive per-request
//     Futures.
//   - A single executor goroutine drains the queue with an adaptive
//     batching window: a flush closes when it reaches MaxBatch, when the
//     window expires, or — with no window configured — the moment the
//     executor goes idle, so batching adds no latency when traffic is
//     light and grows batches automatically as the executor saturates.
//   - Each flush is partitioned (partition.go) into waves of
//     node-disjoint requests, and every wave executes as at most one call
//     to each of the core batch entry points (GrowBatch, CollapseBatch,
//     SetLeaves, SetOps, Values) — the paper's §1.4 batch-request model.
//
// Every request is linearizable: it takes effect atomically between submit
// and future resolution. Requests touching a common node additionally
// execute in submission order.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"dyntc/internal/replog"
)

// Host is the single-writer structure the engine serializes access to.
// dyntc.Expr satisfies it directly.
type Host interface {
	Tree() *TreeT
	GrowBatch(ops []GrowOp) [][2]*NodeT
	CollapseBatch(ops []CollapseOp)
	SetLeaves(leaves []*NodeT, values []int64)
	SetOps(nodes []*NodeT, ops []OpT)
	Values(nodes []*NodeT) []int64
	Root() int64
}

// Options configures an Engine. The zero value gives sane defaults.
type Options struct {
	// MaxBatch caps the number of requests per flush (default 1024).
	MaxBatch int
	// Window is the maximum time the executor waits, counted from the
	// first request of a flush, for more requests to coalesce. Zero means
	// flush as soon as the queue is momentarily empty (adaptive
	// idle-flush): zero added latency when idle, large batches under load.
	Window time.Duration
	// Queue is the submit queue capacity; submits block (backpressure)
	// once it fills (default 4096).
	Queue int
	// Shed switches the full-queue policy from blocking to load shedding:
	// a submit that finds the queue at capacity fails its future
	// immediately with ErrOverloaded instead of blocking the caller.
	// Servers translate that into 429 + Retry-After; library callers that
	// want backpressure leave it false. Barriers are exempt: snapshots,
	// log compaction and follower bootstrap ride barriers and must not
	// starve under exactly the load shedding exists to survive — they
	// block on a full queue like on an unshedded engine.
	Shed bool
	// Workers is the goroutine parallelism of the host's PRAM machine, on
	// which a wave's node-disjoint batches execute. The engine itself
	// stays single-executor; the layer that owns the host applies the
	// setting to its machine (dyntc.Expr.Serve / dyntc.NewForest do).
	// Recorded here so Stats can surface it. 0 means leave the host's
	// machine as configured.
	Workers int
	// WaveTap, when set, is called on the executor goroutine after every
	// executed wave that mutated the tree, with the wave's sealed change
	// record (dense-ID ops, assigned grow IDs, post-wave root, checksum).
	// This is the replication seam: internal/replog logs and ships these.
	// The tap runs inline on the executor — it must be fast and must not
	// call back into the engine. See also Engine.SetWaveTap.
	WaveTap WaveTap
}

// WaveTap receives the change record of one executed mutating wave.
type WaveTap func(replog.Wave)

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.Queue <= 0 {
		o.Queue = 4096
	}
	return o
}

// Engine is a concurrent request-coalescing front end over one Host. All
// exported methods are safe for concurrent use.
type Engine struct {
	host Host
	opts Options

	ch chan *Future

	mu       sync.RWMutex // guards closed against concurrent submits
	closed   bool
	poisoned bool

	stats statsRec

	// appliedSeq numbers the mutating waves this engine has executed; it
	// is the tree state's position in the wave change-log. Restored
	// followers seed it with their snapshot's sequence (SetAppliedSeq).
	appliedSeq atomic.Uint64
	// tap is the active wave tap (nil = none); swappable at runtime so a
	// change log can attach to an already-serving engine.
	tap atomic.Pointer[WaveTap]

	// sc is the executor's reusable flush/partition state (executor
	// goroutine only).
	sc scratch

	done chan struct{}
}

// New starts an engine (and its executor goroutine) over host.
func New(host Host, opts Options) *Engine {
	e := &Engine{
		host: host,
		opts: opts.withDefaults(),
		done: make(chan struct{}),
	}
	e.ch = make(chan *Future, e.opts.Queue)
	if e.opts.WaveTap != nil {
		e.tap.Store(&e.opts.WaveTap)
	}
	go e.run()
	return e
}

// SetWaveTap installs (or, with nil, removes) the wave tap. The tap takes
// effect from the next executed wave; waves already executed are not
// replayed into it, so attach the tap before traffic (or right after
// restoring a snapshot) for a gapless log.
func (e *Engine) SetWaveTap(tap WaveTap) {
	if tap == nil {
		e.tap.Store(nil)
		return
	}
	e.tap.Store(&tap)
}

// Tapped reports whether a wave tap is currently attached: the engine's
// mutating waves feed a change log, so state changes that bypass the wave
// stream (mutations inside a Barrier) would silently diverge replicas.
func (e *Engine) Tapped() bool { return e.tap.Load() != nil }

// AppliedSeq returns the sequence number of the last mutating wave the
// engine executed (the tree state's position in the wave change-log).
func (e *Engine) AppliedSeq() uint64 { return e.appliedSeq.Load() }

// SetAppliedSeq seeds the applied-wave sequence, for an engine started
// over a host restored from a snapshot taken at that sequence. Call it
// before the engine receives traffic.
func (e *Engine) SetAppliedSeq(seq uint64) { e.appliedSeq.Store(seq) }

// Close stops accepting requests, waits for the executor to drain every
// pending request, and returns. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.ch)
	}
	e.mu.Unlock()
	<-e.done
}

// submit enqueues f, failing it immediately when the engine is closed —
// or, on a shedding engine, when the queue is at capacity.
func (e *Engine) submit(f *Future) *Future {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.stats.drop(1)
		f.resolve(0, [2]*NodeT{}, ErrClosed)
		return f
	}
	// The send happens under the read lock so Close cannot close e.ch
	// between the check and the send; the executor keeps draining, so
	// blocked senders always complete.
	if e.opts.Shed && f.kind != kBarrier {
		select {
		case e.ch <- f:
			e.mu.RUnlock()
		default:
			e.mu.RUnlock()
			e.stats.shed(1)
			f.resolve(0, [2]*NodeT{}, ErrOverloaded)
		}
		return f
	}
	e.ch <- f
	e.mu.RUnlock()
	return f
}

// Grow submits a leaf expansion: ref becomes an op node with two fresh
// leaves holding (leftVal, rightVal). Future.Pair returns the new leaves.
func (e *Engine) Grow(ref NodeRef, op OpT, leftVal, rightVal int64) *Future {
	f := newFuture(kGrow)
	f.ref, f.op, f.a, f.b = ref, op, leftVal, rightVal
	return e.submit(f)
}

// Collapse submits a leaf-pair deletion: ref's two leaf children are
// removed and ref becomes a leaf holding newValue.
func (e *Engine) Collapse(ref NodeRef, newValue int64) *Future {
	f := newFuture(kCollapse)
	f.ref, f.a = ref, newValue
	return e.submit(f)
}

// SetLeaf submits a leaf value update.
func (e *Engine) SetLeaf(ref NodeRef, value int64) *Future {
	f := newFuture(kSetLeaf)
	f.ref, f.a = ref, value
	return e.submit(f)
}

// SetOp submits an internal-operation update.
func (e *Engine) SetOp(ref NodeRef, op OpT) *Future {
	f := newFuture(kSetOp)
	f.ref, f.op = ref, op
	return e.submit(f)
}

// Value submits a subexpression value query. Future.Value returns it.
func (e *Engine) Value(ref NodeRef) *Future {
	f := newFuture(kValue)
	f.ref = ref
	return e.submit(f)
}

// Root submits a root value query. Future.Value returns it.
func (e *Engine) Root() *Future {
	return e.submit(newFuture(kRoot))
}

// Barrier submits fn for exclusive, linearized execution on the executor
// goroutine: fn sees a quiescent host and may use any of its methods. Tour
// queries and node-ID resolution ride on this.
func (e *Engine) Barrier(fn func(Host)) *Future {
	f := newFuture(kBarrier)
	f.fn = fn
	return e.submit(f)
}

// run is the executor: the only goroutine that touches e.host.
func (e *Engine) run() {
	defer close(e.done)
	for {
		first, ok := <-e.ch
		if !ok {
			return
		}
		flush := e.collect(first)
		e.executeFlush(flush)
	}
}

// collect assembles one flush: the adaptive batching window. It returns
// immediately with whatever has accrued when the queue goes idle (Window
// 0), or waits up to Window from the first request while the flush is
// smaller than MaxBatch. The returned slice is the executor's reusable
// flush buffer, valid until the next collect.
func (e *Engine) collect(first *Future) []*Future {
	flush := append(e.sc.flush[:0], first)
	defer func() { e.sc.flush = flush }()

	// Fast path: drain whatever is already queued.
	for len(flush) < e.opts.MaxBatch {
		select {
		case f, ok := <-e.ch:
			if !ok {
				return flush
			}
			flush = append(flush, f)
			continue
		default:
		}
		break
	}

	if e.opts.Window <= 0 || len(flush) >= e.opts.MaxBatch {
		return flush
	}

	// Window path: keep accumulating until the deadline or MaxBatch.
	timer := time.NewTimer(e.opts.Window)
	defer timer.Stop()
	for len(flush) < e.opts.MaxBatch {
		select {
		case f, ok := <-e.ch:
			if !ok {
				return flush
			}
			flush = append(flush, f)
		case <-timer.C:
			return flush
		}
	}
	return flush
}

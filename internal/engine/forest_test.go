package engine_test

import (
	"sync"
	"testing"

	"dyntc"
)

func TestForestIsolation(t *testing.T) {
	f := dyntc.NewForest(dyntc.BatchOptions{})
	defer f.Close()
	ring := dyntc.ModRing(mod)

	const trees = 20
	ids := make([]dyntc.TreeID, trees)
	for i := 0; i < trees; i++ {
		id, _ := f.Create(ring, int64(i), dyntc.WithSeed(uint64(i+1)))
		ids[i] = id
	}
	if f.Len() != trees {
		t.Fatalf("Len = %d", f.Len())
	}

	// Concurrent traffic against every tree: each tree's root ends at
	// base + 2*rounds, independent of the others.
	const rounds = 25
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id dyntc.TreeID) {
			defer wg.Done()
			en, ok := f.Get(id)
			if !ok {
				t.Errorf("tree %d missing", id)
				return
			}
			rootID := 0
			cur := int64(i)
			for r := 0; r < rounds; r++ {
				lID, rID, err := en.GrowID(rootID, dyntc.OpAdd(ring), cur, 1)
				if err != nil {
					t.Errorf("grow: %v", err)
					return
				}
				if err := en.SetLeafID(rID, 2); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				cur += 2
				if err := en.CollapseID(rootID, cur); err != nil {
					t.Errorf("collapse: %v", err)
					return
				}
				_ = lID
			}
		}(i, id)
	}
	wg.Wait()

	for i, id := range ids {
		en, _ := f.Get(id)
		v, err := en.Root()
		if err != nil {
			t.Fatalf("root: %v", err)
		}
		if want := int64(i) + 2*rounds; v != want {
			t.Fatalf("tree %d root = %d, want %d", i, v, want)
		}
	}

	total := f.Stats()
	if total.Grows != trees*rounds || total.Collapses != trees*rounds {
		t.Fatalf("aggregate stats: %+v", total)
	}

	if !f.Drop(ids[0]) {
		t.Fatal("Drop existing")
	}
	if f.Drop(ids[0]) {
		t.Fatal("Drop twice")
	}
	if _, ok := f.Get(ids[0]); ok {
		t.Fatal("Get after Drop")
	}
	if f.Len() != trees-1 {
		t.Fatalf("Len after drop = %d", f.Len())
	}
}

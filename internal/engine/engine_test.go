package engine_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dyntc"
	"dyntc/internal/engine"
)

const mod = 1_000_000_007

func newEngine(t *testing.T, rootVal int64, opts dyntc.BatchOptions) (*dyntc.Engine, *dyntc.Expr) {
	t.Helper()
	ring := dyntc.ModRing(mod)
	e := dyntc.NewExpr(ring, rootVal, dyntc.WithSeed(42))
	en := e.Serve(opts)
	t.Cleanup(en.Close)
	return en, e
}

func TestSequentialSemantics(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)

	l, _, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 3, 4)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if v, _ := en.Root(); v != 7 {
		t.Fatalf("3+4 = %d", v)
	}
	if err := en.SetLeaf(l, 10); err != nil {
		t.Fatalf("SetLeaf: %v", err)
	}
	if v, _ := en.Root(); v != 14 {
		t.Fatalf("10+4 = %d", v)
	}
	ll, lr, err := en.Grow(l, dyntc.OpMul(ring), 6, 7)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if v, _ := en.Value(l); v != 42 {
		t.Fatalf("6*7 = %d", v)
	}
	if err := en.SetOp(e.Tree().Root, dyntc.OpMul(ring)); err != nil {
		t.Fatalf("SetOp: %v", err)
	}
	if v, _ := en.Root(); v != 42*4 {
		t.Fatalf("42*4 = %d", v)
	}
	_, _ = ll, lr
	if err := en.Collapse(l, 5); err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if v, _ := en.Root(); v != 20 {
		t.Fatalf("5*4 = %d", v)
	}
}

func TestValidationErrors(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)
	root := e.Tree().Root

	l, _, err := en.Grow(root, dyntc.OpAdd(ring), 3, 4)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if _, _, err := en.Grow(root, dyntc.OpAdd(ring), 1, 2); !errors.Is(err, engine.ErrNotLeaf) {
		t.Fatalf("grow internal: %v", err)
	}
	if err := en.SetLeaf(root, 9); !errors.Is(err, engine.ErrNotLeaf) {
		t.Fatalf("set-leaf internal: %v", err)
	}
	if err := en.SetOp(l, dyntc.OpMul(ring)); !errors.Is(err, engine.ErrNotInternal) {
		t.Fatalf("set-op leaf: %v", err)
	}
	if err := en.Collapse(l, 0); !errors.Is(err, engine.ErrNotInternal) {
		t.Fatalf("collapse leaf: %v", err)
	}
	if _, err := en.ValueID(99); !errors.Is(err, engine.ErrDeadNode) {
		t.Fatalf("value bad id: %v", err)
	}
	if _, err := en.ValueID(-1); !errors.Is(err, engine.ErrDeadNode) {
		t.Fatalf("value negative id: %v", err)
	}
	// Collapse deletes l's sibling pair; the dead node is then rejected.
	if _, _, err := en.Grow(l, dyntc.OpAdd(ring), 5, 6); err != nil {
		t.Fatalf("grow l: %v", err)
	}
	if err := en.Collapse(l, 7); err != nil {
		t.Fatalf("collapse l: %v", err)
	}
	// root now has children (l=7, sibling=4); collapse root, killing l.
	if err := en.Collapse(root, 11); err != nil {
		t.Fatalf("collapse root: %v", err)
	}
	if err := en.SetLeaf(l, 1); !errors.Is(err, engine.ErrDeadNode) {
		t.Fatalf("set dead leaf: %v", err)
	}
	if v, _ := en.Root(); v != 11 {
		t.Fatalf("root after collapse = %d", v)
	}
	if en.Stats().Errors == 0 {
		t.Fatal("validation errors not counted")
	}
}

func TestIDAddressedAPI(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)

	lID, rID, err := en.GrowID(e.Tree().Root.ID, dyntc.OpAdd(ring), 3, 4)
	if err != nil {
		t.Fatalf("GrowID: %v", err)
	}
	if err := en.SetLeafID(lID, 10); err != nil {
		t.Fatalf("SetLeafID: %v", err)
	}
	if v, err := en.ValueID(rID); err != nil || v != 4 {
		t.Fatalf("ValueID(r) = %d, %v", v, err)
	}
	if err := en.SetOpID(e.Tree().Root.ID, dyntc.OpMul(ring)); err != nil {
		t.Fatalf("SetOpID: %v", err)
	}
	if v, _ := en.Root(); v != 40 {
		t.Fatalf("10*4 = %d", v)
	}
	if err := en.CollapseID(e.Tree().Root.ID, 3); err != nil {
		t.Fatalf("CollapseID: %v", err)
	}
	if v, _ := en.Root(); v != 3 {
		t.Fatalf("root = %d", v)
	}
}

// TestCoalescing checks the acceptance criterion mechanism directly: many
// requests submitted while the executor is busy coalesce, so the mean
// executed batch size exceeds 1.
func TestCoalescing(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{})
	ring := dyntc.ModRing(mod)

	l, _, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 0, 4)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}

	// Hold the executor inside a barrier so everything below lands in one
	// flush.
	release := make(chan struct{})
	barrier := make(chan struct{})
	go func() {
		_ = en.Query(func(*dyntc.Expr) { close(barrier); <-release })
	}()
	<-barrier

	const n = 256
	futs := make([]*dyntc.Future, 0, n)
	for i := 0; i < n; i++ {
		futs = append(futs, en.SetLeafAsync(l, int64(i)))
	}
	close(release)
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatalf("SetLeaf: %v", err)
		}
	}
	if v, _ := en.Root(); v != n-1+4 {
		t.Fatalf("root = %d, want %d", v, n-1+4)
	}
	st := en.Stats()
	if st.MeanFlush() <= 1 {
		t.Fatalf("mean flush %.2f, want > 1 (stats %+v)", st.MeanFlush(), st)
	}
	if st.MaxFlush < n {
		t.Fatalf("max flush %d, want >= %d", st.MaxFlush, n)
	}
}

func TestWindowCoalescing(t *testing.T) {
	en, e := newEngine(t, 1, dyntc.BatchOptions{Window: 20 * time.Millisecond})
	ring := dyntc.ModRing(mod)
	l, r, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 0, 0)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	before := en.Stats().Flushes
	f1 := en.SetLeafAsync(l, 3)
	f2 := en.SetLeafAsync(r, 4)
	if err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Wait(); err != nil {
		t.Fatal(err)
	}
	if v, _ := en.Root(); v != 7 {
		t.Fatalf("root = %d", v)
	}
	// Both updates should have shared one windowed flush (the window is
	// far longer than two back-to-back submits).
	if got := en.Stats().Flushes - before; got > 2 {
		t.Fatalf("flushes = %d, want <= 2", got)
	}
}

func TestCloseSemantics(t *testing.T) {
	ring := dyntc.ModRing(mod)
	e := dyntc.NewExpr(ring, 1, dyntc.WithSeed(42))
	en := e.Serve(dyntc.BatchOptions{})

	var wg sync.WaitGroup
	l, _, err := en.Grow(e.Tree().Root, dyntc.OpAdd(ring), 3, 4)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = en.SetLeaf(l, int64(i))
		}(i)
	}
	wg.Wait()
	en.Close()
	en.Close() // idempotent
	if err := en.SetLeaf(l, 99); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	// The Expr is reclaimed for direct use after Close.
	if v := e.Value(l); v < 0 || v > 31 {
		t.Fatalf("leaf = %d", v)
	}
}

func TestTourQueriesLinearized(t *testing.T) {
	ring := dyntc.ModRing(mod)
	e := dyntc.NewExpr(ring, 1, dyntc.WithSeed(42), dyntc.WithTour())
	root := e.Tree().Root
	l, r := e.Grow(root, dyntc.OpAdd(ring), 3, 4)
	en := e.Serve(dyntc.BatchOptions{})
	t.Cleanup(en.Close)

	if p, err := en.Preorder(root); err != nil || p != 1 {
		t.Fatalf("Preorder(root) = %d, %v", p, err)
	}
	if s, err := en.SubtreeSize(root); err != nil || s != 3 {
		t.Fatalf("SubtreeSize(root) = %d, %v", s, err)
	}
	if a, err := en.LCA(l, r); err != nil || a != root {
		t.Fatalf("LCA = %v, %v", a, err)
	}
}

package engine

import (
	"fmt"
)

// This file turns one flush — an arbitrary mix of concurrent requests — into
// the conflict-free batch kinds internal/core supports.
//
// A flush is partitioned into *waves*. A wave is a set of requests whose
// node footprints are pairwise disjoint, so each wave executes as at most
// one GrowBatch + one CollapseBatch + one SetLeaves + one SetOps + one
// Values call, in that fixed order; disjointness makes the order
// irrelevant to the results and keeps every core precondition (checked at
// planning time, against the exact tree state the wave will run on) valid
// through the wave.
//
// Footprints: Grow and SetLeaf write {leaf}; SetOp writes {node}; Collapse
// writes {node, node.Left, node.Right} (the children are deleted); Value
// reads {node}; Root reads nothing destructible. A request joins the
// current wave unless its footprint intersects the wave's footprint or the
// footprint of an already-deferred request — the second condition keeps
// same-node requests in submission order. Deferred requests form the next
// wave's input, so planning always terminates: the earliest pending
// request always joins (or fails validation).
//
// Barriers seal the flush: a barrier runs alone between waves.

// footprint is the set of live nodes a request touches, with reads and
// writes distinguished (reads may share a wave with reads).
type footprint struct {
	nodes [3]*NodeT
	n     int
	write bool
}

func (fp *footprint) add(n *NodeT) {
	fp.nodes[fp.n] = n
	fp.n++
}

// touched maps nodes to the strongest access mode seen (true = write).
type touched map[*NodeT]bool

func (t touched) add(fp footprint) {
	for i := 0; i < fp.n; i++ {
		if fp.write || !t[fp.nodes[i]] {
			t[fp.nodes[i]] = fp.write
		}
	}
}

// conflicts reports whether fp cannot coexist with t: write/any or
// any/write overlap.
func (t touched) conflicts(fp footprint) bool {
	for i := 0; i < fp.n; i++ {
		w, ok := t[fp.nodes[i]]
		if ok && (w || fp.write) {
			return true
		}
	}
	return false
}

// resolve returns the live node a ref addresses, or an error. Liveness is
// checked against Tree.Nodes, where deleted nodes are nil-ed but keep
// their slot.
func (e *Engine) resolve(ref NodeRef) (*NodeT, error) {
	t := e.host.Tree()
	if ref.ByID {
		if ref.ID < 0 || ref.ID >= len(t.Nodes) || t.Nodes[ref.ID] == nil {
			return nil, fmt.Errorf("%w (id %d)", ErrDeadNode, ref.ID)
		}
		return t.Nodes[ref.ID], nil
	}
	n := ref.N
	if n == nil || n.ID < 0 || n.ID >= len(t.Nodes) || t.Nodes[n.ID] != n {
		return nil, ErrDeadNode
	}
	return n, nil
}

// planOne resolves and validates f against the current tree state and
// returns its footprint. An error means the request is invalid *now* and —
// because it is only called for requests whose nodes no pending request
// ahead of them touches — invalid at its execution point.
func (e *Engine) planOne(f *Future) (footprint, error) {
	var fp footprint
	switch f.kind {
	case kRoot:
		return fp, nil
	case kBarrier:
		return fp, nil
	}
	n, err := e.resolve(f.ref)
	if err != nil {
		return fp, err
	}
	switch f.kind {
	case kGrow, kSetLeaf:
		if !n.IsLeaf() {
			return fp, ErrNotLeaf
		}
		fp.write = true
		fp.add(n)
	case kCollapse:
		if n.IsLeaf() {
			return fp, ErrNotInternal
		}
		if !n.Left.IsLeaf() || !n.Right.IsLeaf() {
			return fp, ErrNotCollapsible
		}
		fp.write = true
		fp.add(n)
		fp.add(n.Left)
		fp.add(n.Right)
	case kSetOp:
		if n.IsLeaf() {
			return fp, ErrNotInternal
		}
		fp.write = true
		fp.add(n)
	case kValue:
		fp.add(n)
	}
	f.ref = NodeRef{N: n} // pin the resolved handle for execution
	return fp, nil
}

// executeFlush partitions flush into waves and executes them. A panic
// while a wave runs (a bug, not a validation miss) fails the whole flush
// and poisons the engine: the contraction's internal state is unknown.
func (e *Engine) executeFlush(flush []*Future) {
	if e.poisoned {
		for _, f := range flush {
			f.resolve(0, [2]*NodeT{}, ErrPoisoned)
		}
		return
	}
	e.stats.flush(len(flush))

	pending := flush
	for len(pending) > 0 {
		var (
			wave     []*Future
			deferred []*Future
			waveFP   = touched{}
			defFP    = touched{}
			sealed   = false // a barrier in the wave: nothing may join
			deferAll = false // a deferred barrier: everything after defers
		)
		for _, f := range pending {
			if deferAll || sealed {
				deferred = append(deferred, f)
				continue
			}
			if f.kind == kBarrier {
				if len(wave) == 0 {
					wave = append(wave, f)
					sealed = true
				} else {
					deferred = append(deferred, f)
					deferAll = true
				}
				continue
			}
			if order := e.footprintAll(f); defFP.conflicts(order) {
				// A request ahead of f touches f's nodes: preserve
				// submission order without validating yet (the earlier
				// request may change f's validity).
				deferred = append(deferred, f)
				defFP.add(order)
				continue
			}
			fp, err := e.planOne(f)
			if err != nil {
				e.stats.fail()
				f.resolve(0, [2]*NodeT{}, err)
				continue
			}
			if waveFP.conflicts(fp) {
				deferred = append(deferred, f)
				defFP.add(fp)
				continue
			}
			wave = append(wave, f)
			waveFP.add(fp)
		}
		if len(wave) > 0 {
			e.runWave(wave)
		}
		if e.poisoned {
			// A wave panic mid-flush: the structure is in an unknown
			// state, so the remaining waves must not touch it.
			for _, f := range deferred {
				f.resolve(0, [2]*NodeT{}, ErrPoisoned)
			}
			return
		}
		pending = deferred
	}
}

// footprintAll returns a conservative footprint for ordering against
// deferred requests: the nodes f names, all treated as writes, without
// validation. ByID refs resolve against the current tree (we are on the
// executor goroutine); an unresolvable ref has an empty footprint — it can
// never conflict, and fails validation when reached.
func (e *Engine) footprintAll(f *Future) footprint {
	fp := footprint{write: f.kind != kValue}
	if f.kind == kRoot || f.kind == kBarrier {
		return fp
	}
	n, err := e.resolve(f.ref)
	if err != nil {
		return footprint{}
	}
	fp.add(n)
	if f.kind == kCollapse && !n.IsLeaf() {
		fp.add(n.Left)
		fp.add(n.Right)
	}
	return fp
}

// runWave executes one conflict-free wave as the core batch calls of §1.4.
func (e *Engine) runWave(wave []*Future) {
	defer func() {
		if r := recover(); r != nil {
			e.poisoned = true
			err := fmt.Errorf("%w: %v", ErrPoisoned, r)
			for _, f := range wave {
				select {
				case <-f.done:
				default:
					f.resolve(0, [2]*NodeT{}, err)
				}
			}
		}
	}()
	e.stats.wave()

	if wave[0].kind == kBarrier {
		f := wave[0]
		f.fn(e.host)
		e.stats.done(kBarrier)
		f.resolve(0, [2]*NodeT{}, nil)
		return
	}

	var (
		grows, collapses, setLeaves, setOps, values []*Future
	)
	for _, f := range wave {
		switch f.kind {
		case kGrow:
			grows = append(grows, f)
		case kCollapse:
			collapses = append(collapses, f)
		case kSetLeaf:
			setLeaves = append(setLeaves, f)
		case kSetOp:
			setOps = append(setOps, f)
		case kValue, kRoot:
			values = append(values, f)
		}
	}

	if len(grows) > 0 {
		ops := make([]GrowOp, len(grows))
		for i, f := range grows {
			ops[i] = GrowOp{Leaf: f.ref.N, Op: f.op, LeftVal: f.a, RightVal: f.b}
		}
		pairs := e.host.GrowBatch(ops)
		for i, f := range grows {
			e.stats.done(kGrow)
			f.resolve(0, pairs[i], nil)
		}
	}
	if len(collapses) > 0 {
		ops := make([]CollapseOp, len(collapses))
		for i, f := range collapses {
			ops[i] = CollapseOp{Node: f.ref.N, NewValue: f.a}
		}
		e.host.CollapseBatch(ops)
		for _, f := range collapses {
			e.stats.done(kCollapse)
			f.resolve(0, [2]*NodeT{}, nil)
		}
	}
	if len(setLeaves) > 0 {
		ls := make([]*NodeT, len(setLeaves))
		vs := make([]int64, len(setLeaves))
		for i, f := range setLeaves {
			ls[i], vs[i] = f.ref.N, f.a
		}
		e.host.SetLeaves(ls, vs)
		for _, f := range setLeaves {
			e.stats.done(kSetLeaf)
			f.resolve(0, [2]*NodeT{}, nil)
		}
	}
	if len(setOps) > 0 {
		ns := make([]*NodeT, len(setOps))
		ops := make([]OpT, len(setOps))
		for i, f := range setOps {
			ns[i], ops[i] = f.ref.N, f.op
		}
		e.host.SetOps(ns, ops)
		for _, f := range setOps {
			e.stats.done(kSetOp)
			f.resolve(0, [2]*NodeT{}, nil)
		}
	}
	if len(values) > 0 {
		var ns []*NodeT
		for _, f := range values {
			if f.kind == kValue {
				ns = append(ns, f.ref.N)
			}
		}
		var vals []int64
		if len(ns) > 0 {
			vals = e.host.Values(ns)
		}
		i := 0
		for _, f := range values {
			if f.kind == kValue {
				e.stats.done(kValue)
				f.resolve(vals[i], [2]*NodeT{}, nil)
				i++
			} else {
				e.stats.done(kRoot)
				f.resolve(e.host.Root(), [2]*NodeT{}, nil)
			}
		}
	}
}

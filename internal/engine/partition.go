package engine

import (
	"fmt"
	"time"

	"dyntc/internal/replog"
)

// This file turns one flush — an arbitrary mix of concurrent requests — into
// the conflict-free batch kinds internal/core supports.
//
// A flush is partitioned into *waves*. A wave is a set of requests whose
// node footprints are pairwise disjoint, so each wave executes as at most
// one GrowBatch + one CollapseBatch + one SetLeaves + one SetOps + one
// Values call, in that fixed order; disjointness makes the order
// irrelevant to the results and keeps every core precondition (checked at
// planning time, against the exact tree state the wave will run on) valid
// through the wave.
//
// Footprints: Grow and SetLeaf write {leaf}; SetOp writes {node}; Collapse
// writes {node, node.Left, node.Right} (the children are deleted); Value
// reads {node}; Root reads nothing destructible. A request joins the
// current wave unless its footprint intersects the wave's footprint or the
// footprint of an already-deferred request — the second condition keeps
// same-node requests in submission order. Deferred requests form the next
// wave's input, so planning always terminates: the earliest pending
// request always joins (or fails validation).
//
// Barriers seal the flush: a barrier runs alone between waves.
//
// All partitioning state lives in the engine's executor-only scratch and
// is reused across flushes: the steady-state flush loop performs no
// per-flush slice, map or Future allocation.

// footprint is the set of live nodes a request touches, with reads and
// writes distinguished (reads may share a wave with reads).
type footprint struct {
	nodes [3]*NodeT
	n     int
	write bool
}

func (fp *footprint) add(n *NodeT) {
	fp.nodes[fp.n] = n
	fp.n++
}

// fpEntry is one (node, strongest access mode) pair of a footprintSet.
type fpEntry struct {
	n     *NodeT
	write bool
}

// fpSpillAt is the small-set size beyond which a footprintSet moves to a
// map. Typical waves touch a handful of nodes (a flush of mean size 2–30
// with ≤3 nodes per request), so the linear slice is the hot path; the map
// only exists for pathological flushes.
const fpSpillAt = 32

// footprintSet records nodes with the strongest access mode seen
// (write beats read). Small sets are a linear slice — no allocation, no
// hashing; large sets spill to a map that is retained and reused.
type footprintSet struct {
	entries []fpEntry
	m       map[*NodeT]bool
	spilled bool
}

// reset empties the set, keeping capacity for reuse.
func (s *footprintSet) reset() {
	s.entries = s.entries[:0]
	if s.spilled {
		clear(s.m)
		s.spilled = false
	}
}

func (s *footprintSet) spill() {
	if s.m == nil {
		s.m = make(map[*NodeT]bool, 4*fpSpillAt)
	}
	for _, e := range s.entries {
		s.m[e.n] = e.write
	}
	s.entries = s.entries[:0]
	s.spilled = true
}

// add records fp's nodes with its access mode (write wins over read).
func (s *footprintSet) add(fp footprint) {
	for i := 0; i < fp.n; i++ {
		n := fp.nodes[i]
		if s.spilled {
			if w, ok := s.m[n]; !ok || (fp.write && !w) {
				s.m[n] = fp.write
			}
			continue
		}
		found := false
		for j := range s.entries {
			if s.entries[j].n == n {
				if fp.write {
					s.entries[j].write = true
				}
				found = true
				break
			}
		}
		if !found {
			s.entries = append(s.entries, fpEntry{n, fp.write})
			if len(s.entries) > fpSpillAt {
				s.spill()
			}
		}
	}
}

// conflicts reports whether fp cannot coexist with the set: write/any or
// any/write overlap.
func (s *footprintSet) conflicts(fp footprint) bool {
	for i := 0; i < fp.n; i++ {
		n := fp.nodes[i]
		if s.spilled {
			if w, ok := s.m[n]; ok && (w || fp.write) {
				return true
			}
			continue
		}
		for j := range s.entries {
			if s.entries[j].n == n {
				if s.entries[j].write || fp.write {
					return true
				}
				break // entries are unique per node: no further match
			}
		}
	}
	return false
}

// scratch is the executor's reusable flush state. Only the executor
// goroutine touches it, so no locking; slices keep their capacity across
// flushes. Slices may retain stale *Future pointers past their length —
// harmless, those futures are pooled anyway.
type scratch struct {
	flush    []*Future // collect's buffer
	overflow []*Future // deferred requests, ping-ponged with flush

	wave   []*Future
	waveFP footprintSet
	defFP  footprintSet

	grows, collapses, setLeaves, setOps, values []*Future
	order                                       []*Future // wave in exact resolution order

	growOps []GrowOp
	colOps  []CollapseOp
	nodes   []*NodeT
	vals    []int64
	opArgs  []OpT
}

// resolve returns the live node a ref addresses, or an error. Liveness is
// checked against Tree.Nodes, where deleted nodes are nil-ed but keep
// their slot.
func (e *Engine) resolve(ref NodeRef) (*NodeT, error) {
	t := e.host.Tree()
	if ref.ByID {
		if ref.ID < 0 || ref.ID >= len(t.Nodes) || t.Nodes[ref.ID] == nil {
			return nil, fmt.Errorf("%w (id %d)", ErrDeadNode, ref.ID)
		}
		return t.Nodes[ref.ID], nil
	}
	n := ref.N
	if n == nil || n.ID < 0 || n.ID >= len(t.Nodes) || t.Nodes[n.ID] != n {
		return nil, ErrDeadNode
	}
	return n, nil
}

// planOne resolves and validates f against the current tree state and
// returns its footprint. An error means the request is invalid *now* and —
// because it is only called for requests whose nodes no pending request
// ahead of them touches — invalid at its execution point.
func (e *Engine) planOne(f *Future) (footprint, error) {
	var fp footprint
	switch f.kind {
	case kRoot:
		return fp, nil
	case kBarrier:
		return fp, nil
	}
	n, err := e.resolve(f.ref)
	if err != nil {
		return fp, err
	}
	switch f.kind {
	case kGrow, kSetLeaf:
		if !n.IsLeaf() {
			return fp, ErrNotLeaf
		}
		fp.write = true
		fp.add(n)
	case kCollapse:
		if n.IsLeaf() {
			return fp, ErrNotInternal
		}
		if !n.Left.IsLeaf() || !n.Right.IsLeaf() {
			return fp, ErrNotCollapsible
		}
		fp.write = true
		fp.add(n)
		fp.add(n.Left)
		fp.add(n.Right)
	case kSetOp:
		if n.IsLeaf() {
			return fp, ErrNotInternal
		}
		fp.write = true
		fp.add(n)
	case kValue:
		fp.add(n)
	}
	f.ref = NodeRef{N: n} // pin the resolved handle for execution
	return fp, nil
}

// executeFlush partitions flush into waves and executes them. A panic
// while a wave runs (a bug, not a validation miss) fails the whole flush
// and poisons the engine: the contraction's internal state is unknown.
func (e *Engine) executeFlush(flush []*Future) {
	if e.poisoned {
		e.stats.drop(len(flush))
		for _, f := range flush {
			f.resolve(0, [2]*NodeT{}, ErrPoisoned)
		}
		return
	}
	flushStart := time.Now()
	defer func() { e.stats.flushDone(time.Since(flushStart)) }()
	e.stats.flush(len(flush))

	// Deferred requests ping-pong between two reusable buffers: each round
	// reads `pending` from one and writes `deferred` into the other. bufA
	// is the incoming flush's backing (collect's buffer).
	sc := &e.sc
	bufA, bufB := flush, sc.overflow
	pending := flush
	intoB := true
	for len(pending) > 0 {
		var deferred []*Future
		if intoB {
			deferred = bufB[:0]
		} else {
			deferred = bufA[:0]
		}
		sc.wave = sc.wave[:0]
		sc.waveFP.reset()
		sc.defFP.reset()
		var (
			sealed   = false // a barrier in the wave: nothing may join
			deferAll = false // a deferred barrier: everything after defers
		)
		for _, f := range pending {
			if deferAll || sealed {
				deferred = append(deferred, f)
				continue
			}
			if f.kind == kBarrier {
				if len(sc.wave) == 0 {
					sc.wave = append(sc.wave, f)
					sealed = true
				} else {
					deferred = append(deferred, f)
					deferAll = true
				}
				continue
			}
			if order := e.footprintAll(f); sc.defFP.conflicts(order) {
				// A request ahead of f touches f's nodes: preserve
				// submission order without validating yet (the earlier
				// request may change f's validity).
				deferred = append(deferred, f)
				sc.defFP.add(order)
				continue
			}
			fp, err := e.planOne(f)
			if err != nil {
				e.stats.fail()
				f.resolve(0, [2]*NodeT{}, err)
				continue
			}
			if sc.waveFP.conflicts(fp) {
				deferred = append(deferred, f)
				sc.defFP.add(fp)
				continue
			}
			sc.wave = append(sc.wave, f)
			sc.waveFP.add(fp)
		}
		if len(sc.wave) > 0 {
			e.runWave(sc.wave)
		}
		if e.poisoned {
			// A wave panic mid-flush: the structure is in an unknown
			// state, so the remaining waves must not touch it.
			e.stats.drop(len(deferred))
			for _, f := range deferred {
				f.resolve(0, [2]*NodeT{}, ErrPoisoned)
			}
			return
		}
		if intoB {
			bufB = deferred
		} else {
			bufA = deferred
		}
		intoB = !intoB
		pending = deferred
	}
	sc.flush, sc.overflow = bufA, bufB
}

// footprintAll returns a conservative footprint for ordering against
// deferred requests: the nodes f names, all treated as writes, without
// validation. ByID refs resolve against the current tree (we are on the
// executor goroutine); an unresolvable ref has an empty footprint — it can
// never conflict, and fails validation when reached.
func (e *Engine) footprintAll(f *Future) footprint {
	fp := footprint{write: f.kind != kValue}
	if f.kind == kRoot || f.kind == kBarrier {
		return fp
	}
	n, err := e.resolve(f.ref)
	if err != nil {
		return footprint{}
	}
	fp.add(n)
	if f.kind == kCollapse && !n.IsLeaf() {
		fp.add(n.Left)
		fp.add(n.Right)
	}
	return fp
}

// runWave executes one conflict-free wave as the core batch calls of §1.4.
// Futures resolve in a fixed order (grows, collapses, set-leaves, set-ops,
// values); the panic path uses that order to fail exactly the futures not
// yet resolved — a resolved Future may already have been recycled by its
// caller and must never be touched again.
func (e *Engine) runWave(wave []*Future) {
	sc := &e.sc
	resolved := 0 // prefix of sc.order already resolved
	defer func() {
		if r := recover(); r != nil {
			e.poisoned = true
			err := fmt.Errorf("%w: %v", ErrPoisoned, r)
			for _, f := range sc.order[resolved:] {
				f.resolve(0, [2]*NodeT{}, err)
			}
		}
	}()
	e.stats.wave()

	if wave[0].kind == kBarrier {
		f := wave[0]
		sc.order = append(sc.order[:0], f)
		f.fn(e.host)
		e.stats.done(kBarrier)
		resolved++
		f.seq = e.appliedSeq.Load()
		f.resolve(0, [2]*NodeT{}, nil)
		return
	}

	sc.grows = sc.grows[:0]
	sc.collapses = sc.collapses[:0]
	sc.setLeaves = sc.setLeaves[:0]
	sc.setOps = sc.setOps[:0]
	sc.values = sc.values[:0]
	for _, f := range wave {
		switch f.kind {
		case kGrow:
			sc.grows = append(sc.grows, f)
		case kCollapse:
			sc.collapses = append(sc.collapses, f)
		case kSetLeaf:
			sc.setLeaves = append(sc.setLeaves, f)
		case kSetOp:
			sc.setOps = append(sc.setOps, f)
		case kValue, kRoot:
			sc.values = append(sc.values, f)
		}
	}
	sc.order = sc.order[:0]
	sc.order = append(sc.order, sc.grows...)
	sc.order = append(sc.order, sc.collapses...)
	sc.order = append(sc.order, sc.setLeaves...)
	sc.order = append(sc.order, sc.setOps...)
	sc.order = append(sc.order, sc.values...)

	// When a wave tap is attached, build the wave's change record. Op data
	// must be captured before the corresponding resolve: a resolved Future
	// may already be recycled (and reused) by its caller. The record slice
	// is freshly allocated per wave — it escapes into the tap, which may
	// retain it (log rings do).
	tap := e.tap.Load()
	mutating := len(sc.grows) + len(sc.collapses) + len(sc.setLeaves) + len(sc.setOps)
	var rec []replog.Op
	if tap != nil && mutating > 0 {
		rec = make([]replog.Op, 0, mutating)
	}

	if len(sc.grows) > 0 {
		sc.growOps = sc.growOps[:0]
		for _, f := range sc.grows {
			sc.growOps = append(sc.growOps, GrowOp{Leaf: f.ref.N, Op: f.op, LeftVal: f.a, RightVal: f.b})
		}
		pairs := e.host.GrowBatch(sc.growOps)
		for i, f := range sc.grows {
			if rec != nil {
				rec = append(rec, replog.Op{
					Kind: replog.OpGrow, Node: f.ref.N.ID,
					A: f.op.A, B: f.op.B, C: f.op.C,
					Left: f.a, Right: f.b,
					LeftID: pairs[i][0].ID, RightID: pairs[i][1].ID,
				})
			}
			e.stats.done(kGrow)
			resolved++
			f.resolve(0, pairs[i], nil)
		}
	}
	if len(sc.collapses) > 0 {
		sc.colOps = sc.colOps[:0]
		for _, f := range sc.collapses {
			sc.colOps = append(sc.colOps, CollapseOp{Node: f.ref.N, NewValue: f.a})
		}
		e.host.CollapseBatch(sc.colOps)
		for _, f := range sc.collapses {
			if rec != nil {
				rec = append(rec, replog.Op{Kind: replog.OpCollapse, Node: f.ref.N.ID, Value: f.a})
			}
			e.stats.done(kCollapse)
			resolved++
			f.resolve(0, [2]*NodeT{}, nil)
		}
	}
	if len(sc.setLeaves) > 0 {
		sc.nodes = sc.nodes[:0]
		sc.vals = sc.vals[:0]
		for _, f := range sc.setLeaves {
			sc.nodes = append(sc.nodes, f.ref.N)
			sc.vals = append(sc.vals, f.a)
		}
		e.host.SetLeaves(sc.nodes, sc.vals)
		for _, f := range sc.setLeaves {
			if rec != nil {
				rec = append(rec, replog.Op{Kind: replog.OpSetLeaf, Node: f.ref.N.ID, Value: f.a})
			}
			e.stats.done(kSetLeaf)
			resolved++
			f.resolve(0, [2]*NodeT{}, nil)
		}
	}
	if len(sc.setOps) > 0 {
		sc.nodes = sc.nodes[:0]
		sc.opArgs = sc.opArgs[:0]
		for _, f := range sc.setOps {
			sc.nodes = append(sc.nodes, f.ref.N)
			sc.opArgs = append(sc.opArgs, f.op)
		}
		e.host.SetOps(sc.nodes, sc.opArgs)
		for _, f := range sc.setOps {
			if rec != nil {
				rec = append(rec, replog.Op{Kind: replog.OpSetOp, Node: f.ref.N.ID, A: f.op.A, B: f.op.B, C: f.op.C})
			}
			e.stats.done(kSetOp)
			resolved++
			f.resolve(0, [2]*NodeT{}, nil)
		}
	}
	// A mutating wave advances the applied sequence (whether or not a tap
	// is attached — the sequence is the tree state's log position) and, if
	// tapped, emits its sealed change record. This happens before the
	// wave's read batch and before the executor moves on, so a later
	// barrier (snapshots run as barriers) always observes a log position
	// consistent with the tree it reads.
	if mutating > 0 {
		seq := e.appliedSeq.Add(1)
		if rec != nil {
			w := replog.Wave{Seq: seq, Ops: rec, Root: e.host.Root()}
			w.Seal()
			(*tap)(w)
		}
	}

	if len(sc.values) > 0 {
		sc.nodes = sc.nodes[:0]
		for _, f := range sc.values {
			if f.kind == kValue {
				sc.nodes = append(sc.nodes, f.ref.N)
			}
		}
		var vals []int64
		if len(sc.nodes) > 0 {
			vals = e.host.Values(sc.nodes)
		}
		// Read futures carry the applied-wave sequence they observed: the
		// wave's own mutations already advanced it above, so the stamp names
		// exactly the tree version the values come from (Future.ValueSeq).
		seq := e.appliedSeq.Load()
		i := 0
		for _, f := range sc.values {
			f.seq = seq
			if f.kind == kValue {
				e.stats.done(kValue)
				resolved++
				f.resolve(vals[i], [2]*NodeT{}, nil)
				i++
			} else {
				e.stats.done(kRoot)
				root := e.host.Root()
				resolved++
				f.resolve(root, [2]*NodeT{}, nil)
			}
		}
	}
}

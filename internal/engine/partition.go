package engine

import (
	"fmt"
	"time"

	"dyntc/internal/obs"
	"dyntc/internal/pram"
	"dyntc/internal/replog"
)

// This file turns one flush — an arbitrary mix of concurrent requests — into
// the conflict-free batch kinds internal/core supports.
//
// A flush is partitioned into *waves*. A wave is a set of requests whose
// node footprints are pairwise disjoint, so each wave executes as at most
// one GrowBatch + one CollapseBatch + one SetLeaves + one SetOps + one
// Values call, in that fixed order; disjointness makes the order
// irrelevant to the results and keeps every core precondition (checked at
// planning time, against the exact tree state the wave will run on) valid
// through the wave.
//
// Footprints: Grow and SetLeaf write {leaf}; SetOp writes {node}; Collapse
// writes {node, node.Left, node.Right} (the children are deleted); Value
// reads {node}; Root reads nothing destructible. A request joins the
// current wave unless its footprint intersects the wave's footprint or the
// footprint of an already-deferred request — the second condition keeps
// same-node requests in submission order. Deferred requests form the next
// wave's input, so planning always terminates: the earliest pending
// request always joins (or fails validation).
//
// Barriers seal the flush: a barrier runs alone between waves.
//
// All partitioning state lives in the engine's executor-only scratch and
// is reused across flushes: the steady-state flush loop performs no
// per-flush slice, map or Future allocation.

// footprint is the set of live nodes a request touches, with reads and
// writes distinguished (reads may share a wave with reads).
type footprint struct {
	nodes [3]*NodeT
	n     int
	write bool
}

func (fp *footprint) add(n *NodeT) {
	fp.nodes[fp.n] = n
	fp.n++
}

// fpEntry is one (node, strongest access mode) pair of a footprintSet.
type fpEntry struct {
	n     *NodeT
	write bool
}

// fpSpillAt is the small-set size beyond which a footprintSet moves to a
// map. Typical waves touch a handful of nodes (a flush of mean size 2–30
// with ≤3 nodes per request), so the linear slice is the hot path; the map
// only exists for pathological flushes.
const fpSpillAt = 32

// footprintSet records nodes with the strongest access mode seen
// (write beats read). Small sets are a linear slice — no allocation, no
// hashing; large sets spill to a map that is retained and reused.
type footprintSet struct {
	entries []fpEntry
	m       map[*NodeT]bool
	spilled bool
}

// reset empties the set, keeping capacity for reuse.
func (s *footprintSet) reset() {
	s.entries = s.entries[:0]
	if s.spilled {
		clear(s.m)
		s.spilled = false
	}
}

func (s *footprintSet) spill() {
	if s.m == nil {
		s.m = make(map[*NodeT]bool, 4*fpSpillAt)
	}
	for _, e := range s.entries {
		s.m[e.n] = e.write
	}
	s.entries = s.entries[:0]
	s.spilled = true
}

// add records fp's nodes with its access mode (write wins over read).
func (s *footprintSet) add(fp footprint) {
	for i := 0; i < fp.n; i++ {
		n := fp.nodes[i]
		if s.spilled {
			if w, ok := s.m[n]; !ok || (fp.write && !w) {
				s.m[n] = fp.write
			}
			continue
		}
		found := false
		for j := range s.entries {
			if s.entries[j].n == n {
				if fp.write {
					s.entries[j].write = true
				}
				found = true
				break
			}
		}
		if !found {
			s.entries = append(s.entries, fpEntry{n, fp.write})
			if len(s.entries) > fpSpillAt {
				s.spill()
			}
		}
	}
}

// conflicts reports whether fp cannot coexist with the set: write/any or
// any/write overlap.
func (s *footprintSet) conflicts(fp footprint) bool {
	for i := 0; i < fp.n; i++ {
		n := fp.nodes[i]
		if s.spilled {
			if w, ok := s.m[n]; ok && (w || fp.write) {
				return true
			}
			continue
		}
		for j := range s.entries {
			if s.entries[j].n == n {
				if s.entries[j].write || fp.write {
					return true
				}
				break // entries are unique per node: no further match
			}
		}
	}
	return false
}

// scratch is the executor's reusable flush state. Only the executor
// goroutine touches it, so no locking; slices keep their capacity across
// flushes. Slices may retain stale *Future pointers past their length —
// harmless, those futures are pooled anyway.
type scratch struct {
	flush    []*Future // collect's buffer
	overflow []*Future // deferred requests, ping-ponged with flush

	wave   []*Future
	waveFP footprintSet
	defFP  footprintSet

	grows, collapses, setLeaves, setOps, values []*Future
	order                                       []*Future // wave in exact resolution order

	growOps []GrowOp
	colOps  []CollapseOp
	nodes   []*NodeT
	vals    []int64
	opArgs  []OpT

	// Per-wave execution state shared between the phases of one wave
	// (chain-serialized; the executor reads it again only after the wave's
	// task group has joined).
	resolved int         // prefix of order already resolved
	mutating int         // mutating requests in the wave
	tap      *WaveTap    // tap active for this wave (nil = none)
	rec      []replog.Op // change record under construction (escapes into the tap)

	// Per-flush observability accumulators (timing-enabled engines only):
	// per-stage nanoseconds and the flush's wave count, reset at flush
	// start, read by observeFlush after the last wave joins.
	stageNS [numStages]int64
	waveN   int

	// Per-flush heal accumulators (timing-enabled engines with a
	// heal-reporting host): trace records re-executed across the flush's
	// mutating waves, waves that fell back to re-simulation, and the
	// contraction's trace size after the last mutating wave.
	healRecords  int64
	healResims   int
	traceRecords int

	// Per-flush distributed-trace state (engines with Options.Spans):
	// spanActive marks a flush sampled into the span log — every
	// TraceSample-th flush, or any flush carrying an explicitly traced
	// request. spanTrace/spanParent are the adopted trace and ingest-span
	// parent; spanFlush is the flush span's own ID (parent of stage and
	// wave spans). flushT0 anchors span timestamps; stageStart holds each
	// stage's first-start offset from flushT0 (-1 = never ran).
	spanActive bool
	spanTrace  obs.SpanID
	spanParent obs.SpanID
	spanFlush  obs.SpanID
	flushT0    time.Time
	stageStart [numStages]int64
}

// resolve returns the live node a ref addresses, or an error. Liveness is
// checked against Tree.Nodes, where deleted nodes are nil-ed but keep
// their slot.
func (e *Engine) resolve(ref NodeRef) (*NodeT, error) {
	t := e.host.Tree()
	if ref.ByID {
		if ref.ID < 0 || ref.ID >= len(t.Nodes) || t.Nodes[ref.ID] == nil {
			return nil, fmt.Errorf("%w (id %d)", ErrDeadNode, ref.ID)
		}
		return t.Nodes[ref.ID], nil
	}
	n := ref.N
	if n == nil || n.ID < 0 || n.ID >= len(t.Nodes) || t.Nodes[n.ID] != n {
		return nil, ErrDeadNode
	}
	return n, nil
}

// planOne resolves and validates f against the current tree state and
// returns its footprint. An error means the request is invalid *now* and —
// because it is only called for requests whose nodes no pending request
// ahead of them touches — invalid at its execution point.
func (e *Engine) planOne(f *Future) (footprint, error) {
	var fp footprint
	switch f.kind {
	case kRoot:
		return fp, nil
	case kBarrier:
		return fp, nil
	}
	n, err := e.resolve(f.ref)
	if err != nil {
		return fp, err
	}
	switch f.kind {
	case kGrow, kSetLeaf:
		if !n.IsLeaf() {
			return fp, ErrNotLeaf
		}
		fp.write = true
		fp.add(n)
	case kCollapse:
		if n.IsLeaf() {
			return fp, ErrNotInternal
		}
		if !n.Left.IsLeaf() || !n.Right.IsLeaf() {
			return fp, ErrNotCollapsible
		}
		fp.write = true
		fp.add(n)
		fp.add(n.Left)
		fp.add(n.Right)
	case kSetOp:
		if n.IsLeaf() {
			return fp, ErrNotInternal
		}
		fp.write = true
		fp.add(n)
	case kValue:
		fp.add(n)
	}
	f.ref = NodeRef{N: n} // pin the resolved handle for execution
	return fp, nil
}

// executeFlush partitions flush into waves and executes them. A panic
// while a wave runs (a bug, not a validation miss) fails the whole flush
// and poisons the engine: the contraction's internal state is unknown.
func (e *Engine) executeFlush(flush []*Future) {
	if e.poisoned {
		e.stats.drop(len(flush))
		for _, f := range flush {
			f.resolve(0, [2]*NodeT{}, ErrPoisoned)
		}
		return
	}
	flushStart := time.Now()
	var coalesceNS int64
	if e.timing {
		// The flush's first request is its oldest: its submit→flush-start
		// span is the coalesce wait the batching window imposed.
		if at := flush[0].at; !at.IsZero() {
			coalesceNS = int64(flushStart.Sub(at))
		}
		e.sc.stageNS = [numStages]int64{}
		e.sc.waveN = 0
		e.sc.healRecords, e.sc.healResims, e.sc.traceRecords = 0, 0, 0
		e.flushSeq++
		e.beginFlushSpan(flush, flushStart)
	}
	defer func() {
		d := time.Since(flushStart)
		e.stats.flushDone(d)
		if e.timing {
			e.observeFlush(len(flush), coalesceNS, int64(d))
		}
	}()
	e.stats.flush(len(flush))

	// Deferred requests ping-pong between two reusable buffers: each round
	// reads `pending` from one and writes `deferred` into the other. bufA
	// is the incoming flush's backing (collect's buffer).
	sc := &e.sc
	bufA, bufB := flush, sc.overflow
	pending := flush
	intoB := true
	for len(pending) > 0 {
		var deferred []*Future
		if intoB {
			deferred = bufB[:0]
		} else {
			deferred = bufA[:0]
		}
		sc.wave = sc.wave[:0]
		sc.waveFP.reset()
		sc.defFP.reset()
		var (
			sealed   = false // a barrier in the wave: nothing may join
			deferAll = false // a deferred barrier: everything after defers
		)
		for _, f := range pending {
			if deferAll || sealed {
				deferred = append(deferred, f)
				continue
			}
			if f.kind == kBarrier {
				if len(sc.wave) == 0 {
					sc.wave = append(sc.wave, f)
					sealed = true
				} else {
					deferred = append(deferred, f)
					deferAll = true
				}
				continue
			}
			if order := e.footprintAll(f); sc.defFP.conflicts(order) {
				// A request ahead of f touches f's nodes: preserve
				// submission order without validating yet (the earlier
				// request may change f's validity).
				deferred = append(deferred, f)
				sc.defFP.add(order)
				continue
			}
			fp, err := e.planOne(f)
			if err != nil {
				e.stats.fail()
				f.resolve(0, [2]*NodeT{}, err)
				continue
			}
			if sc.waveFP.conflicts(fp) {
				deferred = append(deferred, f)
				sc.defFP.add(fp)
				continue
			}
			sc.wave = append(sc.wave, f)
			sc.waveFP.add(fp)
		}
		if len(sc.wave) > 0 {
			e.runWave(sc.wave)
		}
		if e.poisoned {
			// A wave panic mid-flush: the structure is in an unknown
			// state, so the remaining waves must not touch it.
			e.stats.drop(len(deferred))
			for _, f := range deferred {
				f.resolve(0, [2]*NodeT{}, ErrPoisoned)
			}
			return
		}
		if intoB {
			bufB = deferred
		} else {
			bufA = deferred
		}
		intoB = !intoB
		pending = deferred
	}
	sc.flush, sc.overflow = bufA, bufB
}

// footprintAll returns a conservative footprint for ordering against
// deferred requests: the nodes f names, all treated as writes, without
// validation. ByID refs resolve against the current tree (we are on the
// executor goroutine); an unresolvable ref has an empty footprint — it can
// never conflict, and fails validation when reached.
func (e *Engine) footprintAll(f *Future) footprint {
	fp := footprint{write: f.kind != kValue}
	if f.kind == kRoot || f.kind == kBarrier {
		return fp
	}
	n, err := e.resolve(f.ref)
	if err != nil {
		return footprint{}
	}
	fp.add(n)
	if f.kind == kCollapse && !n.IsLeaf() {
		fp.add(n.Left)
		fp.add(n.Right)
	}
	return fp
}

// runWave executes one conflict-free wave as the core batch calls of
// §1.4, each scheduled as one entry of the wave's task group: on an
// engine without a scheduler pool the phases run inline on the executor;
// with one (Options.Pool) they are submitted to the engine's serial lane,
// so one tree's sub-batches keep their order (the host is single-writer
// and metering must stay deterministic) while the grow/set/value phases
// of different trees' waves interleave freely across the shared workers.
//
// Futures resolve in a fixed order (grows, collapses, set-leaves,
// set-ops, values); the panic path uses that order to fail exactly the
// futures not yet resolved — a resolved Future may already have been
// recycled by its caller and must never be touched again. A phase panic
// on the lane is carried back to the executor through the task group's
// join and handled identically to an inline panic.
func (e *Engine) runWave(wave []*Future) {
	sc := &e.sc
	sc.resolved = 0
	// Point order at this wave before anything can panic: until the
	// phase-ordered rebuild below, sc.order still holds the previous
	// wave's (resolved, possibly recycled) futures, and a panic in that
	// window — the engine.wave fault check fires there — would fail the
	// wrong futures and strand this wave's callers forever.
	sc.order = append(sc.order[:0], wave...)
	defer func() {
		r := recover()
		if r == nil && e.wavePanicked {
			r, e.wavePanicked, e.wavePanicVal = e.wavePanicVal, false, nil
		}
		if r != nil {
			e.poisoned = true
			err := fmt.Errorf("%w: %v", ErrPoisoned, r)
			for _, f := range sc.order[sc.resolved:] {
				f.resolve(0, [2]*NodeT{}, err)
			}
		}
	}()
	e.stats.wave()
	sc.waveN++

	// Fault-injection crash point for the flush path: an injected error
	// rides the wave's own panic recovery into a poisoned engine — every
	// in-flight future fails, exactly like a genuine executor crash.
	if r := e.opts.Faults.Check("engine.wave"); r != nil && r.Err != nil {
		panic(r.Err)
	}

	if wave[0].kind == kBarrier {
		// Barriers execute arbitrary user code (snapshots park on I/O,
		// tests park on channels): never occupy a shared worker with one —
		// run it on the executor, like every wave before the lane existed.
		sc.order = append(sc.order[:0], wave[0])
		if e.timing {
			t0 := time.Now()
			if sc.spanActive && sc.stageStart[stageBarrierIdx] < 0 {
				sc.stageStart[stageBarrierIdx] = int64(t0.Sub(sc.flushT0))
			}
			e.phaseBarrier()
			sc.stageNS[stageBarrierIdx] += int64(time.Since(t0))
		} else {
			e.phaseBarrier()
		}
		return
	}
	// Tiny waves are not worth a lane hop: the task-group discipline pays
	// off when a wave's sub-batches carry real parallel steps, not for a
	// handful of requests resolved in microseconds.
	e.laneWave = e.chain != nil && len(wave) >= laneMinWave

	sc.grows = sc.grows[:0]
	sc.collapses = sc.collapses[:0]
	sc.setLeaves = sc.setLeaves[:0]
	sc.setOps = sc.setOps[:0]
	sc.values = sc.values[:0]
	for _, f := range wave {
		switch f.kind {
		case kGrow:
			sc.grows = append(sc.grows, f)
		case kCollapse:
			sc.collapses = append(sc.collapses, f)
		case kSetLeaf:
			sc.setLeaves = append(sc.setLeaves, f)
		case kSetOp:
			sc.setOps = append(sc.setOps, f)
		case kValue, kRoot:
			sc.values = append(sc.values, f)
		}
	}
	sc.order = sc.order[:0]
	sc.order = append(sc.order, sc.grows...)
	sc.order = append(sc.order, sc.collapses...)
	sc.order = append(sc.order, sc.setLeaves...)
	sc.order = append(sc.order, sc.setOps...)
	sc.order = append(sc.order, sc.values...)

	// When a wave tap is attached, the phases build the wave's change
	// record. Op data must be captured before the corresponding resolve: a
	// resolved Future may already be recycled (and reused) by its caller.
	// The record slice is freshly allocated per wave — it escapes into the
	// tap, which may retain it (log rings do).
	sc.tap = e.tap.Load()
	sc.mutating = len(sc.grows) + len(sc.collapses) + len(sc.setLeaves) + len(sc.setOps)
	sc.rec = nil
	if sc.tap != nil && sc.mutating > 0 {
		sc.rec = make([]replog.Op, 0, sc.mutating)
	}

	if len(sc.grows) > 0 {
		e.phase(phaseGrowsIdx)
	}
	if len(sc.collapses) > 0 {
		e.phase(phaseCollapsesIdx)
	}
	if len(sc.setLeaves) > 0 {
		e.phase(phaseSetLeavesIdx)
	}
	if len(sc.setOps) > 0 {
		e.phase(phaseSetOpsIdx)
	}
	if sc.mutating > 0 {
		e.phase(phaseSealWaveIdx)
	}
	if len(sc.values) > 0 {
		e.phase(phaseValuesIdx)
	}
	e.joinWave()
}

// laneMinWave is the wave size below which phases run inline even with a
// pool configured: the lane hop costs a couple of goroutine switches,
// worthwhile only when the wave's sub-batches amortize it.
const laneMinWave = 16

// Wave phase indices into Engine.phaseFns/laneFns (barrier phases are
// dispatched directly, not through the table).
const (
	phaseGrowsIdx = iota
	phaseCollapsesIdx
	phaseSetLeavesIdx
	phaseSetOpsIdx
	phaseSealWaveIdx
	phaseValuesIdx
	numPhases
)

// phase runs one wave phase: inline for small waves or without a pool,
// or as the next entry of the engine's lane (the lane form skips its
// body after a panicked phase, so a poisoned wave never executes further
// host calls). The funcs come from the prebuilt tables — scheduling a
// wave allocates nothing.
func (e *Engine) phase(idx int) {
	if !e.laneWave {
		e.phaseFns[idx]()
		return
	}
	e.waveWG.Add(1)
	e.chain.Go(e.laneFns[idx])
}

// joinWave waits for the wave's task group; afterwards the executor owns
// the scratch state again.
func (e *Engine) joinWave() {
	if e.laneWave {
		e.waveWG.Wait()
	}
	if e.wavePanicked {
		v := e.wavePanicVal
		e.wavePanicked, e.wavePanicVal = false, nil
		panic(v)
	}
}

// setKind labels the host machine's next steps with the sub-batch kind
// (per-kind adaptive grain); a no-op for hosts without the capability.
func (e *Engine) setKind(k pram.StepKind) {
	if e.kinder != nil {
		e.kinder.SetStepKind(k)
	}
}

func (e *Engine) phaseBarrier() {
	f := e.sc.order[0]
	e.setKind(pram.KindDefault)
	f.fn(e.host)
	e.stats.done(kBarrier)
	e.sc.resolved++
	f.seq = e.appliedSeq.Load()
	f.resolve(0, [2]*NodeT{}, nil)
}

func (e *Engine) phaseGrows() {
	sc := &e.sc
	e.setKind(pram.KindGrow)
	sc.growOps = sc.growOps[:0]
	for _, f := range sc.grows {
		sc.growOps = append(sc.growOps, GrowOp{Leaf: f.ref.N, Op: f.op, LeftVal: f.a, RightVal: f.b})
	}
	pairs := e.host.GrowBatch(sc.growOps)
	e.noteHeal(len(sc.grows))
	for i, f := range sc.grows {
		if sc.rec != nil {
			sc.rec = append(sc.rec, replog.Op{
				Kind: replog.OpGrow, Node: f.ref.N.ID,
				A: f.op.A, B: f.op.B, C: f.op.C,
				Left: f.a, Right: f.b,
				LeftID: pairs[i][0].ID, RightID: pairs[i][1].ID,
			})
		}
		e.stats.done(kGrow)
		sc.resolved++
		f.resolve(0, pairs[i], nil)
	}
}

func (e *Engine) phaseCollapses() {
	sc := &e.sc
	e.setKind(pram.KindCollapse)
	sc.colOps = sc.colOps[:0]
	for _, f := range sc.collapses {
		sc.colOps = append(sc.colOps, CollapseOp{Node: f.ref.N, NewValue: f.a})
	}
	e.host.CollapseBatch(sc.colOps)
	e.noteHeal(len(sc.collapses))
	for _, f := range sc.collapses {
		if sc.rec != nil {
			sc.rec = append(sc.rec, replog.Op{Kind: replog.OpCollapse, Node: f.ref.N.ID, Value: f.a})
		}
		e.stats.done(kCollapse)
		sc.resolved++
		f.resolve(0, [2]*NodeT{}, nil)
	}
}

func (e *Engine) phaseSetLeaves() {
	sc := &e.sc
	e.setKind(pram.KindSet)
	sc.nodes = sc.nodes[:0]
	sc.vals = sc.vals[:0]
	for _, f := range sc.setLeaves {
		sc.nodes = append(sc.nodes, f.ref.N)
		sc.vals = append(sc.vals, f.a)
	}
	e.host.SetLeaves(sc.nodes, sc.vals)
	e.noteHeal(len(sc.setLeaves))
	for _, f := range sc.setLeaves {
		if sc.rec != nil {
			sc.rec = append(sc.rec, replog.Op{Kind: replog.OpSetLeaf, Node: f.ref.N.ID, Value: f.a})
		}
		e.stats.done(kSetLeaf)
		sc.resolved++
		f.resolve(0, [2]*NodeT{}, nil)
	}
}

func (e *Engine) phaseSetOps() {
	sc := &e.sc
	e.setKind(pram.KindSet)
	sc.nodes = sc.nodes[:0]
	sc.opArgs = sc.opArgs[:0]
	for _, f := range sc.setOps {
		sc.nodes = append(sc.nodes, f.ref.N)
		sc.opArgs = append(sc.opArgs, f.op)
	}
	e.host.SetOps(sc.nodes, sc.opArgs)
	e.noteHeal(len(sc.setOps))
	for _, f := range sc.setOps {
		if sc.rec != nil {
			sc.rec = append(sc.rec, replog.Op{Kind: replog.OpSetOp, Node: f.ref.N.ID, A: f.op.A, B: f.op.B, C: f.op.C})
		}
		e.stats.done(kSetOp)
		sc.resolved++
		f.resolve(0, [2]*NodeT{}, nil)
	}
}

// phaseSealWave advances the applied sequence for a mutating wave
// (whether or not a tap is attached — the sequence is the tree state's
// log position) and, if tapped, emits the sealed change record. It runs
// before the wave's read phase and before the executor moves on, so a
// later barrier (snapshots run as barriers) always observes a log
// position consistent with the tree it reads.
func (e *Engine) phaseSealWave() {
	seq := e.appliedSeq.Add(1)
	if e.sc.rec != nil {
		epoch := e.epoch.Load()
		w := replog.Wave{Seq: seq, Epoch: epoch, Ops: e.sc.rec, Root: e.host.Root()}
		if e.sc.spanActive {
			// Stamp the record with its trace and seal time (observability
			// metadata, outside the checksum) and drop the wave's anchor
			// span. Its ID is the deterministic WaveSpanID(epoch, seq), so
			// the WAL append and the follower's fetch/apply spans — emitted
			// in another goroutine or another process — parent onto it
			// without any span ID crossing the wire.
			w.TraceID = uint64(e.sc.spanTrace)
			w.SealedAt = time.Now().UnixNano()
			if sl := e.opts.Spans; sl != nil {
				sl.Add(obs.Span{
					Trace:  e.sc.spanTrace,
					Span:   obs.WaveSpanID(epoch, seq),
					Parent: e.sc.spanFlush,
					Name:   "wave",
					Tree:   e.traceID.Load(),
					Seq:    seq,
					Epoch:  epoch,
					Start:  w.SealedAt,
					Reqs:   e.sc.mutating,
				})
			}
		}
		w.Seal()
		(*e.sc.tap)(w)
	}
}

func (e *Engine) phaseValues() {
	sc := &e.sc
	e.setKind(pram.KindValue)
	sc.nodes = sc.nodes[:0]
	for _, f := range sc.values {
		if f.kind == kValue {
			sc.nodes = append(sc.nodes, f.ref.N)
		}
	}
	var vals []int64
	if len(sc.nodes) > 0 {
		vals = e.host.Values(sc.nodes)
	}
	// Read futures carry the applied-wave sequence they observed: the
	// wave's own mutations already advanced it above, so the stamp names
	// exactly the tree version the values come from (Future.ValueSeq).
	seq := e.appliedSeq.Load()
	i := 0
	for _, f := range sc.values {
		f.seq = seq
		if f.kind == kValue {
			e.stats.done(kValue)
			sc.resolved++
			f.resolve(vals[i], [2]*NodeT{}, nil)
			i++
		} else {
			e.stats.done(kRoot)
			root := e.host.Root()
			sc.resolved++
			f.resolve(root, [2]*NodeT{}, nil)
		}
	}
}

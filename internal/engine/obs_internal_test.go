package engine

import (
	"testing"
	"time"
)

// stubHost is the minimal Host for tests that never route requests.
type stubHost struct{}

func (stubHost) Tree() *TreeT                       { return &TreeT{} }
func (stubHost) GrowBatch(ops []GrowOp) [][2]*NodeT { return make([][2]*NodeT, len(ops)) }
func (stubHost) CollapseBatch([]CollapseOp)         {}
func (stubHost) SetLeaves([]*NodeT, []int64)        {}
func (stubHost) SetOps([]*NodeT, []OpT)             {}
func (stubHost) Values(ns []*NodeT) []int64         { return make([]int64, len(ns)) }
func (stubHost) Root() int64                        { return 0 }

// TestForestPercentilesMergeWindows proves TotalStats computes forest
// percentiles over the union of per-engine latency windows: a forest
// where one tree is 100x slower than the other must report the combined
// median (the fast tree's), not the slow tree's median as Stats.Add's
// worst-engine fallback would.
func TestForestPercentilesMergeWindows(t *testing.T) {
	f := NewForest(Options{})
	defer f.Close()
	_, fast := f.Add(stubHost{})
	_, slow := f.Add(stubHost{})
	for i := 0; i < 100; i++ {
		fast.stats.flushDone(1 * time.Millisecond)
		slow.stats.flushDone(100 * time.Millisecond)
	}

	// Per-engine snapshots see their own windows.
	if p50 := fast.Stats().FlushP50US; p50 != 1000 {
		t.Fatalf("fast engine p50 = %v µs, want 1000", p50)
	}
	if p50 := slow.Stats().FlushP50US; p50 != 100000 {
		t.Fatalf("slow engine p50 = %v µs, want 100000", p50)
	}

	total := f.TotalStats()
	// 200 merged samples: 100 at 1ms then 100 at 100ms. The median index
	// int(0.5*199) = 99 lands on the last 1ms sample; the old max-merge
	// reported 100000µs here — the bug this guards against.
	if total.FlushP50US != 1000 {
		t.Fatalf("forest p50 = %v µs, want 1000 (merged median, not worst tree)", total.FlushP50US)
	}
	if total.FlushP99US != 100000 {
		t.Fatalf("forest p99 = %v µs, want 100000", total.FlushP99US)
	}

	// Plain snapshot Add (no window access) keeps the documented
	// worst-engine upper bound.
	var sum Stats
	sum.Add(fast.Stats())
	sum.Add(slow.Stats())
	if sum.FlushP50US != 100000 {
		t.Fatalf("Stats.Add p50 = %v µs, want worst-engine 100000", sum.FlushP50US)
	}
}

// TestPercentilesUSEmpty checks the zero-sample path.
func TestPercentilesUSEmpty(t *testing.T) {
	if p50, p99 := percentilesUS(nil); p50 != 0 || p99 != 0 {
		t.Fatalf("empty percentiles = %v, %v; want 0, 0", p50, p99)
	}
}

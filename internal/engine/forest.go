package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Forest shards independent expression trees across engines: each tree gets
// its own Engine (and executor goroutine), so traffic against unrelated
// trees proceeds fully in parallel while every single tree keeps its
// single-writer guarantee. The id→engine index is striped to keep the hot
// Get path uncontended under many concurrent clients.
type Forest struct {
	opts Options

	next   sync.Mutex // guards nextID
	nextID uint64

	shards [forestShards]forestShard
}

const forestShards = 16

type forestShard struct {
	mu      sync.RWMutex
	engines map[uint64]*Engine
}

// NewForest creates an empty forest; opts configures every engine it adds.
func NewForest(opts Options) *Forest {
	f := &Forest{opts: opts, nextID: 1}
	for i := range f.shards {
		f.shards[i].engines = make(map[uint64]*Engine)
	}
	return f
}

func (f *Forest) shard(id uint64) *forestShard {
	return &f.shards[id%forestShards]
}

// Add starts an engine over host and returns its tree id. A freshly
// allocated id can collide with a concurrent AddAt that claimed it first
// (AddAt bumps the allocator, but an Add may already hold a lower id);
// occupancy is re-checked under the shard lock and a taken id is simply
// skipped.
func (f *Forest) Add(host Host) (uint64, *Engine) {
	e := New(host, f.opts)
	for {
		f.next.Lock()
		id := f.nextID
		f.nextID++
		f.next.Unlock()

		s := f.shard(id)
		s.mu.Lock()
		if _, taken := s.engines[id]; !taken {
			s.engines[id] = e
			s.mu.Unlock()
			e.SetTraceID(id)
			return id, e
		}
		s.mu.Unlock()
	}
}

// AddAt starts an engine over host under a caller-chosen tree id — the
// restore path: a follower (or a PUT-snapshot) must register a tree under
// the leader's id, not the next free one. It fails when the id is taken,
// and bumps the id allocator past id so later Adds never collide.
func (f *Forest) AddAt(id uint64, host Host) (*Engine, error) {
	f.next.Lock()
	if id >= f.nextID {
		f.nextID = id + 1
	}
	f.next.Unlock()

	s := f.shard(id)
	s.mu.Lock()
	if _, ok := s.engines[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (tree %d)", ErrTreeExists, id)
	}
	e := New(host, f.opts)
	e.SetTraceID(id)
	s.engines[id] = e
	s.mu.Unlock()
	return e, nil
}

// Get returns the engine serving tree id.
func (f *Forest) Get(id uint64) (*Engine, bool) {
	s := f.shard(id)
	s.mu.RLock()
	e, ok := s.engines[id]
	s.mu.RUnlock()
	return e, ok
}

// Drop closes and removes tree id, reporting whether it existed. Pending
// requests drain before Drop returns.
func (f *Forest) Drop(id uint64) bool {
	s := f.shard(id)
	s.mu.Lock()
	e, ok := s.engines[id]
	delete(s.engines, id)
	s.mu.Unlock()
	if ok {
		e.Close()
	}
	return ok
}

// Len returns the number of live trees.
func (f *Forest) Len() int {
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		n += len(s.engines)
		s.mu.RUnlock()
	}
	return n
}

// IDs returns a sorted snapshot of the live tree ids — the iteration seam
// cross-tree queries plan against (trees added or dropped afterwards are
// the caller's race to handle per tree).
func (f *Forest) IDs() []uint64 {
	ids := make([]uint64, 0, 64)
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		for id := range s.engines {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Each calls fn for every live tree. fn must not call back into the forest.
func (f *Forest) Each(fn func(id uint64, e *Engine)) {
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.RLock()
		for id, e := range s.engines {
			fn(id, e)
		}
		s.mu.RUnlock()
	}
}

// TotalStats aggregates the stats of every live engine. Flush latency
// percentiles are computed over the union of the engines' retained
// latency windows — the combined distribution — not the max of per-tree
// percentiles Stats.Add alone would report (which overstates the median
// of a large forest by its single worst tree).
func (f *Forest) TotalStats() Stats {
	var total Stats
	var lat []int64
	f.Each(func(_ uint64, e *Engine) {
		total.Add(e.Stats())
		lat = e.stats.window(lat)
	})
	total.FlushP50US, total.FlushP99US = percentilesUS(lat)
	return total
}

// Close drains and closes every engine and empties the forest.
func (f *Forest) Close() {
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for id, e := range s.engines {
			e.Close()
			delete(s.engines, id)
		}
		s.mu.Unlock()
	}
}

package replog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dyntc/internal/faults"
	"dyntc/internal/obs"
)

// Log errors.
var (
	// ErrTruncated reports a Since position older than the ring retains;
	// the caller must re-bootstrap from a snapshot.
	ErrTruncated = errors.New("replog: log truncated before requested sequence")
	// ErrGap reports an append whose sequence number is not the successor
	// of the last appended wave.
	ErrGap = errors.New("replog: non-contiguous wave sequence")
	// ErrCorrupt reports a wave whose checksum does not match its content.
	ErrCorrupt = errors.New("replog: wave checksum mismatch")
	// ErrStaleEpoch reports a wave carrying an epoch lower than one
	// already accepted — a late write from a demoted leader, rejected by
	// the fence.
	ErrStaleEpoch = errors.New("replog: wave epoch below current epoch")
)

// Log is the wave change-log: a bounded in-memory ring of the most recent
// waves, optionally mirrored to an append-only JSONL file. Appends come
// from the engine executor (via its wave tap); reads come from replication
// handlers — all methods are safe for concurrent use.
//
// The ring bounds memory: once it wraps, Since calls older than the
// retained window return ErrTruncated and the follower must re-bootstrap
// from a snapshot (the usual log-compaction contract). The file, when
// configured, retains everything appended during the process lifetime and
// is written through a buffered writer — Sync forces it down.
type Log struct {
	mu sync.Mutex

	ring  []Wave
	start int // ring index of the oldest retained wave
	n     int // retained wave count

	base  uint64 // Seq of the oldest retained wave (0 = empty)
	last  uint64 // Seq of the newest appended wave (0 = none yet)
	epoch uint64 // highest epoch accepted so far (0 = none yet)

	f  *os.File
	bw *bufio.Writer
	// enc encodes into ebuf, never straight into bw: each record is
	// staged as one byte slice so the write to the mirror goes through a
	// single seam — which is where fault injection tears it.
	enc  *json.Encoder
	ebuf bytes.Buffer

	// faults is the optional fault-injection schedule (SetFaults); sites
	// "wal.append" (per-record mirror write, supports torn writes) and
	// "wal.sync" (flush/fsync).
	faults *faults.Injector

	// compacting guards the unlocked phase of Compact: a second Compact
	// arriving while one is rewriting the file is a no-op.
	compacting bool

	appendErr error // first file-append error, surfaced on later calls

	// m is the optional metrics bundle (SetMetrics); swappable at runtime
	// so servers can attach instruments to already-serving logs.
	m atomic.Pointer[Metrics]

	// ev is the optional lifecycle event journal (SetEvents): compactions
	// are rare, operator-relevant transitions, so the log journals them
	// itself rather than leaving every caller to.
	ev atomic.Pointer[obs.Journal]
}

// SetMetrics attaches (or, with nil, detaches) the metrics bundle.
func (l *Log) SetMetrics(m *Metrics) { l.m.Store(m) }

// SetEvents attaches (or, with nil, detaches) the lifecycle event
// journal compactions are recorded into.
func (l *Log) SetEvents(j *obs.Journal) { l.ev.Store(j) }

// SetFaults attaches (or, with nil, detaches) a fault-injection
// schedule to the WAL I/O path.
func (l *Log) SetFaults(in *faults.Injector) {
	l.mu.Lock()
	l.faults = in
	l.mu.Unlock()
}

// DefaultLogCapacity is the ring size used when NewLog gets capacity <= 0.
const DefaultLogCapacity = 4096

// NewLog creates a wave log retaining up to capacity waves in memory
// (DefaultLogCapacity if <= 0). A non-empty path additionally opens an
// append-only JSONL file that mirrors every append. A pre-existing
// non-empty file at path is rotated aside (path.<unix-nanos>.old) first:
// this Log's wave stream starts at its own base sequence, and appending
// it after an older process's stream would leave a non-contiguous,
// unreplayable file. The rotated file remains replayable with ReadWAL
// against the snapshot that anchors it; automatic startup recovery
// (replay-into-engine) is a roadmap follow-on.
func NewLog(capacity int, path string) (*Log, error) {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	l := &Log{ring: make([]Wave, capacity)}
	if path != "" {
		// A crash in compaction's rename window can leave a stale
		// path.compact temp file behind. It is never valid to adopt: the
		// rename not having happened means path itself is still the
		// current, fully-contiguous file. Drop the leftover.
		os.Remove(path + ".compact")
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			rotated := fmt.Sprintf("%s.%d.old", path, time.Now().UnixNano())
			if err := os.Rename(path, rotated); err != nil {
				return nil, fmt.Errorf("replog: rotate stale wal: %w", err)
			}
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("replog: open wal: %w", err)
		}
		l.f = f
		l.bw = bufio.NewWriter(f)
		l.enc = json.NewEncoder(&l.ebuf)
	}
	return l, nil
}

// Append adds one sealed wave. The first append fixes the log's base
// sequence (a log attached to a restored tree starts mid-stream); every
// later append must carry the successor sequence number.
//
// The in-memory ring is authoritative: a failure of the file mirror is
// reported (once here, persistently via Err/Sync/Close) and disables
// further file writes, but the ring keeps advancing — a full disk
// degrades durability, it must not silently freeze replication while the
// leader keeps acknowledging writes.
func (l *Log) Append(w Wave) error {
	if m := l.m.Load(); m != nil {
		t0 := time.Now()
		defer func() {
			m.Appends.Inc()
			m.AppendSeconds.Observe(int64(time.Since(t0)))
		}()
	}
	if !w.Verify() {
		return ErrCorrupt
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last != 0 && w.Seq != l.last+1 {
		return fmt.Errorf("%w: have %d, appending %d", ErrGap, l.last, w.Seq)
	}
	if ep := w.EpochOrDefault(); ep < l.epoch {
		return fmt.Errorf("%w: log at epoch %d, wave %d carries epoch %d",
			ErrStaleEpoch, l.epoch, w.Seq, ep)
	}
	// Observability: records sealed by a timed engine carry SealedAt;
	// stamp the append time next to it (ring and file mirror both see it,
	// so followers can attribute fetch lag), attribute the seal→append
	// stage, and emit a wal.append span for traced waves. Untimed records
	// (SealedAt == 0) skip all of this and stay byte-identical to
	// pre-tracing output.
	if w.SealedAt != 0 {
		w.AppendedAt = time.Now().UnixNano()
		if m := l.m.Load(); m != nil {
			lag := w.AppendedAt - w.SealedAt
			if lag < 0 {
				lag = 0
			}
			m.SealedAppended.Observe(lag)
			if m.Spans != nil && w.TraceID != 0 {
				m.Spans.Add(obs.Span{
					Trace:  obs.SpanID(w.TraceID),
					Span:   obs.NewSpanID(),
					Parent: obs.WaveSpanID(w.EpochOrDefault(), w.Seq),
					Name:   "wal.append",
					Seq:    w.Seq,
					Epoch:  w.EpochOrDefault(),
					Start:  w.SealedAt,
					Dur:    lag,
				})
			}
		}
	}
	if l.n == len(l.ring) {
		// Evict the oldest retained wave.
		l.start = (l.start + 1) % len(l.ring)
		l.base++
		l.n--
	}
	l.ring[(l.start+l.n)%len(l.ring)] = w
	l.n++
	if l.base == 0 || l.n == 1 {
		l.base = w.Seq
	}
	l.last = w.Seq
	l.epoch = w.EpochOrDefault()
	if l.bw != nil {
		l.ebuf.Reset()
		if err := l.enc.Encode(&w); err != nil {
			l.appendErr = fmt.Errorf("replog: wal append (mirror disabled at seq %d): %w", w.Seq, err)
			l.enc, l.bw = nil, nil // stop mirroring; ring stays live
			return l.appendErr
		}
		rec := l.ebuf.Bytes()
		var err error
		if fi := l.faults; fi != nil {
			_, err = fi.Write("wal.append", l.bw, rec)
		} else {
			_, err = l.bw.Write(rec)
		}
		if err != nil {
			// A failed or torn write leaves the mirror mid-record. Push
			// whatever landed down to the file — the on-disk tail then
			// holds exactly the partial record a crash would have left,
			// which is what RecoverWAL is for — and disable the mirror.
			l.bw.Flush()
			l.f.Sync()
			l.appendErr = fmt.Errorf("replog: wal append (mirror disabled at seq %d): %w", w.Seq, err)
			l.enc, l.bw = nil, nil
			return l.appendErr
		}
		// Hand the record to the OS now (no fsync): a killed process
		// loses at most the record the kernel was mid-write on — the
		// torn tail RecoverWAL truncates — instead of the whole
		// buffered tail. Waves are already coalesced batches, so this
		// is one write syscall per wave, not per operation.
		if err := l.bw.Flush(); err != nil {
			l.appendErr = fmt.Errorf("replog: wal append (mirror disabled at seq %d): %w", w.Seq, err)
			l.enc, l.bw = nil, nil
			return l.appendErr
		}
	}
	return nil
}

// Compact drops every retained wave with Seq <= seq and, when a file
// mirror is attached, rewrites the file to exactly the retained tail —
// the log-compaction contract: the caller persists a snapshot at seq
// first, and snapshot + compacted log replaces genesis + full log. After
// Compact, Since calls at or before seq return ErrTruncated and the
// caller (a follower) re-bootstraps from the snapshot — the existing 410
// path. Appends continue seamlessly from the last appended sequence.
//
// The ring trim is immediate; the file rewrite happens off the log lock
// (Append runs inline on the engine executor and must not stall behind a
// re-encode + fsync of the whole tail), with a brief locked window at the
// end to merge waves appended during the rewrite and swap the mirror. A
// Compact that finds another still running is a no-op.
func (l *Log) Compact(seq uint64) error {
	l.mu.Lock()
	if l.compacting {
		l.mu.Unlock()
		return nil
	}
	if m := l.m.Load(); m != nil {
		m.Compactions.Inc()
	}
	if seq > l.last {
		seq = l.last
	}
	for l.n > 0 && l.ring[l.start].Seq <= seq {
		l.ring[l.start] = Wave{} // release op slices to the GC
		l.start = (l.start + 1) % len(l.ring)
		l.n--
	}
	if l.n > 0 {
		l.base = l.ring[l.start].Seq
	} else {
		l.base = 0
	}
	if j := l.ev.Load(); j != nil {
		j.Emit(obs.EvWALCompact, "change log compacted behind a snapshot",
			map[string]any{"through": seq, "retained": l.n, "base": l.base})
	}
	if l.f == nil || l.appendErr != nil {
		err := l.appendErr
		l.mu.Unlock()
		return err
	}
	// Copy the retained tail so the bulk of the file work runs unlocked.
	tail := make([]Wave, 0, l.n)
	for i := 0; i < l.n; i++ {
		tail = append(tail, l.ring[(l.start+i)%len(l.ring)])
	}
	path := l.f.Name()
	l.compacting = true
	l.mu.Unlock()

	err := l.rewrite(path, tail, seq)

	l.mu.Lock()
	l.compacting = false
	l.mu.Unlock()
	return err
}

// rewrite replaces the WAL file with tail plus whatever was appended
// while tail was being written, atomically (write temp unlocked, then a
// short locked merge + rename + mirror swap). A failure before the
// rename leaves the old, uncompacted file fully valid.
func (l *Log) rewrite(path string, tail []Wave, trimmed uint64) error {
	tmp := path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("replog: compact: %w", err)
	}
	abort := func(err error) error {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	tbw := bufio.NewWriter(tf)
	enc := json.NewEncoder(tbw)
	for i := range tail {
		if err := enc.Encode(&tail[i]); err != nil {
			return abort(fmt.Errorf("replog: compact: %w", err))
		}
	}
	// Flush and fsync the bulk of the tail while still unlocked: the
	// locked window below then only syncs the few delta waves appended
	// during this write, not the whole file.
	if err := tbw.Flush(); err != nil {
		return abort(fmt.Errorf("replog: compact: %w", err))
	}
	if err := tf.Sync(); err != nil {
		return abort(fmt.Errorf("replog: compact: %w", err))
	}
	lastCopied := trimmed
	if n := len(tail); n > 0 {
		lastCopied = tail[n-1].Seq
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.appendErr != nil {
		return abort(l.appendErr)
	}
	// Waves appended during the unlocked write are still in the ring —
	// unless it wrapped right past them, in which case the temp file
	// would have a gap: abort, the old file is still contiguous.
	if l.n > 0 && l.ring[l.start].Seq > lastCopied+1 {
		return abort(fmt.Errorf("replog: compact aborted: ring advanced past the copied tail"))
	}
	for i := 0; i < l.n; i++ {
		w := &l.ring[(l.start+i)%len(l.ring)]
		if w.Seq <= lastCopied {
			continue
		}
		if err := enc.Encode(w); err != nil {
			return abort(fmt.Errorf("replog: compact: %w", err))
		}
	}
	if err := tbw.Flush(); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replog: compact: %w", err)
	}
	// The rename is done: path now names the compacted file, and the old
	// inode must not receive further appends. Swap the mirror; from here
	// a failure disables it (sticky appendErr), never loses the swap.
	old := l.f
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.appendErr = fmt.Errorf("replog: compact reopen (mirror disabled): %w", err)
		l.f, l.bw, l.enc = nil, nil, nil
		old.Close()
		return l.appendErr
	}
	old.Close()
	l.f = f
	l.bw = bufio.NewWriter(f)
	l.enc = json.NewEncoder(&l.ebuf)
	// Make the rename itself durable: without a directory fsync, a crash
	// could surface the old (pre-compaction) file again — or, ordered
	// against the caller's snapshot rename, the trimmed WAL without its
	// anchoring snapshot.
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, making renames within it durable. Shared
// with callers that pair a snapshot rename with a log Compact.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("replog: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("replog: sync dir: %w", err)
	}
	return nil
}

// Err returns the sticky file-mirror error, if any: non-nil means the WAL
// file stopped at some sequence while the in-memory ring kept going.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendErr
}

// Since returns (a copy of) every retained wave with Seq > seq, in order.
// It returns ErrTruncated when the ring no longer retains wave seq+1 —
// the caller is too far behind and must re-bootstrap from a snapshot.
func (l *Log) Since(seq uint64) ([]Wave, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		if l.last != 0 && seq < l.last {
			return nil, ErrTruncated
		}
		return nil, nil
	}
	if seq >= l.last {
		return nil, nil
	}
	if seq+1 < l.base {
		return nil, ErrTruncated
	}
	skip := int(seq + 1 - l.base)
	out := make([]Wave, 0, l.n-skip)
	for i := skip; i < l.n; i++ {
		out = append(out, l.ring[(l.start+i)%len(l.ring)])
	}
	return out, nil
}

// LastSeq returns the newest appended sequence number (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// LastEpoch returns the highest epoch accepted so far (0 if none).
func (l *Log) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// BaseSeq returns the oldest retained sequence number (0 if empty).
func (l *Log) BaseSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0
	}
	return l.base
}

// Len returns the number of retained waves.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Sync flushes the buffered file mirror to the OS (no-op without a file).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.appendErr != nil {
		return l.appendErr
	}
	if l.bw == nil {
		return nil
	}
	if fi := l.faults; fi != nil {
		if r := fi.Check("wal.sync"); r != nil && r.Err != nil {
			l.appendErr = fmt.Errorf("replog: wal sync (mirror disabled): %w", r.Err)
			l.enc, l.bw = nil, nil
			return l.appendErr
		}
	}
	if err := l.bw.Flush(); err != nil {
		l.appendErr = err
		return err
	}
	return l.f.Sync()
}

// Close flushes and closes the file mirror (the ring stays readable).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.bw, l.enc = nil, nil, nil
	return err
}

// ReadWAL replays an append-only wave file written by a Log: every wave
// in order, checksum-verified and contiguity-checked.
func ReadWAL(path string) ([]Wave, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replog: open wal: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	var out []Wave
	for {
		var w Wave
		if err := dec.Decode(&w); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("replog: wal decode (after seq %d): %w", lastSeqOf(out), err)
		}
		if !w.Verify() {
			return nil, fmt.Errorf("%w (seq %d)", ErrCorrupt, w.Seq)
		}
		if n := len(out); n > 0 && w.Seq != out[n-1].Seq+1 {
			return nil, fmt.Errorf("%w in wal: %d then %d", ErrGap, out[n-1].Seq, w.Seq)
		}
		out = append(out, w)
	}
}

func lastSeqOf(ws []Wave) uint64 {
	if len(ws) == 0 {
		return 0
	}
	return ws[len(ws)-1].Seq
}

// RecoverWAL replays a wave file like ReadWAL, but treats a bad tail —
// a record that fails to decode, fails its checksum, or breaks sequence
// contiguity — as the debris of a crash mid-append rather than a fatal
// error: the file is truncated in place to end exactly after the last
// valid wave, and the valid prefix is returned along with the number of
// bytes dropped. This is the startup-recovery contract: a process that
// died mid-write loses at most its unacknowledged tail and restarts
// from the last durable wave instead of refusing to boot.
//
// Only genuine I/O failures (open, truncate, fsync) return an error.
// dropped == 0 means the file was fully valid and untouched.
func RecoverWAL(path string) (waves []Wave, dropped int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, 0, fmt.Errorf("replog: open wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("replog: stat wal: %w", err)
	}
	dec := json.NewDecoder(bufio.NewReader(f))
	var good int64 // byte offset just past the last valid wave
	clean := false
	for {
		var w Wave
		if derr := dec.Decode(&w); derr != nil {
			// InputOffset after a Decode sits on the closing brace, so a
			// fully-valid file would still count its final newline as
			// dropped; a clean EOF means keep the whole file instead.
			clean = errors.Is(derr, io.EOF)
			break
		}
		if !w.Verify() {
			break // corrupt tail: checksum mismatch
		}
		if n := len(waves); n > 0 && w.Seq != waves[n-1].Seq+1 {
			break // tail past a gap is unreplayable
		}
		good = dec.InputOffset()
		waves = append(waves, w)
	}
	if clean {
		good = st.Size()
	}
	dropped = st.Size() - good
	if dropped < 0 {
		dropped = 0
	}
	if dropped > 0 {
		if err := f.Truncate(good); err != nil {
			return waves, dropped, fmt.Errorf("replog: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return waves, dropped, fmt.Errorf("replog: sync recovered wal: %w", err)
		}
		if err := SyncDir(filepath.Dir(path)); err != nil {
			return waves, dropped, err
		}
	}
	return waves, dropped, nil
}

package replog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Log errors.
var (
	// ErrTruncated reports a Since position older than the ring retains;
	// the caller must re-bootstrap from a snapshot.
	ErrTruncated = errors.New("replog: log truncated before requested sequence")
	// ErrGap reports an append whose sequence number is not the successor
	// of the last appended wave.
	ErrGap = errors.New("replog: non-contiguous wave sequence")
	// ErrCorrupt reports a wave whose checksum does not match its content.
	ErrCorrupt = errors.New("replog: wave checksum mismatch")
)

// Log is the wave change-log: a bounded in-memory ring of the most recent
// waves, optionally mirrored to an append-only JSONL file. Appends come
// from the engine executor (via its wave tap); reads come from replication
// handlers — all methods are safe for concurrent use.
//
// The ring bounds memory: once it wraps, Since calls older than the
// retained window return ErrTruncated and the follower must re-bootstrap
// from a snapshot (the usual log-compaction contract). The file, when
// configured, retains everything appended during the process lifetime and
// is written through a buffered writer — Sync forces it down.
type Log struct {
	mu sync.Mutex

	ring  []Wave
	start int // ring index of the oldest retained wave
	n     int // retained wave count

	base uint64 // Seq of the oldest retained wave (0 = empty)
	last uint64 // Seq of the newest appended wave (0 = none yet)

	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder

	appendErr error // first file-append error, surfaced on later calls
}

// DefaultLogCapacity is the ring size used when NewLog gets capacity <= 0.
const DefaultLogCapacity = 4096

// NewLog creates a wave log retaining up to capacity waves in memory
// (DefaultLogCapacity if <= 0). A non-empty path additionally opens an
// append-only JSONL file that mirrors every append. A pre-existing
// non-empty file at path is rotated aside (path.<unix-nanos>.old) first:
// this Log's wave stream starts at its own base sequence, and appending
// it after an older process's stream would leave a non-contiguous,
// unreplayable file. The rotated file remains replayable with ReadWAL
// against the snapshot that anchors it; automatic startup recovery
// (replay-into-engine) is a roadmap follow-on.
func NewLog(capacity int, path string) (*Log, error) {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	l := &Log{ring: make([]Wave, capacity)}
	if path != "" {
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			rotated := fmt.Sprintf("%s.%d.old", path, time.Now().UnixNano())
			if err := os.Rename(path, rotated); err != nil {
				return nil, fmt.Errorf("replog: rotate stale wal: %w", err)
			}
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("replog: open wal: %w", err)
		}
		l.f = f
		l.bw = bufio.NewWriter(f)
		l.enc = json.NewEncoder(l.bw)
	}
	return l, nil
}

// Append adds one sealed wave. The first append fixes the log's base
// sequence (a log attached to a restored tree starts mid-stream); every
// later append must carry the successor sequence number.
//
// The in-memory ring is authoritative: a failure of the file mirror is
// reported (once here, persistently via Err/Sync/Close) and disables
// further file writes, but the ring keeps advancing — a full disk
// degrades durability, it must not silently freeze replication while the
// leader keeps acknowledging writes.
func (l *Log) Append(w Wave) error {
	if !w.Verify() {
		return ErrCorrupt
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last != 0 && w.Seq != l.last+1 {
		return fmt.Errorf("%w: have %d, appending %d", ErrGap, l.last, w.Seq)
	}
	if l.n == len(l.ring) {
		// Evict the oldest retained wave.
		l.start = (l.start + 1) % len(l.ring)
		l.base++
		l.n--
	}
	l.ring[(l.start+l.n)%len(l.ring)] = w
	l.n++
	if l.base == 0 || l.n == 1 {
		l.base = w.Seq
	}
	l.last = w.Seq
	if l.enc != nil {
		if err := l.enc.Encode(&w); err != nil {
			l.appendErr = fmt.Errorf("replog: wal append (mirror disabled at seq %d): %w", w.Seq, err)
			l.enc, l.bw = nil, nil // stop mirroring; ring stays live
			return l.appendErr
		}
	}
	return nil
}

// Err returns the sticky file-mirror error, if any: non-nil means the WAL
// file stopped at some sequence while the in-memory ring kept going.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendErr
}

// Since returns (a copy of) every retained wave with Seq > seq, in order.
// It returns ErrTruncated when the ring no longer retains wave seq+1 —
// the caller is too far behind and must re-bootstrap from a snapshot.
func (l *Log) Since(seq uint64) ([]Wave, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		if l.last != 0 && seq < l.last {
			return nil, ErrTruncated
		}
		return nil, nil
	}
	if seq >= l.last {
		return nil, nil
	}
	if seq+1 < l.base {
		return nil, ErrTruncated
	}
	skip := int(seq + 1 - l.base)
	out := make([]Wave, 0, l.n-skip)
	for i := skip; i < l.n; i++ {
		out = append(out, l.ring[(l.start+i)%len(l.ring)])
	}
	return out, nil
}

// LastSeq returns the newest appended sequence number (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// BaseSeq returns the oldest retained sequence number (0 if empty).
func (l *Log) BaseSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0
	}
	return l.base
}

// Len returns the number of retained waves.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Sync flushes the buffered file mirror to the OS (no-op without a file).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.appendErr != nil {
		return l.appendErr
	}
	if l.bw == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		l.appendErr = err
		return err
	}
	return l.f.Sync()
}

// Close flushes and closes the file mirror (the ring stays readable).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.bw, l.enc = nil, nil, nil
	return err
}

// ReadWAL replays an append-only wave file written by a Log: every wave
// in order, checksum-verified and contiguity-checked.
func ReadWAL(path string) ([]Wave, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replog: open wal: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	var out []Wave
	for {
		var w Wave
		if err := dec.Decode(&w); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("replog: wal decode (after seq %d): %w", lastSeqOf(out), err)
		}
		if !w.Verify() {
			return nil, fmt.Errorf("%w (seq %d)", ErrCorrupt, w.Seq)
		}
		if n := len(out); n > 0 && w.Seq != out[n-1].Seq+1 {
			return nil, fmt.Errorf("%w in wal: %d then %d", ErrGap, out[n-1].Seq, w.Seq)
		}
		out = append(out, w)
	}
}

func lastSeqOf(ws []Wave) uint64 {
	if len(ws) == 0 {
		return 0
	}
	return ws[len(ws)-1].Seq
}

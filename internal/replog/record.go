// Package replog is the durability and replication layer over the
// request-coalescing engine: wave change-log records, an in-memory ring /
// append-only file log, and a versioned snapshot codec for expression
// trees.
//
// The engine (internal/engine) already produces exactly the artifact a
// replication system needs: ordered, conflict-free executed *waves*. Each
// wave is a set of node-disjoint mutations applied as at most one call to
// each core batch entry point, in a fixed kind order — so a wave replayed
// through the same entry points, against the same pre-wave tree, yields a
// bit-identical post-wave tree, including the dense node IDs assigned by
// grows. That makes the executed-wave stream a deterministic change log:
//
//   - Snapshot (snapshot.go): the full tree (structure + labels + PRNG
//     seed + applied-wave sequence number) captured through an engine
//     barrier into a versioned, byte-deterministic codec.
//   - Wave log (log.go): every executed mutating wave appended — sequence
//     number, the ops with their arguments and assigned IDs, the post-wave
//     root value, and a content checksum — to a bounded in-memory ring
//     plus an optional append-only JSONL file.
//   - Catch-up: a follower bootstraps from a snapshot at sequence S and
//     applies waves S+1, S+2, … in order; the recorded grow IDs and
//     post-wave roots let it verify convergence after every wave.
//
// This mirrors how change-propagation-based batch-dynamic tree systems
// (Acar et al. 2020) treat the batch as the unit of state evolution:
// persisting and shipping batches is the natural replication granule.
package replog

import (
	"fmt"
	"hash/fnv"
)

// OpKind enumerates the mutating request kinds a wave can carry. Reads
// (value / root queries) and barriers do not change the tree and are never
// logged.
type OpKind uint8

// Wave op kinds, in the fixed order batches execute within a wave.
const (
	OpGrow OpKind = iota + 1
	OpCollapse
	OpSetLeaf
	OpSetOp
)

func (k OpKind) String() string {
	switch k {
	case OpGrow:
		return "grow"
	case OpCollapse:
		return "collapse"
	case OpSetLeaf:
		return "set-leaf"
	case OpSetOp:
		return "set-op"
	}
	return fmt.Sprintf("op-kind(%d)", uint8(k))
}

// Op is one mutating request of an executed wave, addressed by dense tree
// node ID (stable for a node's lifetime, deterministic under replay).
type Op struct {
	Kind OpKind `json:"kind"`
	Node int    `json:"node"`

	// A, B, C are the symmetric bilinear operation coefficients
	// (grow, set-op).
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
	C int64 `json:"c,omitempty"`

	// Value is the new leaf value (collapse, set-leaf).
	Value int64 `json:"value,omitempty"`

	// Left, Right are the fresh leaves' values (grow).
	Left  int64 `json:"left,omitempty"`
	Right int64 `json:"right,omitempty"`

	// LeftID, RightID are the node IDs the grow assigned. ID assignment is
	// deterministic (dense, append-only), so a replayed grow must assign
	// the same IDs — recorded for verification, not reconstruction.
	LeftID  int `json:"left_id,omitempty"`
	RightID int `json:"right_id,omitempty"`
}

// Wave is one executed conflict-free wave: the unit of the change log.
// Within a wave ops appear in execution order (grows, collapses,
// set-leaves, set-ops; submission order within each kind), which is also
// the order a replay must apply them.
type Wave struct {
	// Seq is the wave's 1-based position in the engine's applied sequence.
	// Waves are contiguous: a follower at sequence S applies exactly S+1.
	Seq uint64 `json:"seq"`
	// Epoch is the leadership term that produced the wave. Every
	// promotion of a follower bumps the epoch by one; a wave carrying an
	// epoch lower than the receiver's is a late write from a demoted
	// leader and must be rejected (the fence). Zero is read as epoch 1
	// so records written before epochs existed stay valid.
	Epoch uint64 `json:"epoch,omitempty"`
	Ops   []Op   `json:"ops"`
	// Root is the root value of the expression after the wave — an O(1)
	// convergence check for every replayed wave.
	Root int64 `json:"root"`
	// Sum is the FNV-1a checksum of (Seq, Epoch, Ops, Root), with the
	// epoch word included only when Epoch is non-zero so pre-epoch
	// records stay verifiable; see Checksum/Seal/Verify.
	Sum uint64 `json:"sum"`

	// TraceID, SealedAt and AppendedAt are observability metadata: the
	// distributed trace the wave was sampled into (0 when unsampled) and
	// UnixNano timestamps taken when the engine sealed the wave and when
	// the log appended it. They ride the record so the follower can
	// attribute replication lag per stage, but they are NOT part of the
	// content checksum — two replicas of the same wave differ in clocks,
	// never in content — and they are omitted from untimed engines'
	// records, keeping the wave-log bytes of uninstrumented runs
	// identical to pre-tracing versions.
	TraceID    uint64 `json:"trace_id,omitempty"`
	SealedAt   int64  `json:"sealed_at,omitempty"`
	AppendedAt int64  `json:"appended_at,omitempty"`
}

// EpochOrDefault returns the wave's epoch, mapping the zero value (a
// record sealed before epochs existed) to the initial epoch 1.
func (w *Wave) EpochOrDefault() uint64 {
	if w.Epoch == 0 {
		return 1
	}
	return w.Epoch
}

// Checksum returns the FNV-1a 64-bit hash of the wave's content
// (everything except Sum itself).
func (w *Wave) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	u64(w.Seq)
	// Records sealed before epochs existed carry Epoch == 0 and a Sum
	// computed without the epoch word; hashing the epoch only when set
	// keeps those records verifiable. New waves are always sealed with
	// epoch >= 1, so the gate is unambiguous (mirrors the Version >= 2
	// gate in the snapshot codec).
	if w.Epoch != 0 {
		u64(w.Epoch)
	}
	u64(uint64(len(w.Ops)))
	for i := range w.Ops {
		op := &w.Ops[i]
		u64(uint64(op.Kind))
		i64(int64(op.Node))
		i64(op.A)
		i64(op.B)
		i64(op.C)
		i64(op.Value)
		i64(op.Left)
		i64(op.Right)
		i64(int64(op.LeftID))
		i64(int64(op.RightID))
	}
	i64(w.Root)
	return h.Sum64()
}

// Seal stamps the wave with its content checksum.
func (w *Wave) Seal() { w.Sum = w.Checksum() }

// Verify reports whether the wave's checksum matches its content.
func (w *Wave) Verify() bool { return w.Sum == w.Checksum() }

package replog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCompactConcurrentAppends races the off-lock WAL rewrite against a
// live append stream (the production shape: the engine executor appends
// while the compactor rewrites). The resulting file must stay contiguous
// and checksum-clean, holding exactly the waves after the trim.
func TestCompactConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, err := NewLog(1<<12, path)
	if err != nil {
		t.Fatal(err)
	}
	const total, trimAt = 500, 100
	compacted := make(chan error, 1)
	for s := uint64(1); s <= total; s++ {
		if err := l.Append(sealedWave(s)); err != nil {
			t.Fatal(err)
		}
		if s == trimAt {
			go func() { compacted <- l.Compact(trimAt / 2) }()
		}
	}
	if err := <-compacted; err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ws, err := ReadWAL(path) // verifies contiguity and checksums
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != total-trimAt/2 || ws[0].Seq != trimAt/2+1 || ws[len(ws)-1].Seq != total {
		t.Fatalf("wal after racing compact: %d waves, first %d, last %d",
			len(ws), ws[0].Seq, ws[len(ws)-1].Seq)
	}
	if got := l.BaseSeq(); got != trimAt/2+1 {
		t.Fatalf("base: %d", got)
	}
}

func sealedWave(seq uint64) Wave {
	w := Wave{
		Seq:  seq,
		Ops:  []Op{{Kind: OpSetLeaf, Node: 0, Value: int64(seq)}},
		Root: int64(seq),
	}
	w.Seal()
	return w
}

func TestCompactTrimsRing(t *testing.T) {
	l, err := NewLog(64, "")
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(1); s <= 20; s++ {
		if err := l.Append(sealedWave(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(12); err != nil {
		t.Fatal(err)
	}
	if got := l.BaseSeq(); got != 13 {
		t.Fatalf("base after compact: %d", got)
	}
	if got := l.Len(); got != 8 {
		t.Fatalf("len after compact: %d", got)
	}
	// Positions at or before the trim are gone: the 410 contract.
	if _, err := l.Since(5); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Since(5): %v, want ErrTruncated", err)
	}
	if _, err := l.Since(11); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Since(11): %v, want ErrTruncated", err)
	}
	// The retained tail still serves.
	ws, err := l.Since(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 || ws[0].Seq != 13 || ws[7].Seq != 20 {
		t.Fatalf("tail: %d waves, first %d", len(ws), ws[0].Seq)
	}
	// Appends continue seamlessly.
	if err := l.Append(sealedWave(21)); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 21 {
		t.Fatalf("last after append: %d", got)
	}
}

func TestCompactToLastEmptiesRing(t *testing.T) {
	l, err := NewLog(16, "")
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(1); s <= 5; s++ {
		if err := l.Append(sealedWave(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Compacting past the end clamps to the last appended wave.
	if err := l.Compact(99); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("len: %d", l.Len())
	}
	if _, err := l.Since(0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Since(0): %v", err)
	}
	if ws, err := l.Since(5); err != nil || len(ws) != 0 {
		t.Fatalf("Since(5): %v %v", ws, err)
	}
	if err := l.Append(sealedWave(6)); err != nil {
		t.Fatal(err)
	}
	if l.BaseSeq() != 6 || l.Len() != 1 {
		t.Fatalf("after refill: base %d len %d", l.BaseSeq(), l.Len())
	}
}

func TestCompactRewritesWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	l, err := NewLog(64, path)
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(1); s <= 10; s++ {
		if err := l.Append(sealedWave(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(7); err != nil {
		t.Fatal(err)
	}
	// The WAL now holds exactly the retained tail...
	ws, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0].Seq != 8 || ws[2].Seq != 10 {
		t.Fatalf("compacted wal: %d waves, first %d", len(ws), ws[0].Seq)
	}
	// ...and later appends land in the compacted segment.
	for s := uint64(11); s <= 12; s++ {
		if err := l.Append(sealedWave(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ws, err = ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 5 || ws[4].Seq != 12 {
		t.Fatalf("wal after appends: %d waves, last %d", len(ws), ws[len(ws)-1].Seq)
	}
	// No stray temp file.
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

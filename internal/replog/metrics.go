package replog

import (
	"dyntc/internal/obs"
)

// Metrics is the replication log's instrument bundle. One Metrics is
// shared by every Log of a process (per-tree label cardinality would not
// scale to a big forest); attach it with Log.SetMetrics. Lag and
// applied-sequence gauges live with the server wiring (cmd/dyntcd), which
// can see engines and replicas side by side.
type Metrics struct {
	// Appends counts waves appended to the change log.
	Appends *obs.Counter
	// AppendSeconds is the latency of one append: checksum verify, ring
	// insert and (when mirrored) the WAL JSONL encode. Appends run inline
	// on the engine executor via the wave tap, so this is the durability
	// cost each mutating wave pays.
	AppendSeconds *obs.Histogram
	// Compactions counts log compactions started.
	Compactions *obs.Counter
}

// NewMetrics registers the replog families on reg.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appends:       r.Counter("dyntc_replog_appends_total", "waves appended to the change log"),
		AppendSeconds: r.Seconds("dyntc_replog_append_seconds", "wave append latency: verify, ring insert, WAL encode"),
		Compactions:   r.Counter("dyntc_replog_compactions_total", "log compactions started"),
	}
}

package replog

import (
	"dyntc/internal/obs"
)

// Replication-lag stage labels: the three hops a wave makes between the
// leader's seal and the follower's apply. Exposed as one histogram
// family, dyntc_repl_stage_seconds{stage=...}, registered on both roles
// so a scrape checker sees the family even before traffic flows.
const (
	StageSealedAppended = "sealed_appended"  // engine seal → WAL append (leader)
	StageAppendedFetch  = "appended_fetched" // WAL append → follower fetch (network + poll)
	StageFetchedApplied = "fetched_applied"  // follower fetch → replay applied
)

// Metrics is the replication log's instrument bundle. One Metrics is
// shared by every Log of a process (per-tree label cardinality would not
// scale to a big forest); attach it with Log.SetMetrics. Lag and
// applied-sequence gauges live with the server wiring (cmd/dyntcd), which
// can see engines and replicas side by side.
type Metrics struct {
	// Appends counts waves appended to the change log.
	Appends *obs.Counter
	// AppendSeconds is the latency of one append: checksum verify, ring
	// insert and (when mirrored) the WAL JSONL encode. Appends run inline
	// on the engine executor via the wave tap, so this is the durability
	// cost each mutating wave pays.
	AppendSeconds *obs.Histogram
	// Compactions counts log compactions started.
	Compactions *obs.Counter

	// SealedAppended, AppendedFetched, FetchedApplied attribute
	// replication lag to its three stages. The first is observed by
	// Log.Append on the leader; the other two by the follower's sync
	// loop. All three live in the dyntc_repl_stage_seconds family.
	SealedAppended  *obs.Histogram
	AppendedFetched *obs.Histogram
	FetchedApplied  *obs.Histogram

	// Spans, when set, receives a wal.append span for every appended wave
	// that carries a trace ID (see Log.Append).
	Spans *obs.SpanLog
}

// NewMetrics registers the replog families on reg.
func NewMetrics(r *obs.Registry) *Metrics {
	stage := func(s string) *obs.Histogram {
		return r.Seconds("dyntc_repl_stage_seconds",
			"replication lag per pipeline stage (seal->append->fetch->apply)", "stage", s)
	}
	return &Metrics{
		Appends:         r.Counter("dyntc_replog_appends_total", "waves appended to the change log"),
		AppendSeconds:   r.Seconds("dyntc_replog_append_seconds", "wave append latency: verify, ring insert, WAL encode"),
		Compactions:     r.Counter("dyntc_replog_compactions_total", "log compactions started"),
		SealedAppended:  stage(StageSealedAppended),
		AppendedFetched: stage(StageAppendedFetch),
		FetchedApplied:  stage(StageFetchedApplied),
	}
}

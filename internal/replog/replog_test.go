package replog

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"dyntc/internal/faults"
	"dyntc/internal/prng"
	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

func mkWave(seq uint64, ops int) Wave {
	w := Wave{Seq: seq, Root: int64(seq * 10)}
	for i := 0; i < ops; i++ {
		w.Ops = append(w.Ops, Op{Kind: OpSetLeaf, Node: i, Value: int64(seq) + int64(i)})
	}
	w.Seal()
	return w
}

func TestWaveChecksum(t *testing.T) {
	w := mkWave(3, 2)
	if !w.Verify() {
		t.Fatal("sealed wave does not verify")
	}
	w.Ops[0].Value++
	if w.Verify() {
		t.Fatal("tampered wave verifies")
	}
}

// TestPreEpochWaveChecksumCompat pins the upgrade contract: a record
// sealed by a build that predates epochs carries Epoch == 0 and a Sum
// computed without the epoch word. The gated Checksum must accept such
// a record unchanged — and must cover the epoch as soon as one is
// stamped.
func TestPreEpochWaveChecksumCompat(t *testing.T) {
	w := Wave{Seq: 7, Root: 42}
	// The pre-epoch formula, by hand: Seq, op count, Root — no epoch word.
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	u64(7)  // Seq
	u64(0)  // len(Ops)
	u64(42) // Root
	w.Sum = h.Sum64()
	if !w.Verify() {
		t.Fatal("pre-epoch record (Epoch=0, sum without the epoch word) does not verify")
	}
	// Once stamped, the epoch is covered: same content at a new term must
	// not share a checksum, and a tampered epoch must fail.
	w2 := Wave{Seq: 7, Epoch: 2, Root: 42}
	w2.Seal()
	if !w2.Verify() {
		t.Fatal("epoch-stamped record does not verify")
	}
	if w2.Sum == w.Sum {
		t.Fatal("epoch is not covered by the checksum")
	}
	w2.Epoch = 3
	if w2.Verify() {
		t.Fatal("record with a tampered epoch still verifies")
	}
}

// TestWALMixedEpochUpgrade: a WAL whose prefix predates epochs (zero
// epoch, old checksum formula) followed by epoch-stamped records — the
// shape of a log that lives across the upgrade — reads cleanly with
// ReadWAL and recovers with zero bytes dropped.
func TestWALMixedEpochUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	var raw bytes.Buffer
	enc := json.NewEncoder(&raw)
	for seq := uint64(1); seq <= 3; seq++ {
		w := mkWave(seq, 1) // Epoch == 0: sealed like a pre-epoch build
		if err := enc.Encode(&w); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(4); seq <= 6; seq++ {
		w := Wave{Seq: seq, Epoch: 2, Root: int64(seq * 10)}
		w.Seal()
		if err := enc.Encode(&w); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, err := ReadWAL(path)
	if err != nil {
		t.Fatalf("mixed-version wal: %v", err)
	}
	if len(ws) != 6 {
		t.Fatalf("ReadWAL returned %d waves, want 6", len(ws))
	}
	ws2, dropped, err := RecoverWAL(path)
	if err != nil || dropped != 0 || len(ws2) != 6 {
		t.Fatalf("RecoverWAL: %d waves, %d dropped, err %v; want 6, 0, nil", len(ws2), dropped, err)
	}
}

func TestLogRingSinceAndTruncation(t *testing.T) {
	l, err := NewLog(4, "")
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(mkWave(seq, 1)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if got := l.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	if got := l.BaseSeq(); got != 7 {
		t.Fatalf("BaseSeq = %d, want 7 (capacity 4)", got)
	}
	ws, err := l.Since(8)
	if err != nil {
		t.Fatalf("Since(8): %v", err)
	}
	if len(ws) != 2 || ws[0].Seq != 9 || ws[1].Seq != 10 {
		t.Fatalf("Since(8) = %v", ws)
	}
	// Exactly at the retention boundary: wave 7 is the oldest retained, so
	// Since(6) must work and Since(5) must report truncation.
	if ws, err = l.Since(6); err != nil || len(ws) != 4 {
		t.Fatalf("Since(6) = %d waves, err %v; want 4, nil", len(ws), err)
	}
	if _, err = l.Since(5); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Since(5) err = %v, want ErrTruncated", err)
	}
	if ws, err = l.Since(10); err != nil || len(ws) != 0 {
		t.Fatalf("Since(10) = %v, %v; want empty", ws, err)
	}
	// Gap and corruption rejection.
	if err := l.Append(mkWave(12, 1)); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append err = %v, want ErrGap", err)
	}
	bad := mkWave(11, 1)
	bad.Root++
	if err := l.Append(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt append err = %v, want ErrCorrupt", err)
	}
}

func TestLogMidStreamBase(t *testing.T) {
	// A log attached after a snapshot restore starts mid-stream.
	l, _ := NewLog(8, "")
	if err := l.Append(mkWave(41, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkWave(42, 1)); err != nil {
		t.Fatal(err)
	}
	if ws, err := l.Since(40); err != nil || len(ws) != 2 {
		t.Fatalf("Since(40) = %d waves, err %v", len(ws), err)
	}
	if _, err := l.Since(39); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Since(39) err = %v, want ErrTruncated", err)
	}
}

func TestWALFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	l, err := NewLog(2, path) // ring smaller than the stream: file keeps all
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		if err := l.Append(mkWave(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ws, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("ReadWAL returned %d waves, want 6", len(ws))
	}
	for i, w := range ws {
		if w.Seq != uint64(i+1) || !w.Verify() {
			t.Fatalf("wave %d: seq %d verify %v", i, w.Seq, w.Verify())
		}
	}
}

func TestWALRotatesStaleFile(t *testing.T) {
	// A restarted process reopens the same path with a fresh sequence; the
	// stale stream must be rotated aside, not appended into (which would
	// make the file non-contiguous and unreplayable).
	path := filepath.Join(t.TempDir(), "tree.wal")
	l1, err := NewLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l1.Append(mkWave(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := NewLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(mkWave(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	ws, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || len(ws[0].Ops) != 2 {
		t.Fatalf("fresh wal has %d waves, want the restarted stream only", len(ws))
	}
	old, err := filepath.Glob(path + ".*.old")
	if err != nil || len(old) != 1 {
		t.Fatalf("rotated files: %v (%v)", old, err)
	}
	if ws, err = ReadWAL(old[0]); err != nil || len(ws) != 3 {
		t.Fatalf("rotated wal: %d waves, err %v; want 3, nil", len(ws), err)
	}
}

func TestMirrorFailureKeepsRingLive(t *testing.T) {
	// A file-mirror failure must not freeze the in-memory ring: the leader
	// keeps acknowledging writes, so replication must keep flowing, with
	// the sticky error surfaced via Err.
	path := filepath.Join(t.TempDir(), "tree.wal")
	l, err := NewLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkWave(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Simulate the disk going away under the record writer.
	in := faults.New(1)
	in.Add(faults.Rule{Site: "wal.append", Err: errors.New("disk gone"), Times: 1})
	l.SetFaults(in)
	if err := l.Append(mkWave(2, 1)); err == nil {
		t.Fatal("mirror failure not reported")
	}
	if l.Err() == nil {
		t.Fatal("sticky mirror error not recorded")
	}
	// Ring still advances and serves catch-up.
	if err := l.Append(mkWave(3, 1)); err != nil {
		t.Fatalf("ring append after mirror failure: %v", err)
	}
	ws, err := l.Since(0)
	if err != nil || len(ws) != 3 {
		t.Fatalf("Since(0) after mirror failure: %d waves, err %v", len(ws), err)
	}
}

func TestRingSpecRoundTrip(t *testing.T) {
	rings := []semiring.Ring{
		semiring.NewMod(97), semiring.NewMod(1_000_000_007),
		semiring.MinPlus{}, semiring.MaxPlus{}, semiring.Bool{}, semiring.MaxMin{},
	}
	for _, r := range rings {
		spec, err := SpecOfRing(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		back, err := spec.Ring()
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if back.Name() != r.Name() {
			t.Fatalf("round trip %s -> %s", r.Name(), back.Name())
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		src := prng.New(seed)
		r := semiring.NewMod(1_000_000_007)
		orig := tree.Generate(r, src, 200, tree.ShapeRandom)
		// Punch holes: collapse some grown pairs so deleted slots exist.
		for _, n := range orig.Leaves() {
			p := n.Parent
			if p != nil && !p.IsLeaf() && p.Left.IsLeaf() && p.Right.IsLeaf() && src.Intn(4) == 0 {
				orig.DeleteChildren(p, src.Int63()%1000)
			}
		}
		snap, err := Capture(orig, seed, false, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		data, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Seq != 7 || dec.Seed != seed || dec.Slots != len(orig.Nodes) {
			t.Fatalf("metadata: %+v", dec)
		}
		restored, err := dec.Tree()
		if err != nil {
			t.Fatal(err)
		}
		if restored.Len() != orig.Len() || len(restored.Nodes) != len(orig.Nodes) {
			t.Fatalf("size: %d/%d vs %d/%d", restored.Len(), len(restored.Nodes), orig.Len(), len(orig.Nodes))
		}
		if restored.Eval() != orig.Eval() {
			t.Fatalf("eval: %d vs %d", restored.Eval(), orig.Eval())
		}
		// Byte determinism: capture of the restored tree encodes identically.
		snap2, err := Capture(restored, seed, false, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		data2, err := snap2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatal("snapshot of restored tree is not byte-identical")
		}
	}
}

func TestSnapshotRejectsTampering(t *testing.T) {
	src := prng.New(1)
	orig := tree.Generate(semiring.NewMod(97), src, 10, tree.ShapeBalanced)
	snap, _ := Capture(orig, 1, false, 0, 1)
	data, _ := snap.Encode()
	tampered := bytes.Replace(data, []byte(`"seq":0`), []byte(`"seq":5`), 1)
	if !bytes.Contains(data, []byte(`"seq":0`)) {
		t.Fatal("test assumption: encoded snapshot contains seq field")
	}
	if _, err := Decode(tampered); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("tampered decode err = %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("half a snapshot decoded")
	}
	bad := *snap
	bad.Version = 99
	bad.Sum = bad.checksum()
	bdata, _ := bad.Encode()
	if _, err := Decode(bdata); !errors.Is(err, ErrVersion) {
		t.Fatalf("version err = %v, want ErrVersion", err)
	}
}

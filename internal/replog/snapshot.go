package replog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"dyntc/internal/semiring"
	"dyntc/internal/tree"
)

// SnapshotVersion is the current snapshot codec version. Decoders accept
// exactly the versions they know; bumping the codec means bumping this and
// teaching Decode the old layout. Version 2 added the leadership Epoch
// (absent in version 1, which decodes as epoch 0 = default epoch 1).
const SnapshotVersion = 2

// Snapshot errors.
var (
	// ErrVersion reports a snapshot codec version this build cannot read.
	ErrVersion = errors.New("replog: unsupported snapshot version")
	// ErrSnapshotCorrupt reports a snapshot whose checksum does not match.
	ErrSnapshotCorrupt = errors.New("replog: snapshot checksum mismatch")
)

// RingSpec names a semiring in the wire format. Kind uses the same names
// as the dyntcd create API (mod|minplus|maxplus|bool|maxmin); Mod is the
// modulus for Kind "mod".
type RingSpec struct {
	Kind string `json:"kind"`
	Mod  int64  `json:"mod,omitempty"`
}

// SpecOfRing returns the wire spec of a ring.
func SpecOfRing(r semiring.Ring) (RingSpec, error) {
	switch rr := r.(type) {
	case semiring.ModRing:
		return RingSpec{Kind: "mod", Mod: rr.P}, nil
	case semiring.MinPlus:
		return RingSpec{Kind: "minplus"}, nil
	case semiring.MaxPlus:
		return RingSpec{Kind: "maxplus"}, nil
	case semiring.Bool:
		return RingSpec{Kind: "bool"}, nil
	case semiring.MaxMin:
		return RingSpec{Kind: "maxmin"}, nil
	}
	return RingSpec{}, fmt.Errorf("replog: ring %q has no wire spec", r.Name())
}

// Ring materializes the spec.
func (s RingSpec) Ring() (semiring.Ring, error) {
	switch s.Kind {
	case "mod":
		if s.Mod < 2 || s.Mod >= 1<<31 {
			return nil, fmt.Errorf("replog: bad modulus %d", s.Mod)
		}
		return semiring.NewMod(s.Mod), nil
	case "minplus":
		return semiring.MinPlus{}, nil
	case "maxplus":
		return semiring.MaxPlus{}, nil
	case "bool":
		return semiring.Bool{}, nil
	case "maxmin":
		return semiring.MaxMin{}, nil
	}
	return nil, fmt.Errorf("replog: unknown ring kind %q", s.Kind)
}

// SnapNode is one live node of a snapshot. Links are node IDs; -1 means
// none. Internal nodes carry the operation coefficients, leaves the value.
type SnapNode struct {
	ID     int   `json:"id"`
	Parent int   `json:"parent"`
	Left   int   `json:"left"`
	Right  int   `json:"right"`
	A      int64 `json:"a,omitempty"`
	B      int64 `json:"b,omitempty"`
	C      int64 `json:"c,omitempty"`
	Value  int64 `json:"value,omitempty"`
}

// Snapshot is a full serialized expression tree plus the replication
// metadata needed to continue its wave stream: the PRNG seed (so a
// restored contraction is deterministic), whether the §5 tour is
// maintained, and the applied-wave sequence number the tree state
// reflects.
//
// Encoding is byte-deterministic: live nodes are sorted by ID and the JSON
// field order is fixed by the struct, so two equal tree states always
// encode to identical bytes — the property the replication tests pin.
type Snapshot struct {
	Version int      `json:"version"`
	Ring    RingSpec `json:"ring"`
	Seed    uint64   `json:"seed"`
	Tour    bool     `json:"tour,omitempty"`
	Seq     uint64   `json:"seq"`
	// Epoch is the leadership term the captured state was produced under;
	// a follower restored from this snapshot rejects waves from older
	// epochs. Zero (version-1 snapshots) reads as the initial epoch 1.
	Epoch uint64 `json:"epoch,omitempty"`
	// Slots is len(tree.Nodes) including deleted (nil) slots: restoring it
	// exactly keeps future grow ID assignment identical to the leader's.
	Slots int        `json:"slots"`
	Nodes []SnapNode `json:"nodes"`
	Sum   uint64     `json:"sum"`
}

// Capture serializes t (plus seed / tour / seq / epoch metadata) into a
// sealed snapshot. The caller must hold the single-writer right to t
// (direct owner, or inside an engine barrier).
func Capture(t *tree.Tree, seed uint64, tour bool, seq, epoch uint64) (*Snapshot, error) {
	spec, err := SpecOfRing(t.Ring)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Version: SnapshotVersion,
		Ring:    spec,
		Seed:    seed,
		Tour:    tour,
		Seq:     seq,
		Epoch:   epoch,
		Slots:   len(t.Nodes),
		Nodes:   make([]SnapNode, 0, t.Len()),
	}
	id := func(n *tree.Node) int {
		if n == nil {
			return -1
		}
		return n.ID
	}
	for _, n := range t.Nodes {
		if n == nil {
			continue
		}
		sn := SnapNode{
			ID:     n.ID,
			Parent: id(n.Parent),
			Left:   id(n.Left),
			Right:  id(n.Right),
		}
		if n.IsLeaf() {
			sn.Value = n.Value
		} else {
			sn.A, sn.B, sn.C = n.Op.A, n.Op.B, n.Op.C
		}
		s.Nodes = append(s.Nodes, sn)
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].ID < s.Nodes[j].ID })
	s.Sum = s.checksum()
	return s, nil
}

// checksum is the FNV-1a 64-bit hash of everything except Sum.
func (s *Snapshot) checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	u64(uint64(s.Version))
	h.Write([]byte(s.Ring.Kind))
	i64(s.Ring.Mod)
	u64(s.Seed)
	if s.Tour {
		u64(1)
	} else {
		u64(0)
	}
	u64(s.Seq)
	if s.Version >= 2 {
		// Version 1 predates epochs; hashing the field there would break
		// verification of archived v1 snapshots.
		u64(s.Epoch)
	}
	i64(int64(s.Slots))
	u64(uint64(len(s.Nodes)))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		i64(int64(n.ID))
		i64(int64(n.Parent))
		i64(int64(n.Left))
		i64(int64(n.Right))
		i64(n.A)
		i64(n.B)
		i64(n.C)
		i64(n.Value)
	}
	return h.Sum64()
}

// Encode marshals the snapshot to its canonical byte form.
func (s *Snapshot) Encode() ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("replog: encode snapshot: %w", err)
	}
	return b.Bytes(), nil
}

// Decode parses and verifies a snapshot.
func Decode(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("replog: decode snapshot: %w", err)
	}
	if s.Version < 1 || s.Version > SnapshotVersion {
		return nil, fmt.Errorf("%w: %d (this build reads 1..%d)", ErrVersion, s.Version, SnapshotVersion)
	}
	if s.Sum != s.checksum() {
		return nil, ErrSnapshotCorrupt
	}
	return &s, nil
}

// EpochOrDefault returns the snapshot's epoch, mapping the zero value
// (a version-1 snapshot) to the initial epoch 1.
func (s *Snapshot) EpochOrDefault() uint64 {
	if s.Epoch == 0 {
		return 1
	}
	return s.Epoch
}

// Tree materializes the snapshot's expression tree: exact node IDs, exact
// slot count (holes included), validated structure.
func (s *Snapshot) Tree() (*tree.Tree, error) {
	r, err := s.Ring.Ring()
	if err != nil {
		return nil, err
	}
	nodes := make([]tree.RestoreNode, len(s.Nodes))
	for i, sn := range s.Nodes {
		nodes[i] = tree.RestoreNode{
			ID:     sn.ID,
			Parent: sn.Parent,
			Left:   sn.Left,
			Right:  sn.Right,
			Op:     semiring.Op{A: sn.A, B: sn.B, C: sn.C},
			Value:  sn.Value,
		}
	}
	return tree.Restore(r, s.Slots, nodes)
}

package replog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dyntc/internal/faults"
)

// writeWAL appends n sealed waves to a fresh log at path and closes it.
func writeWAL(t *testing.T, path string, n int) {
	t.Helper()
	l, err := NewLog(64, path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= uint64(n); seq++ {
		if err := l.Append(mkWave(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverWALCleanFileUntouched: a fully valid file recovers with
// zero dropped bytes and identical size.
func TestRecoverWALCleanFileUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	writeWAL(t, path, 5)
	before, _ := os.Stat(path)
	ws, dropped, err := RecoverWAL(path)
	if err != nil || dropped != 0 || len(ws) != 5 {
		t.Fatalf("clean recover: %d waves, %d dropped, err %v", len(ws), dropped, err)
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size() {
		t.Fatalf("clean file resized %d -> %d", before.Size(), after.Size())
	}
}

// TestRecoverWALTornTail: crash mid-append leaves a partial JSON record;
// recovery truncates to the last valid wave and the file replays clean.
func TestRecoverWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	writeWAL(t, path, 4)
	// Tear the tail: append half of a record, as a crash mid-write would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":5,"ops":[{"kind":3,"no`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The strict reader refuses the file — this is the "aborts startup"
	// behaviour recovery exists to replace.
	if _, err := ReadWAL(path); err == nil {
		t.Fatal("ReadWAL accepted a torn tail")
	}

	ws, dropped, err := RecoverWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 || ws[3].Seq != 4 {
		t.Fatalf("recovered %d waves, want 4", len(ws))
	}
	if dropped == 0 {
		t.Fatal("torn tail reported 0 dropped bytes")
	}
	// Truncation is durable: the strict reader accepts the file now, and
	// a second recovery is a no-op.
	if ws, err = ReadWAL(path); err != nil || len(ws) != 4 {
		t.Fatalf("post-recovery ReadWAL: %d waves, err %v", len(ws), err)
	}
	if _, dropped, err = RecoverWAL(path); err != nil || dropped != 0 {
		t.Fatalf("second recovery dropped %d, err %v", dropped, err)
	}
}

// TestRecoverWALTornFirstRecord: the whole file is one partial record —
// recovery truncates to empty rather than failing.
func TestRecoverWALTornFirstRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	if err := os.WriteFile(path, []byte(`{"seq":1,"ops"`), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, dropped, err := RecoverWAL(path)
	if err != nil || len(ws) != 0 || dropped == 0 {
		t.Fatalf("recover: %d waves, %d dropped, err %v", len(ws), dropped, err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("file not truncated to empty: %d bytes", st.Size())
	}
}

// TestRecoverWALCorruptChecksumTail: a decodable record whose checksum
// fails (bit rot, or a write interleaved across a crash) is dropped with
// everything after it.
func TestRecoverWALCorruptChecksumTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	writeWAL(t, path, 3)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := []byte(`{"seq":4,"ops":[],"root":999,"sum":1}` + "\n")
	if _, err := f.Write(enc); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Dropped covers the corrupt record plus the newline that preceded it
	// (truncation lands exactly after the last valid record's brace).
	ws, dropped, err := RecoverWAL(path)
	if err != nil || len(ws) != 3 || dropped < int64(len(enc)) {
		t.Fatalf("recover: %d waves, %d dropped (want >= %d), err %v", len(ws), dropped, len(enc), err)
	}
	if ws, err = ReadWAL(path); err != nil || len(ws) != 3 {
		t.Fatalf("post-recovery ReadWAL: %d waves, err %v", len(ws), err)
	}
}

// TestRecoverWALTornByInjector: end-to-end — a torn write injected at
// the wal.append seam leaves a partial record on disk (the mirror
// flushes what landed before disabling itself), and RecoverWAL brings
// the file back to the last durable wave.
func TestRecoverWALTornByInjector(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.wal")
	l, err := NewLog(64, path)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(42)
	in.Add(faults.Rule{Site: "wal.append", After: 3, Torn: 0.4, Times: 1})
	l.SetFaults(in)
	var appendErr error
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.Append(mkWave(seq, 2)); err != nil {
			appendErr = err
		}
	}
	if !errors.Is(appendErr, faults.ErrInjected) {
		t.Fatalf("torn append surfaced %v", appendErr)
	}
	// The ring is still authoritative past the tear.
	if err := l.Append(mkWave(5, 1)); err != nil {
		t.Fatalf("ring append after tear: %v", err)
	}
	l.Close()

	ws, dropped, err := RecoverWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || dropped == 0 {
		t.Fatalf("recovered %d waves (%d dropped), want 3 with a torn tail", len(ws), dropped)
	}
}

// TestNewLogCleansStaleCompactTemp: the documented compaction crash
// window — die between writing path.compact and renaming it over path —
// must not poison the next startup: the leftover temp is discarded (the
// original file is still the current one) and the WAL opens normally.
func TestNewLogCleansStaleCompactTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.wal")
	writeWAL(t, path, 3)
	if err := os.WriteFile(path+".compact", []byte(`{"seq":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(8, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatalf("stale .compact not removed: %v", err)
	}
	// And a later compaction still works over the cleaned state.
	if err := l.Append(mkWave(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(0); err != nil {
		t.Fatalf("compact after cleanup: %v", err)
	}
}

// TestAppendRejectsStaleEpoch: the log is part of the fence — once a
// wave of epoch E is accepted, waves of lower epochs are refused.
func TestAppendRejectsStaleEpoch(t *testing.T) {
	l, err := NewLog(8, "")
	if err != nil {
		t.Fatal(err)
	}
	w1 := Wave{Seq: 1, Epoch: 2, Root: 10}
	w1.Seal()
	if err := l.Append(w1); err != nil {
		t.Fatal(err)
	}
	if got := l.LastEpoch(); got != 2 {
		t.Fatalf("LastEpoch = %d, want 2", got)
	}
	stale := Wave{Seq: 2, Epoch: 1, Root: 20}
	stale.Seal()
	if err := l.Append(stale); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch append err = %v, want ErrStaleEpoch", err)
	}
	// Unstamped waves (epoch 0) read as epoch 1: also stale here.
	legacy := Wave{Seq: 2, Root: 20}
	legacy.Seal()
	if err := l.Append(legacy); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("legacy epoch append err = %v, want ErrStaleEpoch", err)
	}
	// A higher epoch advances the fence.
	w2 := Wave{Seq: 2, Epoch: 3, Root: 20}
	w2.Seal()
	if err := l.Append(w2); err != nil {
		t.Fatal(err)
	}
	if got := l.LastEpoch(); got != 3 {
		t.Fatalf("LastEpoch = %d, want 3", got)
	}
}

// TestSnapshotEpochRoundTrip: version-2 snapshots carry the epoch; the
// checksum covers it; version-1 bytes (no epoch) still decode and
// default to epoch 1.
func TestSnapshotEpochRoundTrip(t *testing.T) {
	s := &Snapshot{Version: SnapshotVersion, Ring: RingSpec{Kind: "minplus"}, Seq: 9, Epoch: 4}
	s.Sum = s.checksum()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != 4 || dec.EpochOrDefault() != 4 {
		t.Fatalf("epoch = %d", dec.Epoch)
	}
	// Tampering with the epoch breaks the seal.
	s2 := *s
	s2.Epoch = 5
	data2, _ := s2.Encode()
	if _, err := Decode(data2); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("tampered epoch decode err = %v", err)
	}
	// Version-1 layout: no epoch field, checksum without it.
	v1 := &Snapshot{Version: 1, Ring: RingSpec{Kind: "minplus"}, Seq: 9}
	v1.Sum = v1.checksum()
	d1, _ := v1.Encode()
	dec1, err := Decode(d1)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if dec1.EpochOrDefault() != 1 {
		t.Fatalf("v1 default epoch = %d", dec1.EpochOrDefault())
	}
}

// Per-tree hot-spot attribution: a space-saving heavy-hitters sketch
// (Metwally et al., "Efficient computation of frequent and top-k
// elements in data streams") over weighted per-tree samples — wave cost
// in nanoseconds, request counts, shed counts. The sketch holds exactly
// k counters regardless of how many trees a forest cycles through, so
// both the /v1/hot endpoint and the rank-labeled dyntc_hot_tree_*
// metrics stay bounded while still naming the trees that dominate the
// load — the skew signal a future shard map needs.
package obs

import (
	"sort"
	"sync"
)

// TopKItem is one sketch entry: Count overestimates the key's true
// accumulated weight by at most Err (Err is the evicted floor the key
// inherited when it entered the sketch; Count - Err is a guaranteed
// lower bound).
type TopKItem struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// TopK is a bounded weighted heavy-hitters sketch, safe for concurrent
// use. The classic space-saving guarantees carry over to weighted
// updates: any key whose true weight exceeds total/k is present, and no
// count is off by more than the smallest retained count at eviction
// time.
type TopK struct {
	mu      sync.Mutex
	k       int
	entries []TopKItem     // min-heap on Count
	idx     map[uint64]int // key -> heap position
	total   uint64
}

// DefaultTopK is the sketch width when none is given: enough ranks to
// see real skew, few enough that rank-labeled metrics stay scrapeable.
const DefaultTopK = 16

// NewTopK creates a sketch retaining k counters (DefaultTopK when <= 0).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = DefaultTopK
	}
	return &TopK{k: k, idx: make(map[uint64]int, k)}
}

// Add accumulates weight inc onto key. Nil-safe; inc == 0 is a no-op.
func (t *TopK) Add(key uint64, inc uint64) {
	if t == nil || inc == 0 {
		return
	}
	t.mu.Lock()
	t.total += inc
	if i, ok := t.idx[key]; ok {
		t.entries[i].Count += inc
		t.down(i)
	} else if len(t.entries) < t.k {
		t.entries = append(t.entries, TopKItem{Key: key, Count: inc})
		t.idx[key] = len(t.entries) - 1
		t.up(len(t.entries) - 1)
	} else {
		// Evict the minimum: the newcomer inherits its count as error
		// floor — the space-saving overestimate invariant.
		min := t.entries[0]
		delete(t.idx, min.Key)
		t.entries[0] = TopKItem{Key: key, Count: min.Count + inc, Err: min.Count}
		t.idx[key] = 0
		t.down(0)
	}
	t.mu.Unlock()
}

// Total returns the total weight ever added.
func (t *TopK) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns the number of retained keys (<= k).
func (t *TopK) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Snapshot returns the retained entries, heaviest first.
func (t *TopK) Snapshot() []TopKItem {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TopKItem, len(t.entries))
	copy(out, t.entries)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// up restores the min-heap property from position i toward the root.
func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.entries[p].Count <= t.entries[i].Count {
			return
		}
		t.swap(p, i)
		i = p
	}
}

// down restores the min-heap property from position i toward the leaves.
func (t *TopK) down(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && t.entries[l].Count < t.entries[m].Count {
			m = l
		}
		if r < n && t.entries[r].Count < t.entries[m].Count {
			m = r
		}
		if m == i {
			return
		}
		t.swap(m, i)
		i = m
	}
}

func (t *TopK) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.idx[t.entries[i].Key] = i
	t.idx[t.entries[j].Key] = j
}

// Package obs is the process-wide observability layer: a dependency-free,
// lock-cheap metrics registry (atomic counters, scrape-time gauge
// functions, fixed-bucket histograms with an Observe(ns) fast path) plus a
// wave-lifecycle trace ring (trace.go). Instruments are created once at
// wiring time and cached by their callers; the hot path is one or two
// atomic adds with no map lookups and no locks. The registry renders
// itself in the Prometheus text exposition format (version 0.0.4) with a
// hand-rolled writer — no external dependencies, so every internal package
// may import obs without dragging anything in.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter: one atomic add per
// increment, read at scrape time.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram. Values are recorded as int64 —
// nanoseconds for time histograms, plain magnitudes otherwise — and
// divided by the family's scale only at scrape time, so the Observe fast
// path is a short bounds scan plus three atomic adds, lock-free.
type Histogram struct {
	bounds []int64         // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomic.Int64
	count  atomic.Uint64
}

// Observe records one value (nanoseconds for *_seconds histograms).
func (h *Histogram) Observe(v int64) {
	bs := h.bounds
	i := 0
	for i < len(bs) && v > bs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values (pre-scale, e.g. nanoseconds).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DurationBuckets are the default bounds for time-valued histograms, in
// nanoseconds: 1µs to 10s, roughly 1-2.5-5 per decade. Rendered in
// seconds (scale 1e9) at scrape time.
var DurationBuckets = []int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
}

// SizeBuckets are default bounds for byte-sized histograms: 1KiB to 1GiB.
var SizeBuckets = []int64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// CountBuckets are default bounds for small-cardinality histograms
// (batch sizes, scatter widths): powers of two, 1 to 4096.
var CountBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one labeled sample series of a family: exactly one of counter,
// fn, hist is set, matching the family's type.
type child struct {
	labels  string // rendered `k="v",k2="v2"` pairs, "" when unlabeled
	counter *Counter
	fn      func() float64
	hist    *Histogram
}

// family is one metric family: a name, HELP/TYPE metadata, and its
// labeled children.
type family struct {
	name   string
	help   string
	typ    string
	scale  float64 // histogram value divisor at scrape time (1e9 for seconds)
	bounds []int64
	kids   []*child
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration takes the registry lock; recording on the returned
// instruments never does. Registering the same name+labels again returns
// the existing instrument (wiring is idempotent); re-registering a name
// with a different type or bucket layout panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns ("kind", "grow", "op", "+") into `kind="grow",op="+"`.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// fam returns the family, creating it on first use and panicking on a
// type conflict.
func (r *Registry) fam(name, help, typ string) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, scale: 1}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// find returns the family's child with the given rendered labels.
func (f *family) find(labels string) *child {
	for _, k := range f.kids {
		if k.labels == labels {
			return k
		}
	}
	return nil
}

// Counter returns the counter name{labels...}, registering it on first
// use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, typeCounter)
	if k := f.find(ls); k != nil {
		if k.counter == nil {
			panic("obs: " + name + " registered as counter func, requested as counter")
		}
		return k.counter
	}
	c := &Counter{}
	f.kids = append(f.kids, &child{labels: ls, counter: c})
	return c
}

// CounterFunc registers a counter whose value is computed at scrape time
// — a window onto a count maintained elsewhere (e.g. an engine's own
// atomic stats). Registering the same name+labels again replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.funcChild(name, help, typeCounter, fn, labels)
}

// GaugeFunc registers a gauge evaluated at scrape time. Registering the
// same name+labels again replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.funcChild(name, help, typeGauge, fn, labels)
}

func (r *Registry) funcChild(name, help, typ string, fn func() float64, labels []string) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, typ)
	if k := f.find(ls); k != nil {
		if k.fn == nil {
			panic("obs: " + name + " already registered with a stored value")
		}
		k.fn = fn
		return
	}
	f.kids = append(f.kids, &child{labels: ls, fn: fn})
}

// Seconds returns a duration histogram (record nanoseconds via Observe;
// rendered in seconds) over DurationBuckets.
func (r *Registry) Seconds(name, help string, labels ...string) *Histogram {
	return r.HistogramWith(name, help, DurationBuckets, 1e9, labels...)
}

// HistogramWith returns a histogram with explicit bounds and scrape-time
// scale (observed values are divided by scale when rendered; use 1 for
// plain magnitudes), registering it on first use.
func (r *Registry) HistogramWith(name, help string, bounds []int64, scale float64, labels ...string) *Histogram {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, typeHistogram)
	if f.bounds == nil {
		f.bounds = bounds
		f.scale = scale
	} else if len(f.bounds) != len(bounds) || f.scale != scale {
		panic("obs: " + name + " re-registered with different buckets")
	}
	if k := f.find(ls); k != nil {
		return k.hist
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	f.kids = append(f.kids, &child{labels: ls, hist: h})
	return h
}

// WriteTo renders every family in the Prometheus text exposition format
// (families and series in sorted order, so output is deterministic for a
// given set of values). It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	kids := make([][]*child, len(names))
	for i, name := range names {
		f := r.fams[name]
		fams[i] = f
		ks := make([]*child, len(f.kids))
		copy(ks, f.kids)
		sort.Slice(ks, func(a, b int) bool { return ks[a].labels < ks[b].labels })
		kids[i] = ks
	}
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for i, f := range fams {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range kids[i] {
			writeChild(cw, f, k)
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

func writeChild(w io.Writer, f *family, k *child) {
	switch {
	case k.counter != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, braced(k.labels), k.counter.Value())
	case k.fn != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, braced(k.labels), fmtFloat(k.fn()))
	case k.hist != nil:
		h := k.hist
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := fmtFloat(float64(b) / f.scale)
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(joinLabels(k.labels, `le="`+le+`"`)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(joinLabels(k.labels, `le="+Inf"`)), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(k.labels), fmtFloat(float64(h.sum.Load())/f.scale))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(k.labels), h.count.Load())
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
